package mmdb

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mmdb/internal/agg"
	"mmdb/internal/catalog"
	"mmdb/internal/expr"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	sqlfront "mmdb/internal/sql"
	"mmdb/internal/tuple"
)

// SQLResult is the outcome of one SQL statement. For SELECTs, Schema
// describes the result columns and Rows holds the result tuples encoded
// in that schema (the engine's fixed-width encoding — decode with
// Schema.Get, or take Values for the unpacked form). For INSERT/DELETE,
// Schema is nil and Affected reports the row count.
//
// Counters and Elapsed are the statement's virtual-clock charges —
// bit-identical across runs, schedulers and transports for the same
// statement, database state and memory grant (docs/SQL.md §5).
type SQLResult struct {
	Schema   *Schema
	Rows     []Tuple
	Affected int64
	Counters Counters
	Elapsed  time.Duration
}

// Values unpacks the result rows into dynamically typed values.
func (r *SQLResult) Values() [][]Value {
	if r.Schema == nil {
		return nil
	}
	out := make([][]Value, len(r.Rows))
	for i, t := range r.Rows {
		out[i] = r.Schema.Decode(t)
	}
	return out
}

// sqlCatalog adapts the engine catalog to the front door's resolver.
type sqlCatalog struct{ cat *catalog.Catalog }

func (c sqlCatalog) Table(name string) (*tuple.Schema, bool) {
	rel, err := c.cat.Get(name)
	if err != nil {
		return nil, false
	}
	return rel.Schema(), true
}

// sqlTmpSeq names the per-statement temporaries (filtered aggregation
// inputs) uniquely across concurrent sessions.
var sqlTmpSeq atomic.Uint64

// Query parses, binds and executes one SQL statement (docs/SQL.md) in
// this session: under its admission class, against its memory grant, on
// its private virtual clock. The returned counters are the statement's
// clock delta.
//
// Reads take the session's shared relation intents, which are held until
// Close; INSERT and DELETE take their own one-shot exclusive intents.
// Consequently a statement that mutates a table this same session has
// already read would deadlock — run DML in its own session (the wire
// server and Database.Query do exactly that).
func (s *Session) Query(text string) (*SQLResult, error) {
	stmt, err := sqlfront.Parse(text)
	if err != nil {
		return nil, err
	}
	bound, err := sqlfront.Bind(stmt, sqlCatalog{s.db.cat})
	if err != nil {
		return nil, err
	}
	before := s.clock.Counters()
	beforeVT := s.clock.Now()
	var res *SQLResult
	switch b := bound.(type) {
	case *sqlfront.BoundSelect:
		res, err = s.execSelect(b)
	case *sqlfront.BoundInsert:
		res, err = s.execInsert(b)
	case *sqlfront.BoundDelete:
		res, err = s.execDelete(b)
	default:
		return nil, fmt.Errorf("mmdb: unknown bound statement %T", bound)
	}
	if err != nil {
		return nil, err
	}
	res.Counters = s.clock.Counters().Sub(before)
	res.Elapsed = s.clock.Now() - beforeVT
	return res, nil
}

// Query runs one SQL statement in a fresh one-shot session (Batch class
// and default grant unless opts override). See Session.Query.
func (db *Database) Query(text string, opts ...SessionOption) (*SQLResult, error) {
	return db.QueryContext(context.Background(), text, opts...)
}

// QueryContext is the context-first Query: ctx governs admission
// queueing, lock waits and the per-query deadline.
func (db *Database) QueryContext(ctx context.Context, text string, opts ...SessionOption) (*SQLResult, error) {
	var res *SQLResult
	err := db.withSession(ctx, func(s *Session) error {
		var err error
		res, err = s.Query(text)
		return err
	}, opts...)
	return res, err
}

// predLeaves counts a predicate's comparison leaves — the per-tuple
// comparison charge of evaluating it (min 1), matching Session.Select.
func predLeaves(p expr.Predicate) int64 {
	if p == nil {
		return 0
	}
	n := int64(0)
	p.Walk(func(*expr.Comparison) { n++ })
	if n == 0 {
		n = 1
	}
	return n
}

// resultSchema builds the output schema from the bound select's
// projected columns and aggregates. COUNT/SUM/MIN/MAX yield int64, AVG
// float64; plain columns keep their source kind and width.
func resultSchema(b *sqlfront.BoundSelect) (*Schema, error) {
	var fields []Field
	for _, c := range b.Cols {
		f := b.Tables[c.Table].Schema.Field(c.Col)
		fields = append(fields, Field{Name: c.Name, Kind: f.Kind, Size: f.Size})
	}
	for _, a := range b.Aggs {
		kind := tuple.Int64
		if a.Func == agg.Avg {
			kind = tuple.Float64
		}
		fields = append(fields, Field{Name: a.Name, Kind: kind})
	}
	return NewSchema(fields...)
}

func (s *Session) execSelect(b *sqlfront.BoundSelect) (*SQLResult, error) {
	outSchema, err := resultSchema(b)
	if err != nil {
		return nil, err
	}
	switch {
	case b.Distinct:
		return s.execDistinct(b, outSchema)
	case len(b.Aggs) > 0 && b.GroupBy >= 0:
		return s.execGrouped(b, outSchema)
	case len(b.Aggs) > 0:
		return s.execGlobalAgg(b, outSchema)
	case len(b.Tables) == 1:
		return s.execScan(b, outSchema)
	case len(b.Tables) == 2:
		return s.execJoin2(b, outSchema)
	default:
		return s.execPlanned(b, outSchema)
	}
}

// project copies the bound output columns of one source row (or a
// (left,right) pair) into a fresh result tuple.
func projectRow(outSchema *Schema, b *sqlfront.BoundSelect, src func(table int) (Tuple, *Schema)) (Tuple, error) {
	out := make(Tuple, outSchema.Width())
	for i, c := range b.Cols {
		t, schema := src(c.Table)
		if err := outSchema.Set(out, i, schema.Get(t, c.Col)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sortAndTrim applies the bound ORDER BY (over result column col) and
// LIMIT to materialized result rows. The sort is stable on the encoded
// key bytes, so equal keys keep materialization order — unspecified but
// deterministic (docs/SQL.md §3.6).
func sortAndTrim(b *sqlfront.BoundSelect, outSchema *Schema, rows []Tuple, col int) []Tuple {
	if col >= 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			c := bytes.Compare(outSchema.KeyBytes(rows[i], col), outSchema.KeyBytes(rows[j], col))
			if b.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if b.Limit >= 0 && int64(len(rows)) > b.Limit {
		rows = rows[:b.Limit]
	}
	return rows
}

// execScan is the single-table path: a charged sequential scan, with the
// §3.4 sort machinery underneath when ORDER BY is present.
func (s *Session) execScan(b *sqlfront.BoundSelect, outSchema *Schema) (*SQLResult, error) {
	name := b.Tables[0].Name
	schema := b.Tables[0].Schema
	pred := b.Preds[0]
	leaves := predLeaves(pred)
	var rows []Tuple
	var projErr error
	collect := func(t Tuple) bool {
		if pred != nil {
			s.clock.Comps(leaves)
			if !pred.Eval(t) {
				return true
			}
		}
		out, err := projectRow(outSchema, b, func(int) (Tuple, *Schema) { return t, schema })
		if err != nil {
			projErr = err
			return false
		}
		rows = append(rows, out)
		// Without a sort, a satisfied LIMIT stops the scan early.
		return !(b.OrderCol < 0 && b.Limit >= 0 && int64(len(rows)) >= b.Limit)
	}

	if b.OrderCol < 0 {
		_, files, err := s.lockAndView(name)
		if err != nil {
			return nil, err
		}
		if err := files[0].Scan(simio.Seq, collect); err != nil {
			return nil, err
		}
	} else {
		// ORDER BY: stream the external sort ascending; DESC reverses
		// the collected output (the sort column need not be projected,
		// so ordering happens here, not post-projection).
		if err := s.OrderBy(name, schema.Field(b.OrderCol).Name, collect); err != nil {
			return nil, err
		}
		if b.Desc {
			for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
		if b.Limit >= 0 && int64(len(rows)) > b.Limit {
			rows = rows[:b.Limit]
		}
	}
	if projErr != nil {
		return nil, projErr
	}
	return &SQLResult{Schema: outSchema, Rows: rows}, nil
}

// execDistinct is the §3.5.1 duplicate-elimination form, on the engine's
// hash distinct with a deterministic ascending sort of the values.
func (s *Session) execDistinct(b *sqlfront.BoundSelect, outSchema *Schema) (*SQLResult, error) {
	name := b.Tables[0].Name
	schema := b.Tables[0].Schema
	if b.Preds[0] != nil {
		tmp, err := s.materializeFiltered(b)
		if err != nil {
			return nil, err
		}
		defer tmp.drop()
		return s.distinctRows(b, outSchema, tmp.file)
	}
	_, files, err := s.lockAndView(name)
	if err != nil {
		return nil, err
	}
	_ = schema
	return s.distinctRows(b, outSchema, files[0])
}

func (s *Session) distinctRows(b *sqlfront.BoundSelect, outSchema *Schema, file *heap.File) (*SQLResult, error) {
	vals, err := agg.Distinct(file, b.GroupBy, s.grant.Pages(), s.db.opts.Params.F, s.db.opts.Parallelism)
	if err != nil {
		return nil, err
	}
	sort.Slice(vals, func(i, j int) bool { return tuple.Compare(vals[i], vals[j]) < 0 })
	if b.Desc {
		for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
	if b.Limit >= 0 && int64(len(vals)) > b.Limit {
		vals = vals[:b.Limit]
	}
	rows := make([]Tuple, len(vals))
	for i, v := range vals {
		t, err := outSchema.Encode(v)
		if err != nil {
			return nil, err
		}
		rows[i] = t
	}
	return &SQLResult{Schema: outSchema, Rows: rows}, nil
}

// execGrouped runs the §3.9 hash aggregation, sorting groups ascending
// by key for the deterministic output order docs/SQL.md §3.5 promises.
func (s *Session) execGrouped(b *sqlfront.BoundSelect, outSchema *Schema) (*SQLResult, error) {
	var input *heap.File
	if b.Preds[0] != nil {
		tmp, err := s.materializeFiltered(b)
		if err != nil {
			return nil, err
		}
		defer tmp.drop()
		input = tmp.file
	} else {
		_, files, err := s.lockAndView(b.Tables[0].Name)
		if err != nil {
			return nil, err
		}
		input = files[0]
	}
	res, err := agg.Hash(agg.Spec{
		Input:       input,
		GroupCol:    b.GroupBy,
		ValueCol:    b.ValueCol,
		M:           s.grant.Pages(),
		F:           s.db.opts.Params.F,
		Parallelism: s.db.opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	groups := res.Groups
	sort.Slice(groups, func(i, j int) bool { return tuple.Compare(groups[i].Key, groups[j].Key) < 0 })
	if b.Desc { // ORDER BY group DESC (the only legal grouped order)
		for i, j := 0, len(groups)-1; i < j; i, j = i+1, j-1 {
			groups[i], groups[j] = groups[j], groups[i]
		}
	}
	if b.Limit >= 0 && int64(len(groups)) > b.Limit {
		groups = groups[:b.Limit]
	}
	rows := make([]Tuple, 0, len(groups))
	for _, g := range groups {
		out := make(Tuple, outSchema.Width())
		i := 0
		for range b.Cols { // at most the group column
			if err := outSchema.Set(out, i, g.Key); err != nil {
				return nil, err
			}
			i++
		}
		for _, a := range b.Aggs {
			if err := outSchema.Set(out, i, aggValue(agg.Group(g), a.Func)); err != nil {
				return nil, err
			}
			i++
		}
		rows = append(rows, out)
	}
	return &SQLResult{Schema: outSchema, Rows: rows}, nil
}

// aggValue renders one aggregate of a finished group in its output kind.
func aggValue(g agg.Group, f agg.Func) Value {
	switch f {
	case agg.Count:
		return IntValue(g.Count)
	case agg.Sum:
		return IntValue(g.Sum)
	case agg.Min:
		return IntValue(g.Min)
	case agg.Max:
		return IntValue(g.Max)
	default:
		return FloatValue(g.Value(agg.Avg))
	}
}

// execGlobalAgg computes an all-aggregate select list in one charged
// scan, each aggregate accumulating over its own column. Aggregates of
// zero rows are 0 (the engine has no NULLs, docs/SQL.md §3.5.2).
func (s *Session) execGlobalAgg(b *sqlfront.BoundSelect, outSchema *Schema) (*SQLResult, error) {
	name := b.Tables[0].Name
	schema := b.Tables[0].Schema
	pred := b.Preds[0]
	leaves := predLeaves(pred)
	_, files, err := s.lockAndView(name)
	if err != nil {
		return nil, err
	}
	groups := make([]agg.Group, len(b.Aggs))
	var n int64
	err = files[0].Scan(simio.Seq, func(t Tuple) bool {
		if pred != nil {
			s.clock.Comps(leaves)
			if !pred.Eval(t) {
				return true
			}
		}
		// One comparison per accumulated aggregate, mirroring the
		// grouped path's per-tuple group-table charge.
		s.clock.Comps(int64(len(b.Aggs)))
		n++
		for i, a := range b.Aggs {
			g := &groups[i]
			var v int64
			if a.Col >= 0 {
				v = schema.Int(t, a.Col)
			}
			if g.Count == 0 {
				*g = agg.Group{Count: 1, Sum: v, Min: v, Max: v}
			} else {
				g.Count++
				g.Sum += v
				if v < g.Min {
					g.Min = v
				}
				if v > g.Max {
					g.Max = v
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make(Tuple, outSchema.Width())
	for i, a := range b.Aggs {
		if err := outSchema.Set(out, i, aggValue(groups[i], a.Func)); err != nil {
			return nil, err
		}
	}
	return &SQLResult{Schema: outSchema, Rows: []Tuple{out}}, nil
}

// execJoin2 runs a two-table equijoin on the session's join dispatcher,
// applying each side's residual predicate to the streamed pairs and
// projecting on the fly.
func (s *Session) execJoin2(b *sqlfront.BoundSelect, outSchema *Schema) (*SQLResult, error) {
	j := b.Joins[0]
	// Normalize the edge to (table0 column, table1 column).
	lc, rc := j.LeftCol, j.RightCol
	if j.LeftTable == 1 {
		lc, rc = j.RightCol, j.LeftCol
	}
	s0, s1 := b.Tables[0].Schema, b.Tables[1].Schema
	p0, p1 := b.Preds[0], b.Preds[1]
	l0, l1 := predLeaves(p0), predLeaves(p1)
	var rows []Tuple
	var emitErr error
	_, err := s.Join(AutoJoin,
		b.Tables[0].Name, b.Tables[1].Name,
		s0.Field(lc).Name, s1.Field(rc).Name,
		func(l, r Tuple) {
			if emitErr != nil {
				return
			}
			if p0 != nil {
				s.clock.Comps(l0)
				if !p0.Eval(l) {
					return
				}
			}
			if p1 != nil {
				s.clock.Comps(l1)
				if !p1.Eval(r) {
					return
				}
			}
			out, err := projectRow(outSchema, b, func(table int) (Tuple, *Schema) {
				if table == 0 {
					return l, s0
				}
				return r, s1
			})
			if err != nil {
				emitErr = err
				return
			}
			rows = append(rows, out)
		})
	if err != nil {
		return nil, err
	}
	if emitErr != nil {
		return nil, emitErr
	}
	rows = sortAndTrim(b, outSchema, rows, b.OrderOut)
	return &SQLResult{Schema: outSchema, Rows: rows}, nil
}

// execPlanned lowers a 3+-table join onto the §4 planner in HashOnly
// mode. Residual predicates ride down as pushed selections; the
// materialized plan output is scanned through the session's disk view
// (without relation intents — the temporary is session-private, and a
// shared intent would deadlock with the drop below) and then dropped.
func (s *Session) execPlanned(b *sqlfront.BoundSelect, outSchema *Schema) (*SQLResult, error) {
	q := Query{Tables: make([]QueryTable, len(b.Tables))}
	for i, t := range b.Tables {
		qt := QueryTable{Relation: t.Name}
		if b.Preds[i] != nil {
			rel, err := s.db.cat.Get(t.Name)
			if err != nil {
				return nil, err
			}
			qt.Where = &Pred{rel: rel, inner: b.Preds[i]}
		}
		q.Tables[i] = qt
	}
	for _, j := range b.Joins {
		q.Joins = append(q.Joins, QueryJoin{
			LeftTable:  j.LeftTable,
			LeftCol:    b.Tables[j.LeftTable].Schema.Field(j.LeftCol).Name,
			RightTable: j.RightTable,
			RightCol:   b.Tables[j.RightTable].Schema.Field(j.RightCol).Name,
		})
	}
	qp, err := s.Plan(q, HashOnly)
	if err != nil {
		return nil, err
	}
	outRel, err := qp.Execute()
	if err != nil {
		return nil, err
	}
	defer s.db.DropRelation(outRel.Name())

	// The flat output lays the tables out in build-first plan order,
	// each table's columns contiguous; map (table, col) to flat offsets.
	offset := make(map[string]int, len(b.Tables))
	off := 0
	for _, name := range qp.Order {
		offset[name] = off
		for _, t := range b.Tables {
			if t.Name == name {
				off += t.Schema.NumFields()
			}
		}
	}
	flat := make([]int, len(b.Cols))
	for i, c := range b.Cols {
		flat[i] = offset[b.Tables[c.Table].Name] + c.Col
	}

	view, err := outRel.rel.File.OnDisk(s.view)
	if err != nil {
		return nil, err
	}
	flatSchema := view.Schema()
	var rows []Tuple
	var projErr error
	if err := view.Scan(simio.Seq, func(t Tuple) bool {
		out := make(Tuple, outSchema.Width())
		for i := range b.Cols {
			if err := outSchema.Set(out, i, flatSchema.Get(t, flat[i])); err != nil {
				projErr = err
				return false
			}
		}
		rows = append(rows, out)
		return true
	}); err != nil {
		return nil, err
	}
	if projErr != nil {
		return nil, projErr
	}
	rows = sortAndTrim(b, outSchema, rows, b.OrderOut)
	return &SQLResult{Schema: outSchema, Rows: rows}, nil
}

// sqlTemp is a filtered materialization: a catalog-registered temporary
// holding the rows of table 0 that satisfy its predicate, viewed through
// the session's disk so later passes charge the session clock.
type sqlTemp struct {
	db   *Database
	name string
	file *heap.File
}

func (t *sqlTemp) drop() { _ = t.db.DropRelation(t.name) }

// materializeFiltered runs the charged filtering scan of table 0 into a
// fresh uncharged temporary (the §3 convention: intermediates are
// written free, their later reads are charged).
func (s *Session) materializeFiltered(b *sqlfront.BoundSelect) (*sqlTemp, error) {
	name := b.Tables[0].Name
	pred := b.Preds[0]
	leaves := predLeaves(pred)
	_, files, err := s.lockAndView(name)
	if err != nil {
		return nil, err
	}
	tmpName := fmt.Sprintf("sql.tmp.%d", sqlTmpSeq.Add(1))
	tmpRel, err := s.db.CreateRelation(tmpName, b.Tables[0].Schema)
	if err != nil {
		return nil, err
	}
	var appendErr error
	err = files[0].Scan(simio.Seq, func(t Tuple) bool {
		s.clock.Comps(leaves)
		if !pred.Eval(t) {
			return true
		}
		if e := tmpRel.rel.File.Append(t.Clone(), simio.Uncharged); e != nil {
			appendErr = e
			return false
		}
		return true
	})
	if err == nil {
		err = appendErr
	}
	if err == nil {
		err = tmpRel.rel.File.Flush(simio.Uncharged)
	}
	if err != nil {
		_ = s.db.DropRelation(tmpName)
		return nil, err
	}
	view, err := tmpRel.rel.File.OnDisk(s.view)
	if err != nil {
		_ = s.db.DropRelation(tmpName)
		return nil, err
	}
	return &sqlTemp{db: s.db, name: tmpName, file: view}, nil
}

// execInsert appends the bound rows (uncharged, index-maintaining — the
// Relation.Insert convention) and flushes once.
func (s *Session) execInsert(b *sqlfront.BoundInsert) (*SQLResult, error) {
	rel, err := s.db.Relation(b.Table.Name)
	if err != nil {
		return nil, err
	}
	for _, row := range b.Rows {
		if err := rel.Insert(row...); err != nil {
			return nil, err
		}
	}
	if err := rel.Flush(); err != nil {
		return nil, err
	}
	return &SQLResult{Affected: int64(len(b.Rows))}, nil
}

// execDelete rewrites the relation without the matching rows.
func (s *Session) execDelete(b *sqlfront.BoundDelete) (*SQLResult, error) {
	rel, err := s.db.Relation(b.Table.Name)
	if err != nil {
		return nil, err
	}
	var pred *Pred
	if b.Pred != nil {
		pred = &Pred{rel: rel.rel, inner: b.Pred}
	}
	n, err := rel.DeleteWhere(pred)
	if err != nil {
		return nil, err
	}
	return &SQLResult{Affected: n}, nil
}
