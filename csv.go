package mmdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// ExportCSV writes the relation as CSV. With header, the first row carries
// the column names.
func (r *Relation) ExportCSV(w io.Writer, header bool) error {
	cw := csv.NewWriter(w)
	schema := r.Schema()
	if header {
		names := make([]string, schema.NumFields())
		for i := range names {
			names[i] = schema.Field(i).Name
		}
		if err := cw.Write(names); err != nil {
			return err
		}
	}
	err := r.rel.File.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		row := make([]string, schema.NumFields())
		for i := range row {
			row[i] = schema.Get(t, i).String()
		}
		return cw.Write(row) == nil
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV parses rows according to the relation's schema and inserts
// them (maintaining indexes), returning the row count. With header, the
// first row is validated against the column names.
func (r *Relation) ImportCSV(rd io.Reader, header bool) (int64, error) {
	cr := csv.NewReader(rd)
	schema := r.Schema()
	cr.FieldsPerRecord = schema.NumFields()
	line := 0
	if header {
		names, err := cr.Read()
		if err != nil {
			return 0, fmt.Errorf("mmdb: reading CSV header: %w", err)
		}
		line++
		for i, n := range names {
			if n != schema.Field(i).Name {
				return 0, fmt.Errorf("mmdb: CSV header column %d is %q, schema has %q",
					i, n, schema.Field(i).Name)
			}
		}
	}
	var count int64
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, fmt.Errorf("mmdb: CSV line %d: %w", line+1, err)
		}
		line++
		values := make([]Value, len(row))
		for i, cell := range row {
			v, err := parseCell(schema.Field(i), cell)
			if err != nil {
				return count, fmt.Errorf("mmdb: CSV line %d, column %q: %w",
					line, schema.Field(i).Name, err)
			}
			values[i] = v
		}
		t, err := schema.Encode(values...)
		if err != nil {
			return count, fmt.Errorf("mmdb: CSV line %d: %w", line, err)
		}
		if err := r.InsertTuple(t); err != nil {
			return count, err
		}
		count++
	}
	return count, r.Flush()
}

func parseCell(f Field, cell string) (Value, error) {
	switch f.Kind {
	case Int64:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Value{}, err
		}
		return IntValue(v), nil
	case Float64:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Value{}, err
		}
		return FloatValue(v), nil
	case String:
		if len(cell) > f.Size {
			return Value{}, fmt.Errorf("value %q exceeds column width %d", cell, f.Size)
		}
		return StringValue(cell), nil
	default:
		return Value{}, fmt.Errorf("unsupported kind %v", f.Kind)
	}
}
