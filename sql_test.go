package mmdb

import (
	"errors"
	"testing"

	sqlfront "mmdb/internal/sql"
)

// newSQLTestDB builds the docs/SQL.md running example: emp(id, dept,
// salary, name), dept(id, budget, city), proj(id, dept, hours) with
// small deterministic contents.
func newSQLTestDB(t *testing.T, opts Options) *Database {
	t.Helper()
	db := MustOpen(opts)
	emp, err := db.CreateRelation("emp", MustSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "dept", Kind: Int64},
		Field{Name: "salary", Kind: Int64},
		Field{Name: "name", Kind: String, Size: 16},
	))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ada", "bob", "cyd", "dee", "eli", "fay", "gus", "hal"}
	for i := 0; i < 8; i++ {
		if err := emp.Insert(IntValue(int64(i+1)), IntValue(int64(i%3+1)),
			IntValue(int64(40000+1000*i)), StringValue(names[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		t.Fatal(err)
	}
	dept, err := db.CreateRelation("dept", MustSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "budget", Kind: Int64},
		Field{Name: "city", Kind: String, Size: 12},
	))
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"madison", "berkeley", "yorktown"}
	for i := 0; i < 3; i++ {
		if err := dept.Insert(IntValue(int64(i+1)), IntValue(int64(100*(i+1))), StringValue(cities[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := dept.Flush(); err != nil {
		t.Fatal(err)
	}
	proj, err := db.CreateRelation("proj", MustSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "dept", Kind: Int64},
		Field{Name: "hours", Kind: Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := proj.Insert(IntValue(int64(i+1)), IntValue(int64(i%2+1)), IntValue(int64(10*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := proj.Flush(); err != nil {
		t.Fatal(err)
	}
	return db
}

func queryRows(t *testing.T, db *Database, q string) ([][]Value, *SQLResult) {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res.Values(), res
}

// TestSQLScan covers SQL.md §3.1 single-table SELECT with WHERE, ORDER
// BY (§3.6) and LIMIT (§3.7).
func TestSQLScan(t *testing.T) {
	db := newSQLTestDB(t, Options{})

	rows, res := queryRows(t, db, "SELECT * FROM emp")
	if len(rows) != 8 || res.Schema.NumFields() != 4 {
		t.Fatalf("rows=%d fields=%d", len(rows), res.Schema.NumFields())
	}
	if rows[0][3].S != "ada" {
		t.Fatalf("row 0 name = %q", rows[0][3].S)
	}

	rows, _ = queryRows(t, db, "SELECT id, name FROM emp WHERE salary >= 45000 ORDER BY salary DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].I != 8 || rows[1][0].I != 7 {
		t.Fatalf("top salaries wrong: %v", rows)
	}
	if rows[0][1].S != "hal" {
		t.Fatalf("projection wrong: %v", rows[0])
	}

	// ORDER BY a column not in the select list (§3.6, single table).
	rows, _ = queryRows(t, db, "SELECT name FROM emp ORDER BY salary LIMIT 1")
	if len(rows) != 1 || rows[0][0].S != "ada" {
		t.Fatalf("order by unprojected column: %v", rows)
	}

	// LIMIT without ORDER BY returns a scan-order prefix (§3.7).
	rows, _ = queryRows(t, db, "SELECT id FROM emp LIMIT 3")
	if len(rows) != 3 || rows[0][0].I != 1 || rows[2][0].I != 3 {
		t.Fatalf("scan prefix wrong: %v", rows)
	}

	// Single-table WHERE may use OR/NOT freely (§3.4).
	rows, _ = queryRows(t, db, "SELECT id FROM emp WHERE id = 1 OR NOT (salary < 47000)")
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 8 {
		t.Fatalf("or/not wrong: %v", rows)
	}

	// String comparison (§2.4).
	rows, _ = queryRows(t, db, "SELECT id FROM emp WHERE name = 'cyd'")
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("string compare wrong: %v", rows)
	}
}

// TestSQLJoin covers §4 two-table joins: qualified star, residual
// predicates, ORDER BY over the select list.
func TestSQLJoin(t *testing.T) {
	db := newSQLTestDB(t, Options{})

	rows, res := queryRows(t, db, "SELECT * FROM emp JOIN dept ON emp.dept = dept.id")
	if len(rows) != 8 || res.Schema.NumFields() != 7 {
		t.Fatalf("rows=%d fields=%d", len(rows), res.Schema.NumFields())
	}
	if res.Schema.Field(0).Name != "emp.id" || res.Schema.Field(4).Name != "dept.id" {
		t.Fatalf("star naming wrong: %v", res.Schema)
	}

	rows, _ = queryRows(t, db,
		"SELECT emp.id, city FROM emp JOIN dept ON emp.dept = dept.id WHERE budget >= 200 AND salary < 46000 ORDER BY emp.id")
	// depts 2,3 qualify; emps with salary<46000: ids 1..6 → dept 2: ids 2,5; dept 3: ids 3,6.
	want := [][2]any{{int64(2), "berkeley"}, {int64(3), "yorktown"}, {int64(5), "berkeley"}, {int64(6), "yorktown"}}
	if len(rows) != len(want) {
		t.Fatalf("join rows = %d, want %d: %v", len(rows), len(want), rows)
	}
	for i, w := range want {
		if rows[i][0].I != w[0].(int64) || rows[i][1].S != w[1].(string) {
			t.Fatalf("join row %d = %v, want %v", i, rows[i], w)
		}
	}

	// DESC over the join output.
	rows, _ = queryRows(t, db,
		"SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.id ORDER BY emp.id DESC LIMIT 3")
	if rows[0][0].I != 8 || rows[2][0].I != 6 {
		t.Fatalf("desc join order wrong: %v", rows)
	}
}

// TestSQLPlannedJoin covers the 3+-table §4 planner path.
func TestSQLPlannedJoin(t *testing.T) {
	db := newSQLTestDB(t, Options{})
	rows, _ := queryRows(t, db,
		"SELECT emp.id, proj.id, budget FROM emp JOIN dept ON emp.dept = dept.id JOIN proj ON proj.dept = dept.id ORDER BY emp.id")
	// proj depts: p1→1 p2→2 p3→1 p4→2; emp depts: e1→1 e2→2 e3→3 e4→1 e5→2 e6→3 e7→1 e8→2.
	// emps in dept 1 (1,4,7) × projs {1,3}; emps in dept 2 (2,5,8) × projs {2,4}. 12 rows.
	if len(rows) != 12 {
		t.Fatalf("planned join rows = %d, want 12: %v", len(rows), rows)
	}
	if rows[0][0].I != 1 || rows[0][2].I != 100 {
		t.Fatalf("first planned row wrong: %v", rows[0])
	}
	// Every emp id appears exactly twice, ascending.
	for i := 0; i < 12; i += 2 {
		if rows[i][0].I != rows[i+1][0].I {
			t.Fatalf("emp %d rows not adjacent: %v", i, rows)
		}
	}
	// The temporary plan output must not leak into the catalog.
	for _, name := range db.Relations() {
		if name != "emp" && name != "dept" && name != "proj" {
			t.Fatalf("leaked temporary relation %q", name)
		}
	}
}

// TestSQLGroupBy covers §3.5: grouped aggregates, the shared value
// column, key-sorted output, and the filtered (temp-materializing) path.
func TestSQLGroupBy(t *testing.T) {
	db := newSQLTestDB(t, Options{})

	rows, res := queryRows(t, db,
		"SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) FROM emp GROUP BY dept")
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3: %v", len(rows), rows)
	}
	// Groups sorted ascending by key (§3.5): depts 1,2,3.
	// dept 1: emps 1,4,7 → salaries 40000,43000,46000.
	if rows[0][0].I != 1 || rows[0][1].I != 3 || rows[0][2].I != 129000 ||
		rows[0][3].I != 40000 || rows[0][4].I != 46000 || rows[0][5].F != 43000 {
		t.Fatalf("group 1 wrong: %v", rows[0])
	}
	if rows[2][0].I != 3 || rows[2][1].I != 2 {
		t.Fatalf("group 3 wrong: %v", rows[2])
	}
	if res.Schema.Field(5).Kind != Float64 {
		t.Fatalf("AVG output kind = %v, want float64", res.Schema.Field(5).Kind)
	}

	// WHERE + GROUP BY: the filtered-temp path; temp must not leak.
	rows, _ = queryRows(t, db, "SELECT dept, COUNT(*) FROM emp WHERE salary >= 43000 GROUP BY dept")
	// emps 4..8: depts 1(4,7→ids 4,7? salaries 43000(id4),46000(id7)),... ids 4,5,6,7,8 → depts 1,2,3,1,2.
	if len(rows) != 3 || rows[0][1].I != 2 || rows[1][1].I != 2 || rows[2][1].I != 1 {
		t.Fatalf("filtered groups wrong: %v", rows)
	}
	if len(db.Relations()) != 3 {
		t.Fatalf("temp leaked: %v", db.Relations())
	}

	// ORDER BY group DESC, LIMIT (§3.6).
	rows, _ = queryRows(t, db, "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].I != 3 || rows[1][0].I != 2 {
		t.Fatalf("desc groups wrong: %v", rows)
	}
}

// TestSQLDistinct covers the §3.5.1 duplicate-elimination form.
func TestSQLDistinct(t *testing.T) {
	db := newSQLTestDB(t, Options{})
	rows, _ := queryRows(t, db, "SELECT dept FROM emp GROUP BY dept")
	if len(rows) != 3 || rows[0][0].I != 1 || rows[2][0].I != 3 {
		t.Fatalf("distinct wrong: %v", rows)
	}
	// Non-integer group column (string distinct), filtered.
	rows, _ = queryRows(t, db, "SELECT name FROM emp WHERE dept = 1 GROUP BY name ORDER BY name DESC")
	if len(rows) != 3 || rows[0][0].S != "gus" || rows[2][0].S != "ada" {
		t.Fatalf("string distinct wrong: %v", rows)
	}
}

// TestSQLGlobalAggregates covers §3.5.2's global form, including the
// zero-row case.
func TestSQLGlobalAggregates(t *testing.T) {
	db := newSQLTestDB(t, Options{})
	rows, res := queryRows(t, db, "SELECT COUNT(*), SUM(salary), MIN(id), MAX(salary), AVG(salary) FROM emp")
	if len(rows) != 1 {
		t.Fatalf("global agg rows = %d", len(rows))
	}
	r := rows[0]
	if r[0].I != 8 || r[1].I != 8*40000+1000*28 || r[2].I != 1 || r[3].I != 47000 || r[4].F != 43500 {
		t.Fatalf("global agg wrong: %v", r)
	}
	if res.Schema.Field(0).Name != "COUNT(*)" {
		t.Fatalf("agg output name = %q", res.Schema.Field(0).Name)
	}
	// Zero rows → zeros (no NULLs).
	rows, _ = queryRows(t, db, "SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 100")
	if rows[0][0].I != 0 || rows[0][1].I != 0 {
		t.Fatalf("empty agg wrong: %v", rows[0])
	}
}

// TestSQLInsertDelete covers §3.2 and §3.3 end to end.
func TestSQLInsertDelete(t *testing.T) {
	db := newSQLTestDB(t, Options{})

	res, err := db.Query("INSERT INTO emp VALUES (9, 1, 50000, 'ivy'), (10, 2, 51000, 'joe')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 || res.Schema != nil {
		t.Fatalf("insert result wrong: %+v", res)
	}
	rows, _ := queryRows(t, db, "SELECT name FROM emp WHERE id >= 9 ORDER BY id")
	if len(rows) != 2 || rows[0][0].S != "ivy" || rows[1][0].S != "joe" {
		t.Fatalf("inserted rows wrong: %v", rows)
	}

	// Permuted column list (§3.2).
	if _, err := db.Query("INSERT INTO emp (name, salary, dept, id) VALUES ('kay', 52000, 3, 11)"); err != nil {
		t.Fatal(err)
	}
	rows, _ = queryRows(t, db, "SELECT salary FROM emp WHERE name = 'kay'")
	if len(rows) != 1 || rows[0][0].I != 52000 {
		t.Fatalf("permuted insert wrong: %v", rows)
	}

	res, err = db.Query("DELETE FROM emp WHERE id >= 9")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Fatalf("delete affected = %d, want 3", res.Affected)
	}
	rows, _ = queryRows(t, db, "SELECT COUNT(*) FROM emp")
	if rows[0][0].I != 8 {
		t.Fatalf("post-delete count = %v", rows[0])
	}

	// DELETE without WHERE empties the table (§3.3).
	res, err = db.Query("DELETE FROM proj")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 4 {
		t.Fatalf("delete all affected = %d", res.Affected)
	}
	rows, _ = queryRows(t, db, "SELECT COUNT(*) FROM proj")
	if rows[0][0].I != 0 {
		t.Fatalf("proj not emptied: %v", rows)
	}
}

// TestSQLErrorsSurfaceTyped checks that front-door rejections surface as
// *sql.Error through the engine API and leave the session usable.
func TestSQLErrorsSurfaceTyped(t *testing.T) {
	db := newSQLTestDB(t, Options{})
	s, err := db.NewSession(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Query("SELECT * FROM nonesuch")
	var se *sqlfront.Error
	if !errors.As(err, &se) || se.Code != sqlfront.ErrUnknownTable {
		t.Fatalf("err = %v, want unknown-table sql.Error", err)
	}
	// The session survives a failed statement.
	res, err := s.Query("SELECT COUNT(*) FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Values()[0][0].I != 8 {
		t.Fatalf("post-error query wrong: %v", res.Values())
	}
}

// TestSQLCountersDeterministic checks the §5 contract at the API level:
// the same statement on an identically built database charges
// bit-identical virtual counters, at any parallelism, with non-zero work.
func TestSQLCountersDeterministic(t *testing.T) {
	stmts := []string{
		"SELECT * FROM emp WHERE salary >= 43000 ORDER BY salary DESC LIMIT 3",
		"SELECT emp.id, budget FROM emp JOIN dept ON emp.dept = dept.id WHERE salary < 46000",
		"SELECT dept, COUNT(*), SUM(salary) FROM emp WHERE id <= 6 GROUP BY dept",
		"SELECT emp.id, proj.id FROM emp JOIN dept ON emp.dept = dept.id JOIN proj ON proj.dept = dept.id",
	}
	run := func(parallelism int) []Counters {
		db := newSQLTestDB(t, Options{Parallelism: parallelism})
		var out []Counters
		for _, q := range stmts {
			_, res := queryRows(t, db, q)
			out = append(out, res.Counters)
		}
		return out
	}
	a, b, c := run(1), run(1), run(4)
	for i := range stmts {
		if a[i] != b[i] {
			t.Errorf("stmt %d: counters differ across runs: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Errorf("stmt %d: counters differ across parallelism: %v vs %v", i, a[i], c[i])
		}
		if a[i] == (Counters{}) {
			t.Errorf("stmt %d: zero counters — work was not charged to the session clock", i)
		}
	}
}
