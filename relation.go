package mmdb

import (
	"context"
	"fmt"

	"mmdb/internal/catalog"
	"mmdb/internal/expr"
	"mmdb/internal/lock"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// IndexKind selects an access method (§2).
type IndexKind = catalog.IndexKind

// Access methods.
const (
	BTree = catalog.BTree
	AVL   = catalog.AVL
)

// Relation is a handle on a cataloged table.
type Relation struct {
	db  *Database
	rel *catalog.Relation
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.rel.Name }

// withIntent runs fn holding a one-shot relation-level intent: Shared for
// reads, Exclusive for mutations and index builds. This is what lets
// loads and point operations interleave safely with admitted queries —
// a query's shared intent holds off a concurrent Rewrite, and vice versa.
func (r *Relation) withIntent(mode lock.Mode, fn func() error) error {
	unlock, err := r.db.lockRelations(context.Background(), mode, r.Name())
	if err != nil {
		return err
	}
	defer unlock()
	return fn()
}

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.rel.Schema() }

// NumTuples returns the cardinality.
func (r *Relation) NumTuples() int64 { return r.rel.File.NumTuples() }

// NumPages returns the paper's |R|.
func (r *Relation) NumPages() int { return r.rel.File.NumPages() }

// Insert encodes and appends one row, maintaining any indexes. Loading is
// uncharged on the virtual clock, matching the paper's convention of
// excluding initial relation reads from experiment costs.
func (r *Relation) Insert(values ...Value) error {
	t, err := r.Schema().Encode(values...)
	if err != nil {
		return err
	}
	return r.InsertTuple(t)
}

// InsertTuple appends an encoded row, maintaining any indexes.
func (r *Relation) InsertTuple(t Tuple) error {
	return r.withIntent(lock.Exclusive, func() error {
		if err := r.rel.File.Append(t, simio.Uncharged); err != nil {
			return err
		}
		schema := r.Schema()
		for _, col := range r.rel.IndexedColumns() {
			ix, _ := r.rel.Index(col)
			ix.Insert(schema.KeyBytes(t, col), t.Clone())
		}
		// Ship inside the intent so replication order is the primary's
		// serialization order (likewise in every mutation below). A
		// refused ship — this node was demoted mid-call — fails the
		// statement: the write is not acknowledged.
		return r.db.shipOp(shipOp{kind: opInsert, rel: r.Name(), tuple: t.Clone()})
	})
}

// Flush writes any buffered partial page.
func (r *Relation) Flush() error {
	return r.withIntent(lock.Exclusive, func() error {
		if err := r.rel.File.Flush(simio.Uncharged); err != nil {
			return err
		}
		return r.db.shipOp(shipOp{kind: opFlush, rel: r.Name()})
	})
}

// Scan iterates all tuples in storage order until fn returns false. The
// scan charges sequential IO per page, like the paper's case-2 access.
func (r *Relation) Scan(fn func(Tuple) bool) error {
	return r.withIntent(lock.Shared, func() error {
		return r.rel.File.Scan(simio.Seq, fn)
	})
}

// CreateIndex builds an index on the named column.
func (r *Relation) CreateIndex(column string, kind IndexKind) error {
	col := r.Schema().FieldIndex(column)
	if col < 0 {
		return fmt.Errorf("mmdb: relation %q has no column %q", r.Name(), column)
	}
	return r.withIntent(lock.Exclusive, func() error {
		if _, err := r.db.cat.BuildIndex(r.Name(), col, kind); err != nil {
			return err
		}
		return r.db.shipOp(shipOp{kind: opIndex, rel: r.Name(), column: column, ixKind: kind})
	})
}

// Lookup returns all rows whose column equals v, using an index when one
// exists (charging comparisons per §2's cost model) and falling back to a
// charged sequential scan otherwise.
func (r *Relation) Lookup(column string, v Value) ([]Tuple, error) {
	schema := r.Schema()
	col := schema.FieldIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("mmdb: relation %q has no column %q", r.Name(), column)
	}
	probe := make(Tuple, schema.Width())
	if err := schema.Set(probe, col, v); err != nil {
		return nil, err
	}
	key := schema.KeyBytes(probe, col)
	var out []Tuple
	err := r.withIntent(lock.Shared, func() error {
		if ix, ok := r.rel.Index(col); ok {
			out = ix.Search(key)
			// Charge one comparison per level-equivalent; the indexes count
			// their own comparisons internally for the Table 1 experiments,
			// while engine-level lookups charge the clock here.
			r.db.clock.Comps(int64(len(out) + 1))
			return nil
		}
		return r.rel.File.Scan(simio.Seq, func(t tuple.Tuple) bool {
			r.db.clock.Comps(1)
			if schema.CompareField(t, probe, col) == 0 {
				out = append(out, t.Clone())
			}
			return true
		})
	})
	return out, err
}

// Delete removes every row whose column equals v, returning the count.
// Indexes on the relation are rebuilt afterwards (bulk maintenance).
func (r *Relation) Delete(column string, v Value) (int64, error) {
	schema := r.Schema()
	col := schema.FieldIndex(column)
	if col < 0 {
		return 0, fmt.Errorf("mmdb: relation %q has no column %q", r.Name(), column)
	}
	probe := make(Tuple, schema.Width())
	if err := schema.Set(probe, col, v); err != nil {
		return 0, err
	}
	var removed int64
	err := r.withIntent(lock.Exclusive, func() error {
		err := r.rel.File.Rewrite(func(t tuple.Tuple) (tuple.Tuple, bool) {
			if schema.CompareField(t, probe, col) == 0 {
				removed++
				return nil, false
			}
			return t, true
		})
		if err != nil {
			removed = 0
			return err
		}
		if removed > 0 {
			if err := r.rebuildIndexes(); err != nil {
				return err
			}
		}
		if err := r.db.shipOp(shipOp{kind: opDelete, rel: r.Name(), column: column, value: v}); err != nil {
			removed = 0
			return err
		}
		return nil
	})
	return removed, err
}

// DeleteWhere removes every row matching the predicate, returning the
// count. A nil predicate removes every row. Indexes are rebuilt
// afterwards (bulk maintenance), exactly as in Delete.
func (r *Relation) DeleteWhere(p *Pred) (int64, error) {
	if p != nil {
		if err := p.Err(); err != nil {
			return 0, err
		}
		if p.rel != r.rel {
			return 0, fmt.Errorf("mmdb: predicate over %q used on %q", p.rel.Name, r.Name())
		}
	}
	var removed int64
	err := r.withIntent(lock.Exclusive, func() error {
		err := r.rel.File.Rewrite(func(t tuple.Tuple) (tuple.Tuple, bool) {
			if p == nil || p.inner.Eval(t) {
				removed++
				return nil, false
			}
			return t, true
		})
		if err != nil {
			removed = 0
			return err
		}
		if removed > 0 {
			if err := r.rebuildIndexes(); err != nil {
				return err
			}
		}
		var inner expr.Predicate
		if p != nil {
			inner = p.inner
		}
		if err := r.db.shipOp(shipOp{kind: opDeleteWhere, rel: r.Name(), pred: inner}); err != nil {
			removed = 0
			return err
		}
		return nil
	})
	return removed, err
}

// Update sets setColumn to newVal on every row whose column equals v,
// returning the count. Indexes are rebuilt afterwards.
func (r *Relation) Update(column string, v Value, setColumn string, newVal Value) (int64, error) {
	schema := r.Schema()
	col := schema.FieldIndex(column)
	setCol := schema.FieldIndex(setColumn)
	if col < 0 || setCol < 0 {
		return 0, fmt.Errorf("mmdb: relation %q lacks column %q or %q", r.Name(), column, setColumn)
	}
	probe := make(Tuple, schema.Width())
	if err := schema.Set(probe, col, v); err != nil {
		return 0, err
	}
	var changed int64
	err := r.withIntent(lock.Exclusive, func() error {
		var setErr error
		err := r.rel.File.Rewrite(func(t tuple.Tuple) (tuple.Tuple, bool) {
			if schema.CompareField(t, probe, col) != 0 {
				return t, true
			}
			out := t.Clone()
			if err := schema.Set(out, setCol, newVal); err != nil && setErr == nil {
				setErr = err
				return t, true
			}
			changed++
			return out, true
		})
		if err == nil {
			err = setErr
		}
		if err != nil {
			changed = 0
			return err
		}
		if changed > 0 {
			if err := r.rebuildIndexes(); err != nil {
				return err
			}
		}
		if err := r.db.shipOp(shipOp{
			kind: opUpdate, rel: r.Name(),
			column: column, value: v,
			setColumn: setColumn, newValue: newVal,
		}); err != nil {
			changed = 0
			return err
		}
		return nil
	})
	return changed, err
}

func (r *Relation) rebuildIndexes() error {
	for _, col := range r.rel.IndexedColumns() {
		ix, _ := r.rel.Index(col)
		if _, err := r.db.cat.BuildIndex(r.Name(), col, ix.Kind()); err != nil {
			return err
		}
	}
	return nil
}

// AscendRange walks rows with column >= start in key order until fn
// returns false, via the column's index.
func (r *Relation) AscendRange(column string, start Value, fn func(Tuple) bool) error {
	schema := r.Schema()
	col := schema.FieldIndex(column)
	if col < 0 {
		return fmt.Errorf("mmdb: relation %q has no column %q", r.Name(), column)
	}
	probe := make(Tuple, schema.Width())
	if err := schema.Set(probe, col, start); err != nil {
		return err
	}
	return r.withIntent(lock.Shared, func() error {
		ix, ok := r.rel.Index(col)
		if !ok {
			return fmt.Errorf("mmdb: no index on %s.%s (range scans need one)", r.Name(), column)
		}
		ix.Ascend(schema.KeyBytes(probe, col), func(_ []byte, t tuple.Tuple) bool {
			return fn(t)
		})
		return nil
	})
}
