package mmdb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/catalog"
	"mmdb/internal/expr"
	"mmdb/internal/lock"
	"mmdb/internal/simio"
	sqlfront "mmdb/internal/sql"
)

// ErrReadOnlyReplica is returned when a write reaches a replica database:
// replicas refuse exclusive relation intents at the lock layer, except for
// the replication applier itself and session-private temporaries.
var ErrReadOnlyReplica = errors.New("mmdb: database is a read-only replica")

// ErrNotPrimary is the errors.Is sentinel for writes refused because the
// node is not the cluster's current primary (a replica, a fenced primary
// mid-promotion, or a demoted/crashed old primary). The concrete error is
// a *NotPrimaryError carrying the epoch and the current primary's name.
var ErrNotPrimary = errors.New("mmdb: not the primary")

// NotPrimaryError is the concrete write refusal on a clustered database
// that is not (or no longer) the primary. Epoch is the cluster epoch at
// refusal time — it increases at every promotion, so a client comparing
// epochs can tell a stale hint from a fresh one — and Hint names the node
// that was primary at that epoch. It matches both ErrNotPrimary and
// ErrReadOnlyReplica via errors.Is, so pre-failover replica code keeps
// working.
type NotPrimaryError struct {
	Epoch uint64
	Hint  string // node name of the current primary
}

func (e *NotPrimaryError) Error() string {
	return fmt.Sprintf("mmdb: not the primary (epoch %d, primary is %q)", e.Epoch, e.Hint)
}

// Is matches the ErrNotPrimary sentinel and, for compatibility, the older
// ErrReadOnlyReplica sentinel.
func (e *NotPrimaryError) Is(target error) bool {
	return target == ErrNotPrimary || target == ErrReadOnlyReplica
}

// LostTailError reports the acknowledged-but-unreplicated tail a lossy
// failover gave up: the old primary's WAL is gone and no surviving
// replica had applied past SettledLSN, so the acked writes in
// (SettledLSN, AckedLSN] are lost. FailoverLostWAL still completes the
// promotion — availability with an honest, typed admission of the loss.
type LostTailError struct {
	Epoch      uint64 // epoch of the new primary
	AckedLSN   uint64 // last LSN the old primary acknowledged
	SettledLSN uint64 // the surviving prefix the new primary starts from
}

func (e *LostTailError) Error() string {
	return fmt.Sprintf("mmdb: failover lost %d acked writes (settled LSN %d of %d, epoch %d)",
		e.Lost(), e.SettledLSN, e.AckedLSN, e.Epoch)
}

// Lost returns the number of acked operations the failover dropped.
func (e *LostTailError) Lost() uint64 { return e.AckedLSN - e.SettledLSN }

// shipOpKind enumerates the replicated mutations. Everything a primary
// does to durable relations reduces to these eight logical operations;
// replaying them in ship order on a replica that started from the same
// (empty) state reproduces the primary byte for byte, because every
// operation is deterministic.
type shipOpKind uint8

const (
	opCreateRelation shipOpKind = iota
	opDropRelation
	opInsert
	opFlush
	opIndex
	opDelete
	opDeleteWhere
	opUpdate
)

// shipOp is one logical mutation in the primary's serialization order.
// lsn is the cluster log sequence number the op was assigned at enqueue;
// replicas publish it as their applied horizon once the op lands. epoch
// records which primary produced it: after a lossy failover, stale ops
// above the old epoch's cut LSN are superseded history and appliers
// discard them instead of diverging.
type shipOp struct {
	lsn       uint64
	epoch     uint64
	kind      shipOpKind
	rel       string
	tuple     Tuple
	schema    *Schema
	column    string
	setColumn string
	value     Value
	newValue  Value
	ixKind    IndexKind
	pred      expr.Predicate
}

// ReadPrefMode selects how a cluster routes a read-only operation.
type ReadPrefMode uint8

const (
	// ReadPrimary always reads from the primary (the default): every
	// read observes its own writes immediately.
	ReadPrimary ReadPrefMode = iota
	// ReadNearest reads from the most caught-up live replica, falling
	// back to the primary when no replica is live.
	ReadNearest
	// ReadBounded reads from a replica whose applied horizon is within
	// MaxLSNLag operations of the cluster LSN, falling back to the
	// primary — never an error — when every replica is too stale.
	ReadBounded
)

// ReadPreference directs a cluster's read routing. The zero value is
// primary-only. Attach one to a session or one-shot query with
// WithReadPreference; on a plain (non-cluster) Database it is accepted
// and ignored.
type ReadPreference struct {
	Mode ReadPrefMode
	// MaxLSNLag bounds a ReadBounded replica's staleness, measured in
	// cluster operations behind the primary's last enqueued mutation.
	MaxLSNLag uint64
}

// PrimaryOnly returns the default read preference: all reads on the
// primary.
func PrimaryOnly() ReadPreference { return ReadPreference{Mode: ReadPrimary} }

// NearestReplica prefers the most caught-up live replica.
func NearestReplica() ReadPreference { return ReadPreference{Mode: ReadNearest} }

// BoundedStaleness prefers any live replica at most maxLSNLag operations
// behind the cluster LSN, degrading to the primary otherwise.
func BoundedStaleness(maxLSNLag uint64) ReadPreference {
	return ReadPreference{Mode: ReadBounded, MaxLSNLag: maxLSNLag}
}

// Ship-link pacing: how long one injected stall unit delays a replica's
// apply stream, and how long a transiently faulted delivery backs off
// before retrying.
const (
	shipStallUnit    = 200 * time.Microsecond
	shipRetryBackoff = 50 * time.Microsecond
)

// pendingRetain bounds how many settled ops the pending tail keeps beyond
// the slowest replica before trimming (amortizes the copy).
const pendingRetain = 1024

// clusterReplica is one replica database plus its ship link: a FIFO op
// channel drained by a single applier goroutine, so each replica applies
// the primary's mutations in serialization order.
type clusterReplica struct {
	name string
	db   *Database
	ch   chan shipOp
	done chan struct{} // closed when the applier goroutine exits

	// Rejoin gating: the applier parks on ready (when non-nil) until the
	// snapshot copy is in place, then skips ops the snapshot already
	// contains — ops at or below floor touching a snapshot relation.
	ready chan struct{}
	snap  map[string]bool // written before close(ready)
	floor atomic.Uint64

	applied    atomic.Uint64 // cluster LSN of the last applied op
	ops        atomic.Uint64 // ops applied
	transients atomic.Uint64 // transient link faults absorbed
	stalls     atomic.Uint64 // injected stall units served
	broken     atomic.Bool   // severed: permanent fault or apply error
	joining    atomic.Bool   // mid-rejoin: not routable, not yet consistent
	expedite   atomic.Bool   // failover drain: bypass the link fault schedule
	lastErr    atomic.Pointer[string]
}

// primaryRef names the current primary; swapped atomically at promotion.
type primaryRef struct {
	db   *Database
	name string
}

// downNode is a demoted-and-not-yet-rejoined old primary after a
// crash-driven failover.
type downNode struct {
	name string
	db   *Database
}

// Cluster is a primary database plus N read-only replicas fed by logical
// operation shipping: every durable mutation on the primary is assigned a
// cluster LSN while the mutating call still holds its exclusive relation
// intent, and streamed to each replica's applier in that order. Reads
// route by ReadPreference (Route, Query, the read-method mirrors); writes
// and DML always execute on the primary.
//
// Replication is asynchronous — a replica trails the primary by the ops
// still in its link — so reads on replicas are snapshot-stale by up to
// that lag. BoundedStaleness bounds it; a stalled or severed link simply
// degrades reads to the primary, never into a client-visible error.
//
// The primary role is not fixed: Promote switches it over cleanly (zero
// loss by construction), Failover recovers from primary loss using the
// retained pending tail (the primary's durable WAL tail) so no acked
// write is lost while that tail survives, and FailoverLostWAL models
// total primary loss, surfacing the dropped tail as a *LostTailError.
// Every role change increments the cluster epoch.
type Cluster struct {
	prim atomic.Pointer[primaryRef]
	reps atomic.Pointer[[]*clusterReplica] // copy-on-write under mu

	mu        sync.Mutex // orders enqueue: LSN assignment + fan-out; guards seq/pending/role flips
	seq       uint64     // last assigned cluster LSN (under mu)
	closed    bool
	switching bool // one Promote/Failover/Rejoin at a time
	fenced    bool // crash fence: enqueue refuses (failover in progress)

	// pending retains the ship ops above every replica's applied horizon:
	// the in-memory model of the primary's durable WAL tail. Failover
	// replays it into the survivor, which is what makes crash promotion
	// lossless while the old primary's log survives. pendingBase is the
	// LSN of the op before pending[0].
	pending     []shipOp
	pendingBase uint64

	epoch    atomic.Uint64            // current cluster epoch (starts at 1)
	cuts     atomic.Pointer[[]uint64] // cuts[e-1] = highest LSN an epoch-e op may apply
	lsn      atomic.Uint64            // mirror of seq for lock-free routing reads
	rr       atomic.Uint64            // round-robin cursor for replica ties
	down     atomic.Pointer[downNode] // crashed old primary awaiting Rejoin
	stop     chan struct{}            // closed in Close: interrupts stalled links
	injector atomic.Pointer[FaultInjector]

	wg sync.WaitGroup

	// Routing telemetry.
	primaryReads atomic.Uint64 // reads answered by the primary by preference
	replicaReads atomic.Uint64 // reads routed to a replica
	fallbacks    atomic.Uint64 // reads that wanted a replica but degraded
	writes       atomic.Uint64 // statements classified as writes/DML

	// Failover telemetry.
	promotions    atomic.Uint64 // planned switchovers completed
	failovers     atomic.Uint64 // crash-driven promotions completed
	tailRecovered atomic.Uint64 // acked ops replayed into a survivor from the pending tail
	tailLost      atomic.Uint64 // acked ops dropped by FailoverLostWAL
}

// OpenCluster opens a primary database plus replicas read-only copies
// wired to it by logical operation shipping. All databases share the
// same Options (each with its own scheduler, broker, lock table and
// virtual clock). Replicas start empty, exactly like the primary; load
// data through the primary and it flows to every replica. The primary
// node is named "p", replicas "r0".."rN-1".
func OpenCluster(primary Options, replicas int) (*Cluster, error) {
	if replicas < 0 {
		return nil, fmt.Errorf("mmdb: negative replica count %d", replicas)
	}
	pdb, err := Open(primary)
	if err != nil {
		return nil, err
	}
	c := &Cluster{stop: make(chan struct{})}
	c.epoch.Store(1)
	cuts := []uint64{math.MaxUint64}
	c.cuts.Store(&cuts)
	c.prim.Store(&primaryRef{db: pdb, name: "p"})
	pdb.cluster = c
	var reps []*clusterReplica
	for i := 0; i < replicas; i++ {
		rdb, err := Open(primary)
		if err != nil {
			return nil, err
		}
		rdb.cluster = c
		rdb.readOnly.Store(true)
		rdb.locks.SetExclusiveGuard(writeGuard(rdb))
		r := &clusterReplica{
			name: fmt.Sprintf("r%d", i),
			db:   rdb,
			ch:   make(chan shipOp, 1024),
			done: make(chan struct{}),
		}
		reps = append(reps, r)
		c.wg.Add(1)
		go c.runApplier(r)
	}
	c.reps.Store(&reps)
	fn := c.shipFrom(1)
	pdb.ship.Store(&fn)
	return c, nil
}

// writeGuard is the write-admission hook for a database that is not the
// primary (a replica, or a primary being fenced for switchover),
// consulted by the lock table on every exclusive intent: the replication
// applier passes (applying is set around each applied op),
// session-private relations pass (temporaries and adopted planner
// outputs, registered in localRes), everything else is a client write and
// is refused with the cluster's typed not-primary error.
func writeGuard(db *Database) func(res uint64) error {
	return func(res uint64) error {
		if db.applying.Load() {
			return nil
		}
		if _, ok := db.localRes.Load(res); ok {
			return nil
		}
		return db.writeRefused()
	}
}

// notPrimaryErr builds the typed refusal carrying the current epoch and
// primary name.
func (c *Cluster) notPrimaryErr() error {
	p := c.prim.Load()
	return &NotPrimaryError{Epoch: c.epoch.Load(), Hint: p.name}
}

// shipFrom returns the ship hook for a primary of the given epoch. The
// epoch is captured so a demoted primary's in-flight writers — holding a
// stale hook pointer — are refused at enqueue instead of corrupting the
// new epoch's history.
func (c *Cluster) shipFrom(epoch uint64) shipFn {
	return func(op shipOp) error { return c.enqueue(epoch, op) }
}

// enqueue assigns the next cluster LSN and fans the op out to every
// replica link, in one critical section so all replicas see the same
// total order. It runs inside the primary's mutating call, while the
// exclusive relation intent is still held — ship order is therefore
// exactly the primary's serialization order. Channel sends block when a
// link's buffer is full (backpressure), but the appliers always drain,
// even severed links (discarding), so enqueue cannot wedge. The op is
// also retained in the pending tail (the durable-WAL model Failover
// replays from).
func (c *Cluster) enqueue(epoch uint64, op shipOp) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if c.fenced || epoch != c.epoch.Load() {
		return c.notPrimaryErr()
	}
	c.seq++
	op.lsn = c.seq
	op.epoch = epoch
	c.lsn.Store(c.seq)
	keep := op
	if op.tuple != nil {
		keep.tuple = op.tuple.Clone()
	}
	c.pending = append(c.pending, keep)
	c.trimPendingLocked()
	for _, r := range *c.reps.Load() {
		ro := op
		if op.tuple != nil {
			// Each replica retains its copy in its own heap file.
			ro.tuple = op.tuple.Clone()
		}
		r.ch <- ro
	}
	return nil
}

// trimPendingLocked drops pending ops every replica has already applied,
// keeping a slack of pendingRetain before copying. Broken replicas still
// pin the tail — that retention is exactly what lets Failover resurrect a
// severed survivor without loss. Joining replicas don't pin it (their
// snapshot covers the floor). Callers hold c.mu.
func (c *Cluster) trimPendingLocked() {
	if len(c.pending) <= pendingRetain {
		return
	}
	floor := c.seq
	for _, r := range *c.reps.Load() {
		if r.joining.Load() {
			continue
		}
		if a := r.applied.Load(); a < floor {
			floor = a
		}
	}
	if floor <= c.pendingBase {
		return
	}
	drop := int(floor - c.pendingBase)
	if drop > len(c.pending) {
		drop = len(c.pending)
	}
	c.pending = append([]shipOp(nil), c.pending[drop:]...)
	c.pendingBase += uint64(drop)
}

// runApplier drains one replica's link: consult the fault schedule,
// apply, publish the new horizon. A permanent link fault or an apply
// error severs the link — the replica freezes at a consistent prefix and
// the goroutine keeps draining (discarding) so enqueue never blocks on a
// dead link. A rejoining replica's applier first parks until its
// snapshot is installed, then skips ops the snapshot already contains.
// Ops from a superseded epoch above that epoch's cut are discarded: they
// are the lost tail of a failed-over primary, not history.
func (c *Cluster) runApplier(r *clusterReplica) {
	defer c.wg.Done()
	defer close(r.done)
	if r.ready != nil {
		select {
		case <-r.ready:
		case <-c.stop:
			r.broken.Store(true)
		}
	}
	for op := range r.ch {
		if r.broken.Load() {
			continue
		}
		if op.lsn <= r.floor.Load() && r.snap[op.rel] {
			if op.lsn > r.applied.Load() {
				r.applied.Store(op.lsn)
			}
			continue
		}
		if cuts := *c.cuts.Load(); op.epoch >= 1 && op.epoch <= uint64(len(cuts)) && op.lsn > cuts[op.epoch-1] {
			continue
		}
		if !c.admitOp(r) {
			continue
		}
		if err := r.apply(op); err != nil {
			msg := err.Error()
			r.lastErr.Store(&msg)
			r.broken.Store(true)
			continue
		}
		if op.lsn > r.applied.Load() {
			r.applied.Store(op.lsn)
		}
		r.ops.Add(1)
	}
}

// admitOp consults the armed fault schedule for one delivery on this
// replica's link (scope "repl/ship/<name>"). Transient faults retry
// after a short backoff — the stream may not skip an op, or the replica
// would diverge. Stalls sleep, creating real staleness. Permanent faults
// sever the link. An expedited link (failover drain: the source is
// already dead, so its fault schedule is void) bypasses the injector;
// a cluster shutdown interrupts any sleep and severs the link.
func (c *Cluster) admitOp(r *clusterReplica) bool {
	inj := c.injector.Load()
	if inj == nil || r.expedite.Load() {
		return true
	}
	for {
		out := inj.ChargedIO("repl/ship/"+r.name, simio.Seq)
		if out.Stall > 0 {
			r.stalls.Add(uint64(out.Stall))
			select {
			case <-time.After(time.Duration(out.Stall) * shipStallUnit):
			case <-c.stop:
				r.broken.Store(true)
				return false
			}
		}
		if out.Err == nil {
			return true
		}
		if errors.Is(out.Err, ErrFaultPermanent) {
			msg := out.Err.Error()
			r.lastErr.Store(&msg)
			r.broken.Store(true)
			return false
		}
		r.transients.Add(1)
		select {
		case <-time.After(shipRetryBackoff):
		case <-c.stop:
			r.broken.Store(true)
			return false
		}
		if r.expedite.Load() {
			return true
		}
	}
}

// apply replays one logical op through the replica's own public mutation
// path — the same locking, index maintenance and rewrite code the
// primary ran — with the applying flag raised so the read-only guard
// admits it. Determinism of each operation makes replay byte-exact.
func (r *clusterReplica) apply(op shipOp) error {
	db := r.db
	db.applying.Store(true)
	defer db.applying.Store(false)
	switch op.kind {
	case opCreateRelation:
		_, err := db.CreateRelation(op.rel, op.schema)
		return err
	case opDropRelation:
		return db.DropRelation(op.rel)
	}
	rel, err := db.Relation(op.rel)
	if err != nil {
		return err
	}
	switch op.kind {
	case opInsert:
		return rel.InsertTuple(op.tuple)
	case opFlush:
		return rel.Flush()
	case opIndex:
		return rel.CreateIndex(op.column, op.ixKind)
	case opDelete:
		_, err := rel.Delete(op.column, op.value)
		return err
	case opDeleteWhere:
		var p *Pred
		if op.pred != nil {
			p = &Pred{rel: rel.rel, inner: op.pred}
		}
		_, err := rel.DeleteWhere(p)
		return err
	case opUpdate:
		_, err := rel.Update(op.column, op.value, op.setColumn, op.newValue)
		return err
	}
	return fmt.Errorf("mmdb: unknown ship op kind %d", op.kind)
}

// Primary returns the cluster's current writable database.
func (c *Cluster) Primary() *Database { return c.prim.Load().db }

// PrimaryName returns the current primary's node name ("p" at open;
// a replica's name after it is promoted).
func (c *Cluster) PrimaryName() string { return c.prim.Load().name }

// Epoch returns the cluster epoch: 1 at open, incremented by every
// Promote and Failover. Clients compare epochs to order role information.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// IsPrimary reports whether the named node is the current primary.
func (c *Cluster) IsPrimary(name string) bool { return c.prim.Load().name == name }

// DatabaseOf returns the database serving the named node, or nil: the
// primary, any replica (live, joining or broken), or the down node.
func (c *Cluster) DatabaseOf(name string) *Database {
	if p := c.prim.Load(); p.name == name {
		return p.db
	}
	for _, r := range *c.reps.Load() {
		if r.name == name {
			return r.db
		}
	}
	if d := c.down.Load(); d != nil && d.name == name {
		return d.db
	}
	return nil
}

// DownNode returns the name of the crashed old primary awaiting Rejoin,
// or "" when none is down.
func (c *Cluster) DownNode() string {
	if d := c.down.Load(); d != nil {
		return d.name
	}
	return ""
}

// NumReplicas returns the replica count.
func (c *Cluster) NumReplicas() int { return len(*c.reps.Load()) }

// Replica returns the i-th replica database (for tests and direct
// read-only use). Writes on it fail with ErrNotPrimary. The set shifts
// at promotion: the promoted replica leaves the list and the demoted
// primary joins it.
func (c *Cluster) Replica(i int) *Database { return (*c.reps.Load())[i].db }

// LSN returns the cluster log sequence number: the count of mutations
// enqueued so far. A replica whose applied horizon equals it is fully
// caught up.
func (c *Cluster) LSN() uint64 { return c.lsn.Load() }

// ArmShipFaults installs a fault-injection schedule on the replication
// links: each delivery on replica i consults scope "repl/ship/r<i>".
// Transient faults retry (absorbed), stalls delay the apply stream
// (visible as staleness), permanent faults sever the link — after which
// reads degrade to the remaining replicas or the primary. nil disarms.
func (c *Cluster) ArmShipFaults(inj *FaultInjector) { c.injector.Store(inj) }

// beginSwitch claims the single role-change slot.
func (c *Cluster) beginSwitch() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("mmdb: cluster is closed")
	}
	if c.switching {
		return fmt.Errorf("mmdb: a promotion, failover or rejoin is already in progress")
	}
	c.switching = true
	return nil
}

func (c *Cluster) endSwitch() {
	c.mu.Lock()
	c.switching = false
	c.mu.Unlock()
}

// FailoverReport describes a completed crash-driven promotion.
type FailoverReport struct {
	OldPrimary    string
	NewPrimary    string
	Epoch         uint64 // epoch of the new primary
	AckedLSN      uint64 // last LSN the old primary acknowledged
	SettledLSN    uint64 // survivor's horizon before the tail replay
	TailRecovered uint64 // acked ops replayed from the retained pending tail
	TailLost      uint64 // acked ops dropped (FailoverLostWAL only)
}

// Promote performs a planned switchover to replica i: fence the current
// primary read-only (new writes refuse with *NotPrimaryError), drain
// every in-flight writer (lock-table quiesce), barrier the target replica
// at the full acknowledged prefix, then flip the roles — the old primary
// rejoins as a replica, the target's applier channel drains into it and
// closes, and the epoch increments. Zero acked-write loss by
// construction: nothing was acknowledged that the target has not applied.
// On error (ctx expired, target severed) the fence lifts and the cluster
// continues under the old primary.
func (c *Cluster) Promote(ctx context.Context, i int) error {
	if err := c.beginSwitch(); err != nil {
		return err
	}
	reps := *c.reps.Load()
	if i < 0 || i >= len(reps) {
		c.endSwitch()
		return fmt.Errorf("mmdb: no replica %d", i)
	}
	target := reps[i]
	if target.broken.Load() || target.joining.Load() {
		c.endSwitch()
		return fmt.Errorf("mmdb: replica %s is not live (broken or rejoining)", target.name)
	}
	old := c.prim.Load()

	// Fence: new exclusive intents on the old primary refuse from here
	// on. In-flight writers already past the fence finish and ship.
	old.db.readOnly.Store(true)
	old.db.locks.SetExclusiveGuard(writeGuard(old.db))
	unfence := func() {
		old.db.locks.SetExclusiveGuard(nil)
		old.db.readOnly.Store(false)
		c.endSwitch()
	}

	// Drain in-flight writers: after the quiesce every acknowledged write
	// has enqueued its ship op, so c.seq is the final acked LSN.
	if err := old.db.locks.QuiesceExclusive(ctx); err != nil {
		unfence()
		return fmt.Errorf("mmdb: promote: quiescing the primary: %w", err)
	}
	c.mu.Lock()
	acked := c.seq
	c.mu.Unlock()

	// Barrier: the target must have applied the full acked prefix.
	if err := c.awaitApplied(ctx, target, acked); err != nil {
		unfence()
		return fmt.Errorf("mmdb: promote: replica %s catching up to LSN %d: %w", target.name, acked, err)
	}

	c.detach(target)
	if target.applied.Load() != acked || target.broken.Load() {
		// The applier failed between the barrier and the drain; the
		// target is not a consistent full prefix. Reverse the fence.
		c.reattach(target)
		unfence()
		return fmt.Errorf("mmdb: promote: replica %s failed during drain", target.name)
	}
	c.flipDetached(target, old, acked, true)
	c.promotions.Add(1)
	c.endSwitch()
	return nil
}

// Failover performs a crash-driven promotion after primary loss, with
// the old primary's durable WAL tail (the retained pending ops) still
// available: fence and cut off the old primary, settle the surviving
// replicas, pick the one with the highest applied LSN, replay the acked
// tail it is missing from the pending buffer, and flip. Zero acked-write
// loss — even when the survivor's link was severed mid-stream — because
// everything acknowledged is in the retained tail. The old primary
// becomes the down node; Rejoin brings it back as a replica.
func (c *Cluster) Failover(ctx context.Context) (*FailoverReport, error) {
	return c.failover(ctx, false)
}

// FailoverLostWAL is Failover for total primary loss: the old primary's
// WAL is gone, so the acked tail beyond the best survivor's applied
// horizon cannot be recovered. The promotion still completes — the
// cluster is available on the survivor's consistent prefix — and the
// dropped tail is surfaced as a *LostTailError alongside the report.
func (c *Cluster) FailoverLostWAL(ctx context.Context) (*FailoverReport, error) {
	return c.failover(ctx, true)
}

func (c *Cluster) failover(ctx context.Context, walLost bool) (*FailoverReport, error) {
	if err := c.beginSwitch(); err != nil {
		return nil, err
	}
	old := c.prim.Load()

	// Fence the (crashed) old primary: sessions still holding it refuse
	// new writes, and the crash fence cuts enqueue off even for writers
	// already past the guard — acked is frozen the moment we set it.
	old.db.readOnly.Store(true)
	old.db.locks.SetExclusiveGuard(writeGuard(old.db))
	c.mu.Lock()
	c.fenced = true
	acked := c.seq
	c.mu.Unlock()
	abort := func() {
		c.mu.Lock()
		c.fenced = false
		c.mu.Unlock()
		old.db.locks.SetExclusiveGuard(nil)
		old.db.readOnly.Store(false)
		c.endSwitch()
	}

	// Pick the survivor: the live replica with the highest applied LSN,
	// or — when every link was severed — the best frozen prefix, which
	// the pending tail can top up.
	reps := *c.reps.Load()
	var survivor *clusterReplica
	live := false
	for _, r := range reps {
		if r.joining.Load() {
			continue
		}
		rLive := !r.broken.Load()
		switch {
		case survivor == nil,
			rLive && !live,
			rLive == live && r.applied.Load() > survivor.applied.Load():
			survivor, live = r, rLive
		}
	}
	if survivor == nil {
		abort()
		return nil, fmt.Errorf("mmdb: failover: no replica to promote")
	}

	if live {
		// The survivor's link holds every acked op it has not applied
		// yet (live links never drop ops). Expedite past the injected
		// link faults — the link's source is dead, its schedule is void —
		// and drain to the acked horizon.
		survivor.expedite.Store(true)
		if err := c.awaitApplied(ctx, survivor, acked); err != nil {
			survivor.expedite.Store(false)
			abort()
			return nil, fmt.Errorf("mmdb: failover: draining replica %s: %w", survivor.name, err)
		}
	}
	c.detach(survivor)
	settled := survivor.applied.Load()
	if live && (settled != acked || survivor.broken.Load()) {
		c.reattach(survivor)
		abort()
		return nil, fmt.Errorf("mmdb: failover: replica %s failed during drain", survivor.name)
	}

	rep := &FailoverReport{
		OldPrimary: old.name,
		NewPrimary: survivor.name,
		AckedLSN:   acked,
		SettledLSN: settled,
	}
	var lost *LostTailError
	newStart := acked
	switch {
	case settled == acked:
		// Fully caught up; nothing to replay.
	case !walLost:
		// Replay the acked tail (settled, acked] from the retained
		// pending buffer — the primary's durable WAL tail — directly
		// into the survivor. The trim floor never passes the slowest
		// replica, so the tail is always there.
		if err := c.replayPending(survivor, settled, acked); err != nil {
			c.reattach(survivor)
			abort()
			return nil, fmt.Errorf("mmdb: failover: replaying WAL tail into %s: %w", survivor.name, err)
		}
		rep.TailRecovered = acked - settled
		c.tailRecovered.Add(acked - settled)
	default:
		// The WAL is gone with the primary: the acked ops above the
		// survivor's horizon are lost. Promote the consistent prefix and
		// say so, honestly and typed.
		rep.TailLost = acked - settled
		c.tailLost.Add(acked - settled)
		newStart = settled
		lost = &LostTailError{AckedLSN: acked, SettledLSN: settled}
	}
	survivor.broken.Store(false)
	survivor.lastErr.Store(nil)
	survivor.expedite.Store(false)
	c.flipDetached(survivor, old, newStart, false)
	rep.Epoch = c.epoch.Load()
	c.failovers.Add(1)
	c.endSwitch()
	if lost != nil {
		lost.Epoch = rep.Epoch
		return rep, lost
	}
	return rep, nil
}

// awaitApplied polls until the replica's applied horizon reaches lsn,
// its link breaks, or ctx ends.
func (c *Cluster) awaitApplied(ctx context.Context, r *clusterReplica, lsn uint64) error {
	for {
		if r.applied.Load() >= lsn {
			return nil
		}
		if r.broken.Load() {
			return fmt.Errorf("mmdb: replica %s link severed at LSN %d", r.name, r.applied.Load())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// detach removes the replica from the routing set, closes its link and
// waits for its applier goroutine to finish draining. After detach the
// caller owns the replica's database exclusively.
func (c *Cluster) detach(target *clusterReplica) {
	c.mu.Lock()
	reps := *c.reps.Load()
	out := make([]*clusterReplica, 0, len(reps))
	for _, r := range reps {
		if r != target {
			out = append(out, r)
		}
	}
	c.reps.Store(&out)
	close(target.ch)
	c.mu.Unlock()
	<-target.done
}

// reattach restores a detached replica with a fresh (empty) link after an
// aborted promotion. Ops enqueued while it was detached are missing from
// its link, so it rejoins broken — frozen at a consistent prefix — unless
// nothing was enqueued meanwhile (the fenced/quiesced case, where it
// resumes cleanly).
func (c *Cluster) reattach(target *clusterReplica) {
	c.mu.Lock()
	if target.applied.Load() < c.seq && !target.broken.Load() {
		msg := "mmdb: link reset during aborted promotion"
		target.lastErr.Store(&msg)
		target.broken.Store(true)
	}
	nr := &clusterReplica{
		name: target.name,
		db:   target.db,
		ch:   make(chan shipOp, 1024),
		done: make(chan struct{}),
	}
	nr.applied.Store(target.applied.Load())
	nr.ops.Store(target.ops.Load())
	nr.transients.Store(target.transients.Load())
	nr.stalls.Store(target.stalls.Load())
	nr.broken.Store(target.broken.Load())
	nr.lastErr.Store(target.lastErr.Load())
	reps := append(append([]*clusterReplica(nil), *c.reps.Load()...), nr)
	c.reps.Store(&reps)
	c.wg.Add(1)
	go c.runApplier(nr)
	c.mu.Unlock()
}

// replayPending applies the pending ops in (from, to] directly into a
// detached survivor — the failover path's read of the primary's durable
// WAL tail.
func (c *Cluster) replayPending(r *clusterReplica, from, to uint64) error {
	c.mu.Lock()
	if from < c.pendingBase {
		c.mu.Unlock()
		return fmt.Errorf("mmdb: pending tail starts at LSN %d, survivor settled at %d", c.pendingBase, from)
	}
	tail := append([]shipOp(nil), c.pending[from-c.pendingBase:to-c.pendingBase]...)
	c.mu.Unlock()
	for _, op := range tail {
		if err := r.apply(op); err != nil {
			return err
		}
		r.applied.Store(op.lsn)
		r.ops.Add(1)
	}
	return nil
}

// flipDetached installs a detached replica as the new primary at
// newStart (the LSN its history ends at), demotes the old primary, and
// increments the epoch. oldRejoins controls the old primary's fate: a
// planned switchover reattaches it as a replica already caught up to
// newStart; a crash failover parks it as the down node for Rejoin.
func (c *Cluster) flipDetached(target *clusterReplica, old *primaryRef, newStart uint64, oldRejoins bool) {
	c.mu.Lock()
	// Seal the old epoch at newStart: any op it produced above that LSN
	// is superseded history (the lost tail) and appliers discard it.
	oldEpoch := c.epoch.Load()
	cuts := append([]uint64(nil), *c.cuts.Load()...)
	cuts[oldEpoch-1] = newStart
	cuts = append(cuts, math.MaxUint64)
	c.cuts.Store(&cuts)
	newEpoch := oldEpoch + 1
	c.epoch.Store(newEpoch)
	c.seq = newStart
	c.lsn.Store(newStart)
	if newStart >= c.pendingBase {
		if keep := int(newStart - c.pendingBase); keep < len(c.pending) {
			c.pending = c.pending[:keep]
		}
	}

	// The target becomes the primary.
	ndb := target.db
	ndb.locks.SetExclusiveGuard(nil)
	ndb.readOnly.Store(false)
	fn := c.shipFrom(newEpoch)
	ndb.ship.Store(&fn)
	c.prim.Store(&primaryRef{db: ndb, name: target.name})

	// The old primary is already fenced (guard + readOnly set by the
	// caller); drop its stale ship hook.
	odb := old.db
	odb.ship.Store(nil)
	if oldRejoins {
		nr := &clusterReplica{
			name: old.name,
			db:   odb,
			ch:   make(chan shipOp, 1024),
			done: make(chan struct{}),
		}
		nr.applied.Store(newStart)
		reps := append(append([]*clusterReplica(nil), *c.reps.Load()...), nr)
		c.reps.Store(&reps)
		c.wg.Add(1)
		go c.runApplier(nr)
	} else {
		c.down.Store(&downNode{name: old.name, db: odb})
	}
	c.fenced = false
	c.mu.Unlock()
}

// Rejoin brings the down node (the old primary a Failover parked) back
// into the cluster as a replica. Its history may have diverged — after a
// lossy failover it can hold acked-but-superseded writes — so Rejoin
// rebuilds it from the new primary: drop its durable relations, register
// a parked applier link, freeze a consistent snapshot of the primary
// under shared relation intents, copy it over, then open the gate — the
// applier skips ops the snapshot already contains and applies the rest,
// catching the node up to the live stream. Concurrent writes are safe:
// ops that race the snapshot are deduplicated by the (floor, snapshot
// relation set) rule.
func (c *Cluster) Rejoin(ctx context.Context) error {
	if err := c.beginSwitch(); err != nil {
		return err
	}
	defer c.endSwitch()
	dn := c.down.Load()
	if dn == nil {
		return fmt.Errorf("mmdb: no node is down")
	}
	db := dn.db

	// Scrub the node's possibly-diverged durable state. The applying
	// flag passes its own write guard; its ship hook is nil, so nothing
	// replicates.
	db.applying.Store(true)
	for _, name := range db.cat.Names() {
		if isTempRelation(name) {
			continue
		}
		if _, ok := db.localRes.Load(catalog.ResourceID(name)); ok {
			continue
		}
		if err := db.DropRelation(name); err != nil {
			db.applying.Store(false)
			return fmt.Errorf("mmdb: rejoin: scrubbing %q: %w", name, err)
		}
	}
	db.applying.Store(false)

	// Register the parked link first: every op enqueued from here on is
	// buffered for the applier, so nothing between registration and the
	// snapshot can be missed.
	r := &clusterReplica{
		name:  dn.name,
		db:    db,
		ch:    make(chan shipOp, 1024),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	r.joining.Store(true)
	c.mu.Lock()
	reps := append(append([]*clusterReplica(nil), *c.reps.Load()...), r)
	c.reps.Store(&reps)
	c.wg.Add(1)
	go c.runApplier(r)
	c.mu.Unlock()
	fail := func(err error) error {
		c.detach(r)
		return err
	}

	// Freeze a snapshot: shared intents on every replicated relation
	// block writers, so in-flight mutations have enqueued (ship happens
	// under the exclusive intent) before the locks grant.
	p := c.prim.Load()
	names := c.shippedRelationsOf(p.db)
	txn := p.db.locks.NextID()
	resources := make([]uint64, len(names))
	for i, n := range names {
		resources[i] = catalog.ResourceID(n)
	}
	if _, err := p.db.locks.AcquireAll(ctx, txn, resources, lock.Shared); err != nil {
		return fail(fmt.Errorf("mmdb: rejoin: freezing the primary snapshot: %w", err))
	}
	c.mu.Lock()
	snapLSN := c.seq
	c.mu.Unlock()

	if err := c.copyRelations(p.db, db, names); err != nil {
		p.db.locks.Release(txn)
		return fail(fmt.Errorf("mmdb: rejoin: copying the snapshot: %w", err))
	}

	// Open the gate: the applier skips ops at or below snapLSN touching
	// a snapshot relation (the copy already contains them) and applies
	// everything else.
	snap := make(map[string]bool, len(names))
	for _, n := range names {
		snap[n] = true
	}
	r.snap = snap
	r.floor.Store(snapLSN)
	r.applied.Store(snapLSN)
	close(r.ready)
	p.db.locks.Release(txn)

	// Catch up to the live stream, then become routable.
	if err := c.awaitApplied(ctx, r, c.lsn.Load()); err != nil {
		return fmt.Errorf("mmdb: rejoin: %s catching up: %w", r.name, err)
	}
	db.readOnly.Store(true)
	db.locks.SetExclusiveGuard(writeGuard(db))
	r.joining.Store(false)
	c.down.Store(nil)
	return nil
}

// copyRelations copies the named relations — schema, tuples in storage
// order, index set — from src into dst, which must be quiescent for the
// duration (Rejoin holds shared intents on src; dst is the detached down
// node).
func (c *Cluster) copyRelations(src, dst *Database, names []string) error {
	dst.applying.Store(true)
	defer dst.applying.Store(false)
	for _, name := range names {
		srel, err := src.cat.Get(name)
		if err != nil {
			return err
		}
		schema := srel.Schema()
		var tuples []Tuple
		if err := srel.File.Scan(simio.Uncharged, func(t Tuple) bool {
			tuples = append(tuples, t.Clone())
			return true
		}); err != nil {
			return err
		}
		drel, err := dst.CreateRelation(name, schema)
		if err != nil {
			return err
		}
		for _, t := range tuples {
			if err := drel.InsertTuple(t); err != nil {
				return err
			}
		}
		for _, col := range srel.IndexedColumns() {
			ix, _ := srel.Index(col)
			if err := drel.CreateIndex(schema.Field(col).Name, ix.Kind()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Route picks the database a read with the given preference should run
// on. It never fails: when no replica qualifies the primary answers.
func (c *Cluster) Route(pref ReadPreference) *Database {
	switch pref.Mode {
	case ReadNearest:
		if r := c.pickNearest(); r != nil {
			c.replicaReads.Add(1)
			return r.db
		}
		c.fallbacks.Add(1)
		return c.prim.Load().db
	case ReadBounded:
		if r := c.pickBounded(pref.MaxLSNLag); r != nil {
			c.replicaReads.Add(1)
			return r.db
		}
		c.fallbacks.Add(1)
		return c.prim.Load().db
	default:
		c.primaryReads.Add(1)
		return c.prim.Load().db
	}
}

// pickNearest returns the live replica with the highest applied horizon,
// round-robin among ties, or nil when none is live. Joining replicas are
// not yet consistent and never serve reads.
func (c *Cluster) pickNearest() *clusterReplica {
	reps := *c.reps.Load()
	n := len(reps)
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1)) % n
	var best *clusterReplica
	var bestApplied uint64
	for i := 0; i < n; i++ {
		r := reps[(start+i)%n]
		if r.broken.Load() || r.joining.Load() {
			continue
		}
		if a := r.applied.Load(); best == nil || a > bestApplied {
			best, bestApplied = r, a
		}
	}
	return best
}

// pickBounded returns a live replica within maxLag ops of the cluster
// LSN, round-robin, or nil when every replica is too stale, severed or
// mid-rejoin.
func (c *Cluster) pickBounded(maxLag uint64) *clusterReplica {
	reps := *c.reps.Load()
	n := len(reps)
	if n == 0 {
		return nil
	}
	lsn := c.lsn.Load()
	start := int(c.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		r := reps[(start+i)%n]
		if r.broken.Load() || r.joining.Load() {
			continue
		}
		if lsn-r.applied.Load() <= maxLag {
			return r
		}
	}
	return nil
}

// databaseFor classifies one SQL statement for routing: SELECTs go to
// Route under the session's read preference, everything else — DML, and
// statements that do not parse (the primary surfaces the error) — to the
// primary.
func (c *Cluster) databaseFor(text string, opts []SessionOption) *Database {
	stmt, err := sqlfront.Parse(text)
	if err != nil {
		return c.prim.Load().db
	}
	if _, ok := stmt.(*sqlfront.SelectStmt); ok {
		return c.Route(resolveSessionConfig(opts).readPref)
	}
	c.writes.Add(1)
	return c.prim.Load().db
}

// SessionFor admits a session on the database one SQL statement should
// run on: a replica for SELECTs when the read preference asks for one,
// the primary otherwise. The wire server's per-statement routing hook.
func (c *Cluster) SessionFor(ctx context.Context, text string, opts ...SessionOption) (*Session, error) {
	return c.databaseFor(text, opts).NewSession(ctx, opts...)
}

// NewSession admits a read session on the database the preference
// routes to (the primary without WithReadPreference). Sessions pinned to
// a replica see a consistent snapshot trailing the primary; writes in
// them fail with ErrNotPrimary.
func (c *Cluster) NewSession(ctx context.Context, opts ...SessionOption) (*Session, error) {
	return c.Route(resolveSessionConfig(opts).readPref).NewSession(ctx, opts...)
}

// Query runs one SQL statement on the cluster: SELECTs route by the
// session options' read preference, DML runs on the primary.
func (c *Cluster) Query(text string, opts ...SessionOption) (*SQLResult, error) {
	return c.QueryContext(context.Background(), text, opts...)
}

// QueryContext is the context-first Query.
func (c *Cluster) QueryContext(ctx context.Context, text string, opts ...SessionOption) (*SQLResult, error) {
	return c.databaseFor(text, opts).QueryContext(ctx, text, opts...)
}

// Join routes the read-only join by the options' read preference.
func (c *Cluster) Join(algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple), opts ...SessionOption) (JoinResult, error) {
	return c.JoinContext(context.Background(), algorithm, left, right, leftCol, rightCol, emit, opts...)
}

// JoinContext is the context-first cluster Join.
func (c *Cluster) JoinContext(ctx context.Context, algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple), opts ...SessionOption) (JoinResult, error) {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.JoinContext(ctx, algorithm, left, right, leftCol, rightCol, emit, opts...)
}

// Aggregate routes the read-only aggregation by the options' read
// preference.
func (c *Cluster) Aggregate(relation, groupCol, valueCol string, opts ...SessionOption) ([]GroupRow, error) {
	return c.AggregateContext(context.Background(), relation, groupCol, valueCol, opts...)
}

// AggregateContext is the context-first cluster Aggregate.
func (c *Cluster) AggregateContext(ctx context.Context, relation, groupCol, valueCol string, opts ...SessionOption) ([]GroupRow, error) {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.AggregateContext(ctx, relation, groupCol, valueCol, opts...)
}

// OrderBy routes the read-only ordered scan by the options' read
// preference.
func (c *Cluster) OrderBy(relation, column string, fn func(Tuple) bool, opts ...SessionOption) error {
	return c.OrderByContext(context.Background(), relation, column, fn, opts...)
}

// OrderByContext is the context-first cluster OrderBy.
func (c *Cluster) OrderByContext(ctx context.Context, relation, column string, fn func(Tuple) bool, opts ...SessionOption) error {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.OrderByContext(ctx, relation, column, fn, opts...)
}

// Distinct routes the read-only duplicate elimination by the options'
// read preference.
func (c *Cluster) Distinct(relation, column string, opts ...SessionOption) ([]Value, error) {
	return c.DistinctContext(context.Background(), relation, column, opts...)
}

// DistinctContext is the context-first cluster Distinct.
func (c *Cluster) DistinctContext(ctx context.Context, relation, column string, opts ...SessionOption) ([]Value, error) {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.DistinctContext(ctx, relation, column, opts...)
}

// WaitCaughtUp blocks until every live replica's applied horizon reaches
// the cluster LSN (or ctx ends). Severed replicas are excluded — they
// will never catch up — and so are replicas mid-rejoin.
func (c *Cluster) WaitCaughtUp(ctx context.Context) error {
	for {
		target := c.lsn.Load()
		caught := true
		for _, r := range *c.reps.Load() {
			if !r.broken.Load() && !r.joining.Load() && r.applied.Load() < target {
				caught = false
				break
			}
		}
		if caught && target == c.lsn.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// VerifyReplicas compares every live replica against the primary byte
// for byte: same durable relations, same cardinalities, same tuples in
// storage order, same indexed columns. Call it on a quiesced, caught-up
// cluster (it reads heap files directly, uncharged and without intents).
// It is the cluster determinism oracle — any difference is a divergence
// bug, never expected staleness.
func (c *Cluster) VerifyReplicas() error {
	pdb := c.prim.Load().db
	names := c.shippedRelationsOf(pdb)
	for _, r := range *c.reps.Load() {
		if r.broken.Load() || r.joining.Load() {
			continue
		}
		for _, name := range names {
			if err := c.compareRelation(pdb, r, name); err != nil {
				return err
			}
		}
		// No extra durable relations on the replica either.
		for _, name := range r.db.cat.Names() {
			if isTempRelation(name) {
				continue
			}
			if _, ok := r.db.localRes.Load(catalog.ResourceID(name)); ok {
				continue
			}
			if _, err := pdb.cat.Get(name); err != nil {
				return fmt.Errorf("mmdb: replica %s has relation %q the primary lacks", r.name, name)
			}
		}
	}
	return nil
}

// shippedRelationsOf lists a database's replicated relations: everything
// durable except temporaries and adopted (database-local) files.
func (c *Cluster) shippedRelationsOf(db *Database) []string {
	var out []string
	for _, name := range db.cat.Names() {
		if isTempRelation(name) {
			continue
		}
		if _, ok := db.localRes.Load(catalog.ResourceID(name)); ok {
			continue
		}
		out = append(out, name)
	}
	return out
}

func (c *Cluster) compareRelation(pdb *Database, r *clusterReplica, name string) error {
	prel, err := pdb.cat.Get(name)
	if err != nil {
		return err
	}
	rrel, err := r.db.cat.Get(name)
	if err != nil {
		return fmt.Errorf("mmdb: replica %s lacks relation %q: %w", r.name, name, err)
	}
	if got, want := rrel.File.NumTuples(), prel.File.NumTuples(); got != want {
		return fmt.Errorf("mmdb: replica %s relation %q has %d tuples, primary %d", r.name, name, got, want)
	}
	var prim []Tuple
	if err := prel.File.Scan(simio.Uncharged, func(t Tuple) bool {
		prim = append(prim, t.Clone())
		return true
	}); err != nil {
		return err
	}
	i := 0
	var diverged error
	if err := rrel.File.Scan(simio.Uncharged, func(t Tuple) bool {
		if i >= len(prim) || !bytes.Equal(t, prim[i]) {
			diverged = fmt.Errorf("mmdb: replica %s relation %q diverges from the primary at tuple %d", r.name, name, i)
			return false
		}
		i++
		return true
	}); err != nil {
		return err
	}
	if diverged != nil {
		return diverged
	}
	pix, rix := prel.IndexedColumns(), rrel.IndexedColumns()
	if len(pix) != len(rix) {
		return fmt.Errorf("mmdb: replica %s relation %q has %d indexes, primary %d", r.name, name, len(rix), len(pix))
	}
	for i := range pix {
		if pix[i] != rix[i] {
			return fmt.Errorf("mmdb: replica %s relation %q indexes column %d, primary column %d", r.name, name, rix[i], pix[i])
		}
	}
	return nil
}

// ReplicaMetrics reports one replica's stream health.
type ReplicaMetrics struct {
	Name       string
	AppliedLSN uint64
	Lag        uint64 // ops behind the cluster LSN
	Ops        uint64 // ops applied
	Transients uint64 // transient link faults absorbed
	Stalls     uint64 // injected stall units served
	Broken     bool
	Joining    bool // mid-rejoin: not yet routable
	LastError  string
}

// ClusterMetrics reports cluster routing, replication and failover
// activity.
type ClusterMetrics struct {
	LSN          uint64 // mutations enqueued
	Epoch        uint64 // cluster epoch (increments per promotion)
	PrimaryName  string // current primary node
	PrimaryReads uint64 // reads answered by the primary by preference
	ReplicaReads uint64 // reads routed to a replica
	Fallbacks    uint64 // reads that wanted a replica but degraded
	Writes       uint64 // statements classified as writes/DML

	Promotions    uint64 // planned switchovers completed
	Failovers     uint64 // crash-driven promotions completed
	TailRecovered uint64 // acked ops replayed from the retained WAL tail
	TailLost      uint64 // acked ops dropped by FailoverLostWAL

	Replicas []ReplicaMetrics
}

// Metrics snapshots the cluster's routing counters and per-replica
// stream state.
func (c *Cluster) Metrics() ClusterMetrics {
	m := ClusterMetrics{
		LSN:           c.lsn.Load(),
		Epoch:         c.epoch.Load(),
		PrimaryName:   c.prim.Load().name,
		PrimaryReads:  c.primaryReads.Load(),
		ReplicaReads:  c.replicaReads.Load(),
		Fallbacks:     c.fallbacks.Load(),
		Writes:        c.writes.Load(),
		Promotions:    c.promotions.Load(),
		Failovers:     c.failovers.Load(),
		TailRecovered: c.tailRecovered.Load(),
		TailLost:      c.tailLost.Load(),
	}
	for _, r := range *c.reps.Load() {
		rm := ReplicaMetrics{
			Name:       r.name,
			AppliedLSN: r.applied.Load(),
			Ops:        r.ops.Load(),
			Transients: r.transients.Load(),
			Stalls:     r.stalls.Load(),
			Broken:     r.broken.Load(),
			Joining:    r.joining.Load(),
		}
		if rm.AppliedLSN <= m.LSN {
			rm.Lag = m.LSN - rm.AppliedLSN
		}
		if e := r.lastErr.Load(); e != nil {
			rm.LastError = *e
		}
		m.Replicas = append(m.Replicas, rm)
	}
	return m
}

// Close stops replication: new mutations stop shipping, the links drain,
// and the applier goroutines exit — even mid-stall, because the stop
// channel interrupts injected sleeps (such a link is marked broken,
// frozen at its consistent prefix). The databases remain usable.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	for _, r := range *c.reps.Load() {
		close(r.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}
