package mmdb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/catalog"
	"mmdb/internal/expr"
	"mmdb/internal/simio"
	sqlfront "mmdb/internal/sql"
)

// ErrReadOnlyReplica is returned when a write reaches a replica database:
// replicas refuse exclusive relation intents at the lock layer, except for
// the replication applier itself and session-private temporaries.
var ErrReadOnlyReplica = errors.New("mmdb: database is a read-only replica")

// shipOpKind enumerates the replicated mutations. Everything a primary
// does to durable relations reduces to these eight logical operations;
// replaying them in ship order on a replica that started from the same
// (empty) state reproduces the primary byte for byte, because every
// operation is deterministic.
type shipOpKind uint8

const (
	opCreateRelation shipOpKind = iota
	opDropRelation
	opInsert
	opFlush
	opIndex
	opDelete
	opDeleteWhere
	opUpdate
)

// shipOp is one logical mutation in the primary's serialization order.
// lsn is the cluster log sequence number the op was assigned at enqueue;
// replicas publish it as their applied horizon once the op lands.
type shipOp struct {
	lsn       uint64
	kind      shipOpKind
	rel       string
	tuple     Tuple
	schema    *Schema
	column    string
	setColumn string
	value     Value
	newValue  Value
	ixKind    IndexKind
	pred      expr.Predicate
}

// ReadPrefMode selects how a cluster routes a read-only operation.
type ReadPrefMode uint8

const (
	// ReadPrimary always reads from the primary (the default): every
	// read observes its own writes immediately.
	ReadPrimary ReadPrefMode = iota
	// ReadNearest reads from the most caught-up live replica, falling
	// back to the primary when no replica is live.
	ReadNearest
	// ReadBounded reads from a replica whose applied horizon is within
	// MaxLSNLag operations of the cluster LSN, falling back to the
	// primary — never an error — when every replica is too stale.
	ReadBounded
)

// ReadPreference directs a cluster's read routing. The zero value is
// primary-only. Attach one to a session or one-shot query with
// WithReadPreference; on a plain (non-cluster) Database it is accepted
// and ignored.
type ReadPreference struct {
	Mode ReadPrefMode
	// MaxLSNLag bounds a ReadBounded replica's staleness, measured in
	// cluster operations behind the primary's last enqueued mutation.
	MaxLSNLag uint64
}

// PrimaryOnly returns the default read preference: all reads on the
// primary.
func PrimaryOnly() ReadPreference { return ReadPreference{Mode: ReadPrimary} }

// NearestReplica prefers the most caught-up live replica.
func NearestReplica() ReadPreference { return ReadPreference{Mode: ReadNearest} }

// BoundedStaleness prefers any live replica at most maxLSNLag operations
// behind the cluster LSN, degrading to the primary otherwise.
func BoundedStaleness(maxLSNLag uint64) ReadPreference {
	return ReadPreference{Mode: ReadBounded, MaxLSNLag: maxLSNLag}
}

// Ship-link pacing: how long one injected stall unit delays a replica's
// apply stream, and how long a transiently faulted delivery backs off
// before retrying.
const (
	shipStallUnit    = 200 * time.Microsecond
	shipRetryBackoff = 50 * time.Microsecond
)

// clusterReplica is one replica database plus its ship link: a FIFO op
// channel drained by a single applier goroutine, so each replica applies
// the primary's mutations in serialization order.
type clusterReplica struct {
	name string
	db   *Database
	ch   chan shipOp

	applied    atomic.Uint64 // cluster LSN of the last applied op
	ops        atomic.Uint64 // ops applied
	transients atomic.Uint64 // transient link faults absorbed
	stalls     atomic.Uint64 // injected stall units served
	broken     atomic.Bool   // severed: permanent fault or apply error
	lastErr    atomic.Pointer[string]
}

// Cluster is a primary database plus N read-only replicas fed by logical
// operation shipping: every durable mutation on the primary is assigned a
// cluster LSN while the mutating call still holds its exclusive relation
// intent, and streamed to each replica's applier in that order. Reads
// route by ReadPreference (Route, Query, the read-method mirrors); writes
// and DML always execute on the primary.
//
// Replication is asynchronous — a replica trails the primary by the ops
// still in its link — so reads on replicas are snapshot-stale by up to
// that lag. BoundedStaleness bounds it; a stalled or severed link simply
// degrades reads to the primary, never into a client-visible error.
type Cluster struct {
	primary  *Database
	replicas []*clusterReplica

	mu     sync.Mutex // orders enqueue: LSN assignment + fan-out
	seq    uint64     // last assigned cluster LSN (under mu)
	closed bool

	lsn      atomic.Uint64 // mirror of seq for lock-free routing reads
	rr       atomic.Uint64 // round-robin cursor for replica ties
	injector atomic.Pointer[FaultInjector]

	wg sync.WaitGroup

	// Routing telemetry.
	primaryReads atomic.Uint64 // reads answered by the primary by preference
	replicaReads atomic.Uint64 // reads routed to a replica
	fallbacks    atomic.Uint64 // reads that wanted a replica but degraded
	writes       atomic.Uint64 // statements classified as writes/DML
}

// OpenCluster opens a primary database plus replicas read-only copies
// wired to it by logical operation shipping. All databases share the
// same Options (each with its own scheduler, broker, lock table and
// virtual clock). Replicas start empty, exactly like the primary; load
// data through the primary and it flows to every replica.
func OpenCluster(primary Options, replicas int) (*Cluster, error) {
	if replicas < 0 {
		return nil, fmt.Errorf("mmdb: negative replica count %d", replicas)
	}
	pdb, err := Open(primary)
	if err != nil {
		return nil, err
	}
	c := &Cluster{primary: pdb}
	for i := 0; i < replicas; i++ {
		rdb, err := Open(primary)
		if err != nil {
			return nil, err
		}
		rdb.readOnly = true
		rdb.locks.SetExclusiveGuard(replicaGuard(rdb))
		r := &clusterReplica{
			name: fmt.Sprintf("r%d", i),
			db:   rdb,
			ch:   make(chan shipOp, 1024),
		}
		c.replicas = append(c.replicas, r)
		c.wg.Add(1)
		go c.runApplier(r)
	}
	pdb.ship = c.enqueue
	return c, nil
}

// replicaGuard is the replica's write-admission hook, consulted by the
// lock table on every exclusive intent: the replication applier passes
// (applying is set around each applied op), session-private relations
// pass (temporaries and adopted planner outputs, registered in
// localRes), everything else is a client write and is refused.
func replicaGuard(db *Database) func(res uint64) error {
	return func(res uint64) error {
		if db.applying.Load() {
			return nil
		}
		if _, ok := db.localRes.Load(res); ok {
			return nil
		}
		return ErrReadOnlyReplica
	}
}

// enqueue assigns the next cluster LSN and fans the op out to every
// replica link, in one critical section so all replicas see the same
// total order. It runs inside the primary's mutating call, while the
// exclusive relation intent is still held — ship order is therefore
// exactly the primary's serialization order. Channel sends block when a
// link's buffer is full (backpressure), but the appliers always drain,
// even severed links (discarding), so enqueue cannot wedge.
func (c *Cluster) enqueue(op shipOp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.seq++
	op.lsn = c.seq
	c.lsn.Store(c.seq)
	for _, r := range c.replicas {
		ro := op
		if op.tuple != nil {
			// Each replica retains its copy in its own heap file.
			ro.tuple = op.tuple.Clone()
		}
		r.ch <- ro
	}
}

// runApplier drains one replica's link: consult the fault schedule,
// apply, publish the new horizon. A permanent link fault or an apply
// error severs the link — the replica freezes at a consistent prefix and
// the goroutine keeps draining (discarding) so enqueue never blocks on a
// dead link.
func (c *Cluster) runApplier(r *clusterReplica) {
	defer c.wg.Done()
	for op := range r.ch {
		if r.broken.Load() {
			continue
		}
		if !c.admitOp(r) {
			continue
		}
		if err := r.apply(op); err != nil {
			msg := err.Error()
			r.lastErr.Store(&msg)
			r.broken.Store(true)
			continue
		}
		r.applied.Store(op.lsn)
		r.ops.Add(1)
	}
}

// admitOp consults the armed fault schedule for one delivery on this
// replica's link (scope "repl/ship/<name>"). Transient faults retry
// after a short backoff — the stream may not skip an op, or the replica
// would diverge. Stalls sleep, creating real staleness. Permanent faults
// sever the link.
func (c *Cluster) admitOp(r *clusterReplica) bool {
	inj := c.injector.Load()
	if inj == nil {
		return true
	}
	for {
		out := inj.ChargedIO("repl/ship/"+r.name, simio.Seq)
		if out.Stall > 0 {
			r.stalls.Add(uint64(out.Stall))
			time.Sleep(time.Duration(out.Stall) * shipStallUnit)
		}
		if out.Err == nil {
			return true
		}
		if errors.Is(out.Err, ErrFaultPermanent) {
			msg := out.Err.Error()
			r.lastErr.Store(&msg)
			r.broken.Store(true)
			return false
		}
		r.transients.Add(1)
		time.Sleep(shipRetryBackoff)
	}
}

// apply replays one logical op through the replica's own public mutation
// path — the same locking, index maintenance and rewrite code the
// primary ran — with the applying flag raised so the read-only guard
// admits it. Determinism of each operation makes replay byte-exact.
func (r *clusterReplica) apply(op shipOp) error {
	db := r.db
	db.applying.Store(true)
	defer db.applying.Store(false)
	switch op.kind {
	case opCreateRelation:
		_, err := db.CreateRelation(op.rel, op.schema)
		return err
	case opDropRelation:
		return db.DropRelation(op.rel)
	}
	rel, err := db.Relation(op.rel)
	if err != nil {
		return err
	}
	switch op.kind {
	case opInsert:
		return rel.InsertTuple(op.tuple)
	case opFlush:
		return rel.Flush()
	case opIndex:
		return rel.CreateIndex(op.column, op.ixKind)
	case opDelete:
		_, err := rel.Delete(op.column, op.value)
		return err
	case opDeleteWhere:
		var p *Pred
		if op.pred != nil {
			p = &Pred{rel: rel.rel, inner: op.pred}
		}
		_, err := rel.DeleteWhere(p)
		return err
	case opUpdate:
		_, err := rel.Update(op.column, op.value, op.setColumn, op.newValue)
		return err
	}
	return fmt.Errorf("mmdb: unknown ship op kind %d", op.kind)
}

// Primary returns the cluster's writable database.
func (c *Cluster) Primary() *Database { return c.primary }

// NumReplicas returns the replica count.
func (c *Cluster) NumReplicas() int { return len(c.replicas) }

// Replica returns the i-th replica database (for tests and direct
// read-only use). Writes on it fail with ErrReadOnlyReplica.
func (c *Cluster) Replica(i int) *Database { return c.replicas[i].db }

// LSN returns the cluster log sequence number: the count of mutations
// enqueued so far. A replica whose applied horizon equals it is fully
// caught up.
func (c *Cluster) LSN() uint64 { return c.lsn.Load() }

// ArmShipFaults installs a fault-injection schedule on the replication
// links: each delivery on replica i consults scope "repl/ship/r<i>".
// Transient faults retry (absorbed), stalls delay the apply stream
// (visible as staleness), permanent faults sever the link — after which
// reads degrade to the remaining replicas or the primary. nil disarms.
func (c *Cluster) ArmShipFaults(inj *FaultInjector) { c.injector.Store(inj) }

// Route picks the database a read with the given preference should run
// on. It never fails: when no replica qualifies the primary answers.
func (c *Cluster) Route(pref ReadPreference) *Database {
	switch pref.Mode {
	case ReadNearest:
		if r := c.pickNearest(); r != nil {
			c.replicaReads.Add(1)
			return r.db
		}
		c.fallbacks.Add(1)
		return c.primary
	case ReadBounded:
		if r := c.pickBounded(pref.MaxLSNLag); r != nil {
			c.replicaReads.Add(1)
			return r.db
		}
		c.fallbacks.Add(1)
		return c.primary
	default:
		c.primaryReads.Add(1)
		return c.primary
	}
}

// pickNearest returns the live replica with the highest applied horizon,
// round-robin among ties, or nil when none is live.
func (c *Cluster) pickNearest() *clusterReplica {
	n := len(c.replicas)
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1)) % n
	var best *clusterReplica
	var bestApplied uint64
	for i := 0; i < n; i++ {
		r := c.replicas[(start+i)%n]
		if r.broken.Load() {
			continue
		}
		if a := r.applied.Load(); best == nil || a > bestApplied {
			best, bestApplied = r, a
		}
	}
	return best
}

// pickBounded returns a live replica within maxLag ops of the cluster
// LSN, round-robin, or nil when every replica is too stale or severed.
func (c *Cluster) pickBounded(maxLag uint64) *clusterReplica {
	n := len(c.replicas)
	if n == 0 {
		return nil
	}
	lsn := c.lsn.Load()
	start := int(c.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		r := c.replicas[(start+i)%n]
		if r.broken.Load() {
			continue
		}
		if lsn-r.applied.Load() <= maxLag {
			return r
		}
	}
	return nil
}

// databaseFor classifies one SQL statement for routing: SELECTs go to
// Route under the session's read preference, everything else — DML, and
// statements that do not parse (the primary surfaces the error) — to the
// primary.
func (c *Cluster) databaseFor(text string, opts []SessionOption) *Database {
	stmt, err := sqlfront.Parse(text)
	if err != nil {
		return c.primary
	}
	if _, ok := stmt.(*sqlfront.SelectStmt); ok {
		return c.Route(resolveSessionConfig(opts).readPref)
	}
	c.writes.Add(1)
	return c.primary
}

// SessionFor admits a session on the database one SQL statement should
// run on: a replica for SELECTs when the read preference asks for one,
// the primary otherwise. The wire server's per-statement routing hook.
func (c *Cluster) SessionFor(ctx context.Context, text string, opts ...SessionOption) (*Session, error) {
	return c.databaseFor(text, opts).NewSession(ctx, opts...)
}

// NewSession admits a read session on the database the preference
// routes to (the primary without WithReadPreference). Sessions pinned to
// a replica see a consistent snapshot trailing the primary; writes in
// them fail with ErrReadOnlyReplica.
func (c *Cluster) NewSession(ctx context.Context, opts ...SessionOption) (*Session, error) {
	return c.Route(resolveSessionConfig(opts).readPref).NewSession(ctx, opts...)
}

// Query runs one SQL statement on the cluster: SELECTs route by the
// session options' read preference, DML runs on the primary.
func (c *Cluster) Query(text string, opts ...SessionOption) (*SQLResult, error) {
	return c.QueryContext(context.Background(), text, opts...)
}

// QueryContext is the context-first Query.
func (c *Cluster) QueryContext(ctx context.Context, text string, opts ...SessionOption) (*SQLResult, error) {
	return c.databaseFor(text, opts).QueryContext(ctx, text, opts...)
}

// Join routes the read-only join by the options' read preference.
func (c *Cluster) Join(algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple), opts ...SessionOption) (JoinResult, error) {
	return c.JoinContext(context.Background(), algorithm, left, right, leftCol, rightCol, emit, opts...)
}

// JoinContext is the context-first cluster Join.
func (c *Cluster) JoinContext(ctx context.Context, algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple), opts ...SessionOption) (JoinResult, error) {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.JoinContext(ctx, algorithm, left, right, leftCol, rightCol, emit, opts...)
}

// Aggregate routes the read-only aggregation by the options' read
// preference.
func (c *Cluster) Aggregate(relation, groupCol, valueCol string, opts ...SessionOption) ([]GroupRow, error) {
	return c.AggregateContext(context.Background(), relation, groupCol, valueCol, opts...)
}

// AggregateContext is the context-first cluster Aggregate.
func (c *Cluster) AggregateContext(ctx context.Context, relation, groupCol, valueCol string, opts ...SessionOption) ([]GroupRow, error) {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.AggregateContext(ctx, relation, groupCol, valueCol, opts...)
}

// OrderBy routes the read-only ordered scan by the options' read
// preference.
func (c *Cluster) OrderBy(relation, column string, fn func(Tuple) bool, opts ...SessionOption) error {
	return c.OrderByContext(context.Background(), relation, column, fn, opts...)
}

// OrderByContext is the context-first cluster OrderBy.
func (c *Cluster) OrderByContext(ctx context.Context, relation, column string, fn func(Tuple) bool, opts ...SessionOption) error {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.OrderByContext(ctx, relation, column, fn, opts...)
}

// Distinct routes the read-only duplicate elimination by the options'
// read preference.
func (c *Cluster) Distinct(relation, column string, opts ...SessionOption) ([]Value, error) {
	return c.DistinctContext(context.Background(), relation, column, opts...)
}

// DistinctContext is the context-first cluster Distinct.
func (c *Cluster) DistinctContext(ctx context.Context, relation, column string, opts ...SessionOption) ([]Value, error) {
	db := c.Route(resolveSessionConfig(opts).readPref)
	return db.DistinctContext(ctx, relation, column, opts...)
}

// WaitCaughtUp blocks until every live replica's applied horizon reaches
// the cluster LSN (or ctx ends). Severed replicas are excluded — they
// will never catch up.
func (c *Cluster) WaitCaughtUp(ctx context.Context) error {
	for {
		target := c.lsn.Load()
		caught := true
		for _, r := range c.replicas {
			if !r.broken.Load() && r.applied.Load() < target {
				caught = false
				break
			}
		}
		if caught && target == c.lsn.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// VerifyReplicas compares every live replica against the primary byte
// for byte: same durable relations, same cardinalities, same tuples in
// storage order, same indexed columns. Call it on a quiesced, caught-up
// cluster (it reads heap files directly, uncharged and without intents).
// It is the cluster determinism oracle — any difference is a divergence
// bug, never expected staleness.
func (c *Cluster) VerifyReplicas() error {
	names := c.shippedRelations()
	for _, r := range c.replicas {
		if r.broken.Load() {
			continue
		}
		for _, name := range names {
			if err := c.compareRelation(r, name); err != nil {
				return err
			}
		}
		// No extra durable relations on the replica either.
		for _, name := range r.db.cat.Names() {
			if isTempRelation(name) {
				continue
			}
			if _, ok := r.db.localRes.Load(catalog.ResourceID(name)); ok {
				continue
			}
			if _, err := c.primary.cat.Get(name); err != nil {
				return fmt.Errorf("mmdb: replica %s has relation %q the primary lacks", r.name, name)
			}
		}
	}
	return nil
}

// shippedRelations lists the primary's replicated relations: everything
// durable except temporaries and adopted (primary-local) files.
func (c *Cluster) shippedRelations() []string {
	var out []string
	for _, name := range c.primary.cat.Names() {
		if isTempRelation(name) {
			continue
		}
		if _, ok := c.primary.localRes.Load(catalog.ResourceID(name)); ok {
			continue
		}
		out = append(out, name)
	}
	return out
}

func (c *Cluster) compareRelation(r *clusterReplica, name string) error {
	prel, err := c.primary.cat.Get(name)
	if err != nil {
		return err
	}
	rrel, err := r.db.cat.Get(name)
	if err != nil {
		return fmt.Errorf("mmdb: replica %s lacks relation %q: %w", r.name, name, err)
	}
	if got, want := rrel.File.NumTuples(), prel.File.NumTuples(); got != want {
		return fmt.Errorf("mmdb: replica %s relation %q has %d tuples, primary %d", r.name, name, got, want)
	}
	var prim []Tuple
	if err := prel.File.Scan(simio.Uncharged, func(t Tuple) bool {
		prim = append(prim, t.Clone())
		return true
	}); err != nil {
		return err
	}
	i := 0
	var diverged error
	if err := rrel.File.Scan(simio.Uncharged, func(t Tuple) bool {
		if i >= len(prim) || !bytes.Equal(t, prim[i]) {
			diverged = fmt.Errorf("mmdb: replica %s relation %q diverges from the primary at tuple %d", r.name, name, i)
			return false
		}
		i++
		return true
	}); err != nil {
		return err
	}
	if diverged != nil {
		return diverged
	}
	pix, rix := prel.IndexedColumns(), rrel.IndexedColumns()
	if len(pix) != len(rix) {
		return fmt.Errorf("mmdb: replica %s relation %q has %d indexes, primary %d", r.name, name, len(rix), len(pix))
	}
	for i := range pix {
		if pix[i] != rix[i] {
			return fmt.Errorf("mmdb: replica %s relation %q indexes column %d, primary column %d", r.name, name, rix[i], pix[i])
		}
	}
	return nil
}

// ReplicaMetrics reports one replica's stream health.
type ReplicaMetrics struct {
	Name       string
	AppliedLSN uint64
	Lag        uint64 // ops behind the cluster LSN
	Ops        uint64 // ops applied
	Transients uint64 // transient link faults absorbed
	Stalls     uint64 // injected stall units served
	Broken     bool
	LastError  string
}

// ClusterMetrics reports cluster routing and replication activity.
type ClusterMetrics struct {
	LSN          uint64 // mutations enqueued
	PrimaryReads uint64 // reads answered by the primary by preference
	ReplicaReads uint64 // reads routed to a replica
	Fallbacks    uint64 // reads that wanted a replica but degraded
	Writes       uint64 // statements classified as writes/DML
	Replicas     []ReplicaMetrics
}

// Metrics snapshots the cluster's routing counters and per-replica
// stream state.
func (c *Cluster) Metrics() ClusterMetrics {
	m := ClusterMetrics{
		LSN:          c.lsn.Load(),
		PrimaryReads: c.primaryReads.Load(),
		ReplicaReads: c.replicaReads.Load(),
		Fallbacks:    c.fallbacks.Load(),
		Writes:       c.writes.Load(),
	}
	for _, r := range c.replicas {
		rm := ReplicaMetrics{
			Name:       r.name,
			AppliedLSN: r.applied.Load(),
			Ops:        r.ops.Load(),
			Transients: r.transients.Load(),
			Stalls:     r.stalls.Load(),
			Broken:     r.broken.Load(),
		}
		rm.Lag = m.LSN - rm.AppliedLSN
		if e := r.lastErr.Load(); e != nil {
			rm.LastError = *e
		}
		m.Replicas = append(m.Replicas, rm)
	}
	return m
}

// Close stops replication: new mutations stop shipping, the links drain,
// and the applier goroutines exit. The databases remain usable (the
// replicas frozen at their final horizons).
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, r := range c.replicas {
		close(r.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}
