package mmdb

import (
	"fmt"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/recovery"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// CommitPolicy selects the §5 commit discipline.
type CommitPolicy = wal.CommitPolicy

// Commit policies.
const (
	// FlushPerCommit writes one log page per commit (~100 tps on a 10 ms
	// device).
	FlushPerCommit = wal.FlushPerCommit
	// GroupCommit batches commit records sharing a log page (§5.2).
	GroupCommit = wal.GroupCommit
	// StableMemoryCommit commits on write to a battery-backed log buffer
	// (§5.4).
	StableMemoryCommit = wal.StableMemory
)

// RecoveryConfig parameterizes a recovery simulation run.
type RecoveryConfig struct {
	// Accounts is the number of bank records (Gray's debit/credit mix).
	// 0 means 10000.
	Accounts int
	// Terminals is the closed-loop multiprogramming level. 0 means 50.
	Terminals int
	// UpdatesPerTxn is the accounts each transfer touches. 0 means 3.
	UpdatesPerTxn int
	// HotAccounts restricts choices to the first N accounts, forcing
	// pre-commit dependencies. 0 means uniform.
	HotAccounts int
	// Policy is the commit discipline.
	Policy CommitPolicy
	// LogDevices is the partitioned-log width. 0 means 1.
	LogDevices int
	// LogPageWrite is the device service time per 4 KB log page.
	// 0 means 10ms, the paper's figure.
	LogPageWrite time.Duration
	// CompressLog drains only new values of committed transactions to
	// disk (§5.4; requires StableMemoryCommit).
	CompressLog bool
	// Checkpoint runs the §5.3 background sweep on a dedicated data disk.
	Checkpoint bool
	// AbortEvery aborts every n-th transaction before commit. 0 = never.
	AbortEvery int
	// ReadOnlyTerminals adds closed-loop read-only transactions scanning
	// ReadAccounts accounts with ReadCPU of think time per read (§6).
	ReadOnlyTerminals int
	ReadAccounts      int
	ReadCPU           time.Duration
	// Versioning serves the read-only transactions from Reed-style
	// version chains (no locks) instead of shared locks.
	Versioning bool
	// Seed fixes the workload randomness.
	Seed int64
	// TornTails makes a torn log-page write expose its surviving byte
	// prefix to recovery (the realistic medium: a crash mid-write leaves a
	// partial page). Off, a torn page vanishes entirely. Either way the
	// per-record checksums make recovery stop cleanly at the tear.
	TornTails bool
	// SegmentPages, when positive, bounds the log into segment files of
	// that many pages per device ("log0/seg-000001", ...) with a persisted
	// dual-slot commit.meta recording the durable {segment, offset, LSN}
	// horizon. Crash recovery then runs the segmented parallel path:
	// segments wholly below the horizon are skipped unread, and the scan
	// and page-partitioned replay fan out over ReplayParallelism workers.
	SegmentPages int
	// CompactSegments runs the §5.6 background log compressor: cold
	// segments are rewritten keeping only the newest committed value per
	// record with pre-images stripped. Requires SegmentPages.
	CompactSegments bool
	// TruncateLog reclaims the log prefix no recovery could need; on a
	// segmented log this deletes whole segment files. Effective with
	// Checkpoint, which advances the redo bound (§5.5).
	TruncateLog bool
	// ReplayParallelism is the recovery fan-out width (0 = serial,
	// <0 = one worker per CPU). Replay cost counters are bit-identical at
	// every width.
	ReplayParallelism int
	// Faults, when set, is consulted on every log (and checkpoint) device
	// page write: the chaos knob that injects transient write errors,
	// permanent device failures, stalls and torn pages into the §5 engine.
	Faults *FaultInjector
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Accounts == 0 {
		c.Accounts = 10000
	}
	if c.Terminals == 0 {
		c.Terminals = 50
	}
	if c.UpdatesPerTxn == 0 {
		c.UpdatesPerTxn = 3
	}
	if c.LogDevices == 0 {
		c.LogDevices = 1
	}
	if c.LogPageWrite == 0 {
		c.LogPageWrite = 10 * time.Millisecond
	}
	return c
}

// RecoveryStats summarizes a recovery simulation.
type RecoveryStats struct {
	Committed      int64
	Aborted        int64
	ReadTxns       int64 // acknowledged read-only transactions
	TPS            float64
	ReadTPS        float64
	MeanGroupSize  float64
	LogPages       int64
	LogBytesToDisk int64
	CkptPages      int64
}

// RecoverySim drives the §5 transaction engine in virtual time.
type RecoverySim struct {
	cfg    RecoveryConfig
	sim    *event.Sim
	engine *txn.Engine
}

// NewRecoverySim builds a simulation.
func NewRecoverySim(cfg RecoveryConfig) (*RecoverySim, error) {
	cfg = cfg.withDefaults()
	sim := &event.Sim{}
	newDevice := func(name string) *wal.Device {
		d := wal.NewDevice(name, cfg.LogPageWrite)
		d.ExposeTorn = cfg.TornTails
		if cfg.Faults != nil {
			d.Injector = cfg.Faults
		}
		return d
	}
	var devices []*wal.Device
	for i := 0; i < cfg.LogDevices; i++ {
		devices = append(devices, newDevice(fmt.Sprintf("log%d", i)))
	}
	tc := txn.Config{
		Accounts:          cfg.Accounts,
		Terminals:         cfg.Terminals,
		UpdatesPerTxn:     cfg.UpdatesPerTxn,
		HotAccounts:       cfg.HotAccounts,
		AbortEvery:        cfg.AbortEvery,
		ReadOnlyTerminals: cfg.ReadOnlyTerminals,
		ReadAccounts:      cfg.ReadAccounts,
		ReadCPU:           cfg.ReadCPU,
		Versioning:        cfg.Versioning,
		Seed:              cfg.Seed,
		TruncateLog:       cfg.TruncateLog,
		Log: wal.Config{
			Policy:          cfg.Policy,
			Devices:         devices,
			Compress:        cfg.CompressLog,
			SegmentPages:    cfg.SegmentPages,
			CompactSegments: cfg.CompactSegments,
		},
	}
	if cfg.Checkpoint {
		tc.Checkpoint = true
		tc.DataDevice = newDevice("data")
	}
	e, err := txn.New(sim, tc)
	if err != nil {
		return nil, err
	}
	return &RecoverySim{cfg: cfg, sim: sim, engine: e}, nil
}

// Run executes the workload for d of virtual time and reports throughput.
func (s *RecoverySim) Run(d time.Duration) RecoveryStats {
	st := s.engine.Run(d)
	return RecoveryStats{
		Committed:      st.Committed,
		Aborted:        st.Aborted,
		ReadTxns:       st.ReadTxns,
		TPS:            st.TPS(),
		ReadTPS:        st.ReadTPS(),
		MeanGroupSize:  st.Log.MeanGroupSize(),
		LogPages:       st.Log.PagesWritten,
		LogBytesToDisk: st.Log.BytesToDisk,
		CkptPages:      st.CkptPages,
	}
}

// CrashCaptureError reports that RunAndCrash could not capture the
// crash-durable state at the requested virtual instant. Cause carries the
// engine's capture error (nil when the simulation simply ended before the
// instant arrived) and unwraps for errors.Is/As inspection.
type CrashCaptureError struct {
	At    time.Duration // the virtual instant the capture was scheduled at
	Cause error
}

func (e *CrashCaptureError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("mmdb: crash capture at %v never ran", e.At)
	}
	return fmt.Sprintf("mmdb: crash capture at %v failed: %v", e.At, e.Cause)
}

// Unwrap exposes the capture failure's cause.
func (e *CrashCaptureError) Unwrap() error { return e.Cause }

// RunAndCrash runs the workload but captures the crash-durable state at
// crashAt (before in-flight work drains), then recovers from it. It
// returns the run statistics, the recovery report, and the number of
// transactions recovery found committed. A capture that never runs or
// fails surfaces as a *CrashCaptureError.
func (s *RecoverySim) RunAndCrash(runFor, crashAt time.Duration) (RecoveryStats, RecoveryInfo, int, error) {
	if crashAt > runFor {
		crashAt = runFor
	}
	at := s.sim.Now() + crashAt
	var in recoveryInput
	s.sim.At(at, func() {
		if s.cfg.SegmentPages > 0 {
			in.seg, in.err = s.engine.CrashInputSegmented()
		} else {
			in.input, in.err = s.engine.CrashInput()
		}
		in.captured = true
	})
	st := s.Run(runFor)
	if !in.captured || in.err != nil {
		return st, RecoveryInfo{}, 0, &CrashCaptureError{At: at, Cause: in.err}
	}
	info, err := s.recoverFrom(in)
	if err != nil {
		return st, RecoveryInfo{}, 0, err
	}
	return st, info, info.Committed, nil
}

type recoveryInput struct {
	input    recovery.Input
	seg      recovery.SegInput
	err      error
	captured bool
}

// recoverFrom runs the serial or segmented recovery path on a captured
// crash image.
func (s *RecoverySim) recoverFrom(in recoveryInput) (RecoveryInfo, error) {
	var ri recovery.Info
	var err error
	if s.cfg.SegmentPages > 0 {
		in.seg.Parallelism = s.cfg.ReplayParallelism
		_, ri, err = recovery.RecoverSegmented(in.seg)
	} else {
		_, ri, err = recovery.Recover(in.input)
	}
	if err != nil {
		return RecoveryInfo{}, err
	}
	return toRecoveryInfo(ri), nil
}

// CrashAndRecover captures the durable state at the current instant and
// runs crash recovery, returning how much work recovery did.
func (s *RecoverySim) CrashAndRecover() (recovered int, info RecoveryInfo, err error) {
	in := recoveryInput{captured: true}
	if s.cfg.SegmentPages > 0 {
		in.seg, in.err = s.engine.CrashInputSegmented()
	} else {
		in.input, in.err = s.engine.CrashInput()
	}
	if in.err != nil {
		return 0, RecoveryInfo{}, in.err
	}
	info, err = s.recoverFrom(in)
	if err != nil {
		return 0, RecoveryInfo{}, err
	}
	return info.Committed, info, nil
}

// RecoveryInfo reports recovery effort. The Segments*, ReplayWorkers,
// CompactedBytes and Virtual fields are populated only by the segmented
// path (SegmentPages > 0).
type RecoveryInfo struct {
	Committed  int
	Losers     int
	Redone     int
	Undone     int
	LogScanned int

	SegmentsScanned int           // segment files read and decoded
	SegmentsSkipped int           // segments skipped below the commit.meta horizon
	ReplayWorkers   int           // recovery fan-out width used
	CompactedBytes  int64         // log bytes reclaimed by §5.6 compaction
	Virtual         time.Duration // virtual recovery time (width-independent)
}

func toRecoveryInfo(ri recovery.Info) RecoveryInfo {
	return RecoveryInfo{
		Committed:       len(ri.Committed),
		Losers:          len(ri.Losers),
		Redone:          ri.Redone,
		Undone:          ri.Undone,
		LogScanned:      ri.LogScanned,
		SegmentsScanned: ri.SegmentsScanned,
		SegmentsSkipped: ri.SegmentsSkipped,
		ReplayWorkers:   ri.ReplayWorkers,
		CompactedBytes:  ri.CompactedBytes,
		Virtual:         ri.Virtual,
	}
}
