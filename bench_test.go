package mmdb_test

// One benchmark per table and figure of the paper. Each iteration
// regenerates the corresponding experiment (at a reduced scale where the
// full 1984 workload would be wastefully slow on every -benchmem run);
// `go run ./cmd/mmdbench` prints the full-size outputs recorded in
// EXPERIMENTS.md.

import (
	"mmdb"

	"testing"
	"time"

	"mmdb/internal/core"
	"mmdb/internal/cost"
	"mmdb/internal/experiments"
	"mmdb/internal/join"
	"mmdb/internal/simio"
	"mmdb/internal/workload"
)

// BenchmarkTable1Analytic prices the §2 crossover grid (Table 1).
func BenchmarkTable1Analytic(b *testing.B) {
	base := core.AccessParams{R: 1_000_000, K: 8, L: 100, P: 4096}
	ys := []float64{0.5, 0.7, 0.9, 1.0}
	zs := []float64{10, 20, 30}
	for i := 0; i < b.N; i++ {
		core.Table1(base, ys, zs, 1000)
	}
}

// BenchmarkTable1Empirical drives real AVL and B+-tree lookups through the
// random-replacement buffer pool (Table 1 validation).
func BenchmarkTable1Empirical(b *testing.B) {
	cfg := experiments.DefaultTable1Config()
	cfg.EmpiricalR = 10000
	cfg.Lookups = 300
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Analytic evaluates the four §3 cost formulas over the
// whole ratio grid (Figure 1, analytic curves).
func BenchmarkFigure1Analytic(b *testing.B) {
	p := cost.DefaultParams()
	w := core.Table2Workload()
	ratios := core.DefaultRatios()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure1(p, w, ratios); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Executed runs all four real join operators at one
// representative memory point of the scaled-down Figure 1 workload.
func BenchmarkFigure1Executed(b *testing.B) {
	for _, alg := range []join.Algorithm{join.SortMerge, join.SimpleHash, join.GraceHash, join.HybridHash} {
		b.Run(alg.String(), func(b *testing.B) {
			clock := cost.NewClock(cost.DefaultParams())
			disk := simio.NewDisk(clock, 4096)
			r := workload.MustGenerate(disk, workload.RelationSpec{Name: "R", Tuples: 10000, KeyDomain: 10000, Seed: 1})
			s := workload.MustGenerate(disk, workload.RelationSpec{Name: "S", Tuples: 10000, KeyDomain: 10000, Seed: 2})
			spec := join.Spec{R: r, S: s, M: 60, F: 1.2}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := join.Run(alg, spec, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraceParallel runs the GRACE join with 16 partitions serially
// and with one worker per core. The virtual-clock results are bit-identical
// at every width; the wall-clock ratio between the two sub-benchmarks is
// the partition-phase speedup (≈1 on a single-core host, ≥1.5x with 4+
// cores — see EXPERIMENTS.md "Parallel execution").
func BenchmarkGraceParallel(b *testing.B) {
	for _, tc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"gomaxprocs", -1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			clock := cost.NewClock(cost.DefaultParams())
			disk := simio.NewDisk(clock, 4096)
			r := workload.MustGenerate(disk, workload.RelationSpec{Name: "R", Tuples: 10000, KeyDomain: 10000, Seed: 1})
			s := workload.MustGenerate(disk, workload.RelationSpec{Name: "S", Tuples: 10000, KeyDomain: 10000, Seed: 2})
			spec := join.Spec{R: r, S: s, M: 60, F: 1.2, GraceParts: 16, Parallelism: tc.parallelism}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := join.Run(join.GraceHash, spec, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Sweep prices every corner of the sensitivity box
// (Table 3).
func BenchmarkTable3Sweep(b *testing.B) {
	settings := core.Table3Settings()
	ratios := core.DefaultRatios()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table3Sweep(settings, ratios); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregates runs the §3.9 hash aggregate at tight and ample
// memory.
func BenchmarkAggregates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAgg(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanner runs the §4 full-vs-hash-only optimization comparison.
func BenchmarkPlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPlanner(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryThroughput simulates the §5.2/§5.4 commit disciplines
// for one virtual second each and reports virtual TPS.
func BenchmarkRecoveryThroughput(b *testing.B) {
	cases := []struct {
		name string
		cfg  mmdb.RecoveryConfig
	}{
		{"flush-per-commit", mmdb.RecoveryConfig{Policy: mmdb.FlushPerCommit}},
		{"group-commit", mmdb.RecoveryConfig{Policy: mmdb.GroupCommit}},
		{"group-commit-4logs", mmdb.RecoveryConfig{Policy: mmdb.GroupCommit, LogDevices: 4, Terminals: 200}},
		{"stable-memory", mmdb.RecoveryConfig{Policy: mmdb.StableMemoryCommit}},
		{"stable-compressed", mmdb.RecoveryConfig{Policy: mmdb.StableMemoryCommit, CompressLog: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var tps float64
			for i := 0; i < b.N; i++ {
				cfg := tc.cfg
				cfg.Seed = int64(i)
				sim, err := mmdb.NewRecoverySim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stats := sim.Run(time.Second)
				tps = stats.TPS
			}
			b.ReportMetric(tps, "virtual-tps")
		})
	}
}

// BenchmarkAblations runs the footnote/future-work studies (paged binary
// tree, replacement policies, partition sizing, TID modeling, versioning
// vs locking).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRecovery measures crash recovery after a checkpointed
// run (§5.3/§5.5).
func BenchmarkCheckpointRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim, err := mmdb.NewRecoverySim(mmdb.RecoveryConfig{
			Policy:     mmdb.GroupCommit,
			Accounts:   4096,
			Checkpoint: true,
			Seed:       int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(time.Second)
		if _, _, err := sim.CrashAndRecover(); err != nil {
			b.Fatal(err)
		}
	}
}
