package mmdb_test

import (
	"fmt"
	"time"

	"mmdb"
)

// Example builds a small database, joins two relations with the §4
// automatic algorithm choice, and reads the virtual-clock accounting.
func Example() {
	db := mmdb.MustOpen(mmdb.Options{MemoryPages: 64})

	emp, _ := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
	))
	for i := int64(0); i < 100; i++ {
		emp.Insert(mmdb.IntValue(i), mmdb.IntValue(i%4))
	}
	emp.Flush()

	dept, _ := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "name", Kind: mmdb.String, Size: 8},
	))
	for i := int64(0); i < 4; i++ {
		dept.Insert(mmdb.IntValue(i), mmdb.StringValue(fmt.Sprintf("d%d", i)))
	}
	dept.Flush()

	res, _ := db.Join(mmdb.AutoJoin, "emp", "dept", "dept", "id", nil)
	fmt.Printf("%d matches via %v\n", res.Matches, res.Algorithm)
	// Output: 100 matches via hybrid-hash
}

// ExampleRelation_Lookup indexes a column with the paper's preferred
// access method and runs a point lookup.
func ExampleRelation_Lookup() {
	db := mmdb.MustOpen(mmdb.Options{})
	rel, _ := db.CreateRelation("kv", mmdb.MustSchema(
		mmdb.Field{Name: "k", Kind: mmdb.Int64},
		mmdb.Field{Name: "v", Kind: mmdb.String, Size: 8},
	))
	rel.Insert(mmdb.IntValue(1), mmdb.StringValue("one"))
	rel.Insert(mmdb.IntValue(2), mmdb.StringValue("two"))
	rel.Flush()
	rel.CreateIndex("k", mmdb.BTree)

	rows, _ := rel.Lookup("k", mmdb.IntValue(2))
	fmt.Println(rel.Schema().Format(rows[0]))
	// Output: [2 two]
}

// ExampleDatabase_Where filters with a structured predicate.
func ExampleDatabase_Where() {
	db := mmdb.MustOpen(mmdb.Options{})
	rel, _ := db.CreateRelation("n", mmdb.MustSchema(mmdb.Field{Name: "x", Kind: mmdb.Int64}))
	for i := int64(0); i < 10; i++ {
		rel.Insert(mmdb.IntValue(i))
	}
	rel.Flush()

	p := db.MustWhere("n", "x", mmdb.Ge, mmdb.IntValue(4)).
		And(db.MustWhere("n", "x", mmdb.Lt, mmdb.IntValue(7)))
	count := 0
	rel.Select(p, func(mmdb.Tuple) bool { count++; return true })
	fmt.Println(p, "->", count, "rows")
	// Output: (x >= 4) AND (x < 7) -> 3 rows
}

// ExampleNewRecoverySim reproduces the paper's group-commit throughput
// claim in two lines: ~10x the one-log-write-per-commit bound.
func ExampleNewRecoverySim() {
	flush, _ := mmdb.NewRecoverySim(mmdb.RecoveryConfig{Policy: mmdb.FlushPerCommit, Seed: 1})
	group, _ := mmdb.NewRecoverySim(mmdb.RecoveryConfig{Policy: mmdb.GroupCommit, Seed: 1})
	a := flush.Run(5 * time.Second)
	b := group.Run(5 * time.Second)
	fmt.Printf("flush-per-commit ~%d tps, group commit ~%dx\n",
		int(a.TPS), int(b.TPS/a.TPS+0.5))
	// Output: flush-per-commit ~99 tps, group commit ~9x
}
