package mmdb

import (
	"fmt"

	"mmdb/internal/catalog"
	"mmdb/internal/expr"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// CompareOp is a predicate comparison operator.
type CompareOp = expr.Op

// Comparison operators.
const (
	Eq = expr.Eq
	Ne = expr.Ne
	Lt = expr.Lt
	Le = expr.Le
	Gt = expr.Gt
	Ge = expr.Ge
)

// Pred is a selection predicate bound to one relation. Build leaves with
// Database.Where and combine with And/Or/Not; attach to QueryTable.Where
// for planned queries or evaluate directly with Relation.Select.
type Pred struct {
	rel   *catalog.Relation
	inner expr.Predicate
	err   error
}

// Where builds a column-vs-constant comparison on the named relation.
func (db *Database) Where(relation, column string, op CompareOp, v Value) (*Pred, error) {
	rel, err := db.cat.Get(relation)
	if err != nil {
		return nil, err
	}
	col := rel.Schema().FieldIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("mmdb: relation %q has no column %q", relation, column)
	}
	c, err := expr.NewComparison(rel.Schema(), col, op, v)
	if err != nil {
		return nil, err
	}
	return &Pred{rel: rel, inner: c}, nil
}

// MustWhere is Where that panics on error.
func (db *Database) MustWhere(relation, column string, op CompareOp, v Value) *Pred {
	p, err := db.Where(relation, column, op, v)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Pred) combine(q *Pred, f func(a, b expr.Predicate) expr.Predicate) *Pred {
	out := &Pred{rel: p.rel}
	switch {
	case p.err != nil:
		out.err = p.err
	case q.err != nil:
		out.err = q.err
	case p.rel != q.rel:
		out.err = fmt.Errorf("mmdb: combining predicates over %q and %q", p.rel.Name, q.rel.Name)
	default:
		out.inner = f(p.inner, q.inner)
	}
	return out
}

// And conjoins two predicates over the same relation.
func (p *Pred) And(q *Pred) *Pred {
	return p.combine(q, func(a, b expr.Predicate) expr.Predicate { return expr.And(a, b) })
}

// Or disjoins two predicates over the same relation.
func (p *Pred) Or(q *Pred) *Pred {
	return p.combine(q, func(a, b expr.Predicate) expr.Predicate { return expr.Or(a, b) })
}

// Not negates the predicate.
func (p *Pred) Not() *Pred {
	if p.err != nil {
		return p
	}
	return &Pred{rel: p.rel, inner: expr.Not(p.inner)}
}

// Err surfaces construction errors from And/Or over mismatched relations.
func (p *Pred) Err() error { return p.err }

// Match reports whether t satisfies the predicate.
func (p *Pred) Match(t Tuple) bool {
	if p.err != nil || p.inner == nil {
		return false
	}
	return p.inner.Eval(t)
}

// String renders the predicate.
func (p *Pred) String() string {
	if p.err != nil {
		return "<invalid: " + p.err.Error() + ">"
	}
	return p.inner.String()
}

// EstimatedSelectivity predicts the fraction of rows the predicate keeps,
// using column histograms where BuildHistogram has run and System R's
// defaults elsewhere (§4's [SELI79] statistics).
func (p *Pred) EstimatedSelectivity() float64 {
	if p.err != nil {
		return 1
	}
	return expr.Selectivity(p.inner, func(c *expr.Comparison) float64 {
		if c.Value.Kind == Int64 {
			if h, ok := p.rel.Histogram(c.Col); ok {
				return h.Selectivity(c.Op, c.Value.I)
			}
		}
		return expr.DefaultLeafSelectivity(c)
	})
}

// BuildHistogram collects an equi-width histogram on an int64 column for
// selectivity estimation.
func (db *Database) BuildHistogram(relation, column string, buckets int) error {
	rel, err := db.cat.Get(relation)
	if err != nil {
		return err
	}
	col := rel.Schema().FieldIndex(column)
	if col < 0 {
		return fmt.Errorf("mmdb: relation %q has no column %q", relation, column)
	}
	_, err = db.cat.BuildHistogram(relation, col, buckets)
	return err
}

// Select scans the relation, streaming rows that satisfy p to fn until it
// returns false. The scan charges sequential IO per page and one
// comparison per predicate leaf evaluated.
func (r *Relation) Select(p *Pred, fn func(Tuple) bool) error {
	if p.err != nil {
		return p.err
	}
	if p.rel != r.rel {
		return fmt.Errorf("mmdb: predicate over %q used on %q", p.rel.Name, r.Name())
	}
	leaves := int64(0)
	p.inner.Walk(func(*expr.Comparison) { leaves++ })
	if leaves == 0 {
		leaves = 1
	}
	return r.rel.File.Scan(simio.Seq, func(t tuple.Tuple) bool {
		r.db.clock.Comps(leaves)
		if p.inner.Eval(t) {
			return fn(t)
		}
		return true
	})
}
