package mmdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// seedCluster loads the debit/credit-style fixture through the primary:
// a relation with an index, bulk inserts, deletes and updates — every
// replicated op kind — so replicas exercise the whole apply switch.
func seedCluster(t *testing.T, c *Cluster) {
	t.Helper()
	db := c.Primary()
	schema := MustSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "dept", Kind: Int64},
		Field{Name: "balance", Kind: Int64},
		Field{Name: "name", Kind: String, Size: 12},
	)
	rel, err := db.CreateRelation("accounts", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := rel.Insert(
			IntValue(int64(i)), IntValue(int64(i%7)),
			IntValue(int64(1000+i)), StringValue(fmt.Sprintf("acct-%03d", i)),
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := rel.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rel.CreateIndex("id", BTree); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Delete("dept", IntValue(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Update("dept", IntValue(3), "balance", IntValue(9999)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("INSERT INTO accounts VALUES (500, 1, 77, 'late'), (501, 2, 78, 'later')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("DELETE FROM accounts WHERE id >= 190 AND id < 200"); err != nil {
		t.Fatal(err)
	}
}

func waitCaughtUp(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("cluster never caught up: %v", err)
	}
}

// TestReplClusterReplicaIdentity: after every replicated op kind and
// catch-up, each replica is byte-identical to the primary — across
// replica counts and operator parallelism widths.
func TestReplClusterReplicaIdentity(t *testing.T) {
	for _, replicas := range []int{1, 2, 4} {
		for _, width := range []int{1, 8} {
			t.Run(fmt.Sprintf("replicas=%d/width=%d", replicas, width), func(t *testing.T) {
				c, err := OpenCluster(Options{Parallelism: width}, replicas)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				seedCluster(t, c)
				waitCaughtUp(t, c)
				if err := c.VerifyReplicas(); err != nil {
					t.Fatal(err)
				}
				// And the routed read agrees with the primary's answer.
				want, err := c.Primary().Query("SELECT SUM(balance), COUNT(*) FROM accounts")
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < replicas; i++ {
					got, err := c.Replica(i).Query("SELECT SUM(balance), COUNT(*) FROM accounts")
					if err != nil {
						t.Fatal(err)
					}
					if string(got.Rows[0]) != string(want.Rows[0]) {
						t.Fatalf("replica %d answer differs from primary", i)
					}
				}
			})
		}
	}
}

// TestReplClusterConcurrentReadsAndWrites races writers through the
// primary against replica-routed reads while the appliers stream — the
// -race exercise — then verifies byte identity.
func TestReplClusterConcurrentReadsAndWrites(t *testing.T) {
	c, err := OpenCluster(Options{MaxConcurrentQueries: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c)
	// Let the schema reach every replica before the read storm: a read
	// routed to a replica that has not yet applied the CREATE would see a
	// database where the table does not exist yet — valid staleness, but
	// not what this test measures.
	waitCaughtUp(t, c)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := 1000 + w*100 + i
				if _, err := c.Query(fmt.Sprintf(
					"INSERT INTO accounts VALUES (%d, %d, %d, 'w%d')", id, w, id, w)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := c.Query("SELECT COUNT(*) FROM accounts",
					WithReadPreference(NearestReplica())); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.ReplicaReads == 0 {
		t.Fatal("no reads were routed to replicas")
	}
}

// TestReplReadOnlyReplicaRefusesWrites: every direct write path on a
// replica surfaces ErrReadOnlyReplica, while reads and session-private
// temporaries still work.
func TestReplReadOnlyReplicaRefusesWrites(t *testing.T) {
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c)
	waitCaughtUp(t, c)
	rep := c.Replica(0)

	if _, err := rep.CreateRelation("sneaky", MustSchema(Field{Name: "x", Kind: Int64})); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateRelation on replica: %v, want ErrReadOnlyReplica", err)
	}
	rel, err := rep.Relation("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(IntValue(9000), IntValue(0), IntValue(0), StringValue("x")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Insert on replica: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := rel.Delete("dept", IntValue(1)); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Delete on replica: %v, want ErrReadOnlyReplica", err)
	}
	if err := rep.DropRelation("accounts"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("DropRelation on replica: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := rep.Query("INSERT INTO accounts VALUES (9001, 0, 0, 'y')"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("SQL INSERT on replica: %v, want ErrReadOnlyReplica", err)
	}
	// Reads — including ones that materialize sql.tmp temporaries and
	// planner outputs — succeed on the replica.
	if _, err := rep.Query("SELECT dept, COUNT(*) FROM accounts WHERE balance > 0 GROUP BY dept"); err != nil {
		t.Fatalf("filtered aggregate on replica: %v", err)
	}
	// The cluster handle still routes DML to the primary.
	if _, err := c.Query("INSERT INTO accounts VALUES (9002, 0, 1, 'ok')"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestReplBoundedStalenessRouting: a lagging replica is never chosen
// under BoundedStaleness — reads degrade to the primary without error —
// and a caught-up one is.
func TestReplBoundedStalenessRouting(t *testing.T) {
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Slow the link: every delivery stalls. The injector stays armed for
	// the whole test — stalls delay, they never lose ops.
	c.ArmShipFaults(NewFaultInjector(7).StallEvery("repl/ship/r0", 1, 20))
	seedCluster(t, c)

	// While the applier grinds through stalled deliveries the replica
	// lags; a zero-staleness read must answer from the primary.
	if db := c.Route(BoundedStaleness(0)); db != c.Primary() {
		// Only acceptable if the replica genuinely caught up already.
		if c.Metrics().Replicas[0].Lag != 0 {
			t.Fatal("bounded read routed to a lagging replica")
		}
	}
	res, err := c.Query("SELECT COUNT(*) FROM accounts", WithReadPreference(BoundedStaleness(0)))
	if err != nil {
		t.Fatalf("stalled stream made a bounded read fail: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("bounded read returned %d rows", len(res.Rows))
	}
	// An unbounded-lag preference may use the replica even while it lags.
	if db := c.Route(BoundedStaleness(1 << 60)); db == c.Primary() {
		t.Fatal("infinite staleness bound refused the replica")
	}
	waitCaughtUp(t, c)
	// Caught up: zero staleness is now satisfiable by the replica.
	if db := c.Route(BoundedStaleness(0)); db != c.Replica(0) {
		t.Fatal("caught-up replica not chosen for bounded read")
	}
	if c.Metrics().Replicas[0].Stalls == 0 {
		t.Fatal("stall rule never fired on the ship link")
	}
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestReplSeveredLinkDegrades: a permanent ship fault freezes one
// replica at a consistent prefix; routing skips it, reads keep working,
// and the survivor stays byte-identical.
func TestReplSeveredLinkDegrades(t *testing.T) {
	c, err := OpenCluster(Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ArmShipFaults(NewFaultInjector(3).PermanentAfter("repl/ship/r0", 5))
	seedCluster(t, c)
	waitCaughtUp(t, c) // waits on live replicas only
	m := c.Metrics()
	if !m.Replicas[0].Broken {
		t.Fatal("permanent fault did not sever the r0 link")
	}
	if m.Replicas[0].AppliedLSN >= m.LSN {
		t.Fatal("severed replica unexpectedly saw every op")
	}
	for i := 0; i < 10; i++ {
		if db := c.Route(NearestReplica()); db == c.Replica(0) {
			t.Fatal("routing picked the severed replica")
		}
	}
	if _, err := c.Query("SELECT COUNT(*) FROM accounts", WithReadPreference(NearestReplica())); err != nil {
		t.Fatalf("read after link severance failed: %v", err)
	}
	if err := c.VerifyReplicas(); err != nil { // skips the broken replica
		t.Fatal(err)
	}
}

// TestReplSessionOptionsOnReadMethods: the unified read API — the same
// SessionOption list configures class, grant and routing on Database and
// Cluster read methods alike.
func TestReplSessionOptionsOnReadMethods(t *testing.T) {
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c)
	waitCaughtUp(t, c)

	opts := []SessionOption{WithClass(Interactive), WithReadPreference(NearestReplica())}
	groups, err := c.Aggregate("accounts", "dept", "balance", opts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Primary().Aggregate("accounts", "dept", "balance", WithClass(Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(want) {
		t.Fatalf("replica aggregate has %d groups, primary %d", len(groups), len(want))
	}
	// Hash aggregation emits groups in table order; sort both sides by
	// key before comparing.
	byKey := func(gs []GroupRow) func(i, j int) bool {
		return func(i, j int) bool { return gs[i].Key.I < gs[j].Key.I }
	}
	sort.Slice(groups, byKey(groups))
	sort.Slice(want, byKey(want))
	for i := range groups {
		if groups[i] != want[i] {
			t.Fatalf("group %d differs: %+v != %+v", i, groups[i], want[i])
		}
	}
	vals, err := c.Distinct("accounts", "dept", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 {
		t.Fatal("empty distinct on replica")
	}
	prel, err := c.Primary().Relation("accounts")
	if err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	if err := c.OrderBy("accounts", "id", func(Tuple) bool { n++; return true }, opts...); err != nil {
		t.Fatal(err)
	}
	if n != prel.NumTuples() {
		t.Fatalf("ordered scan saw %d tuples, primary has %d", n, prel.NumTuples())
	}
	// A cluster read without a preference pins to the primary.
	if _, err := c.Distinct("accounts", "dept"); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.ReplicaReads == 0 {
		t.Fatal("read preference never routed to the replica")
	}
	if m.PrimaryReads == 0 {
		t.Fatal("default-preference cluster read missed the primary")
	}
}
