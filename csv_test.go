package mmdb

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	db := openTestDB(t)
	emp, _ := loadCompany(t, db, 50, 5)

	var buf bytes.Buffer
	if err := emp.ExportCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 51 {
		t.Fatalf("exported %d lines", len(lines))
	}
	if lines[0] != "id,dept,salary,name" {
		t.Fatalf("header %q", lines[0])
	}

	// Import into a fresh relation with the same schema.
	copyRel, err := db.CreateRelation("emp2", empSchema())
	if err != nil {
		t.Fatal(err)
	}
	n, err := copyRel.ImportCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || copyRel.NumTuples() != 50 {
		t.Fatalf("imported %d rows", n)
	}
	// Spot-check content equality via a join on id.
	res, err := db.Join(HybridHash, "emp", "emp2", "id", "id", func(l, r Tuple) {
		if string(l) != string(r) {
			t.Fatal("round-tripped tuple differs")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 50 {
		t.Fatalf("join matched %d of 50", res.Matches)
	}
}

func TestCSVImportValidation(t *testing.T) {
	db := openTestDB(t)
	rel, err := db.CreateRelation("r", MustSchema(
		Field{Name: "k", Kind: Int64},
		Field{Name: "s", Kind: String, Size: 4},
	))
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"bad-header,s\n1,a\n",   // wrong header name
		"k,s\nnot-a-number,a\n", // unparsable int
		"k,s\n1,waytoolong\n",   // oversized string
		"k,s\n1\n",              // wrong arity
	}
	for i, in := range cases {
		if _, err := rel.ImportCSV(strings.NewReader(in), true); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Headerless import works.
	n, err := rel.ImportCSV(strings.NewReader("7,ab\n8,cd\n"), false)
	if err != nil || n != 2 {
		t.Fatalf("headerless import: %d %v", n, err)
	}
}

func TestCSVImportMaintainsIndexes(t *testing.T) {
	db := openTestDB(t)
	rel, err := db.CreateRelation("r", MustSchema(Field{Name: "k", Kind: Int64}))
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.CreateIndex("k", BTree); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.ImportCSV(strings.NewReader("5\n9\n"), false); err != nil {
		t.Fatal(err)
	}
	rows, err := rel.Lookup("k", IntValue(9))
	if err != nil || len(rows) != 1 {
		t.Fatalf("indexed lookup after import: %v %d", err, len(rows))
	}
}
