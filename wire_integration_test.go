package mmdb_test

// End-to-end tests for the SQL front door over the wire protocol:
// rows and per-query virtual counters arriving over TCP must be
// bit-identical to a direct Session call, concurrent connections
// included, and admission shedding must surface client-side as the
// engine's own typed overload error. This file is in the external test
// package because the wire server imports mmdb.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"mmdb"
	"mmdb/internal/wire"
	"mmdb/sqlclient"
)

// startWireDB builds the docs/SQL.md running example behind a wire
// server and returns the database and the server's address.
func startWireDB(t *testing.T, opts mmdb.Options) (*mmdb.Database, string) {
	t.Helper()
	db := mmdb.MustOpen(opts)
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
		mmdb.Field{Name: "name", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ada", "bob", "cyd", "dee", "eli", "fay", "gus", "hal"}
	for i := 0; i < 8; i++ {
		if err := emp.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(i%3+1)),
			mmdb.IntValue(int64(40000+1000*i)), mmdb.StringValue(names[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		t.Fatal(err)
	}
	dept, err := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "budget", Kind: mmdb.Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := dept.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := dept.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := &wire.Server{DB: db, Name: "mmdb test"}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return db, addr.String()
}

// TestWireMatchesDirect is the tentpole acceptance check: for every
// statement shape the SQL layer supports, the rows AND the per-query
// virtual counters that cross the wire are exactly what a direct
// Session call yields — from several concurrent connections at once
// (run under -race this also exercises the server's connection and
// session handling).
func TestWireMatchesDirect(t *testing.T) {
	db, addr := startWireDB(t, mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 4})
	stmts := []string{
		"SELECT id, name FROM emp WHERE salary > 42000 ORDER BY id",
		"SELECT emp.name, dept.budget FROM emp JOIN dept ON emp.dept = dept.id WHERE dept.budget >= 200 ORDER BY emp.name",
		"SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept ORDER BY dept",
		"SELECT COUNT(*), MAX(salary) FROM emp",
		"SELECT dept FROM emp GROUP BY dept ORDER BY dept",
	}

	type want struct {
		rows     [][]mmdb.Value
		counters mmdb.Counters
	}
	direct := make([]want, len(stmts))
	for i, q := range stmts {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		direct[i] = want{rows: res.Values(), counters: res.Counters}
		if (res.Counters == mmdb.Counters{}) {
			t.Fatalf("direct %q charged nothing", q)
		}
	}

	const conns = 4
	var wg sync.WaitGroup
	errs := make(chan error, conns*len(stmts))
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := sqlclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i, q := range stmts {
				res, err := cl.Query(q)
				if err != nil {
					errs <- fmt.Errorf("wire %q: %v", q, err)
					return
				}
				if !reflect.DeepEqual(res.Rows, direct[i].rows) {
					errs <- fmt.Errorf("wire %q rows diverge:\n wire   %v\n direct %v", q, res.Rows, direct[i].rows)
					return
				}
				if res.Counters != direct[i].counters {
					errs <- fmt.Errorf("wire %q counters %+v, direct %+v", q, res.Counters, direct[i].counters)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWireClassOptions checks WithClass/WithMinPages travel end to end:
// a statement run over the wire as Interactive with an explicit memory
// request bills exactly like a direct session opened with the same
// options.
func TestWireClassOptions(t *testing.T) {
	db, addr := startWireDB(t, mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 2})
	const q = "SELECT emp.name, dept.budget FROM emp JOIN dept ON emp.dept = dept.id ORDER BY emp.name"

	sess, err := db.NewSession(context.Background(), mmdb.WithClass(mmdb.Interactive), mmdb.WithMinPages(8))
	if err != nil {
		t.Fatal(err)
	}
	dres, err := sess.Query(q)
	sess.Close()
	if err != nil {
		t.Fatal(err)
	}

	cl, err := sqlclient.Dial(addr, sqlclient.WithClass(mmdb.Interactive), sqlclient.WithMinPages(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	wres, err := cl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Counters != dres.Counters {
		t.Fatalf("wire counters %+v, direct %+v", wres.Counters, dres.Counters)
	}
	// Per-query override beats the connection default the same way.
	wres2, err := cl.QueryClass(q, mmdb.Batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wres2.Counters != dres.Counters {
		t.Fatalf("override counters %+v, direct %+v", wres2.Counters, dres.Counters)
	}
}

// TestWireOverloadRoundTrip checks the typed-overload contract from
// ISSUE acceptance: when the scheduler sheds a wire statement, the
// client gets an error for which errors.Is(err, mmdb.ErrOverloaded)
// holds and errors.As recovers the *mmdb.OverloadError fields — and the
// connection survives to run the statement once load clears.
func TestWireOverloadRoundTrip(t *testing.T) {
	// One slot, no queue: any arrival while a session is held is shed.
	db, addr := startWireDB(t, mmdb.Options{MemoryPages: 32, MaxConcurrentQueries: 1, QueueDepth: -1})

	hold, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cl, err := sqlclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Query("SELECT id FROM emp")
	if err == nil {
		hold.Close()
		t.Fatal("expected overload, statement succeeded")
	}
	if !errors.Is(err, mmdb.ErrOverloaded) {
		hold.Close()
		t.Fatalf("errors.Is(err, ErrOverloaded) = false for %v", err)
	}
	var ov *mmdb.OverloadError
	if !errors.As(err, &ov) {
		hold.Close()
		t.Fatalf("errors.As *OverloadError failed for %v", err)
	}
	if ov.Class != mmdb.Batch {
		hold.Close()
		t.Fatalf("overload class %v, want Batch", ov.Class)
	}

	// The shed statement did not poison the connection.
	hold.Close()
	res, err := cl.Query("SELECT id FROM emp")
	if err != nil {
		t.Fatalf("after overload cleared: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("after overload cleared: %d rows", len(res.Rows))
	}
}

// TestWireStatementErrors checks server-side SQL failures surface as
// *sqlclient.ServerError with the WIRE.md code split and don't kill the
// connection.
func TestWireStatementErrors(t *testing.T) {
	_, addr := startWireDB(t, mmdb.Options{MemoryPages: 32})
	cl, err := sqlclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	_, err = cl.Query("SELECT FROM WHERE")
	var se *sqlclient.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeParse {
		t.Fatalf("parse failure: %v", err)
	}
	_, err = cl.Query("SELECT id FROM missing")
	if !errors.As(err, &se) || se.Code != wire.CodeSemantic {
		t.Fatalf("semantic failure: %v", err)
	}
	res, err := cl.Query("SELECT id FROM emp WHERE id = 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after failures: %v, %d rows", err, len(res.Rows))
	}
}

// TestWireReplReadPreference checks the v2 read-preference path end to
// end through sqlclient: the negotiated version is 2, a connection
// default of NearestReplica sends SELECTs to a replica, QueryPref
// overrides per statement, and the rows match the primary's answer.
func TestWireReplReadPreference(t *testing.T) {
	cluster, err := mmdb.OpenCluster(mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	emp, err := cluster.Primary().CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := emp.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}

	srv := &wire.Server{Cluster: cluster, Name: "mmdb cluster"}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	direct, err := cluster.Primary().Query("SELECT id FROM emp WHERE salary >= 500 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := sqlclient.Dial(addr.String(), sqlclient.WithReadPreference(mmdb.NearestReplica()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Version() != wire.Version {
		t.Fatalf("negotiated version %d, want %d", cl.Version(), wire.Version)
	}

	before := cluster.Metrics().ReplicaReads
	res, err := cl.Query("SELECT id FROM emp WHERE salary >= 500 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, direct.Values()) {
		t.Fatalf("replica rows diverge:\n wire   %v\n direct %v", res.Rows, direct.Values())
	}
	if got := cluster.Metrics().ReplicaReads; got <= before {
		t.Fatalf("nearest-replica SELECT did not read a replica (%d -> %d)", before, got)
	}

	// Per-statement override: pin one statement to the primary.
	beforePrimary := cluster.Metrics().PrimaryReads
	if _, err := cl.QueryPref("SELECT id FROM emp", mmdb.PrimaryOnly()); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Metrics().PrimaryReads; got <= beforePrimary {
		t.Fatalf("PrimaryOnly override did not read the primary (%d -> %d)", beforePrimary, got)
	}

	// Bounded staleness with a huge bound is satisfiable by a replica.
	if _, err := cl.QueryPref("SELECT id FROM emp", mmdb.BoundedStaleness(1<<50)); err != nil {
		t.Fatal(err)
	}

	// Writes carry the preference but always land on the primary, and the
	// replicas converge on the result.
	if _, err := cl.Query("INSERT INTO emp (id, salary) VALUES (13, 1300)"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}
