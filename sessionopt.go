package mmdb

// SessionOption configures one session at admission time. Options are
// applied in order; the zero-option call db.NewSession(ctx) admits a
// Batch-class session with the policy-default memory grant, exactly the
// pre-option behavior.
type SessionOption func(*sessionConfig)

// sessionConfig is the resolved per-session admission request.
type sessionConfig struct {
	class    QueryClass
	minPages int
	retries  int
	readPref ReadPreference
}

func defaultSessionConfig() sessionConfig {
	return sessionConfig{class: Batch}
}

// resolveSessionConfig folds opts over the default config: the one
// resolution path shared by Database.NewSession and the Cluster's read
// routing, so an option means the same thing everywhere it can appear —
// NewSession, one-shot query methods, and the wire protocol's
// per-statement options.
func resolveSessionConfig(opts []SessionOption) sessionConfig {
	cfg := defaultSessionConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithClass admits the session under the given priority class.
// Interactive sessions are granted freed slots ahead of queued Batch work
// under StrictPriority (and in weight proportion under WeightedFair), and
// their memory grants may draw the class's reserved pages. Invalid
// classes fall back to Batch, the default.
func WithClass(c QueryClass) SessionOption {
	return func(cfg *sessionConfig) {
		if c.Valid() {
			cfg.class = c
		}
	}
}

// WithMinPages requests an explicit memory grant of at least n pages
// instead of the policy default: the session's grant is exactly n,
// clamped to [2, the class's drawable pool]. Use it when a query was
// costed against a specific |M| and must execute with it. n <= 0 keeps
// the policy default.
func WithMinPages(n int) SessionOption {
	return func(cfg *sessionConfig) {
		if n > 0 {
			cfg.minPages = n
		}
	}
}

// WithRetry opts the session's queries into bounded retry when they are
// killed by a *transient* injected device fault (ErrFaultTransient): the
// query is re-run, up to n extra attempts, and each attempt's output is
// buffered and delivered only on success — the caller never observes a
// partial result set from a failed attempt. Permanent faults and every
// other error still surface immediately. Each attempt charges the
// session clock as usual, so retried queries honestly cost more virtual
// time. n <= 0 keeps retries off, the default.
func WithRetry(n int) SessionOption {
	return func(cfg *sessionConfig) {
		if n > 0 {
			cfg.retries = n
		}
	}
}

// WithReadPreference routes the session's (or one-shot query's) reads
// when the receiver is a Cluster: NearestReplica prefers the most
// caught-up replica, BoundedStaleness any replica within its LSN-lag
// bound, and the default (PrimaryOnly) pins reads to the primary.
// Routing never fails — when no replica qualifies, the primary answers.
// On a plain Database the option is accepted and ignored, so code can
// pass it unconditionally and behave identically over both handles; the
// wire protocol carries the same preference per statement (docs/WIRE.md).
func WithReadPreference(p ReadPreference) SessionOption {
	return func(cfg *sessionConfig) {
		cfg.readPref = p
	}
}
