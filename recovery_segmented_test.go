package mmdb

import (
	"testing"
	"time"
)

// TestSegmentedRecoveryEndToEnd crashes a segmented-log engine mid-run and
// checks the parallel replay path end to end: the replay works, its
// virtual time and replay counts are identical at different widths, and
// the telemetry flows through ObserveRecovery into SessionMetrics.
func TestSegmentedRecoveryEndToEnd(t *testing.T) {
	run := func(par int) (RecoveryStats, RecoveryInfo) {
		sim, err := NewRecoverySim(RecoveryConfig{
			Accounts:          2000,
			Terminals:         20,
			Policy:            GroupCommit,
			Checkpoint:        true,
			TruncateLog:       true,
			SegmentPages:      4,
			CompactSegments:   true,
			ReplayParallelism: par,
			Seed:              7,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, info, _, err := sim.RunAndCrash(2*time.Second, 1500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return st, info
	}
	stats, i1 := run(1)
	_, i8 := run(8)

	if stats.Committed == 0 {
		t.Fatal("workload committed nothing")
	}
	if i1.SegmentsScanned == 0 {
		t.Fatalf("no segments scanned: %+v", i1)
	}
	if i1.Virtual <= 0 {
		t.Fatalf("no virtual replay time: %+v", i1)
	}
	if i1.ReplayWorkers != 1 || i8.ReplayWorkers != 8 {
		t.Fatalf("replay widths %d/%d, want 1/8", i1.ReplayWorkers, i8.ReplayWorkers)
	}
	// Same seed, same crash instant: the replay must be bit-identical in
	// everything but the width.
	if i1.Virtual != i8.Virtual {
		t.Fatalf("virtual replay time drifts across widths: %v vs %v", i1.Virtual, i8.Virtual)
	}
	if i1.Redone != i8.Redone || i1.Undone != i8.Undone || i1.Committed != i8.Committed ||
		i1.SegmentsScanned != i8.SegmentsScanned || i1.SegmentsSkipped != i8.SegmentsSkipped {
		t.Fatalf("replay work drifts across widths:\n w=1: %+v\n w=8: %+v", i1, i8)
	}

	db := MustOpen(Options{PageSize: 512, MemoryPages: 8})
	db.ObserveRecovery(i8)
	m := db.SessionMetrics()
	if m.Recoveries != 1 ||
		m.RecoverySegmentsScanned != uint64(i8.SegmentsScanned) ||
		m.RecoverySegmentsSkipped != uint64(i8.SegmentsSkipped) ||
		m.RecoveryReplayWorkers != 8 ||
		m.RecoveryCompactedBytes != i8.CompactedBytes ||
		m.RecoveryVirtual != i8.Virtual {
		t.Fatalf("SessionMetrics did not reflect the recovery: %+v vs %+v", m, i8)
	}
}
