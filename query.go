package mmdb

import (
	"context"
	"sync/atomic"
	"time"

	"mmdb/internal/agg"
	"mmdb/internal/join"
)

// JoinAlgorithm selects one of the §3 join implementations.
type JoinAlgorithm = join.Algorithm

// Join algorithms.
const (
	// AutoJoin lets the engine choose per §4: hybrid hash, always.
	AutoJoin JoinAlgorithm = -1

	NestedLoops = join.NestedLoops
	SortMerge   = join.SortMerge
	SimpleHash  = join.SimpleHash
	GraceHash   = join.GraceHash
	HybridHash  = join.HybridHash
)

// SortStats reports how one relation sort of the §3.4 machinery executed:
// how many replacement-selection runs formed, how many streams the final
// on-the-fly merge combined, whether intermediate merge passes were needed
// (the deepest chain when the sort was chunked), and whether the relation
// fit in memory outright.
type SortStats struct {
	Runs        int
	FinalRuns   int
	MergePasses int
	Chunks      int // run-formation chunks (1 = the classic single queue)
	InMemory    bool
}

// JoinResult reports an executed join.
type JoinResult struct {
	Algorithm  JoinAlgorithm
	Matches    int64
	Counters   Counters      // operations this join charged
	Elapsed    time.Duration // virtual time consumed
	Passes     int
	Partitions int
	// Degraded reports that the session's memory grant shrank mid-join
	// and hybrid hash completed via the GRACE spill fallback — the
	// result is still exact, the pressure cost extra IO passes.
	Degraded bool
	// SortR and SortS detail how sort-merge sorted each input (zero for
	// the hash algorithms); SortR describes the build side after any
	// smaller-relation swap.
	SortR, SortS SortStats
}

// withSession runs fn inside a one-shot admitted session: the single
// context-first implementation behind every Database-level query method
// (the exported Join/JoinContext, Aggregate/AggregateContext, … pairs
// are all thin wrappers over it). One-shot queries admit under the Batch
// class unless opts say otherwise. With the default options (one slot,
// whole-|M| grants) this reproduces the serial engine exactly while
// making concurrent callers safe; with MaxConcurrentQueries > 1 the
// calls interleave under brokered memory.
func (db *Database) withSession(ctx context.Context, fn func(s *Session) error, opts ...SessionOption) error {
	s, err := db.NewSession(ctx, opts...)
	if err != nil {
		return err
	}
	defer s.Close()
	return fn(s)
}

// Join runs an equijoin between two relations, streaming joined pairs to
// emit (pass nil to count only). The smaller relation is used as the build
// side automatically. Thin wrapper over JoinContext with a background
// context.
func (db *Database) Join(algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple), opts ...SessionOption) (JoinResult, error) {
	return db.JoinContext(context.Background(), algorithm, left, right, leftCol, rightCol, emit, opts...)
}

// JoinContext is the context-first Join: ctx governs admission queueing,
// lock waits and the per-query deadline; opts set the one-shot session's
// admission class, memory grant, retry budget and read preference.
func (db *Database) JoinContext(ctx context.Context, algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple), opts ...SessionOption) (JoinResult, error) {
	var res JoinResult
	err := db.withSession(ctx, func(s *Session) error {
		var err error
		res, err = s.Join(algorithm, left, right, leftCol, rightCol, emit)
		return err
	}, opts...)
	return res, err
}

// AggFunc selects an aggregate function.
type AggFunc = agg.Func

// Aggregate functions.
const (
	Count = agg.Count
	Sum   = agg.Sum
	Min   = agg.Min
	Max   = agg.Max
	Avg   = agg.Avg
)

// GroupRow is one grouped-aggregate output row.
type GroupRow struct {
	Key   Value
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Value returns the aggregate under f.
func (g GroupRow) Value(f AggFunc) float64 {
	return agg.Group(g).Value(f)
}

// Aggregate computes per-group count/sum/min/max/avg of an int64 value
// column, grouped by groupCol, using the §3.9 one-pass hashing algorithm
// (spilling hybrid-style if the result exceeds memory). Thin wrapper
// over AggregateContext with a background context.
func (db *Database) Aggregate(relation, groupCol, valueCol string, opts ...SessionOption) ([]GroupRow, error) {
	return db.AggregateContext(context.Background(), relation, groupCol, valueCol, opts...)
}

// AggregateContext is the context-first Aggregate: ctx governs admission
// queueing, lock waits and the per-query deadline; opts configure the
// one-shot session.
func (db *Database) AggregateContext(ctx context.Context, relation, groupCol, valueCol string, opts ...SessionOption) ([]GroupRow, error) {
	var out []GroupRow
	err := db.withSession(ctx, func(s *Session) error {
		var err error
		out, err = s.Aggregate(relation, groupCol, valueCol)
		return err
	}, opts...)
	return out, err
}

// OrderBy streams the relation's rows in ascending order of the named
// column, using the §3.4 sort machinery (replacement-selection runs plus
// an n-way merge) within the database's memory budget. Run IO is charged
// on the virtual clock exactly as in the sort-merge join. Thin wrapper
// over OrderByContext with a background context.
func (db *Database) OrderBy(relation, column string, fn func(Tuple) bool, opts ...SessionOption) error {
	return db.OrderByContext(context.Background(), relation, column, fn, opts...)
}

// OrderByContext is the context-first OrderBy: ctx governs admission
// queueing, lock waits and the per-query deadline; opts configure the
// one-shot session.
func (db *Database) OrderByContext(ctx context.Context, relation, column string, fn func(Tuple) bool, opts ...SessionOption) error {
	return db.withSession(ctx, func(s *Session) error {
		return s.OrderBy(relation, column, fn)
	}, opts...)
}

var orderBySeq atomic.Uint64

// Distinct returns the distinct values of a column (§3.9 projection with
// duplicate elimination). Thin wrapper over DistinctContext with a
// background context.
func (db *Database) Distinct(relation, column string, opts ...SessionOption) ([]Value, error) {
	return db.DistinctContext(context.Background(), relation, column, opts...)
}

// DistinctContext is the context-first Distinct: ctx governs admission
// queueing, lock waits and the per-query deadline; opts configure the
// one-shot session.
func (db *Database) DistinctContext(ctx context.Context, relation, column string, opts ...SessionOption) ([]Value, error) {
	var out []Value
	err := db.withSession(ctx, func(s *Session) error {
		var err error
		out, err = s.Distinct(relation, column)
		return err
	}, opts...)
	return out, err
}
