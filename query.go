package mmdb

import (
	"fmt"
	"sync/atomic"
	"time"

	"mmdb/internal/agg"
	"mmdb/internal/extsort"
	"mmdb/internal/join"
	"mmdb/internal/simio"
)

// JoinAlgorithm selects one of the §3 join implementations.
type JoinAlgorithm = join.Algorithm

// Join algorithms.
const (
	// AutoJoin lets the engine choose per §4: hybrid hash, always.
	AutoJoin JoinAlgorithm = -1

	NestedLoops = join.NestedLoops
	SortMerge   = join.SortMerge
	SimpleHash  = join.SimpleHash
	GraceHash   = join.GraceHash
	HybridHash  = join.HybridHash
)

// JoinResult reports an executed join.
type JoinResult struct {
	Algorithm  JoinAlgorithm
	Matches    int64
	Counters   Counters      // operations this join charged
	Elapsed    time.Duration // virtual time consumed
	Passes     int
	Partitions int
}

// Join runs an equijoin between two relations, streaming joined pairs to
// emit (pass nil to count only). The smaller relation is used as the build
// side automatically.
func (db *Database) Join(algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple)) (JoinResult, error) {
	lr, err := db.cat.Get(left)
	if err != nil {
		return JoinResult{}, err
	}
	rr, err := db.cat.Get(right)
	if err != nil {
		return JoinResult{}, err
	}
	lc := lr.Schema().FieldIndex(leftCol)
	if lc < 0 {
		return JoinResult{}, fmt.Errorf("mmdb: %s has no column %q", left, leftCol)
	}
	rc := rr.Schema().FieldIndex(rightCol)
	if rc < 0 {
		return JoinResult{}, fmt.Errorf("mmdb: %s has no column %q", right, rightCol)
	}
	if algorithm == AutoJoin {
		// §4: with one hash algorithm dominating and no order
		// sensitivity, algorithm choice is trivial.
		algorithm = HybridHash
	}

	spec := join.Spec{
		R: lr.File, S: rr.File,
		RCol: lc, SCol: rc,
		M:           db.opts.MemoryPages,
		F:           db.opts.Params.F,
		Parallelism: db.opts.Parallelism,
	}
	swapped := false
	if spec.S.NumPages() < spec.R.NumPages() {
		spec.R, spec.S = spec.S, spec.R
		spec.RCol, spec.SCol = spec.SCol, spec.RCol
		swapped = true
	}
	var wrapped join.Emit
	if emit != nil {
		wrapped = func(r, s Tuple) {
			if swapped {
				emit(s, r)
			} else {
				emit(r, s)
			}
		}
	}
	res, err := join.Run(algorithm, spec, wrapped)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{
		Algorithm:  res.Algorithm,
		Matches:    res.Matches,
		Counters:   res.Counters,
		Elapsed:    res.Elapsed,
		Passes:     res.Passes,
		Partitions: res.Partitions,
	}, nil
}

// AggFunc selects an aggregate function.
type AggFunc = agg.Func

// Aggregate functions.
const (
	Count = agg.Count
	Sum   = agg.Sum
	Min   = agg.Min
	Max   = agg.Max
	Avg   = agg.Avg
)

// GroupRow is one grouped-aggregate output row.
type GroupRow struct {
	Key   Value
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Value returns the aggregate under f.
func (g GroupRow) Value(f AggFunc) float64 {
	return agg.Group(g).Value(f)
}

// Aggregate computes per-group count/sum/min/max/avg of an int64 value
// column, grouped by groupCol, using the §3.9 one-pass hashing algorithm
// (spilling hybrid-style if the result exceeds memory).
func (db *Database) Aggregate(relation, groupCol, valueCol string) ([]GroupRow, error) {
	r, err := db.cat.Get(relation)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	gc := schema.FieldIndex(groupCol)
	vc := schema.FieldIndex(valueCol)
	if gc < 0 || vc < 0 {
		return nil, fmt.Errorf("mmdb: %s lacks column %q or %q", relation, groupCol, valueCol)
	}
	res, err := agg.Hash(agg.Spec{
		Input:       r.File,
		GroupCol:    gc,
		ValueCol:    vc,
		M:           db.opts.MemoryPages,
		F:           db.opts.Params.F,
		Parallelism: db.opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	out := make([]GroupRow, len(res.Groups))
	for i, g := range res.Groups {
		out[i] = GroupRow(g)
	}
	return out, nil
}

// OrderBy streams the relation's rows in ascending order of the named
// column, using the §3.4 sort machinery (replacement-selection runs plus
// an n-way merge) within the database's memory budget. Run IO is charged
// on the virtual clock exactly as in the sort-merge join.
func (db *Database) OrderBy(relation, column string, fn func(Tuple) bool) error {
	r, err := db.cat.Get(relation)
	if err != nil {
		return err
	}
	col := r.Schema().FieldIndex(column)
	if col < 0 {
		return fmt.Errorf("mmdb: %s has no column %q", relation, column)
	}
	capacity := int(float64(db.opts.MemoryPages) * float64(r.File.TuplesPerPage()) / db.opts.Params.F)
	if capacity < 2 {
		capacity = 2
	}
	fanout := db.opts.MemoryPages
	stream, _, err := extsort.Sort(r.File, col, capacity, fanout,
		fmt.Sprintf("orderby.%s.%d", relation, orderBySeq.Add(1)), simio.Uncharged)
	if err != nil {
		return err
	}
	for {
		t, ok := stream.Next()
		if !ok {
			break
		}
		if !fn(t) {
			break
		}
	}
	return stream.Err()
}

var orderBySeq atomic.Uint64

// Distinct returns the distinct values of a column (§3.9 projection with
// duplicate elimination).
func (db *Database) Distinct(relation, column string) ([]Value, error) {
	r, err := db.cat.Get(relation)
	if err != nil {
		return nil, err
	}
	col := r.Schema().FieldIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("mmdb: %s has no column %q", relation, column)
	}
	return agg.Distinct(r.File, col, db.opts.MemoryPages, db.opts.Params.F, db.opts.Parallelism)
}
