package mmdb

import (
	"context"
	"sync/atomic"
	"time"

	"mmdb/internal/agg"
	"mmdb/internal/join"
)

// JoinAlgorithm selects one of the §3 join implementations.
type JoinAlgorithm = join.Algorithm

// Join algorithms.
const (
	// AutoJoin lets the engine choose per §4: hybrid hash, always.
	AutoJoin JoinAlgorithm = -1

	NestedLoops = join.NestedLoops
	SortMerge   = join.SortMerge
	SimpleHash  = join.SimpleHash
	GraceHash   = join.GraceHash
	HybridHash  = join.HybridHash
)

// JoinResult reports an executed join.
type JoinResult struct {
	Algorithm  JoinAlgorithm
	Matches    int64
	Counters   Counters      // operations this join charged
	Elapsed    time.Duration // virtual time consumed
	Passes     int
	Partitions int
}

// withSession runs fn inside a one-shot admitted session: the path behind
// every Database-level query method. With the default options (one slot,
// whole-|M| grants) this reproduces the serial engine exactly while making
// concurrent callers safe; with MaxConcurrentQueries > 1 the calls
// interleave under brokered memory.
func (db *Database) withSession(ctx context.Context, fn func(s *Session) error) error {
	s, err := db.NewSession(ctx)
	if err != nil {
		return err
	}
	defer s.Close()
	return fn(s)
}

// Join runs an equijoin between two relations, streaming joined pairs to
// emit (pass nil to count only). The smaller relation is used as the build
// side automatically.
func (db *Database) Join(algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple)) (JoinResult, error) {
	return db.JoinContext(context.Background(), algorithm, left, right, leftCol, rightCol, emit)
}

// JoinContext is Join honoring ctx for admission queueing, lock waits and
// the per-query deadline.
func (db *Database) JoinContext(ctx context.Context, algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple)) (JoinResult, error) {
	var res JoinResult
	err := db.withSession(ctx, func(s *Session) error {
		var err error
		res, err = s.Join(algorithm, left, right, leftCol, rightCol, emit)
		return err
	})
	return res, err
}

// AggFunc selects an aggregate function.
type AggFunc = agg.Func

// Aggregate functions.
const (
	Count = agg.Count
	Sum   = agg.Sum
	Min   = agg.Min
	Max   = agg.Max
	Avg   = agg.Avg
)

// GroupRow is one grouped-aggregate output row.
type GroupRow struct {
	Key   Value
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Value returns the aggregate under f.
func (g GroupRow) Value(f AggFunc) float64 {
	return agg.Group(g).Value(f)
}

// Aggregate computes per-group count/sum/min/max/avg of an int64 value
// column, grouped by groupCol, using the §3.9 one-pass hashing algorithm
// (spilling hybrid-style if the result exceeds memory).
func (db *Database) Aggregate(relation, groupCol, valueCol string) ([]GroupRow, error) {
	return db.AggregateContext(context.Background(), relation, groupCol, valueCol)
}

// AggregateContext is Aggregate honoring ctx for admission queueing, lock
// waits and the per-query deadline.
func (db *Database) AggregateContext(ctx context.Context, relation, groupCol, valueCol string) ([]GroupRow, error) {
	var out []GroupRow
	err := db.withSession(ctx, func(s *Session) error {
		var err error
		out, err = s.Aggregate(relation, groupCol, valueCol)
		return err
	})
	return out, err
}

// OrderBy streams the relation's rows in ascending order of the named
// column, using the §3.4 sort machinery (replacement-selection runs plus
// an n-way merge) within the database's memory budget. Run IO is charged
// on the virtual clock exactly as in the sort-merge join.
func (db *Database) OrderBy(relation, column string, fn func(Tuple) bool) error {
	return db.withSession(context.Background(), func(s *Session) error {
		return s.OrderBy(relation, column, fn)
	})
}

var orderBySeq atomic.Uint64

// Distinct returns the distinct values of a column (§3.9 projection with
// duplicate elimination).
func (db *Database) Distinct(relation, column string) ([]Value, error) {
	var out []Value
	err := db.withSession(context.Background(), func(s *Session) error {
		var err error
		out, err = s.Distinct(relation, column)
		return err
	})
	return out, err
}
