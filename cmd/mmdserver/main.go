// Command mmdserver runs the mmdb wire-protocol server (docs/WIRE.md):
// a TCP front door that multiplexes client connections onto the
// engine's priority-class session scheduler. Each QUERY frame runs as
// its own admitted session, so admission control — including
// ErrOverloaded shedding, reported to clients as OVERLOAD frames —
// applies per statement.
//
//	$ go run ./cmd/mmdserver -addr :7319 -demo 4000
//	mmdserver: serving on [::]:7319 (demo tables emp/dept loaded)
//	$ # then, from another terminal or program:
//	$ #   sqlclient.Dial("localhost:7319")
//
// -demo N loads the standard emp(N)/dept(N/100) tables so a fresh
// server has something to query; without it the catalog starts empty
// and clients populate it with INSERT.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmdb"
	"mmdb/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7319", "TCP listen address")
	mem := flag.Int("mem", 256, "memory pages (|M|) shared by all queries")
	slots := flag.Int("slots", 4, "max concurrently executing queries")
	queue := flag.Int("queue", 64, "per-class admission queue depth (negative = no queue)")
	pick := flag.String("pick", "strict", "slot pick policy: strict or fair")
	par := flag.Int("parallel", 1, "worker goroutines per operator (1 = serial, -1 = GOMAXPROCS)")
	demo := flag.Int("demo", 0, "load demo tables emp(N)/dept(N/100) with N rows")
	name := flag.String("name", "mmdb", "server name reported in WELCOME")
	replicas := flag.Int("replicas", 0, "open N read replicas and route SELECTs by read preference")
	drain := flag.Duration("drain-timeout", 5*time.Second, "on SIGINT/SIGTERM, wait this long for in-flight connections before force-closing (0 = force-close immediately)")
	idle := flag.Duration("idle-timeout", 0, "close connections idle longer than this (0 = never; clients keep alive with PING)")
	flag.Parse()

	opts := mmdb.Options{
		MemoryPages:          *mem,
		MaxConcurrentQueries: *slots,
		QueueDepth:           *queue,
		Parallelism:          *par,
	}
	switch *pick {
	case "strict":
		opts.PickPolicy = mmdb.StrictPriority
	case "fair":
		opts.PickPolicy = mmdb.WeightedFair
	default:
		fmt.Fprintf(os.Stderr, "mmdserver: unknown -pick %q (want strict or fair)\n", *pick)
		os.Exit(2)
	}
	srv := &wire.Server{Name: *name, IdleTimeout: *idle}
	var db *mmdb.Database
	if *replicas > 0 {
		cluster, err := mmdb.OpenCluster(opts, *replicas)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmdserver: %v\n", err)
			os.Exit(1)
		}
		srv.Cluster = cluster
		db = cluster.Primary()
	} else {
		var err error
		db, err = mmdb.Open(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmdserver: %v\n", err)
			os.Exit(1)
		}
	}
	srv.DB = db
	loaded := ""
	if *demo > 0 {
		if err := loadDemo(db, *demo); err != nil {
			fmt.Fprintf(os.Stderr, "mmdserver: demo load: %v\n", err)
			os.Exit(1)
		}
		loaded = " (demo tables emp/dept loaded)"
	}
	if *replicas > 0 {
		loaded += fmt.Sprintf(" [%d replicas]", *replicas)
	}
	lisAddr, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmdserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mmdserver: serving on %s%s\n", lisAddr, loaded)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case s := <-sig:
		fmt.Printf("mmdserver: %v, draining (up to %v)\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(ctx); errors.Is(err, context.DeadlineExceeded) {
			fmt.Println("mmdserver: drain timeout hit, connections force-closed")
		}
		cancel()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmdserver: %v\n", err)
			os.Exit(1)
		}
	}
	st := srv.Stats()
	fmt.Printf("mmdserver: served %d queries on %d connections (%d errors, %d overloads)\n",
		st.Queries.Load(), st.Connections.Load(), st.Errors.Load(), st.Overloads.Load())
}

// loadDemo builds emp(n) and dept(n/100) with the deterministic
// contents the benchmarks use: emp.dept cycles over dept ids, salaries
// step by 1000.
func loadDemo(db *mmdb.Database, n int) error {
	nd := n / 100
	if nd < 1 {
		nd = 1
	}
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := emp.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(i%nd+1)),
			mmdb.IntValue(int64(40000+1000*(i%50)))); err != nil {
			return err
		}
	}
	if err := emp.Flush(); err != nil {
		return err
	}
	dept, err := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "budget", Kind: mmdb.Int64},
	))
	if err != nil {
		return err
	}
	for i := 0; i < nd; i++ {
		if err := dept.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(1000*(i+1)))); err != nil {
			return err
		}
	}
	return dept.Flush()
}
