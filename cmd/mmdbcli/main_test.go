package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmdb"
)

func run(t *testing.T, db *mmdb.Database, line string) error {
	t.Helper()
	return dispatch(db, strings.Fields(line))
}

func must(t *testing.T, db *mmdb.Database, line string) {
	t.Helper()
	if err := run(t, db, line); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
}

func TestDispatchWorkflow(t *testing.T) {
	db := mmdb.MustOpen(mmdb.Options{})
	must(t, db, "help")
	if err := run(t, db, "demo 500"); err != nil {
		t.Fatal(err)
	}
	must(t, db, "relations")
	must(t, db, "scan emp 2")
	must(t, db, "index emp id btree")
	must(t, db, "lookup emp id 42")
	must(t, db, "range emp id 490 5")
	must(t, db, "join emp dept dept id auto")
	must(t, db, "join emp dept dept id sortmerge")
	must(t, db, "agg emp dept salary")
	must(t, db, "distinct emp dept")
	must(t, db, "hist emp salary")
	must(t, db, "select emp salary ge 40000 2")
	must(t, db, "counters")
	must(t, db, "reset")

	csv := filepath.Join(t.TempDir(), "emp.csv")
	must(t, db, "export emp "+csv)
	if _, err := os.Stat(csv); err != nil {
		t.Fatal(err)
	}
	must(t, db, "import emp "+csv)
	rel, err := db.Relation("emp")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumTuples() != 1000 {
		t.Fatalf("after re-import: %d tuples", rel.NumTuples())
	}

	if err := run(t, db, "quit"); err != errQuit {
		t.Fatalf("quit returned %v", err)
	}
}

func TestDispatchErrors(t *testing.T) {
	db := mmdb.MustOpen(mmdb.Options{})
	for _, line := range []string{
		"bogus",
		"scan missing 3",
		"scan",
		"lookup emp id notanumber",
		"join a b c d warp",
		"select emp salary zz 1 1",
		"import emp /no/such/file.csv",
		"range emp id 1", // wrong arity
	} {
		if err := run(t, db, line); err == nil {
			t.Errorf("%q accepted", line)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if op, err := parseOp("le"); err != nil || op != mmdb.Le {
		t.Fatalf("parseOp(le) = %v, %v", op, err)
	}
	if _, err := parseOp("nope"); err == nil {
		t.Fatal("bad op accepted")
	}
	if alg, err := parseAlg("grace"); err != nil || alg != mmdb.GraceHash {
		t.Fatalf("parseAlg(grace) = %v, %v", alg, err)
	}
	if _, err := parseAlg("nope"); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}
