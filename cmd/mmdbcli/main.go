// Command mmdbcli is a small interactive shell over the mmdb engine, for
// poking at relations, indexes, joins and the virtual-clock accounting.
//
//	$ go run ./cmd/mmdbcli [-parallel N]
//	mmdb> demo 10000
//	mmdb> relations
//	mmdb> lookup emp id 42
//	mmdb> join emp dept dept id hybrid
//	mmdb> agg emp dept salary
//	mmdb> counters
//
// -parallel sets the worker count for the parallel join and aggregation
// operators (1 = serial, -1 = GOMAXPROCS); the virtual-clock numbers the
// shell prints are identical at every setting.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mmdb"
)

func main() {
	par := flag.Int("parallel", 1, "worker goroutines for join/aggregate operators (1 = serial, -1 = GOMAXPROCS)")
	flag.Parse()
	db := mmdb.MustOpen(mmdb.Options{Parallelism: *par})
	fmt.Println("mmdb shell — 'help' for commands, 'quit' to exit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("mmdb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if err := dispatch(db, args); err != nil {
			if err == errQuit {
				return
			}
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func dispatch(db *mmdb.Database, args []string) error {
	switch args[0] {
	case "quit", "exit":
		return errQuit
	case "help":
		fmt.Print(`commands:
  demo N                     load emp(N tuples) and dept(8) sample relations
  relations                  list relations
  scan REL N                 print the first N tuples of REL
  index REL COL btree|avl    build an index
  lookup REL COL INT         point lookup (indexed if available)
  range REL COL INT N        print N tuples with COL >= INT (needs index)
  join R S RCOL SCOL ALG     ALG: auto|nested|sortmerge|simple|grace|hybrid
  agg REL GROUPCOL VALCOL    grouped count/sum/avg
  distinct REL COL           duplicate elimination
  select REL COL OP INT N    filter scan; OP: eq|ne|lt|le|gt|ge
  hist REL COL               build a 16-bucket histogram for estimates
  export REL FILE            dump the relation as CSV (with header)
  import REL FILE            load CSV rows (with header) into REL
  counters                   virtual clock + operation counters
  reset                      reset the virtual clock
  quit
`)
		return nil
	case "demo":
		n := 10000
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return err
			}
			n = v
		}
		return loadDemo(db, n)
	case "relations":
		for _, name := range db.Relations() {
			rel, err := db.Relation(name)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s %8d tuples %6d pages  %v\n", name, rel.NumTuples(), rel.NumPages(), rel.Schema())
		}
		return nil
	case "scan":
		if len(args) != 3 {
			return fmt.Errorf("usage: scan REL N")
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		i := 0
		return rel.Scan(func(t mmdb.Tuple) bool {
			fmt.Println(" ", rel.Schema().Format(t))
			i++
			return i < n
		})
	case "index":
		if len(args) != 4 {
			return fmt.Errorf("usage: index REL COL btree|avl")
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		kind := mmdb.BTree
		if args[3] == "avl" {
			kind = mmdb.AVL
		}
		return rel.CreateIndex(args[2], kind)
	case "lookup":
		if len(args) != 4 {
			return fmt.Errorf("usage: lookup REL COL INT")
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return err
		}
		rows, err := rel.Lookup(args[2], mmdb.IntValue(v))
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(" ", rel.Schema().Format(r))
		}
		fmt.Printf("  (%d rows)\n", len(rows))
		return nil
	case "range":
		if len(args) != 5 {
			return fmt.Errorf("usage: range REL COL INT N")
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(args[4])
		if err != nil {
			return err
		}
		i := 0
		return rel.AscendRange(args[2], mmdb.IntValue(v), func(t mmdb.Tuple) bool {
			fmt.Println(" ", rel.Schema().Format(t))
			i++
			return i < n
		})
	case "join":
		if len(args) != 6 {
			return fmt.Errorf("usage: join R S RCOL SCOL auto|nested|sortmerge|simple|grace|hybrid")
		}
		alg, err := parseAlg(args[5])
		if err != nil {
			return err
		}
		res, err := db.Join(alg, args[1], args[2], args[3], args[4], nil)
		if err != nil {
			return err
		}
		fmt.Printf("  %d matches via %v in %v virtual (%s)\n", res.Matches, res.Algorithm, res.Elapsed, res.Counters)
		return nil
	case "agg":
		if len(args) != 4 {
			return fmt.Errorf("usage: agg REL GROUPCOL VALCOL")
		}
		groups, err := db.Aggregate(args[1], args[2], args[3])
		if err != nil {
			return err
		}
		for _, g := range groups {
			fmt.Printf("  %v: count=%d sum=%d avg=%.1f\n", g.Key, g.Count, g.Sum, g.Value(mmdb.Avg))
		}
		return nil
	case "distinct":
		if len(args) != 3 {
			return fmt.Errorf("usage: distinct REL COL")
		}
		vals, err := db.Distinct(args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Printf("  %d distinct values\n", len(vals))
		return nil
	case "select":
		if len(args) != 6 {
			return fmt.Errorf("usage: select REL COL OP INT N")
		}
		op, err := parseOp(args[3])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[4], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(args[5])
		if err != nil {
			return err
		}
		p, err := db.Where(args[1], args[2], op, mmdb.IntValue(v))
		if err != nil {
			return err
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("  estimated selectivity %.3f\n", p.EstimatedSelectivity())
		i := 0
		err = rel.Select(p, func(t mmdb.Tuple) bool {
			fmt.Println(" ", rel.Schema().Format(t))
			i++
			return i < n
		})
		fmt.Printf("  (%d rows shown)\n", i)
		return err
	case "hist":
		if len(args) != 3 {
			return fmt.Errorf("usage: hist REL COL")
		}
		return db.BuildHistogram(args[1], args[2], 16)
	case "export":
		if len(args) != 3 {
			return fmt.Errorf("usage: export REL FILE")
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		f, err := os.Create(args[2])
		if err != nil {
			return err
		}
		defer f.Close()
		return rel.ExportCSV(f, true)
	case "import":
		if len(args) != 3 {
			return fmt.Errorf("usage: import REL FILE")
		}
		rel, err := db.Relation(args[1])
		if err != nil {
			return err
		}
		f, err := os.Open(args[2])
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := rel.ImportCSV(f, true)
		if err != nil {
			return err
		}
		fmt.Printf("  imported %d rows\n", n)
		return nil
	case "counters":
		fmt.Printf("  virtual time %v, %s\n", db.VirtualTime(), db.Counters())
		return nil
	case "reset":
		db.ResetClock()
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", args[0])
	}
}

func parseOp(s string) (mmdb.CompareOp, error) {
	switch s {
	case "eq":
		return mmdb.Eq, nil
	case "ne":
		return mmdb.Ne, nil
	case "lt":
		return mmdb.Lt, nil
	case "le":
		return mmdb.Le, nil
	case "gt":
		return mmdb.Gt, nil
	case "ge":
		return mmdb.Ge, nil
	default:
		return 0, fmt.Errorf("unknown operator %q", s)
	}
}

func parseAlg(s string) (mmdb.JoinAlgorithm, error) {
	switch s {
	case "auto":
		return mmdb.AutoJoin, nil
	case "nested":
		return mmdb.NestedLoops, nil
	case "sortmerge":
		return mmdb.SortMerge, nil
	case "simple":
		return mmdb.SimpleHash, nil
	case "grace":
		return mmdb.GraceHash, nil
	case "hybrid":
		return mmdb.HybridHash, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func loadDemo(db *mmdb.Database, n int) error {
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
		mmdb.Field{Name: "name", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		err := emp.Insert(
			mmdb.IntValue(int64(i)),
			mmdb.IntValue(int64(i%8)),
			mmdb.IntValue(int64(40000+(i*37)%30000)),
			mmdb.StringValue(fmt.Sprintf("emp%05d", i)),
		)
		if err != nil {
			return err
		}
	}
	if err := emp.Flush(); err != nil {
		return err
	}
	dept, err := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "label", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if err := dept.Insert(mmdb.IntValue(int64(i)), mmdb.StringValue(fmt.Sprintf("dept-%d", i))); err != nil {
			return err
		}
	}
	if err := dept.Flush(); err != nil {
		return err
	}
	fmt.Printf("  loaded emp(%d) and dept(8)\n", n)
	return nil
}
