// Command mmdbench regenerates the tables and figures of "Implementation
// Techniques for Main Memory Database Systems" (SIGMOD 1984).
//
// Usage:
//
//	mmdbench -exp all                 # everything (EXPERIMENTS.md source)
//	mmdbench -exp table1              # §2 AVL vs B+-tree crossover
//	mmdbench -exp table2              # parameter settings
//	mmdbench -exp figure1             # §3 join algorithm comparison
//	mmdbench -exp figure1 -full       # also execute at full Table 2 scale (slow)
//	mmdbench -exp table3              # §3.8 sensitivity sweep
//	mmdbench -exp agg                 # §3.9 aggregates/projection
//	mmdbench -exp planner             # §4 planning reduction
//	mmdbench -exp recovery            # §5 throughput ladder
//	mmdbench -exp checkpoint          # §5.3/§5.5 checkpoint sweep
//	mmdbench -exp concurrency -clients 8   # multi-client contention ladder
//	mmdbench -exp priority            # priority-class admission ladder
//	mmdbench -exp sort -parallel 8    # parallel external sort ladder
//	mmdbench -exp cachelab            # cache-kernel wall-time ladder (counter-identity gated)
//	mmdbench -exp chaos               # fault-plane chaos ladder
//	mmdbench -exp wire -clients 8     # SQL-over-TCP serving ladder
//	mmdbench -exp repl                # LSN-shipping replication ladder
//	mmdbench -exp failover            # promotion/failover chaos ladder
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mmdb/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|table2|figure1|table3|agg|planner|recovery|checkpoint|ablation|concurrency|priority|sort|cachelab|chaos|wire|repl|failover")
	full := flag.Bool("full", false, "figure1: execute the operators at full Table 2 scale (minutes of wall time)")
	dur := flag.Duration("dur", 10*time.Second, "recovery: virtual run length per configuration")
	par := flag.Int("parallel", 1, "worker goroutines for executed join operators (1 = serial, -1 = GOMAXPROCS); virtual times are identical, wall time shrinks")
	clients := flag.Int("clients", 8, "concurrency/wire: top of the client ladder (runs 1,2,4,...,N)")
	tuples := flag.Int("tuples", 0, "sort/cachelab: relation size override (0 = the defaults); use a small value for smoke runs")
	slots := flag.Int("slots", 8, "concurrency/wire: MaxConcurrentQueries, held fixed across the ladder")
	queue := flag.Int("queue", 64, "concurrency/wire: admission queue depth")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "mmdbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table2", func() error {
		experiments.PrintTable2(os.Stdout)
		return nil
	})
	run("table1", func() error {
		res, err := experiments.RunTable1(experiments.DefaultTable1Config())
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("figure1", func() error {
		cfg := experiments.DefaultFigure1Config()
		if *full {
			cfg.ScaleDiv = 1
		}
		cfg.Parallelism = *par
		res, err := experiments.RunFigure1(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("table3", func() error {
		res, err := experiments.RunTable3()
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("agg", func() error {
		res, err := experiments.RunAgg()
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("planner", func() error {
		res, err := experiments.RunPlanner()
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("recovery", func() error {
		res, err := experiments.RunRecoveryLadder(*dur)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Println()
		scale, err := experiments.RunRecoveryScale(experiments.DefaultRecoveryScaleConfig())
		if err != nil {
			return err
		}
		scale.Print(os.Stdout)
		if err := scale.WriteJSON("BENCH_recovery.json"); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_recovery.json")
		if !scale.AllHold {
			return fmt.Errorf("recovery scale ladder failed: cross-width counter drift or a flatness/growth bar missed (see BENCH_recovery.json)")
		}
		return nil
	})
	run("checkpoint", func() error {
		res, err := experiments.RunCheckpointSweep(3 * time.Second)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("ablation", func() error {
		res, err := experiments.RunAblations()
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("concurrency", func() error {
		cfg := experiments.DefaultConcurrencyConfig()
		cfg.Slots = *slots
		cfg.QueueDepth = *queue
		cfg.Clients = nil
		for c := 1; c < *clients; c *= 2 {
			cfg.Clients = append(cfg.Clients, c)
		}
		cfg.Clients = append(cfg.Clients, *clients)
		res, err := experiments.RunConcurrency(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return res.WriteJSON("BENCH_concurrency.json")
	})
	run("priority", func() error {
		cfg := experiments.DefaultPriorityConfig()
		res, err := experiments.RunPriority(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return res.WriteJSON("BENCH_priority.json")
	})
	run("sort", func() error {
		cfg := experiments.DefaultSortConfig()
		if *par > 1 {
			cfg.Widths = nil
			for w := 1; w < *par; w *= 2 {
				cfg.Widths = append(cfg.Widths, w)
			}
			cfg.Widths = append(cfg.Widths, *par)
		}
		if *tuples > 0 {
			cfg.Tuples = *tuples
			cfg.RefTuples = *tuples / 20
			if cfg.RefTuples < 10 {
				cfg.RefTuples = 10
			}
		}
		res, err := experiments.RunSort(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.WriteJSON("BENCH_sort.json"); err != nil {
			return err
		}
		if !res.AllIdentical {
			return fmt.Errorf("sort ladder: virtual counters differed across parallelism widths (see BENCH_sort.json)")
		}
		return nil
	})
	run("cachelab", func() error {
		cfg := experiments.DefaultCachelabConfig()
		if *tuples > 0 {
			cfg.BuildTuples = *tuples
			cfg.ProbeTuples = 3 * *tuples
			cfg.SortTuples = *tuples
		}
		res, err := experiments.RunCachelab(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.WriteJSON("BENCH_cachelab.json"); err != nil {
			return err
		}
		if !res.AllIdentical {
			return fmt.Errorf("cachelab ladder: virtual counters drifted between kernel on/off or across widths (see BENCH_cachelab.json)")
		}
		return nil
	})
	run("wire", func() error {
		cfg := experiments.DefaultWireConfig()
		cfg.Slots = *slots
		cfg.QueueDepth = *queue
		cfg.Clients = nil
		for c := 1; c < *clients; c *= 2 {
			cfg.Clients = append(cfg.Clients, c)
		}
		cfg.Clients = append(cfg.Clients, *clients)
		res, err := experiments.RunWire(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.WriteJSON("BENCH_wire.json"); err != nil {
			return err
		}
		if !res.AllIdentical {
			return fmt.Errorf("wire ladder: virtual counters differed across connection counts (see BENCH_wire.json)")
		}
		return nil
	})
	run("repl", func() error {
		cfg := experiments.DefaultReplConfig()
		if *tuples > 0 {
			cfg.ClusterRows = *tuples
		}
		res, err := experiments.RunRepl(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.WriteJSON("BENCH_repl.json"); err != nil {
			return err
		}
		if !res.AllHold {
			return fmt.Errorf("repl ladder: a replica diverged from the primary's committed prefix, counters drifted across widths, or stall fallback failed (see BENCH_repl.json)")
		}
		return nil
	})
	run("failover", func() error {
		cfg := experiments.DefaultFailoverConfig()
		if *tuples > 0 {
			cfg.Rows = *tuples
		}
		res, err := experiments.RunFailover(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.WriteJSON("BENCH_failover.json"); err != nil {
			return err
		}
		if !res.AllHold {
			return fmt.Errorf("failover ladder: an acked write was lost, a replica diverged after rejoin, state drifted across widths, or a lost tail went untyped (see BENCH_failover.json)")
		}
		return nil
	})
	run("chaos", func() error {
		res, err := experiments.RunChaos(experiments.DefaultChaosConfig())
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		if err := res.WriteJSON("BENCH_chaos.json"); err != nil {
			return err
		}
		if !res.AllHold {
			return fmt.Errorf("chaos ladder: invariants violated (see BENCH_chaos.json)")
		}
		return nil
	})
}
