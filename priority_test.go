package mmdb

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openPriorityDB(t *testing.T, policy PickPolicy) *Database {
	t.Helper()
	opts := Options{
		PageSize:             1024,
		MemoryPages:          256,
		MaxConcurrentQueries: 1,
		QueueDepth:           64,
		PickPolicy:           policy,
	}
	opts.Classes[Interactive].ReservedPages = 32
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func durP95(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[int(0.95*float64(len(samples)-1))]
}

// runPriorityMix saturates the single slot with a closed-loop batch join
// stream while an interactive client issues short selections under
// interactiveClass, and returns the interactive queued-time samples plus
// the measured duration of one batch join. Interactive think time is
// paced by batch-join completions rather than a wall-clock timer: on a
// single-CPU host the saturating clients can starve runtime timer
// wakeups for seconds, while channel wakeups stay prompt.
func runPriorityMix(t *testing.T, policy PickPolicy, interactiveClass QueryClass) ([]time.Duration, time.Duration) {
	t.Helper()
	// On a single-processor runtime the saturating clients can starve a
	// woken waiter in the local run queue for seconds; a second processor
	// rescues it through work stealing (see experiments.RunPriority).
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
	db := openPriorityDB(t, policy)
	loadCompany(t, db, 3000, 30)

	// One serial join to measure the batch service time D.
	start := time.Now()
	if _, err := db.Join(HybridHash, "emp", "dept", "dept", "id", nil); err != nil {
		t.Fatal(err)
	}
	batchDur := time.Since(start)

	var stop atomic.Bool
	tick := make(chan struct{}, 1)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := db.Join(HybridHash, "emp", "dept", "dept", "id", nil); err != nil {
					t.Error(err)
					return
				}
				select {
				case tick <- struct{}{}:
				default:
				}
			}
		}()
	}

	pred := db.MustWhere("dept", "id", Ge, IntValue(0))
	queued := make([]time.Duration, 0, 12)
	for q := 0; q < 12; q++ {
		for k := 0; k < 4; k++ { // think ≈ 4 batch completions
			<-tick
		}
		s, err := db.NewSession(context.Background(), WithClass(interactiveClass))
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		if err := s.Select(pred, func(Tuple) bool { rows++; return true }); err != nil {
			t.Fatal(err)
		}
		if rows != 30 {
			t.Fatalf("interactive select saw %d rows, want 30", rows)
		}
		queued = append(queued, s.QueuedFor())
		s.Close()
	}
	stop.Store(true)
	wg.Wait()
	return queued, batchDur
}

// TestPriorityInteractiveBounded is the starvation test: a saturating
// batch stream runs alongside interactive arrivals, and under strict
// priority the interactive queued time must stay bounded by a small
// multiple of one batch service time (grant-time preemption waits out at
// most the in-flight batch query), while the single-class FIFO baseline
// queues interactive work behind the whole batch backlog.
func TestPriorityInteractiveBounded(t *testing.T) {
	fifoQueued, _ := runPriorityMix(t, StrictPriority, Batch) // one class: plain FIFO
	strictQueued, batchDur := runPriorityMix(t, StrictPriority, Interactive)

	fifoP95, strictP95 := durP95(fifoQueued), durP95(strictQueued)
	t.Logf("batch service ≈ %v; interactive queued p95: fifo %v, strict %v",
		batchDur, fifoP95, strictP95)
	// Bounded: at most the in-flight batch query plus scheduling noise.
	// 5× leaves slack for race-detector and CI jitter; the FIFO baseline
	// sits at the full backlog (≈ 4 clients × D) and must not be beaten
	// by this bound.
	if limit := 5 * batchDur; strictP95 > limit {
		t.Fatalf("strict-priority interactive p95 %v exceeds bound %v (batch D %v)",
			strictP95, limit, batchDur)
	}
	if strictP95 > fifoP95 {
		t.Fatalf("strict-priority p95 %v worse than FIFO baseline %v", strictP95, fifoP95)
	}
}

// TestPriorityWeightedFairServes asserts the weighted-fair policy also
// keeps interactive arrivals moving under batch saturation (share
// convergence itself is unit-tested in internal/session).
func TestPriorityWeightedFairServes(t *testing.T) {
	queued, batchDur := runPriorityMix(t, WeightedFair, Interactive)
	if p95 := durP95(queued); p95 > 8*batchDur {
		t.Fatalf("weighted-fair interactive p95 %v not bounded (batch D %v)", p95, batchDur)
	}
}

// TestSessionFunctionalOptions exercises the redesigned NewSession API:
// zero options keep the old behavior (Batch class, policy-default
// grant), WithClass and WithMinPages override it.
func TestSessionFunctionalOptions(t *testing.T) {
	db := openPriorityDB(t, StrictPriority)
	loadCompany(t, db, 100, 4)

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s.Class() != Batch {
		t.Fatalf("default class = %v, want Batch", s.Class())
	}
	// general = 256-32 = 224; batch share = 224/1 = 224.
	if s.GrantedPages() != 224 {
		t.Fatalf("default batch grant = %d, want 224", s.GrantedPages())
	}
	s.Close()

	s, err = db.NewSession(context.Background(), WithClass(Interactive), WithMinPages(10))
	if err != nil {
		t.Fatal(err)
	}
	if s.Class() != Interactive {
		t.Fatalf("class = %v, want Interactive", s.Class())
	}
	if s.GrantedPages() != 10 {
		t.Fatalf("explicit grant = %d, want 10", s.GrantedPages())
	}
	if _, err := s.Join(HybridHash, "emp", "dept", "dept", "id", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	m := db.SessionMetrics()
	if m.PerClass[Interactive].Admitted != 1 || m.PerClass[Batch].Admitted != 1 {
		t.Fatalf("per-class admitted = %+v", m.PerClass)
	}
	if m.PerClass[Interactive].ReservedPages != 32 {
		t.Fatalf("reserved pages = %d, want 32", m.PerClass[Interactive].ReservedPages)
	}
}

// TestOverloadErrorClassDetails asserts shed queries report the class
// and depth that rejected them while still matching ErrOverloaded.
func TestOverloadErrorClassDetails(t *testing.T) {
	opts := Options{
		PageSize:             512,
		MemoryPages:          64,
		MaxConcurrentQueries: 1,
	}
	opts.Classes[Interactive].QueueDepth = -1 // no interactive queue
	opts.Classes[Batch].QueueDepth = -1       // no batch queue
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	loadCompany(t, db, 100, 4)

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, err = db.NewSession(context.Background(), WithClass(Interactive))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("interactive shed: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Class != Interactive || oe.Depth != 0 {
		t.Fatalf("interactive shed detail = %+v", oe)
	}
	_, err = db.NewSession(context.Background())
	if !errors.As(err, &oe) || oe.Class != Batch {
		t.Fatalf("batch shed = %v (detail %+v)", err, oe)
	}
	m := db.SessionMetrics()
	if m.PerClass[Interactive].Rejected != 1 || m.PerClass[Batch].Rejected != 1 {
		t.Fatalf("per-class rejected = %+v", m.PerClass)
	}
	if m.Rejected != 2 {
		t.Fatalf("total rejected = %d, want 2", m.Rejected)
	}
}

// TestPriorityCountersMatchSerial is the class-mix determinism check:
// batch joins and interactive selections produce bit-identical per-query
// virtual-clock results whether they run serially or interleaved under
// priority admission with reservations configured — classes trade
// wall-clock queueing only, never the paper's accounting.
func TestPriorityCountersMatchSerial(t *testing.T) {
	open := func(slots int) *Database {
		opts := Options{
			PageSize:             1024,
			MemoryPages:          256,
			MaxConcurrentQueries: slots,
			QueueDepth:           64,
			PickPolicy:           StrictPriority,
		}
		opts.Classes[Interactive].ReservedPages = 32
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		loadCompany(t, db, 500, 10)
		return db
	}
	batchQuery := func(db *Database) (JoinResult, error) {
		var res JoinResult
		err := db.withSession(context.Background(), func(s *Session) error {
			var err error
			res, err = s.Join(HybridHash, "emp", "dept", "dept", "id", nil)
			return err
		})
		return res, err
	}
	type selResult struct {
		rows     int
		counters Counters
	}
	interactiveQuery := func(db *Database) (selResult, error) {
		pred := db.MustWhere("dept", "id", Ge, IntValue(0))
		s, err := db.NewSession(context.Background(), WithClass(Interactive))
		if err != nil {
			return selResult{}, err
		}
		defer s.Close()
		var r selResult
		if err := s.Select(pred, func(Tuple) bool { r.rows++; return true }); err != nil {
			return selResult{}, err
		}
		r.counters = s.Counters()
		return r, nil
	}

	// Serial reference: same Options (slots included) so static grants
	// are identical; run queries one at a time.
	serial := open(4)
	wantJoin, err := batchQuery(serial)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, err := interactiveQuery(serial)
	if err != nil {
		t.Fatal(err)
	}

	conc := open(4)
	const perKind = 6
	joins := make([]JoinResult, perKind)
	sels := make([]selResult, perKind)
	errs := make([]error, 2*perKind)
	var wg sync.WaitGroup
	for i := 0; i < perKind; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			joins[i], errs[i] = batchQuery(conc)
		}(i)
		go func(i int) {
			defer wg.Done()
			sels[i], errs[perKind+i] = interactiveQuery(conc)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i := 0; i < perKind; i++ {
		if joins[i] != wantJoin {
			t.Fatalf("batch join %d diverged under contention:\n got %+v\nwant %+v", i, joins[i], wantJoin)
		}
		if sels[i] != wantSel {
			t.Fatalf("interactive select %d diverged under contention:\n got %+v\nwant %+v", i, sels[i], wantSel)
		}
	}
	m := conc.SessionMetrics()
	if m.PeakGrantedPages > m.MemoryPages {
		t.Fatalf("broker over-granted: peak %d > |M| %d", m.PeakGrantedPages, m.MemoryPages)
	}
}
