package sqlclient

import (
	"errors"
	"fmt"
	"testing"

	"mmdb"
	"mmdb/internal/fault"
)

// TestWriteStatementClassification: the idempotence guard must treat
// only SELECTs as safe to retry after an ambiguous connection loss —
// everything else, including unparseable input, is conservatively a
// write.
func TestWriteStatementClassification(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM emp",
		"SELECT COUNT(*) FROM emp WHERE id > 3",
		"  select id from emp order by id",
	} {
		if writeStatement(sql) {
			t.Errorf("%q classified as a write", sql)
		}
	}
	for _, sql := range []string{
		"INSERT INTO emp VALUES (1, 2)",
		"DELETE FROM emp WHERE id = 1",
		"UPDATE emp SET salary = 0 WHERE id = 1",
		"CREATE TABLE t (x INT)",
		"DROP TABLE t",
		"garbage that does not parse",
	} {
		if !writeStatement(sql) {
			t.Errorf("%q classified as safe to retry", sql)
		}
	}
}

// TestRetryableErrorTaxonomy: the retry marker must satisfy
// fault.ErrTransient (so fault.Retry retries it) while the original
// typed error stays reachable through errors.Is/As — a caller whose
// budget ran out still sees mmdb.ErrNotPrimary with its epoch and hint.
func TestRetryableErrorTaxonomy(t *testing.T) {
	orig := &mmdb.NotPrimaryError{Epoch: 4, Hint: "r0"}
	err := retryable(orig)
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatal("retryable error does not match fault.ErrTransient")
	}
	if !errors.Is(err, mmdb.ErrNotPrimary) {
		t.Fatal("retryable error lost mmdb.ErrNotPrimary")
	}
	var np *mmdb.NotPrimaryError
	if !errors.As(err, &np) || np.Epoch != 4 || np.Hint != "r0" {
		t.Fatalf("typed NotPrimaryError unreachable through the marker: %v", err)
	}
	if got := unwrapRetryable(err); got != error(orig) {
		t.Fatalf("unwrapRetryable returned %v, want the original", got)
	}
	// A terminal error passes through unwrapRetryable untouched.
	plain := fmt.Errorf("boom")
	if got := unwrapRetryable(plain); got != plain {
		t.Fatalf("unwrapRetryable mangled a plain error: %v", got)
	}
}

// TestInDoubtErrorSurface: an in-doubt write is terminal — it must NOT
// look transient to the retry loop — and unwraps to the underlying
// connection failure.
func TestInDoubtErrorSurface(t *testing.T) {
	cause := fmt.Errorf("connection reset")
	err := error(&InDoubtError{SQL: "INSERT INTO t VALUES (1)", Err: cause})
	if errors.Is(err, fault.ErrTransient) {
		t.Fatal("in-doubt write looks retryable")
	}
	if !errors.Is(err, cause) {
		t.Fatal("in-doubt error lost its cause")
	}
	var id *InDoubtError
	if !errors.As(err, &id) || id.SQL != "INSERT INTO t VALUES (1)" {
		t.Fatalf("in-doubt statement not recoverable: %v", err)
	}
}
