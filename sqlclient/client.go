// Package sqlclient is the Go client for the mmdb wire protocol
// (docs/WIRE.md): it dials a server, speaks HELLO/WELCOME, and runs SQL
// statements, decoding result rows back into values and rebuilding the
// engine's typed errors — an OVERLOAD frame comes back as an
// *mmdb.OverloadError and a NOT_PRIMARY frame as an
// *mmdb.NotPrimaryError, so errors.Is works on the client side exactly
// as it does against an in-process Database.
//
// A client dialed with DialMulti is failover-aware: when the node it is
// talking to is demoted (NOT_PRIMARY) or dies (connection loss), it
// reconnects — preferring the address the server hinted as the new
// primary — and retries with bounded exponential backoff. The retry
// respects an idempotence guard: only statements the server never
// acknowledged are re-sent. A write whose connection died after the
// request was sent might have committed, so it fails with a typed
// *InDoubtError instead of being retried blindly.
package sqlclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"mmdb"
	"mmdb/internal/cost"
	"mmdb/internal/fault"
	sqlfront "mmdb/internal/sql"
	"mmdb/internal/wire"
)

// retryBase is the first real-time backoff step between retry attempts;
// each attempt doubles it and adds up to one base of jitter. Clients
// configured with WithRetryClock charge virtual time instead and never
// sleep.
const retryBase = 2 * time.Millisecond

// Option configures a connection at Dial time.
type Option func(*config)

type config struct {
	class        mmdb.QueryClass
	minPages     uint32
	pref         mmdb.ReadPreference
	prefSet      bool
	readTimeout  time.Duration
	writeTimeout time.Duration
	retries      int
	retriesSet   bool
	clock        *cost.Clock
}

// WithClass sets the connection's default query class (every statement
// runs under it unless QueryClass overrides). The zero default is
// Batch, matching mmdb.NewSession.
func WithClass(c mmdb.QueryClass) Option { return func(cfg *config) { cfg.class = c } }

// WithMinPages sets the connection's default minimum memory grant in
// pages (mmdb.WithMinPages on each server-side session). 0 keeps the
// broker's policy default.
func WithMinPages(n int) Option { return func(cfg *config) { cfg.minPages = uint32(n) } }

// WithReadPreference sets the connection's default read preference:
// every statement carries it (QueryPref overrides per statement), and a
// cluster-backed server routes SELECTs by it — mmdb.WithReadPreference
// over the wire. Requires a server speaking protocol version >= 2;
// statements fail with an explanatory error on older servers.
func WithReadPreference(p mmdb.ReadPreference) Option {
	return func(cfg *config) { cfg.pref = p; cfg.prefSet = true }
}

// WithReadTimeout bounds every frame read (responses, PONGs, the
// handshake): a stalled or severed server fails the statement within d
// instead of blocking Query forever. 0 (the default) means no deadline.
func WithReadTimeout(d time.Duration) Option { return func(cfg *config) { cfg.readTimeout = d } }

// WithWriteTimeout bounds every frame write. 0 means no deadline.
func WithWriteTimeout(d time.Duration) Option { return func(cfg *config) { cfg.writeTimeout = d } }

// WithRetries sets how many reconnect-and-retry attempts follow a
// retryable failure (NOT_PRIMARY, connection loss before the request was
// sent, dial failure). DialMulti defaults to fault.DefaultRetries;
// single-address Dial defaults to 0 — no retries, today's behavior.
func WithRetries(n int) Option { return func(cfg *config) { cfg.retries = n; cfg.retriesSet = true } }

// WithRetryClock charges retry backoff to the given virtual clock
// (exponential sequential-IO delay via fault.Retry) instead of sleeping
// real time — the deterministic mode the chaos ladders run under.
func WithRetryClock(clk *cost.Clock) Option { return func(cfg *config) { cfg.clock = clk } }

// Col describes one result column.
type Col struct {
	Name string
	Kind mmdb.Kind
	Size int // byte width of String columns
}

// Result is one statement's outcome: the rows (empty for INSERT or
// DELETE), the affected-row count, and the statement's virtual-clock
// bill as measured by the server.
type Result struct {
	Cols     []Col
	Rows     [][]mmdb.Value
	Affected int64
	Counters mmdb.Counters
	Elapsed  time.Duration // virtual time the statement cost
	Queued   time.Duration // wall time the session queued for admission
	Server   string        // server name from WELCOME
}

// ServerError is a statement failure reported over the wire; Code is a
// wire.Code* constant and Msg the server's rendered error (for parse
// and binding failures it carries the SQL.md §7 citation).
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg) }

// InDoubtError is the idempotence guard's refusal: the connection died
// after a write statement was sent and before its response arrived, so
// the write may or may not have committed — retrying it blindly could
// apply it twice. The client surfaces the doubt instead; the caller
// decides (re-issue an idempotent statement, or check first).
type InDoubtError struct {
	SQL string
	Err error // the underlying connection failure
}

func (e *InDoubtError) Error() string {
	return fmt.Sprintf("sqlclient: write outcome unknown (connection lost mid-statement): %v", e.Err)
}

func (e *InDoubtError) Unwrap() error { return e.Err }

// retryableError marks a failure the reconnect-and-retry loop may retry:
// it matches fault.ErrTransient (what fault.Retry retries) while still
// unwrapping to the original typed error, so when the budget runs out
// the caller sees the real cause — errors.Is(err, mmdb.ErrNotPrimary)
// keeps working.
type retryableError struct{ err error }

func (e *retryableError) Error() string   { return e.err.Error() }
func (e *retryableError) Unwrap() []error { return []error{e.err, fault.ErrTransient} }

func retryable(err error) error { return &retryableError{err: err} }

// unwrapRetryable strips the retry marker off a final error.
func unwrapRetryable(err error) error {
	var re *retryableError
	if errors.As(err, &re) {
		return re.err
	}
	return err
}

// Client is one logical wire connection, possibly re-established across
// node failures when dialed with DialMulti. Not safe for concurrent
// use: the protocol runs one statement at a time per connection — open
// more clients for concurrency, as mmdbench -exp wire does.
type Client struct {
	cfg     config
	addrs   []string // candidate addresses, in dial order
	cur     int      // index of the address conn was dialed to
	hint    string   // NOT_PRIMARY hint: try this address first on redial
	retries int      // reconnect-and-retry budget per statement

	conn    net.Conn
	server  string
	version byte   // negotiated protocol version from WELCOME
	role    byte   // wire.Role* from a v3 WELCOME
	epoch   uint64 // cluster epoch from a v3 WELCOME / NOT_PRIMARY
}

// Dial connects to one address and performs the HELLO/WELCOME
// handshake. No automatic retries unless WithRetries asks for them.
func Dial(addr string, opts ...Option) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext is Dial honoring ctx for the TCP connect and handshake.
func DialContext(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	return dialAddrs(ctx, []string{addr}, 0, opts...)
}

// DialMulti connects to the first reachable of several cluster node
// addresses and enables automatic reconnect-and-retry (fault.DefaultRetries
// attempts unless WithRetries overrides): statements that hit
// NOT_PRIMARY or lose their connection before being sent are retried
// against the next candidate — preferring the server's primary hint —
// with bounded exponential backoff. This is the client a failover-aware
// application holds.
func DialMulti(ctx context.Context, addrs []string, opts ...Option) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("sqlclient: DialMulti needs at least one address")
	}
	return dialAddrs(ctx, addrs, fault.DefaultRetries, opts...)
}

func dialAddrs(ctx context.Context, addrs []string, defaultRetries int, opts ...Option) (*Client, error) {
	cfg := config{class: mmdb.Batch}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{cfg: cfg, addrs: append([]string(nil), addrs...), retries: defaultRetries}
	if cfg.retriesSet {
		c.retries = cfg.retries
	}
	if err := unwrapRetryable(c.redial(ctx)); err != nil {
		return nil, err
	}
	return c, nil
}

// candidates lists the addresses to try on a redial: the server's
// primary hint first when it is dialable, then the configured addresses
// starting after the one that just failed.
func (c *Client) candidates() []string {
	var out []string
	if c.hint != "" && strings.Contains(c.hint, ":") {
		out = append(out, c.hint)
	}
	for i := 0; i < len(c.addrs); i++ {
		a := c.addrs[(c.cur+i)%len(c.addrs)]
		if len(out) > 0 && out[0] == a {
			continue
		}
		out = append(out, a)
	}
	return out
}

// redial establishes a connection to the first reachable candidate and
// runs the handshake. Failures are marked retryable: the next attempt
// may find the node back up.
func (c *Client) redial(ctx context.Context) error {
	c.closeConn()
	var lastErr error
	for _, addr := range c.candidates() {
		if err := c.dialTo(ctx, addr); err != nil {
			lastErr = err
			continue
		}
		if addr == c.hint {
			c.hint = ""
		}
		for i, a := range c.addrs {
			if a == addr {
				c.cur = i
				break
			}
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("sqlclient: no reachable address")
	}
	return retryable(lastErr)
}

func (c *Client) dialTo(ctx context.Context, addr string) error {
	var d net.Dialer
	if c.cfg.readTimeout > 0 {
		d.Timeout = c.cfg.readTimeout
	}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	c.conn = conn
	if c.cfg.writeTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.writeTimeout))
	}
	err = wire.WriteFrame(conn, wire.THello, wire.EncodeHello(wire.Hello{
		Version:  wire.Version,
		Class:    byte(c.cfg.class),
		MinPages: c.cfg.minPages,
	}))
	if err != nil {
		c.closeConn()
		return err
	}
	typ, payload, err := c.read()
	if err != nil {
		c.closeConn()
		return err
	}
	switch typ {
	case wire.TWelcome:
		w, err := wire.DecodeWelcome(payload)
		if err != nil {
			c.closeConn()
			return err
		}
		if w.Version < wire.MinVersion || w.Version > wire.Version {
			c.closeConn()
			return fmt.Errorf("sqlclient: server negotiated unsupported protocol version %d", w.Version)
		}
		c.server = w.Server
		c.version = w.Version
		c.role = w.Role
		if w.Epoch > c.epoch {
			c.epoch = w.Epoch
		}
		return nil
	case wire.TError:
		e, derr := wire.DecodeError(payload)
		c.closeConn()
		if derr != nil {
			return derr
		}
		return &ServerError{Code: e.Code, Msg: e.Msg}
	default:
		c.closeConn()
		return fmt.Errorf("sqlclient: unexpected handshake frame 0x%02X", typ)
	}
}

// Server returns the server name announced in the last WELCOME.
func (c *Client) Server() string { return c.server }

// Version returns the negotiated protocol version.
func (c *Client) Version() int { return int(c.version) }

// Role returns the node's announced role (wire.Role*): RolePrimary,
// RoleReplica, or RoleUnknown on pre-v3 servers.
func (c *Client) Role() int { return int(c.role) }

// Epoch returns the highest cluster epoch observed on this client, from
// WELCOME and NOT_PRIMARY frames. 0 until a v3 server reports one.
func (c *Client) Epoch() uint64 { return c.epoch }

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) closeConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// write sends one frame under the configured write deadline.
func (c *Client) write(typ byte, payload []byte) error {
	if c.cfg.writeTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.cfg.writeTimeout))
	}
	return wire.WriteFrame(c.conn, typ, payload)
}

// read receives one frame under the configured read deadline.
func (c *Client) read() (byte, []byte, error) {
	if c.cfg.readTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.readTimeout))
	}
	return wire.ReadFrame(c.conn)
}

// Ping round-trips a PING frame — the client side of the heartbeat that
// keeps a quiet connection alive under the server's idle timeout.
func (c *Client) Ping() error {
	if c.conn == nil {
		return fmt.Errorf("sqlclient: connection closed")
	}
	if err := c.write(wire.TPing, nil); err != nil {
		return err
	}
	typ, _, err := c.read()
	if err != nil {
		return err
	}
	if typ != wire.TPong {
		return fmt.Errorf("sqlclient: expected PONG, got frame 0x%02X", typ)
	}
	return nil
}

// Query runs one statement under the connection's default class and
// read preference.
func (c *Client) Query(sql string) (*Result, error) {
	return c.query(wire.Query{Class: wire.ClassDefault, SQL: sql}, c.cfg.pref, c.cfg.prefSet)
}

// QueryClass runs one statement under an explicit class and minimum
// memory grant (0 = connection default), the wire path for the
// engine's WithClass/WithMinPages session options.
func (c *Client) QueryClass(sql string, class mmdb.QueryClass, minPages int) (*Result, error) {
	return c.query(wire.Query{Class: byte(class), MinPages: uint32(minPages), SQL: sql}, c.cfg.pref, c.cfg.prefSet)
}

// QueryPref runs one statement under an explicit read preference,
// overriding the connection default: the wire path for the engine's
// WithReadPreference session option. Requires negotiated protocol
// version >= 2.
func (c *Client) QueryPref(sql string, pref mmdb.ReadPreference) (*Result, error) {
	return c.query(wire.Query{Class: wire.ClassDefault, SQL: sql}, pref, true)
}

// writeStatement classifies sql for the idempotence guard: SELECTs are
// always safe to retry; everything else — including statements that do
// not parse — is conservatively treated as a write.
func writeStatement(sql string) bool {
	stmt, err := sqlfront.Parse(sql)
	if err != nil {
		return true
	}
	_, isSelect := stmt.(*sqlfront.SelectStmt)
	return !isSelect
}

// query runs one statement with the client's reconnect-and-retry
// policy. Retryable failures — NOT_PRIMARY, dial failures, connection
// loss before the request was acked-as-sent, any read failure — retry
// up to the budget with exponential backoff: virtual (charged to the
// retry clock via fault.Retry) or real jittered time. Terminal failures
// (statement errors, overloads, in-doubt writes) return immediately.
func (c *Client) query(q wire.Query, pref mmdb.ReadPreference, prefSet bool) (*Result, error) {
	isWrite := writeStatement(q.SQL)
	if c.retries <= 0 {
		res, err := c.attempt(q, pref, prefSet, isWrite)
		return res, unwrapRetryable(err)
	}
	var res *Result
	attempt := 0
	err := fault.Retry(c.cfg.clock, c.retries, func() error {
		if attempt > 0 && c.cfg.clock == nil {
			// Real-time mode: exponential backoff with one base of jitter,
			// so a thundering herd of retrying clients spreads out.
			d := time.Duration(1<<uint(attempt-1)) * retryBase
			time.Sleep(d + time.Duration(rand.Int63n(int64(retryBase))))
		}
		attempt++
		r, err := c.attempt(q, pref, prefSet, isWrite)
		if err == nil {
			res = r
		}
		return err
	})
	return res, unwrapRetryable(err)
}

// attempt runs one statement once, reconnecting first if the previous
// attempt lost the connection. Errors it returns are marked retryable
// exactly when re-sending is safe: the statement provably never reached
// a server that would execute it.
func (c *Client) attempt(q wire.Query, pref mmdb.ReadPreference, prefSet bool, isWrite bool) (*Result, error) {
	if c.conn == nil {
		if err := c.redial(context.Background()); err != nil {
			return nil, err
		}
		if isWrite && c.role == wire.RoleReplica && len(c.addrs) > 1 {
			// The WELCOME role byte says this node cannot take the write;
			// skip to the next candidate without burning a round trip.
			c.closeConn()
			c.cur = (c.cur + 1) % len(c.addrs)
			return nil, retryable(&mmdb.NotPrimaryError{Epoch: c.epoch})
		}
	}
	q.Pref = wire.PrefDefault
	payload := wire.EncodeQuery(q)
	if prefSet {
		if c.version < 2 {
			return nil, fmt.Errorf("sqlclient: read preferences need protocol version 2; server negotiated %d", c.version)
		}
		q.Pref = byte(pref.Mode)
		q.MaxLag = pref.MaxLSNLag
		payload = wire.EncodeQueryV2(q)
	}
	if err := c.write(wire.TQuery, payload); err != nil {
		// The request may have partially reached the server: a write is
		// in doubt from the first byte out.
		c.closeConn()
		return nil, c.lossErr(q.SQL, isWrite, err)
	}
	typ, payload, err := c.read()
	if err != nil {
		c.closeConn()
		return nil, c.lossErr(q.SQL, isWrite, err)
	}
	switch typ {
	case wire.TError:
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, &ServerError{Code: e.Code, Msg: e.Msg}
	case wire.TOverload:
		o, derr := wire.DecodeOverload(payload)
		if derr != nil {
			return nil, derr
		}
		// Rebuild the engine's typed error so errors.Is/As behave as if
		// the scheduler had shed the caller in-process.
		return nil, &mmdb.OverloadError{Class: mmdb.QueryClass(o.Class), Depth: int(o.Depth)}
	case wire.TNotPrimary:
		np, derr := wire.DecodeNotPrimary(payload)
		if derr != nil {
			return nil, derr
		}
		if np.Epoch > c.epoch {
			c.epoch = np.Epoch
		}
		c.hint = np.Hint
		// The node refused the statement outright — nothing executed, so
		// retrying (against the hinted primary) is always safe, writes
		// included. Reconnect on the next attempt.
		c.closeConn()
		return nil, retryable(&mmdb.NotPrimaryError{Epoch: np.Epoch, Hint: np.Hint})
	case wire.TResult:
	default:
		return nil, fmt.Errorf("sqlclient: unexpected frame 0x%02X", typ)
	}
	wres, err := wire.DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	schema, err := wres.Schema()
	if err != nil {
		return nil, err
	}
	res := &Result{Affected: wres.Affected, Server: c.server}
	for _, f := range wres.Fields {
		res.Cols = append(res.Cols, Col{Name: f.Name, Kind: f.Kind, Size: int(f.Size)})
	}
	for {
		typ, payload, err := c.read()
		if err != nil {
			c.closeConn()
			return nil, c.lossErr(q.SQL, isWrite, err)
		}
		switch typ {
		case wire.TRows:
			rows, err := wire.DecodeRows(payload, schema)
			if err != nil {
				return nil, err
			}
			for _, t := range rows {
				res.Rows = append(res.Rows, schema.Decode(t))
			}
		case wire.TDone:
			d, err := wire.DecodeDone(payload)
			if err != nil {
				return nil, err
			}
			if int(d.RowCount) != len(res.Rows) {
				return nil, fmt.Errorf("sqlclient: DONE reports %d rows, received %d", d.RowCount, len(res.Rows))
			}
			res.Counters = mmdb.Counters{
				Comps: d.Counters[0], Hashes: d.Counters[1], Moves: d.Counters[2],
				Swaps: d.Counters[3], SeqIOs: d.Counters[4], RandIOs: d.Counters[5],
			}
			res.Elapsed = time.Duration(d.ElapsedNS)
			res.Queued = time.Duration(d.QueuedNS)
			return res, nil
		default:
			return nil, fmt.Errorf("sqlclient: unexpected frame 0x%02X mid-response", typ)
		}
	}
}

// lossErr classifies a connection failure mid-statement: reads are
// always safe to retry on a fresh connection; a write whose request may
// have reached the server is in doubt — the idempotence guard — and is
// never retried automatically.
func (c *Client) lossErr(sql string, isWrite bool, err error) error {
	if isWrite {
		return &InDoubtError{SQL: sql, Err: err}
	}
	return retryable(err)
}
