// Package sqlclient is the Go client for the mmdb wire protocol
// (docs/WIRE.md): it dials a server, speaks HELLO/WELCOME, and runs SQL
// statements, decoding result rows back into values and rebuilding the
// engine's typed errors — an OVERLOAD frame comes back as an
// *mmdb.OverloadError, so errors.Is(err, mmdb.ErrOverloaded) works on
// the client side exactly as it does against an in-process Database.
package sqlclient

import (
	"fmt"
	"net"
	"time"

	"mmdb"
	"mmdb/internal/wire"
)

// Option configures a connection at Dial time.
type Option func(*config)

type config struct {
	class    mmdb.QueryClass
	minPages uint32
	pref     mmdb.ReadPreference
	prefSet  bool
}

// WithClass sets the connection's default query class (every statement
// runs under it unless QueryClass overrides). The zero default is
// Batch, matching mmdb.NewSession.
func WithClass(c mmdb.QueryClass) Option { return func(cfg *config) { cfg.class = c } }

// WithMinPages sets the connection's default minimum memory grant in
// pages (mmdb.WithMinPages on each server-side session). 0 keeps the
// broker's policy default.
func WithMinPages(n int) Option { return func(cfg *config) { cfg.minPages = uint32(n) } }

// WithReadPreference sets the connection's default read preference:
// every statement carries it (QueryPref overrides per statement), and a
// cluster-backed server routes SELECTs by it — mmdb.WithReadPreference
// over the wire. Requires a server speaking protocol version >= 2;
// statements fail with an explanatory error on older servers.
func WithReadPreference(p mmdb.ReadPreference) Option {
	return func(cfg *config) { cfg.pref = p; cfg.prefSet = true }
}

// Col describes one result column.
type Col struct {
	Name string
	Kind mmdb.Kind
	Size int // byte width of String columns
}

// Result is one statement's outcome: the rows (empty for INSERT or
// DELETE), the affected-row count, and the statement's virtual-clock
// bill as measured by the server.
type Result struct {
	Cols     []Col
	Rows     [][]mmdb.Value
	Affected int64
	Counters mmdb.Counters
	Elapsed  time.Duration // virtual time the statement cost
	Queued   time.Duration // wall time the session queued for admission
	Server   string        // server name from WELCOME
}

// ServerError is a statement failure reported over the wire; Code is a
// wire.Code* constant and Msg the server's rendered error (for parse
// and binding failures it carries the SQL.md §7 citation).
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg) }

// Client is one wire connection. Not safe for concurrent use: the
// protocol runs one statement at a time per connection — open more
// connections for concurrency, as mmdbench -exp wire does.
type Client struct {
	conn    net.Conn
	cfg     config
	server  string
	version byte // negotiated protocol version from WELCOME
}

// Dial connects and performs the HELLO/WELCOME handshake.
func Dial(addr string, opts ...Option) (*Client, error) {
	cfg := config{class: mmdb.Batch}
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, cfg: cfg}
	err = wire.WriteFrame(conn, wire.THello, wire.EncodeHello(wire.Hello{
		Version:  wire.Version,
		Class:    byte(cfg.class),
		MinPages: cfg.minPages,
	}))
	if err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch typ {
	case wire.TWelcome:
		w, err := wire.DecodeWelcome(payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if w.Version < wire.MinVersion || w.Version > wire.Version {
			conn.Close()
			return nil, fmt.Errorf("sqlclient: server negotiated unsupported protocol version %d", w.Version)
		}
		c.server = w.Server
		c.version = w.Version
		return c, nil
	case wire.TError:
		e, derr := wire.DecodeError(payload)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, &ServerError{Code: e.Code, Msg: e.Msg}
	default:
		conn.Close()
		return nil, fmt.Errorf("sqlclient: unexpected handshake frame 0x%02X", typ)
	}
}

// Server returns the server name announced in WELCOME.
func (c *Client) Server() string { return c.server }

// Version returns the negotiated protocol version.
func (c *Client) Version() int { return int(c.version) }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping round-trips a PING frame.
func (c *Client) Ping() error {
	if err := wire.WriteFrame(c.conn, wire.TPing, nil); err != nil {
		return err
	}
	typ, _, err := wire.ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if typ != wire.TPong {
		return fmt.Errorf("sqlclient: expected PONG, got frame 0x%02X", typ)
	}
	return nil
}

// Query runs one statement under the connection's default class and
// read preference.
func (c *Client) Query(sql string) (*Result, error) {
	return c.query(wire.Query{Class: wire.ClassDefault, SQL: sql}, c.cfg.pref, c.cfg.prefSet)
}

// QueryClass runs one statement under an explicit class and minimum
// memory grant (0 = connection default), the wire path for the
// engine's WithClass/WithMinPages session options.
func (c *Client) QueryClass(sql string, class mmdb.QueryClass, minPages int) (*Result, error) {
	return c.query(wire.Query{Class: byte(class), MinPages: uint32(minPages), SQL: sql}, c.cfg.pref, c.cfg.prefSet)
}

// QueryPref runs one statement under an explicit read preference,
// overriding the connection default: the wire path for the engine's
// WithReadPreference session option. Requires negotiated protocol
// version >= 2.
func (c *Client) QueryPref(sql string, pref mmdb.ReadPreference) (*Result, error) {
	return c.query(wire.Query{Class: wire.ClassDefault, SQL: sql}, pref, true)
}

func (c *Client) query(q wire.Query, pref mmdb.ReadPreference, prefSet bool) (*Result, error) {
	q.Pref = wire.PrefDefault
	payload := wire.EncodeQuery(q)
	if prefSet {
		if c.version < 2 {
			return nil, fmt.Errorf("sqlclient: read preferences need protocol version 2; server negotiated %d", c.version)
		}
		q.Pref = byte(pref.Mode)
		q.MaxLag = pref.MaxLSNLag
		payload = wire.EncodeQueryV2(q)
	}
	if err := wire.WriteFrame(c.conn, wire.TQuery, payload); err != nil {
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.TError:
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, &ServerError{Code: e.Code, Msg: e.Msg}
	case wire.TOverload:
		o, derr := wire.DecodeOverload(payload)
		if derr != nil {
			return nil, derr
		}
		// Rebuild the engine's typed error so errors.Is/As behave as if
		// the scheduler had shed the caller in-process.
		return nil, &mmdb.OverloadError{Class: mmdb.QueryClass(o.Class), Depth: int(o.Depth)}
	case wire.TResult:
	default:
		return nil, fmt.Errorf("sqlclient: unexpected frame 0x%02X", typ)
	}
	wres, err := wire.DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	schema, err := wres.Schema()
	if err != nil {
		return nil, err
	}
	res := &Result{Affected: wres.Affected, Server: c.server}
	for _, f := range wres.Fields {
		res.Cols = append(res.Cols, Col{Name: f.Name, Kind: f.Kind, Size: int(f.Size)})
	}
	for {
		typ, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return nil, err
		}
		switch typ {
		case wire.TRows:
			rows, err := wire.DecodeRows(payload, schema)
			if err != nil {
				return nil, err
			}
			for _, t := range rows {
				res.Rows = append(res.Rows, schema.Decode(t))
			}
		case wire.TDone:
			d, err := wire.DecodeDone(payload)
			if err != nil {
				return nil, err
			}
			if int(d.RowCount) != len(res.Rows) {
				return nil, fmt.Errorf("sqlclient: DONE reports %d rows, received %d", d.RowCount, len(res.Rows))
			}
			res.Counters = mmdb.Counters{
				Comps: d.Counters[0], Hashes: d.Counters[1], Moves: d.Counters[2],
				Swaps: d.Counters[3], SeqIOs: d.Counters[4], RandIOs: d.Counters[5],
			}
			res.Elapsed = time.Duration(d.ElapsedNS)
			res.Queued = time.Duration(d.QueuedNS)
			return res, nil
		default:
			return nil, fmt.Errorf("sqlclient: unexpected frame 0x%02X mid-response", typ)
		}
	}
}
