package mmdb

import (
	"fmt"
	"testing"
)

func openTestDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Options{PageSize: 512, MemoryPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func empSchema() *Schema {
	return MustSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "dept", Kind: Int64},
		Field{Name: "salary", Kind: Int64},
		Field{Name: "name", Kind: String, Size: 16},
	)
}

func deptSchema() *Schema {
	return MustSchema(
		Field{Name: "id", Kind: Int64},
		Field{Name: "label", Kind: String, Size: 16},
	)
}

func loadCompany(t *testing.T, db *Database, nEmp, nDept int) (*Relation, *Relation) {
	t.Helper()
	emp, err := db.CreateRelation("emp", empSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEmp; i++ {
		err := emp.Insert(
			IntValue(int64(i)),
			IntValue(int64(i%nDept)),
			IntValue(int64(1000+i%500)),
			StringValue(fmt.Sprintf("emp%d", i)),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		t.Fatal(err)
	}
	dept, err := db.CreateRelation("dept", deptSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nDept; i++ {
		if err := dept.Insert(IntValue(int64(i)), StringValue(fmt.Sprintf("dept%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := dept.Flush(); err != nil {
		t.Fatal(err)
	}
	return emp, dept
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{PageSize: 8}); err == nil {
		t.Error("tiny page accepted")
	}
	if _, err := Open(Options{MemoryPages: 1}); err == nil {
		t.Error("one-page memory accepted")
	}
	db := MustOpen(Options{})
	if db.Options().PageSize != 4096 || db.MemoryPages() != 1000 {
		t.Errorf("defaults %+v", db.Options())
	}
}

func TestRelationLifecycle(t *testing.T) {
	db := openTestDB(t)
	emp, _ := loadCompany(t, db, 100, 5)
	if emp.NumTuples() != 100 {
		t.Fatalf("tuples %d", emp.NumTuples())
	}
	if got := db.Relations(); len(got) != 2 {
		t.Fatalf("relations %v", got)
	}
	if _, err := db.Relation("emp"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("dept"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Relation("dept"); err == nil {
		t.Fatal("dropped relation still visible")
	}
}

func TestLookupViaIndexAndScan(t *testing.T) {
	db := openTestDB(t)
	emp, _ := loadCompany(t, db, 200, 5)

	// Unindexed lookup: charged sequential scan.
	db.ResetClock()
	rows, err := emp.Lookup("id", IntValue(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || emp.Schema().Get(rows[0], 3).S != "emp42" {
		t.Fatalf("lookup rows %v", rows)
	}
	if db.Counters().SeqIOs == 0 {
		t.Fatal("scan lookup charged no IO")
	}

	// Indexed lookups for both access methods.
	for _, kind := range []IndexKind{BTree, AVL} {
		db2 := openTestDB(t)
		e2, _ := loadCompany(t, db2, 200, 5)
		if err := e2.CreateIndex("id", kind); err != nil {
			t.Fatal(err)
		}
		rows, err := e2.Lookup("id", IntValue(42))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("%v: %d rows", kind, len(rows))
		}
	}
}

func TestAscendRange(t *testing.T) {
	db := openTestDB(t)
	emp, _ := loadCompany(t, db, 50, 5)
	if err := emp.AscendRange("id", IntValue(0), func(Tuple) bool { return true }); err == nil {
		t.Fatal("range scan without index succeeded")
	}
	if err := emp.CreateIndex("id", BTree); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	err := emp.AscendRange("id", IntValue(45), func(tp Tuple) bool {
		ids = append(ids, emp.Schema().Int(tp, 0))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || ids[0] != 45 || ids[4] != 49 {
		t.Fatalf("range ids %v", ids)
	}
}

func TestJoinAllAlgorithmsAgree(t *testing.T) {
	db := openTestDB(t)
	loadCompany(t, db, 300, 7)
	var base int64 = -1
	for _, alg := range []JoinAlgorithm{AutoJoin, NestedLoops, SortMerge, SimpleHash, GraceHash, HybridHash} {
		res, err := db.Join(alg, "emp", "dept", "dept", "id", nil)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if base == -1 {
			base = res.Matches
		}
		if res.Matches != base || res.Matches != 300 {
			t.Fatalf("%v: %d matches, want 300", alg, res.Matches)
		}
	}
	// Auto picks hybrid per §4.
	res, _ := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil)
	if res.Algorithm != HybridHash {
		t.Fatalf("auto chose %v", res.Algorithm)
	}
}

func TestJoinSwapsBuildSide(t *testing.T) {
	db := openTestDB(t)
	loadCompany(t, db, 300, 7)
	// dept is smaller: passing it second must still produce (emp, dept)
	// pairs to the caller in the declared order.
	sawEmpLeft := true
	res, err := db.Join(HybridHash, "emp", "dept", "dept", "id", func(l, r Tuple) {
		if len(l) != empSchema().Width() || len(r) != deptSchema().Width() {
			sawEmpLeft = false
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 300 || !sawEmpLeft {
		t.Fatal("emit order not preserved across build-side swap")
	}
}

func TestAggregateAndDistinct(t *testing.T) {
	db := openTestDB(t)
	loadCompany(t, db, 100, 4)
	groups, err := db.Aggregate("emp", "dept", "salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("%d groups", len(groups))
	}
	var total int64
	for _, g := range groups {
		total += g.Count
		if g.Value(Avg) < 1000 || g.Value(Avg) > 1500 {
			t.Fatalf("suspicious avg %f", g.Value(Avg))
		}
	}
	if total != 100 {
		t.Fatalf("group counts sum to %d", total)
	}
	distinct, err := db.Distinct("emp", "dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(distinct) != 4 {
		t.Fatalf("%d distinct depts", len(distinct))
	}
}

func TestPlanAndExecute(t *testing.T) {
	db := MustOpen(Options{PageSize: 512, MemoryPages: 64})
	loadCompany(t, db, 400, 8)
	q := Query{
		Tables: []QueryTable{
			{Relation: "emp"},
			{Relation: "dept"},
		},
		Joins: []QueryJoin{{LeftTable: 0, LeftCol: "dept", RightTable: 1, RightCol: "id"}},
	}
	full, err := db.Plan(q, FullSelinger)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := db.Plan(q, HashOnly)
	if err != nil {
		t.Fatal(err)
	}
	if hash.PlansConsidered >= full.PlansConsidered {
		t.Fatalf("no search reduction: %d vs %d", hash.PlansConsidered, full.PlansConsidered)
	}
	res, err := hash.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() != 400 {
		t.Fatalf("plan produced %d rows, want 400", res.NumTuples())
	}
}

func TestPlanWithFilter(t *testing.T) {
	db := MustOpen(Options{PageSize: 512, MemoryPages: 64})
	emp, _ := loadCompany(t, db, 400, 8)
	sc := emp.Schema()
	q := Query{
		Tables: []QueryTable{
			{Relation: "emp", Selectivity: 0.125, Filter: func(tp Tuple) bool {
				return sc.Int(tp, 1) == 3 // one department
			}},
			{Relation: "dept"},
		},
		Joins: []QueryJoin{{LeftTable: 0, LeftCol: "dept", RightTable: 1, RightCol: "id"}},
	}
	plan, err := db.Plan(q, HashOnly)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() != 50 {
		t.Fatalf("filtered join produced %d rows, want 50", res.NumTuples())
	}
}

func TestRecoverySimFacade(t *testing.T) {
	sim, err := NewRecoverySim(RecoveryConfig{
		Accounts:  1000,
		Terminals: 20,
		Policy:    GroupCommit,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := sim.Run(2_000_000_000) // 2 s of virtual time
	if stats.TPS < 400 {
		t.Fatalf("group commit TPS %.1f unexpectedly low", stats.TPS)
	}
	committed, info, err := sim.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if committed == 0 || info.Redone == 0 {
		t.Fatalf("recovery saw nothing: %+v", info)
	}
	if int64(committed) < stats.Committed {
		t.Fatalf("recovery found %d commits, engine acked %d", committed, stats.Committed)
	}
}

func TestOrderByStreamsSorted(t *testing.T) {
	db := MustOpen(Options{PageSize: 512, MemoryPages: 4}) // tiny: forces run files
	rel, err := db.CreateRelation("n", MustSchema(
		Field{Name: "x", Kind: Int64},
		Field{Name: "pad", Kind: String, Size: 24},
	))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		rel.Insert(IntValue(int64((i*7919)%n)), StringValue("p"))
	}
	rel.Flush()
	db.ResetClock()
	var got []int64
	err = db.OrderBy("n", "x", func(tp Tuple) bool {
		got = append(got, rel.Schema().Int(tp, 0))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("streamed %d of %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %d < %d", i, got[i], got[i-1])
		}
	}
	if db.Counters().SeqIOs == 0 {
		t.Fatal("external sort charged no run IO at 4 memory pages")
	}
	if err := db.OrderBy("n", "nope", func(Tuple) bool { return true }); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestPredicatesAndSelect(t *testing.T) {
	db := openTestDB(t)
	emp, _ := loadCompany(t, db, 200, 8)

	rich, err := db.Where("emp", "salary", Ge, IntValue(1100))
	if err != nil {
		t.Fatal(err)
	}
	inDept, err := db.Where("emp", "dept", Eq, IntValue(3))
	if err != nil {
		t.Fatal(err)
	}
	p := rich.And(inDept)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}

	// Oracle by scan.
	want := 0
	emp.Scan(func(tp Tuple) bool {
		if emp.Schema().Int(tp, 2) >= 1100 && emp.Schema().Int(tp, 1) == 3 {
			want++
		}
		return true
	})
	got := 0
	if err := emp.Select(p, func(Tuple) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want || want == 0 {
		t.Fatalf("select matched %d, oracle %d", got, want)
	}

	// Negation covers the complement.
	not := 0
	emp.Select(p.Not(), func(Tuple) bool { not++; return true })
	if got+not != 200 {
		t.Fatalf("p + !p covered %d of 200", got+not)
	}

	// Cross-relation combination is an error.
	other, _ := db.Where("dept", "id", Eq, IntValue(1))
	if bad := rich.And(other); bad.Err() == nil {
		t.Fatal("cross-relation AND accepted")
	}
	if err := emp.Select(other, func(Tuple) bool { return true }); err == nil {
		t.Fatal("foreign predicate accepted by Select")
	}
}

func TestHistogramSelectivityDrivesPlanning(t *testing.T) {
	db := MustOpen(Options{PageSize: 512, MemoryPages: 64})
	loadCompany(t, db, 400, 8)
	if err := db.BuildHistogram("emp", "salary", 16); err != nil {
		t.Fatal(err)
	}
	// Salaries are 1000 + i%500: uniform over [1000,1500).
	p := db.MustWhere("emp", "salary", Ge, IntValue(1300))
	sel := p.EstimatedSelectivity()
	if sel < 0.15 || sel > 0.35 {
		t.Fatalf("estimated selectivity %.3f, true ≈ 0.25", sel)
	}
	// Without a histogram the System R default (1/3) applies.
	q := db.MustWhere("emp", "dept", Eq, IntValue(1))
	if s := q.EstimatedSelectivity(); s != 0.1 {
		t.Fatalf("default Eq selectivity %.3f", s)
	}

	// The planner consumes the structured predicate end to end.
	plan, err := db.Plan(Query{
		Tables: []QueryTable{
			{Relation: "emp", Where: p},
			{Relation: "dept"},
		},
		Joins: []QueryJoin{{LeftTable: 0, LeftCol: "dept", RightTable: 1, RightCol: "id"}},
	}, HashOnly)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	emp, _ := db.Relation("emp")
	emp.Scan(func(tp Tuple) bool {
		if emp.Schema().Int(tp, 2) >= 1300 {
			want++
		}
		return true
	})
	if res.NumTuples() != want {
		t.Fatalf("planned+filtered join produced %d rows, want %d", res.NumTuples(), want)
	}
}

func TestDeleteAndUpdateMaintainIndexes(t *testing.T) {
	db := openTestDB(t)
	emp, _ := loadCompany(t, db, 120, 6)
	if err := emp.CreateIndex("id", BTree); err != nil {
		t.Fatal(err)
	}
	if err := emp.CreateIndex("dept", AVL); err != nil {
		t.Fatal(err)
	}

	// Delete one department (20 rows).
	removed, err := emp.Delete("dept", IntValue(3))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 20 || emp.NumTuples() != 100 {
		t.Fatalf("removed %d, left %d", removed, emp.NumTuples())
	}
	if rows, _ := emp.Lookup("dept", IntValue(3)); len(rows) != 0 {
		t.Fatalf("index still finds %d deleted rows", len(rows))
	}
	if rows, _ := emp.Lookup("id", IntValue(4)); len(rows) != 1 { // id 4 is in dept 4
		t.Fatalf("unrelated index entry lost: %d rows", len(rows))
	}

	// Update a row's salary and verify via both scan and index.
	changed, err := emp.Update("id", IntValue(7), "salary", IntValue(99999))
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("changed %d", changed)
	}
	rows, err := emp.Lookup("id", IntValue(7))
	if err != nil || len(rows) != 1 {
		t.Fatalf("lookup after update: %v %d", err, len(rows))
	}
	if got := emp.Schema().Int(rows[0], 2); got != 99999 {
		t.Fatalf("salary %d after update", got)
	}

	// Missing columns rejected.
	if _, err := emp.Delete("nope", IntValue(1)); err == nil {
		t.Fatal("bad delete column accepted")
	}
	if _, err := emp.Update("id", IntValue(1), "nope", IntValue(1)); err == nil {
		t.Fatal("bad update column accepted")
	}
}

func TestRecoverySimVersionedReaders(t *testing.T) {
	mk := func(versioning bool) RecoveryStats {
		sim, err := NewRecoverySim(RecoveryConfig{
			Accounts:          64,
			Terminals:         20,
			ReadOnlyTerminals: 8,
			ReadAccounts:      64,
			ReadCPU:           2_000_000, // 2ms
			Versioning:        versioning,
			Policy:            GroupCommit,
			Seed:              3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(3_000_000_000) // 3 s virtual
	}
	locked := mk(false)
	versioned := mk(true)
	if locked.ReadTxns == 0 || versioned.ReadTxns == 0 {
		t.Fatalf("readers idle: %d / %d", locked.ReadTxns, versioned.ReadTxns)
	}
	if versioned.TPS <= locked.TPS {
		t.Fatalf("versioning writer TPS %.1f not above locking %.1f", versioned.TPS, locked.TPS)
	}
	if versioned.ReadTPS <= 0 {
		t.Fatalf("ReadTPS %.1f", versioned.ReadTPS)
	}
}

func TestVirtualClockAccounting(t *testing.T) {
	db := openTestDB(t)
	loadCompany(t, db, 300, 7)
	db.ResetClock()
	res, err := db.Join(HybridHash, "emp", "dept", "dept", "id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != db.VirtualTime() {
		t.Fatalf("join elapsed %v but database clock %v", res.Elapsed, db.VirtualTime())
	}
	if res.Counters.Hashes == 0 {
		t.Fatal("hash join charged no hashes")
	}
}
