package mmdb_test

// End-to-end failover exercise over real TCP: one wire server per
// cluster node, sqlclient connections holding both addresses, and a
// planned promotion fired while concurrent writers hammer INSERTs. The
// clients must ride the switchover on their own — catch NOT_PRIMARY,
// follow the hint, retry the never-acked statement — and at the end
// every acknowledged row must exist exactly once on the new primary.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mmdb"
	"mmdb/internal/wire"
	"mmdb/sqlclient"
)

// TestSqlclientFailoverPromoteE2E is the paper's §5 durability contract
// lifted to the client: an acked statement survives the primary being
// demoted mid-workload, with no duplicates from the retry loop.
func TestSqlclientFailoverPromoteE2E(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cluster, err := mmdb.OpenCluster(mmdb.Options{MemoryPages: 128, MaxConcurrentQueries: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Primary().CreateRelation("kv", mmdb.MustSchema(
		mmdb.Field{Name: "k", Kind: mmdb.Int64},
		mmdb.Field{Name: "v", Kind: mmdb.Int64},
	)); err != nil {
		t.Fatal(err)
	}

	srvP := &wire.Server{Cluster: cluster, Node: "p", Name: "node-p"}
	srvR := &wire.Server{Cluster: cluster, Node: "r0", Name: "node-r0"}
	addrP, err := srvP.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrR, err := srvR.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := map[string]string{"p": addrP.String(), "r0": addrR.String()}
	srvP.Peers, srvR.Peers = peers, peers
	go srvP.Serve()
	go srvR.Serve()
	defer srvP.Close()
	defer srvR.Close()
	addrs := []string{addrP.String(), addrR.String()}

	const writers = 4
	const rowsPerWriter = 40
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := sqlclient.DialMulti(ctx, addrs, sqlclient.WithRetries(12))
			if err != nil {
				errCh <- fmt.Errorf("writer %d dial: %w", w, err)
				return
			}
			defer cl.Close()
			for i := 0; i < rowsPerWriter; i++ {
				k := w*rowsPerWriter + i + 1
				if _, err := cl.Query(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", k, w)); err != nil {
					errCh <- fmt.Errorf("writer %d row %d: %w", w, k, err)
					return
				}
			}
		}(w)
	}

	// Spring the promotion once the workload is genuinely in flight.
	for cluster.LSN() < writers*rowsPerWriter/4 {
		select {
		case <-ctx.Done():
			t.Fatal("workload never reached the promotion trigger")
		case <-time.After(100 * time.Microsecond):
		}
	}
	if err := cluster.Promote(ctx, 0); err != nil {
		t.Fatalf("promote: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every acked row is on the new primary, exactly once — the retry
	// loop must not have replayed an acknowledged statement.
	if got := cluster.PrimaryName(); got != "r0" {
		t.Fatalf("primary %q after promotion, want r0", got)
	}
	rel, err := cluster.Primary().Relation("kv")
	if err != nil {
		t.Fatal(err)
	}
	if n := rel.NumTuples(); n != writers*rowsPerWriter {
		t.Fatalf("new primary has %d rows, want %d (lost or duplicated acked writes)", n, writers*rowsPerWriter)
	}
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}

	// A fresh client pointed only at the demoted node follows the
	// NOT_PRIMARY hint to the new primary and lands its write there.
	cl, err := sqlclient.DialMulti(ctx, []string{addrP.String()}, sqlclient.WithRetries(12))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Role() != wire.RoleReplica {
		t.Fatalf("demoted node reported role %d, want replica", cl.Role())
	}
	if _, err := cl.Query("INSERT INTO kv VALUES (9001, 9)"); err != nil {
		t.Fatalf("write via demoted node never reached the primary: %v", err)
	}
	res, err := cl.Query("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("count returned %d rows", len(res.Rows))
	}
}
