package mmdb

// Public-API determinism for the parallel sort: OrderBy and sort-merge
// Join through the Database façade must produce bit-identical virtual
// counters, sort telemetry, and output order at Parallelism 1, 2 and 8
// when the SortChunks plan is pinned. This is the -race exercise for the
// chunked formation workers, the merge-tree pumps, and the session clock
// folding.

import (
	"fmt"
	"testing"
)

func loadSortTestDB(t *testing.T, chunks, parallelism int) *Database {
	t.Helper()
	db, err := Open(Options{
		PageSize:    512,
		MemoryPages: 16,
		Parallelism: parallelism,
		SortChunks:  chunks,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := db.CreateRelation("events", MustSchema(
		Field{Name: "key", Kind: Int64},
		Field{Name: "seq", Kind: Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(99)
	for i := 0; i < 4000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		if err := events.Insert(IntValue(int64(state%8000)), IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := events.Flush(); err != nil {
		t.Fatal(err)
	}
	ref, err := db.CreateRelation("ref", MustSchema(
		Field{Name: "key", Kind: Int64},
		Field{Name: "tag", Kind: Int64},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := ref.Insert(IntValue(int64(i*17%8000)), IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	return db
}

type sortRun struct {
	order    string
	counters Counters
	join     JoinResult
	sorts    uint64
	runs     uint64
	passes   uint64
}

func runSortAPI(t *testing.T, chunks, parallelism int) sortRun {
	t.Helper()
	db := loadSortTestDB(t, chunks, parallelism)
	before := db.Counters()
	var order []byte
	schema := MustSchema(Field{Name: "key", Kind: Int64}, Field{Name: "seq", Kind: Int64})
	err := db.OrderBy("events", "key", func(tp Tuple) bool {
		order = fmt.Appendf(order, "%d,", schema.Int(tp, 0))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := db.Join(SortMerge, "ref", "events", "key", "key", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := db.SessionMetrics()
	return sortRun{
		order:    string(order),
		counters: db.Counters().Sub(before),
		join:     jr,
		sorts:    m.Sorts,
		runs:     m.SortRuns,
		passes:   m.SortMergePasses,
	}
}

func TestSortParallelismDeterministicViaPublicAPI(t *testing.T) {
	for _, chunks := range []int{1, 8} {
		t.Run(fmt.Sprintf("chunks=%d", chunks), func(t *testing.T) {
			want := runSortAPI(t, chunks, 1)
			if want.sorts != 3 {
				t.Fatalf("expected 3 recorded sorts (OrderBy + two join inputs), got %d", want.sorts)
			}
			if want.join.SortR.Runs == 0 || want.join.SortS.Runs == 0 {
				t.Fatalf("join result lacks sort stats: %+v", want.join)
			}
			for _, width := range []int{2, 8} {
				got := runSortAPI(t, chunks, width)
				if got.counters != want.counters {
					t.Errorf("width %d: counters diverge:\n  got  %v\n  want %v", width, got.counters, want.counters)
				}
				if got.order != want.order {
					t.Errorf("width %d: OrderBy output order diverges", width)
				}
				if got.join != want.join {
					t.Errorf("width %d: JoinResult diverges:\n  got  %+v\n  want %+v", width, got.join, want.join)
				}
				if got.sorts != want.sorts || got.runs != want.runs || got.passes != want.passes {
					t.Errorf("width %d: sort telemetry diverges: got %d/%d/%d want %d/%d/%d",
						width, got.sorts, got.runs, got.passes, want.sorts, want.runs, want.passes)
				}
			}
		})
	}
}

// TestOrderByEarlyStopReleasesRuns stops the OrderBy callback after a few
// rows: the deferred stream Close must still release every temporary run
// file (and, for chunked plans, charge the remaining merge reads), so a
// second full OrderBy still sees only the base relations on disk and
// agrees with the first run's prefix.
func TestOrderByEarlyStopReleasesRuns(t *testing.T) {
	for _, chunks := range []int{1, 8} {
		db := loadSortTestDB(t, chunks, 4)
		schema := MustSchema(Field{Name: "key", Kind: Int64}, Field{Name: "seq", Kind: Int64})
		var prefix []int64
		err := db.OrderBy("events", "key", func(tp Tuple) bool {
			prefix = append(prefix, schema.Int(tp, 0))
			return len(prefix) < 10
		})
		if err != nil {
			t.Fatal(err)
		}
		var full []int64
		err = db.OrderBy("events", "key", func(tp Tuple) bool {
			full = append(full, schema.Int(tp, 0))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != 4000 {
			t.Fatalf("chunks=%d: second OrderBy saw %d rows, want 4000", chunks, len(full))
		}
		for i, k := range prefix {
			if full[i] != k {
				t.Fatalf("chunks=%d: prefix diverges at %d", chunks, i)
			}
		}
	}
}
