package mmdb

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func pairSchema() *Schema {
	return MustSchema(
		Field{Name: "k", Kind: Int64},
		Field{Name: "pad", Kind: String, Size: 16},
	)
}

// loadPair loads two equally sized relations r and s whose keys collide
// 5x5 per value: n tuples each over n/5 distinct keys.
func loadPair(t *testing.T, db *Database, n int) {
	t.Helper()
	for _, name := range []string{"r", "s"} {
		rel, err := db.CreateRelation(name, pairSchema())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := rel.Insert(IntValue(int64(i%(n/5))), StringValue(fmt.Sprintf("%s%04d", name, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := rel.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// joinPairs runs the join on a session collecting the emitted pair
// multiset.
func joinPairs(t *testing.T, s *Session, alg JoinAlgorithm) (map[string]int, JoinResult, error) {
	t.Helper()
	got := map[string]int{}
	res, err := s.Join(alg, "r", "s", "k", "k", func(l, r Tuple) {
		got[fmt.Sprintf("%x|%x", []byte(l), []byte(r))]++
	})
	return got, res, err
}

func samePairs(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestShedMemoryDegradesJoin revokes most of a session's memory grant
// while a hybrid hash join is probing (from inside the emit callback, so
// the timing is deterministic) and asserts the join degrades to the GRACE
// spill fallback with a bit-identical result.
func TestShedMemoryDegradesJoin(t *testing.T) {
	db, err := Open(Options{PageSize: 512, MemoryPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	loadPair(t, db, 500)

	base, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, wres, err := joinPairs(t, base, HybridHash)
	base.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wres.Degraded {
		t.Fatal("baseline run reported degradation")
	}

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if g := s.GrantedPages(); g != 64 {
		t.Fatalf("granted %d pages, want 64", g)
	}
	got := map[string]int{}
	shed := false
	res, err := s.Join(HybridHash, "r", "s", "k", "k", func(l, r Tuple) {
		got[fmt.Sprintf("%x|%x", []byte(l), []byte(r))]++
		if !shed {
			shed = true
			if n := s.ShedMemory(1000); n != 62 {
				t.Errorf("shed %d pages, want 62 (down to the 2-page floor)", n)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("revoked grant did not degrade the join")
	}
	if res.Matches != wres.Matches || !samePairs(got, want) {
		t.Fatalf("degraded join diverged: %d matches, want %d", res.Matches, wres.Matches)
	}
	if g := s.GrantedPages(); g != MinGrantPages {
		t.Fatalf("post-shed grant %d, want %d", g, MinGrantPages)
	}
	s.Close()
	if g := db.SessionMetrics().GrantedPages; g != 0 {
		t.Fatalf("broker still holds %d granted pages after Close", g)
	}
}

// TestWithRetrySurvivesTransientFaults arms a one-shot transient burst
// long enough to kill two whole query attempts and asserts a WithRetry
// session absorbs them: the third attempt succeeds with the exact
// fault-free result, and no pairs from the failed attempts leak out.
func TestWithRetrySurvivesTransientFaults(t *testing.T) {
	db, err := Open(Options{PageSize: 512, MemoryPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	loadPair(t, db, 500)

	base, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, wres, err := joinPairs(t, base, GraceHash)
	base.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Burst 12 at the 10th charged IO: the write path's bounded retry (5
	// attempts per page) exhausts twice — two query attempts die — and the
	// third attempt absorbs the 2-fault remainder.
	inj := NewFaultInjector(3).TransientAt("", 10, 12)
	db.ArmFaults(inj)
	defer db.ArmFaults(nil)

	s, err := db.NewSession(context.Background(), WithRetry(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, res, err := joinPairs(t, s, GraceHash)
	if err != nil {
		t.Fatalf("retried query failed: %v", err)
	}
	if res.Matches != wres.Matches || !samePairs(got, want) {
		t.Fatalf("retried join diverged: %d matches, want %d", res.Matches, wres.Matches)
	}
	if tr := inj.Stats().Transient; tr != 12 {
		t.Fatalf("injected %d transients, want the whole burst of 12", tr)
	}
}

// TestWithoutRetryTransientFaultSurfaces is the control: the same burst
// kills a session without WithRetry, and the error carries the full
// taxonomy.
func TestWithoutRetryTransientFaultSurfaces(t *testing.T) {
	db, err := Open(Options{PageSize: 512, MemoryPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	loadPair(t, db, 500)
	db.ArmFaults(NewFaultInjector(3).TransientAt("", 10, 12))
	defer db.ArmFaults(nil)

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, _, err = joinPairs(t, s, GraceHash)
	if err == nil {
		t.Fatal("transient burst was swallowed without WithRetry")
	}
	if !errors.Is(err, ErrFaultTransient) || !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("error lost its taxonomy: %v", err)
	}
}

// TestRetryDoesNotMaskPermanentFaults verifies WithRetry gives up
// immediately on a permanent failure, and that disarming restores the
// database.
func TestRetryDoesNotMaskPermanentFaults(t *testing.T) {
	db, err := Open(Options{PageSize: 512, MemoryPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	loadPair(t, db, 500)

	inj := NewFaultInjector(5).PermanentAfter("", 10)
	db.ArmFaults(inj)
	s, err := db.NewSession(context.Background(), WithRetry(8))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = joinPairs(t, s, GraceHash)
	s.Close()
	if !errors.Is(err, ErrFaultPermanent) {
		t.Fatalf("want a permanent fault, got %v", err)
	}
	// A single failing attempt injects exactly one permanent verdict per
	// IO past the threshold; a retry storm would multiply them. Allow the
	// one attempt's worth and no more.
	if perm := inj.Stats().Permanent; perm != 1 {
		t.Fatalf("permanent fault consulted %d times: WithRetry retried a dead device", perm)
	}

	db.ArmFaults(nil)
	s2, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, err := joinPairs(t, s2, GraceHash); err != nil {
		t.Fatalf("disarmed database still failing: %v", err)
	}
}
