package mmdb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func openConcurrentDB(t *testing.T, slots, queue int) *Database {
	t.Helper()
	db, err := Open(Options{
		PageSize:             512,
		MemoryPages:          64,
		MaxConcurrentQueries: slots,
		QueueDepth:           queue,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestConcurrentQueries runs many identical queries from parallel
// goroutines. On the pre-session engine this was a data race (shared heap
// cursors, one global clock); under -race it now must pass cleanly with
// every query seeing the same result.
func TestConcurrentQueries(t *testing.T) {
	db := openConcurrentDB(t, 4, 64)
	loadCompany(t, db, 600, 12)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	matches := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := db.Join(HybridHash, "emp", "dept", "dept", "id", nil)
			errs[i] = err
			matches[i] = res.Matches
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if matches[i] != 600 {
			t.Fatalf("query %d: %d matches, want 600", i, matches[i])
		}
	}
	m := db.SessionMetrics()
	if m.Completed != n {
		t.Fatalf("completed %d sessions, want %d", m.Completed, n)
	}
}

// TestConcurrentMixedOperators interleaves joins, aggregates, sorts and
// point lookups across goroutines — the full façade under -race.
func TestConcurrentMixedOperators(t *testing.T) {
	db := openConcurrentDB(t, 4, 64)
	emp, _ := loadCompany(t, db, 400, 8)
	if err := emp.CreateIndex("id", BTree); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	run := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		run(func() error {
			_, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil)
			return err
		})
		run(func() error {
			groups, err := db.Aggregate("emp", "dept", "salary")
			if err == nil && len(groups) != 8 {
				return errors.New("wrong group count")
			}
			return err
		})
		run(func() error {
			rows := 0
			err := db.OrderBy("emp", "salary", func(Tuple) bool { rows++; return true })
			if err == nil && rows != 400 {
				return errors.New("wrong sorted row count")
			}
			return err
		})
		run(func() error {
			out, err := emp.Lookup("id", IntValue(7))
			if err == nil && len(out) != 1 {
				return errors.New("lookup miss")
			}
			return err
		})
	}
	wg.Wait()
}

// TestConcurrentCountersMatchSerial is the determinism acceptance check:
// with the static memory policy, N identical queries produce bit-identical
// per-query virtual-clock results whether they run one at a time or all at
// once, and the global clock totals agree too.
func TestConcurrentCountersMatchSerial(t *testing.T) {
	open := func() *Database {
		db := openConcurrentDB(t, 4, 64)
		loadCompany(t, db, 500, 10)
		return db
	}
	query := func(db *Database) (JoinResult, error) {
		return db.Join(HybridHash, "emp", "dept", "dept", "id", nil)
	}

	serial := open()
	serial.ResetClock()
	var want JoinResult
	const n = 4
	for i := 0; i < n; i++ {
		res, err := query(serial)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
		} else if res != want {
			t.Fatalf("serial run %d diverged: %+v vs %+v", i, res, want)
		}
	}

	conc := open()
	conc.ResetClock()
	var wg sync.WaitGroup
	results := make([]JoinResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = query(conc)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != want {
			t.Fatalf("concurrent run %d: %+v, want %+v", i, results[i], want)
		}
	}
	if got, want := conc.Counters(), serial.Counters(); got != want {
		t.Fatalf("global counters diverged: %+v vs %+v", got, want)
	}
	if got, want := conc.VirtualTime(), serial.VirtualTime(); got != want {
		t.Fatalf("global virtual time diverged: %v vs %v", got, want)
	}
}

// TestSessionBrokerNeverOverGrants floods the scheduler and asserts the
// broker's invariant: simultaneous grants never exceed MemoryPages, and
// everything is returned when the queries drain.
func TestSessionBrokerNeverOverGrants(t *testing.T) {
	db := openConcurrentDB(t, 4, 64)
	loadCompany(t, db, 300, 6)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	m := db.SessionMetrics()
	if m.PeakGrantedPages > m.MemoryPages {
		t.Fatalf("broker over-granted: peak %d > |M| %d", m.PeakGrantedPages, m.MemoryPages)
	}
	if m.GrantedPages != 0 {
		t.Fatalf("%d pages still out on grant after drain", m.GrantedPages)
	}
	if m.Grants < 16 {
		t.Fatalf("only %d grants recorded", m.Grants)
	}
}

// TestSessionOverloaded verifies backpressure: with one slot and no queue,
// a second arrival is rejected with ErrOverloaded rather than blocking.
func TestSessionOverloaded(t *testing.T) {
	db := openConcurrentDB(t, 1, -1)
	loadCompany(t, db, 100, 4)

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewSession(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second session: err=%v, want ErrOverloaded", err)
	}
	if _, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query during held slot: err=%v, want ErrOverloaded", err)
	}
	s.Close()
	if _, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
	if m := db.SessionMetrics(); m.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", m.Rejected)
	}
}

// TestSessionQueueDeadline verifies a queued query abandons its wait when
// its context deadline fires.
func TestSessionQueueDeadline(t *testing.T) {
	db := openConcurrentDB(t, 1, 8)
	loadCompany(t, db, 100, 4)

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := db.JoinContext(ctx, AutoJoin, "emp", "dept", "dept", "id", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query: err=%v, want DeadlineExceeded", err)
	}
}

// TestSessionQueryTimeout verifies the Options-level deadline applies when
// the caller's context has none.
func TestSessionQueryTimeout(t *testing.T) {
	db, err := Open(Options{
		PageSize:             512,
		MemoryPages:          64,
		MaxConcurrentQueries: 1,
		QueryTimeout:         20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadCompany(t, db, 100, 4)

	s, err := db.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out query: err=%v, want DeadlineExceeded", err)
	}
}

// TestConcurrentWritersAndReaders races loads against queries: the
// relation-level S/X intents must serialize them without deadlock and
// every query must observe a consistent (fully loaded or fully absent)
// batch.
func TestConcurrentWritersAndReaders(t *testing.T) {
	db := openConcurrentDB(t, 4, 64)
	emp, dept := loadCompany(t, db, 200, 5)
	_ = dept

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := int64(10000 + w*100 + i)
				err := emp.Insert(IntValue(id), IntValue(id%5), IntValue(1234), StringValue("late"))
				if err != nil {
					t.Error(err)
					return
				}
			}
			if err := emp.Flush(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Matches < 200 {
					t.Errorf("join saw %d matches, want >= 200", res.Matches)
					return
				}
			}
		}()
	}
	wg.Wait()

	res, err := db.Join(AutoJoin, "emp", "dept", "dept", "id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 240 {
		t.Fatalf("final join matches %d, want 240", res.Matches)
	}
}

// TestConcurrentPlansExecute plans and executes multi-way joins from
// parallel sessions, including materializing results.
func TestConcurrentPlansExecute(t *testing.T) {
	db := openConcurrentDB(t, 4, 64)
	loadCompany(t, db, 300, 6)

	q := Query{
		Tables: []QueryTable{{Relation: "emp"}, {Relation: "dept"}},
		Joins:  []QueryJoin{{LeftTable: 0, LeftCol: "dept", RightTable: 1, RightCol: "id"}},
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := db.NewSession(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			plan, err := s.Plan(q, HashOnly)
			if err != nil {
				t.Error(err)
				return
			}
			out, err := plan.Execute()
			if err != nil {
				t.Error(err)
				return
			}
			if out.NumTuples() != 300 {
				t.Errorf("plan produced %d tuples, want 300", out.NumTuples())
			}
		}()
	}
	wg.Wait()
}
