package mmdb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// failoverCtx is the generous deadline the switchover tests run under.
func failoverCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// runClusterWriters inserts rows total rows (strided across width
// goroutines) into relation name, retrying any NOT_PRIMARY refusal
// against the cluster's then-current primary. A refused write was never
// acknowledged, so retrying it cannot duplicate.
func runClusterWriters(t *testing.T, c *Cluster, name string, rows, width int) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, width)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w + 1; id <= rows; id += width {
				for attempt := 0; ; attempt++ {
					db := c.Primary()
					rel, err := db.Relation(name)
					if err == nil {
						err = rel.Insert(IntValue(int64(id)), IntValue(int64(id*3)))
					}
					if err == nil {
						break
					}
					if !errors.Is(err, ErrNotPrimary) {
						errCh <- fmt.Errorf("writer %d id %d: %w", w, id, err)
						return
					}
					if attempt > 100000 {
						errCh <- fmt.Errorf("writer %d id %d: still refused after %d attempts", w, id, attempt)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// waitBroken polls until every replica link has severed.
func waitBroken(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := c.Metrics()
		broken := 0
		for _, r := range m.Replicas {
			if r.Broken {
				broken++
			}
		}
		if broken == len(m.Replicas) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("links never severed (%d/%d broken)", broken, len(m.Replicas))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestPromoteSwitchoverZeroLoss drives concurrent writers through a
// planned promotion: every acknowledged insert must be on the new
// primary, the old primary must refuse writes with a typed, epoch-
// stamped NOT_PRIMARY error, and the whole cluster must verify
// byte-identical after catch-up.
func TestPromoteSwitchoverZeroLoss(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{MaxConcurrentQueries: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oldPrimary := c.Primary()
	if _, err := oldPrimary.CreateRelation("wtest", MustSchema(
		Field{Name: "id", Kind: Int64}, Field{Name: "v", Kind: Int64})); err != nil {
		t.Fatal(err)
	}

	const rows = 300
	promoted := make(chan error, 1)
	go func() {
		for c.LSN() < rows/4 {
			time.Sleep(100 * time.Microsecond)
		}
		promoted <- c.Promote(ctx, 0)
	}()
	runClusterWriters(t, c, "wtest", rows, 3)
	if err := <-promoted; err != nil {
		t.Fatalf("promote: %v", err)
	}

	if got := c.PrimaryName(); got != "r0" {
		t.Fatalf("primary is %q after promote, want r0", got)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("epoch %d after promote, want 2", got)
	}
	if m := c.Metrics(); m.Promotions != 1 {
		t.Fatalf("promotions metric %d, want 1", m.Promotions)
	}

	// Zero loss: every acked row is on the new primary.
	rel, err := c.Primary().Relation("wtest")
	if err != nil {
		t.Fatal(err)
	}
	if n := rel.NumTuples(); n != rows {
		t.Fatalf("new primary has %d rows, want %d", n, rows)
	}
	// The demoted primary is fenced: a direct write surfaces the typed
	// error with the new epoch and a hint naming the new primary.
	orel, err := oldPrimary.Relation("wtest")
	if err != nil {
		t.Fatal(err)
	}
	err = orel.Insert(IntValue(9999), IntValue(0))
	var np *NotPrimaryError
	if !errors.As(err, &np) {
		t.Fatalf("write on demoted primary: %v, want *NotPrimaryError", err)
	}
	if np.Epoch != 2 || np.Hint != "r0" {
		t.Fatalf("NotPrimaryError{Epoch: %d, Hint: %q}, want epoch 2 hint r0", np.Epoch, np.Hint)
	}
	if !errors.Is(err, ErrNotPrimary) || !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatal("NotPrimaryError lost its errors.Is taxonomy")
	}

	// The old primary rejoined as a replica and catches up.
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteAbortLiftsFence: a promotion to a replica that cannot catch
// up in time fails — and the fence must lift, leaving the cluster fully
// writable under the old primary. Disarming the stall then lets the same
// promotion succeed.
func TestPromoteAbortLiftsFence(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ArmShipFaults(NewFaultInjector(11).StallEvery("repl/ship/r0", 1, 100))
	seedCluster(t, c)

	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Millisecond)
	err = c.Promote(shortCtx, 0)
	cancel()
	if err == nil {
		t.Fatal("promotion to a hard-stalled replica succeeded in 2ms")
	}
	if got := c.PrimaryName(); got != "p" {
		t.Fatalf("failed promotion flipped the primary to %q", got)
	}
	// The fence is lifted: writes work again immediately.
	if _, err := c.Query("INSERT INTO accounts VALUES (7000, 1, 1, 'after')"); err != nil {
		t.Fatalf("write after aborted promotion: %v", err)
	}
	c.ArmShipFaults(nil)
	if err := c.Promote(ctx, 0); err != nil {
		t.Fatalf("promote after disarming stalls: %v", err)
	}
	if got := c.PrimaryName(); got != "r0" {
		t.Fatalf("primary is %q, want r0", got)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteRejectsBadTarget: out-of-range and severed targets refuse
// without disturbing the cluster.
func TestPromoteRejectsBadTarget(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Promote(ctx, 5); err == nil {
		t.Fatal("promotion to a nonexistent replica succeeded")
	}
	c.ArmShipFaults(NewFaultInjector(3).PermanentAfter("repl/ship/r0", 2))
	seedCluster(t, c)
	waitBroken(t, c)
	if err := c.Promote(ctx, 0); err == nil {
		t.Fatal("promotion to a severed replica succeeded")
	}
	if got := c.PrimaryName(); got != "p" {
		t.Fatalf("failed promotions flipped the primary to %q", got)
	}
	if _, err := c.Query("INSERT INTO accounts VALUES (7001, 1, 1, 'still')"); err != nil {
		t.Fatalf("cluster not writable after refused promotions: %v", err)
	}
}

// TestFailoverDrainsLiveSurvivor: crash-driven failover with a lagging
// but live survivor drains the link — expediting past injected stalls —
// and loses nothing; the old primary parks as the down node until
// Rejoin brings it back.
func TestFailoverDrainsLiveSurvivor(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ArmShipFaults(NewFaultInjector(5).StallEvery("repl/ship/r0", 1, 20))
	seedCluster(t, c)

	rep, err := c.Failover(ctx)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if rep.TailRecovered != 0 || rep.TailLost != 0 {
		t.Fatalf("live drain recovered %d / lost %d, want 0/0", rep.TailRecovered, rep.TailLost)
	}
	if rep.SettledLSN != rep.AckedLSN {
		t.Fatalf("drain settled at %d of %d acked", rep.SettledLSN, rep.AckedLSN)
	}
	if rep.NewPrimary != "r0" || rep.OldPrimary != "p" {
		t.Fatalf("report flipped %s -> %s, want p -> r0", rep.OldPrimary, rep.NewPrimary)
	}
	if got := c.DownNode(); got != "p" {
		t.Fatalf("down node %q, want p", got)
	}
	if m := c.Metrics(); m.Failovers != 1 {
		t.Fatalf("failovers metric %d, want 1", m.Failovers)
	}
	// The survivor's data equals what the old primary acknowledged.
	want, err := c.DatabaseOf("p").Query("SELECT SUM(balance), COUNT(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Primary().Query("SELECT SUM(balance), COUNT(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Rows[0]) != string(want.Rows[0]) {
		t.Fatal("survivor's committed state differs from the acked prefix")
	}
	c.ArmShipFaults(nil)
	if err := c.Rejoin(ctx); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := c.DownNode(); got != "" {
		t.Fatalf("down node still %q after rejoin", got)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverReplaysSeveredTail: when every link was severed mid-stream
// the survivor is resurrected from the retained pending tail — the
// in-memory model of the primary's durable WAL — and still loses
// nothing.
func TestFailoverReplaysSeveredTail(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ArmShipFaults(NewFaultInjector(9).PermanentAfter("repl/ship/r0", 5))
	seedCluster(t, c)
	waitBroken(t, c)

	rep, err := c.Failover(ctx)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if rep.TailRecovered == 0 {
		t.Fatal("severed survivor replayed nothing — the rung is vacuous")
	}
	if rep.SettledLSN+rep.TailRecovered != rep.AckedLSN {
		t.Fatalf("settled %d + recovered %d != acked %d", rep.SettledLSN, rep.TailRecovered, rep.AckedLSN)
	}
	// Zero loss via replay: the new primary answers exactly like the old
	// one — which acknowledged everything — does.
	want, err := c.DatabaseOf("p").Query("SELECT SUM(balance), COUNT(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Primary().Query("SELECT SUM(balance), COUNT(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Rows[0]) != string(want.Rows[0]) {
		t.Fatal("tail replay did not reproduce the acked prefix")
	}
	if m := c.Metrics(); m.TailRecovered != rep.TailRecovered {
		t.Fatalf("metrics recovered %d, report %d", m.TailRecovered, rep.TailRecovered)
	}
	c.ArmShipFaults(nil)
	if err := c.Rejoin(ctx); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverLostWALTyped: total primary loss drops the unreplicated
// acked tail — and says so through a typed *LostTailError whose numbers
// agree with the report, while the cluster stays available on the
// survivor's consistent prefix.
func TestFailoverLostWALTyped(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ArmShipFaults(NewFaultInjector(13).PermanentAfter("repl/ship/r0", 5))
	seedCluster(t, c)
	waitBroken(t, c)

	rep, err := c.FailoverLostWAL(ctx)
	var lost *LostTailError
	if !errors.As(err, &lost) {
		t.Fatalf("lost-WAL failover: %v, want *LostTailError", err)
	}
	if lost.Lost() == 0 || lost.Lost() != rep.TailLost {
		t.Fatalf("error admits %d lost, report says %d", lost.Lost(), rep.TailLost)
	}
	if lost.AckedLSN != rep.AckedLSN || lost.SettledLSN != rep.SettledLSN || lost.Epoch != rep.Epoch {
		t.Fatalf("LostTailError %+v disagrees with report %+v", lost, rep)
	}
	if m := c.Metrics(); m.TailLost != rep.TailLost {
		t.Fatalf("metrics lost %d, report %d", m.TailLost, rep.TailLost)
	}
	// The survivor kept only the settled prefix.
	rel, err := c.Primary().Relation("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if n := rel.NumTuples(); uint64(n) > rep.SettledLSN {
		t.Fatalf("new primary has %d rows, more than the %d settled ops", n, rep.SettledLSN)
	}
	// The cluster is live in the new epoch: writes land, the rejoined
	// old primary is scrubbed down to the surviving history, and
	// everything verifies.
	c.ArmShipFaults(nil)
	if _, err := c.Query("INSERT INTO accounts VALUES (8000, 1, 5, 'epoch2')"); err != nil {
		t.Fatalf("write after lost-WAL failover: %v", err)
	}
	if err := c.Rejoin(ctx); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestRejoinRePromoteCycle: promote away and promote back. Two full
// switchovers, epoch 3, everything byte-identical — the roles really are
// symmetric.
func TestRejoinRePromoteCycle(t *testing.T) {
	ctx := failoverCtx(t)
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c)
	if err := c.Promote(ctx, 0); err != nil {
		t.Fatalf("promote to r0: %v", err)
	}
	// Write in epoch 2 so the second flip has new history to barrier on.
	if _, err := c.Query("INSERT INTO accounts VALUES (7100, 2, 3, 'ep2')"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, c)
	if err := c.Promote(ctx, 0); err != nil {
		t.Fatalf("promote back to p: %v", err)
	}
	if got := c.PrimaryName(); got != "p" {
		t.Fatalf("primary %q after the round trip, want p", got)
	}
	if got := c.Epoch(); got != 3 {
		t.Fatalf("epoch %d after two promotions, want 3", got)
	}
	if _, err := c.Query("INSERT INTO accounts VALUES (7101, 2, 3, 'ep3')"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCloseStalledLinkNoGoroutineLeak: Close must reap the
// applier goroutines even while one sits in an injected multi-second
// stall — the shutdown channel interrupts the sleep.
func TestClusterCloseStalledLinkNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	c, err := OpenCluster(Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 stall units = a full second per delivery: without the
	// interrupt, draining the seeded ops would take minutes.
	c.ArmShipFaults(NewFaultInjector(21).StallEvery("repl/ship", 1, 5000))
	seedCluster(t, c)
	c.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRoutingFallbacks covers the replica-picker edge cases: a cluster
// with no replicas, a severed replica, and a mid-rejoin replica must all
// degrade to the primary — counted in ClusterMetrics.Fallbacks — and
// never route a read to a node that cannot serve a consistent answer.
func TestRoutingFallbacks(t *testing.T) {
	ctx := failoverCtx(t)

	// No replicas at all: every preference degrades to the primary.
	c0, err := OpenCluster(Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db := c0.Route(NearestReplica()); db != c0.Primary() {
		t.Fatal("zero-replica cluster routed away from the primary")
	}
	if db := c0.Route(BoundedStaleness(0)); db != c0.Primary() {
		t.Fatal("zero-replica cluster routed a bounded read away from the primary")
	}
	if m := c0.Metrics(); m.Fallbacks < 2 {
		t.Fatalf("fallbacks %d, want >= 2", m.Fallbacks)
	}
	c0.Close()

	// A severed replica is skipped by both pickers.
	c, err := OpenCluster(Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ArmShipFaults(NewFaultInjector(31).PermanentAfter("repl/ship/r0", 3))
	seedCluster(t, c)
	waitBroken(t, c)
	base := c.Metrics().Fallbacks
	if db := c.Route(NearestReplica()); db != c.Primary() {
		t.Fatal("routed to a severed replica")
	}
	if db := c.Route(BoundedStaleness(1 << 60)); db != c.Primary() {
		t.Fatal("bounded read routed to a severed replica")
	}
	if got := c.Metrics().Fallbacks; got != base+2 {
		t.Fatalf("fallbacks went %d -> %d, want +2", base, got)
	}

	// Mid-rejoin: while the old primary rebuilds, it sits in the replica
	// set flagged joining — reads must keep falling back to the primary
	// until the catch-up completes.
	if _, err := c.Failover(ctx); err != nil {
		t.Fatalf("failover: %v", err)
	}
	c.ArmShipFaults(NewFaultInjector(32).StallEvery("repl/ship/p", 1, 25))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, err := c.Primary().Relation("accounts")
		if err != nil {
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rel.Insert(IntValue(int64(20000+i)), IntValue(1), IntValue(1), StringValue("ep2"))
			time.Sleep(time.Millisecond)
		}
	}()
	rejoined := make(chan error, 1)
	go func() { rejoined <- c.Rejoin(ctx) }()
	sawJoining := false
	for !sawJoining {
		m := c.Metrics()
		for _, r := range m.Replicas {
			if r.Name == "p" && r.Joining {
				sawJoining = true
			}
		}
		select {
		case err := <-rejoined:
			// Rejoin finished before we caught it in the joining state;
			// the routing assertion below still holds trivially.
			if err != nil {
				t.Fatalf("rejoin: %v", err)
			}
			rejoined <- nil
			sawJoining = true
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	if db := c.Route(NearestReplica()); db == c.DatabaseOf("p") && c.DownNode() == "" {
		m := c.Metrics()
		for _, r := range m.Replicas {
			if r.Name == "p" && r.Joining {
				t.Fatal("routed a read to a mid-rejoin replica")
			}
		}
	}
	close(stop)
	wg.Wait()
	c.ArmShipFaults(nil)
	if err := <-rejoined; err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	waitCaughtUp(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}
