// Quickstart: create a database, load a relation, index it both ways
// (§2's AVL and B+-tree), run lookups, a join, and an aggregate, and read
// the virtual-clock cost accounting.
package main

import (
	"fmt"
	"log"

	"mmdb"
)

func main() {
	db := mmdb.MustOpen(mmdb.Options{
		PageSize:    4096,
		MemoryPages: 256, // |M| = 1 MB of 4 KB pages for query operators
	})

	// A miniature employee/department schema, the paper's running example
	// ("retrieve (emp.salary) where emp.name = ...").
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
		mmdb.Field{Name: "name", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 10000; i++ {
		if err := emp.Insert(
			mmdb.IntValue(i),
			mmdb.IntValue(i%8),
			mmdb.IntValue(40000+(i*37)%30000),
			mmdb.StringValue(fmt.Sprintf("emp%05d", i)),
		); err != nil {
			log.Fatal(err)
		}
	}
	if err := emp.Flush(); err != nil {
		log.Fatal(err)
	}

	dept, err := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "label", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := dept.Insert(mmdb.IntValue(i), mmdb.StringValue(fmt.Sprintf("dept-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := dept.Flush(); err != nil {
		log.Fatal(err)
	}

	// Index the key column with the B+-tree (the paper's recommendation)
	// and run a point lookup plus a short range scan.
	if err := emp.CreateIndex("id", mmdb.BTree); err != nil {
		log.Fatal(err)
	}
	rows, err := emp.Lookup("id", mmdb.IntValue(4242))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup id=4242  -> %s\n", emp.Schema().Format(rows[0]))

	fmt.Print("range id>=9997 -> ")
	if err := emp.AscendRange("id", mmdb.IntValue(9997), func(t mmdb.Tuple) bool {
		fmt.Printf("%d ", emp.Schema().Int(t, 0))
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Join with the engine's automatic algorithm choice (§4: hybrid hash).
	db.ResetClock()
	res, err := db.Join(mmdb.AutoJoin, "emp", "dept", "dept", "id", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join emp⋈dept   -> %d matches via %v in %v of virtual time (%s)\n",
		res.Matches, res.Algorithm, res.Elapsed, res.Counters)

	// Grouped aggregate (§3.9): average salary per department.
	groups, err := db.Aggregate("emp", "dept", "salary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("avg salary per dept:")
	for _, g := range groups {
		fmt.Printf("  dept %v: %.0f over %d employees\n", g.Key, g.Value(mmdb.Avg), g.Count)
	}
}
