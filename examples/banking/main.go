// Banking: a star-schema analytics session on the public API — load
// transfers and branch/teller dimensions, plan a multi-way join under the
// §4 regimes (full Selinger vs. the large-memory hash-only reduction),
// execute the chosen plan, and aggregate the result.
package main

import (
	"fmt"
	"log"

	"mmdb"
)

func main() {
	db := mmdb.MustOpen(mmdb.Options{MemoryPages: 2000})

	// Fact table: transfers(branch, teller, amount).
	transfers, err := db.CreateRelation("transfers", mmdb.MustSchema(
		mmdb.Field{Name: "branch", Kind: mmdb.Int64},
		mmdb.Field{Name: "teller", Kind: mmdb.Int64},
		mmdb.Field{Name: "amount", Kind: mmdb.Int64},
	))
	if err != nil {
		log.Fatal(err)
	}
	x := uint64(99)
	const nTransfers = 50000
	for i := 0; i < nTransfers; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if err := transfers.Insert(
			mmdb.IntValue(int64(x>>33%50)),
			mmdb.IntValue(int64(x>>17%500)),
			mmdb.IntValue(int64(x%10000)),
		); err != nil {
			log.Fatal(err)
		}
	}
	must(transfers.Flush())

	branches, err := db.CreateRelation("branches", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "city", Kind: mmdb.String, Size: 12},
	))
	must(err)
	for i := int64(0); i < 50; i++ {
		must(branches.Insert(mmdb.IntValue(i), mmdb.StringValue(fmt.Sprintf("city%02d", i%10))))
	}
	must(branches.Flush())

	tellers, err := db.CreateRelation("tellers", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "desk", Kind: mmdb.String, Size: 8},
	))
	must(err)
	for i := int64(0); i < 500; i++ {
		must(tellers.Insert(mmdb.IntValue(i), mmdb.StringValue("desk")))
	}
	must(tellers.Flush())

	// Query: transfers ⋈ branches ⋈ tellers, with a selective predicate on
	// branches (only city05).
	bs := branches.Schema()
	q := mmdb.Query{
		Tables: []mmdb.QueryTable{
			{Relation: "transfers"},
			{Relation: "branches", Selectivity: 0.1, Filter: func(t mmdb.Tuple) bool {
				return bs.Get(t, 1).S == "city05"
			}},
			{Relation: "tellers"},
		},
		Joins: []mmdb.QueryJoin{
			{LeftTable: 0, LeftCol: "branch", RightTable: 1, RightCol: "id"},
			{LeftTable: 0, LeftCol: "teller", RightTable: 2, RightCol: "id"},
		},
	}

	full, err := db.Plan(q, mmdb.FullSelinger)
	must(err)
	hash, err := db.Plan(q, mmdb.HashOnly)
	must(err)
	fmt.Println("§4 planning:")
	fmt.Printf("  full Selinger: cost %8.1f  order %v  (%d plans priced)\n",
		full.Weighted, full.Order, full.PlansConsidered)
	fmt.Printf("  hash-only:     cost %8.1f  order %v  (%d plans priced)\n",
		hash.Weighted, hash.Order, hash.PlansConsidered)

	result, err := hash.Execute()
	must(err)
	fmt.Printf("\nexecuted plan produced %d rows\n", result.NumTuples())

	// Aggregate the joined result: total amount per branch (the fact
	// table's columns carry the execution's "l." prefixes).
	groups, err := db.Aggregate(result.Name(), "l.l.branch", "l.l.amount")
	must(err)
	fmt.Printf("transfer totals for the selected city's branches (%d branches):\n", len(groups))
	shown := 0
	for _, g := range groups {
		fmt.Printf("  branch %v: %d transfers totalling %d\n", g.Key, g.Count, g.Sum)
		shown++
		if shown == 5 {
			break
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
