// Recovery: walk through §5 on the banking workload — compare the three
// commit disciplines' throughput, then crash a checkpointed engine
// mid-flight and recover it, printing what recovery had to do.
package main

import (
	"fmt"
	"log"
	"time"

	"mmdb"
)

func main() {
	fmt.Println("§5: commit disciplines on one 10 ms log device (5 s virtual run)")
	fmt.Printf("  %-28s %10s %12s\n", "policy", "TPS", "commits/page")
	for _, c := range []struct {
		name string
		cfg  mmdb.RecoveryConfig
	}{
		{"flush per commit", mmdb.RecoveryConfig{Policy: mmdb.FlushPerCommit}},
		{"group commit (§5.2)", mmdb.RecoveryConfig{Policy: mmdb.GroupCommit}},
		{"stable memory (§5.4)", mmdb.RecoveryConfig{Policy: mmdb.StableMemoryCommit}},
		{"stable + compression", mmdb.RecoveryConfig{Policy: mmdb.StableMemoryCommit, CompressLog: true}},
		{"group commit, 4 logs", mmdb.RecoveryConfig{Policy: mmdb.GroupCommit, LogDevices: 4, Terminals: 200}},
	} {
		sim, err := mmdb.NewRecoverySim(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := sim.Run(5 * time.Second)
		fmt.Printf("  %-28s %10.1f %12.2f\n", c.name, st.TPS, st.MeanGroupSize)
	}

	fmt.Println("\ncrash + recovery with background checkpointing (§5.3, §5.5):")
	sim, err := mmdb.NewRecoverySim(mmdb.RecoveryConfig{
		Policy:     mmdb.GroupCommit,
		Accounts:   8192,
		Checkpoint: true,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, info, committed, err := sim.RunAndCrash(3*time.Second, 2900*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ran 3 s (crash captured at 2.9 s): %d commits (%.1f tps), %d checkpoint pages\n",
		st.Committed, st.TPS, st.CkptPages)
	fmt.Printf("  crash!  recovery found %d committed txns, %d in-flight losers\n", committed, info.Losers)
	fmt.Printf("  redo: %d update records re-applied (of %d log records scanned)\n",
		info.Redone, info.LogScanned)
	fmt.Printf("  undo: %d loser updates rolled back by pre-image\n", info.Undone)
	fmt.Println("  the stable first-update table bounded redo to the post-checkpoint log tail.")
}
