// Joins: a Figure-1-style face-off of the four §3 join algorithms on one
// workload across a sweep of memory sizes, using the public API. The
// virtual clock uses the paper's Table 2 device and CPU times, so the
// printed seconds are comparable to the paper's curves.
package main

import (
	"fmt"
	"log"

	"mmdb"
)

func main() {
	const (
		rTuples = 40000 // 1000 pages of 40 tuples — 1/10 of Table 2
		sTuples = 40000
	)

	algorithms := []mmdb.JoinAlgorithm{
		mmdb.SortMerge, mmdb.SimpleHash, mmdb.GraceHash, mmdb.HybridHash,
	}
	memories := []int{60, 120, 240, 480, 960, 1200}

	fmt.Println("join algorithm comparison (virtual seconds, Table 2 hardware)")
	fmt.Printf("%-8s %-9s", "|M|", "ratio")
	for _, a := range algorithms {
		fmt.Printf(" %12v", a)
	}
	fmt.Println()

	for _, m := range memories {
		db := mmdb.MustOpen(mmdb.Options{MemoryPages: m})
		load(db, "R", rTuples, 1)
		load(db, "S", sTuples, 2)
		ratio := float64(m) / (1000 * 1.2)
		fmt.Printf("%-8d %-9.3f", m, ratio)
		for _, a := range algorithms {
			res, err := db.Join(a, "R", "S", "key", "key", nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.1f", res.Elapsed.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper §3.8): hybrid at or near the top throughout;")
	fmt.Println("simple hash collapses at small memory; grace flat; sort-merge flat and")
	fmt.Println("always beaten by hashing above |M| = sqrt(|S|*F).")
}

// load creates a relation of n 100-byte tuples with int64 keys drawn from
// [0, n): the Table 2 tuple shape.
func load(db *mmdb.Database, name string, n int, seed int64) {
	rel, err := db.CreateRelation(name, mmdb.MustSchema(
		mmdb.Field{Name: "key", Kind: mmdb.Int64},
		mmdb.Field{Name: "pad", Kind: mmdb.String, Size: 92},
	))
	if err != nil {
		log.Fatal(err)
	}
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < n; i++ {
		x = x*2862933555777941757 + 3037000493
		key := int64(x % uint64(n))
		if err := rel.Insert(mmdb.IntValue(key), mmdb.StringValue("x")); err != nil {
			log.Fatal(err)
		}
	}
	if err := rel.Flush(); err != nil {
		log.Fatal(err)
	}
}
