package mmdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mmdb/internal/agg"
	"mmdb/internal/catalog"
	"mmdb/internal/cost"
	"mmdb/internal/expr"
	"mmdb/internal/extsort"
	"mmdb/internal/fault"
	"mmdb/internal/heap"
	"mmdb/internal/join"
	"mmdb/internal/lock"
	"mmdb/internal/session"
	"mmdb/internal/simio"
	"mmdb/internal/wal"
)

// Session is one admitted query context: a scheduler slot, a memory grant
// carved out of the database's MemoryPages, relation-level shared intents
// taken as relations are referenced, and a private virtual clock.
//
// Every operator a session runs consumes the *granted* |M| — so the §3
// algorithm behavior (hybrid staying resident, GRACE partitioning, sort
// fan-in) and the §4 planner choices stay faithful to the cost model under
// contention — and charges the session clock, keeping per-query counters
// bit-identical however many sessions run at once. Close releases the
// slot, the grant and the locks, and folds the session's counters into
// the database's global clock.
//
// A Session is not itself safe for concurrent use: it represents one
// query stream. Open many sessions for concurrency.
type Session struct {
	db      *Database
	txn     wal.TxnID
	clock   *cost.Clock
	view    *simio.Disk
	class   QueryClass
	grant   *session.Grant
	retries int
	queued  time.Duration
	cancel  context.CancelFunc
	ctx     context.Context

	mu     sync.Mutex
	closed bool
}

// NewSession admits a query context: it waits for a scheduler slot (FIFO
// within its priority class, the pick policy deciding between classes;
// honoring ctx cancellation and deadlines; rejecting with an
// *OverloadError wrapping ErrOverloaded when the class's wait queue is
// full) and reserves a memory grant. Sessions default to the Batch class
// and the policy-default grant; pass WithClass / WithMinPages to
// override:
//
//	s, err := db.NewSession(ctx, mmdb.WithClass(mmdb.Interactive))
//
// Close must be called when the session's queries are done.
func (db *Database) NewSession(ctx context.Context, opts ...SessionOption) (*Session, error) {
	cfg := resolveSessionConfig(opts)
	var cancel context.CancelFunc
	if db.opts.QueryTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			ctx, cancel = context.WithTimeout(ctx, db.opts.QueryTimeout)
		}
	}
	queued, err := db.sched.Admit(ctx, cfg.class)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	grant, err := db.broker.ReserveGrant(ctx, cfg.class, cfg.minPages)
	if err != nil {
		db.sched.Done(cfg.class)
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	clock := cost.NewClock(db.opts.Params)
	return &Session{
		db:      db,
		txn:     db.locks.NextID(),
		clock:   clock,
		view:    db.disk.View(clock),
		class:   cfg.class,
		grant:   grant,
		retries: cfg.retries,
		queued:  queued,
		cancel:  cancel,
		ctx:     ctx,
	}, nil
}

// Close releases the session's locks, memory grant and scheduler slot and
// merges its virtual-clock counters into the database's global clock.
// Close is idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.db.locks.Release(s.txn)
	s.grant.Release()
	s.db.sched.Done(s.class)
	s.db.clock.Charge(s.clock.Counters())
	if s.cancel != nil {
		s.cancel()
	}
}

// Class returns the session's admission priority class.
func (s *Session) Class() QueryClass { return s.class }

// GrantedPages returns the session's current memory grant (its live |M|).
// The value shrinks when the grant is revoked from (ShedMemory).
func (s *Session) GrantedPages() int { return s.grant.Pages() }

// ShedMemory takes up to pages back from the session's memory grant and
// returns them to the database's broker immediately, reporting how many
// were reclaimed. The grant never shrinks below the 2-page floor any §3
// operator needs to finish. A hybrid hash join in flight observes the
// shrinkage through its live-|M| hook and degrades to the GRACE spill
// fallback rather than overcommitting — memory pressure costs extra IO
// passes, never a wrong answer or an overrun.
func (s *Session) ShedMemory(pages int) int { return s.grant.Revoke(pages) }

// QueuedFor returns the wall time the session waited for admission.
func (s *Session) QueuedFor() time.Duration { return s.queued }

// Counters returns the operations this session has charged so far.
func (s *Session) Counters() Counters { return s.clock.Counters() }

// VirtualTime returns the session's elapsed virtual time.
func (s *Session) VirtualTime() time.Duration { return s.clock.Now() }

// lockAndView takes shared intents on the named relations (canonical
// order) and returns their catalog entries plus per-session heap-file
// views charging the session clock.
func (s *Session) lockAndView(names ...string) ([]*catalog.Relation, []*heap.File, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("mmdb: session is closed")
	}
	s.mu.Unlock()
	resources := make([]uint64, len(names))
	for i, n := range names {
		resources[i] = catalog.ResourceID(n)
	}
	if _, err := s.db.locks.AcquireAll(s.ctx, s.txn, resources, lock.Shared); err != nil {
		return nil, nil, err
	}
	rels := make([]*catalog.Relation, len(names))
	files := make([]*heap.File, len(names))
	for i, n := range names {
		r, err := s.db.cat.Get(n)
		if err != nil {
			return nil, nil, err
		}
		f, err := r.File.OnDisk(s.view)
		if err != nil {
			return nil, nil, err
		}
		rels[i] = r
		files[i] = f
	}
	return rels, files, nil
}

// Join runs an equijoin between two relations within the session's memory
// grant, streaming joined pairs to emit (nil to count only). See
// Database.Join.
func (s *Session) Join(algorithm JoinAlgorithm, left, right, leftCol, rightCol string, emit func(l, r Tuple)) (JoinResult, error) {
	rels, files, err := s.lockAndView(left, right)
	if err != nil {
		return JoinResult{}, err
	}
	lc := rels[0].Schema().FieldIndex(leftCol)
	if lc < 0 {
		return JoinResult{}, fmt.Errorf("mmdb: %s has no column %q", left, leftCol)
	}
	rc := rels[1].Schema().FieldIndex(rightCol)
	if rc < 0 {
		return JoinResult{}, fmt.Errorf("mmdb: %s has no column %q", right, rightCol)
	}
	if algorithm == AutoJoin {
		algorithm = HybridHash
	}
	spec := join.Spec{
		R: files[0], S: files[1],
		RCol: lc, SCol: rc,
		M:              s.grant.Pages(),
		F:              s.db.opts.Params.F,
		LiveM:          s.grant.Pages,
		Parallelism:    s.db.opts.Parallelism,
		SortChunks:     s.db.opts.SortChunks,
		NoCacheKernels: s.db.opts.kernelsOff(),
	}
	swapped := false
	if spec.S.NumPages() < spec.R.NumPages() {
		spec.R, spec.S = spec.S, spec.R
		spec.RCol, spec.SCol = spec.SCol, spec.RCol
		swapped = true
	}
	var wrapped join.Emit
	if emit != nil {
		wrapped = func(r, t Tuple) {
			if swapped {
				emit(t, r)
			} else {
				emit(r, t)
			}
		}
	}
	res, err := s.runJoin(algorithm, spec, wrapped)
	if err != nil {
		return JoinResult{}, err
	}
	if res.Algorithm == SortMerge {
		s.db.sorts.record(res.RSort.Runs, res.RSort.MergePasses, res.RSort.InMemory)
		s.db.sorts.record(res.SSort.Runs, res.SSort.MergePasses, res.SSort.InMemory)
	}
	return JoinResult{
		Algorithm:  res.Algorithm,
		Matches:    res.Matches,
		Counters:   res.Counters,
		Elapsed:    res.Elapsed,
		Passes:     res.Passes,
		Partitions: res.Partitions,
		Degraded:   res.GraceFallback,
		SortR:      SortStats(res.RSort),
		SortS:      SortStats(res.SSort),
	}, nil
}

// runJoin executes the join, optionally re-running it when it is killed
// by a transient injected fault (WithRetry). Each attempt buffers its
// emitted pairs and delivers them only on success, so the caller never
// sees a partial result set from a failed attempt; an exhausted budget or
// a permanent fault surfaces the last error unchanged.
func (s *Session) runJoin(algorithm JoinAlgorithm, spec join.Spec, emit join.Emit) (join.Result, error) {
	if s.retries <= 0 {
		return join.Run(algorithm, spec, emit)
	}
	for attempt := 0; ; attempt++ {
		var buf [][2]Tuple
		inner := emit
		if emit != nil {
			inner = func(r, t Tuple) { buf = append(buf, [2]Tuple{r.Clone(), t.Clone()}) }
		}
		res, err := join.Run(algorithm, spec, inner)
		if err == nil {
			if emit != nil {
				for _, p := range buf {
					emit(p[0], p[1])
				}
			}
			return res, nil
		}
		if attempt >= s.retries || !errors.Is(err, fault.ErrTransient) {
			return res, err
		}
	}
}

// Aggregate computes per-group count/sum/min/max/avg within the session's
// memory grant. See Database.Aggregate.
func (s *Session) Aggregate(relation, groupCol, valueCol string) ([]GroupRow, error) {
	rels, files, err := s.lockAndView(relation)
	if err != nil {
		return nil, err
	}
	schema := rels[0].Schema()
	gc := schema.FieldIndex(groupCol)
	vc := schema.FieldIndex(valueCol)
	if gc < 0 || vc < 0 {
		return nil, fmt.Errorf("mmdb: %s lacks column %q or %q", relation, groupCol, valueCol)
	}
	res, err := agg.Hash(agg.Spec{
		Input:       files[0],
		GroupCol:    gc,
		ValueCol:    vc,
		M:           s.grant.Pages(),
		F:           s.db.opts.Params.F,
		Parallelism: s.db.opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	out := make([]GroupRow, len(res.Groups))
	for i, g := range res.Groups {
		out[i] = GroupRow(g)
	}
	return out, nil
}

// Distinct returns the distinct values of a column within the session's
// memory grant. See Database.Distinct.
func (s *Session) Distinct(relation, column string) ([]Value, error) {
	rels, files, err := s.lockAndView(relation)
	if err != nil {
		return nil, err
	}
	col := rels[0].Schema().FieldIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("mmdb: %s has no column %q", relation, column)
	}
	return agg.Distinct(files[0], col, s.grant.Pages(), s.db.opts.Params.F, s.db.opts.Parallelism)
}

// Select scans the predicate's relation, streaming rows that satisfy p
// to fn until it returns false — the short interactive lookup path, run
// under the session's admission class with IO and comparisons charged to
// the session clock. See Relation.Select for the serial equivalent.
func (s *Session) Select(p *Pred, fn func(Tuple) bool) error {
	if err := p.Err(); err != nil {
		return err
	}
	_, files, err := s.lockAndView(p.rel.Name)
	if err != nil {
		return err
	}
	leaves := int64(0)
	p.inner.Walk(func(*expr.Comparison) { leaves++ })
	if leaves == 0 {
		leaves = 1
	}
	return files[0].Scan(simio.Seq, func(t Tuple) bool {
		s.clock.Comps(leaves)
		if p.inner.Eval(t) {
			return fn(t)
		}
		return true
	})
}

// OrderBy streams the relation's rows in ascending column order using the
// §3.4 sort machinery within the session's memory grant. See
// Database.OrderBy.
func (s *Session) OrderBy(relation, column string, fn func(Tuple) bool) error {
	rels, files, err := s.lockAndView(relation)
	if err != nil {
		return err
	}
	col := rels[0].Schema().FieldIndex(column)
	if col < 0 {
		return fmt.Errorf("mmdb: %s has no column %q", relation, column)
	}
	capacity := int(float64(s.grant.Pages()) * float64(files[0].TuplesPerPage()) / s.db.opts.Params.F)
	if capacity < 2 {
		capacity = 2
	}
	fanout := s.grant.Pages()
	stream, stats, err := extsort.SortWith(files[0], extsort.Config{
		Col:         col,
		MemTuples:   capacity,
		MaxFanout:   fanout,
		Prefix:      fmt.Sprintf("orderby.%s.%d", relation, orderBySeq.Add(1)),
		Input:       simio.Uncharged,
		Chunks:      s.db.opts.SortChunks,
		Parallelism: s.db.opts.Parallelism,
		NoKernel:    s.db.opts.kernelsOff(),
	})
	if err != nil {
		return err
	}
	defer stream.Close() // releases run files even when fn stops early
	s.db.sorts.record(stats.Runs, stats.MergePasses, stats.InMemory)
	for {
		t, ok := stream.Next()
		if !ok {
			break
		}
		if !fn(t) {
			break
		}
	}
	return stream.Err()
}

// Plan optimizes a multi-way join under the session's memory grant: the
// §4 planner sees the granted |M|, not the global one, so its plan
// choices stay faithful to what the session can actually execute.
func (s *Session) Plan(q Query, mode PlanMode) (*QueryPlan, error) {
	names := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		names[i] = t.Relation
	}
	if _, _, err := s.lockAndView(names...); err != nil {
		return nil, err
	}
	pq, err := s.db.buildPlannerQuery(q, s.grant.Pages(), s.view)
	if err != nil {
		return nil, err
	}
	return s.db.finishPlan(pq, mode, s)
}
