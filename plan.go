package mmdb

import (
	"context"
	"fmt"

	"mmdb/internal/lock"
	"mmdb/internal/planner"
	"mmdb/internal/session"
	"mmdb/internal/simio"
)

// QueryTable names a relation participating in a planned query, with an
// optional pushed-down selection: either a structured Where predicate
// (selectivity estimated from histograms) or a raw Filter with an
// explicit Selectivity.
type QueryTable struct {
	Relation    string
	Where       *Pred            // optional structured predicate
	Filter      func(Tuple) bool // optional raw predicate (ignored when Where is set)
	Selectivity float64          // estimate for Filter; 0 means 1 (or Where's estimate)
}

// QueryJoin is one equi-join predicate between two query tables, by
// column name.
type QueryJoin struct {
	LeftTable  int // index into Query.Tables
	LeftCol    string
	RightTable int
	RightCol   string
}

// Query is a multi-way equijoin with pushed-down selections.
type Query struct {
	Tables []QueryTable
	Joins  []QueryJoin
}

// PlanMode selects the §4 planning regime.
type PlanMode int

// Planning modes.
const (
	// FullSelinger enumerates all four join algorithms and tracks
	// interesting orders, as a disk-era optimizer must.
	FullSelinger PlanMode = iota
	// HashOnly is the paper's large-memory reduction: hybrid hash
	// everywhere, no order bookkeeping, selectivity ordering only.
	HashOnly
)

// QueryPlan is an optimized plan ready to execute.
type QueryPlan struct {
	db    *Database
	sess  *Session // non-nil when planned within a session
	query planner.Query
	plan  *planner.Plan

	// Order is the chosen join order (build side first).
	Order []string
	// EstimatedCPU and EstimatedIO are analytic seconds.
	EstimatedCPU, EstimatedIO float64
	// Weighted is W*CPU + IO, the Selinger objective.
	Weighted float64
	// StatesExplored and PlansConsidered measure optimizer effort; the §4
	// claim is that HashOnly shrinks both without losing plan quality
	// when memory is large.
	StatesExplored, PlansConsidered int
}

// Plan optimizes the query under the given mode with W=1, costing against
// the database's full MemoryPages (the serial path). For contention-aware
// planning use Session.Plan, which costs against the session's grant.
func (db *Database) Plan(q Query, mode PlanMode) (*QueryPlan, error) {
	pq, err := db.buildPlannerQuery(q, db.opts.MemoryPages, nil)
	if err != nil {
		return nil, err
	}
	return db.finishPlan(pq, mode, nil)
}

// finishPlan runs the optimizer over a resolved planner query.
func (db *Database) finishPlan(pq planner.Query, mode PlanMode, sess *Session) (*QueryPlan, error) {
	var p *planner.Plan
	var err error
	switch mode {
	case FullSelinger:
		p, err = planner.Optimize(pq)
	case HashOnly:
		p, err = planner.OptimizeHashOnly(pq)
	default:
		return nil, fmt.Errorf("mmdb: unknown plan mode %d", int(mode))
	}
	if err != nil {
		return nil, err
	}
	qp := &QueryPlan{
		db:              db,
		sess:            sess,
		query:           pq,
		plan:            p,
		EstimatedCPU:    p.CPU,
		EstimatedIO:     p.IO,
		Weighted:        p.Weighted,
		StatesExplored:  p.StatesExplored,
		PlansConsidered: p.PlansConsidered,
	}
	qp.Order = p.Order(pq)
	return qp, nil
}

// Execute runs the plan and materializes the joined result as a new
// relation named like "plan.join.N"; it returns the handle.
//
// A plan produced by Session.Plan executes within its session: it is
// already admitted, holds its relation intents, and runs against its
// memory grant on its private clock. A plan produced by Database.Plan
// admits a one-shot execution slot, takes shared intents on its tables,
// and reserves the full |M| it was costed against before running.
func (qp *QueryPlan) Execute() (*Relation, error) {
	if qp.sess != nil {
		out, err := planner.Execute(qp.query, qp.plan)
		if err != nil {
			return nil, err
		}
		// Re-home the materialized result onto the base disk so later
		// queries over it charge the global clock, then register it.
		based, err := out.OnDisk(qp.db.disk)
		if err != nil {
			return nil, err
		}
		return qp.db.adoptFile(based)
	}
	ctx := context.Background()
	if _, err := qp.db.sched.Admit(ctx, session.Batch); err != nil {
		return nil, err
	}
	defer qp.db.sched.Done(session.Batch)
	granted, err := qp.db.broker.Reserve(ctx, session.Batch, qp.query.M)
	if err != nil {
		return nil, err
	}
	defer qp.db.broker.Release(session.Batch, granted)
	names := make([]string, len(qp.query.Tables))
	for i, t := range qp.query.Tables {
		names[i] = t.Name
	}
	unlock, err := qp.db.lockRelations(ctx, lock.Shared, names...)
	if err != nil {
		return nil, err
	}
	defer unlock()
	out, err := planner.Execute(qp.query, qp.plan)
	if err != nil {
		return nil, err
	}
	return qp.db.adoptFile(out)
}

// buildPlannerQuery resolves names against the catalog and computes the
// statistics the optimizer needs (distinct join-key counts). The planner
// sees m as its |M| — the session's grant, or the global MemoryPages on
// the serial path — and, when view is non-nil, per-session heap-file
// views whose IO charges the session clock.
func (db *Database) buildPlannerQuery(q Query, m int, view *simio.Disk) (planner.Query, error) {
	if len(q.Tables) == 0 {
		return planner.Query{}, fmt.Errorf("mmdb: query with no tables")
	}
	// Assign join classes: columns joined transitively share one class.
	type colRef struct {
		table int
		col   string
	}
	classOf := make(map[colRef]int)
	nextClass := 0
	classFor := func(a, b colRef) int {
		ca, okA := classOf[a]
		cb, okB := classOf[b]
		switch {
		case okA && okB:
			if ca != cb { // merge classes
				for k, v := range classOf {
					if v == cb {
						classOf[k] = ca
					}
				}
			}
			return ca
		case okA:
			classOf[b] = ca
			return ca
		case okB:
			classOf[a] = cb
			return cb
		default:
			classOf[a] = nextClass
			classOf[b] = nextClass
			nextClass++
			return classOf[a]
		}
	}

	var edges []planner.Edge
	for _, j := range q.Joins {
		if j.LeftTable < 0 || j.LeftTable >= len(q.Tables) || j.RightTable < 0 || j.RightTable >= len(q.Tables) {
			return planner.Query{}, fmt.Errorf("mmdb: join references table out of range")
		}
		cl := classFor(colRef{j.LeftTable, j.LeftCol}, colRef{j.RightTable, j.RightCol})
		edges = append(edges, planner.Edge{A: j.LeftTable, B: j.RightTable, Class: cl})
	}

	tables := make([]planner.Table, len(q.Tables))
	for i, qt := range q.Tables {
		rel, err := db.cat.Get(qt.Relation)
		if err != nil {
			return planner.Query{}, err
		}
		schema := rel.Schema()
		classCols := make(map[int]int)
		var distinctCols []int
		for ref, cl := range classOf {
			if ref.table != i {
				continue
			}
			col := schema.FieldIndex(ref.col)
			if col < 0 {
				return planner.Query{}, fmt.Errorf("mmdb: %s has no column %q", qt.Relation, ref.col)
			}
			classCols[cl] = col
			distinctCols = append(distinctCols, col)
		}
		stats, err := db.cat.Stats(qt.Relation, distinctCols...)
		if err != nil {
			return planner.Query{}, err
		}
		distinct := make(map[int]int64)
		for cl, col := range classCols {
			distinct[cl] = stats.Distinct[col]
		}
		filter := qt.Filter
		sel := qt.Selectivity
		if qt.Where != nil {
			if err := qt.Where.Err(); err != nil {
				return planner.Query{}, err
			}
			if qt.Where.rel != rel {
				return planner.Query{}, fmt.Errorf("mmdb: table %d predicate is over %q, not %q",
					i, qt.Where.rel.Name, qt.Relation)
			}
			w := qt.Where
			filter = w.Match
			if sel == 0 {
				sel = w.EstimatedSelectivity()
				if sel <= 0 {
					sel = 1e-6 // "impossible" estimates still cost a scan
				}
			}
		}
		if sel == 0 {
			sel = 1
		}
		file := rel.File
		if view != nil {
			file, err = rel.File.OnDisk(view)
			if err != nil {
				return planner.Query{}, err
			}
		}
		tables[i] = planner.Table{
			Name:          qt.Relation,
			Tuples:        stats.Tuples,
			TuplesPerPage: stats.TuplesPerPage,
			Width:         schema.Width(),
			Selectivity:   sel,
			Distinct:      distinct,
			Filter:        filter,
			Rel:           planner.ExecSource{File: file, ClassCols: classCols},
		}
	}
	return planner.Query{
		Tables:         tables,
		Edges:          edges,
		PageSize:       db.opts.PageSize,
		M:              m,
		Params:         db.opts.Params,
		W:              1,
		Parallelism:    db.opts.Parallelism,
		SortChunks:     db.opts.SortChunks,
		NoCacheKernels: db.opts.kernelsOff(),
	}, nil
}
