// Package mmdb is a main-memory relational database engine reproducing
// "Implementation Techniques for Main Memory Database Systems" (DeWitt,
// Katz, Olken, Shapiro, Stonebraker, Wood — SIGMOD 1984).
//
// The engine bundles the paper's building blocks behind one API:
//
//   - relations stored as paged heap files with AVL and B+-tree indexes
//     (§2), over a simulated disk that charges every operation to a
//     deterministic virtual clock using the paper's Table 2 hardware
//     parameters;
//   - the four §3 join algorithms (sort-merge, simple hash, GRACE hash,
//     hybrid hash) plus hash-based aggregation and duplicate elimination
//     (§3.9), each both executable and analytically costed;
//   - a Selinger-style access planner implementing the §4 observation
//     that large memories collapse planning to selectivity ordering over
//     hash joins;
//   - a §5 recovery simulator: group commit with pre-committed
//     transactions, partitioned logs, stable-memory log compression,
//     fuzzy checkpointing and crash recovery.
//
// Start with Open, load relations, then use Join, Aggregate, Lookup, and
// Plan. The cmd/mmdbench binary regenerates every table and figure of the
// paper; see EXPERIMENTS.md for the measured results.
package mmdb

import (
	"context"
	"fmt"
	"time"

	"mmdb/internal/catalog"
	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/lock"
	"mmdb/internal/session"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Re-exported schema building blocks.
type (
	// Schema describes a relation's fixed-width tuple layout.
	Schema = tuple.Schema
	// Field is one typed column.
	Field = tuple.Field
	// Tuple is an encoded row.
	Tuple = tuple.Tuple
	// Value is a dynamically typed column value.
	Value = tuple.Value
	// Params is the hardware characterization (Table 2/3).
	Params = cost.Params
	// Counters tallies primitive operations charged to the virtual clock.
	Counters = cost.Counters
)

// Column kinds.
const (
	Int64   = tuple.Int64
	Float64 = tuple.Float64
	String  = tuple.String
)

// Value constructors, re-exported.
var (
	IntValue    = tuple.IntValue
	FloatValue  = tuple.FloatValue
	StringValue = tuple.StringValue
	NewSchema   = tuple.NewSchema
	MustSchema  = tuple.MustSchema
)

// DefaultParams returns the paper's Table 2 parameter settings.
func DefaultParams() Params { return cost.DefaultParams() }

// Options configures a Database.
type Options struct {
	// PageSize is the storage page size in bytes (the paper's P).
	// 0 means 4096.
	PageSize int
	// MemoryPages is |M|, the pages of main memory query operators may
	// use. 0 means 1000 (4 MB at 4 KB pages, the paper's §3.2 example).
	MemoryPages int
	// Params is the virtual-clock hardware model. Zero value means
	// DefaultParams.
	Params Params
	// Parallelism bounds the worker goroutines the parallel operators
	// (the partition phases of GRACE and hybrid hash joins, spilled hash
	// aggregation) may use. 0 or 1 means serial execution, identical to
	// the original single-goroutine engine; a negative value means one
	// worker per CPU (GOMAXPROCS). Virtual time and operation counters
	// are the same at every setting — parallelism trades wall-clock time
	// only, never the paper's accounting.
	Parallelism int

	// MaxConcurrentQueries bounds how many admitted queries may execute
	// simultaneously (the scheduler's slots). 0 means 1: queries are
	// admitted one at a time, which preserves the original serial
	// engine's behavior exactly — including whole-|M| memory grants —
	// while already making concurrent callers safe.
	MaxConcurrentQueries int
	// QueueDepth bounds how many queries may wait for a slot before new
	// arrivals are rejected with ErrOverloaded. 0 means 64; negative
	// means no queue (reject as soon as all slots are busy).
	QueueDepth int
	// MemoryPolicy selects how the broker sizes per-query memory grants
	// out of MemoryPages. The default, MemoryStatic, gives every query
	// MemoryPages/MaxConcurrentQueries — deterministic, so per-query
	// virtual-clock accounting is bit-identical however queries overlap.
	// MemoryGreedy adapts grants to instantaneous load instead.
	MemoryPolicy MemoryPolicy
	// QueryTimeout, when positive, bounds each session's total time
	// (queueing included) unless its context already carries an earlier
	// deadline.
	QueryTimeout time.Duration
}

// MemoryPolicy selects the broker's grant sizing (see Options).
type MemoryPolicy = session.Policy

// Memory policies.
const (
	MemoryStatic = session.StaticShare
	MemoryGreedy = session.Greedy
)

// ErrOverloaded is returned when a query cannot even be queued: all
// execution slots are busy and the admission queue is full.
var ErrOverloaded = session.ErrOverloaded

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.MemoryPages == 0 {
		o.MemoryPages = 1000
	}
	if o.Params == (Params{}) {
		o.Params = cost.DefaultParams()
	}
	if o.MaxConcurrentQueries == 0 {
		o.MaxConcurrentQueries = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	return o
}

// Database is a main-memory relational database with simulated IO cost
// accounting. It is safe for concurrent use: queries pass through an
// admission scheduler (bounded slots plus a FIFO wait queue), receive a
// memory grant brokered out of MemoryPages, and take relation-level
// shared intents through the §5.2 lock table, while loads and DDL take
// exclusive intents. With the default Options the scheduler admits one
// query at a time, which reproduces the original serial engine's
// accounting exactly.
type Database struct {
	opts   Options
	clock  *cost.Clock
	disk   *simio.Disk
	cat    *catalog.Catalog
	sched  *session.Scheduler
	broker *session.Broker
	locks  *session.LockTable
}

// Open creates an empty database.
func Open(opts Options) (*Database, error) {
	opts = opts.withDefaults()
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.PageSize < 64 {
		return nil, fmt.Errorf("mmdb: page size %d too small", opts.PageSize)
	}
	if opts.MemoryPages < 2 {
		return nil, fmt.Errorf("mmdb: need at least 2 memory pages")
	}
	if opts.MaxConcurrentQueries < 0 {
		return nil, fmt.Errorf("mmdb: MaxConcurrentQueries %d must be positive", opts.MaxConcurrentQueries)
	}
	clock := cost.NewClock(opts.Params)
	disk := simio.NewDisk(clock, opts.PageSize)
	depth := opts.QueueDepth
	if depth < 0 {
		depth = 0
	}
	return &Database{
		opts:   opts,
		clock:  clock,
		disk:   disk,
		cat:    catalog.New(disk),
		sched:  session.NewScheduler(opts.MaxConcurrentQueries, depth),
		broker: session.NewBroker(opts.MemoryPages, opts.MaxConcurrentQueries, opts.MemoryPolicy),
		locks:  session.NewLockTable(),
	}, nil
}

// MustOpen is Open that panics on error.
func MustOpen(opts Options) *Database {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// Options returns the effective configuration.
func (db *Database) Options() Options { return db.opts }

// MemoryPages returns |M|.
func (db *Database) MemoryPages() int { return db.opts.MemoryPages }

// Counters returns the operations charged so far.
func (db *Database) Counters() Counters { return db.clock.Counters() }

// VirtualTime returns the elapsed virtual time.
func (db *Database) VirtualTime() time.Duration { return db.clock.Now() }

// ResetClock zeroes the virtual clock and counters (between experiments).
func (db *Database) ResetClock() { db.clock.Reset() }

// CreateRelation registers an empty relation.
func (db *Database) CreateRelation(name string, schema *Schema) (*Relation, error) {
	r, err := db.cat.Create(name, schema)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// Relation looks up an existing relation.
func (db *Database) Relation(name string) (*Relation, error) {
	r, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// Relations lists all relation names.
func (db *Database) Relations() []string { return db.cat.Names() }

// DropRelation removes a relation and its storage, waiting for in-flight
// queries over it to drain (an exclusive relation intent).
func (db *Database) DropRelation(name string) error {
	unlock, err := db.lockRelations(context.Background(), lock.Exclusive, name)
	if err != nil {
		return err
	}
	defer unlock()
	return db.cat.Drop(name)
}

// adoptFile registers an internally produced heap file (for tests and the
// workload generators).
func (db *Database) adoptFile(f *heap.File) (*Relation, error) {
	r, err := db.cat.Adopt(f)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// lockRelations takes a one-shot relation-level intent lock on every named
// relation (in canonical resource order, to stay deadlock-free) and
// returns the release func. Queries take lock.Shared; loads and DDL take
// lock.Exclusive.
func (db *Database) lockRelations(ctx context.Context, mode lock.Mode, names ...string) (func(), error) {
	txn := db.locks.NextID()
	resources := make([]uint64, len(names))
	for i, n := range names {
		resources[i] = catalog.ResourceID(n)
	}
	if _, err := db.locks.AcquireAll(ctx, txn, resources, mode); err != nil {
		return nil, err
	}
	return func() { db.locks.Release(txn) }, nil
}

// SessionMetrics reports the admission scheduler's and memory broker's
// activity counters: how many queries were admitted, rejected and
// completed, wall time spent queued, and the grant accounting (the peak
// can never exceed MemoryPages — the broker's no-over-grant invariant).
type SessionMetrics struct {
	Admitted    uint64
	Rejected    uint64
	Canceled    uint64
	Completed   uint64
	QueuedTotal time.Duration
	QueuedMax   time.Duration
	QueuePeak   int
	RunningPeak int

	MemoryPages      int    // the brokered budget |M|
	GrantedPages     int    // pages currently out on grant
	PeakGrantedPages int    // high-water mark of simultaneous grants
	Grants           uint64 // grants issued so far
}

// SessionMetrics returns a snapshot of scheduler and broker activity.
func (db *Database) SessionMetrics() SessionMetrics {
	m := db.sched.Metrics()
	return SessionMetrics{
		Admitted:    m.Admitted,
		Rejected:    m.Rejected,
		Canceled:    m.Canceled,
		Completed:   m.Completed,
		QueuedTotal: m.QueuedTotal,
		QueuedMax:   m.QueuedMax,
		QueuePeak:   m.QueuePeak,
		RunningPeak: m.RunningPeak,

		MemoryPages:      db.broker.Total(),
		GrantedPages:     db.broker.Granted(),
		PeakGrantedPages: db.broker.Peak(),
		Grants:           db.broker.Grants(),
	}
}
