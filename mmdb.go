// Package mmdb is a main-memory relational database engine reproducing
// "Implementation Techniques for Main Memory Database Systems" (DeWitt,
// Katz, Olken, Shapiro, Stonebraker, Wood — SIGMOD 1984).
//
// The engine bundles the paper's building blocks behind one API:
//
//   - relations stored as paged heap files with AVL and B+-tree indexes
//     (§2), over a simulated disk that charges every operation to a
//     deterministic virtual clock using the paper's Table 2 hardware
//     parameters;
//   - the four §3 join algorithms (sort-merge, simple hash, GRACE hash,
//     hybrid hash) plus hash-based aggregation and duplicate elimination
//     (§3.9), each both executable and analytically costed;
//   - a Selinger-style access planner implementing the §4 observation
//     that large memories collapse planning to selectivity ordering over
//     hash joins;
//   - a §5 recovery simulator: group commit with pre-committed
//     transactions, partitioned logs, stable-memory log compression,
//     fuzzy checkpointing and crash recovery.
//
// Start with Open, load relations, then use Join, Aggregate, Lookup, and
// Plan. The cmd/mmdbench binary regenerates every table and figure of the
// paper; see EXPERIMENTS.md for the measured results.
package mmdb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/catalog"
	"mmdb/internal/cost"
	"mmdb/internal/fault"
	"mmdb/internal/heap"
	"mmdb/internal/lock"
	"mmdb/internal/session"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Re-exported schema building blocks.
type (
	// Schema describes a relation's fixed-width tuple layout.
	Schema = tuple.Schema
	// Field is one typed column.
	Field = tuple.Field
	// Tuple is an encoded row.
	Tuple = tuple.Tuple
	// Value is a dynamically typed column value.
	Value = tuple.Value
	// Params is the hardware characterization (Table 2/3).
	Params = cost.Params
	// Counters tallies primitive operations charged to the virtual clock.
	Counters = cost.Counters
	// Kind is a column's value kind (Int64, Float64, String).
	Kind = tuple.Kind
)

// Column kinds.
const (
	Int64   = tuple.Int64
	Float64 = tuple.Float64
	String  = tuple.String
)

// Value constructors, re-exported.
var (
	IntValue    = tuple.IntValue
	FloatValue  = tuple.FloatValue
	StringValue = tuple.StringValue
	NewSchema   = tuple.NewSchema
	MustSchema  = tuple.MustSchema
)

// DefaultParams returns the paper's Table 2 parameter settings.
func DefaultParams() Params { return cost.DefaultParams() }

// Options configures a Database.
type Options struct {
	// PageSize is the storage page size in bytes (the paper's P).
	// 0 means 4096.
	PageSize int
	// MemoryPages is |M|, the pages of main memory query operators may
	// use. 0 means 1000 (4 MB at 4 KB pages, the paper's §3.2 example).
	MemoryPages int
	// Params is the virtual-clock hardware model. Zero value means
	// DefaultParams.
	Params Params
	// Parallelism bounds the worker goroutines the parallel operators
	// (the partition phases of GRACE and hybrid hash joins, spilled hash
	// aggregation) may use. 0 or 1 means serial execution, identical to
	// the original single-goroutine engine; a negative value means one
	// worker per CPU (GOMAXPROCS). Virtual time and operation counters
	// are the same at every setting — parallelism trades wall-clock time
	// only, never the paper's accounting.
	Parallelism int
	// SortChunks is the sort decomposition plan used by sort-merge joins
	// and OrderBy: run formation splits each relation into this many
	// page-range chunks (each with a proportional share of the sort
	// memory) whose sorted streams a merge tree recombines. Unlike
	// Parallelism this is a *plan* knob — like GRACE's partition count it
	// changes the virtual counters (more, shorter runs; one extra
	// selection-tree level) — but for a fixed SortChunks the counters are
	// bit-identical at every Parallelism. 0 or 1 means the classic
	// single-queue sort. Chunked sorts only speed up wall-clock time when
	// Parallelism > 1.
	SortChunks int
	// CacheKernels toggles the cache-conscious execution kernels: the
	// radix-partitioned open-addressing join tables with batched probes,
	// the compact selection-tree layout and batched merge pumps in sorts,
	// and the allocation-free hasher. The kernels change physical layout
	// only — for fixed plan knobs (MemoryPages, SortChunks, ...) the
	// virtual counters are bit-identical on and off at every Parallelism —
	// so this is an escape hatch for measurement and triage, not a plan
	// knob. The zero value (KernelsAuto) means on.
	CacheKernels KernelMode

	// MaxConcurrentQueries bounds how many admitted queries may execute
	// simultaneously (the scheduler's slots). 0 means 1: queries are
	// admitted one at a time, which preserves the original serial
	// engine's behavior exactly — including whole-|M| memory grants —
	// while already making concurrent callers safe.
	MaxConcurrentQueries int
	// QueueDepth bounds how many queries of a class may wait for a slot
	// before new arrivals of that class are rejected with ErrOverloaded.
	// 0 means 64; negative means no queue (reject as soon as all slots
	// are busy). Classes[c].QueueDepth overrides it per class.
	QueueDepth int
	// PickPolicy selects which class a freed execution slot goes to when
	// several classes have queued queries: StrictPriority (the default —
	// Interactive ahead of Batch at grant time, no in-flight preemption)
	// or WeightedFair (slot grants proportional to class weights).
	// With a single class in use both degenerate to plain FIFO, the
	// pre-multiclass behavior.
	PickPolicy PickPolicy
	// Classes tunes admission per priority class, indexed by QueryClass
	// (Classes[Interactive], Classes[Batch]). Zero values inherit the
	// global defaults; see ClassConfig.
	Classes [NumClasses]ClassConfig
	// MemoryPolicy selects how the broker sizes per-query memory grants
	// out of MemoryPages. The default, MemoryStatic, gives every query
	// MemoryPages/MaxConcurrentQueries — deterministic, so per-query
	// virtual-clock accounting is bit-identical however queries overlap.
	// MemoryGreedy adapts grants to instantaneous load instead.
	MemoryPolicy MemoryPolicy
	// QueryTimeout, when positive, bounds each session's total time
	// (queueing included) unless its context already carries an earlier
	// deadline.
	QueryTimeout time.Duration
}

// KernelMode selects the cache-conscious kernel setting (see
// Options.CacheKernels).
type KernelMode int

// Kernel modes. KernelsAuto is the zero value and currently means on.
const (
	KernelsAuto KernelMode = iota
	KernelsOn
	KernelsOff
)

// kernelsOff reports whether the options disable the cache kernels.
func (o Options) kernelsOff() bool { return o.CacheKernels == KernelsOff }

// MemoryPolicy selects the broker's grant sizing (see Options).
type MemoryPolicy = session.Policy

// Memory policies.
const (
	MemoryStatic = session.StaticShare
	MemoryGreedy = session.Greedy
)

// QueryClass is an admission priority class; sessions carry one
// (WithClass) and the scheduler and broker treat classes separately.
type QueryClass = session.Class

// Priority classes. Sessions default to Batch; tag short terminal-style
// queries Interactive so they are never stuck behind bulk scans.
const (
	Interactive = session.Interactive
	Batch       = session.Batch
	// NumClasses sizes per-class arrays such as Options.Classes.
	NumClasses = int(session.NumClasses)
)

// PickPolicy selects how a freed execution slot chooses among queued
// classes (see Options.PickPolicy).
type PickPolicy = session.PickPolicy

// Pick policies.
const (
	StrictPriority = session.StrictPriority
	WeightedFair   = session.WeightedFair
)

// ClassConfig tunes one priority class's admission (see Options.Classes).
type ClassConfig struct {
	// QueueDepth bounds this class's admission queue. 0 inherits
	// Options.QueueDepth; negative means no queue.
	QueueDepth int
	// Weight is the class's slot share under WeightedFair: over time a
	// backlogged class receives freed slots in proportion to its weight.
	// 0 means the default (4 for Interactive, 1 for Batch); ignored
	// under StrictPriority.
	Weight int
	// ReservedPages sets aside that many of MemoryPages for exclusive
	// use by this class's memory grants: other classes' grants can never
	// draw them, so bulk work cannot starve this class of |M|. Under the
	// static policy a class's grant is
	// (general + reserved)/MaxConcurrentQueries, which keeps any
	// admitted mix fitting without memory waits. 0 means no reservation.
	ReservedPages int
}

// ErrOverloaded is returned when a query cannot even be queued: all
// execution slots are busy and its class's admission queue is full. The
// concrete error is an *OverloadError carrying the shedding class and
// depth; errors.Is(err, ErrOverloaded) matches it.
var ErrOverloaded = session.ErrOverloaded

// OverloadError is the concrete ErrOverloaded rejection, reporting which
// class shed the query and the configured queue depth that was full. Use
// errors.As to recover it and distinguish interactive from batch
// shedding.
type OverloadError = session.OverloadError

// MinGrantPages is the smallest memory grant the broker hands out and
// the floor ShedMemory can never revoke past: any §3 operator needs two
// pages (one input, one output) to finish.
const MinGrantPages = session.MinGrant

// FaultInjector is a deterministic, seeded schedule of device faults —
// transient errors, permanent failures, latency stalls — consulted on
// every charged IO of the database's simulated disk. Build one with
// NewFaultInjector and its chainable rule methods, then install it with
// Database.ArmFaults.
type FaultInjector = fault.Injector

// NewFaultInjector returns an empty fault schedule; equal seeds replay
// identical fault sequences. See the fault package for the rule builders.
var NewFaultInjector = fault.NewInjector

// Fault taxonomy sentinels: every injected error matches ErrInjectedFault
// via errors.Is, and exactly one of the two refinements. Transient faults
// are absorbed by the engine's bounded retry (and by WithRetry sessions);
// permanent faults always surface.
var (
	ErrInjectedFault  = simio.ErrInjected
	ErrFaultTransient = fault.ErrTransient
	ErrFaultPermanent = fault.ErrPermanent
)

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.MemoryPages == 0 {
		o.MemoryPages = 1000
	}
	if o.Params == (Params{}) {
		o.Params = cost.DefaultParams()
	}
	if o.MaxConcurrentQueries == 0 {
		o.MaxConcurrentQueries = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	for c := range o.Classes {
		if o.Classes[c].QueueDepth == 0 {
			o.Classes[c].QueueDepth = o.QueueDepth
		}
		if o.Classes[c].Weight == 0 {
			if QueryClass(c) == Interactive {
				o.Classes[c].Weight = 4
			} else {
				o.Classes[c].Weight = 1
			}
		}
	}
	return o
}

// Database is a main-memory relational database with simulated IO cost
// accounting. It is safe for concurrent use: queries pass through an
// admission scheduler (bounded slots plus a FIFO wait queue), receive a
// memory grant brokered out of MemoryPages, and take relation-level
// shared intents through the §5.2 lock table, while loads and DDL take
// exclusive intents. With the default Options the scheduler admits one
// query at a time, which reproduces the original serial engine's
// accounting exactly.
type Database struct {
	opts   Options
	clock  *cost.Clock
	disk   *simio.Disk
	cat    *catalog.Catalog
	sched  *session.Scheduler
	broker *session.Broker
	locks  *session.LockTable
	sorts  sortActivity
	replay replayActivity

	// Replication plumbing (cluster.go). ship, when set on a cluster
	// primary, receives every durable mutation — in serialization order,
	// invoked while the mutating call still holds its exclusive relation
	// intent; it may fail (a fenced or just-demoted primary), failing the
	// mutating call. readOnly marks a replica database: exclusive intents
	// are refused at the lock layer except for the replication applier
	// (applying set around each applied op) and session-private
	// temporaries (registered in localRes). Both are atomic because
	// promotion flips them at runtime while sessions are live; cluster
	// back-points to the owning Cluster so refusals can carry the current
	// epoch and primary hint.
	ship     atomic.Pointer[shipFn]
	readOnly atomic.Bool
	applying atomic.Bool
	localRes sync.Map // resource id -> struct{}: replica-local relations
	cluster  *Cluster // set once at OpenCluster, before any use
}

// shipFn receives one durable mutation for replication. A non-nil error
// aborts the mutating statement — the op was not acknowledged and did
// not replicate.
type shipFn func(op shipOp) error

// sortActivity accumulates relation-sort telemetry across sessions (the
// SessionMetrics Sort* fields).
type sortActivity struct {
	sorts       atomic.Uint64
	runs        atomic.Uint64
	mergePasses atomic.Uint64
	inMemory    atomic.Uint64
}

func (a *sortActivity) record(runs, mergePasses int, inMemory bool) {
	a.sorts.Add(1)
	a.runs.Add(uint64(runs))
	a.mergePasses.Add(uint64(mergePasses))
	if inMemory {
		a.inMemory.Add(1)
	}
}

// replayActivity accumulates crash-recovery telemetry across observed
// recoveries (the SessionMetrics Recovery* fields).
type replayActivity struct {
	recoveries     atomic.Uint64
	segsScanned    atomic.Uint64
	segsSkipped    atomic.Uint64
	workers        atomic.Uint64 // width of the most recent replay
	compactedBytes atomic.Int64
	virtualNanos   atomic.Int64
}

// ObserveRecovery folds a crash-recovery report into the database's
// session metrics, so operators watching SessionMetrics see replay
// effort — segments scanned versus skipped, the fan-out width, bytes
// reclaimed by log compaction, and virtual replay time — alongside query
// activity.
func (db *Database) ObserveRecovery(info RecoveryInfo) {
	db.replay.recoveries.Add(1)
	db.replay.segsScanned.Add(uint64(info.SegmentsScanned))
	db.replay.segsSkipped.Add(uint64(info.SegmentsSkipped))
	db.replay.workers.Store(uint64(info.ReplayWorkers))
	db.replay.compactedBytes.Add(info.CompactedBytes)
	db.replay.virtualNanos.Add(int64(info.Virtual))
}

// Open creates an empty database.
func Open(opts Options) (*Database, error) {
	opts = opts.withDefaults()
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.PageSize < 64 {
		return nil, fmt.Errorf("mmdb: page size %d too small", opts.PageSize)
	}
	if opts.MemoryPages < 2 {
		return nil, fmt.Errorf("mmdb: need at least 2 memory pages")
	}
	if opts.MaxConcurrentQueries < 0 {
		return nil, fmt.Errorf("mmdb: MaxConcurrentQueries %d must be positive", opts.MaxConcurrentQueries)
	}
	clock := cost.NewClock(opts.Params)
	disk := simio.NewDisk(clock, opts.PageSize)
	var limits [session.NumClasses]session.ClassLimits
	var reserved [session.NumClasses]int
	for c := range limits {
		limits[c] = session.ClassLimits{
			QueueDepth: opts.Classes[c].QueueDepth,
			Weight:     opts.Classes[c].Weight,
		}
		reserved[c] = opts.Classes[c].ReservedPages
	}
	return &Database{
		opts:   opts,
		clock:  clock,
		disk:   disk,
		cat:    catalog.New(disk),
		sched:  session.NewScheduler(opts.MaxConcurrentQueries, opts.PickPolicy, limits),
		broker: session.NewBroker(opts.MemoryPages, opts.MaxConcurrentQueries, opts.MemoryPolicy, reserved),
		locks:  session.NewLockTable(),
	}, nil
}

// MustOpen is Open that panics on error.
func MustOpen(opts Options) *Database {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// Options returns the effective configuration.
func (db *Database) Options() Options { return db.opts }

// MemoryPages returns |M|.
func (db *Database) MemoryPages() int { return db.opts.MemoryPages }

// Counters returns the operations charged so far.
func (db *Database) Counters() Counters { return db.clock.Counters() }

// VirtualTime returns the elapsed virtual time.
func (db *Database) VirtualTime() time.Duration { return db.clock.Now() }

// ResetClock zeroes the virtual clock and counters (between experiments).
func (db *Database) ResetClock() { db.clock.Reset() }

// ArmFaults installs a fault-injection schedule on the database's
// simulated disk: every subsequent charged IO (base relations, spill
// files, sort runs — through any session view) consults it. ArmFaults(nil)
// disarms. Chaos testing only; the injector is deterministic, so a given
// seed replays the same fault sequence against the same workload.
func (db *Database) ArmFaults(inj *FaultInjector) {
	if inj == nil {
		db.disk.SetInjector(nil)
		return
	}
	db.disk.SetInjector(inj)
}

// isTempRelation reports whether name is a session-private temporary
// (the SQL layer's filtered materializations): never replicated, and
// permitted on read-only replicas.
func isTempRelation(name string) bool { return strings.HasPrefix(name, "sql.tmp.") }

// CreateRelation registers an empty relation. Like every other durable
// mutation it takes an exclusive relation intent, so a fencing guard or
// quiesce barrier sees creates too.
func (db *Database) CreateRelation(name string, schema *Schema) (*Relation, error) {
	if isTempRelation(name) {
		// Session-private temporaries are always database-local: register
		// before locking so a write-fenced database (replica, or a primary
		// mid-promotion) still admits the exclusive intent.
		db.localRes.Store(catalog.ResourceID(name), struct{}{})
	} else if db.readOnly.Load() && !db.applying.Load() {
		return nil, db.writeRefused()
	}
	unlock, err := db.lockRelations(context.Background(), lock.Exclusive, name)
	if err != nil {
		return nil, err
	}
	defer unlock()
	r, err := db.cat.Create(name, schema)
	if err != nil {
		return nil, err
	}
	if err := db.shipOp(shipOp{kind: opCreateRelation, rel: name, schema: schema}); err != nil {
		_ = db.cat.Drop(name)
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// Relation looks up an existing relation.
func (db *Database) Relation(name string) (*Relation, error) {
	r, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// Relations lists all relation names.
func (db *Database) Relations() []string { return db.cat.Names() }

// DropRelation removes a relation and its storage, waiting for in-flight
// queries over it to drain (an exclusive relation intent).
func (db *Database) DropRelation(name string) error {
	unlock, err := db.lockRelations(context.Background(), lock.Exclusive, name)
	if err != nil {
		return err
	}
	defer unlock()
	// Ship before dropping: a refused ship (fenced primary) must leave
	// the relation in place, and drops of local-only relations
	// (temporaries, adopted files) must not reach replicas — shipOp
	// checks the local marker before it is forgotten. The existence
	// check first keeps a nonexistent-relation error from replicating.
	if _, err := db.cat.Get(name); err != nil {
		return err
	}
	if err := db.shipOp(shipOp{kind: opDropRelation, rel: name}); err != nil {
		return err
	}
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	db.localRes.Delete(catalog.ResourceID(name))
	return nil
}

// adoptFile registers an internally produced heap file (for tests, the
// workload generators, and planner outputs). Adopted files are always
// database-local: they never replicate — a cluster primary's planner
// temporaries don't exist on replicas, so their mutations and drops must
// not ship — and on a replica they mark relations the producing session
// may mutate and drop despite the read-only guard.
func (db *Database) adoptFile(f *heap.File) (*Relation, error) {
	r, err := db.cat.Adopt(f)
	if err != nil {
		return nil, err
	}
	db.localRes.Store(catalog.ResourceID(r.Name), struct{}{})
	return &Relation{db: db, rel: r}, nil
}

// shipOp forwards a mutation to the cluster ship hook, if any. Temporaries
// and local (adopted) relations stay local: every database — primary or
// replica — materializes its own. A ship refusal (the database was fenced
// or demoted mid-call) fails the mutation.
func (db *Database) shipOp(op shipOp) error {
	fn := db.ship.Load()
	if fn == nil || isTempRelation(op.rel) {
		return nil
	}
	if _, ok := db.localRes.Load(catalog.ResourceID(op.rel)); ok {
		return nil
	}
	return (*fn)(op)
}

// writeRefused builds the error a refused write surfaces: on a clustered
// database a *NotPrimaryError carrying the current epoch and primary
// hint (it still matches ErrReadOnlyReplica via errors.Is), a plain
// ErrReadOnlyReplica otherwise.
func (db *Database) writeRefused() error {
	if c := db.cluster; c != nil {
		return c.notPrimaryErr()
	}
	return ErrReadOnlyReplica
}

// lockRelations takes a one-shot relation-level intent lock on every named
// relation (in canonical resource order, to stay deadlock-free) and
// returns the release func. Queries take lock.Shared; loads and DDL take
// lock.Exclusive.
func (db *Database) lockRelations(ctx context.Context, mode lock.Mode, names ...string) (func(), error) {
	txn := db.locks.NextID()
	resources := make([]uint64, len(names))
	for i, n := range names {
		resources[i] = catalog.ResourceID(n)
	}
	if _, err := db.locks.AcquireAll(ctx, txn, resources, mode); err != nil {
		return nil, err
	}
	return func() { db.locks.Release(txn) }, nil
}

// ClassMetrics reports one priority class's admission activity: volume
// counters, wall time spent queued, and queued-time quantiles read off
// the scheduler's per-class log₂-µs histogram (upper bucket edges —
// factor-of-two resolution, meant for tail monitoring).
type ClassMetrics struct {
	Admitted    uint64
	Rejected    uint64
	Canceled    uint64
	Completed   uint64
	QueuedTotal time.Duration
	QueuedMax   time.Duration
	QueuePeak   int // high-water mark of this class's wait queue

	QueuedP50 time.Duration
	QueuedP95 time.Duration
	QueuedP99 time.Duration

	ReservedPages int // pages only this class's grants may draw
}

// SessionMetrics reports the admission scheduler's and memory broker's
// activity counters: how many queries were admitted, rejected and
// completed (totals plus the per-class split), wall time spent queued,
// and the grant accounting (the peak can never exceed MemoryPages — the
// broker's no-over-grant invariant).
type SessionMetrics struct {
	Admitted    uint64
	Rejected    uint64
	Canceled    uint64
	Completed   uint64
	QueuedTotal time.Duration
	QueuedMax   time.Duration
	QueuePeak   int // high-water mark of total queued waiters, all classes
	RunningPeak int

	// PerClass splits the admission counters by priority class, indexed
	// by QueryClass (PerClass[Interactive], PerClass[Batch]).
	PerClass [NumClasses]ClassMetrics

	MemoryPages      int    // the brokered budget |M|
	GrantedPages     int    // pages currently out on grant
	PeakGrantedPages int    // high-water mark of simultaneous grants
	Grants           uint64 // grants issued so far

	// Cumulative relation-sort activity (every sort-merge join input and
	// OrderBy call): sorts executed, initial runs formed, intermediate
	// merge passes run, and sorts that completed fully in memory.
	Sorts           uint64
	SortRuns        uint64
	SortMergePasses uint64
	SortsInMemory   uint64

	// Crash-replay telemetry folded in via ObserveRecovery: recoveries
	// observed, segment files scanned versus skipped below the commit.meta
	// horizon, the most recent replay's fan-out width, bytes reclaimed by
	// §5.6 log compaction, and total virtual replay time.
	Recoveries              uint64
	RecoverySegmentsScanned uint64
	RecoverySegmentsSkipped uint64
	RecoveryReplayWorkers   int
	RecoveryCompactedBytes  int64
	RecoveryVirtual         time.Duration
}

// SessionMetrics returns a snapshot of scheduler and broker activity.
func (db *Database) SessionMetrics() SessionMetrics {
	m := db.sched.Metrics()
	t := m.Total()
	sm := SessionMetrics{
		Admitted:    t.Admitted,
		Rejected:    t.Rejected,
		Canceled:    t.Canceled,
		Completed:   t.Completed,
		QueuedTotal: t.QueuedTotal,
		QueuedMax:   t.QueuedMax,
		QueuePeak:   m.QueuePeak,
		RunningPeak: m.RunningPeak,

		MemoryPages:      db.broker.Total(),
		GrantedPages:     db.broker.Granted(),
		PeakGrantedPages: db.broker.Peak(),
		Grants:           db.broker.Grants(),

		Sorts:           db.sorts.sorts.Load(),
		SortRuns:        db.sorts.runs.Load(),
		SortMergePasses: db.sorts.mergePasses.Load(),
		SortsInMemory:   db.sorts.inMemory.Load(),

		Recoveries:              db.replay.recoveries.Load(),
		RecoverySegmentsScanned: db.replay.segsScanned.Load(),
		RecoverySegmentsSkipped: db.replay.segsSkipped.Load(),
		RecoveryReplayWorkers:   int(db.replay.workers.Load()),
		RecoveryCompactedBytes:  db.replay.compactedBytes.Load(),
		RecoveryVirtual:         time.Duration(db.replay.virtualNanos.Load()),
	}
	for c := range sm.PerClass {
		pc := m.PerClass[c]
		sm.PerClass[c] = ClassMetrics{
			Admitted:      pc.Admitted,
			Rejected:      pc.Rejected,
			Canceled:      pc.Canceled,
			Completed:     pc.Completed,
			QueuedTotal:   pc.QueuedTotal,
			QueuedMax:     pc.QueuedMax,
			QueuePeak:     pc.QueuePeak,
			QueuedP50:     pc.Queued.Quantile(0.50),
			QueuedP95:     pc.Queued.Quantile(0.95),
			QueuedP99:     pc.Queued.Quantile(0.99),
			ReservedPages: db.broker.Reserved(QueryClass(c)),
		}
	}
	return sm
}
