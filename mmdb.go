// Package mmdb is a main-memory relational database engine reproducing
// "Implementation Techniques for Main Memory Database Systems" (DeWitt,
// Katz, Olken, Shapiro, Stonebraker, Wood — SIGMOD 1984).
//
// The engine bundles the paper's building blocks behind one API:
//
//   - relations stored as paged heap files with AVL and B+-tree indexes
//     (§2), over a simulated disk that charges every operation to a
//     deterministic virtual clock using the paper's Table 2 hardware
//     parameters;
//   - the four §3 join algorithms (sort-merge, simple hash, GRACE hash,
//     hybrid hash) plus hash-based aggregation and duplicate elimination
//     (§3.9), each both executable and analytically costed;
//   - a Selinger-style access planner implementing the §4 observation
//     that large memories collapse planning to selectivity ordering over
//     hash joins;
//   - a §5 recovery simulator: group commit with pre-committed
//     transactions, partitioned logs, stable-memory log compression,
//     fuzzy checkpointing and crash recovery.
//
// Start with Open, load relations, then use Join, Aggregate, Lookup, and
// Plan. The cmd/mmdbench binary regenerates every table and figure of the
// paper; see EXPERIMENTS.md for the measured results.
package mmdb

import (
	"fmt"
	"time"

	"mmdb/internal/catalog"
	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Re-exported schema building blocks.
type (
	// Schema describes a relation's fixed-width tuple layout.
	Schema = tuple.Schema
	// Field is one typed column.
	Field = tuple.Field
	// Tuple is an encoded row.
	Tuple = tuple.Tuple
	// Value is a dynamically typed column value.
	Value = tuple.Value
	// Params is the hardware characterization (Table 2/3).
	Params = cost.Params
	// Counters tallies primitive operations charged to the virtual clock.
	Counters = cost.Counters
)

// Column kinds.
const (
	Int64   = tuple.Int64
	Float64 = tuple.Float64
	String  = tuple.String
)

// Value constructors, re-exported.
var (
	IntValue    = tuple.IntValue
	FloatValue  = tuple.FloatValue
	StringValue = tuple.StringValue
	NewSchema   = tuple.NewSchema
	MustSchema  = tuple.MustSchema
)

// DefaultParams returns the paper's Table 2 parameter settings.
func DefaultParams() Params { return cost.DefaultParams() }

// Options configures a Database.
type Options struct {
	// PageSize is the storage page size in bytes (the paper's P).
	// 0 means 4096.
	PageSize int
	// MemoryPages is |M|, the pages of main memory query operators may
	// use. 0 means 1000 (4 MB at 4 KB pages, the paper's §3.2 example).
	MemoryPages int
	// Params is the virtual-clock hardware model. Zero value means
	// DefaultParams.
	Params Params
	// Parallelism bounds the worker goroutines the parallel operators
	// (the partition phases of GRACE and hybrid hash joins, spilled hash
	// aggregation) may use. 0 or 1 means serial execution, identical to
	// the original single-goroutine engine; a negative value means one
	// worker per CPU (GOMAXPROCS). Virtual time and operation counters
	// are the same at every setting — parallelism trades wall-clock time
	// only, never the paper's accounting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.MemoryPages == 0 {
		o.MemoryPages = 1000
	}
	if o.Params == (Params{}) {
		o.Params = cost.DefaultParams()
	}
	return o
}

// Database is a main-memory relational database with simulated IO cost
// accounting. Not safe for concurrent use.
type Database struct {
	opts  Options
	clock *cost.Clock
	disk  *simio.Disk
	cat   *catalog.Catalog
}

// Open creates an empty database.
func Open(opts Options) (*Database, error) {
	opts = opts.withDefaults()
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.PageSize < 64 {
		return nil, fmt.Errorf("mmdb: page size %d too small", opts.PageSize)
	}
	if opts.MemoryPages < 2 {
		return nil, fmt.Errorf("mmdb: need at least 2 memory pages")
	}
	clock := cost.NewClock(opts.Params)
	disk := simio.NewDisk(clock, opts.PageSize)
	return &Database{
		opts:  opts,
		clock: clock,
		disk:  disk,
		cat:   catalog.New(disk),
	}, nil
}

// MustOpen is Open that panics on error.
func MustOpen(opts Options) *Database {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// Options returns the effective configuration.
func (db *Database) Options() Options { return db.opts }

// MemoryPages returns |M|.
func (db *Database) MemoryPages() int { return db.opts.MemoryPages }

// Counters returns the operations charged so far.
func (db *Database) Counters() Counters { return db.clock.Counters() }

// VirtualTime returns the elapsed virtual time.
func (db *Database) VirtualTime() time.Duration { return db.clock.Now() }

// ResetClock zeroes the virtual clock and counters (between experiments).
func (db *Database) ResetClock() { db.clock.Reset() }

// CreateRelation registers an empty relation.
func (db *Database) CreateRelation(name string, schema *Schema) (*Relation, error) {
	r, err := db.cat.Create(name, schema)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// Relation looks up an existing relation.
func (db *Database) Relation(name string) (*Relation, error) {
	r, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}

// Relations lists all relation names.
func (db *Database) Relations() []string { return db.cat.Names() }

// DropRelation removes a relation and its storage.
func (db *Database) DropRelation(name string) error { return db.cat.Drop(name) }

// adoptFile registers an internally produced heap file (for tests and the
// workload generators).
func (db *Database) adoptFile(f *heap.File) (*Relation, error) {
	r, err := db.cat.Adopt(f)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: r}, nil
}
