package seglog

import (
	"encoding/binary"
	"hash/crc32"
	"time"
)

// CommitPos is the persisted durable position of one log device: the
// highest {segment, offset} whose page write has completed, the last LSN
// on that page, and the engine's truncation horizon at publish time.
// Recovery may skip any segment whose records all fall below Horizon —
// the horizon is the min over the durable LSN, the checkpoint recovery
// start point, and the first LSN of every unresolved transaction, so
// everything below it is already reflected in the checkpoint snapshot
// and belongs to resolved transactions.
type CommitPos struct {
	Epoch   uint64 // monotone write counter (dual-slot arbitration)
	Seg     uint64 // segment index of the durable frontier
	Off     uint64 // pages durable within that segment
	Durable uint64 // last LSN on the durable frontier page
	Horizon uint64 // safe replay horizon at publish time
}

// commitPosSize is the on-medium size of an encoded CommitPos: five
// 8-byte fields plus a CRC32 trailer.
const commitPosSize = 5*8 + 4

// EncodeCommitPos frames the position with a CRC32 trailer so a torn
// commit.meta slot write is detectable.
func EncodeCommitPos(p CommitPos) []byte {
	buf := make([]byte, commitPosSize)
	binary.BigEndian.PutUint64(buf[0:], p.Epoch)
	binary.BigEndian.PutUint64(buf[8:], p.Seg)
	binary.BigEndian.PutUint64(buf[16:], p.Off)
	binary.BigEndian.PutUint64(buf[24:], p.Durable)
	binary.BigEndian.PutUint64(buf[32:], p.Horizon)
	binary.BigEndian.PutUint32(buf[40:], crc32.ChecksumIEEE(buf[:40]))
	return buf
}

// DecodeCommitPos validates the CRC frame and returns the position.
// A short or corrupt image (a torn slot write) reports ok=false.
func DecodeCommitPos(buf []byte) (CommitPos, bool) {
	if len(buf) < commitPosSize {
		return CommitPos{}, false
	}
	if crc32.ChecksumIEEE(buf[:40]) != binary.BigEndian.Uint32(buf[40:]) {
		return CommitPos{}, false
	}
	return CommitPos{
		Epoch:   binary.BigEndian.Uint64(buf[0:]),
		Seg:     binary.BigEndian.Uint64(buf[8:]),
		Off:     binary.BigEndian.Uint64(buf[16:]),
		Durable: binary.BigEndian.Uint64(buf[24:]),
		Horizon: binary.BigEndian.Uint64(buf[32:]),
	}, true
}

// metaSlot is one of the two ping-pong commit.meta slots. A slot is
// rewritten in place; because writes alternate slots, at most one slot is
// ever mid-write, and the other still holds a valid (older-epoch)
// position. The reader arbitrates by CRC validity then highest epoch.
type metaSlot struct {
	img     []byte
	start   time.Duration
	done    time.Duration
	written bool
}

// metaState tracks the dual-slot commit.meta file of one device.
type metaState struct {
	slots     [2]metaSlot
	epoch     uint64
	last      CommitPos // last content issued (dedup)
	haveLast  bool
	busyUntil time.Duration
	windows   []Window
	writes    int64
}

// publish issues a meta slot rewrite for pos if it differs from the last
// issued content. Writes are serviced serially on the device's meta lane.
func (m *metaState) publish(now time.Duration, pos CommitPos, writeTime time.Duration) {
	if m.haveLast && pos.Seg == m.last.Seg && pos.Off == m.last.Off &&
		pos.Durable == m.last.Durable && pos.Horizon == m.last.Horizon {
		return
	}
	m.epoch++
	pos.Epoch = m.epoch
	m.last, m.haveLast = pos, true
	start := now
	if m.busyUntil > start {
		start = m.busyUntil
	}
	done := start + writeTime
	m.busyUntil = done
	m.slots[m.epoch%2] = metaSlot{img: EncodeCommitPos(pos), start: start, done: done, written: true}
	m.windows = append(m.windows, Window{Start: start, Done: done})
	m.writes++
}

// durable arbitrates the two slots as seen by a crash at time t: a slot
// whose write completed contributes its full image; a slot mid-write at t
// contributes only the written prefix (which fails the CRC). The valid
// candidate with the highest epoch wins. ok=false means no valid slot —
// the device never published, and recovery must scan from the start.
func (m *metaState) durable(t time.Duration) (CommitPos, bool) {
	var best CommitPos
	found := false
	for _, s := range m.slots {
		if !s.written || s.start >= t {
			continue
		}
		img := s.img
		if s.done > t {
			// Torn slot rewrite: only a prefix proportional to the write's
			// progress reached the medium.
			frac := float64(t-s.start) / float64(s.done-s.start)
			img = img[:int(frac*float64(len(img)))]
		}
		pos, ok := DecodeCommitPos(img)
		if !ok {
			continue
		}
		if !found || pos.Epoch > best.Epoch {
			best, found = pos, true
		}
	}
	return best, found
}
