// Package seglog arranges one log device's page writes into a sequence of
// bounded segment files plus a dual-slot, CRC-framed commit.meta recording
// the durable {segment, offset, LSN} horizon (§5.5/§5.6 of the paper;
// the seg/commit.meta contract of real segmented WALs adapted to simulated
// devices).
//
// Each device owns its own directory: segment spaces are named
// "<device>/seg-NNNNNN" with a "/" separator, so devices log0 and log10
// can never collide or interleave files (a bare prefix match on "log1"
// would also match "log10"). Checkpoint truncation deletes whole segments
// instead of compacting in place, and a background compactor (driven by
// the wal layer) rewrites cold segments keeping only the newest committed
// value per record slot.
package seglog

import (
	"fmt"
	"sort"
	"time"
)

// SegmentSpace names the simio space of one segment file. The "/"
// separator is load-bearing: it keeps device namespaces disjoint even
// when one device name is a prefix of another (log1 vs log10).
func SegmentSpace(device string, index uint64) string {
	return fmt.Sprintf("%s/seg-%06d", device, index)
}

// MetaSpace names the device's commit.meta file.
func MetaSpace(device string) string { return device + "/commit.meta" }

// Window is a virtual-time interval during which a write was in flight —
// exposed so chaos tests can aim crashes at segment rotations, commit.meta
// rewrites, and compaction installs.
type Window struct {
	Start time.Duration
	Done  time.Duration
}

// PageData is one page image tagged with the LSN range of the records it
// carries.
type PageData struct {
	Img      []byte
	FirstLSN uint64
	LastLSN  uint64
}

// segPage mirrors the wal device's page bookkeeping inside a segment.
type segPage struct {
	img      []byte
	firstLSN uint64
	lastLSN  uint64
	start    time.Duration
	done     time.Duration
	torn     int  // >0: only this prefix reached the medium
	lost     bool // the write never completed
}

type segment struct {
	index      uint64
	pages      []segPage
	full       bool // rotated away: no further appends
	compacted  bool // produced by (or already considered for) compaction
	compacting bool // an in-flight compaction run covers this segment
}

func (s *segment) bytes() int64 {
	var n int64
	for _, p := range s.pages {
		n += int64(len(p.img))
	}
	return n
}

// Stats counts directory activity.
type Stats struct {
	SegmentsCreated int64
	SegmentsDeleted int64
	DeletedBytes    int64
	Compactions     int64 // completed compaction runs
	CompactedBytes  int64 // bytes reclaimed by completed compactions
	MetaWrites      int64
}

// compaction is one in-flight or completed compactor run.
type compaction struct {
	first, last uint64 // inclusive segment index range being replaced
	start, done time.Duration
	saved       int64
	installed   bool
}

// Dir is the segment directory of one log device. All methods must be
// called from the simulator's event goroutine; views taken at a crash
// instant t reconstruct exactly what the medium held at t.
type Dir struct {
	device    string
	segPages  int
	writeTime time.Duration // meta/compaction lane service time per page

	segs      []*segment
	nextIndex uint64
	meta      metaState
	rotations []Window
	compBusy  time.Duration
	comps     []*compaction
	stats     Stats
}

// NewDir creates the directory for a device whose segments hold
// segmentPages page images each. writeTime is the service time of one
// page-sized write on the device's metadata/compaction lane.
func NewDir(device string, segmentPages int, writeTime time.Duration) *Dir {
	if segmentPages < 1 {
		segmentPages = 1
	}
	return &Dir{device: device, segPages: segmentPages, writeTime: writeTime}
}

// Device returns the owning device name.
func (d *Dir) Device() string { return d.device }

// SegmentPages returns the segment capacity in pages.
func (d *Dir) SegmentPages() int { return d.segPages }

// Stats returns a snapshot of directory statistics.
func (d *Dir) Stats() Stats { return d.stats }

// Append records one device page write into the current segment, rotating
// to a fresh segment when the current one is full. Rotation is
// torn-write-safe by construction: a segment's first page is an ordinary
// logged page write — if it tears, the per-record CRCs cut the log there
// and the previous segments are untouched.
func (d *Dir) Append(img []byte, firstLSN, lastLSN uint64, start, done time.Duration, torn int, lost bool) {
	cur := d.tail()
	if cur == nil || cur.full || len(cur.pages) >= d.segPages {
		if cur != nil {
			cur.full = true
		}
		cur = &segment{index: d.nextIndex}
		d.nextIndex++
		d.segs = append(d.segs, cur)
		d.stats.SegmentsCreated++
		if cur.index > 0 {
			d.rotations = append(d.rotations, Window{Start: start, Done: done})
		}
	}
	cp := make([]byte, len(img))
	copy(cp, img)
	cur.pages = append(cur.pages, segPage{
		img: cp, firstLSN: firstLSN, lastLSN: lastLSN,
		start: start, done: done, torn: torn, lost: lost,
	})
	if len(cur.pages) >= d.segPages {
		cur.full = true
	}
}

func (d *Dir) tail() *segment {
	if len(d.segs) == 0 {
		return nil
	}
	return d.segs[len(d.segs)-1]
}

// durablePos computes the durable frontier at time now: the last page
// whose write completed, walking segments in order (device page writes
// are FIFO, so completion is a prefix).
func (d *Dir) durablePos(now time.Duration) (seg, off, lsn uint64) {
	if len(d.segs) > 0 {
		seg = d.segs[0].index
	}
	for _, s := range d.segs {
		n := 0
		for _, p := range s.pages {
			if p.lost || p.done > now {
				break
			}
			n++
			lsn = p.lastLSN
		}
		if n > 0 {
			seg, off = s.index, uint64(n)
		}
		if n < len(s.pages) {
			return seg, off, lsn
		}
	}
	return seg, off, lsn
}

// Publish issues a commit.meta rewrite recording the durable frontier at
// now and the engine's current truncation horizon. Identical content is
// not rewritten. The two slots alternate, so a crash mid-rewrite always
// leaves the other slot's older (and still safe: Horizon only grows)
// position intact.
func (d *Dir) Publish(now time.Duration, horizon uint64) {
	seg, off, lsn := d.durablePos(now)
	before := d.meta.writes
	d.meta.publish(now, CommitPos{Seg: seg, Off: off, Durable: lsn, Horizon: horizon}, d.writeTime)
	d.stats.MetaWrites += d.meta.writes - before
}

// DeleteBelow deletes leading segments that are full, fully durable by
// now, and whose every record falls below lsn — checkpoint truncation as
// segment-file deletion. Segments covered by an in-flight compaction are
// left for the compactor. It returns the segments and bytes reclaimed.
func (d *Dir) DeleteBelow(now time.Duration, lsn uint64) (segsDeleted int, bytesDeleted int64) {
	i := 0
	for i < len(d.segs) {
		s := d.segs[i]
		if s.compacting || !s.full || !d.segDurable(s, now) || !d.segBelow(s, lsn) {
			break
		}
		segsDeleted++
		bytesDeleted += s.bytes()
		i++
	}
	if i > 0 {
		d.segs = append([]*segment(nil), d.segs[i:]...)
		d.stats.SegmentsDeleted += int64(segsDeleted)
		d.stats.DeletedBytes += bytesDeleted
	}
	return segsDeleted, bytesDeleted
}

func (d *Dir) segDurable(s *segment, now time.Duration) bool {
	for _, p := range s.pages {
		if p.lost || p.done > now {
			return false
		}
	}
	return true
}

func (d *Dir) segBelow(s *segment, lsn uint64) bool {
	for _, p := range s.pages {
		if p.lastLSN >= lsn {
			return false
		}
	}
	return true
}

// --- compaction support (driven by the wal layer's compactor) ---

// Candidate is a run of cold segments eligible for compaction: full,
// fully durable, every record below the resolved bound, and not the tail.
type Candidate struct {
	First, Last uint64 // inclusive segment index range
	Pages       [][]byte
	Bytes       int64
}

// CompactCandidate finds the first run of at least minSegs consecutive
// eligible segments containing at least one segment not yet considered
// for compaction. bound must not exceed the resolved-transaction bound
// (min over durable LSN + 1 and the first LSN of every transaction whose
// commit or rollback is not yet durable).
func (d *Dir) CompactCandidate(now time.Duration, bound uint64, minSegs int) (Candidate, bool) {
	if minSegs < 1 {
		minSegs = 1
	}
	runStart := -1
	fresh := false
	for i, s := range d.segs {
		eligible := i < len(d.segs)-1 && // never the tail
			s.full && !s.compacting && d.segDurable(s, now) && d.segBelow(s, bound)
		if !eligible {
			if runStart >= 0 && i-runStart >= minSegs && fresh {
				return d.candidate(runStart, i), true
			}
			runStart, fresh = -1, false
			continue
		}
		if runStart < 0 {
			runStart = i
		}
		if !s.compacted {
			fresh = true
		}
	}
	if runStart >= 0 && len(d.segs)-runStart >= minSegs && fresh {
		return d.candidate(runStart, len(d.segs)), true
	}
	return Candidate{}, false
}

func (d *Dir) candidate(lo, hi int) Candidate {
	c := Candidate{First: d.segs[lo].index, Last: d.segs[hi-1].index}
	for _, s := range d.segs[lo:hi] {
		for _, p := range s.pages {
			c.Pages = append(c.Pages, p.img)
			c.Bytes += int64(len(p.img))
		}
	}
	return c
}

// BeginCompaction marks the candidate's segments as being compacted
// (pinning them against truncation) and schedules the rewrite of
// newPages page writes on the device's compaction lane. It returns the
// virtual completion time; the caller installs the result then.
func (d *Dir) BeginCompaction(c Candidate, now time.Duration, newPages int) time.Duration {
	start := now
	if d.compBusy > start {
		start = d.compBusy
	}
	done := start + d.writeTime*time.Duration(newPages)
	d.compBusy = done
	for _, s := range d.segs {
		if s.index >= c.First && s.index <= c.Last {
			s.compacting = true
		}
	}
	d.comps = append(d.comps, &compaction{first: c.First, last: c.Last, start: start, done: done})
	return done
}

// CommitCompaction atomically replaces the candidate's segments with the
// compacted pages, grouped into segments of the directory's page budget
// reusing the replaced index range. A crash before this call sees the old
// segments untouched; a crash after sees only the replacements. pages may
// be empty (everything in the range was stale).
func (d *Dir) CommitCompaction(first, last uint64, pages []PageData, done time.Duration) {
	comp := d.findCompaction(first, last)
	lo, hi := d.indexRange(first, last)
	var oldBytes int64
	for _, s := range d.segs[lo:hi] {
		oldBytes += s.bytes()
	}
	var repl []*segment
	var cur *segment
	idx := first
	for _, pd := range pages {
		if cur == nil || len(cur.pages) >= d.segPages {
			if idx > last {
				// More output than input segments cannot happen (compaction
				// only drops records), but guard the index space anyway.
				idx = last
			}
			cur = &segment{index: idx, full: true, compacted: true}
			idx++
			repl = append(repl, cur)
		}
		cur.pages = append(cur.pages, segPage{
			img: pd.Img, firstLSN: pd.FirstLSN, lastLSN: pd.LastLSN,
			start: comp.start, done: done,
		})
	}
	var newBytes int64
	for _, s := range repl {
		newBytes += s.bytes()
	}
	out := make([]*segment, 0, len(d.segs)-(hi-lo)+len(repl))
	out = append(out, d.segs[:lo]...)
	out = append(out, repl...)
	out = append(out, d.segs[hi:]...)
	d.segs = out
	comp.installed = true
	comp.saved = oldBytes - newBytes
	d.stats.Compactions++
	d.stats.CompactedBytes += comp.saved
}

// AbortCompaction unpins the candidate's segments and marks them as
// considered, so a run with no savings is not retried every tick.
func (d *Dir) AbortCompaction(first, last uint64) {
	lo, hi := d.indexRange(first, last)
	for _, s := range d.segs[lo:hi] {
		s.compacting = false
		s.compacted = true
	}
	if comp := d.findCompaction(first, last); comp != nil {
		comp.installed = true
	}
}

func (d *Dir) findCompaction(first, last uint64) *compaction {
	for i := len(d.comps) - 1; i >= 0; i-- {
		if d.comps[i].first == first && d.comps[i].last == last && !d.comps[i].installed {
			return d.comps[i]
		}
	}
	return nil
}

func (d *Dir) indexRange(first, last uint64) (lo, hi int) {
	lo = sort.Search(len(d.segs), func(i int) bool { return d.segs[i].index >= first })
	hi = sort.Search(len(d.segs), func(i int) bool { return d.segs[i].index > last })
	return lo, hi
}

// CompactedBytesAt returns the bytes reclaimed by compactions completed
// by time t — the telemetry a crash view at t can truthfully report.
func (d *Dir) CompactedBytesAt(t time.Duration) int64 {
	var n int64
	for _, c := range d.comps {
		if c.installed && c.done <= t {
			n += c.saved
		}
	}
	return n
}

// --- crash views ---

// SegmentView is the durable image of one segment at a crash instant.
type SegmentView struct {
	Index    uint64
	Pages    [][]byte
	FirstLSN uint64 // over the surviving pages
	LastLSN  uint64
	Torn     bool // the last page is a checksum-guarded torn prefix
}

// View is the crash-time state of the whole directory: the surviving
// segments in index order plus the arbitrated commit.meta position.
type View struct {
	Device         string
	Segments       []SegmentView
	Pos            CommitPos
	HavePos        bool
	CompactedBytes int64
}

// DurableView reconstructs what a crash at time t finds on the medium.
// Device page writes are FIFO within the log lane, so the first torn,
// in-flight, or lost page ends the recoverable log: later pages of that
// segment and all later segments are dropped. exposeTorn mirrors the wal
// device's ExposeTorn: when set, the surviving prefix of an in-flight or
// torn page is included (the per-record CRCs cut it); when clear the page
// vanishes entirely.
func (d *Dir) DurableView(t time.Duration, exposeTorn bool) View {
	v := View{Device: d.device, CompactedBytes: d.CompactedBytesAt(t)}
	v.Pos, v.HavePos = d.meta.durable(t)
scan:
	for _, s := range d.segs {
		if len(s.pages) == 0 {
			continue
		}
		if s.pages[0].start >= t && s.pages[0].done > t {
			break // segment born after the crash (compaction installed later)
		}
		sv := SegmentView{Index: s.index}
		for _, p := range s.pages {
			switch {
			case p.lost:
				if exposeTorn && p.torn > 0 && p.start < t {
					sv.addPage(p.img[:p.torn], p.firstLSN, p.lastLSN)
					sv.Torn = true
				}
				d.pushSeg(&v, sv)
				break scan
			case p.done <= t:
				sv.addPage(p.img, p.firstLSN, p.lastLSN)
			case exposeTorn && p.start < t:
				frac := float64(t-p.start) / float64(p.done-p.start)
				if n := int(frac * float64(len(p.img))); n > 0 {
					sv.addPage(p.img[:n], p.firstLSN, p.lastLSN)
					sv.Torn = true
				}
				d.pushSeg(&v, sv)
				break scan
			default:
				// In-flight and hidden: the log ends here.
				d.pushSeg(&v, sv)
				break scan
			}
		}
		d.pushSeg(&v, sv)
	}
	return v
}

func (sv *SegmentView) addPage(img []byte, first, last uint64) {
	if len(sv.Pages) == 0 {
		sv.FirstLSN = first
	}
	sv.Pages = append(sv.Pages, img)
	if last > sv.LastLSN {
		sv.LastLSN = last
	}
}

func (d *Dir) pushSeg(v *View, sv SegmentView) {
	if len(sv.Pages) > 0 {
		v.Segments = append(v.Segments, sv)
	}
}

// --- chaos windows ---

// RotationWindows returns the write intervals of each non-initial
// segment's first page — the instants a crash lands "mid-rotation".
func (d *Dir) RotationWindows() []Window {
	return append([]Window(nil), d.rotations...)
}

// MetaWindows returns the commit.meta slot rewrite intervals.
func (d *Dir) MetaWindows() []Window {
	return append([]Window(nil), d.meta.windows...)
}

// CompactionWindows returns the compaction install intervals.
func (d *Dir) CompactionWindows() []Window {
	var out []Window
	for _, c := range d.comps {
		out = append(out, Window{Start: c.start, Done: c.done})
	}
	return out
}
