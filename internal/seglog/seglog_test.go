package seglog

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestCommitPosRoundTrip(t *testing.T) {
	p := CommitPos{Epoch: 7, Seg: 3, Off: 5, Durable: 991, Horizon: 800}
	buf := EncodeCommitPos(p)
	got, ok := DecodeCommitPos(buf)
	if !ok || got != p {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, p)
	}
	// Any torn prefix must fail the CRC frame.
	for n := 0; n < len(buf); n++ {
		if _, ok := DecodeCommitPos(buf[:n]); ok {
			t.Fatalf("torn prefix of %d bytes decoded as valid", n)
		}
	}
	// A flipped byte must fail too.
	buf[12] ^= 0xff
	if _, ok := DecodeCommitPos(buf); ok {
		t.Fatal("corrupt image decoded as valid")
	}
}

func TestSegmentNamingDisjointAcrossDevices(t *testing.T) {
	// log1 is a name-prefix of log10; the "/" separator must keep their
	// segment and meta namespaces disjoint.
	a := SegmentSpace("log1", 0)
	b := SegmentSpace("log10", 0)
	if a == b {
		t.Fatalf("colliding segment names: %q", a)
	}
	if a != "log1/seg-000000" || b != "log10/seg-000000" {
		t.Fatalf("unexpected names %q %q", a, b)
	}
	if MetaSpace("log1") == MetaSpace("log10") {
		t.Fatal("colliding meta names")
	}
	// No segment space of log10 may start with log1's directory prefix
	// in a way that a per-device listing would pick up.
	if got := SegmentSpace("log10", 3); got[:6] == "log1/s" {
		t.Fatalf("log10 segment %q falls inside log1/", got)
	}
}

// appendN appends n one-page writes of 8 bytes each, 10ms apart, each
// carrying a single LSN, starting at lsn0.
func appendN(d *Dir, n int, lsn0 uint64, t0 time.Duration) {
	for i := 0; i < n; i++ {
		start := t0 + time.Duration(i)*10*ms
		img := make([]byte, 8)
		img[0] = byte(lsn0 + uint64(i))
		d.Append(img, lsn0+uint64(i), lsn0+uint64(i), start, start+10*ms, 0, false)
	}
}

func TestRotationAndDurableView(t *testing.T) {
	d := NewDir("log0", 2, 10*ms)
	appendN(d, 5, 1, 0) // segments: [1,2] [3,4] [5...]
	if got := len(d.RotationWindows()); got != 2 {
		t.Fatalf("rotations = %d, want 2", got)
	}
	v := d.DurableView(1*time.Second, false)
	if len(v.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(v.Segments))
	}
	if v.Segments[0].FirstLSN != 1 || v.Segments[0].LastLSN != 2 ||
		v.Segments[2].FirstLSN != 5 || v.Segments[2].LastLSN != 5 {
		t.Fatalf("LSN tags wrong: %+v", v.Segments)
	}

	// Crash while page 3 (LSN 3, the first page of segment 1 — a rotation)
	// is mid-write: without torn exposure the log ends at LSN 2.
	v = d.DurableView(25*ms, false)
	if len(v.Segments) != 1 || v.Segments[0].LastLSN != 2 {
		t.Fatalf("mid-rotation crash view = %+v, want only seg0 (LSN 1-2)", v.Segments)
	}
	// With exposure the torn prefix of the rotated page appears, marked.
	v = d.DurableView(25*ms, true)
	if len(v.Segments) != 2 || !v.Segments[1].Torn {
		t.Fatalf("mid-rotation exposed view = %+v, want torn seg1", v.Segments)
	}
}

func TestDurableViewCutsAtLostPage(t *testing.T) {
	d := NewDir("log0", 4, 10*ms)
	appendN(d, 2, 1, 0)
	d.Append([]byte{9}, 3, 3, 20*ms, 0, 0, true) // lost write (device death)
	appendN(d, 1, 4, 30*ms)                      // issued after death; same segment
	v := d.DurableView(1*time.Second, false)
	if len(v.Segments) != 1 || v.Segments[0].LastLSN != 2 {
		t.Fatalf("view past lost page: %+v", v.Segments)
	}
}

func TestPublishAndMetaArbitration(t *testing.T) {
	d := NewDir("log0", 2, 10*ms)
	appendN(d, 4, 1, 0)
	d.Publish(25*ms, 2) // durable: pages with done<=25ms => LSNs 1,2
	v := d.DurableView(40*ms, false)
	if !v.HavePos {
		t.Fatal("no meta after publish")
	}
	if v.Pos.Durable != 2 || v.Pos.Horizon != 2 || v.Pos.Seg != 0 || v.Pos.Off != 2 {
		t.Fatalf("pos = %+v", v.Pos)
	}

	// Second publish goes to the other slot; a crash mid-rewrite must fall
	// back to the first slot's older position.
	d.Publish(45*ms, 4)
	w := d.MetaWindows()
	if len(w) != 2 {
		t.Fatalf("meta windows = %d, want 2", len(w))
	}
	mid := w[1].Start + (w[1].Done-w[1].Start)/2
	v = d.DurableView(mid, false)
	if !v.HavePos || v.Pos.Epoch != 1 || v.Pos.Horizon != 2 {
		t.Fatalf("mid-rewrite arbitration: %+v have=%v, want epoch1 horizon2", v.Pos, v.HavePos)
	}
	// After the rewrite completes the newer epoch wins.
	v = d.DurableView(w[1].Done+ms, false)
	if v.Pos.Epoch != 2 || v.Pos.Horizon != 4 {
		t.Fatalf("post-rewrite pos = %+v", v.Pos)
	}
	// Identical content must not be rewritten.
	d.Publish(200*ms, 4)
	if got := len(d.MetaWindows()); got != 3 {
		// durable frontier advanced between the publishes, so a third write
		// is legitimate; but a fourth with nothing new must not appear.
		d.Publish(210*ms, 4)
		if again := len(d.MetaWindows()); again != got {
			t.Fatalf("identical publish rewrote meta: %d -> %d", got, again)
		}
	}
}

func TestDeleteBelow(t *testing.T) {
	d := NewDir("log0", 2, 10*ms)
	appendN(d, 6, 1, 0) // segs [1,2] [3,4] [5,6]
	// Horizon 4: only segment 0 (LSNs 1-2) qualifies; segment 1 holds LSN 4.
	segs, bytes := d.DeleteBelow(1*time.Second, 4)
	if segs != 1 || bytes != 16 {
		t.Fatalf("DeleteBelow(4) = %d segs %d bytes, want 1, 16", segs, bytes)
	}
	v := d.DurableView(1*time.Second, false)
	if len(v.Segments) != 2 || v.Segments[0].Index != 1 {
		t.Fatalf("post-delete view: %+v", v.Segments)
	}
	// Horizon 7 would cover the tail, but the tail is never deleted... the
	// last segment [5,6] is full, so it IS deletable; only a non-full tail
	// survives. Check that a non-durable segment is not deleted.
	segs, _ = d.DeleteBelow(35*ms, 7) // at 35ms only seg1's first page (LSN 3) is durable
	if segs != 0 {
		t.Fatalf("deleted %d non-durable segments", segs)
	}
	st := d.Stats()
	if st.SegmentsDeleted != 1 || st.SegmentsCreated != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCompactionLifecycle(t *testing.T) {
	d := NewDir("log0", 2, 10*ms)
	appendN(d, 6, 1, 0) // segs 0,1 full + tail seg 2
	c, ok := d.CompactCandidate(1*time.Second, 5, 2)
	if !ok || c.First != 0 || c.Last != 1 || len(c.Pages) != 4 {
		t.Fatalf("candidate = %+v ok=%v", c, ok)
	}
	done := d.BeginCompaction(c, 1*time.Second, 1)
	if done != 1*time.Second+10*ms {
		t.Fatalf("done = %v", done)
	}
	// While compacting, truncation must not delete the pinned range.
	if segs, _ := d.DeleteBelow(2*time.Second, 100); segs != 0 {
		t.Fatalf("truncation deleted pinned segments: %d", segs)
	}
	// A crash before install sees the original segments.
	v := d.DurableView(done-ms, false)
	if len(v.Segments) != 3 || v.CompactedBytes != 0 {
		t.Fatalf("pre-install view: %d segs, %d compacted bytes", len(v.Segments), v.CompactedBytes)
	}
	d.CommitCompaction(c.First, c.Last, []PageData{{Img: []byte{42, 42}, FirstLSN: 2, LastLSN: 4}}, done)
	v = d.DurableView(done+ms, false)
	if len(v.Segments) != 2 || v.Segments[0].Index != 0 || len(v.Segments[0].Pages) != 1 {
		t.Fatalf("post-install view: %+v", v.Segments)
	}
	if v.CompactedBytes != 4*8-2 {
		t.Fatalf("compacted bytes = %d, want 30", v.CompactedBytes)
	}
	// No further candidate: the replacement is marked compacted and the
	// tail is excluded.
	if _, ok := d.CompactCandidate(2*time.Second, 100, 2); ok {
		t.Fatal("re-offered compacted run")
	}
}

func TestAbortCompactionMarksConsidered(t *testing.T) {
	d := NewDir("log0", 2, 10*ms)
	appendN(d, 6, 1, 0)
	c, ok := d.CompactCandidate(1*time.Second, 5, 2)
	if !ok {
		t.Fatal("no candidate")
	}
	d.BeginCompaction(c, 1*time.Second, 2)
	d.AbortCompaction(c.First, c.Last)
	if _, ok := d.CompactCandidate(2*time.Second, 5, 2); ok {
		t.Fatal("aborted run re-offered")
	}
	// And truncation works again after the abort.
	if segs, _ := d.DeleteBelow(2*time.Second, 5); segs != 2 {
		t.Fatal("truncation still pinned after abort")
	}
}
