package wal

import (
	"testing"
	"time"

	"mmdb/internal/event"
)

// streamLog builds a stable-memory log and appends n small committed
// transactions (one update each), returning the log after the simulator
// has drained.
func streamLog(t *testing.T, n int) (*event.Sim, *Log) {
	t.Helper()
	sim := &event.Sim{}
	l, err := NewLog(sim, Config{
		Policy:   StableMemory,
		Devices:  []*Device{NewDevice("log0", 10*time.Millisecond)},
		PageSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		txn := TxnID(i + 1)
		if _, ok := l.Append(Record{Txn: txn, Type: Begin}); !ok {
			t.Fatalf("append begin %d refused", txn)
		}
		if _, ok := l.Append(Record{Txn: txn, Type: Update, Rec: uint64(i % 8), Old: []byte{0}, New: []byte{byte(i)}}); !ok {
			t.Fatalf("append update %d refused", txn)
		}
		if !l.AppendCommit(txn, nil) {
			t.Fatalf("append commit %d refused", txn)
		}
		sim.Run()
	}
	sim.Run()
	return sim, l
}

func TestCursorStreamsDurablePrefix(t *testing.T) {
	sim, l := streamLog(t, 10)
	c := l.NewCursor(0)
	recs := c.Next(sim.Now(), 0)
	if len(recs) != 30 {
		t.Fatalf("cursor returned %d records, want 30", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("stream not strictly LSN-ascending at %d", i)
		}
	}
	if c.Pos() != l.DurableLSN() {
		t.Fatalf("cursor pos %d != durable %d", c.Pos(), l.DurableLSN())
	}
	if more := c.Next(sim.Now(), 0); len(more) != 0 {
		t.Fatalf("drained cursor returned %d records", len(more))
	}
	// Batched reads walk the same stream.
	c2 := l.NewCursor(0)
	var batched []Record
	for {
		b := c2.Next(sim.Now(), 7)
		if len(b) == 0 {
			break
		}
		batched = append(batched, b...)
	}
	if len(batched) != len(recs) {
		t.Fatalf("batched walk saw %d records, want %d", len(batched), len(recs))
	}
}

// TestCursorFloorsTruncation: a lagging cursor is a replication slot —
// truncation clamps at its unconsumed position until it catches up.
func TestCursorFloorsTruncation(t *testing.T) {
	sim, l := streamLog(t, 10)
	c := l.NewCursor(0)
	durable := l.DurableLSN()

	l.TruncateBefore(durable)
	if got := l.TruncatedLSN(); got != 1 {
		t.Fatalf("truncation with a cold cursor moved to %d, want clamp at 1", got)
	}
	recs := c.Next(sim.Now(), 0)
	if len(recs) == 0 {
		t.Fatal("clamped log lost the cursor's records")
	}
	l.TruncateBefore(durable)
	if got := l.TruncatedLSN(); got != durable {
		t.Fatalf("truncation after catch-up stopped at %d, want %d", got, durable)
	}
	// A closed cursor releases the slot entirely.
	c2 := l.NewCursor(0)
	c2.Close()
	l.TruncateBefore(durable + 1)
	if got := l.TruncatedLSN(); got != durable+1 {
		t.Fatalf("closed cursor still floors truncation (at %d)", got)
	}
}

func TestSubscribeDurableFires(t *testing.T) {
	sim := &event.Sim{}
	l, err := NewLog(sim, Config{
		Policy:   StableMemory,
		Devices:  []*Device{NewDevice("log0", 10*time.Millisecond)},
		PageSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	l.SubscribeDurable(func() { fired++ })
	for i := 0; i < 40; i++ {
		txn := TxnID(i + 1)
		l.Append(Record{Txn: txn, Type: Update, Rec: 0, Old: []byte{0}, New: []byte{1}})
		l.AppendCommit(txn, nil)
	}
	sim.Run()
	if fired == 0 {
		t.Fatal("durable-horizon subscriber never fired across stable drains")
	}
}

func TestPackPagesRoundTrip(t *testing.T) {
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{
			LSN: LSN(i + 1), Txn: TxnID(i/3 + 1), Type: Update,
			Rec: uint64(i), Old: make([]byte, 20), New: make([]byte, 20),
		})
	}
	pages, err := PackPages(recs, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) < 2 {
		t.Fatalf("expected multiple frames, got %d", len(pages))
	}
	var back []Record
	for _, img := range pages {
		if len(img) != 512 {
			t.Fatalf("frame size %d, want 512", len(img))
		}
		part, intact := DecodePageTail(img)
		if !intact {
			t.Fatal("packed frame decoded as torn")
		}
		back = append(back, part...)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(back), len(recs))
	}
	for i := range back {
		if back[i].LSN != recs[i].LSN || back[i].Rec != recs[i].Rec {
			t.Fatalf("record %d mismatch after round trip", i)
		}
	}
}
