package wal

import (
	"mmdb/internal/seglog"
)

// This file is the §5.6 log compressor for segmented logs: a background
// compactor that rewrites runs of cold segments — segments whose every
// record lies below the resolved-transaction bound — keeping only the
// newest update per record slot among durably resolved transactions, with
// pre-images stripped (they are only needed to undo, and a durably
// resolved transaction never undoes). Records of transactions whose
// outcome is not yet durable are kept verbatim, as are Commit/End marks
// (analysis must still see every surviving update's outcome). Original
// LSNs are preserved, so the global merge order — and therefore the redo
// result — is unchanged: a dropped update is superseded by a kept, later,
// same-device update to the same slot, and §5.2's commit-group ordering
// guarantees no resolved-committed update ever overwrote an unresolved
// one.

// CompactRecords compacts one device's cold record run. records must be
// in LSN order (true of any consecutive segment range of one device);
// resolved reports whether a transaction's commit or rollback is durable.
func CompactRecords(records []Record, resolved func(TxnID) bool) []Record {
	// Newest resolved update per record slot wins.
	newest := make(map[uint64]int, len(records))
	for i, r := range records {
		if r.Type == Update && resolved(r.Txn) {
			newest[r.Rec] = i
		}
	}
	out := make([]Record, 0, len(records))
	for i, r := range records {
		switch {
		case r.Type == Update && resolved(r.Txn):
			if newest[r.Rec] != i {
				continue // superseded by a later resolved update
			}
			out = append(out, r.WithoutOld())
		case r.Type == Begin && resolved(r.Txn):
			continue // nothing downstream needs a resolved Begin
		default:
			out = append(out, r)
		}
	}
	return out
}

// encodeCompactPages packs compacted records into fresh page images
// tagged with their LSN ranges.
func encodeCompactPages(records []Record, pageSize int) ([]seglog.PageData, error) {
	var out []seglog.PageData
	var cur []Record
	bytes := 0
	payload := pageSize - pageHeader
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		img, err := EncodePage(cur, pageSize)
		if err != nil {
			return err
		}
		out = append(out, seglog.PageData{
			Img:      img,
			FirstLSN: uint64(cur[0].LSN),
			LastLSN:  uint64(cur[len(cur)-1].LSN),
		})
		cur, bytes = nil, 0
		return nil
	}
	for _, r := range records {
		if bytes+r.EncodedSize() > payload {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		cur = append(cur, r)
		bytes += r.EncodedSize()
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// kickCompactor schedules a compaction tick CompactEvery from now unless
// one is already pending. Ticks are armed from durability events rather
// than self-rescheduling, so an idle simulation drains instead of
// spinning on an empty compactor loop.
func (l *Log) kickCompactor() {
	if !l.cfg.CompactSegments || !l.compactorIdle {
		return
	}
	l.compactorIdle = false
	l.sim.After(l.cfg.CompactEvery, l.compactTick)
}

// compactTick scans every segmented device for a cold run and schedules
// its rewrite on the device's compaction lane. The original segments stay
// on the medium until the rewrite completes — a crash mid-compaction
// recovers from them unchanged — and are then swapped atomically.
func (l *Log) compactTick() {
	l.compactorIdle = true
	_, bound := l.boundsNow()
	if bound == 0 {
		return
	}
	now := l.sim.Now()
	for _, f := range l.frags {
		dir := f.dev.SegmentDir()
		if dir == nil {
			continue
		}
		cand, ok := dir.CompactCandidate(now, uint64(bound), 2)
		if !ok {
			continue
		}
		var recs []Record
		intact := true
		for _, img := range cand.Pages {
			rs, whole := DecodePageTail(img)
			recs = append(recs, rs...)
			if !whole {
				intact = false
				break
			}
		}
		if !intact {
			// Durable full segments should always decode; leave damaged
			// ones for recovery to cut at and stop retrying them.
			dir.AbortCompaction(cand.First, cand.Last)
			continue
		}
		out := CompactRecords(recs, func(t TxnID) bool { return l.resolved[t] })
		pages, err := encodeCompactPages(out, l.cfg.PageSize)
		if err != nil || len(pages) >= len(cand.Pages) {
			dir.AbortCompaction(cand.First, cand.Last)
			continue
		}
		done := dir.BeginCompaction(cand, now, len(pages))
		first, last := cand.First, cand.Last
		l.sim.At(done, func() {
			dir.CommitCompaction(first, last, pages, done)
			l.publishMeta()
		})
	}
}
