package wal

import (
	"fmt"
	"time"

	"mmdb/internal/event"
)

// CommitPolicy selects when a transaction's commit becomes durable (§5.2,
// §5.4).
type CommitPolicy int

// Commit policies.
const (
	// FlushPerCommit writes a log page for every commit: the conventional
	// scheme the paper bounds at ~100 tps on one 10 ms device.
	FlushPerCommit CommitPolicy = iota
	// GroupCommit releases locks at pre-commit and batches the commit
	// records that share a log page into one write (§5.2).
	GroupCommit
	// StableMemory commits as soon as the commit record reaches the
	// battery-backed log buffer; pages drain to disk in the background
	// (§5.4), optionally compressed to new-values-only.
	StableMemory
)

func (p CommitPolicy) String() string {
	switch p {
	case FlushPerCommit:
		return "flush-per-commit"
	case GroupCommit:
		return "group-commit"
	case StableMemory:
		return "stable-memory"
	default:
		return fmt.Sprintf("CommitPolicy(%d)", int(p))
	}
}

// Config parameterizes a Log.
type Config struct {
	PageSize int // log page size in bytes (the paper's 4096)
	Policy   CommitPolicy
	// Devices are the log disks. With more than one, the log is
	// partitioned by transaction: all records of a transaction go to one
	// fragment, and cross-fragment commit ordering is enforced by the
	// topological ordering of commit groups (§5.2).
	Devices []*Device
	// Compress drops old values of already-committed transactions when a
	// stable-memory page drains to disk (§5.4 log compression). Only
	// meaningful with StableMemory.
	Compress bool
	// StableCapacity bounds the battery-backed region in bytes; appends
	// beyond it are refused until the drain catches up. 0 means 8 pages.
	StableCapacity int
	// GroupTimeout optionally force-flushes a commit group after this
	// delay. Group commit already seals as soon as the fragment's device
	// is idle (so liveness never depends on this timer); the timeout only
	// tightens latency further at the cost of smaller groups.
	GroupTimeout time.Duration
	// SegmentPages, when positive, arranges every log device's pages into
	// bounded segment files of that many pages ("<dev>/seg-NNNNNN") with a
	// persisted dual-slot commit.meta recording the durable
	// {segment, offset, LSN} horizon. Checkpoint truncation then deletes
	// whole segments, and recovery can skip segments entirely below the
	// published horizon.
	SegmentPages int
	// CompactSegments enables the §5.6 background compactor: cold
	// segments (every record below the resolved-transaction bound) are
	// rewritten keeping only the newest update per record slot of
	// durably resolved transactions, with pre-images stripped. Requires
	// SegmentPages.
	CompactSegments bool
	// CompactEvery is the compactor's wake-up period; 0 means 100ms.
	CompactEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.StableCapacity == 0 {
		c.StableCapacity = 8 * c.PageSize
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 100 * time.Millisecond
	}
	return c
}

// Stats reports log activity.
type Stats struct {
	Records      int64
	PagesWritten int64 // pages issued to devices
	BytesLogged  int64 // record bytes appended
	BytesToDisk  int64 // record bytes actually written to devices (after compression)
	Commits      int64 // durable commits delivered
	Groups       int64 // commit groups flushed with at least one commit record
	GroupSizeSum int64 // total commit records across groups (for mean group size)
	Truncated    int64 // records reclaimed by log truncation
	LostPages    int64 // pages whose device write never completed (injected faults)
}

// MeanGroupSize returns the average commits per flushed group.
func (s Stats) MeanGroupSize() float64 {
	if s.Groups == 0 {
		return 0
	}
	return float64(s.GroupSizeSum) / float64(s.Groups)
}

// pendingPage is a sealed commit group on its way to disk.
type pendingPage struct {
	seq     uint64
	records []Record
	commits []TxnID
	deps    []*pendingPage
	done    time.Duration
	durable bool
	lost    bool // the write never completed: its commits are never delivered
}

// fragment is one log partition: its device plus the open buffer page.
type fragment struct {
	dev        *Device
	cur        []Record
	curBytes   int
	curCommits []TxnID
	curDeps    map[*pendingPage]struct{}
	timerSeq   uint64 // guards the group timeout against later seals
	sealArmed  bool   // a device-idle seal event is scheduled
}

// Log is the log manager. All methods must be called from the simulator's
// event goroutine.
type Log struct {
	sim *event.Sim
	cfg Config

	nextLSN LSN
	pageSeq uint64
	frags   []*fragment

	// txnGroup maps a pre-committed (not yet durable) transaction to its
	// sealed commit group.
	txnGroup map[TxnID]*pendingPage
	// inBuffer maps a transaction whose commit record sits in a still-open
	// buffer to that fragment.
	inBuffer map[TxnID]*fragment
	// txnPages maps a transaction to the sealed, not yet durable pages
	// carrying its records; its commit group depends on them (WAL).
	txnPages map[TxnID][]*pendingPage

	// Stable-memory region (StableMemory policy).
	stable          []Record
	stableBytes     int
	stableCommitted map[TxnID]bool
	draining        bool
	nextDrainDev    int

	pages        []*pendingPage
	firstPending int // index into pages: everything before it is durable
	truncateLSN  LSN // records below this are reclaimed (log truncation)
	onCommit     func(TxnID)
	onDrain      func()
	stats        Stats

	// bounds, when set by the engine, supplies (horizon, compactable):
	// horizon is the safe truncation/replay bound (min over durable LSN+1,
	// the checkpoint recovery start, and unresolved first-LSNs);
	// compactable is the resolved-transaction bound (min over durable
	// LSN+1 and unresolved first-LSNs) below which segments are cold.
	bounds func() (horizon, compactable LSN)
	// resolved records transactions whose outcome (commit or rollback
	// End) is durable — the compactor may strip their pre-images.
	resolved map[TxnID]bool
	// unresolvedFirst maps each transaction whose outcome is not yet
	// durable to its first record's LSN. The minimum over it is the floor
	// that truncation, the published horizon and segment compaction must
	// all stay below; the engine's own in-flight set is not enough, because
	// an aborting transaction leaves it when its End record is appended,
	// before that record is durable.
	unresolvedFirst map[TxnID]LSN
	compactorIdle   bool // a compact tick is not currently scheduled

	// cursors are the registered replication-stream cursors (stream.go).
	// Each acts as a slot flooring truncation at its unconsumed LSN.
	cursors []*Cursor
	// onDurable subscribers run whenever the durable horizon advances.
	onDurable []func()
}

// NewLog creates a log manager on the simulator.
func NewLog(sim *event.Sim, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("wal: need at least one log device")
	}
	if cfg.PageSize <= pageHeader+recordHeader {
		return nil, fmt.Errorf("wal: page size %d too small", cfg.PageSize)
	}
	if cfg.Compress && cfg.Policy != StableMemory {
		return nil, fmt.Errorf("wal: log compression requires the stable-memory policy")
	}
	if cfg.CompactSegments && cfg.SegmentPages <= 0 {
		return nil, fmt.Errorf("wal: segment compaction requires SegmentPages > 0")
	}
	l := &Log{
		sim:             sim,
		cfg:             cfg,
		txnGroup:        make(map[TxnID]*pendingPage),
		inBuffer:        make(map[TxnID]*fragment),
		txnPages:        make(map[TxnID][]*pendingPage),
		stableCommitted: make(map[TxnID]bool),
		resolved:        make(map[TxnID]bool),
		unresolvedFirst: make(map[TxnID]LSN),
		compactorIdle:   true,
	}
	for _, d := range cfg.Devices {
		if cfg.SegmentPages > 0 {
			d.EnableSegments(cfg.SegmentPages)
		}
		l.frags = append(l.frags, &fragment{dev: d, curDeps: make(map[*pendingPage]struct{})})
	}
	return l, nil
}

// Config returns the effective configuration.
func (l *Log) Config() Config { return l.cfg }

// Stats returns a snapshot of log statistics.
func (l *Log) Stats() Stats { return l.stats }

// SetOnCommit installs the durable-commit callback.
func (l *Log) SetOnCommit(fn func(TxnID)) { l.onCommit = fn }

// SetOnDrain installs a callback fired when stable-memory space frees up.
func (l *Log) SetOnDrain(fn func()) { l.onDrain = fn }

// SetBoundsFunc installs the engine's safety-bound oracle for segmented
// logs: horizon is the safe truncation/replay bound published to
// commit.meta, compactable the resolved-transaction bound gating the
// §5.6 compactor. Without it the horizon defaults to the truncation
// point and the compactor stays idle.
func (l *Log) SetBoundsFunc(fn func() (horizon, compactable LSN)) { l.bounds = fn }

// boundsNow resolves the current (horizon, compactable) pair.
func (l *Log) boundsNow() (LSN, LSN) {
	if l.bounds != nil {
		return l.bounds()
	}
	return l.truncateLSN, 0
}

// publishMeta pushes the durable frontier and horizon of every segmented
// device into its commit.meta. Called on durability events and after
// truncation; the directory dedups identical content.
func (l *Log) publishMeta() {
	horizon, _ := l.boundsNow()
	now := l.sim.Now()
	for _, f := range l.frags {
		if dir := f.dev.SegmentDir(); dir != nil {
			dir.Publish(now, uint64(horizon))
		}
	}
}

// CompactedBytes returns the bytes reclaimed by completed segment
// compactions across all devices.
func (l *Log) CompactedBytes() int64 {
	var n int64
	for _, f := range l.frags {
		if dir := f.dev.SegmentDir(); dir != nil {
			n += dir.Stats().CompactedBytes
		}
	}
	return n
}

// payloadCapacity is the record bytes one page holds.
func (l *Log) payloadCapacity() int { return l.cfg.PageSize - pageHeader }

// fragFor routes a transaction to its log partition.
func (l *Log) fragFor(txn TxnID) *fragment {
	return l.frags[int(uint64(txn)%uint64(len(l.frags)))]
}

// Append adds a non-commit record to the log. It reports false when the
// stable-memory region is full (backpressure); volatile buffering always
// succeeds.
func (l *Log) Append(r Record) (LSN, bool) {
	r.LSN = l.assignLSN()
	if l.cfg.Policy == StableMemory {
		if !l.stableAppend(r) {
			l.nextLSN-- // the record was not accepted; reuse the LSN
			return 0, false
		}
		l.noteTxn(r.Txn, r.LSN)
		if r.Type == End {
			l.markResolved(r.Txn) // stable memory is durable by assumption
		}
		return r.LSN, true
	}
	l.noteTxn(r.Txn, r.LSN)
	l.bufferAppend(l.fragFor(r.Txn), r)
	return r.LSN, true
}

// AppendCommit adds txn's commit record. deps lists the pre-committed
// transactions txn read from (its dependency list, §5.2): txn's commit
// group will not be written before theirs. It reports false on
// stable-memory backpressure.
func (l *Log) AppendCommit(txn TxnID, deps []TxnID) bool {
	r := Record{Txn: txn, Type: Commit, LSN: l.assignLSN()}
	if l.cfg.Policy == StableMemory {
		if !l.stableAppend(r) {
			l.nextLSN--
			return false
		}
		l.stableCommitted[txn] = true
		l.markResolved(txn) // stable memory is durable by assumption
		l.deliverCommit(txn)
		return true
	}
	l.noteTxn(txn, r.LSN)
	f := l.fragFor(txn)
	for _, dep := range deps {
		if df, open := l.inBuffer[dep]; open {
			if df == f {
				continue // same open group: ordering is automatic
			}
			// The dependency's commit group is still open on another
			// fragment; seal it so ours can be ordered after it.
			l.seal(df)
		}
		if g, ok := l.txnGroup[dep]; ok && g != nil && !g.durable {
			f.curDeps[g] = struct{}{}
		}
	}
	l.bufferAppend(f, r)
	f.curCommits = append(f.curCommits, txn)
	l.inBuffer[txn] = f

	switch l.cfg.Policy {
	case FlushPerCommit:
		l.seal(f)
	case GroupCommit:
		// Classic group commit: the group rides until either the page
		// fills (bufferAppend seals) or the device falls idle — batching
		// while the device is busy costs the waiting commits nothing.
		l.armIdleSeal(f)
		if l.cfg.GroupTimeout > 0 && len(f.curCommits) == 1 {
			seq := f.timerSeq
			l.sim.After(l.cfg.GroupTimeout, func() {
				if f.timerSeq == seq { // the group was not sealed meanwhile
					l.seal(f)
				}
			})
		}
	}
	return true
}

// armIdleSeal schedules a seal for the moment the fragment's device drains
// its queue (immediately if it is idle now).
func (l *Log) armIdleSeal(f *fragment) {
	if f.sealArmed {
		return
	}
	f.sealArmed = true
	l.sim.At(f.dev.BusyUntil(), func() {
		f.sealArmed = false
		if len(f.curCommits) > 0 {
			l.seal(f)
		}
	})
}

// Flush seals and writes all buffered records (end of experiment, or an
// explicit checkpoint boundary).
func (l *Log) Flush() {
	if l.cfg.Policy == StableMemory {
		l.startDrain()
		return
	}
	for _, f := range l.frags {
		l.seal(f)
	}
}

func (l *Log) assignLSN() LSN {
	l.nextLSN++
	return l.nextLSN
}

// CurrentLSN returns the most recently assigned LSN.
func (l *Log) CurrentLSN() LSN { return l.nextLSN }

func (l *Log) bufferAppend(f *fragment, r Record) {
	if r.EncodedSize() > l.payloadCapacity() {
		panic(fmt.Sprintf("wal: record of %d bytes exceeds page payload %d", r.EncodedSize(), l.payloadCapacity()))
	}
	if f.curBytes+r.EncodedSize() > l.payloadCapacity() {
		l.seal(f)
	}
	f.cur = append(f.cur, r)
	f.curBytes += r.EncodedSize()
	l.stats.Records++
	l.stats.BytesLogged += int64(r.EncodedSize())
}

// seal closes the fragment's buffer page and issues its write, honoring
// the topological ordering among commit groups: the write starts only
// after every group it depends on is durable. Per-device writes are FIFO,
// so a transaction's commit page (same fragment as its updates) can never
// overtake its update pages.
func (l *Log) seal(f *fragment) {
	if len(f.cur) == 0 {
		return
	}
	img, err := EncodePage(f.cur, l.cfg.PageSize)
	if err != nil {
		panic(fmt.Sprintf("wal: sealing: %v", err))
	}
	p := &pendingPage{
		seq:     l.pageSeq,
		records: f.cur,
		commits: f.curCommits,
	}
	l.pageSeq++
	f.timerSeq++

	deps := make(map[*pendingPage]struct{}, len(f.curDeps))
	for g := range f.curDeps {
		deps[g] = struct{}{}
	}
	// WAL across fragments is structural (per-transaction fragment
	// affinity); txnPages adds a defensive ordering edge in case a
	// transaction's records ever span fragments.
	for _, t := range p.commits {
		for _, q := range l.txnPages[t] {
			deps[q] = struct{}{}
		}
	}
	for g := range deps {
		if !g.durable {
			p.deps = append(p.deps, g)
		}
	}
	for _, t := range p.commits {
		delete(l.inBuffer, t)
		l.txnGroup[t] = p
	}
	for _, r := range p.records {
		if r.Txn != 0 && r.Type != Commit {
			l.txnPages[r.Txn] = append(l.txnPages[r.Txn], p)
		}
	}
	f.cur, f.curBytes, f.curCommits = nil, 0, nil
	f.curDeps = make(map[*pendingPage]struct{})

	earliest := l.sim.Now()
	depLost := false
	for _, g := range p.deps {
		if g.lost {
			depLost = true
		}
		if !g.durable && g.done > earliest {
			earliest = g.done
		}
	}
	if depLost {
		// A group this page is ordered after was lost to a device fault:
		// issuing this write would let its commits become durable before
		// their dependencies, violating the §5.2 topological ordering. The
		// page is lost too, and its commits are never delivered.
		p.lost = true
		l.pages = append(l.pages, p)
		l.stats.LostPages++
		return
	}
	var ok bool
	p.done, ok = f.dev.WriteTagged(earliest, img, p.records[0].LSN, p.records[len(p.records)-1].LSN)
	l.pages = append(l.pages, p)
	l.stats.PagesWritten++
	for _, r := range p.records {
		l.stats.BytesToDisk += int64(r.EncodedSize())
	}
	if len(p.commits) > 0 {
		l.stats.Groups++
		l.stats.GroupSizeSum += int64(len(p.commits))
	}
	if !ok {
		// The device lost the write (permanent failure or torn page): the
		// page never becomes durable, its commits are never acknowledged,
		// and recovery sees at most a checksum-guarded prefix of it.
		p.lost = true
		l.stats.LostPages++
		return
	}
	l.sim.At(p.done, func() {
		p.durable = true
		for _, t := range p.commits {
			delete(l.txnGroup, t)
			delete(l.txnPages, t)
			l.markResolved(t)
			l.deliverCommit(t)
		}
		for _, r := range p.records {
			if r.Type == End {
				delete(l.txnPages, r.Txn) // rollback complete; nothing depends on it anymore
				l.markResolved(r.Txn)
			}
		}
		l.publishMeta()
		l.kickCompactor()
		l.notifyDurable()
	})
}

// noteTxn records txn's first log record so UnresolvedFloor can bound
// truncation and the published horizon until txn's outcome is durable.
func (l *Log) noteTxn(txn TxnID, lsn LSN) {
	if txn == 0 || l.resolved[txn] {
		return
	}
	if _, ok := l.unresolvedFirst[txn]; !ok {
		l.unresolvedFirst[txn] = lsn
	}
}

// markResolved records that txn's outcome (commit, or rollback End) is
// durable: its pre-images may be compacted away and it no longer floors
// truncation.
func (l *Log) markResolved(txn TxnID) {
	l.resolved[txn] = true
	delete(l.unresolvedFirst, txn)
}

// UnresolvedFloor returns the smallest first-record LSN among transactions
// whose outcome is not yet durable; ok=false when every logged transaction
// has durably resolved.
func (l *Log) UnresolvedFloor() (LSN, bool) {
	var min LSN
	found := false
	for _, lsn := range l.unresolvedFirst {
		if !found || lsn < min {
			min, found = lsn, true
		}
	}
	return min, found
}

// PublishMeta re-publishes the durable position and the engine's current
// horizon to every segmented device's commit.meta. The engine calls it
// when the checkpointer advances the recovery start point; durability
// events publish automatically.
func (l *Log) PublishMeta() { l.publishMeta() }

func (l *Log) deliverCommit(txn TxnID) {
	l.stats.Commits++
	if l.onCommit != nil {
		l.onCommit(txn)
	}
}

// DurableLSN returns the highest LSN below which every log record is
// durable: disk-resident, or (under the stable-memory policy) in the
// battery-backed region. The checkpointer consults this to honor the WAL
// rule before writing a data page.
func (l *Log) DurableLSN() LSN {
	if l.cfg.Policy == StableMemory {
		return l.nextLSN // stable memory is durable by assumption (§5.1)
	}
	min := l.nextLSN + 1
	for l.firstPending < len(l.pages) && l.pages[l.firstPending].durable {
		l.firstPending++
	}
	for _, p := range l.pages[l.firstPending:] {
		if !p.durable && len(p.records) > 0 && p.records[0].LSN < min {
			min = p.records[0].LSN
		}
	}
	for _, f := range l.frags {
		if len(f.cur) > 0 && f.cur[0].LSN < min {
			min = f.cur[0].LSN
		}
	}
	return min - 1
}

// --- stable memory ---

func (l *Log) stableAppend(r Record) bool {
	if l.stableBytes+r.EncodedSize() > l.cfg.StableCapacity {
		l.startDrain()
		return false
	}
	l.stable = append(l.stable, r)
	l.stableBytes += r.EncodedSize()
	l.stats.Records++
	l.stats.BytesLogged += int64(r.EncodedSize())
	if l.stableBytes >= l.payloadCapacity() {
		l.startDrain()
	}
	return true
}

// startDrain writes one page worth of stable records to disk, compressing
// committed transactions' records to new-values-only when enabled. Further
// pages chain from the completion event. The drained prefix stays in
// stable memory until the write completes: a crash mid-write must still
// find the records somewhere durable.
func (l *Log) startDrain() {
	if l.draining || len(l.stable) == 0 {
		return
	}
	var page []Record
	bytes := 0
	n := 0
	for _, r := range l.stable {
		out := r
		if l.cfg.Compress && r.Type == Update && l.stableCommitted[r.Txn] {
			out = r.WithoutOld()
		}
		if bytes+out.EncodedSize() > l.payloadCapacity() {
			break
		}
		page = append(page, out)
		bytes += out.EncodedSize()
		n++
	}
	if n == 0 {
		panic("wal: stable record exceeds page payload")
	}
	img, err := EncodePage(page, l.cfg.PageSize)
	if err != nil {
		panic(fmt.Sprintf("wal: draining: %v", err))
	}
	freed := 0
	for _, r := range l.stable[:n] {
		freed += r.EncodedSize()
	}
	l.draining = true

	dev := l.cfg.Devices[l.nextDrainDev]
	l.nextDrainDev = (l.nextDrainDev + 1) % len(l.cfg.Devices)
	done, ok := dev.WriteTagged(l.sim.Now(), img, page[0].LSN, page[len(page)-1].LSN)
	p := &pendingPage{seq: l.pageSeq, records: page, done: done}
	l.pageSeq++
	l.pages = append(l.pages, p)
	l.stats.PagesWritten++
	l.stats.BytesToDisk += int64(bytes)
	if !ok {
		// The drain write was lost. The records stay in stable memory —
		// which is durable by assumption (§5.1) — so nothing is lost, but
		// this drain makes no progress and frees no space.
		p.lost = true
		l.stats.LostPages++
		l.draining = false
		return
	}
	l.sim.At(done, func() {
		p.durable = true
		l.draining = false
		l.stable = append([]Record(nil), l.stable[n:]...)
		l.stableBytes -= freed
		l.publishMeta()
		l.kickCompactor()
		l.notifyDurable()
		if l.onDrain != nil {
			l.onDrain()
		}
		if l.stableBytes >= l.payloadCapacity() || (l.stableBytes > 0 && l.sim.Pending() == 0) {
			l.startDrain()
		}
	})
}

// TruncateBefore reclaims the log prefix below lsn: records with smaller
// LSNs no longer appear in the recovery view. The caller is responsible
// for the §5.5 safety bound — lsn must not exceed the recovery start
// point (the oldest entry of the stable first-update table) nor the first
// LSN of any unresolved transaction, or redo/undo would lose work.
// Truncation only moves forward, and is additionally floored by any
// registered stream cursors (replication slots): a record no cursor has
// consumed yet survives truncation so lagging replicas can still catch
// up from this log.
func (l *Log) TruncateBefore(lsn LSN) {
	if floor, ok := l.shipFloor(); ok && lsn > floor {
		lsn = floor
	}
	if lsn <= l.truncateLSN {
		return
	}
	l.truncateLSN = lsn
	// Account reclaimed records on fully-truncated durable pages and drop
	// their images.
	keep := l.pages[:0]
	for _, p := range l.pages {
		allBelow := p.durable && len(p.records) > 0 && p.records[len(p.records)-1].LSN < lsn
		if allBelow {
			l.stats.Truncated += int64(len(p.records))
			continue
		}
		keep = append(keep, p)
	}
	l.pages = keep
	l.firstPending = 0
	// On segmented devices truncation is physical: whole segment files
	// wholly below the horizon are deleted, and the new horizon is
	// published to commit.meta.
	now := l.sim.Now()
	for _, f := range l.frags {
		if dir := f.dev.SegmentDir(); dir != nil {
			dir.DeleteBelow(now, uint64(lsn))
		}
	}
	l.publishMeta()
}

// TruncatedLSN returns the current truncation horizon.
func (l *Log) TruncatedLSN() LSN { return l.truncateLSN }

// StableRecords returns the records currently held in stable memory,
// including a prefix whose drain to disk is still in flight.
func (l *Log) StableRecords() []Record {
	return append([]Record(nil), l.stable...)
}

// DurableRecords reconstructs the single merged log visible after a crash
// at time t: the durable prefix of every device fragment merged by LSN
// (§5.2's sort-merge of log fragments), followed by stable memory's
// surviving records when the policy is StableMemory. Duplicates (a record
// both drained to disk and still in stable memory) collapse in the merge.
//
// Page images are decoded tolerantly: device writes are FIFO, so a torn or
// corrupt page is necessarily the effective tail of its fragment, and the
// per-record checksums let the decode cut the fragment at the last intact
// record instead of erroring. The error return is retained for interface
// stability but is always nil.
func (l *Log) DurableRecords(t time.Duration) ([]Record, error) {
	var fragments [][]Record
	for _, d := range l.cfg.Devices {
		var frag []Record
		if v, segmented := d.DurableSegments(t); segmented {
			// Segmented device: the segment directory is the medium of
			// record — it reflects truncation-by-deletion and compaction,
			// which the raw page list does not.
		segs:
			for _, s := range v.Segments {
				for _, img := range s.Pages {
					recs, intact := DecodePageTail(img)
					frag = append(frag, recs...)
					if !intact {
						break segs
					}
				}
			}
		} else {
			for _, img := range d.DurablePages(t) {
				recs, intact := DecodePageTail(img)
				frag = append(frag, recs...)
				if !intact {
					// Torn tail: everything after the damage is unreadable,
					// and nothing later on this device can be durable (FIFO).
					break
				}
			}
		}
		fragments = append(fragments, frag)
	}
	if l.cfg.Policy == StableMemory {
		fragments = append(fragments, l.StableRecords())
	}
	merged := MergeFragments(fragments)
	if l.truncateLSN > 0 {
		lo, hi := 0, len(merged)
		for lo < hi {
			mid := (lo + hi) / 2
			if merged[mid].LSN < l.truncateLSN {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		merged = merged[lo:]
	}
	return merged, nil
}
