package wal

import (
	"time"
)

// Device models one log disk: page writes are serviced serially, each
// taking WriteTime (the paper's 10 ms for a 4096-byte page without a
// seek). Completed page images are retained in completion order so a
// crash at time t exposes exactly the durable prefix.
type Device struct {
	Name      string
	WriteTime time.Duration

	busyUntil time.Duration
	pages     []devicePage
}

type devicePage struct {
	img  []byte
	done time.Duration
}

// NewDevice creates a device with the given service time per page write.
func NewDevice(name string, writeTime time.Duration) *Device {
	return &Device{Name: name, WriteTime: writeTime}
}

// Write queues a page image. The write starts no earlier than `earliest`
// (used to honor commit-group topological ordering) and no earlier than the
// completion of the device's previous write; it returns the completion
// time.
func (d *Device) Write(earliest time.Duration, img []byte) time.Duration {
	start := earliest
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + d.WriteTime
	d.busyUntil = done
	d.pages = append(d.pages, devicePage{img: img, done: done})
	return done
}

// PagesWritten returns the number of page writes issued.
func (d *Device) PagesWritten() int { return len(d.pages) }

// BusyUntil returns when the device's queue drains.
func (d *Device) BusyUntil() time.Duration { return d.busyUntil }

// DurablePages returns the page images whose writes completed by time t —
// the fragment this device contributes to recovery after a crash at t.
// A page still being written at t is torn and therefore excluded.
func (d *Device) DurablePages(t time.Duration) [][]byte {
	var out [][]byte
	for _, p := range d.pages {
		if p.done <= t {
			out = append(out, p.img)
		}
	}
	return out
}
