package wal

import (
	"time"

	"mmdb/internal/seglog"
)

// DefaultWriteRetries bounds the in-device retries for injected transient
// write faults when Device.MaxRetries is zero.
const DefaultWriteRetries = 4

// WriteFault is an injected verdict for one device page write. The zero
// value is a clean write.
type WriteFault struct {
	// Transient fails the write's service this many times before it
	// succeeds; the device absorbs up to MaxRetries of them with
	// exponential virtual-time backoff. Beyond the bound the device is
	// treated as failing hard (the page is lost and the device dies).
	Transient int
	// Permanent kills the device: this write and every later one never
	// complete.
	Permanent bool
	// Stall adds that many extra service times to the write — latency
	// inflation, not failure.
	Stall int
	// Torn cuts the stored image to a prefix: the device never
	// acknowledges the write, but a crash later exposes the partial page
	// (when ExposeTorn is set). The log is broken at this page.
	Torn bool
	// TornBytes is the surviving prefix length when Torn; 0 means half
	// the image.
	TornBytes int
}

// WriteInjector decides the fate of device page writes; the canonical
// implementation with seeded schedules lives in internal/fault (the
// interface is declared here to avoid an import cycle).
type WriteInjector interface {
	PageWrite(device string) WriteFault
}

// Device models one log disk: page writes are serviced serially, each
// taking WriteTime (the paper's 10 ms for a 4096-byte page without a
// seek). Completed page images are retained in completion order so a
// crash at time t exposes exactly the durable prefix.
type Device struct {
	Name      string
	WriteTime time.Duration

	// Injector, when non-nil, is consulted once per page write.
	Injector WriteInjector
	// MaxRetries bounds in-device retries of transient write faults;
	// 0 means DefaultWriteRetries.
	MaxRetries int
	// ExposeTorn makes DurablePages surface the surviving prefix of a
	// page whose write was in flight at the crash instant, and of
	// injected torn writes, instead of hiding those pages entirely —
	// modeling sector-granular torn writes that recovery must detect by
	// checksum. Off by default (the page vanishes, the pre-fault-plane
	// behavior).
	ExposeTorn bool

	busyUntil time.Duration
	pages     []devicePage
	failed    bool
	retried   int64

	// dir, when non-nil, arranges this device's page writes into bounded
	// segment files with a persisted commit.meta (see internal/seglog).
	dir *seglog.Dir
}

type devicePage struct {
	img   []byte
	start time.Duration
	done  time.Duration
	torn  int  // >0: only this prefix of img reached the medium
	lost  bool // the write never completed (torn, or device death)
}

// NewDevice creates a device with the given service time per page write.
func NewDevice(name string, writeTime time.Duration) *Device {
	return &Device{Name: name, WriteTime: writeTime}
}

// EnableSegments arranges the device's page writes into bounded segments
// of segmentPages pages each, with a dual-slot CRC-framed commit.meta.
// Each device owns its own "<name>/..." namespace, so fragment merge can
// never interleave segment files across devices even when one device name
// prefixes another (log1 vs log10). Idempotent; returns the directory.
func (d *Device) EnableSegments(segmentPages int) *seglog.Dir {
	if d.dir == nil {
		d.dir = seglog.NewDir(d.Name, segmentPages, d.WriteTime)
	}
	return d.dir
}

// SegmentDir returns the device's segment directory, or nil when the
// device is an unsegmented monolithic log.
func (d *Device) SegmentDir() *seglog.Dir { return d.dir }

// DurableSegments returns the crash view of the device's segment
// directory at time t. ok is false for unsegmented devices.
func (d *Device) DurableSegments(t time.Duration) (seglog.View, bool) {
	if d.dir == nil {
		return seglog.View{}, false
	}
	return d.dir.DurableView(t, d.ExposeTorn), true
}

// Write queues a page image. The write starts no earlier than `earliest`
// (used to honor commit-group topological ordering) and no earlier than the
// completion of the device's previous write. It returns the completion time
// and whether the write completes at all: ok is false when the device has
// permanently failed or the write was torn — the page never becomes
// durable and the caller must not count on its completion.
func (d *Device) Write(earliest time.Duration, img []byte) (time.Duration, bool) {
	return d.WriteTagged(earliest, img, 0, 0)
}

// WriteTagged is Write carrying the LSN range of the records the page
// holds; a segment-aware device records the tags in its segment directory
// so truncation and the recovery horizon can reason about whole segment
// files without decoding them. Untagged callers (checkpoint data pages)
// pass zeros.
func (d *Device) WriteTagged(earliest time.Duration, img []byte, firstLSN, lastLSN LSN) (time.Duration, bool) {
	start := earliest
	if d.busyUntil > start {
		start = d.busyUntil
	}
	record := func(p devicePage) {
		d.pages = append(d.pages, p)
		if d.dir != nil {
			d.dir.Append(p.img, uint64(firstLSN), uint64(lastLSN), p.start, p.done, p.torn, p.lost)
		}
	}
	var wf WriteFault
	if d.Injector != nil {
		wf = d.Injector.PageWrite(d.Name)
	}
	if wf.Permanent {
		d.failed = true
	}
	if d.failed {
		record(devicePage{img: img, start: start, lost: true})
		return 0, false
	}
	retries := d.MaxRetries
	if retries == 0 {
		retries = DefaultWriteRetries
	}
	service := d.WriteTime * time.Duration(1+wf.Stall)
	done := start + service
	if wf.Transient > 0 {
		n := wf.Transient
		if n > retries {
			n = retries
		}
		// Each failed attempt costs a service time plus an exponential
		// virtual-time backoff before the re-issue.
		for i := 0; i < n; i++ {
			done += d.WriteTime / 2 << uint(i)
			done += service
		}
		d.retried += int64(n)
		if wf.Transient > retries {
			// Retry budget exhausted: the device is failing hard.
			d.failed = true
			record(devicePage{img: img, start: start, lost: true})
			return 0, false
		}
	}
	if wf.Torn {
		tb := wf.TornBytes
		if tb <= 0 || tb >= len(img) {
			tb = len(img) / 2
		}
		if tb < 1 {
			tb = 1
		}
		// The medium holds only a prefix and the write is never
		// acknowledged; the log is broken at this page, so the device is
		// dead from here on.
		d.busyUntil = done
		d.failed = true
		record(devicePage{img: img, start: start, done: done, torn: tb, lost: true})
		return 0, false
	}
	d.busyUntil = done
	record(devicePage{img: img, start: start, done: done})
	return done, true
}

// PagesWritten returns the number of page writes issued.
func (d *Device) PagesWritten() int { return len(d.pages) }

// BusyUntil returns when the device's queue drains.
func (d *Device) BusyUntil() time.Duration { return d.busyUntil }

// Failed reports whether the device has permanently failed (injected
// permanent fault, exhausted transient retries, or a torn write).
func (d *Device) Failed() bool { return d.failed }

// WriteRetries returns the transient write faults absorbed by in-device
// retry.
func (d *Device) WriteRetries() int64 { return d.retried }

// DurablePages returns the page images whose writes completed by time t —
// the fragment this device contributes to recovery after a crash at t.
// A page still being written at t is torn: by default it is excluded
// entirely; with ExposeTorn the prefix proportional to the write's
// progress survives (as does the prefix of an injected torn write), and
// the per-record checksums let recovery cut the fragment there.
func (d *Device) DurablePages(t time.Duration) [][]byte {
	var out [][]byte
	for _, p := range d.pages {
		switch {
		case p.lost:
			if d.ExposeTorn && p.torn > 0 && p.start < t {
				out = append(out, p.img[:p.torn])
			}
		case p.done <= t:
			out = append(out, p.img)
		case d.ExposeTorn && p.start < t:
			frac := float64(t-p.start) / float64(p.done-p.start)
			if n := int(frac * float64(len(p.img))); n > 0 {
				out = append(out, p.img[:n])
			}
		}
	}
	return out
}
