// Package wal implements the logging side of §5: log records and 4 KB log
// pages, a log manager with the three commit disciplines the paper
// analyzes (per-transaction flush, group commit via pre-committed
// transactions, and stable-memory commit with log compression), log
// partitioning across several devices with topological ordering of commit
// groups, and the fragment-merge iterator recovery reads the log with.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// TxnID identifies a transaction.
type TxnID uint64

// LSN is a log sequence number, totally ordered across all log fragments.
type LSN uint64

// RecordType distinguishes log record kinds (§5.4's Begin / update /
// End structure plus checkpoint marks).
type RecordType uint8

// Record types.
const (
	Begin RecordType = iota + 1
	Update
	Commit // the commit record whose durability defines commit
	End
	Checkpoint
)

func (t RecordType) String() string {
	switch t {
	case Begin:
		return "begin"
	case Update:
		return "update"
	case Commit:
		return "commit"
	case End:
		return "end"
	case Checkpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one log entry. Update records carry old and new values of the
// modified record (the paper's 360-byte body); Begin/Commit/End carry only
// the header (the 40-byte overhead).
type Record struct {
	LSN  LSN
	Txn  TxnID
	Type RecordType
	Rec  uint64 // record id of the updated object (Update only)
	Old  []byte // pre-image; dropped by stable-memory compression
	New  []byte // post-image
}

const recordHeader = 8 + 8 + 1 + 8 + 2 + 2 // LSN, Txn, Type, Rec, len(Old), len(New)

// recordChecksum is the per-record CRC32 trailer. It makes a torn or
// corrupted log tail detectable: recovery decodes records until the first
// checksum failure and treats that point as end-of-log.
const recordChecksum = 4

// ErrChecksum marks a log record whose stored checksum does not match its
// content — the signature of a torn or corrupted write.
var ErrChecksum = errors.New("wal: record checksum mismatch")

// EncodedSize returns the record's on-log size in bytes.
func (r Record) EncodedSize() int {
	return recordHeader + len(r.Old) + len(r.New) + recordChecksum
}

// WithoutOld returns a copy with the pre-image removed: §5.4's log
// compression ("approximately half of the size of the log stores the old
// values ... only needed if the transaction must be undone").
func (r Record) WithoutOld() Record {
	r.Old = nil
	return r
}

// AppendTo encodes r onto buf and returns the extended slice.
func (r Record) AppendTo(buf []byte) ([]byte, error) {
	if len(r.Old) > 0xffff || len(r.New) > 0xffff {
		return nil, fmt.Errorf("wal: value too large (old=%d new=%d)", len(r.Old), len(r.New))
	}
	var h [recordHeader]byte
	binary.BigEndian.PutUint64(h[0:], uint64(r.LSN))
	binary.BigEndian.PutUint64(h[8:], uint64(r.Txn))
	h[16] = byte(r.Type)
	binary.BigEndian.PutUint64(h[17:], r.Rec)
	binary.BigEndian.PutUint16(h[25:], uint16(len(r.Old)))
	binary.BigEndian.PutUint16(h[27:], uint16(len(r.New)))
	start := len(buf)
	buf = append(buf, h[:]...)
	buf = append(buf, r.Old...)
	buf = append(buf, r.New...)
	var c [recordChecksum]byte
	binary.BigEndian.PutUint32(c[:], crc32.ChecksumIEEE(buf[start:]))
	buf = append(buf, c[:]...)
	return buf, nil
}

// DecodeRecord decodes one record from buf, returning it and the number of
// bytes consumed.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < recordHeader {
		return Record{}, 0, fmt.Errorf("wal: truncated record header (%d bytes)", len(buf))
	}
	var r Record
	r.LSN = LSN(binary.BigEndian.Uint64(buf[0:]))
	r.Txn = TxnID(binary.BigEndian.Uint64(buf[8:]))
	r.Type = RecordType(buf[16])
	r.Rec = binary.BigEndian.Uint64(buf[17:])
	oldLen := int(binary.BigEndian.Uint16(buf[25:]))
	newLen := int(binary.BigEndian.Uint16(buf[27:]))
	body := recordHeader + oldLen + newLen
	n := body + recordChecksum
	if len(buf) < n {
		return Record{}, 0, fmt.Errorf("wal: truncated record body (want %d, have %d)", n, len(buf))
	}
	if got, want := crc32.ChecksumIEEE(buf[:body]), binary.BigEndian.Uint32(buf[body:]); got != want {
		return Record{}, 0, fmt.Errorf("wal: LSN %d: %w", r.LSN, ErrChecksum)
	}
	switch r.Type {
	case Begin, Update, Commit, End, Checkpoint:
	default:
		return Record{}, 0, fmt.Errorf("wal: invalid record type %d", buf[16])
	}
	if oldLen > 0 {
		r.Old = append([]byte(nil), buf[recordHeader:recordHeader+oldLen]...)
	}
	if newLen > 0 {
		r.New = append([]byte(nil), buf[recordHeader+oldLen:body]...)
	}
	return r, n, nil
}

// Page is an encoded log page: a 6-byte header (record count, payload
// length) followed by packed records. Pages are fixed-size on the device.
type Page struct {
	Seq     uint64 // page sequence number within its fragment
	Records []Record
}

const pageHeader = 2 + 4 // count, payload bytes

// EncodePage packs records into a page image of the given size.
func EncodePage(records []Record, pageSize int) ([]byte, error) {
	buf := make([]byte, pageHeader, pageSize)
	for _, r := range records {
		var err error
		buf, err = r.AppendTo(buf)
		if err != nil {
			return nil, err
		}
	}
	if len(buf) > pageSize {
		return nil, fmt.Errorf("wal: %d records overflow page (%d > %d bytes)", len(records), len(buf), pageSize)
	}
	binary.BigEndian.PutUint16(buf[0:], uint16(len(records)))
	binary.BigEndian.PutUint32(buf[2:], uint32(len(buf)-pageHeader))
	out := make([]byte, pageSize)
	copy(out, buf)
	return out, nil
}

// DecodePage unpacks a page image.
func DecodePage(data []byte) ([]Record, error) {
	if len(data) < pageHeader {
		return nil, fmt.Errorf("wal: page too small (%d bytes)", len(data))
	}
	count := int(binary.BigEndian.Uint16(data[0:]))
	payload := int(binary.BigEndian.Uint32(data[2:]))
	if pageHeader+payload > len(data) {
		return nil, fmt.Errorf("wal: corrupt page header (payload %d beyond page)", payload)
	}
	buf := data[pageHeader : pageHeader+payload]
	records := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		r, n, err := DecodeRecord(buf)
		if err != nil {
			return nil, fmt.Errorf("wal: record %d: %w", i, err)
		}
		records = append(records, r)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after %d records", len(buf), count)
	}
	return records, nil
}

// DecodePageTail decodes the valid record prefix of a possibly torn or
// corrupt page image. A crash (or an injected torn write) can leave only a
// byte prefix of a log page on the medium; the per-record checksums make
// the damage detectable, so decoding stops at the first structural or
// checksum failure and returns whatever decoded cleanly before it. intact
// reports whether the page's full declared payload decoded — when false,
// the page is the end of its log fragment.
func DecodePageTail(data []byte) (records []Record, intact bool) {
	if len(data) < pageHeader {
		return nil, false
	}
	count := int(binary.BigEndian.Uint16(data[0:]))
	payload := int(binary.BigEndian.Uint32(data[2:]))
	buf := data[pageHeader:]
	whole := payload <= len(buf)
	if whole {
		buf = buf[:payload]
	}
	for i := 0; i < count; i++ {
		r, n, err := DecodeRecord(buf)
		if err != nil {
			return records, false
		}
		records = append(records, r)
		buf = buf[n:]
	}
	return records, whole && len(buf) == 0
}
