package wal

import "container/heap"

// MergeFragments recreates a single log from per-device fragments by
// merging on LSN, "as in a sort-merge" (§5.2). Each fragment must already
// be LSN-ordered, which holds because pages are filled and written in
// append order per device. Duplicate LSNs (a record durable both on disk
// and still in stable memory) keep the first occurrence.
func MergeFragments(fragments [][]Record) []Record {
	h := &fragHeap{}
	total := 0
	for i, f := range fragments {
		total += len(f)
		if len(f) > 0 {
			h.items = append(h.items, fragCursor{frag: i, records: f})
		}
	}
	heap.Init(h)
	out := make([]Record, 0, total)
	var lastLSN LSN
	for h.Len() > 0 {
		c := &h.items[0]
		r := c.records[0]
		if len(out) == 0 || r.LSN != lastLSN {
			out = append(out, r)
			lastLSN = r.LSN
		}
		c.records = c.records[1:]
		if len(c.records) == 0 {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}

type fragCursor struct {
	frag    int
	records []Record
}

type fragHeap struct {
	items []fragCursor
}

func (h *fragHeap) Len() int { return len(h.items) }
func (h *fragHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.records[0].LSN != b.records[0].LSN {
		return a.records[0].LSN < b.records[0].LSN
	}
	return a.frag < b.frag
}
func (h *fragHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *fragHeap) Push(x interface{}) { h.items = append(h.items, x.(fragCursor)) }
func (h *fragHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
