package wal

import "testing"

func BenchmarkRecordEncodeDecode(b *testing.B) {
	r := Record{LSN: 7, Txn: 9, Type: Update, Rec: 3, Old: make([]byte, 46), New: make([]byte, 46)}
	buf, _ := r.AppendTo(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := r.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := DecodeRecord(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageEncode(b *testing.B) {
	var records []Record
	for i := 0; i < 30; i++ {
		records = append(records, Record{LSN: LSN(i), Txn: 1, Type: Update, Old: make([]byte, 46), New: make([]byte, 46)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodePage(records, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
