package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mmdb/internal/event"
)

func TestRecordRoundTrip(t *testing.T) {
	f := func(lsn uint64, txn uint64, rec uint64, old, new []byte) bool {
		if len(old) > 1000 || len(new) > 1000 {
			return true
		}
		r := Record{LSN: LSN(lsn), Txn: TxnID(txn), Type: Update, Rec: rec, Old: old, New: new}
		buf, err := r.AppendTo(nil)
		if err != nil {
			return false
		}
		got, n, err := DecodeRecord(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.LSN == r.LSN && got.Txn == r.Txn && got.Type == r.Type &&
			got.Rec == r.Rec && bytes.Equal(got.Old, old) && bytes.Equal(got.New, new)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRecord([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	r := Record{LSN: 1, Txn: 2, Type: Update, Old: []byte("abc")}
	buf, _ := r.AppendTo(nil)
	if _, _, err := DecodeRecord(buf[:len(buf)-1]); err == nil {
		t.Error("truncated body accepted")
	}
	buf[16] = 99 // invalid type
	if _, _, err := DecodeRecord(buf); err == nil {
		t.Error("invalid type accepted")
	}
}

func TestPageRoundTripAndCorruption(t *testing.T) {
	records := []Record{
		{LSN: 1, Txn: 5, Type: Begin},
		{LSN: 2, Txn: 5, Type: Update, Rec: 9, Old: []byte("old"), New: []byte("new")},
		{LSN: 3, Txn: 5, Type: Commit},
	}
	img, err := EncodePage(records, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 512 {
		t.Fatalf("page image %d bytes", len(img))
	}
	got, err := DecodePage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Rec != 9 || string(got[1].New) != "new" {
		t.Fatalf("decoded %+v", got)
	}
	// Overflow rejected.
	var many []Record
	for i := 0; i < 100; i++ {
		many = append(many, Record{LSN: LSN(i), Type: Begin})
	}
	if _, err := EncodePage(many, 512); err == nil {
		t.Error("overfull page accepted")
	}
	// Corrupt header.
	img[2] = 0xFF
	if _, err := DecodePage(img); err == nil {
		t.Error("corrupt payload length accepted")
	}
}

func TestRecordChecksumDetectsCorruption(t *testing.T) {
	r := Record{LSN: 9, Txn: 2, Type: Update, Rec: 1, Old: []byte("aaa"), New: []byte("bbb")}
	buf, _ := r.AppendTo(nil)
	for _, i := range []int{0, recordHeader, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Errorf("flipped byte %d accepted", i)
		}
	}
	// Checksum failures are identifiable for tolerant tail decoding.
	bad := append([]byte(nil), buf...)
	bad[recordHeader] ^= 0x40
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("corruption error %v is not ErrChecksum", err)
	}
}

func TestDecodePageTail(t *testing.T) {
	records := []Record{
		{LSN: 1, Txn: 5, Type: Begin},
		{LSN: 2, Txn: 5, Type: Update, Rec: 9, Old: []byte("old"), New: []byte("new")},
		{LSN: 3, Txn: 5, Type: Commit},
	}
	img, err := EncodePage(records, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got, intact := DecodePageTail(img); !intact || len(got) != 3 {
		t.Fatalf("intact page: %d records, intact=%v", len(got), intact)
	}
	// Torn to a byte prefix inside record 3: records 1-2 survive.
	cut := pageHeader + records[0].EncodedSize() + records[1].EncodedSize() + 5
	if got, intact := DecodePageTail(img[:cut]); intact || len(got) != 2 || got[1].LSN != 2 {
		t.Fatalf("torn page: %d records, intact=%v", len(got), intact)
	}
	// A bit flip mid-page cuts the tail at the corrupt record.
	bad := append([]byte(nil), img...)
	bad[pageHeader+records[0].EncodedSize()+3] ^= 0x01
	if got, intact := DecodePageTail(bad); intact || len(got) != 1 {
		t.Fatalf("corrupt page: %d records, intact=%v", len(got), intact)
	}
	// Degenerate inputs.
	if got, intact := DecodePageTail(img[:3]); intact || got != nil {
		t.Fatalf("sub-header input: %v %v", got, intact)
	}
}

func TestWithoutOldHalvesUpdateSize(t *testing.T) {
	r := Record{Type: Update, Old: make([]byte, 100), New: make([]byte, 100)}
	if got := r.WithoutOld().EncodedSize(); got != r.EncodedSize()-100 {
		t.Fatalf("compressed size %d", got)
	}
}

func TestDeviceFIFOAndDurablePrefix(t *testing.T) {
	d := NewDevice("log", 10*time.Millisecond)
	t1, _ := d.Write(0, []byte{1})
	t2, _ := d.Write(0, []byte{2})
	t3, _ := d.Write(25*time.Millisecond, []byte{3})
	if t1 != 10*time.Millisecond || t2 != 20*time.Millisecond || t3 != 35*time.Millisecond {
		t.Fatalf("completions %v %v %v", t1, t2, t3)
	}
	if got := len(d.DurablePages(20 * time.Millisecond)); got != 2 {
		t.Fatalf("durable at 20ms: %d", got)
	}
	// A page mid-write (crash at 30ms, write completes at 35) is torn.
	if got := len(d.DurablePages(30 * time.Millisecond)); got != 2 {
		t.Fatalf("torn page counted: %d", got)
	}
	if got := len(d.DurablePages(35 * time.Millisecond)); got != 3 {
		t.Fatalf("durable at 35ms: %d", got)
	}
}

func TestMergeFragments(t *testing.T) {
	a := []Record{{LSN: 1}, {LSN: 4}, {LSN: 6}}
	b := []Record{{LSN: 2}, {LSN: 3}, {LSN: 5}}
	c := []Record{{LSN: 3}, {LSN: 7}} // duplicate LSN 3 collapses
	out := MergeFragments([][]Record{a, b, c})
	want := []LSN{1, 2, 3, 4, 5, 6, 7}
	if len(out) != len(want) {
		t.Fatalf("merged %d records", len(out))
	}
	for i, r := range out {
		if r.LSN != want[i] {
			t.Fatalf("position %d: LSN %d", i, r.LSN)
		}
	}
	if got := MergeFragments(nil); len(got) != 0 {
		t.Fatal("empty merge")
	}
}

func newGroupLog(t *testing.T, sim *event.Sim, devices int) *Log {
	t.Helper()
	var devs []*Device
	for i := 0; i < devices; i++ {
		devs = append(devs, NewDevice("log", 10*time.Millisecond))
	}
	l, err := NewLog(sim, Config{Policy: GroupCommit, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGroupCommitBatchesCommits(t *testing.T) {
	sim := &event.Sim{}
	l := newGroupLog(t, sim, 1)
	var committed []TxnID
	l.SetOnCommit(func(id TxnID) { committed = append(committed, id) })
	for i := 1; i <= 5; i++ {
		id := TxnID(i)
		l.Append(Record{Txn: id, Type: Begin})
		l.Append(Record{Txn: id, Type: Update, Rec: 1, Old: make([]byte, 40), New: make([]byte, 40)})
		l.AppendCommit(id, nil)
	}
	sim.Run()
	if len(committed) != 5 {
		t.Fatalf("committed %d of 5", len(committed))
	}
	st := l.Stats()
	if st.Groups < 1 || st.MeanGroupSize() < 2 {
		t.Fatalf("no batching: %+v", st)
	}
}

func TestFlushPerCommitWritesOnePagePerCommit(t *testing.T) {
	sim := &event.Sim{}
	devs := []*Device{NewDevice("log", 10*time.Millisecond)}
	l, err := NewLog(sim, Config{Policy: FlushPerCommit, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	l.SetOnCommit(func(TxnID) { n++ })
	for i := 1; i <= 4; i++ {
		l.Append(Record{Txn: TxnID(i), Type: Begin})
		l.AppendCommit(TxnID(i), nil)
	}
	sim.Run()
	if n != 4 {
		t.Fatalf("committed %d", n)
	}
	if got := devs[0].PagesWritten(); got != 4 {
		t.Fatalf("%d pages for 4 commits", got)
	}
	if sim.Now() != 40*time.Millisecond {
		t.Fatalf("4 serial writes should take 40ms, took %v", sim.Now())
	}
}

func TestTopologicalOrderingAcrossDevices(t *testing.T) {
	// Txn 1 and txn 2 land on different fragments (ids mod devices); make
	// 2 depend on 1 and verify 2 never commits before 1, even though 2's
	// device is idle first.
	sim := &event.Sim{}
	l := newGroupLog(t, sim, 2)
	var order []TxnID
	var times []time.Duration
	l.SetOnCommit(func(id TxnID) {
		order = append(order, id)
		times = append(times, sim.Now())
	})
	// Busy up fragment of txn 1 (device index 1%2=1) so its commit group
	// finishes late.
	filler := Record{Txn: 1, Type: Update, Rec: 0, Old: make([]byte, 1500), New: make([]byte, 1500)}
	l.Append(filler)
	l.Append(Record{Txn: 1, Type: Begin})
	l.AppendCommit(1, nil)
	// Txn 2 on the other fragment depends on txn 1.
	l.Append(Record{Txn: 2, Type: Begin})
	l.AppendCommit(2, []TxnID{1})
	sim.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("commit order %v", order)
	}
	if times[1] < times[0] {
		t.Fatalf("dependent committed at %v before dependency at %v", times[1], times[0])
	}
}

func TestStableMemoryCommitsImmediatelyAndSurvivesCrash(t *testing.T) {
	sim := &event.Sim{}
	devs := []*Device{NewDevice("log", 10*time.Millisecond)}
	l, err := NewLog(sim, Config{Policy: StableMemory, Devices: devs, StableCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	committedAt := time.Duration(-1)
	l.SetOnCommit(func(TxnID) { committedAt = sim.Now() })
	l.Append(Record{Txn: 1, Type: Begin})
	l.Append(Record{Txn: 1, Type: Update, Rec: 1, Old: []byte("o"), New: []byte("n")})
	l.AppendCommit(1, nil)
	if committedAt != 0 {
		t.Fatalf("stable commit delayed to %v", committedAt)
	}
	// Crash right now: nothing on disk yet, but stable memory survives.
	recs, err := l.DurableRecords(sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("durable records %d, want 3 (stable memory survives)", len(recs))
	}
}

func TestStableBackpressure(t *testing.T) {
	sim := &event.Sim{}
	devs := []*Device{NewDevice("log", 10*time.Millisecond)}
	l, err := NewLog(sim, Config{Policy: StableMemory, Devices: devs, StableCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	drained := 0
	l.SetOnDrain(func() { drained++ })
	big := Record{Txn: 1, Type: Update, Rec: 1, Old: make([]byte, 400), New: make([]byte, 400)}
	accepted := 0
	for i := 0; i < 100; i++ {
		if _, ok := l.Append(big); ok {
			accepted++
		} else {
			break
		}
	}
	if accepted >= 100 {
		t.Fatal("no backpressure at 4 KB capacity")
	}
	sim.Run()
	if drained == 0 {
		t.Fatal("drain callback never fired")
	}
	// After draining, appends are accepted again.
	if _, ok := l.Append(big); !ok {
		t.Fatal("append still refused after drain")
	}
}

func TestCompressionDropsOldValuesOfCommittedOnly(t *testing.T) {
	sim := &event.Sim{}
	devs := []*Device{NewDevice("log", 10*time.Millisecond)}
	l, err := NewLog(sim, Config{Policy: StableMemory, Devices: devs, Compress: true, StableCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Committed txn 1, uncommitted txn 2.
	l.Append(Record{Txn: 1, Type: Update, Rec: 1, Old: make([]byte, 100), New: make([]byte, 100)})
	l.AppendCommit(1, nil)
	l.Append(Record{Txn: 2, Type: Update, Rec: 2, Old: make([]byte, 100), New: make([]byte, 100)})
	l.Flush()
	sim.Run()
	recs, err := l.DurableRecords(sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type != Update {
			continue
		}
		switch r.Txn {
		case 1:
			if len(r.Old) != 0 {
				t.Fatal("committed txn's old value not compressed away")
			}
		case 2:
			if len(r.Old) != 100 {
				t.Fatal("uncommitted txn's old value was dropped (needed for undo)")
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	sim := &event.Sim{}
	if _, err := NewLog(sim, Config{}); err == nil {
		t.Error("no devices accepted")
	}
	devs := []*Device{NewDevice("l", time.Millisecond)}
	if _, err := NewLog(sim, Config{Devices: devs, PageSize: 10}); err == nil {
		t.Error("tiny page accepted")
	}
	if _, err := NewLog(sim, Config{Devices: devs, Compress: true, Policy: GroupCommit}); err == nil {
		t.Error("compression without stable memory accepted")
	}
}

func TestDurableLSNAdvances(t *testing.T) {
	sim := &event.Sim{}
	l := newGroupLog(t, sim, 1)
	l.Append(Record{Txn: 1, Type: Begin})
	l.AppendCommit(1, nil)
	if l.DurableLSN() != 0 {
		t.Fatalf("durable LSN %d before any write completes", l.DurableLSN())
	}
	sim.Run()
	if l.DurableLSN() != 2 {
		t.Fatalf("durable LSN %d after flush, want 2", l.DurableLSN())
	}
}
