package wal

import (
	"fmt"
	"time"
)

// This file is the log-shipping surface of the Log: stream cursors over
// the committed durable prefix, and a subscription hook fired whenever the
// durable horizon advances. Together they are the primary side of LSN
// replication — a shipper subscribes, and on every durability event pulls
// the records its replicas have not seen yet.

// Cursor is a stream position into the log's durable prefix: everything
// at or below Pos has been consumed. A registered cursor acts as a
// replication slot — TruncateBefore will not reclaim records the cursor
// has not consumed yet, so a lagging replica can always catch up from the
// primary's log. Close the cursor to release the slot.
type Cursor struct {
	log    *Log
	pos    LSN
	closed bool
}

// NewCursor registers a stream cursor that has consumed everything at or
// below after (0 = from the beginning of the log).
func (l *Log) NewCursor(after LSN) *Cursor {
	c := &Cursor{log: l, pos: after}
	l.cursors = append(l.cursors, c)
	return c
}

// Pos returns the highest LSN the cursor has consumed.
func (c *Cursor) Pos() LSN { return c.pos }

// Next returns up to max records past the cursor within the durable
// prefix at virtual time t — records r with Pos < r.LSN <= DurableLSN()
// — and advances the cursor past them. max <= 0 means no limit. The
// returned slice is LSN-ascending and gap-free with respect to
// durability: nothing above DurableLSN is ever handed out, so a consumer
// applying the stream in order sees exactly the log's committed prefix
// unfolding.
func (c *Cursor) Next(t time.Duration, max int) []Record {
	if c.closed {
		return nil
	}
	durable := c.log.DurableLSN()
	if durable <= c.pos {
		return nil
	}
	merged, _ := c.log.DurableRecords(t) // error is always nil
	// Binary search the first record past the cursor.
	lo, hi := 0, len(merged)
	for lo < hi {
		mid := (lo + hi) / 2
		if merged[mid].LSN <= c.pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var out []Record
	for _, r := range merged[lo:] {
		if r.LSN > durable {
			break
		}
		out = append(out, r)
		if max > 0 && len(out) >= max {
			break
		}
	}
	if n := len(out); n > 0 {
		c.pos = out[n-1].LSN
	}
	return out
}

// Close deregisters the cursor: it stops flooring log truncation and
// returns no further records.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	keep := c.log.cursors[:0]
	for _, o := range c.log.cursors {
		if o != c {
			keep = append(keep, o)
		}
	}
	c.log.cursors = keep
}

// shipFloor returns the truncation bound imposed by registered cursors:
// the smallest unconsumed LSN across them (ok=false when there are none).
// Records at or above it must survive truncation so every cursor can
// still stream them.
func (l *Log) shipFloor() (LSN, bool) {
	var min LSN
	found := false
	for _, c := range l.cursors {
		if c.closed {
			continue
		}
		if !found || c.pos+1 < min {
			min, found = c.pos+1, true
		}
	}
	return min, found
}

// PackPages packs an LSN-ordered record batch into the minimal sequence
// of encoded log pages of the given size — the ship-frame format of the
// replication stream. Each frame is a normal CRC-framed log page, so the
// receiving side decodes it with DecodePageTail and inherits the same
// torn/corrupt-frame detection recovery uses.
func PackPages(recs []Record, pageSize int) ([][]byte, error) {
	payload := pageSize - pageHeader
	var pages [][]byte
	var cur []Record
	bytes := 0
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		img, err := EncodePage(cur, pageSize)
		if err != nil {
			return err
		}
		pages = append(pages, img)
		cur, bytes = cur[:0], 0
		return nil
	}
	for _, r := range recs {
		sz := r.EncodedSize()
		if sz > payload {
			return nil, fmt.Errorf("wal: record LSN %d (%d bytes) exceeds frame payload %d", r.LSN, sz, payload)
		}
		if bytes+sz > payload {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		cur = append(cur, r)
		bytes += sz
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return pages, nil
}

// SubscribeDurable registers fn to run (on the simulator goroutine)
// whenever the log's durable horizon advances: a page write completes, or
// a stable-memory drain frees space. Under the StableMemory policy
// appends are durable immediately, so subscribers should also poll —
// durability can advance without any device event firing.
func (l *Log) SubscribeDurable(fn func()) {
	l.onDurable = append(l.onDurable, fn)
}

// notifyDurable fires the durable-horizon subscribers.
func (l *Log) notifyDurable() {
	for _, fn := range l.onDurable {
		fn()
	}
}
