package wal

import (
	"bytes"
	"testing"
	"time"

	"mmdb/internal/event"
)

// segLog builds a segmented group-commit log on one 10ms device with
// 2-page segments and a 512-byte page.
func segLog(t *testing.T, sim *event.Sim, devs ...*Device) *Log {
	t.Helper()
	if len(devs) == 0 {
		devs = []*Device{NewDevice("log0", 10*time.Millisecond)}
	}
	l, err := NewLog(sim, Config{
		PageSize:     512,
		Policy:       GroupCommit,
		Devices:      devs,
		SegmentPages: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// commitTxn appends a single-update transaction and its commit.
func commitTxn(l *Log, id TxnID, rec uint64) {
	l.Append(Record{Txn: id, Type: Begin})
	l.Append(Record{Txn: id, Type: Update, Rec: rec, Old: []byte("old"), New: []byte("new")})
	l.AppendCommit(id, nil)
}

func TestSegmentedLogMatchesMonolithicRecovery(t *testing.T) {
	// The same workload through a segmented and an unsegmented log must
	// produce identical DurableRecords views: segmentation changes the
	// file layout, not the log contents.
	run := func(segPages int) []Record {
		sim := &event.Sim{}
		dev := NewDevice("log0", 10*time.Millisecond)
		l, err := NewLog(sim, Config{PageSize: 512, Policy: GroupCommit, Devices: []*Device{dev}, SegmentPages: segPages})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 30; i++ {
			commitTxn(l, TxnID(i), uint64(i%7))
		}
		l.Flush()
		sim.Run()
		recs, _ := l.DurableRecords(sim.Now())
		return recs
	}
	mono, seg := run(0), run(2)
	if len(mono) != len(seg) {
		t.Fatalf("record counts differ: mono=%d seg=%d", len(mono), len(seg))
	}
	for i := range mono {
		if mono[i].LSN != seg[i].LSN || mono[i].Type != seg[i].Type || !bytes.Equal(mono[i].New, seg[i].New) {
			t.Fatalf("record %d differs: %+v vs %+v", i, mono[i], seg[i])
		}
	}
}

func TestSegmentDirTracksDeviceWrites(t *testing.T) {
	sim := &event.Sim{}
	l := segLog(t, sim)
	for i := 1; i <= 20; i++ {
		commitTxn(l, TxnID(i), uint64(i))
	}
	l.Flush()
	sim.Run()
	dir := l.Config().Devices[0].SegmentDir()
	if dir == nil {
		t.Fatal("no segment directory on a segmented log device")
	}
	v := dir.DurableView(sim.Now(), false)
	if len(v.Segments) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(v.Segments))
	}
	// LSN tags must be monotone across segments with no overlap gaps.
	for i := 1; i < len(v.Segments); i++ {
		if v.Segments[i].FirstLSN <= v.Segments[i-1].LastLSN {
			t.Fatalf("segment %d first LSN %d overlaps previous last %d",
				i, v.Segments[i].FirstLSN, v.Segments[i-1].LastLSN)
		}
	}
	if !v.HavePos {
		t.Fatal("no commit.meta published after durable writes")
	}
	if v.Pos.Durable == 0 {
		t.Fatalf("published durable LSN = 0: %+v", v.Pos)
	}
}

func TestTornRecordAtRotationBoundaryReadsAsEndOfLog(t *testing.T) {
	// A record torn exactly across a rotation boundary — the first page of
	// a fresh segment tears mid-record — must read as end-of-log: every
	// record before the boundary survives, nothing after it appears, and
	// no error is reported.
	sim := &event.Sim{}
	dev := NewDevice("log0", 10*time.Millisecond)
	dev.ExposeTorn = true
	dev.Injector = &tornOnWrite{n: 3, bytes: pageHeader + 10} // 3rd page = segment 1's first page; cut inside record 1
	l := segLog(t, sim, dev)
	for i := 1; i <= 20; i++ {
		commitTxn(l, TxnID(i), uint64(i))
	}
	l.Flush()
	sim.Run()

	// The torn write was in flight when the device died; probe a crash
	// instant inside its service window so the prefix is on the medium.
	crash := sim.Now() + 5*time.Millisecond
	v, ok := dev.DurableSegments(crash)
	if !ok {
		t.Fatal("no segment view")
	}
	if len(v.Segments) != 2 {
		t.Fatalf("got %d segments, want 2 (boundary tear cuts the log)", len(v.Segments))
	}
	torn := v.Segments[1]
	if !torn.Torn || len(torn.Pages) != 1 {
		t.Fatalf("segment 1 = %+v, want single torn page", torn)
	}
	recs, intact := DecodePageTail(torn.Pages[0])
	if intact {
		t.Fatal("torn rotation page decoded as intact")
	}
	if len(recs) != 0 {
		t.Fatalf("torn 10-byte prefix yielded %d records", len(recs))
	}
	// The merged recovery view ends exactly at segment 0's last record.
	merged, err := l.DurableRecords(crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 || uint64(merged[len(merged)-1].LSN) != v.Segments[0].LastLSN {
		t.Fatalf("merged log ends at %d, want %d", merged[len(merged)-1].LSN, v.Segments[0].LastLSN)
	}
}

// tornOnWrite tears the n'th page write on any device, leaving bytes.
type tornOnWrite struct {
	n     int
	bytes int
	seen  int
}

func (f *tornOnWrite) PageWrite(string) WriteFault {
	f.seen++
	if f.seen == f.n {
		return WriteFault{Torn: true, TornBytes: f.bytes}
	}
	return WriteFault{}
}

func TestDuplicateCommitStraddlingSegmentsDedups(t *testing.T) {
	// Duplicate commit records straddling a segment boundary (a replayed
	// group-commit page after a partial rewrite, or a record both drained
	// to disk and still in stable memory) must collapse to one in
	// MergeFragments even when the copies arrive from different segment
	// fragments.
	seg0 := []Record{
		{LSN: 1, Txn: 1, Type: Begin},
		{LSN: 2, Txn: 1, Type: Update, Rec: 4, New: []byte("a")},
		{LSN: 3, Txn: 1, Type: Commit},
	}
	seg1 := []Record{
		{LSN: 3, Txn: 1, Type: Commit}, // duplicate of seg0's tail commit
		{LSN: 4, Txn: 2, Type: Begin},
		{LSN: 5, Txn: 2, Type: Commit},
	}
	merged := MergeFragments([][]Record{seg0, seg1})
	if len(merged) != 5 {
		t.Fatalf("merged %d records, want 5 (duplicate commit collapsed)", len(merged))
	}
	commits := 0
	for i, r := range merged {
		if i > 0 && merged[i-1].LSN >= r.LSN {
			t.Fatalf("merge not strictly LSN-ordered at %d", i)
		}
		if r.Type == Commit && r.Txn == 1 {
			commits++
		}
	}
	if commits != 1 {
		t.Fatalf("txn 1 commit appears %d times", commits)
	}
}

func TestCompactRecordsKeepsOnlyNewestResolvedValue(t *testing.T) {
	resolved := map[TxnID]bool{1: true, 2: true, 3: false}
	in := []Record{
		{LSN: 1, Txn: 1, Type: Begin},
		{LSN: 2, Txn: 1, Type: Update, Rec: 7, Old: []byte("v0"), New: []byte("v1")},
		{LSN: 3, Txn: 1, Type: Commit},
		{LSN: 4, Txn: 2, Type: Begin},
		{LSN: 5, Txn: 2, Type: Update, Rec: 7, Old: []byte("v1"), New: []byte("v2")},
		{LSN: 6, Txn: 2, Type: Update, Rec: 8, Old: []byte("x0"), New: []byte("x1")},
		{LSN: 7, Txn: 2, Type: Commit},
		{LSN: 8, Txn: 3, Type: Begin},
		{LSN: 9, Txn: 3, Type: Update, Rec: 9, Old: []byte("y0"), New: []byte("y1")},
	}
	out := CompactRecords(in, func(t TxnID) bool { return resolved[t] })

	byLSN := map[LSN]Record{}
	for _, r := range out {
		byLSN[r.LSN] = r
	}
	if _, ok := byLSN[2]; ok {
		t.Fatal("stale update of rec 7 survived compaction")
	}
	if r, ok := byLSN[5]; !ok || r.Old != nil || string(r.New) != "v2" {
		t.Fatalf("newest update of rec 7 = %+v, want pre-image stripped", byLSN[5])
	}
	if r, ok := byLSN[6]; !ok || r.Old != nil {
		t.Fatalf("rec 8 update = %+v, want kept with pre-image stripped", byLSN[6])
	}
	// Commits survive so analysis still sees the outcomes.
	if _, ok := byLSN[3]; !ok {
		t.Fatal("txn 1 commit dropped")
	}
	if _, ok := byLSN[7]; !ok {
		t.Fatal("txn 2 commit dropped")
	}
	// The unresolved transaction is untouched: Begin kept, pre-image kept.
	if _, ok := byLSN[8]; !ok {
		t.Fatal("unresolved Begin dropped")
	}
	if r, ok := byLSN[9]; !ok || string(r.Old) != "y0" {
		t.Fatalf("unresolved update = %+v, want pre-image intact", byLSN[9])
	}
	// Resolved Begins are droppable.
	if _, ok := byLSN[1]; ok {
		t.Fatal("resolved Begin survived")
	}
}

func TestBackgroundCompactionPreservesRecoveryView(t *testing.T) {
	// Run a segmented log with the background compactor enabled, resolved
	// bounds wired, and verify the merged recovery view after compaction
	// replays to the same final values as an uncompacted control: for
	// every record slot, the last committed New value must match.
	run := func(compact bool) ([]Record, int64) {
		sim := &event.Sim{}
		dev := NewDevice("log0", 10*time.Millisecond)
		l, err := NewLog(sim, Config{
			PageSize:        512,
			Policy:          GroupCommit,
			Devices:         []*Device{dev},
			SegmentPages:    2,
			CompactSegments: compact,
			CompactEvery:    30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		l.SetBoundsFunc(func() (LSN, LSN) {
			d := l.DurableLSN() + 1
			return 0, d // horizon 0 (no truncation), compactable = durable
		})
		for i := 1; i <= 60; i++ {
			commitTxn(l, TxnID(i), uint64(i%5))
		}
		l.Flush()
		sim.Run()
		recs, _ := l.DurableRecords(sim.Now())
		return recs, l.CompactedBytes()
	}
	control, _ := run(false)
	compacted, saved := run(true)
	if saved <= 0 {
		t.Fatal("compactor reclaimed nothing")
	}
	if len(compacted) >= len(control) {
		t.Fatalf("compaction did not shrink the log: %d vs %d records", len(compacted), len(control))
	}
	final := func(recs []Record) map[uint64][]byte {
		committed := map[TxnID]bool{}
		for _, r := range recs {
			if r.Type == Commit {
				committed[r.Txn] = true
			}
		}
		vals := map[uint64][]byte{}
		for _, r := range recs {
			if r.Type == Update && committed[r.Txn] {
				vals[r.Rec] = r.New
			}
		}
		return vals
	}
	want, got := final(control), final(compacted)
	if len(want) != len(got) {
		t.Fatalf("slot counts differ: %d vs %d", len(want), len(got))
	}
	for rec, v := range want {
		if !bytes.Equal(got[rec], v) {
			t.Fatalf("slot %d: compacted view replays %q, control %q", rec, got[rec], v)
		}
	}
}
