// Package buffer implements a page-residency buffer pool with pluggable
// replacement (random, as assumed by the paper's fault model in §2, or LRU)
// and fault accounting.
//
// The pool tracks which pages of which spaces are memory resident and
// counts faults; the access-method experiments (Table 1 validation) drive
// AVL and B+-tree traversals through it to measure empirical fault rates
// against the paper's closed-form approximation
// faults ≈ accesses * (1 - |M|/S).
package buffer

import (
	"container/list"
	"fmt"
	"math/rand"

	"mmdb/internal/cost"
	"mmdb/internal/fault"
	"mmdb/internal/simio"
)

// Policy selects the replacement algorithm. Random is the paper's §2
// assumption; LRU and Clock address its §6 future-work question of
// managing very large buffer pools (the ablation experiments compare all
// three).
type Policy int

// Replacement policies.
const (
	Random Policy = iota // paper's assumption in §2
	LRU
	Clock // second-chance: LRU-like quality at O(1) metadata cost
)

func (p Policy) String() string {
	switch p {
	case Random:
		return "random"
	case LRU:
		return "lru"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PageKey identifies a page within a named space.
type PageKey struct {
	Space string
	Page  int
}

// Stats reports pool activity.
type Stats struct {
	Accesses int64
	Hits     int64
	Faults   int64
}

// HitRate returns the fraction of accesses served from memory.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Pool is a fixed-capacity set of resident pages.
// It is not safe for concurrent use.
type Pool struct {
	capacity int
	policy   Policy
	rng      *rand.Rand
	clock    *cost.Clock // optional; charged one random IO per fault

	resident map[PageKey]*list.Element // element value is PageKey
	order    *list.List                // MRU at front (LRU policy); insertion order otherwise
	slots    []PageKey                 // dense slot table for O(1) random eviction / clock ring
	slotOf   map[PageKey]int
	ref      map[PageKey]bool // clock reference bits
	hand     int              // clock hand over slots

	stats Stats
}

// New creates a pool with the given number of page frames. A nil clock
// disables fault charging. The seed makes random replacement deterministic.
func New(capacity int, policy Policy, clock *cost.Clock, seed int64) *Pool {
	if capacity < 1 {
		panic("buffer: capacity must be at least 1")
	}
	return &Pool{
		capacity: capacity,
		policy:   policy,
		rng:      rand.New(rand.NewSource(seed)),
		clock:    clock,
		resident: make(map[PageKey]*list.Element, capacity),
		order:    list.New(),
		slotOf:   make(map[PageKey]int, capacity),
		ref:      make(map[PageKey]bool, capacity),
	}
}

// Capacity returns the number of frames (the paper's |M|).
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of currently resident pages.
func (p *Pool) Len() int { return len(p.resident) }

// Stats returns a snapshot of access statistics.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters without evicting pages.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Resident reports whether key is currently in the pool.
func (p *Pool) Resident(key PageKey) bool {
	_, ok := p.resident[key]
	return ok
}

// Touch records an access to key. It returns true when the access faulted
// (the page was not resident); the page is then brought in, evicting a
// victim if the pool is full.
func (p *Pool) Touch(key PageKey) bool {
	p.stats.Accesses++
	if el, ok := p.resident[key]; ok {
		p.stats.Hits++
		switch p.policy {
		case LRU:
			p.order.MoveToFront(el)
		case Clock:
			p.ref[key] = true
		}
		return false
	}
	p.stats.Faults++
	if p.clock != nil {
		p.clock.RandIOs(1)
	}
	if len(p.resident) >= p.capacity {
		p.evict()
	}
	p.insert(key)
	return true
}

// ReadThrough is the fault-plane-aware page access: it records an access
// to page n of space and, on a buffer fault, performs the actual disk read
// with bounded virtual-time retry for injected transient faults
// (fault.Retry). A hit reads the page uncharged — the page is memory
// resident, the disk is not touched. It returns the page data, whether the
// access faulted, and the (retry-exhausted or permanent) error if the
// device could not serve the read.
func (p *Pool) ReadThrough(space *simio.Space, n int, a simio.Access) ([]byte, bool, error) {
	key := PageKey{Space: space.Name(), Page: n}
	p.stats.Accesses++
	if el, ok := p.resident[key]; ok {
		p.stats.Hits++
		switch p.policy {
		case LRU:
			p.order.MoveToFront(el)
		case Clock:
			p.ref[key] = true
		}
		data, err := space.Read(n, simio.Uncharged)
		return data, false, err
	}
	p.stats.Faults++
	var data []byte
	err := fault.Retry(p.clock, 0, func() error {
		d, e := space.Read(n, a)
		data = d
		return e
	})
	if err != nil {
		return nil, true, err
	}
	if len(p.resident) >= p.capacity {
		p.evict()
	}
	p.insert(key)
	return data, true, nil
}

// Warm loads key without counting an access or charging a fault; used to
// pre-populate the pool to a target residency fraction.
func (p *Pool) Warm(key PageKey) {
	if _, ok := p.resident[key]; ok {
		return
	}
	if len(p.resident) >= p.capacity {
		p.evict()
	}
	p.insert(key)
}

func (p *Pool) insert(key PageKey) {
	el := p.order.PushFront(key)
	p.resident[key] = el
	p.slotOf[key] = len(p.slots)
	p.slots = append(p.slots, key)
	if p.policy == Clock {
		p.ref[key] = true
	}
}

func (p *Pool) evict() {
	var victim PageKey
	switch p.policy {
	case Random:
		victim = p.slots[p.rng.Intn(len(p.slots))]
	case LRU:
		victim = p.order.Back().Value.(PageKey)
	case Clock:
		for {
			if p.hand >= len(p.slots) {
				p.hand = 0
			}
			k := p.slots[p.hand]
			if !p.ref[k] {
				victim = k
				break // the swap-delete below refills this slot; keep the hand here
			}
			p.ref[k] = false
			p.hand++
		}
	default:
		panic(fmt.Sprintf("buffer: invalid policy %d", int(p.policy)))
	}
	el := p.resident[victim]
	p.order.Remove(el)
	delete(p.resident, victim)
	delete(p.ref, victim)

	// Swap-delete from the dense slot table.
	i := p.slotOf[victim]
	last := len(p.slots) - 1
	p.slots[i] = p.slots[last]
	p.slotOf[p.slots[i]] = i
	p.slots = p.slots[:last]
	delete(p.slotOf, victim)
}
