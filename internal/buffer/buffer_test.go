package buffer

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/fault"
	"mmdb/internal/simio"
)

func key(p int) PageKey { return PageKey{Space: "s", Page: p} }

func TestFaultsAndHits(t *testing.T) {
	p := New(2, LRU, nil, 1)
	if !p.Touch(key(1)) || !p.Touch(key(2)) {
		t.Fatal("cold pages must fault")
	}
	if p.Touch(key(1)) {
		t.Fatal("resident page faulted")
	}
	if !p.Touch(key(3)) { // evicts key(2) under LRU (1 was just touched)
		t.Fatal("expected fault")
	}
	if p.Touch(key(1)) {
		t.Fatal("LRU evicted the recently used page")
	}
	if !p.Touch(key(2)) {
		t.Fatal("evicted page did not fault")
	}
	s := p.Stats()
	if s.Accesses != 6 || s.Faults != 4 || s.Hits != 2 {
		t.Fatalf("stats %+v", s)
	}
	if got := s.HitRate(); math.Abs(got-2.0/6.0) > 1e-9 {
		t.Fatalf("hit rate %f", got)
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	p := New(2, Clock, nil, 1)
	p.Touch(key(1))
	p.Touch(key(2))
	p.Touch(key(1)) // ref bit set on 1
	// Fault: the hand clears ref bits until it finds an unreferenced page.
	// Page 2's bit was also set at insertion, so both get cleared once and
	// the first slot in ring order is evicted — but a page touched again
	// after the sweep survives the next eviction.
	p.Touch(key(3))
	p.Touch(key(3)) // keep 3 referenced
	p.Touch(key(4)) // must not evict 3
	if !p.Resident(key(3)) {
		t.Fatal("clock evicted a just-referenced page")
	}
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
}

func TestClockApproachesLRUOnSkewedAccess(t *testing.T) {
	// Hot/cold workload: clock and LRU should both keep the hot set and
	// beat random replacement.
	run := func(pol Policy) float64 {
		p := New(20, pol, nil, 3)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 100000; i++ {
			var k int
			if rng.Intn(100) < 90 {
				k = rng.Intn(15) // hot set fits the pool
			} else {
				k = 100 + rng.Intn(1000)
			}
			p.Touch(key(k))
		}
		return p.Stats().HitRate()
	}
	lru, clock, random := run(LRU), run(Clock), run(Random)
	if clock < lru-0.03 {
		t.Errorf("clock hit rate %.3f far below LRU %.3f", clock, lru)
	}
	if clock <= random {
		t.Errorf("clock %.3f should beat random %.3f on skewed access", clock, random)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, pol := range []Policy{Random, LRU, Clock} {
		p := New(5, pol, nil, 42)
		for i := 0; i < 100; i++ {
			p.Touch(key(i % 17))
			if p.Len() > 5 {
				t.Fatalf("%v: %d resident pages in a 5-frame pool", pol, p.Len())
			}
		}
	}
}

func TestRandomReplacementMatchesPaperFaultModel(t *testing.T) {
	// §2: with |M| of S pages resident and random replacement, a uniform
	// random access faults with probability ≈ 1 - |M|/S.
	const S = 1000
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		m := int(frac * S)
		p := New(m, Random, nil, 7)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < m; i++ {
			p.Warm(key(rng.Intn(S)))
		}
		p.ResetStats()
		const accesses = 200000
		for i := 0; i < accesses; i++ {
			p.Touch(key(rng.Intn(S)))
		}
		got := float64(p.Stats().Faults) / accesses
		want := 1 - frac
		if math.Abs(got-want) > 0.03 {
			t.Errorf("H=%.2f: fault rate %.3f, model predicts %.3f", frac, got, want)
		}
	}
}

func TestWarmDoesNotCount(t *testing.T) {
	p := New(3, Random, nil, 1)
	p.Warm(key(1))
	p.Warm(key(1)) // idempotent
	if s := p.Stats(); s.Accesses != 0 || s.Faults != 0 {
		t.Fatalf("warm counted: %+v", s)
	}
	if p.Touch(key(1)) {
		t.Fatal("warmed page faulted")
	}
}

func TestClockChargedPerFault(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	p := New(2, LRU, clock, 1)
	p.Touch(key(1))
	p.Touch(key(1))
	p.Touch(key(2))
	if got := clock.Counters().RandIOs; got != 2 {
		t.Fatalf("charged %d random IOs, want 2", got)
	}
}

func TestResident(t *testing.T) {
	p := New(1, LRU, nil, 1)
	p.Touch(key(1))
	if !p.Resident(key(1)) || p.Resident(key(2)) {
		t.Fatal("Resident broken")
	}
}

func TestReadThroughRetriesTransients(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 64)
	sp := disk.MustCreate("s")
	for i := 0; i < 4; i++ {
		if _, err := sp.Append([]byte{byte(i + 1)}, simio.Uncharged); err != nil {
			t.Fatal(err)
		}
	}
	disk.SetInjector(&failFirst{}) // the first charged read fails transiently
	p := New(2, LRU, clock, 1)

	data, faulted, err := p.ReadThrough(sp, 0, simio.Rand)
	if err != nil || !faulted || data[0] != 1 {
		t.Fatalf("faulting read: data=%v faulted=%v err=%v", data, faulted, err)
	}
	if got := clock.Counters().RandIOs; got != 1 {
		t.Fatalf("faulting read charged %d rand IOs (failed attempt must not charge)", got)
	}
	// Hit: served from memory, uncharged, injector not consulted.
	data, faulted, err = p.ReadThrough(sp, 0, simio.Rand)
	if err != nil || faulted || data[0] != 1 {
		t.Fatalf("hit: data=%v faulted=%v err=%v", data, faulted, err)
	}
	if got := clock.Counters().RandIOs; got != 1 {
		t.Fatalf("hit charged IO: %d", got)
	}
	s := p.Stats()
	if s.Accesses != 2 || s.Faults != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}

	// A permanent failure is not retried and surfaces to the caller.
	disk.SetInjector(fault.NewInjector(1).PermanentAfter("s", 0))
	if _, _, err := p.ReadThrough(sp, 1, simio.Rand); !errors.Is(err, fault.ErrPermanent) {
		t.Fatalf("permanent fault: %v", err)
	}
	if p.Resident(PageKey{Space: "s", Page: 1}) {
		t.Fatal("failed read inserted the page")
	}
}

// failFirst fails the first charged IO with a transient fault.
type failFirst struct{ n int }

func (f *failFirst) ChargedIO(string, simio.Access) simio.Outcome {
	f.n++
	if f.n == 1 {
		return simio.Outcome{Err: fault.ErrTransient}
	}
	return simio.Outcome{}
}
