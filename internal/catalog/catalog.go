// Package catalog maintains the relation registry: named heap files with
// schemas, per-column statistics for the planner, and secondary indexes
// (B+-tree or AVL, the two §2 access methods behind one interface).
package catalog

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"mmdb/internal/avl"
	"mmdb/internal/btree"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// IndexKind selects the access method of an index.
type IndexKind int

// Index kinds.
const (
	BTree IndexKind = iota // the disk-oriented default (§2's conclusion)
	AVL                    // the main-memory alternative
)

func (k IndexKind) String() string {
	if k == AVL {
		return "avl"
	}
	return "btree"
}

// Index is the common face of the two access methods.
type Index interface {
	// Kind returns the access method.
	Kind() IndexKind
	// Insert adds a tuple under its key.
	Insert(key []byte, tup tuple.Tuple)
	// Search returns the tuples stored under key.
	Search(key []byte) []tuple.Tuple
	// Ascend walks tuples with key >= start in order until fn returns
	// false; nil start walks everything.
	Ascend(start []byte, fn func(key []byte, tup tuple.Tuple) bool)
	// Len returns the number of indexed tuples.
	Len() int
}

type btreeIndex struct{ t *btree.Tree }

func (b btreeIndex) Kind() IndexKind { return BTree }
func (b btreeIndex) Insert(key []byte, tup tuple.Tuple) {
	b.t.Insert(key, tup)
}
func (b btreeIndex) Search(key []byte) []tuple.Tuple {
	return b.t.Search(key, nil)
}
func (b btreeIndex) Ascend(start []byte, fn func([]byte, tuple.Tuple) bool) {
	b.t.AscendRange(start, nil, fn)
}
func (b btreeIndex) Len() int { return b.t.NumTuples() }

type avlIndex struct{ t *avl.Tree }

func (a avlIndex) Kind() IndexKind { return AVL }
func (a avlIndex) Insert(key []byte, tup tuple.Tuple) {
	a.t.Insert(key, tup)
}
func (a avlIndex) Search(key []byte) []tuple.Tuple {
	return a.t.Search(key, nil)
}
func (a avlIndex) Ascend(start []byte, fn func([]byte, tuple.Tuple) bool) {
	a.t.Ascend(start, nil, func(key []byte, vals []tuple.Tuple) bool {
		for _, v := range vals {
			if !fn(key, v) {
				return false
			}
		}
		return true
	})
}
func (a avlIndex) Len() int { return a.t.NumTuples() }

// Relation is one cataloged table. The index and histogram registries are
// guarded by an internal RW mutex so planners reading them race-free
// against DDL building new ones; the heap file itself is protected by the
// engine's relation-level S/X locks, not here.
type Relation struct {
	Name string
	File *heap.File

	mu         sync.RWMutex
	indexes    map[int]Index      // by column
	histograms map[int]*Histogram // by column (see histogram.go)
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *tuple.Schema { return r.File.Schema() }

// Index returns the index on col, if any.
func (r *Relation) Index(col int) (Index, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ix, ok := r.indexes[col]
	return ix, ok
}

// IndexedColumns returns the indexed columns in ascending order.
func (r *Relation) IndexedColumns() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []int
	for c := range r.indexes {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Stats summarizes a relation for the planner.
type Stats struct {
	Pages         int
	Tuples        int64
	TuplesPerPage int
	Distinct      map[int]int64 // distinct values per column (computed on demand)
}

// shardCount is the number of independently locked registry stripes. Name
// lookups hash to a stripe, so concurrent queries touching different
// relations (and usually even the same one — lookups only take read locks)
// never contend on a single catalog mutex.
const shardCount = 16

type catShard struct {
	mu   sync.RWMutex
	rels map[string]*Relation
}

// Catalog is the registry, sharded behind striped RW locks: safe for
// concurrent lookups, creates, adopts and drops.
type Catalog struct {
	disk   *simio.Disk
	shards [shardCount]catShard
}

// New creates an empty catalog on disk.
func New(disk *simio.Disk) *Catalog {
	c := &Catalog{disk: disk}
	for i := range c.shards {
		c.shards[i].rels = make(map[string]*Relation)
	}
	return c
}

// Disk returns the underlying disk.
func (c *Catalog) Disk() *simio.Disk { return c.disk }

// ResourceID maps a relation name to the lock-table resource id used for
// relation-level S/X intents. FNV-1a over the name: stable across runs, so
// virtual-clock experiments that record lock traces stay reproducible.
func ResourceID(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

func (c *Catalog) shardOf(name string) *catShard {
	return &c.shards[ResourceID(name)%shardCount]
}

// Create registers a new empty relation.
func (c *Catalog) Create(name string, schema *tuple.Schema) (*Relation, error) {
	sh := c.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.rels[name]; ok {
		return nil, fmt.Errorf("catalog: relation %q already exists", name)
	}
	f, err := heap.Create(c.disk, name, schema)
	if err != nil {
		return nil, err
	}
	r := &Relation{Name: name, File: f, indexes: make(map[int]Index)}
	sh.rels[name] = r
	return r, nil
}

// Adopt registers an existing heap file (e.g. one produced by the workload
// generator).
func (c *Catalog) Adopt(f *heap.File) (*Relation, error) {
	sh := c.shardOf(f.Name())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.rels[f.Name()]; ok {
		return nil, fmt.Errorf("catalog: relation %q already exists", f.Name())
	}
	r := &Relation{Name: f.Name(), File: f, indexes: make(map[int]Index)}
	sh.rels[f.Name()] = r
	return r, nil
}

// Get looks a relation up.
func (c *Catalog) Get(name string) (*Relation, error) {
	sh := c.shardOf(name)
	sh.mu.RLock()
	r, ok := sh.rels[name]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q does not exist", name)
	}
	return r, nil
}

// Names returns the registered relation names in sorted order.
func (c *Catalog) Names() []string {
	var out []string
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for n := range sh.rels {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Drop removes a relation and its storage.
func (c *Catalog) Drop(name string) error {
	sh := c.shardOf(name)
	sh.mu.Lock()
	r, ok := sh.rels[name]
	if ok {
		delete(sh.rels, name)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("catalog: relation %q does not exist", name)
	}
	r.File.Drop()
	return nil
}

// BuildIndex constructs an index on col. The relation is scanned uncharged
// (index construction cost is not part of any §2/§3 experiment; the
// experiments charge traversals explicitly).
func (c *Catalog) BuildIndex(name string, col int, kind IndexKind) (Index, error) {
	r, err := c.Get(name)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	if col < 0 || col >= schema.NumFields() {
		return nil, fmt.Errorf("catalog: column %d out of range for %q", col, name)
	}
	var ix Index
	switch kind {
	case BTree:
		t, err := btree.New(btree.Config{
			PageSize:   c.disk.PageSize(),
			KeyWidth:   schema.FieldWidth(col),
			TupleWidth: schema.Width(),
		})
		if err != nil {
			return nil, err
		}
		ix = btreeIndex{t: t}
	case AVL:
		ix = avlIndex{t: &avl.Tree{}}
	default:
		return nil, fmt.Errorf("catalog: unknown index kind %d", int(kind))
	}
	err = r.File.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		ix.Insert(schema.KeyBytes(t, col), t.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.indexes[col] = ix
	r.mu.Unlock()
	return ix, nil
}

// Stats computes planner statistics. Distinct counts are exact (hash-set
// based) and computed for the listed columns only.
func (c *Catalog) Stats(name string, distinctCols ...int) (Stats, error) {
	r, err := c.Get(name)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Pages:         r.File.NumPages(),
		Tuples:        r.File.NumTuples(),
		TuplesPerPage: r.File.TuplesPerPage(),
		Distinct:      make(map[int]int64),
	}
	if len(distinctCols) == 0 {
		return s, nil
	}
	schema := r.Schema()
	sets := make([]map[string]struct{}, len(distinctCols))
	for i := range sets {
		sets[i] = make(map[string]struct{})
	}
	err = r.File.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		for i, col := range distinctCols {
			sets[i][string(schema.KeyBytes(t, col))] = struct{}{}
		}
		return true
	})
	if err != nil {
		return Stats{}, err
	}
	for i, col := range distinctCols {
		s.Distinct[col] = int64(len(sets[i]))
	}
	return s, nil
}
