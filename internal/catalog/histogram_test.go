package catalog

import (
	"math"
	"testing"

	"mmdb/internal/expr"
	"mmdb/internal/workload"
)

func histSetup(t *testing.T, tuples int, domain int64) (*Catalog, *Histogram) {
	t.Helper()
	disk, c := env()
	f := workload.MustGenerate(disk, workload.RelationSpec{
		Name: "h", Tuples: tuples, KeyDomain: domain, PayloadWidth: 12, Seed: 21,
	})
	if _, err := c.Adopt(f); err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHistogram("h", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestHistogramBounds(t *testing.T) {
	_, h := histSetup(t, 5000, 1000)
	if h.Total != 5000 {
		t.Fatalf("total %d", h.Total)
	}
	if h.Min < 0 || h.Max >= 1000 || h.Min >= h.Max {
		t.Fatalf("range [%d,%d]", h.Min, h.Max)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Fatalf("bucket counts sum to %d", sum)
	}
}

func TestUniformEstimates(t *testing.T) {
	_, h := histSetup(t, 20000, 1000)
	// Uniform keys: P(k <= 500) ≈ 0.5, P(k = v) ≈ 1/1000.
	if got := h.LeqFraction(499); math.Abs(got-0.5) > 0.05 {
		t.Errorf("LeqFraction(499) = %.3f", got)
	}
	if got := h.EqFraction(500); math.Abs(got-0.001) > 0.001 {
		t.Errorf("EqFraction = %.5f", got)
	}
	if got := h.Selectivity(expr.Ge, 900); math.Abs(got-0.1) > 0.05 {
		t.Errorf("Ge 900 = %.3f", got)
	}
	if got := h.Selectivity(expr.Lt, h.Min); got != 0 {
		t.Errorf("Lt min = %.3f", got)
	}
	if got := h.Selectivity(expr.Le, h.Max+100); got != 1 {
		t.Errorf("Le beyond max = %.3f", got)
	}
	if got := h.EqFraction(h.Max + 100); got != 0 {
		t.Errorf("Eq out of range = %.3f", got)
	}
}

func TestHistogramAccessors(t *testing.T) {
	c, _ := histSetup(t, 100, 10)
	r, _ := c.Get("h")
	if _, ok := r.Histogram(0); !ok {
		t.Fatal("histogram not registered")
	}
	if _, ok := r.Histogram(1); ok {
		t.Fatal("phantom histogram")
	}
}

func TestHistogramValidation(t *testing.T) {
	c, _ := histSetup(t, 10, 5)
	if _, err := c.BuildHistogram("h", 1, 8); err == nil {
		t.Error("string column accepted")
	}
	if _, err := c.BuildHistogram("h", 0, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := c.BuildHistogram("none", 0, 8); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestEmptyRelationHistogram(t *testing.T) {
	disk, c := env()
	f := workload.MustGenerate(disk, workload.RelationSpec{Name: "e", Tuples: 0, PayloadWidth: 12})
	if _, err := c.Adopt(f); err != nil {
		t.Fatal(err)
	}
	h, err := c.BuildHistogram("e", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.LeqFraction(5) != 0 || h.EqFraction(5) != 0 {
		t.Fatal("empty histogram estimates nonzero")
	}
}
