package catalog

import (
	"fmt"

	"mmdb/internal/expr"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Histogram is an equi-width histogram over an int64 column, used by the
// planner to estimate predicate selectivities (the statistics side of the
// §4 [SELI79] machinery).
type Histogram struct {
	Min, Max int64
	Counts   []int64
	Total    int64
	Distinct int64
}

func (h *Histogram) width() float64 {
	if h.Max == h.Min {
		return 1
	}
	return float64(h.Max-h.Min+1) / float64(len(h.Counts))
}

func (h *Histogram) bucketOf(v int64) int {
	if v < h.Min {
		return -1
	}
	if v > h.Max {
		return len(h.Counts)
	}
	b := int(float64(v-h.Min) / h.width())
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// LeqFraction estimates the fraction of values <= v, interpolating within
// the bucket holding v.
func (h *Histogram) LeqFraction(v int64) float64 {
	if h.Total == 0 {
		return 0
	}
	switch b := h.bucketOf(v); {
	case b < 0:
		return 0
	case b >= len(h.Counts):
		return 1
	default:
		var below int64
		for i := 0; i < b; i++ {
			below += h.Counts[i]
		}
		lo := h.Min + int64(float64(b)*h.width())
		frac := float64(v-lo+1) / h.width()
		if frac > 1 {
			frac = 1
		}
		return (float64(below) + frac*float64(h.Counts[b])) / float64(h.Total)
	}
}

// EqFraction estimates the fraction of values equal to v.
func (h *Histogram) EqFraction(v int64) float64 {
	if h.Total == 0 {
		return 0
	}
	b := h.bucketOf(v)
	if b < 0 || b >= len(h.Counts) {
		return 0
	}
	// Values spread uniformly over the bucket's distinct values.
	perBucketDistinct := float64(h.Distinct) / float64(len(h.Counts))
	if perBucketDistinct < 1 {
		perBucketDistinct = 1
	}
	return float64(h.Counts[b]) / perBucketDistinct / float64(h.Total)
}

// Selectivity estimates one comparison against this histogram's column.
func (h *Histogram) Selectivity(op expr.Op, v int64) float64 {
	switch op {
	case expr.Eq:
		return h.EqFraction(v)
	case expr.Ne:
		return 1 - h.EqFraction(v)
	case expr.Le:
		return h.LeqFraction(v)
	case expr.Lt:
		return h.LeqFraction(v - 1)
	case expr.Ge:
		return 1 - h.LeqFraction(v-1)
	case expr.Gt:
		return 1 - h.LeqFraction(v)
	default:
		return 0.5
	}
}

// BuildHistogram scans the relation (uncharged: statistics collection, not
// an experiment) and builds a histogram with the given bucket count over
// an int64 column.
func (c *Catalog) BuildHistogram(name string, col, buckets int) (*Histogram, error) {
	r, err := c.Get(name)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	if col < 0 || col >= schema.NumFields() || schema.Field(col).Kind != tuple.Int64 {
		return nil, fmt.Errorf("catalog: histogram needs an int64 column")
	}
	if buckets < 1 {
		return nil, fmt.Errorf("catalog: need at least one bucket")
	}
	var vals []int64
	distinct := make(map[int64]struct{})
	err = r.File.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		v := schema.Int(t, col)
		vals = append(vals, v)
		distinct[v] = struct{}{}
		return true
	})
	if err != nil {
		return nil, err
	}
	h := &Histogram{Counts: make([]int64, buckets), Distinct: int64(len(distinct))}
	if len(vals) == 0 {
		return h, nil
	}
	h.Min, h.Max = vals[0], vals[0]
	for _, v := range vals {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	for _, v := range vals {
		h.Counts[h.bucketOf(v)]++
		h.Total++
	}
	r.mu.Lock()
	if r.histograms == nil {
		r.histograms = make(map[int]*Histogram)
	}
	r.histograms[col] = h
	r.mu.Unlock()
	return h, nil
}

// Histogram returns the column's histogram, if one was built.
func (r *Relation) Histogram(col int) (*Histogram, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.histograms[col]
	return h, ok
}
