package catalog

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
	"mmdb/internal/workload"
)

func env() (*simio.Disk, *Catalog) {
	disk := simio.NewDisk(cost.NewClock(cost.DefaultParams()), 256)
	return disk, New(disk)
}

func schema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "p", Kind: tuple.String, Size: 12},
	)
}

func TestCreateGetDrop(t *testing.T) {
	_, c := env()
	r, err := c.Create("emp", schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("emp", schema()); err == nil {
		t.Fatal("duplicate create accepted")
	}
	got, err := c.Get("emp")
	if err != nil || got != r {
		t.Fatalf("get: %v", err)
	}
	if _, err := c.Get("none"); err == nil {
		t.Fatal("missing relation found")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "emp" {
		t.Fatalf("names %v", names)
	}
	if err := c.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("emp"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestAdopt(t *testing.T) {
	disk, c := env()
	f := workload.MustGenerate(disk, workload.RelationSpec{Name: "w", Tuples: 10, PayloadWidth: 12, Seed: 1})
	if _, err := c.Adopt(f); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Adopt(f); err == nil {
		t.Fatal("double adopt accepted")
	}
}

func TestIndexesBothKinds(t *testing.T) {
	disk, c := env()
	f := workload.MustGenerate(disk, workload.RelationSpec{Name: "w", Tuples: 500, KeyDomain: 100, PayloadWidth: 12, Seed: 2})
	r, err := c.Adopt(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []IndexKind{BTree, AVL} {
		col := 0
		ix, err := c.BuildIndex("w", col, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if ix.Kind() != kind {
			t.Fatalf("kind %v", ix.Kind())
		}
		if ix.Len() != 500 {
			t.Fatalf("%v indexed %d tuples", kind, ix.Len())
		}
		// All tuples with each key found.
		sc := r.Schema()
		counts := map[int64]int{}
		f.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
			counts[sc.Int(tp, 0)]++
			return true
		})
		for k, n := range counts {
			probe := sc.MustEncode(tuple.IntValue(k), tuple.StringValue(""))
			if got := len(ix.Search(sc.KeyBytes(probe, 0))); got != n {
				t.Fatalf("%v: key %d found %d of %d", kind, k, got, n)
			}
		}
		// Ascend covers everything in order.
		var last int64 = -1 << 62
		n := 0
		ix.Ascend(nil, func(key []byte, _ tuple.Tuple) bool {
			n++
			return true
		})
		if n != 500 {
			t.Fatalf("%v: ascend visited %d", kind, n)
		}
		_ = last
	}
	if cols := r.IndexedColumns(); len(cols) != 1 || cols[0] != 0 {
		t.Fatalf("indexed columns %v", cols)
	}
	if _, err := c.BuildIndex("w", 9, BTree); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestStats(t *testing.T) {
	disk, c := env()
	f := workload.MustGenerate(disk, workload.RelationSpec{Name: "w", Tuples: 300, KeyDomain: 40, PayloadWidth: 12, Seed: 3})
	if _, err := c.Adopt(f); err != nil {
		t.Fatal(err)
	}
	s, err := c.Stats("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tuples != 300 || s.TuplesPerPage != 12 {
		t.Fatalf("stats %+v", s)
	}
	if d := s.Distinct[0]; d < 30 || d > 40 {
		t.Fatalf("distinct(key) = %d, domain 40", d)
	}
}
