// Package heap implements unordered paged relation storage (heap files)
// over the simulated disk: the base representation of the paper's relations
// R and S, and of the temporary files (sort runs, hash partitions,
// passed-over tuple files) the join algorithms create.
package heap

import (
	"fmt"

	"mmdb/internal/fault"
	"mmdb/internal/page"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// File is a paged sequence of fixed-width tuples. Appends are buffered one
// page at a time; Flush writes the final partial page. Mutation (Append,
// Flush, Drop, Rewrite) is not safe for concurrent use, but read-only
// Scans of a flushed file may run concurrently — the parallel join workers
// rely on this when each scans its own partition file.
type File struct {
	disk    *simio.Disk
	space   *simio.Space
	schema  *tuple.Schema
	cur     page.TuplePage
	buffer  int // tuples in cur
	flushed bool
	tuples  int64
}

// Create makes an empty heap file named name on disk.
func Create(disk *simio.Disk, name string, schema *tuple.Schema) (*File, error) {
	space, err := disk.Create(name)
	if err != nil {
		return nil, err
	}
	return &File{
		disk:   disk,
		space:  space,
		schema: schema,
		cur:    page.New(disk.PageSize(), schema.Width()),
	}, nil
}

// MustCreate is Create that panics on error.
func MustCreate(disk *simio.Disk, name string, schema *tuple.Schema) *File {
	f, err := Create(disk, name, schema)
	if err != nil {
		panic(err)
	}
	return f
}

// Schema returns the file's tuple schema.
func (f *File) Schema() *tuple.Schema { return f.schema }

// OnDisk returns a handle on the same heap file whose IO charges through d
// — normally a View of the file's own disk (per-session cost accounting)
// or the base disk when re-homing a session-produced file. Handles share
// the page storage and the current append buffer; the caller must ensure
// at most one handle mutates the file, and never concurrently with reads
// through the others (the engine's relation-level S/X locks provide this).
func (f *File) OnDisk(d *simio.Disk) (*File, error) {
	space, err := d.Open(f.space.Name())
	if err != nil {
		return nil, err
	}
	return &File{
		disk:    d,
		space:   space,
		schema:  f.schema,
		cur:     f.cur,
		buffer:  f.buffer,
		flushed: f.flushed,
		tuples:  f.tuples,
	}, nil
}

// Disk returns the disk the file lives on.
func (f *File) Disk() *simio.Disk { return f.disk }

// Name returns the underlying space name.
func (f *File) Name() string { return f.space.Name() }

// NumTuples returns the number of tuples in the file (including buffered).
func (f *File) NumTuples() int64 { return f.tuples }

// NumPages returns the number of pages the file occupies, counting a
// non-empty append buffer as one page (the paper's |R|).
func (f *File) NumPages() int {
	n := f.space.NumPages()
	if f.cur.Count() > 0 {
		n++
	}
	return n
}

// Buffered returns the number of tuples sitting in the unflushed append
// buffer — zero for any file that has been Flushed and not appended to
// since. Readers that serve tuple views (the sort's run cursors) use it to
// tell whether a page aliases the live buffer and must be cloned.
func (f *File) Buffered() int { return f.cur.Count() }

// TuplesPerPage returns the page capacity in tuples (the paper's ||R||/|R|).
func (f *File) TuplesPerPage() int { return f.cur.Capacity() }

// Append adds t to the file. Full pages are written with the given access
// kind.
func (f *File) Append(t tuple.Tuple, a simio.Access) error {
	if len(t) != f.schema.Width() {
		return fmt.Errorf("heap: tuple width %d does not match schema width %d", len(t), f.schema.Width())
	}
	if !f.cur.Append(t) {
		if err := f.writeCur(a); err != nil {
			return err
		}
		f.cur.Append(t)
	}
	f.tuples++
	return nil
}

// Flush writes any buffered partial page.
func (f *File) Flush(a simio.Access) error {
	if f.cur.Count() == 0 {
		return nil
	}
	return f.writeCur(a)
}

// writeCur flushes the append buffer to disk. Injected transient device
// faults are absorbed by bounded retry with virtual-time backoff; anything
// else (permanent failures, plain injected errors) propagates immediately.
func (f *File) writeCur(a simio.Access) error {
	err := fault.Retry(f.disk.Clock(), 0, func() error {
		_, e := f.space.Append(f.cur.Bytes(), a)
		return e
	})
	if err != nil {
		return err
	}
	f.cur.Reset()
	return nil
}

// ReadPage returns the n-th page of the file. The append buffer, if
// non-empty, is addressable as page NumPages()-1 and never charges IO.
// Like writeCur, injected transient faults are absorbed by bounded retry.
func (f *File) ReadPage(n int, a simio.Access) (page.TuplePage, error) {
	flushed := f.space.NumPages()
	if n < flushed {
		var data []byte
		err := fault.Retry(f.disk.Clock(), 0, func() error {
			d, e := f.space.Read(n, a)
			data = d
			return e
		})
		if err != nil {
			return page.TuplePage{}, err
		}
		return page.Wrap(data, f.schema.Width()), nil
	}
	if n == flushed && f.cur.Count() > 0 {
		return f.cur, nil
	}
	return page.TuplePage{}, fmt.Errorf("heap: page %d out of range in %q", n, f.Name())
}

// Scan iterates every tuple in file order, reading each page with the given
// access kind, until fn returns false. The tuple views passed to fn are
// only valid during the call; Clone to retain.
func (f *File) Scan(a simio.Access, fn func(t tuple.Tuple) bool) error {
	return f.ScanRange(0, f.NumPages(), a, fn)
}

// ScanRange iterates the tuples of pages [start, end) in file order, until
// fn returns false. The chunked sort's formation workers each scan their
// own disjoint page range concurrently; like Scan, the tuple views passed
// to fn are only valid during the call.
func (f *File) ScanRange(start, end int, a simio.Access, fn func(t tuple.Tuple) bool) error {
	if n := f.NumPages(); end > n {
		end = n
	}
	for i := start; i < end; i++ {
		p, err := f.ReadPage(i, a)
		if err != nil {
			return err
		}
		for j := 0; j < p.Count(); j++ {
			if !fn(p.Tuple(j)) {
				return nil
			}
		}
	}
	return nil
}

// Drop removes the file's pages from the disk.
func (f *File) Drop() {
	f.space.Truncate()
	f.disk.Remove(f.Name())
	f.cur.Reset()
	f.tuples = 0
}

// Rewrite streams every tuple through fn and compacts the file in place:
// fn returns the (possibly replaced) tuple and whether to keep it. The
// rewrite is uncharged — engine-level maintenance, not part of any paper
// experiment.
func (f *File) Rewrite(fn func(t tuple.Tuple) (tuple.Tuple, bool)) error {
	var kept []tuple.Tuple
	err := f.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		out, keep := fn(t)
		if keep {
			if len(out) != f.schema.Width() {
				err := fmt.Errorf("heap: rewrite produced a %d-byte tuple, want %d", len(out), f.schema.Width())
				panic(err)
			}
			kept = append(kept, out.Clone())
		}
		return true
	})
	if err != nil {
		return err
	}
	f.space.Truncate()
	f.cur.Reset()
	f.tuples = 0
	for _, t := range kept {
		if err := f.Append(t, simio.Uncharged); err != nil {
			return err
		}
	}
	return f.Flush(simio.Uncharged)
}

// Load appends all tuples, then flushes; a convenience for test and
// workload setup (uncharged, like the paper's initial relation reads).
func (f *File) Load(tuples []tuple.Tuple) error {
	for _, t := range tuples {
		if err := f.Append(t, simio.Uncharged); err != nil {
			return err
		}
	}
	return f.Flush(simio.Uncharged)
}
