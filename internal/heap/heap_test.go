package heap

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

func env() (*simio.Disk, *cost.Clock) {
	clock := cost.NewClock(cost.DefaultParams())
	return simio.NewDisk(clock, 256), clock
}

func schema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "p", Kind: tuple.String, Size: 12},
	)
}

func TestAppendScanRoundTrip(t *testing.T) {
	disk, _ := env()
	f := MustCreate(disk, "r", schema())
	const n = 100
	for i := int64(0); i < n; i++ {
		if err := f.Append(schema().MustEncode(tuple.IntValue(i), tuple.StringValue("x")), simio.Uncharged); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumTuples() != n {
		t.Fatalf("tuples = %d", f.NumTuples())
	}
	// 252/20 = 12 tuples/page -> 100 tuples = 9 pages (8 full + buffer).
	if f.TuplesPerPage() != 12 {
		t.Fatalf("tuples/page = %d", f.TuplesPerPage())
	}
	var got []int64
	err := f.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		got = append(got, schema().Int(tp, 0))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestScanIncludesUnflushedBuffer(t *testing.T) {
	disk, _ := env()
	f := MustCreate(disk, "r", schema())
	f.Append(schema().MustEncode(tuple.IntValue(1), tuple.StringValue("a")), simio.Uncharged)
	count := 0
	f.Scan(simio.Uncharged, func(tuple.Tuple) bool { count++; return true })
	if count != 1 {
		t.Fatalf("scan of buffered tuple saw %d", count)
	}
	if f.NumPages() != 1 {
		t.Fatalf("pages = %d", f.NumPages())
	}
}

func TestFlushChargesAndScanCharges(t *testing.T) {
	disk, clock := env()
	f := MustCreate(disk, "r", schema())
	for i := 0; i < 30; i++ { // 12/page: 2 full pages + partial
		f.Append(schema().MustEncode(tuple.IntValue(int64(i)), tuple.StringValue("a")), simio.Seq)
	}
	if err := f.Flush(simio.Seq); err != nil {
		t.Fatal(err)
	}
	if got := clock.Counters().SeqIOs; got != 3 {
		t.Fatalf("writes charged %d, want 3", got)
	}
	clock.Reset()
	f.Scan(simio.Rand, func(tuple.Tuple) bool { return true })
	if got := clock.Counters().RandIOs; got != 3 {
		t.Fatalf("scan charged %d rand IOs, want 3", got)
	}
}

func TestEarlyScanStop(t *testing.T) {
	disk, _ := env()
	f := MustCreate(disk, "r", schema())
	f.Load([]tuple.Tuple{
		schema().MustEncode(tuple.IntValue(1), tuple.StringValue("a")),
		schema().MustEncode(tuple.IntValue(2), tuple.StringValue("b")),
	})
	n := 0
	f.Scan(simio.Uncharged, func(tuple.Tuple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop saw %d", n)
	}
}

func TestWidthMismatchRejected(t *testing.T) {
	disk, _ := env()
	f := MustCreate(disk, "r", schema())
	if err := f.Append(make(tuple.Tuple, 3), simio.Uncharged); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestReadPageBounds(t *testing.T) {
	disk, _ := env()
	f := MustCreate(disk, "r", schema())
	if _, err := f.ReadPage(0, simio.Uncharged); err == nil {
		t.Fatal("read of empty file succeeded")
	}
}

func TestDrop(t *testing.T) {
	disk, _ := env()
	f := MustCreate(disk, "r", schema())
	f.Load([]tuple.Tuple{schema().MustEncode(tuple.IntValue(1), tuple.StringValue("a"))})
	f.Drop()
	if f.NumTuples() != 0 || f.NumPages() != 0 {
		t.Fatal("drop left data")
	}
	// The name is free again.
	if _, err := Create(disk, "r", schema()); err != nil {
		t.Fatalf("name not released: %v", err)
	}
}
