// Package sql is the engine's SQL front door: a hand-written tokenizer,
// a recursive-descent parser producing a small AST, and a binder that
// resolves names against the catalog and lowers statements onto the
// engine's typed predicates (internal/expr) and the §4 planner's query
// shape. The grammar, type rules and error taxonomy are specified in
// docs/SQL.md — that document is the contract; parser and binder tests
// cite its section numbers.
package sql

import "fmt"

// Code classifies a front-door rejection. Every code corresponds to one
// subsection of the docs/SQL.md error taxonomy (§7) and renders with that
// section number, so an error message always points at its contract.
type Code int

// Rejection codes (docs/SQL.md §7).
const (
	// ErrLex (§7.1): the input could not be tokenized — an unterminated
	// string, an illegal character, or a malformed/overflowing number.
	ErrLex Code = iota + 1
	// ErrSyntax (§7.2): tokens did not match the grammar.
	ErrSyntax
	// ErrUnknownTable (§7.3): a FROM/JOIN/INTO table or a qualifier
	// names no cataloged relation (or no relation in the FROM list).
	ErrUnknownTable
	// ErrUnknownColumn (§7.4): a column reference resolves to no column
	// of its table (or of any FROM table, when unqualified).
	ErrUnknownColumn
	// ErrAmbiguousColumn (§7.5): an unqualified column name matches
	// columns in two or more FROM tables.
	ErrAmbiguousColumn
	// ErrType (§7.6): a literal's kind does not fit its column, an
	// aggregate is applied to a non-int64 column, a join compares
	// differently typed columns, or a string literal exceeds its
	// column's fixed width.
	ErrType
	// ErrUnsupported (§7.7): the statement is grammatical and
	// well-typed but outside the engine's documented semantic subset
	// (e.g. GROUP BY over a join, a cross-table WHERE disjunct).
	ErrUnsupported
)

// section maps a code to its docs/SQL.md subsection.
func (c Code) section() string {
	if c >= ErrLex && c <= ErrUnsupported {
		return fmt.Sprintf("§7.%d", int(c))
	}
	return "§7"
}

func (c Code) String() string {
	switch c {
	case ErrLex:
		return "lexical error"
	case ErrSyntax:
		return "syntax error"
	case ErrUnknownTable:
		return "unknown table"
	case ErrUnknownColumn:
		return "unknown column"
	case ErrAmbiguousColumn:
		return "ambiguous column"
	case ErrType:
		return "type error"
	case ErrUnsupported:
		return "unsupported"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// Error is a typed front-door rejection: what class of problem (Code,
// keyed to the docs/SQL.md §7 taxonomy), where in the statement text
// (byte offset), and a human-readable message.
type Error struct {
	Code Code
	Pos  int // byte offset into the statement text
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s (SQL.md %s) at byte %d: %s", e.Code, e.Code.section(), e.Pos, e.Msg)
}

// errf builds a typed rejection.
func errf(code Code, pos int, format string, args ...any) *Error {
	return &Error{Code: code, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
