package sql

import (
	"strconv"
	"strings"
)

// tokKind enumerates token classes (docs/SQL.md §2).
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // ( ) , . * ; and the comparison operators
)

// token is one lexeme with its byte offset.
type token struct {
	kind tokKind
	text string // keywords uppercased; symbols canonical; strings unquoted
	pos  int
}

// keywords are reserved words (docs/SQL.md §2.2). Aggregate function
// names are deliberately NOT keywords — the parser recognizes them
// positionally (identifier followed by '('), so a column may be named
// "count".
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "ON": true,
	"WHERE": true, "GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"AND": true, "OR": true, "NOT": true,
}

// lex tokenizes the statement text. Keywords are case-insensitive and
// uppercased; identifiers keep their spelling (they must match catalog
// names exactly). Strings are single-quoted with '' as the escape.
func lex(src string) ([]token, *Error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			isFloat := false
			if i+1 < len(src) && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			text := src[start:i]
			if isFloat {
				if _, err := strconv.ParseFloat(text, 64); err != nil {
					return nil, errf(ErrLex, start, "malformed float literal %q", text)
				}
				toks = append(toks, token{tokFloat, text, start})
			} else {
				if _, err := strconv.ParseInt(text, 10, 64); err != nil {
					return nil, errf(ErrLex, start, "integer literal %q overflows int64", text)
				}
				toks = append(toks, token{tokInt, text, start})
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= len(src) {
					return nil, errf(ErrLex, start, "unterminated string literal")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // '' escape
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tokString, b.String(), start})
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokSymbol, "!=", i}) // <> canonicalizes to !=
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "!=", i})
				i += 2
			} else {
				return nil, errf(ErrLex, i, "stray '!' (did you mean '!=' ?)")
			}
		case c == '=' || c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == ';' || c == '-':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, errf(ErrLex, i, "illegal character %q", string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
