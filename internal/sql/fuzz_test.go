package sql

import (
	"errors"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the front door and
// that every rejection is a typed *Error with a taxonomy code and an
// in-range position. The corpus seeds are the docs/SQL.md §1 examples
// plus the §7 rejection examples; CI runs this as a short -fuzztime
// smoke (see .github/workflows/ci.yml).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// §1 examples
		"SELECT * FROM emp WHERE salary >= 50000 ORDER BY salary DESC LIMIT 10;",
		"SELECT emp.id, dept.budget FROM emp JOIN dept ON emp.dept = dept.id",
		"SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM emp GROUP BY dept ORDER BY dept",
		"SELECT dept FROM emp GROUP BY dept",
		"SELECT COUNT(*), AVG(salary) FROM emp",
		"INSERT INTO emp VALUES (1, 10, 52000), (2, 20, 61000)",
		"INSERT INTO emp (salary, id, dept) VALUES (52000, 3, 10)",
		"DELETE FROM emp WHERE dept = 20 AND salary < 40000",
		// §2.4 literal corners
		"SELECT * FROM t WHERE s = 'O''Brien' AND f = -2.5 AND i <> -9",
		// §7 rejections
		"SELECT * FROM emp WHERE name = 'unterminated",
		"SELECT #id FROM emp",
		"SELECT SUM(*) FROM emp",
		"SELECT * FROM emp; extra",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := newTestCatalog()
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%q): %T is not *sql.Error", src, err)
			}
			if se.Code < ErrLex || se.Code > ErrUnsupported {
				t.Fatalf("Parse(%q): code %d out of taxonomy", src, se.Code)
			}
			if se.Pos < 0 || se.Pos > len(src) {
				t.Fatalf("Parse(%q): pos %d out of [0,%d]", src, se.Pos, len(src))
			}
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q): nil statement without error", src)
		}
		// Binding a parseable statement must also never panic, and
		// must reject (if it rejects) with a typed error.
		if _, err := Bind(stmt, cat); err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Bind(%q): %T is not *sql.Error", src, err)
			}
		}
	})
}
