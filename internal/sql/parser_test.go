package sql

import (
	"errors"
	"strings"
	"testing"
)

// mustSelect parses src and returns the SELECT or fails the test.
func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	s, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, stmt)
	}
	return s
}

// TestParseSelectShapes covers the docs/SQL.md §3.1 clause structure.
func TestParseSelectShapes(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM emp WHERE salary >= 50000 ORDER BY salary DESC LIMIT 10;")
	if !s.Star || len(s.From) != 1 || s.From[0].Name != "emp" {
		t.Fatalf("star/from wrong: %+v", s)
	}
	if s.Where == nil || s.OrderBy == nil || !s.Desc || s.Limit != 10 {
		t.Fatalf("clauses wrong: %+v", s)
	}

	s = mustSelect(t, "select id, emp.name from emp")
	if s.Star || len(s.Items) != 2 {
		t.Fatalf("items wrong: %+v", s)
	}
	if s.Items[0].Col.String() != "id" || s.Items[1].Col.String() != "emp.name" {
		t.Fatalf("col refs wrong: %+v, %+v", s.Items[0].Col, s.Items[1].Col)
	}
	if s.Limit != -1 {
		t.Fatalf("absent LIMIT should be -1, got %d", s.Limit)
	}

	// ASC is accepted and is the default.
	s = mustSelect(t, "SELECT id FROM emp ORDER BY id ASC")
	if s.Desc {
		t.Fatal("ASC parsed as Desc")
	}
}

// TestParseJoins covers the §3.1 JOIN ... ON chain.
func TestParseJoins(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.y = c.z")
	if len(s.From) != 3 || len(s.Joins) != 2 {
		t.Fatalf("join chain wrong: from=%d joins=%d", len(s.From), len(s.Joins))
	}
	if s.Joins[0].Left.String() != "a.x" || s.Joins[0].Right.String() != "b.y" {
		t.Fatalf("first join wrong: %+v", s.Joins[0])
	}
	if s.Joins[1].Left.String() != "b.y" || s.Joins[1].Right.String() != "c.z" {
		t.Fatalf("second join wrong: %+v", s.Joins[1])
	}
}

// TestParseAggregates covers §3.1.1: contextual aggregate names, COUNT(*).
func TestParseAggregates(t *testing.T) {
	s := mustSelect(t, "SELECT dept, count(*), Sum(salary), MIN(salary), max(salary), avg(salary) FROM emp GROUP BY dept")
	if len(s.Items) != 6 {
		t.Fatalf("want 6 items, got %d", len(s.Items))
	}
	if s.Items[0].Col == nil || s.Items[0].Col.Name != "dept" {
		t.Fatalf("item 0 not plain dept: %+v", s.Items[0])
	}
	wantAgg := []string{"COUNT(*)", "SUM(salary)", "MIN(salary)", "MAX(salary)", "AVG(salary)"}
	for i, w := range wantAgg {
		a := s.Items[i+1].Agg
		if a == nil || a.String() != w {
			t.Fatalf("item %d: got %v, want %s", i+1, a, w)
		}
	}
	if s.GroupBy == nil || s.GroupBy.Name != "dept" {
		t.Fatalf("GROUP BY wrong: %+v", s.GroupBy)
	}

	// §2.2: aggregate names are not reserved — usable as a column.
	s = mustSelect(t, "SELECT count FROM emp")
	if s.Items[0].Col == nil || s.Items[0].Col.Name != "count" {
		t.Fatalf("column named count misparsed: %+v", s.Items[0])
	}
}

// TestParsePredicates covers §3.4 precedence: NOT > AND > OR.
func TestParsePredicates(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM emp WHERE a = 1 OR b = 2 AND NOT c = 3")
	or, ok := s.Where.(*OrExpr)
	if !ok {
		t.Fatalf("top is %T, want OR", s.Where)
	}
	if _, ok := or.L.(*CmpExpr); !ok {
		t.Fatalf("OR left is %T, want comparison", or.L)
	}
	and, ok := or.R.(*AndExpr)
	if !ok {
		t.Fatalf("OR right is %T, want AND", or.R)
	}
	if _, ok := and.R.(*NotExpr); !ok {
		t.Fatalf("AND right is %T, want NOT", and.R)
	}

	// Parentheses regroup.
	s = mustSelect(t, "SELECT * FROM emp WHERE (a = 1 OR b = 2) AND c = 3")
	if _, ok := s.Where.(*AndExpr); !ok {
		t.Fatalf("parenthesized top is %T, want AND", s.Where)
	}
}

// TestParseLiterals covers §2.4: negatives, floats, '' escapes, <> and
// operator canonicalization.
func TestParseLiterals(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM emp WHERE a = -5 AND b = 2.5 AND c = 'O''Brien' AND d <> -0.25")
	and := s.Where.(*AndExpr)
	leaves := []*CmpExpr{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *AndExpr:
			walk(e.L)
			walk(e.R)
		case *CmpExpr:
			leaves = append(leaves, e)
		}
	}
	walk(and)
	if len(leaves) != 4 {
		t.Fatalf("want 4 leaves, got %d", len(leaves))
	}
	if leaves[0].Lit.Kind != LitInt || leaves[0].Lit.I != -5 {
		t.Fatalf("leaf 0: %+v", leaves[0].Lit)
	}
	if leaves[1].Lit.Kind != LitFloat || leaves[1].Lit.F != 2.5 {
		t.Fatalf("leaf 1: %+v", leaves[1].Lit)
	}
	if leaves[2].Lit.Kind != LitString || leaves[2].Lit.S != "O'Brien" {
		t.Fatalf("leaf 2: %+v", leaves[2].Lit)
	}
	if leaves[3].Op != "!=" || leaves[3].Lit.F != -0.25 {
		t.Fatalf("leaf 3 (<> canonicalization): %+v", leaves[3])
	}
}

// TestParseInsert covers §3.2.
func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO emp VALUES (1, 10, 52000), (2, 20, 61000)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table.Name != "emp" || ins.Cols != nil || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert wrong: %+v", ins)
	}

	stmt, err = Parse("insert into emp (salary, id, dept) values (52000, 3, 10)")
	if err != nil {
		t.Fatal(err)
	}
	ins = stmt.(*InsertStmt)
	if len(ins.Cols) != 3 || ins.Cols[0].Name != "salary" {
		t.Fatalf("column list wrong: %+v", ins.Cols)
	}
}

// TestParseDelete covers §3.3.
func TestParseDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM emp WHERE dept = 20 AND salary < 40000")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table.Name != "emp" || del.Where == nil {
		t.Fatalf("delete wrong: %+v", del)
	}
	stmt, err = Parse("DELETE FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DeleteStmt).Where != nil {
		t.Fatal("bare DELETE should have nil Where")
	}
}

// TestParseErrors covers the §7.1/§7.2 examples from docs/SQL.md.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		code Code
		frag string // substring of the message
	}{
		// §7.1 lexical
		{"SELECT * FROM emp WHERE name = 'unterminated", ErrLex, "unterminated"},
		{"SELECT #id FROM emp", ErrLex, "illegal character"},
		{"SELECT * FROM emp LIMIT 99999999999999999999", ErrLex, "overflows"},
		{"SELECT * FROM emp WHERE a ! 1", ErrLex, "stray"},
		// §7.2 syntax
		{"SELECT FROM emp", ErrSyntax, "expected"},
		{"SELECT * FROM emp WHERE", ErrSyntax, "expected"},
		{"SELECT SUM(*) FROM emp", ErrSyntax, "only COUNT(*)"},
		{"SELECT * FROM emp; extra", ErrSyntax, "after end of statement"},
		{"SELECT FOO(id) FROM emp", ErrSyntax, "unknown aggregate"},
		{"UPDATE emp", ErrSyntax, "expected SELECT"},
		{"SELECT * FROM emp WHERE a = -'x'", ErrSyntax, "'-' must be followed"},
		{"SELECT * FROM emp LIMIT x", ErrSyntax, "non-negative integer"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %v", c.src, c.code)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q): error %T is not *sql.Error", c.src, err)
			continue
		}
		if se.Code != c.code {
			t.Errorf("Parse(%q): code %v, want %v (msg %q)", c.src, se.Code, c.code, se.Msg)
		}
		if !strings.Contains(se.Msg, c.frag) {
			t.Errorf("Parse(%q): msg %q missing %q", c.src, se.Msg, c.frag)
		}
		if se.Pos < 0 || se.Pos > len(c.src) {
			t.Errorf("Parse(%q): pos %d out of range", c.src, se.Pos)
		}
		// §7: the rendered message cites the taxonomy section.
		if !strings.Contains(se.Error(), "SQL.md §7.") {
			t.Errorf("Parse(%q): rendered error %q lacks section cite", c.src, se.Error())
		}
	}
}
