package sql

import (
	"mmdb/internal/agg"
	"mmdb/internal/expr"
	"mmdb/internal/tuple"
)

// Catalog resolves table names to schemas; the engine adapts its catalog
// behind this interface so the binder stays free of engine imports.
type Catalog interface {
	Table(name string) (*tuple.Schema, bool)
}

// Bound is a bound (name-resolved, type-checked) statement ready for the
// engine's executor.
type Bound interface{ bound() }

// BoundTable is one resolved FROM table.
type BoundTable struct {
	Name   string
	Schema *tuple.Schema
}

// BoundJoin is one resolved equijoin edge between two FROM tables.
type BoundJoin struct {
	LeftTable, LeftCol   int
	RightTable, RightCol int
}

// Output is one projected output column: source table/column plus the
// output field name (the reference as written).
type Output struct {
	Table, Col int
	Name       string
}

// BoundAgg is one aggregate select item over the statement's single
// table. Col is -1 for COUNT(*).
type BoundAgg struct {
	Func agg.Func
	Star bool
	Col  int
	Name string
}

// BoundSelect is a bound SELECT. The executor picks a lowering from its
// shape: Distinct → duplicate elimination; Aggs with GroupBy ≥ 0 →
// hash aggregation; Aggs only → a single-pass accumulating scan;
// otherwise a scan (1 table), a streaming hash join (2 tables) or a
// planner-built multi-join (3+ tables). Section references in this file
// are to docs/SQL.md.
type BoundSelect struct {
	Tables []BoundTable
	Joins  []BoundJoin
	// Preds holds the per-table WHERE predicate trees (docs/SQL.md
	// §3.4: with more than one table every top-level conjunct must
	// reference exactly one table). nil entries mean no predicate.
	Preds []expr.Predicate

	Cols     []Output // projected columns, in select-list order
	Distinct bool     // SELECT g FROM t GROUP BY g

	GroupBy  int // group column in table 0, or -1
	Aggs     []BoundAgg
	ValueCol int // shared aggregate input column for GROUP BY paths, or -1

	OrderTable, OrderCol int // -1 when no ORDER BY
	OrderOut             int // index into Cols, or -1 (single-table sorts pre-projection)
	Desc                 bool
	Limit                int64 // -1 when no LIMIT
}

// BoundInsert is a bound INSERT: rows are already coerced to the
// schema's value kinds, in schema column order.
type BoundInsert struct {
	Table BoundTable
	Rows  [][]tuple.Value
}

// BoundDelete is a bound DELETE; Pred is nil for DELETE without WHERE.
type BoundDelete struct {
	Table BoundTable
	Pred  expr.Predicate
}

func (*BoundSelect) bound() {}
func (*BoundInsert) bound() {}
func (*BoundDelete) bound() {}

// Bind resolves and type-checks a parsed statement against cat,
// returning the §7-coded error for any violation of the docs/SQL.md
// contract.
func Bind(stmt Statement, cat Catalog) (Bound, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return bindSelect(s, cat)
	case *InsertStmt:
		return bindInsert(s, cat)
	case *DeleteStmt:
		return bindDelete(s, cat)
	default:
		return nil, errf(ErrUnsupported, 0, "unknown statement type %T", stmt)
	}
}

type binder struct {
	tables []BoundTable
}

// resolve maps a column reference to (table, column) indices per the
// docs/SQL.md §2.3 rules: qualified references name a FROM table
// exactly; bare references must match exactly one column across the
// FROM tables.
func (b *binder) resolve(ref ColRef) (int, int, *Error) {
	if ref.Table != "" {
		for ti, t := range b.tables {
			if t.Name == ref.Table {
				ci := t.Schema.FieldIndex(ref.Name)
				if ci < 0 {
					return 0, 0, errf(ErrUnknownColumn, ref.Pos, "table %q has no column %q", t.Name, ref.Name)
				}
				return ti, ci, nil
			}
		}
		return 0, 0, errf(ErrUnknownTable, ref.Pos, "table %q is not in the FROM list", ref.Table)
	}
	ti, ci := -1, -1
	for i, t := range b.tables {
		if c := t.Schema.FieldIndex(ref.Name); c >= 0 {
			if ti >= 0 {
				return 0, 0, errf(ErrAmbiguousColumn, ref.Pos,
					"column %q appears in both %q and %q; qualify it", ref.Name, b.tables[ti].Name, t.Name)
			}
			ti, ci = i, c
		}
	}
	if ti < 0 {
		return 0, 0, errf(ErrUnknownColumn, ref.Pos, "no FROM table has a column %q", ref.Name)
	}
	return ti, ci, nil
}

// literalValue coerces a literal to the column's kind (docs/SQL.md
// §2.4): integer literals fit int64 and float64 columns; float literals
// only float64; string literals only string columns, within the fixed
// width when sized (INSERT).
func literalValue(lit Literal, f tuple.Field, sized bool) (tuple.Value, *Error) {
	switch f.Kind {
	case tuple.Int64:
		if lit.Kind != LitInt {
			return tuple.Value{}, errf(ErrType, lit.Pos, "column %q is int64; literal is not an integer", f.Name)
		}
		return tuple.IntValue(lit.I), nil
	case tuple.Float64:
		switch lit.Kind {
		case LitInt:
			return tuple.FloatValue(float64(lit.I)), nil
		case LitFloat:
			return tuple.FloatValue(lit.F), nil
		default:
			return tuple.Value{}, errf(ErrType, lit.Pos, "column %q is float64; literal is a string", f.Name)
		}
	case tuple.String:
		if lit.Kind != LitString {
			return tuple.Value{}, errf(ErrType, lit.Pos, "column %q is string; literal is a number", f.Name)
		}
		if sized && len(lit.S) > f.Size {
			return tuple.Value{}, errf(ErrType, lit.Pos,
				"string %q (%d bytes) exceeds column %q width %d", lit.S, len(lit.S), f.Name, f.Size)
		}
		return tuple.StringValue(lit.S), nil
	default:
		return tuple.Value{}, errf(ErrType, lit.Pos, "column %q has unsupported kind", f.Name)
	}
}

// bindPred binds a predicate subtree whose leaves must all reference the
// same table, returning the table index. want is the required table
// (-1 = infer from the first leaf).
func (b *binder) bindPred(e Expr, want int) (expr.Predicate, int, *Error) {
	switch e := e.(type) {
	case *CmpExpr:
		ti, ci, err := b.resolve(e.Col)
		if err != nil {
			return nil, 0, err
		}
		if want >= 0 && ti != want {
			return nil, 0, errf(ErrUnsupported, e.Pos,
				"WHERE term mixes tables %q and %q; each AND-separated term must reference one table",
				b.tables[want].Name, b.tables[ti].Name)
		}
		schema := b.tables[ti].Schema
		v, verr := literalValue(e.Lit, schema.Field(ci), false)
		if verr != nil {
			return nil, 0, verr
		}
		c, cerr := expr.NewComparison(schema, ci, cmpOp(e.Op), v)
		if cerr != nil {
			return nil, 0, errf(ErrType, e.Pos, "%v", cerr)
		}
		return c, ti, nil
	case *AndExpr:
		l, ti, err := b.bindPred(e.L, want)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := b.bindPred(e.R, ti)
		if err != nil {
			return nil, 0, err
		}
		return expr.And(l, r), ti, nil
	case *OrExpr:
		l, ti, err := b.bindPred(e.L, want)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := b.bindPred(e.R, ti)
		if err != nil {
			return nil, 0, err
		}
		return expr.Or(l, r), ti, nil
	case *NotExpr:
		k, ti, err := b.bindPred(e.E, want)
		if err != nil {
			return nil, 0, err
		}
		return expr.Not(k), ti, nil
	default:
		return nil, 0, errf(ErrUnsupported, 0, "unsupported predicate %T", e)
	}
}

func cmpOp(op string) expr.Op {
	switch op {
	case "=":
		return expr.Eq
	case "!=":
		return expr.Ne
	case "<":
		return expr.Lt
	case "<=":
		return expr.Le
	case ">":
		return expr.Gt
	default:
		return expr.Ge
	}
}

// conjuncts flattens the top-level AND spine of a predicate.
func conjuncts(e Expr) []Expr {
	if a, ok := e.(*AndExpr); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}

func bindSelect(s *SelectStmt, cat Catalog) (*BoundSelect, error) {
	b := &binder{}
	for _, tr := range s.From {
		schema, ok := cat.Table(tr.Name)
		if !ok {
			return nil, errf(ErrUnknownTable, tr.Pos, "no relation named %q", tr.Name)
		}
		for _, seen := range b.tables {
			if seen.Name == tr.Name {
				return nil, errf(ErrUnsupported, tr.Pos,
					"table %q appears twice in FROM; self-joins are not supported", tr.Name)
			}
		}
		b.tables = append(b.tables, BoundTable{Name: tr.Name, Schema: schema})
	}
	out := &BoundSelect{
		Tables:     b.tables,
		Preds:      make([]expr.Predicate, len(b.tables)),
		GroupBy:    -1,
		ValueCol:   -1,
		OrderTable: -1,
		OrderCol:   -1,
		OrderOut:   -1,
		Limit:      s.Limit,
		Desc:       s.Desc,
	}

	// Join conditions: each must connect two distinct FROM tables with
	// identically typed (and, for strings, identically sized) columns.
	for _, jc := range s.Joins {
		lt, lc, err := b.resolve(jc.Left)
		if err != nil {
			return nil, err
		}
		rt, rc, err := b.resolve(jc.Right)
		if err != nil {
			return nil, err
		}
		if lt == rt {
			return nil, errf(ErrUnsupported, jc.Pos, "join condition references table %q on both sides", b.tables[lt].Name)
		}
		lf, rf := b.tables[lt].Schema.Field(lc), b.tables[rt].Schema.Field(rc)
		if lf.Kind != rf.Kind || b.tables[lt].Schema.FieldWidth(lc) != b.tables[rt].Schema.FieldWidth(rc) {
			return nil, errf(ErrType, jc.Pos, "join compares %s.%s (%v) with %s.%s (%v); kinds and widths must match",
				b.tables[lt].Name, lf.Name, lf.Kind, b.tables[rt].Name, rf.Name, rf.Kind)
		}
		out.Joins = append(out.Joins, BoundJoin{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc})
	}

	// WHERE: split into per-table trees (§3.4).
	if s.Where != nil {
		for _, c := range conjuncts(s.Where) {
			p, ti, err := b.bindPred(c, -1)
			if err != nil {
				return nil, err
			}
			if out.Preds[ti] == nil {
				out.Preds[ti] = p
			} else {
				out.Preds[ti] = expr.And(out.Preds[ti], p)
			}
		}
	}

	// GROUP BY (§3.5): single table only.
	if s.GroupBy != nil {
		if len(b.tables) > 1 {
			return nil, errf(ErrUnsupported, s.GroupBy.Pos, "GROUP BY is supported over a single table only")
		}
		_, gc, err := b.resolve(*s.GroupBy)
		if err != nil {
			return nil, err
		}
		out.GroupBy = gc
	}

	// Select list.
	if s.Star {
		if s.GroupBy != nil {
			return nil, errf(ErrUnsupported, s.GroupBy.Pos, "SELECT * cannot be combined with GROUP BY")
		}
		for ti, t := range b.tables {
			for ci := 0; ci < t.Schema.NumFields(); ci++ {
				name := t.Schema.Field(ci).Name
				if len(b.tables) > 1 {
					name = t.Name + "." + name
				}
				out.Cols = append(out.Cols, Output{Table: ti, Col: ci, Name: name})
			}
		}
	} else {
		hasAgg := false
		for _, item := range s.Items {
			if item.Agg != nil {
				hasAgg = true
			}
		}
		if hasAgg && len(b.tables) > 1 {
			return nil, errf(ErrUnsupported, s.Items[0].pos(), "aggregates are supported over a single table only")
		}
		for _, item := range s.Items {
			switch {
			case item.Col != nil:
				ti, ci, err := b.resolve(*item.Col)
				if err != nil {
					return nil, err
				}
				if hasAgg || out.GroupBy >= 0 {
					if out.GroupBy < 0 || ci != out.GroupBy {
						return nil, errf(ErrUnsupported, item.Col.Pos,
							"column %q must be the GROUP BY column or wrapped in an aggregate", item.Col.String())
					}
				}
				out.Cols = append(out.Cols, Output{Table: ti, Col: ci, Name: item.Col.String()})
			case item.Agg != nil:
				a := item.Agg
				ba := BoundAgg{Func: aggFunc(a.Func), Star: a.Star, Col: -1, Name: a.String()}
				if !a.Star {
					ti, ci, err := b.resolve(a.Col)
					if err != nil {
						return nil, err
					}
					_ = ti // single table enforced above
					if b.tables[0].Schema.Field(ci).Kind != tuple.Int64 {
						return nil, errf(ErrType, a.Col.Pos,
							"aggregate %s needs an int64 column; %q is %v",
							a.Func, a.Col.String(), b.tables[0].Schema.Field(ci).Kind)
					}
					ba.Col = ci
				}
				out.Aggs = append(out.Aggs, ba)
			}
		}
		// Distinct form: GROUP BY g with select list exactly the group
		// column and no aggregates (§3.5.1).
		if out.GroupBy >= 0 && len(out.Aggs) == 0 {
			if len(out.Cols) != 1 || out.Cols[0].Col != out.GroupBy {
				return nil, errf(ErrUnsupported, s.GroupBy.Pos,
					"GROUP BY without aggregates selects exactly the group column (duplicate elimination)")
			}
			out.Distinct = true
		}
	}

	// Grouped aggregates share one input column (§3.5.2).
	if out.GroupBy >= 0 && len(out.Aggs) > 0 {
		for _, a := range out.Aggs {
			if a.Col < 0 {
				continue
			}
			if out.ValueCol >= 0 && a.Col != out.ValueCol {
				return nil, errf(ErrUnsupported, 0,
					"grouped aggregates must share one value column; got %q and %q",
					b.tables[0].Schema.Field(out.ValueCol).Name, b.tables[0].Schema.Field(a.Col).Name)
			}
			out.ValueCol = a.Col
		}
		if out.ValueCol < 0 { // COUNT(*) only: any int64 column feeds the pass
			schema := b.tables[0].Schema
			if schema.Field(out.GroupBy).Kind == tuple.Int64 {
				out.ValueCol = out.GroupBy
			} else {
				for ci := 0; ci < schema.NumFields(); ci++ {
					if schema.Field(ci).Kind == tuple.Int64 {
						out.ValueCol = ci
						break
					}
				}
			}
			if out.ValueCol < 0 {
				return nil, errf(ErrType, 0, "COUNT(*) with GROUP BY needs at least one int64 column in the table")
			}
		}
	}

	// ORDER BY (§3.6).
	if s.OrderBy != nil {
		ti, ci, err := b.resolve(*s.OrderBy)
		if err != nil {
			return nil, err
		}
		switch {
		case out.GroupBy >= 0:
			if ci != out.GroupBy {
				return nil, errf(ErrUnsupported, s.OrderBy.Pos, "a grouped query may ORDER BY its group column only")
			}
		case len(out.Aggs) > 0:
			return nil, errf(ErrUnsupported, s.OrderBy.Pos, "ORDER BY is meaningless on a single-row aggregate")
		case len(b.tables) > 1:
			for oi, c := range out.Cols {
				if c.Table == ti && c.Col == ci {
					out.OrderOut = oi
					break
				}
			}
			if out.OrderOut < 0 {
				return nil, errf(ErrUnsupported, s.OrderBy.Pos,
					"ORDER BY column of a join query must appear in the select list")
			}
		}
		out.OrderTable, out.OrderCol = ti, ci
	}

	// Output columns must be distinct — names become the result schema's
	// field names, and with no aliases a repeated source column could
	// never be told apart.
	seen := map[string]bool{}
	seenSrc := map[[2]int]bool{}
	for _, c := range out.Cols {
		if seen[c.Name] || seenSrc[[2]int{c.Table, c.Col}] {
			return nil, errf(ErrUnsupported, 0, "duplicate output column %q; drop one", c.Name)
		}
		seen[c.Name] = true
		seenSrc[[2]int{c.Table, c.Col}] = true
	}
	for _, a := range out.Aggs {
		if seen[a.Name] {
			return nil, errf(ErrUnsupported, 0, "duplicate output column %q", a.Name)
		}
		seen[a.Name] = true
	}
	return out, nil
}

// pos returns a best-effort position for a select item.
func (it SelectItem) pos() int {
	if it.Col != nil {
		return it.Col.Pos
	}
	if it.Agg != nil {
		return it.Agg.Pos
	}
	return 0
}

func aggFunc(name string) agg.Func {
	switch name {
	case "COUNT":
		return agg.Count
	case "SUM":
		return agg.Sum
	case "MIN":
		return agg.Min
	case "MAX":
		return agg.Max
	default:
		return agg.Avg
	}
}

func bindInsert(s *InsertStmt, cat Catalog) (*BoundInsert, error) {
	schema, ok := cat.Table(s.Table.Name)
	if !ok {
		return nil, errf(ErrUnknownTable, s.Table.Pos, "no relation named %q", s.Table.Name)
	}
	n := schema.NumFields()
	// Column list: a permutation of the full schema (no defaults).
	order := make([]int, n) // position in VALUES row -> schema column
	if s.Cols == nil {
		for i := range order {
			order[i] = i
		}
	} else {
		if len(s.Cols) != n {
			return nil, errf(ErrUnsupported, s.Table.Pos,
				"INSERT column list names %d of %d columns; all columns are required (no defaults)", len(s.Cols), n)
		}
		used := make([]bool, n)
		for i, c := range s.Cols {
			ci := schema.FieldIndex(c.Name)
			if ci < 0 {
				return nil, errf(ErrUnknownColumn, c.Pos, "table %q has no column %q", s.Table.Name, c.Name)
			}
			if used[ci] {
				return nil, errf(ErrUnsupported, c.Pos, "column %q listed twice", c.Name)
			}
			used[ci] = true
			order[i] = ci
		}
	}
	bi := &BoundInsert{Table: BoundTable{Name: s.Table.Name, Schema: schema}}
	for _, row := range s.Rows {
		if len(row) != n {
			return nil, errf(ErrType, row[0].Pos, "VALUES row has %d values; table %q has %d columns", len(row), s.Table.Name, n)
		}
		vals := make([]tuple.Value, n)
		for i, lit := range row {
			ci := order[i]
			v, err := literalValue(lit, schema.Field(ci), true)
			if err != nil {
				return nil, err
			}
			vals[ci] = v
		}
		bi.Rows = append(bi.Rows, vals)
	}
	return bi, nil
}

func bindDelete(s *DeleteStmt, cat Catalog) (*BoundDelete, error) {
	schema, ok := cat.Table(s.Table.Name)
	if !ok {
		return nil, errf(ErrUnknownTable, s.Table.Pos, "no relation named %q", s.Table.Name)
	}
	bd := &BoundDelete{Table: BoundTable{Name: s.Table.Name, Schema: schema}}
	if s.Where != nil {
		b := &binder{tables: []BoundTable{bd.Table}}
		p, _, err := b.bindPred(s.Where, -1)
		if err != nil {
			return nil, err
		}
		bd.Pred = p
	}
	return bd, nil
}
