package sql

// The AST mirrors the docs/SQL.md grammar one production per type.
// Positions are byte offsets into the statement text, carried so the
// binder can report §7 taxonomy errors against the original source.

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is docs/SQL.md §3.1:
//
//	SELECT select_list FROM table { JOIN table ON col = col }
//	[WHERE predicate] [GROUP BY col] [ORDER BY col [ASC|DESC]] [LIMIT n]
type SelectStmt struct {
	Star     bool         // SELECT *
	Items    []SelectItem // empty iff Star
	From     []TableRef   // FROM table then each JOINed table, in order
	Joins    []JoinCond   // len(From)-1 ON conditions
	Where    Expr         // nil if absent
	GroupBy  *ColRef      // nil if absent
	OrderBy  *ColRef      // nil if absent
	Desc     bool         // ORDER BY ... DESC
	Limit    int64        // -1 if absent
	LimitPos int
}

// InsertStmt is docs/SQL.md §3.2:
//
//	INSERT INTO table [(col {, col})] VALUES (literal {, literal}) {, (...)}
type InsertStmt struct {
	Table TableRef
	Cols  []ColRef    // nil = schema order
	Rows  [][]Literal // one or more VALUES rows
}

// DeleteStmt is docs/SQL.md §3.3:
//
//	DELETE FROM table [WHERE predicate]
type DeleteStmt struct {
	Table TableRef
	Where Expr // nil = delete every row
}

func (*SelectStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*DeleteStmt) stmt() {}

// TableRef names a relation.
type TableRef struct {
	Name string
	Pos  int
}

// ColRef is a possibly table-qualified column reference (§2.3).
type ColRef struct {
	Table string // "" if unqualified
	Name  string
	Pos   int
}

// String renders the reference as written.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// SelectItem is one select-list entry: a column or an aggregate call.
type SelectItem struct {
	Col *ColRef  // exactly one of Col/Agg is set
	Agg *AggCall
}

// AggCall is COUNT(*) or FUNC(col) with FUNC in COUNT/SUM/MIN/MAX/AVG.
type AggCall struct {
	Func string // canonical upper case
	Star bool   // COUNT(*)
	Col  ColRef // valid unless Star
	Pos  int
}

// String renders the call as written (canonical case).
func (a AggCall) String() string {
	if a.Star {
		return a.Func + "(*)"
	}
	return a.Func + "(" + a.Col.String() + ")"
}

// JoinCond is one ON equijoin condition between two column refs.
type JoinCond struct {
	Left, Right ColRef
	Pos         int
}

// Expr is a boolean predicate expression (§3.4).
type Expr interface{ expr() }

// AndExpr / OrExpr combine two predicates.
type AndExpr struct{ L, R Expr }
type OrExpr struct{ L, R Expr }

// NotExpr negates a predicate.
type NotExpr struct{ E Expr }

// CmpExpr is a leaf: column <op> literal, op one of = != < <= > >=.
type CmpExpr struct {
	Col ColRef
	Op  string // canonical: = != < <= > >=
	Lit Literal
	Pos int
}

func (*AndExpr) expr() {}
func (*OrExpr) expr()  {}
func (*NotExpr) expr() {}
func (*CmpExpr) expr() {}

// Literal kinds (§2.4).
type LitKind int

const (
	LitInt LitKind = iota
	LitFloat
	LitString
)

// Literal is a typed constant.
type Literal struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
	Pos  int
}
