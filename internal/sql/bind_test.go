package sql

import (
	"errors"
	"testing"

	"mmdb/internal/agg"
	"mmdb/internal/tuple"
)

// testCatalog is the docs/SQL.md running example: emp(id, dept, salary
// int64; name string16) and dept(id, budget int64; city string12).
type testCatalog map[string]*tuple.Schema

func (c testCatalog) Table(name string) (*tuple.Schema, bool) {
	s, ok := c[name]
	return s, ok
}

func newTestCatalog() testCatalog {
	return testCatalog{
		"emp": tuple.MustSchema(
			tuple.Field{Name: "id", Kind: tuple.Int64},
			tuple.Field{Name: "dept", Kind: tuple.Int64},
			tuple.Field{Name: "salary", Kind: tuple.Int64},
			tuple.Field{Name: "name", Kind: tuple.String, Size: 16},
		),
		"dept": tuple.MustSchema(
			tuple.Field{Name: "id", Kind: tuple.Int64},
			tuple.Field{Name: "budget", Kind: tuple.Int64},
			tuple.Field{Name: "city", Kind: tuple.String, Size: 12},
		),
	}
}

func bindSQL(t *testing.T, src string) (Bound, error) {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Bind(stmt, newTestCatalog())
}

func mustBindSelect(t *testing.T, src string) *BoundSelect {
	t.Helper()
	b, err := bindSQL(t, src)
	if err != nil {
		t.Fatalf("Bind(%q): %v", src, err)
	}
	return b.(*BoundSelect)
}

// TestBindResolution covers the §2.3 reference rules.
func TestBindResolution(t *testing.T) {
	s := mustBindSelect(t, "SELECT salary, emp.name FROM emp")
	if len(s.Cols) != 2 || s.Cols[0].Col != 2 || s.Cols[1].Col != 3 {
		t.Fatalf("resolution wrong: %+v", s.Cols)
	}

	// Bare name unique across a join resolves; output keeps spelling.
	s = mustBindSelect(t, "SELECT salary, budget FROM emp JOIN dept ON emp.dept = dept.id")
	if s.Cols[0].Table != 0 || s.Cols[1].Table != 1 {
		t.Fatalf("cross-table bare resolution wrong: %+v", s.Cols)
	}
	if s.Cols[1].Name != "budget" {
		t.Fatalf("output name wrong: %q", s.Cols[1].Name)
	}
}

// TestBindStar covers §3.1 star expansion and its naming rule.
func TestBindStar(t *testing.T) {
	s := mustBindSelect(t, "SELECT * FROM emp")
	if len(s.Cols) != 4 || s.Cols[0].Name != "id" {
		t.Fatalf("single-table star: %+v", s.Cols)
	}
	s = mustBindSelect(t, "SELECT * FROM emp JOIN dept ON emp.dept = dept.id")
	if len(s.Cols) != 7 || s.Cols[0].Name != "emp.id" || s.Cols[4].Name != "dept.id" {
		t.Fatalf("join star must qualify: %+v", s.Cols)
	}
}

// TestBindWhereSplit covers the §3.4 multi-table conjunct rule.
func TestBindWhereSplit(t *testing.T) {
	s := mustBindSelect(t,
		"SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.id WHERE salary > 50000 AND budget < 100 AND emp.id != 3")
	if s.Preds[0] == nil || s.Preds[1] == nil {
		t.Fatalf("predicates not split per table: %+v", s.Preds)
	}

	// Single table: arbitrary shapes allowed.
	s = mustBindSelect(t, "SELECT id FROM emp WHERE (dept = 1 OR dept = 2) AND NOT salary < 10")
	if s.Preds[0] == nil {
		t.Fatal("single-table predicate dropped")
	}
}

// TestBindGroupAndAggregates covers §3.5 and §3.5.2.
func TestBindGroupAndAggregates(t *testing.T) {
	s := mustBindSelect(t, "SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM emp GROUP BY dept")
	if s.GroupBy != 1 || len(s.Aggs) != 4 || s.ValueCol != 2 {
		t.Fatalf("grouped agg wrong: group=%d aggs=%d value=%d", s.GroupBy, len(s.Aggs), s.ValueCol)
	}
	if s.Aggs[0].Func != agg.Count || !s.Aggs[0].Star {
		t.Fatalf("COUNT(*) wrong: %+v", s.Aggs[0])
	}

	// COUNT(*)-only grouped query borrows an int64 column (§3.5.2).
	s = mustBindSelect(t, "SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if s.ValueCol != 1 { // group col is int64, preferred
		t.Fatalf("COUNT(*) value col = %d, want the group column 1", s.ValueCol)
	}

	// §3.5.1 duplicate elimination form.
	s = mustBindSelect(t, "SELECT dept FROM emp GROUP BY dept")
	if !s.Distinct || s.GroupBy != 1 {
		t.Fatalf("distinct form wrong: %+v", s)
	}

	// Global aggregate: different value columns are fine (§3.5.2).
	s = mustBindSelect(t, "SELECT COUNT(*), SUM(salary), MAX(id) FROM emp")
	if s.GroupBy != -1 || len(s.Aggs) != 3 {
		t.Fatalf("global agg wrong: %+v", s)
	}
}

// TestBindOrderRules covers §3.6.
func TestBindOrderRules(t *testing.T) {
	// Single table: sort column need not be projected.
	s := mustBindSelect(t, "SELECT id FROM emp ORDER BY salary DESC")
	if s.OrderTable != 0 || s.OrderCol != 2 || !s.Desc || s.OrderOut != -1 {
		t.Fatalf("single-table order wrong: %+v", s)
	}
	// Join: sort column must be in the select list; OrderOut locates it.
	s = mustBindSelect(t, "SELECT budget, emp.id FROM emp JOIN dept ON emp.dept = dept.id ORDER BY emp.id")
	if s.OrderOut != 1 {
		t.Fatalf("join OrderOut = %d, want 1", s.OrderOut)
	}
}

// TestBindInsert covers §3.2 coercion and permutation rules.
func TestBindInsert(t *testing.T) {
	b, err := bindSQL(t, "INSERT INTO emp (salary, id, dept, name) VALUES (52000, 3, 10, 'Kim')")
	if err != nil {
		t.Fatal(err)
	}
	ins := b.(*BoundInsert)
	row := ins.Rows[0] // in schema order: id, dept, salary, name
	if row[0].I != 3 || row[1].I != 10 || row[2].I != 52000 || row[3].S != "Kim" {
		t.Fatalf("permuted insert wrong: %+v", row)
	}

	// Integer literal widens into a float64 column (§2.4) — dept has no
	// float column, so exercise via a fresh catalog.
	cat := testCatalog{"m": tuple.MustSchema(
		tuple.Field{Name: "x", Kind: tuple.Float64},
	)}
	stmt, _ := Parse("INSERT INTO m VALUES (7)")
	bi, err := Bind(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	if v := bi.(*BoundInsert).Rows[0][0]; v.Kind != tuple.Float64 || v.F != 7 {
		t.Fatalf("int→float widening wrong: %+v", v)
	}
}

// TestBindDelete covers §3.3.
func TestBindDelete(t *testing.T) {
	b, err := bindSQL(t, "DELETE FROM emp WHERE dept = 20 AND salary < 40000")
	if err != nil {
		t.Fatal(err)
	}
	if b.(*BoundDelete).Pred == nil {
		t.Fatal("predicate dropped")
	}
	b, err = bindSQL(t, "DELETE FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if b.(*BoundDelete).Pred != nil {
		t.Fatal("bare DELETE should have nil Pred")
	}
}

// TestBindErrors covers the §7.3–§7.7 taxonomy with the docs/SQL.md
// examples plus the per-rule rejections.
func TestBindErrors(t *testing.T) {
	cases := []struct {
		src  string
		code Code
	}{
		// §7.3 unknown table
		{"SELECT * FROM nonesuch", ErrUnknownTable},
		{"SELECT bogus.id FROM emp", ErrUnknownTable},
		{"INSERT INTO nonesuch VALUES (1)", ErrUnknownTable},
		{"DELETE FROM nonesuch", ErrUnknownTable},
		// §7.4 unknown column
		{"SELECT emp.nonesuch FROM emp", ErrUnknownColumn},
		{"SELECT nonesuch FROM emp JOIN dept ON emp.dept = dept.id", ErrUnknownColumn},
		{"INSERT INTO emp (id, dept, salary, wages) VALUES (1,2,3,4)", ErrUnknownColumn},
		// §7.5 ambiguous column
		{"SELECT id FROM emp JOIN dept ON emp.dept = dept.id", ErrAmbiguousColumn},
		{"SELECT emp.id FROM emp JOIN dept ON id = dept.id", ErrAmbiguousColumn},
		// §7.6 type errors
		{"SELECT * FROM emp WHERE id = 'ten'", ErrType},
		{"SELECT * FROM emp WHERE id = 1.5", ErrType},
		{"SELECT SUM(name) FROM emp", ErrType},
		{"INSERT INTO emp VALUES (1, 2)", ErrType},
		{"INSERT INTO emp VALUES (1, 2, 3, 'this name is far too long for sixteen')", ErrType},
		{"INSERT INTO emp VALUES (1, 2, 3.5, 'x')", ErrType},
		{"SELECT emp.id FROM emp JOIN dept ON emp.name = dept.city", ErrType}, // width mismatch
		// §7.7 unsupported
		{"SELECT * FROM emp JOIN emp ON emp.id = emp.id", ErrUnsupported},
		{"SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.id WHERE salary > 1 OR budget > 2", ErrUnsupported},
		{"SELECT dept, COUNT(*) FROM emp JOIN dept ON emp.dept = dept.id GROUP BY emp.dept", ErrUnsupported},
		{"SELECT COUNT(*) FROM emp JOIN dept ON emp.dept = dept.id", ErrUnsupported},
		{"SELECT dept, salary FROM emp GROUP BY dept", ErrUnsupported},
		{"SELECT salary, COUNT(*) FROM emp GROUP BY dept", ErrUnsupported},
		{"SELECT dept, SUM(salary), MAX(id) FROM emp GROUP BY dept", ErrUnsupported},
		{"SELECT id, emp.id FROM emp", ErrUnsupported},
		{"SELECT COUNT(*) FROM emp ORDER BY id", ErrUnsupported},
		{"SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY salary", ErrUnsupported},
		{"SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.id ORDER BY budget", ErrUnsupported},
		{"INSERT INTO emp (id, dept) VALUES (1, 2)", ErrUnsupported},
		{"INSERT INTO emp (id, id, dept, salary) VALUES (1,2,3,4)", ErrUnsupported},
		{"SELECT emp.id FROM emp JOIN dept ON emp.id = emp.dept", ErrUnsupported}, // one-sided ON
	}
	for _, c := range cases {
		_, err := bindSQL(t, c.src)
		if err == nil {
			t.Errorf("Bind(%q): no error, want %v", c.src, c.code)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("Bind(%q): error %T is not *sql.Error", c.src, err)
			continue
		}
		if se.Code != c.code {
			t.Errorf("Bind(%q): code %v (%q), want %v", c.src, se.Code, se.Msg, c.code)
		}
	}
}
