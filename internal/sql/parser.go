package sql

import "strconv"

// Parse tokenizes and parses one statement (docs/SQL.md §3). A trailing
// semicolon is allowed. Errors are *Error values carrying the §7
// taxonomy code and the byte offset of the offending token.
func Parse(src string) (Statement, error) {
	toks, lerr := lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if p.peek().kind != tokEOF {
		return nil, errf(ErrSyntax, p.peek().pos, "unexpected %s after end of statement", describe(p.peek()))
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// accept consumes the next token iff it matches kind and (when non-empty)
// text.
func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a token of the given kind/text or fails with §7.2.
func (p *parser) expect(kind tokKind, text, what string) (token, *Error) {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		return p.next(), nil
	}
	return token{}, errf(ErrSyntax, t.pos, "expected %s, found %s", what, describe(t))
}

func describe(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokIdent:
		return "identifier " + strconv.Quote(t.text)
	case tokKeyword:
		return t.text
	case tokInt, tokFloat:
		return "number " + t.text
	case tokString:
		return "string " + strconv.Quote(t.text)
	default:
		return strconv.Quote(t.text)
	}
}

func (p *parser) statement() (Statement, *Error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, errf(ErrSyntax, t.pos, "expected SELECT, INSERT or DELETE, found %s", describe(t))
	}
	switch t.text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "DELETE":
		return p.deleteStmt()
	default:
		return nil, errf(ErrSyntax, t.pos, "expected SELECT, INSERT or DELETE, found %s", t.text)
	}
}

// selectStmt parses docs/SQL.md §3.1.
func (p *parser) selectStmt() (*SelectStmt, *Error) {
	p.next() // SELECT
	s := &SelectStmt{Limit: -1}

	if p.accept(tokSymbol, "*") {
		s.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if _, err := p.expect(tokKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, tbl)

	for p.accept(tokKeyword, "JOIN") {
		tbl, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, tbl)
		onTok, err := p.expect(tokKeyword, "ON", "ON")
		if err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "=", "'=' in join condition"); err != nil {
			return nil, err
		}
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinCond{Left: left, Right: right, Pos: onTok.pos})
	}

	if p.accept(tokKeyword, "WHERE") {
		w, err := p.predicate()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}

	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY", "BY after GROUP"); err != nil {
			return nil, err
		}
		g, err := p.colRef()
		if err != nil {
			return nil, err
		}
		s.GroupBy = &g
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY", "BY after ORDER"); err != nil {
			return nil, err
		}
		o, err := p.colRef()
		if err != nil {
			return nil, err
		}
		s.OrderBy = &o
		if p.accept(tokKeyword, "DESC") {
			s.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokInt, "", "a non-negative integer after LIMIT")
		if err != nil {
			return nil, err
		}
		n, _ := strconv.ParseInt(t.text, 10, 64)
		s.Limit = n
		s.LimitPos = t.pos
	}
	return s, nil
}

// selectItem parses a column reference or an aggregate call. Aggregate
// names are contextual: an identifier directly followed by '(' is a
// call; COUNT/SUM/MIN/MAX/AVG are the only valid functions (§3.1.1).
func (p *parser) selectItem() (SelectItem, *Error) {
	t := p.peek()
	if t.kind == tokIdent && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		call, err := p.aggCall()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: call}, nil
	}
	c, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: &c}, nil
}

func (p *parser) aggCall() (*AggCall, *Error) {
	name := p.next() // identifier
	fn := ""
	switch upper(name.text) {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		fn = upper(name.text)
	default:
		return nil, errf(ErrSyntax, name.pos, "unknown aggregate function %q (want COUNT, SUM, MIN, MAX or AVG)", name.text)
	}
	p.next() // (
	call := &AggCall{Func: fn, Pos: name.pos}
	if p.accept(tokSymbol, "*") {
		if fn != "COUNT" {
			return nil, errf(ErrSyntax, name.pos, "%s(*) is not valid; only COUNT(*) may take *", fn)
		}
		call.Star = true
	} else {
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		call.Col = c
	}
	if _, err := p.expect(tokSymbol, ")", "')' closing aggregate call"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) tableRef() (TableRef, *Error) {
	t, err := p.expect(tokIdent, "", "a table name")
	if err != nil {
		return TableRef{}, err
	}
	return TableRef{Name: t.text, Pos: t.pos}, nil
}

// colRef parses ident or ident.ident (§2.3).
func (p *parser) colRef() (ColRef, *Error) {
	t, err := p.expect(tokIdent, "", "a column reference")
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		c, err := p.expect(tokIdent, "", "a column name after '.'")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: t.text, Name: c.text, Pos: t.pos}, nil
	}
	return ColRef{Name: t.text, Pos: t.pos}, nil
}

// predicate parses the OR level (§3.4); AND binds tighter than OR, NOT
// tighter than AND.
func (p *parser) predicate() (Expr, *Error) {
	l, err := p.andTerm()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andTerm()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andTerm() (Expr, *Error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) factor() (Expr, *Error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, *Error) {
	col, err := p.colRef()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	switch {
	case op.kind == tokSymbol && (op.text == "=" || op.text == "!=" || op.text == "<" ||
		op.text == "<=" || op.text == ">" || op.text == ">="):
		p.next()
	default:
		return nil, errf(ErrSyntax, op.pos, "expected a comparison operator, found %s", describe(op))
	}
	lit, lerr := p.literal()
	if lerr != nil {
		return nil, lerr
	}
	return &CmpExpr{Col: col, Op: op.text, Lit: lit, Pos: op.pos}, nil
}

// literal parses [-] number | string (§2.4).
func (p *parser) literal() (Literal, *Error) {
	neg := false
	start := p.peek().pos
	if p.accept(tokSymbol, "-") {
		neg = true
	}
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, _ := strconv.ParseInt(t.text, 10, 64)
		if neg {
			v = -v
		}
		return Literal{Kind: LitInt, I: v, Pos: start}, nil
	case tokFloat:
		p.next()
		v, _ := strconv.ParseFloat(t.text, 64)
		if neg {
			v = -v
		}
		return Literal{Kind: LitFloat, F: v, Pos: start}, nil
	case tokString:
		if neg {
			return Literal{}, errf(ErrSyntax, t.pos, "'-' must be followed by a number")
		}
		p.next()
		return Literal{Kind: LitString, S: t.text, Pos: start}, nil
	default:
		return Literal{}, errf(ErrSyntax, t.pos, "expected a literal, found %s", describe(t))
	}
}

// insertStmt parses docs/SQL.md §3.2.
func (p *parser) insertStmt() (*InsertStmt, *Error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO", "INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: tbl}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expect(tokIdent, "", "a column name")
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, ColRef{Name: c.text, Pos: c.pos})
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")", "')' closing the column list"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES", "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "(", "'(' opening a VALUES row"); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")", "')' closing a VALUES row"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return s, nil
}

// deleteStmt parses docs/SQL.md §3.3.
func (p *parser) deleteStmt() (*DeleteStmt, *Error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: tbl}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.predicate()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
