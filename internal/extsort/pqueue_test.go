package extsort

import (
	"math/rand"
	"sort"
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

func intKey(k int) []byte {
	return []byte{byte(k >> 8), byte(k)}
}

func TestPQueuePopsInOrder(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	q := newPQueue(clock, byKey(clock), 16)
	rng := rand.New(rand.NewSource(1))
	var want []int
	for i := 0; i < 500; i++ {
		k := rng.Intn(1000)
		want = append(want, k)
		q.Push(item{key: intKey(k), tup: tuple.Tuple{}})
	}
	sort.Ints(want)
	for i, w := range want {
		got := q.Pop()
		if int(got.key[0])<<8|int(got.key[1]) != w {
			t.Fatalf("pop %d: got %v want %d", i, got.key, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d", q.Len())
	}
	if c := clock.Counters(); c.Comps == 0 || c.Swaps == 0 {
		t.Fatalf("heap work not charged: %+v", c)
	}
}

func TestPQueueRunOrdering(t *testing.T) {
	// Replacement selection orders by (run, key): run-1 elements never
	// surface before run-0 elements regardless of key.
	clock := cost.NewClock(cost.DefaultParams())
	q := newPQueue(clock, byRunThenKey(clock), 8)
	q.Push(item{run: 1, key: intKey(0), tup: tuple.Tuple{}})
	q.Push(item{run: 0, key: intKey(900), tup: tuple.Tuple{}})
	q.Push(item{run: 0, key: intKey(100), tup: tuple.Tuple{}})
	if got := q.Pop(); got.run != 0 || got.key[1] != intKey(100)[1] {
		t.Fatalf("first pop = run %d key %v", got.run, got.key)
	}
	if got := q.Pop(); got.run != 0 {
		t.Fatalf("second pop from run %d", got.run)
	}
	if got := q.Pop(); got.run != 1 {
		t.Fatalf("third pop from run %d", got.run)
	}
}

func TestPQueueReplace(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	q := newPQueue(clock, byKey(clock), 8)
	for _, k := range []int{5, 2, 9} {
		q.Push(item{key: intKey(k), tup: tuple.Tuple{}})
	}
	// Replace pops the min (2) while pushing 7 in one sift.
	got := q.Replace(item{key: intKey(7), tup: tuple.Tuple{}})
	if got.key[1] != 2 {
		t.Fatalf("replace returned key %v", got.key)
	}
	order := []int{}
	for q.Len() > 0 {
		it := q.Pop()
		order = append(order, int(it.key[0])<<8|int(it.key[1]))
	}
	if len(order) != 3 || order[0] != 5 || order[1] != 7 || order[2] != 9 {
		t.Fatalf("after replace: %v", order)
	}
}
