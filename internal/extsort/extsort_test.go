package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
	"mmdb/internal/workload"
)

func makeFile(t testing.TB, n int, domain int64, seed int64) *heap.File {
	t.Helper()
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 256)
	f, err := workload.Generate(disk, workload.RelationSpec{
		Name: "in", Tuples: n, KeyDomain: domain, PayloadWidth: 12, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func drain(t testing.TB, s Stream) []int64 {
	t.Helper()
	var out []int64
	sc := workload.RelationSpec{PayloadWidth: 12}.Schema()
	for {
		tp, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, sc.Int(tp, 0))
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func checkSorted(t *testing.T, in *heap.File, got []int64) {
	t.Helper()
	var want []int64
	sc := in.Schema()
	in.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		want = append(want, sc.Int(tp, 0))
		return true
	})
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestInMemorySort(t *testing.T) {
	f := makeFile(t, 200, 50, 1)
	s, stats, err := Sort(f, 0, 1000, 0, "t", simio.Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.InMemory {
		t.Fatal("expected in-memory sort")
	}
	checkSorted(t, f, drain(t, s))
	// No temporary IO at all.
	if c := f.Disk().Clock().Counters(); c.SeqIOs != 0 || c.RandIOs != 0 {
		t.Fatalf("in-memory sort did IO: %+v", c)
	}
}

func TestExternalSortFormsRunsOfTwiceMemory(t *testing.T) {
	const n = 5000
	const mem = 250
	f := makeFile(t, n, 1<<40, 2)
	s, stats, err := Sort(f, 0, mem, 0, "t", simio.Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, f, drain(t, s))
	// Replacement selection on random input yields runs averaging twice
	// the queue size [KNUT73], so about n/(2*mem) runs.
	want := float64(n) / (2 * mem)
	if got := float64(stats.Runs); got < want*0.7 || got > want*1.4 {
		t.Fatalf("formed %d runs, expected ≈%.0f (2x-memory runs)", stats.Runs, want)
	}
	if stats.MergePasses != 0 {
		t.Fatalf("unexpected merge passes: %d", stats.MergePasses)
	}
}

func TestSortedInputYieldsOneRun(t *testing.T) {
	// Replacement selection on already-sorted input produces a single run
	// regardless of memory size.
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 256)
	sc := workload.RelationSpec{PayloadWidth: 12}.Schema()
	f := heap.MustCreate(disk, "in", sc)
	for i := int64(0); i < 1000; i++ {
		f.Append(sc.MustEncode(tuple.IntValue(i), tuple.StringValue("x")), simio.Uncharged)
	}
	f.Flush(simio.Uncharged)
	_, stats, err := Sort(f, 0, 10, 0, "t", simio.Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 1 {
		t.Fatalf("sorted input formed %d runs", stats.Runs)
	}
}

func TestBoundedFanoutTriggersMergePasses(t *testing.T) {
	f := makeFile(t, 4000, 1<<40, 3)
	s, stats, err := Sort(f, 0, 50, 4, "t", simio.Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs <= 4 {
		t.Fatalf("want many initial runs, got %d", stats.Runs)
	}
	if stats.MergePasses == 0 {
		t.Fatal("expected intermediate merge passes with fanout 4")
	}
	if stats.FinalRuns > 4 {
		t.Fatalf("final merge over %d runs exceeds fanout", stats.FinalRuns)
	}
	checkSorted(t, f, drain(t, s))
}

func TestRunIOChargedSeqWriteRandRead(t *testing.T) {
	f := makeFile(t, 2000, 1<<40, 4)
	clock := f.Disk().Clock()
	clock.Reset()
	s, stats, err := Sort(f, 0, 100, 0, "t", simio.Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InMemory {
		t.Fatal("expected external sort")
	}
	drain(t, s)
	c := clock.Counters()
	// Every run page is written once (seq) and read once (rand), §3.4.
	if c.SeqIOs == 0 || c.RandIOs == 0 {
		t.Fatalf("IO not charged: %+v", c)
	}
	if diff := c.SeqIOs - c.RandIOs; diff < -int64(stats.Runs) || diff > int64(stats.Runs) {
		t.Fatalf("write/read page counts diverge: %+v", c)
	}
	if c.Comps == 0 || c.Swaps == 0 {
		t.Fatalf("priority queue work not charged: %+v", c)
	}
}

func TestQuickSortEquivalence(t *testing.T) {
	f := func(seed int64, n16, mem8 uint8, dup bool) bool {
		n := int(n16)%300 + 2
		mem := int(mem8)%40 + 2
		domain := int64(1 << 40)
		if dup {
			domain = 7
		}
		file := makeFile(t, n, domain, seed)
		s, _, err := Sort(file, 0, mem, 8, "q", simio.Uncharged)
		if err != nil {
			t.Log(err)
			return false
		}
		got := drain(t, s)
		if len(got) != n {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}
