package extsort

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"mmdb/internal/cost"
)

// benchRuns builds k sorted runs of 8-byte keys totaling n tuples, the
// shape a merge root sees.
func benchRuns(k, n int) [][][]byte {
	rng := rand.New(rand.NewSource(42))
	runs := make([][][]byte, k)
	per := n / k
	for s := 0; s < k; s++ {
		keys := make([][]byte, per)
		for i := range keys {
			b := make([]byte, 8)
			binary.BigEndian.PutUint64(b, rng.Uint64())
			keys[i] = b
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		runs[s] = keys
	}
	return runs
}

// BenchmarkTournamentMerge merges k sorted runs with each selection
// structure. Compare with:
//
//	go test -bench TournamentMerge -benchmem ./internal/extsort/ | benchstat -col /layout -
//
// layout=heap is the classic pointer-chasing pqueue, layout=kernel the
// charged cache-conscious kqueue, layout=loser the uncharged loser-tree
// reference (fixed log2 k comparison schedule the cost model cannot adopt).
func BenchmarkTournamentMerge(b *testing.B) {
	const k, n = 64, 1 << 18
	runs := benchRuns(k, n)
	heapMerge := func(kernel bool) {
		clock := cost.NewClock(cost.DefaultParams())
		q := newSelTree(clock, kindKey, k, kernel)
		pos := make([]int, k)
		for s := 0; s < k; s++ {
			q.Push(item{run: s, key: runs[s][0]})
			pos[s] = 1
		}
		for q.Len() > 0 {
			it := q.Pop()
			if pos[it.run] < len(runs[it.run]) {
				q.Push(item{run: it.run, key: runs[it.run][pos[it.run]]})
				pos[it.run]++
			}
		}
	}
	b.Run("layout=heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heapMerge(false)
		}
	})
	b.Run("layout=kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heapMerge(true)
		}
	})
	b.Run("layout=loser", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pos := make([]int, k)
			tt := NewTournamentTree(k, func(src int) ([]byte, bool) {
				if pos[src] >= len(runs[src]) {
					return nil, false
				}
				key := runs[src][pos[src]]
				pos[src]++
				return key, true
			})
			for {
				if _, _, ok := tt.Next(); !ok {
					break
				}
			}
		}
	})
}
