// Package extsort implements the sort machinery of the paper's sort-merge
// join (§3.4): replacement-selection run formation producing runs of
// roughly twice the memory size [KNUT73], followed by an n-way merge using
// one buffer page per run.
//
// IO accounting follows the paper: run pages are written sequentially
// (IOseq) and read back during the merge with random IO (IOrand), giving
// the (|R|+|S|)*IOseq + (|R|+|S|)*IOrand terms of the sort-merge cost
// formula. When the input fits in the priority queue it is sorted entirely
// in memory, which is why the paper's sort-merge curve improves above
// |M| = |S|*F.
//
// # Parallel execution
//
// A sort has two independent knobs, mirroring the hash joins' GraceParts
// vs Parallelism split:
//
//   - Config.Chunks is the *plan*: the input's pages are split into that
//     many contiguous ranges, each sorted by replacement selection with
//     MemTuples/Chunks queue slots into its own run namespace, and the
//     chunk streams are combined by a merge tree whose root fans in one
//     stream per chunk. Chunks determines the virtual counters (more,
//     shorter runs; an extra merge level) and must not depend on the
//     worker count.
//   - Config.Parallelism is the *schedule*: how many exec.Pool workers
//     form chunks concurrently, and whether the merge tree's interior
//     nodes run eagerly on their own goroutines (bounded channels) or are
//     pulled lazily inline. For a fixed plan the charged counters are
//     bit-identical at every width — per-chunk work does not change and
//     counter addition commutes — so Parallelism trades wall-clock time
//     only, never the paper's accounting.
//
// Chunks <= 1 is exactly the original serial algorithm: one replacement-
// selection queue, flat merge passes, a single selection tree, and lazy
// (consumption-driven) merge IO. Chunked streams instead charge the full
// merge cost: abandoning one early and calling Close finishes the
// remaining run reads so the totals stay schedule-independent.
package extsort

import (
	"bytes"
	"fmt"

	"mmdb/internal/exec"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Stream yields tuples in non-decreasing key order. After Next returns
// ok=false, Err reports any underlying failure. Close releases the sort's
// temporary run files and must be called (it is idempotent); on a chunked
// stream it also completes any remaining run reads so the charged counters
// never depend on how far the consumer got or on worker scheduling.
type Stream interface {
	Next() (tuple.Tuple, bool)
	Err() error
	Close() error
}

// Stats describes how a sort executed.
type Stats struct {
	Runs        int  // number of initial runs formed (across all chunks)
	FinalRuns   int  // runs merged by the on-the-fly merge (across all chunks)
	MergePasses int  // deepest chain of intermediate merge passes (0 under the paper's |M| >= sqrt(|S|*F) assumption)
	Chunks      int  // run-formation chunks (1 = the classic single queue)
	InMemory    bool // true when no run files were needed
}

// add folds a per-chunk stats contribution into the totals.
func (s *Stats) add(o Stats) {
	s.Runs += o.Runs
	s.FinalRuns += o.FinalRuns
	if o.MergePasses > s.MergePasses {
		s.MergePasses = o.MergePasses
	}
}

// Config describes one sort execution (see the package comment for the
// Chunks/Parallelism split).
type Config struct {
	Col       int          // sort column
	MemTuples int          // priority-queue memory, in tuples (>= 2)
	MaxFanout int          // bound on simultaneously open runs; <= 0 means unlimited
	Prefix    string       // temporary run files are named Prefix[.cN].run.K
	Input     simio.Access // access kind charged for the input scan
	// Chunks splits run formation into that many page-range chunks, each
	// with MemTuples/Chunks queue slots. 0 or 1 means the classic single
	// queue. Chunks is clamped so every chunk keeps at least 2 slots and
	// at least one input page.
	Chunks int
	// Parallelism bounds the formation worker goroutines and switches the
	// merge tree to eager interior nodes; 0 or 1 means serial inline
	// execution, a negative value means one worker per CPU. Counters are
	// identical at every setting for a fixed Chunks.
	Parallelism int
	// NoKernel disables the cache-conscious selection-tree layout and the
	// batched interior pumps, falling back to the classic item-array heap.
	// The zero value (kernels on) and the fallback charge bit-identical
	// counters; the knob exists as an escape hatch and for A/B runs.
	NoKernel bool
}

// kernels reports whether the cache-kernel layout is in use.
func (c Config) kernels() bool { return !c.NoKernel }

// Sort sorts file f on column col using at most memTuples tuples of
// priority-queue memory — the classic serial plan (Chunks=1). Temporary
// run files are named prefix.run.N. The input is scanned with inputAccess
// (Uncharged for base relations, per the paper's convention of ignoring
// the initial read).
//
// maxFanout bounds how many runs the final merge may hold open (one buffer
// page each). When the initial runs exceed it, intermediate merge passes
// combine them first — the ">2 phases" case the paper's memory assumption
// excludes, kept here so the operator degrades instead of failing.
// maxFanout <= 0 means unlimited.
func Sort(f *heap.File, col int, memTuples int, maxFanout int, prefix string, inputAccess simio.Access) (Stream, Stats, error) {
	return SortWith(f, Config{
		Col: col, MemTuples: memTuples, MaxFanout: maxFanout,
		Prefix: prefix, Input: inputAccess,
	})
}

// SortWith sorts file f under cfg. The returned stream owns the sort's
// temporary run files; Close it when done (draining to ok=false also
// releases everything).
func SortWith(f *heap.File, cfg Config) (Stream, Stats, error) {
	if cfg.MemTuples < 2 {
		return nil, Stats{}, fmt.Errorf("extsort: need at least 2 tuples of memory, got %d", cfg.MemTuples)
	}
	chunks := planChunks(f, cfg)
	if chunks > 1 {
		return sortChunked(f, cfg, chunks)
	}

	disk := f.Disk()
	clock := disk.Clock()
	schema := f.Schema()

	if f.NumTuples() <= int64(cfg.MemTuples) {
		// Fully in-memory: heap-sort via the same counting priority queue.
		q := newSelTree(clock, kindKey, int(f.NumTuples()), cfg.kernels())
		err := f.Scan(cfg.Input, func(t tuple.Tuple) bool {
			q.Push(item{key: schema.KeyBytes(t, cfg.Col), tup: t.Clone()})
			return true
		})
		if err != nil {
			return nil, Stats{}, err
		}
		return &memStream{q: q}, Stats{Runs: 1, Chunks: 1, InMemory: true}, nil
	}

	runs, err := formRuns(f, cfg.Col, cfg.MemTuples, cfg.Prefix, cfg.Input, cfg.kernels())
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Runs: len(runs), Chunks: 1}
	if cfg.MaxFanout > 1 {
		for len(runs) > cfg.MaxFanout {
			runs, err = mergePass(runs, cfg.Col, cfg.MaxFanout, fmt.Sprintf("%s.m%d", cfg.Prefix, stats.MergePasses), cfg.kernels())
			if err != nil {
				dropAll(runs)
				return nil, Stats{}, err
			}
			stats.MergePasses++
		}
	}
	stats.FinalRuns = len(runs)
	ms, err := mergeRuns(runs, cfg.Col, cfg.kernels())
	if err != nil {
		dropAll(runs)
		return nil, Stats{}, err
	}
	return ms, stats, nil
}

// planChunks clamps the configured chunk count to the plan-determined
// bounds: at least 2 queue slots and at least one input page per chunk.
// The result depends only on the input and the memory budget, never on
// Parallelism, which is what keeps counters width-independent.
func planChunks(f *heap.File, cfg Config) int {
	chunks := cfg.Chunks
	if chunks < 2 {
		return 1
	}
	if max := cfg.MemTuples / 2; chunks > max {
		chunks = max
	}
	if np := f.NumPages(); chunks > np {
		chunks = np
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// dropAll removes a set of run files, tolerating nils.
func dropAll(runs []*heap.File) {
	for _, r := range runs {
		if r != nil {
			r.Drop()
		}
	}
}

// mergePass merges groups of up to fanout runs into longer runs, reading
// run pages with random IO and writing the merged output sequentially.
// On error every input run and the partial output are dropped.
func mergePass(runs []*heap.File, col, fanout int, prefix string, kernel bool) ([]*heap.File, error) {
	var next []*heap.File
	fail := func(ms Stream, out *heap.File, err error) ([]*heap.File, error) {
		if ms != nil {
			ms.Close()
		}
		if out != nil {
			out.Drop()
		}
		dropAll(next)
		dropAll(runs)
		return nil, err
	}
	for i := 0; i < len(runs); i += fanout {
		j := i + fanout
		if j > len(runs) {
			j = len(runs)
		}
		group := runs[i:j]
		if len(group) == 1 {
			next = append(next, group[0])
			runs[i] = nil // owned by next now
			continue
		}
		ms, err := mergeRuns(group, col, kernel)
		if err != nil {
			return fail(nil, nil, err)
		}
		out, err := heap.Create(group[0].Disk(), fmt.Sprintf("%s.%d", prefix, len(next)), group[0].Schema())
		if err != nil {
			return fail(ms, nil, err)
		}
		for {
			t, ok := ms.Next()
			if !ok {
				break
			}
			if err := out.Append(t, simio.Seq); err != nil {
				return fail(ms, out, err)
			}
		}
		if err := ms.Err(); err != nil {
			return fail(ms, out, err)
		}
		if err := out.Flush(simio.Seq); err != nil {
			return fail(ms, out, err)
		}
		ms.Close() // drops the group's (already exhausted) run files
		for k := i; k < j; k++ {
			runs[k] = nil
		}
		next = append(next, out)
	}
	return next, nil
}

// formRuns performs replacement selection with a queue of memTuples
// elements, writing each run to its own heap file with sequential IO.
// Run files are created lazily (on first emit) and dropped on error.
func formRuns(f *heap.File, col int, memTuples int, prefix string, inputAccess simio.Access, kernel bool) ([]*heap.File, error) {
	runs, sorted, err := replacementSelect(f, 0, f.NumPages(), col, memTuples, prefix, inputAccess, false, kernel)
	if err != nil {
		return nil, err
	}
	if sorted != nil {
		// Unreachable from Sort (the in-memory case is handled before
		// formRuns), but keep formRuns total.
		panic("extsort: formRuns produced an in-memory result")
	}
	return runs, nil
}

// replacementSelect runs Knuth's algorithm 5.4.1R over pages [start, end)
// of f with a queue of slots elements. When allowMem is set and the whole
// range fits the queue, no run file is written and the sorted tuples are
// returned in memory instead — the chunked sort's per-chunk shortcut.
// On error, every run file created so far is dropped.
func replacementSelect(f *heap.File, start, end, col, slots int, prefix string, inputAccess simio.Access, allowMem bool, kernel bool) ([]*heap.File, []tuple.Tuple, error) {
	disk := f.Disk()
	clock := disk.Clock()
	schema := f.Schema()

	q := newSelTree(clock, kindRunThenKey, slots, kernel)
	var runs []*heap.File
	var out *heap.File
	curRun := 0

	newRunFile := func() (*heap.File, error) {
		rf, err := heap.Create(disk, fmt.Sprintf("%s.run.%d", prefix, len(runs)), schema)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rf)
		return rf, nil
	}

	emit := func(it item) error {
		if out == nil {
			var err error
			if out, err = newRunFile(); err != nil {
				return err
			}
			curRun = it.run
		} else if it.run != curRun {
			if err := out.Flush(simio.Seq); err != nil {
				return err
			}
			var err error
			if out, err = newRunFile(); err != nil {
				return err
			}
			curRun = it.run
		}
		return out.Append(it.tup, simio.Seq)
	}

	var err error
	scanErr := f.ScanRange(start, end, inputAccess, func(t tuple.Tuple) bool {
		tc := t.Clone() // the scan's tuple view is reused; retain a copy
		it := item{run: curRun, key: schema.KeyBytes(tc, col), tup: tc}
		if q.Len() < slots {
			q.Push(it)
			return true
		}
		top := q.Peek()
		// The incoming tuple joins the current run if it can still be
		// emitted after the smallest queued key; otherwise it waits for
		// the next run. One comparison, as in Knuth's algorithm 5.4.1R.
		clock.Comps(1)
		if compareKeys(it.key, top.key) >= 0 {
			it.run = top.run
		} else {
			it.run = top.run + 1
		}
		popped := q.Replace(it)
		err = emit(popped)
		return err == nil
	})
	if scanErr == nil {
		scanErr = err
	}
	if scanErr != nil {
		dropAll(runs)
		return nil, nil, scanErr
	}
	if allowMem && out == nil {
		// The whole range fit the queue: drain it in memory, run-then-key
		// order (every element is in run 0, so this is key order).
		sorted := make([]tuple.Tuple, 0, q.Len())
		for q.Len() > 0 {
			sorted = append(sorted, q.Pop().tup)
		}
		return nil, sorted, nil
	}
	for q.Len() > 0 {
		if err := emit(q.Pop()); err != nil {
			dropAll(runs)
			return nil, nil, err
		}
	}
	if out != nil {
		if err := out.Flush(simio.Seq); err != nil {
			dropAll(runs)
			return nil, nil, err
		}
	}
	return runs, nil, nil
}

// compareKeys is lexicographic with shorter-is-smaller length tie-break —
// exactly bytes.Compare, which replaced the original byte loop (same
// results, so same charges; the SIMD-backed compare is a pure wall-time
// win).
func compareKeys(a, b []byte) int { return bytes.Compare(a, b) }

// workers normalizes the config's Parallelism to a worker count.
func (c Config) workers() int { return exec.Workers(c.Parallelism) }
