// Package extsort implements the sort machinery of the paper's sort-merge
// join (§3.4): replacement-selection run formation producing runs of
// roughly twice the memory size [KNUT73], followed by a single n-way merge
// using one buffer page per run.
//
// IO accounting follows the paper: run pages are written sequentially
// (IOseq) and read back during the merge with random IO (IOrand), giving
// the (|R|+|S|)*IOseq + (|R|+|S|)*IOrand terms of the sort-merge cost
// formula. When the input fits in the priority queue it is sorted entirely
// in memory, which is why the paper's sort-merge curve improves above
// |M| = |S|*F.
package extsort

import (
	"fmt"

	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Stream yields tuples in non-decreasing key order. After Next returns
// ok=false, Err reports any underlying failure.
type Stream interface {
	Next() (tuple.Tuple, bool)
	Err() error
}

// Stats describes how a sort executed.
type Stats struct {
	Runs        int  // number of initial runs formed
	FinalRuns   int  // runs merged by the final on-the-fly merge
	MergePasses int  // intermediate merge passes (0 under the paper's |M| >= sqrt(|S|*F) assumption)
	InMemory    bool // true when no run files were needed
}

// Sort sorts file f on column col using at most memTuples tuples of
// priority-queue memory. Temporary run files are named prefix.run.N.
// The input is scanned with inputAccess (Uncharged for base relations,
// per the paper's convention of ignoring the initial read).
//
// maxFanout bounds how many runs the final merge may hold open (one buffer
// page each). When the initial runs exceed it, intermediate merge passes
// combine them first — the ">2 phases" case the paper's memory assumption
// excludes, kept here so the operator degrades instead of failing.
// maxFanout <= 0 means unlimited.
func Sort(f *heap.File, col int, memTuples int, maxFanout int, prefix string, inputAccess simio.Access) (Stream, Stats, error) {
	if memTuples < 2 {
		return nil, Stats{}, fmt.Errorf("extsort: need at least 2 tuples of memory, got %d", memTuples)
	}
	disk := f.Disk()
	clock := disk.Clock()
	schema := f.Schema()

	if f.NumTuples() <= int64(memTuples) {
		// Fully in-memory: heap-sort via the same counting priority queue.
		q := newPQueue(clock, byKey(clock), int(f.NumTuples()))
		err := f.Scan(inputAccess, func(t tuple.Tuple) bool {
			q.Push(item{key: schema.KeyBytes(t, col), tup: t.Clone()})
			return true
		})
		if err != nil {
			return nil, Stats{}, err
		}
		return &memStream{q: q}, Stats{Runs: 1, InMemory: true}, nil
	}

	runs, err := formRuns(f, col, memTuples, prefix, inputAccess)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Runs: len(runs)}
	if maxFanout > 1 {
		for len(runs) > maxFanout {
			runs, err = mergePass(runs, col, maxFanout, fmt.Sprintf("%s.m%d", prefix, stats.MergePasses))
			if err != nil {
				return nil, Stats{}, err
			}
			stats.MergePasses++
		}
	}
	stats.FinalRuns = len(runs)
	ms, err := mergeRuns(runs, col)
	if err != nil {
		return nil, Stats{}, err
	}
	return ms, stats, nil
}

// mergePass merges groups of up to fanout runs into longer runs, reading
// run pages with random IO and writing the merged output sequentially.
func mergePass(runs []*heap.File, col, fanout int, prefix string) ([]*heap.File, error) {
	var next []*heap.File
	for i := 0; i < len(runs); i += fanout {
		j := i + fanout
		if j > len(runs) {
			j = len(runs)
		}
		group := runs[i:j]
		if len(group) == 1 {
			next = append(next, group[0])
			continue
		}
		ms, err := mergeRuns(group, col)
		if err != nil {
			return nil, err
		}
		out, err := heap.Create(group[0].Disk(), fmt.Sprintf("%s.%d", prefix, len(next)), group[0].Schema())
		if err != nil {
			return nil, err
		}
		for {
			t, ok := ms.Next()
			if !ok {
				break
			}
			if err := out.Append(t, simio.Seq); err != nil {
				return nil, err
			}
		}
		if err := ms.Err(); err != nil {
			return nil, err
		}
		if err := out.Flush(simio.Seq); err != nil {
			return nil, err
		}
		for _, g := range group {
			g.Drop()
		}
		next = append(next, out)
	}
	return next, nil
}

// memStream drains an in-memory priority queue.
type memStream struct {
	q *pqueue
}

func (s *memStream) Next() (tuple.Tuple, bool) {
	if s.q.Len() == 0 {
		return nil, false
	}
	it := s.q.Pop()
	return it.tup, true
}

func (s *memStream) Err() error { return nil }

// formRuns performs replacement selection with a queue of memTuples
// elements, writing each run to its own heap file with sequential IO.
func formRuns(f *heap.File, col int, memTuples int, prefix string, inputAccess simio.Access) ([]*heap.File, error) {
	disk := f.Disk()
	clock := disk.Clock()
	schema := f.Schema()

	q := newPQueue(clock, byRunThenKey(clock), memTuples)
	var runs []*heap.File
	curRun := 0

	newRunFile := func() (*heap.File, error) {
		rf, err := heap.Create(disk, fmt.Sprintf("%s.run.%d", prefix, len(runs)), schema)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rf)
		return rf, nil
	}
	out, err := newRunFile()
	if err != nil {
		return nil, err
	}

	emit := func(it item) error {
		if it.run != curRun {
			if err := out.Flush(simio.Seq); err != nil {
				return err
			}
			var err error
			out, err = newRunFile()
			if err != nil {
				return err
			}
			curRun = it.run
		}
		return out.Append(it.tup, simio.Seq)
	}

	scanErr := f.Scan(inputAccess, func(t tuple.Tuple) bool {
		tc := t.Clone() // the scan's tuple view is reused; retain a copy
		it := item{run: curRun, key: schema.KeyBytes(tc, col), tup: tc}
		if q.Len() < memTuples {
			q.Push(it)
			return true
		}
		top := q.Peek()
		// The incoming tuple joins the current run if it can still be
		// emitted after the smallest queued key; otherwise it waits for
		// the next run. One comparison, as in Knuth's algorithm 5.4.1R.
		clock.Comps(1)
		if compareKeys(it.key, top.key) >= 0 {
			it.run = top.run
		} else {
			it.run = top.run + 1
		}
		popped := q.Replace(it)
		err = emit(popped)
		return err == nil
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, err
	}
	for q.Len() > 0 {
		if err := emit(q.Pop()); err != nil {
			return nil, err
		}
	}
	if err := out.Flush(simio.Seq); err != nil {
		return nil, err
	}
	return runs, nil
}

func compareKeys(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// runCursor reads one run a page at a time (one buffer page per run, as in
// §3.4 step 2). Page reads are charged as random IO.
type runCursor struct {
	file  *heap.File
	page  int
	slot  int
	cur   []tuple.Tuple
	done  bool
	err   error
	total int
}

func (c *runCursor) next() (tuple.Tuple, bool) {
	for {
		if c.err != nil || c.done {
			return nil, false
		}
		if c.cur != nil && c.slot < len(c.cur) {
			t := c.cur[c.slot]
			c.slot++
			return t, true
		}
		if c.page >= c.file.NumPages() {
			c.done = true
			return nil, false
		}
		p, err := c.file.ReadPage(c.page, simio.Rand)
		if err != nil {
			c.err = err
			return nil, false
		}
		tups := p.Tuples()
		c.cur = make([]tuple.Tuple, len(tups))
		for i, t := range tups {
			c.cur[i] = t.Clone()
		}
		c.page++
		c.slot = 0
	}
}

// mergeStream is the n-way merge over run files driven by a counting
// selection tree.
type mergeStream struct {
	col     int
	cursors []*runCursor
	q       *pqueue
	err     error
}

func mergeRuns(runs []*heap.File, col int) (*mergeStream, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("extsort: no runs to merge")
	}
	clock := runs[0].Disk().Clock()
	schema := runs[0].Schema()
	ms := &mergeStream{col: col, q: newPQueue(clock, byKey(clock), len(runs))}
	for i, rf := range runs {
		c := &runCursor{file: rf}
		ms.cursors = append(ms.cursors, c)
		if t, ok := c.next(); ok {
			ms.q.Push(item{run: i, key: schema.KeyBytes(t, col), tup: t})
		} else if c.err != nil {
			return nil, c.err
		}
	}
	return ms, nil
}

func (m *mergeStream) Next() (tuple.Tuple, bool) {
	if m.err != nil || m.q.Len() == 0 {
		return nil, false
	}
	schema := m.cursors[0].file.Schema()
	it := m.q.Pop()
	c := m.cursors[it.run]
	if t, ok := c.next(); ok {
		m.q.Push(item{run: it.run, key: schema.KeyBytes(t, m.col), tup: t})
	} else if c.err != nil {
		m.err = c.err
	}
	return it.tup, true
}

func (m *mergeStream) Err() error { return m.err }
