package extsort

import (
	"fmt"
	"sync"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/page"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// pumpBuffer is the per-interior-node channel depth of the eager merge
// tree, in tuples. Deep enough to decouple the root from chunk-stream
// latency, shallow enough to keep read-ahead (and thus retained pages)
// small.
const pumpBuffer = 128

// memStream drains an in-memory priority queue, charging the heap pops as
// the consumer pulls — the classic (Chunks=1) in-memory sort.
type memStream struct {
	q selTree
}

func (s *memStream) Next() (tuple.Tuple, bool) {
	if s.q == nil || s.q.Len() == 0 {
		return nil, false
	}
	it := s.q.Pop()
	return it.tup, true
}

func (s *memStream) Err() error { return nil }

// Close releases the queue. Like the classic external stream, no charges
// are made for unconsumed tuples: the serial plan's accounting is
// consumption-driven.
func (s *memStream) Close() error {
	s.q = nil
	return nil
}

// sliceStream serves an already-sorted in-memory chunk. The sort charges
// happened on the formation worker's clock; serving is free, like reading
// the ordered slice the classic memStream would have produced.
type sliceStream struct {
	items []tuple.Tuple
	pos   int
}

func (s *sliceStream) Next() (tuple.Tuple, bool) {
	if s.pos >= len(s.items) {
		return nil, false
	}
	t := s.items[s.pos]
	s.pos++
	return t, true
}

func (s *sliceStream) Err() error { return nil }

func (s *sliceStream) Close() error {
	s.items = nil
	return nil
}

// runCursor reads one run a page at a time (one buffer page per run, as in
// §3.4 step 2). Page reads are charged as random IO. Served tuples are
// views into the page copy simio.Space.Read hands back, which stays valid
// after the cursor advances; only the file's live append buffer (never hit
// in practice — runs are flushed before merging) needs a defensive clone.
// The run file is dropped as soon as the cursor exhausts it.
type runCursor struct {
	file *heap.File
	page int
	slot int
	cur  page.TuplePage
	n    int  // tuples in cur
	live bool // cur aliases the append buffer; clone before serving
	done bool
	err  error
}

func (c *runCursor) next() (tuple.Tuple, bool) {
	for {
		if c.err != nil || c.done {
			return nil, false
		}
		if c.slot < c.n {
			t := c.cur.Tuple(c.slot)
			c.slot++
			if c.live {
				t = t.Clone()
			}
			return t, true
		}
		if c.page >= c.file.NumPages() {
			c.done = true
			c.file.Drop()
			return nil, false
		}
		p, err := c.file.ReadPage(c.page, simio.Rand)
		if err != nil {
			c.err = err
			return nil, false
		}
		c.cur = p
		c.n = p.Count()
		c.live = c.page == c.file.NumPages()-1 && c.file.Buffered() > 0
		c.page++
		c.slot = 0
	}
}

// mergeStream is the flat n-way merge over run files driven by a counting
// selection tree. It is both the classic (Chunks=1) final merge and the
// per-chunk leaf merge of the chunked tree.
type mergeStream struct {
	col     int
	schema  *tuple.Schema
	cursors []*runCursor
	q       selTree
	err     error
	closed  bool
}

func mergeRuns(runs []*heap.File, col int, kernel bool) (*mergeStream, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("extsort: no runs to merge")
	}
	clock := runs[0].Disk().Clock()
	schema := runs[0].Schema()
	ms := &mergeStream{col: col, schema: schema, q: newSelTree(clock, kindKey, len(runs), kernel)}
	for i, rf := range runs {
		c := &runCursor{file: rf}
		ms.cursors = append(ms.cursors, c)
		if t, ok := c.next(); ok {
			ms.q.Push(item{run: i, key: schema.KeyBytes(t, col), tup: t})
		} else if c.err != nil {
			return nil, c.err
		}
	}
	return ms, nil
}

func (m *mergeStream) Next() (tuple.Tuple, bool) {
	if m.closed || m.err != nil || m.q.Len() == 0 {
		return nil, false
	}
	it := m.q.Pop()
	c := m.cursors[it.run]
	if t, ok := c.next(); ok {
		m.q.Push(item{run: it.run, key: m.schema.KeyBytes(t, m.col), tup: t})
	} else if c.err != nil {
		m.err = c.err
	}
	return it.tup, true
}

func (m *mergeStream) Err() error { return m.err }

// Close drops the remaining run files without reading them: the classic
// plan's merge IO is consumption-driven, so abandoning the stream early
// keeps the serial engine's original accounting.
func (m *mergeStream) Close() error {
	if m.closed {
		return m.err
	}
	m.closed = true
	for _, c := range m.cursors {
		c.file.Drop()
	}
	return m.err
}

// pumpStream runs an interior merge node eagerly: a goroutine pulls the
// inner stream and sends through a bounded channel, so leaf merges make
// progress while the root is busy elsewhere. On Close (or when the inner
// stream is exhausted) the pump finishes reading the inner stream before
// closing it, keeping charges independent of where the consumer stopped
// and of scheduling.
type pumpStream struct {
	ch   chan tuple.Tuple
	stop chan struct{}
	done chan struct{}
	once sync.Once
	err  error
}

func newPumpStream(inner Stream, buf int) *pumpStream {
	p := &pumpStream{
		ch:   make(chan tuple.Tuple, buf),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		for {
			t, ok := inner.Next()
			if !ok {
				break
			}
			select {
			case p.ch <- t:
			case <-p.stop:
				// Consumer abandoned the stream: finish the inner reads
				// so the charged counters stay schedule-independent.
				for {
					if _, ok := inner.Next(); !ok {
						break
					}
				}
			}
		}
		p.err = inner.Err()
		inner.Close()
		close(p.done)
		close(p.ch)
	}()
	return p
}

func (p *pumpStream) Next() (tuple.Tuple, bool) {
	t, ok := <-p.ch
	if !ok {
		return nil, false
	}
	return t, true
}

// Err reports the inner stream's error once the pump has finished; while
// the pump is still running there is no error to report yet.
func (p *pumpStream) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		return nil
	}
}

func (p *pumpStream) Close() error {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	return p.err
}

// pumpBatch is how many tuples a batched pump moves per channel operation.
const pumpBatch = 32

// batchPumpStream is the kernel-mode interior pump: identical drain/Close
// contract to pumpStream, but tuples cross the channel in pumpBatch-sized
// slices, amortizing the per-tuple channel synchronization that dominates
// a wide merge root's interior nodes. Charges are unchanged — batching
// only reschedules when the inner stream is pulled, and the Stream
// contract already guarantees schedule-independent totals.
type batchPumpStream struct {
	ch   chan []tuple.Tuple
	cur  []tuple.Tuple
	pos  int
	stop chan struct{}
	done chan struct{}
	once sync.Once
	err  error
}

func newBatchPumpStream(inner Stream, buf int) *batchPumpStream {
	depth := buf / pumpBatch
	if depth < 1 {
		depth = 1
	}
	p := &batchPumpStream{
		ch:   make(chan []tuple.Tuple, depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		batch := make([]tuple.Tuple, 0, pumpBatch)
		stopped := false
		send := func() bool {
			select {
			case p.ch <- batch:
				batch = make([]tuple.Tuple, 0, pumpBatch)
				return true
			case <-p.stop:
				return false
			}
		}
		for !stopped {
			t, ok := inner.Next()
			if !ok {
				break
			}
			batch = append(batch, t)
			if len(batch) == pumpBatch {
				stopped = !send()
			}
		}
		if stopped {
			// Consumer abandoned the stream: finish the inner reads so the
			// charged counters stay schedule-independent.
			for {
				if _, ok := inner.Next(); !ok {
					break
				}
			}
		} else if len(batch) > 0 {
			send()
		}
		p.err = inner.Err()
		inner.Close()
		close(p.done)
		close(p.ch)
	}()
	return p
}

func (p *batchPumpStream) Next() (tuple.Tuple, bool) {
	if p.pos < len(p.cur) {
		t := p.cur[p.pos]
		p.pos++
		return t, true
	}
	b, ok := <-p.ch
	if !ok {
		return nil, false
	}
	p.cur, p.pos = b, 1
	return b[0], true
}

// Err reports the inner stream's error once the pump has finished; while
// the pump is still running there is no error to report yet.
func (p *batchPumpStream) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		return nil
	}
}

func (p *batchPumpStream) Close() error {
	p.once.Do(func() { close(p.stop) })
	<-p.done
	return p.err
}

// treeStream is the root of the chunked merge tree: a selection tree over
// one stream per chunk, charging its comparisons and sifts on the base
// clock. Ties between chunks break toward the lower chunk index, which
// also makes the output order of equal keys deterministic.
type treeStream struct {
	col      int
	schema   *tuple.Schema
	children []Stream
	q        selTree
	err      error
	closed   bool
}

// newTreeStream builds the root selection tree. The charged structure is
// always the flat fan-in over all chunk streams (changing it would change
// plan counters); with the kernel layout the root's nodes are 16-byte
// prefix records — a 64-chunk root is one KiB of heap, cache-resident even
// at very high SortChunks — and the interior pumps feeding it are batched
// (see newBatchPumpStream), which is what keeps a wide root from becoming
// a per-tuple channel bottleneck.
func newTreeStream(children []Stream, schema *tuple.Schema, col int, clock *cost.Clock, kernel bool) (*treeStream, error) {
	t := &treeStream{
		col:      col,
		schema:   schema,
		children: children,
		q:        newSelTree(clock, kindKey, len(children), kernel),
	}
	for i, c := range children {
		tup, ok := c.Next()
		if !ok {
			if err := c.Err(); err != nil {
				return nil, err
			}
			continue
		}
		t.q.Push(item{run: i, key: schema.KeyBytes(tup, col), tup: tup})
	}
	return t, nil
}

func (t *treeStream) Next() (tuple.Tuple, bool) {
	if t.closed || t.err != nil || t.q.Len() == 0 {
		return nil, false
	}
	it := t.q.Pop()
	c := t.children[it.run]
	if tup, ok := c.Next(); ok {
		t.q.Push(item{run: it.run, key: t.schema.KeyBytes(tup, t.col), tup: tup})
	} else if err := c.Err(); err != nil {
		t.err = err
	}
	return it.tup, true
}

func (t *treeStream) Err() error { return t.err }

// Close finishes every chunk stream — reading whatever run pages the
// consumer did not get to, charging them — and releases the run files.
// This is what makes a chunked sort's counters a function of the plan
// alone: however far the consumer pulled, and whatever the pumps had
// read ahead, the total charged IO is the full merge.
func (t *treeStream) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	for _, c := range t.children {
		if err := drainClose(c); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// drainClose pulls s to exhaustion, then closes it.
func drainClose(s Stream) error {
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if err := s.Err(); err != nil {
		s.Close()
		return err
	}
	return s.Close()
}
