// Cache-conscious kernel layout for the sort's selection tree.
//
// The charged algorithm is untouched: kqueue is the same binary heap as
// pqueue — same sift paths, same short-circuit order in siftDown, same one
// comparison / one swap charges — so the §3 counters are bit-identical by
// construction. What changes is purely physical:
//
//   - Heap nodes are flat 16-byte {prefix, run, ref} records instead of
//     56-byte items carrying two slice headers. A sift swap moves one
//     pointer-free word pair (no GC write barriers) and a heap level fits
//     four nodes per cache line.
//   - Each node carries the first 8 key bytes, big-endian, so most
//     comparisons resolve on an in-node uint64 compare without touching
//     the key bytes at all. For same-length keys the prefix is
//     sign-equivalent to bytes.Compare (differing prefixes decide the
//     sign; equal prefixes on keys <= 8 bytes mean equal keys), so every
//     less() result — and therefore every sift path — is identical.
//   - Items live in a side arena indexed by ref, recycled through a free
//     list, so pushing and popping never moves tuple or key headers
//     through the heap.
//
// A d-ary/tournament (loser) tree was evaluated for this role and rejected:
// it performs exactly ceil(log2 k) comparisons per replacement, while the
// paper's binary heap charges a data-dependent number (the actual sift
// path), so a charged loser tree cannot reproduce the §3 accounting
// bit-for-bit at plan-identical knobs. It ships in loser.go as a tested,
// benchmarked reference quantifying what the cost-model fidelity costs.
package extsort

import (
	"bytes"
	"encoding/binary"

	"mmdb/internal/cost"
)

// knode is one heap slot: the key prefix, the run, and the arena index of
// the full item.
type knode struct {
	prefix uint64
	run    int32
	ref    int32
}

// kqueue is the cache-kernel selection tree. See the file comment for the
// counter-identity argument.
type kqueue struct {
	clock *cost.Clock
	byRun bool
	nodes []knode
	arena []item
	free  []int32
	// keyLen/short track whether every key seen so far has the same length
	// <= 8 bytes; then equal prefixes imply equal keys and the fallback
	// byte compare is skipped entirely (Int64 sort keys always qualify).
	keyLen int
	short  bool
}

func newKQueue(clock *cost.Clock, kind lessKind, capacity int) *kqueue {
	return &kqueue{
		clock:  clock,
		byRun:  kind == kindRunThenKey,
		nodes:  make([]knode, 0, capacity),
		arena:  make([]item, 0, capacity),
		keyLen: -1,
		short:  true,
	}
}

// prefixOf returns the first 8 key bytes, big-endian, zero-extended. For
// same-length keys, unequal prefixes decide bytes.Compare's sign.
func prefixOf(key []byte) uint64 {
	if len(key) >= 8 {
		return binary.BigEndian.Uint64(key)
	}
	var p uint64
	for i, b := range key {
		p |= uint64(b) << (56 - 8*i)
	}
	return p
}

func (q *kqueue) track(key []byte) {
	if q.keyLen == -1 {
		q.keyLen = len(key)
		q.short = len(key) <= 8
	} else if len(key) != q.keyLen {
		q.short = false
	}
}

// cmp is sign-equivalent to bytes.Compare on the underlying keys.
func (q *kqueue) cmp(a, b *knode) int {
	if a.prefix != b.prefix {
		if a.prefix < b.prefix {
			return -1
		}
		return 1
	}
	if q.short {
		return 0
	}
	return bytes.Compare(q.arena[a.ref].key, q.arena[b.ref].key)
}

// less replicates byRunThenKey / byKey exactly, including when the
// comparison charge is made.
func (q *kqueue) less(a, b *knode) bool {
	if q.byRun {
		if a.run != b.run {
			return a.run < b.run
		}
		q.clock.Comps(1)
		return q.cmp(a, b) < 0
	}
	q.clock.Comps(1)
	if c := q.cmp(a, b); c != 0 {
		return c < 0
	}
	return a.run < b.run
}

func (q *kqueue) alloc(it item) int32 {
	if n := len(q.free); n > 0 {
		ref := q.free[n-1]
		q.free = q.free[:n-1]
		q.arena[ref] = it
		return ref
	}
	q.arena = append(q.arena, it)
	return int32(len(q.arena) - 1)
}

func (q *kqueue) release(ref int32) {
	q.arena[ref] = item{} // drop tuple/key references for the GC
	q.free = append(q.free, ref)
}

func (q *kqueue) Len() int { return len(q.nodes) }

func (q *kqueue) Peek() *item { return &q.arena[q.nodes[0].ref] }

func (q *kqueue) Push(it item) {
	q.track(it.key)
	n := knode{prefix: prefixOf(it.key), run: int32(it.run), ref: q.alloc(it)}
	q.nodes = append(q.nodes, n)
	i := len(q.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(&q.nodes[i], &q.nodes[parent]) {
			break
		}
		q.clock.Swaps(1)
		q.nodes[i], q.nodes[parent] = q.nodes[parent], q.nodes[i]
		i = parent
	}
}

func (q *kqueue) Pop() item {
	top := q.nodes[0]
	out := q.arena[top.ref]
	q.release(top.ref)
	last := len(q.nodes) - 1
	q.nodes[0] = q.nodes[last]
	q.nodes = q.nodes[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return out
}

// Replace pops the minimum and pushes it in one sift, reusing the arena
// slot — the classic replacement-selection step.
func (q *kqueue) Replace(it item) item {
	q.track(it.key)
	top := q.nodes[0]
	out := q.arena[top.ref]
	q.arena[top.ref] = it
	q.nodes[0] = knode{prefix: prefixOf(it.key), run: int32(it.run), ref: top.ref}
	q.siftDown(0)
	return out
}

// siftDown mirrors pqueue.siftDown's evaluation order exactly: the
// right-vs-left probe short-circuits on right < n first, then the
// child-vs-parent test, so the charged comparison sequence is identical.
func (q *kqueue) siftDown(i int) {
	n := len(q.nodes)
	for {
		left, right := 2*i+1, 2*i+2
		if left >= n {
			return
		}
		child := left
		if right < n && q.less(&q.nodes[right], &q.nodes[left]) {
			child = right
		}
		if !q.less(&q.nodes[child], &q.nodes[i]) {
			return
		}
		q.clock.Swaps(1)
		q.nodes[i], q.nodes[child] = q.nodes[child], q.nodes[i]
		i = child
	}
}
