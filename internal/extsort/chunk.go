package extsort

import (
	"context"
	"fmt"

	"mmdb/internal/cost"
	"mmdb/internal/exec"
	"mmdb/internal/heap"
	"mmdb/internal/tuple"
)

// chunkResult is what one formation worker hands back: either an in-memory
// sorted slice (the chunk fit its queue share) or a set of run files living
// on the worker's disk view, plus the chunk's stats and the worker clock
// whose counters fold into the global clock at the fan-in.
type chunkResult struct {
	sorted []tuple.Tuple
	runs   []*heap.File
	stats  Stats
	clock  *cost.Clock
}

// sortChunked executes the chunked plan: `chunks` formation workers, each
// running replacement selection (and any intermediate merge passes) over
// its own page range with MemTuples/chunks queue slots on a private clock
// view, then a merge tree whose root fans in one stream per chunk.
//
// Counters are width-independent by construction: each chunk's work is a
// pure function of its page range and slot count, worker clocks fold into
// the base clock at the fan-in barrier (counter addition commutes), and
// everything after the barrier — re-homing run files, priming the merge
// heads, the root selection tree — runs on the caller's goroutine against
// the base clock.
func sortChunked(f *heap.File, cfg Config, chunks int) (Stream, Stats, error) {
	disk := f.Disk()
	baseClock := disk.Clock()
	slots := cfg.MemTuples / chunks
	if slots < 2 {
		slots = 2 // planChunks guarantees this; keep the invariant local
	}
	// Per-chunk fanout budget: the merge tree holds one buffer page per
	// open run in every chunk, so dividing MaxFanout keeps the total at
	// most MaxFanout pages — up to the same floor of 2 the flat merge has.
	chunkFanout := 0
	if cfg.MaxFanout > 1 {
		chunkFanout = cfg.MaxFanout / chunks
		if chunkFanout < 2 {
			chunkFanout = 2
		}
	}

	np := f.NumPages()
	results := make([]chunkResult, chunks)
	pool := exec.NewPool(cfg.Parallelism)
	err := pool.ForEach(context.Background(), chunks, func(_ context.Context, i int) error {
		start := i * np / chunks
		end := (i + 1) * np / chunks
		wc := cost.NewClock(baseClock.Params())
		results[i].clock = wc
		wf, err := f.OnDisk(disk.View(wc))
		if err != nil {
			return err
		}
		prefix := fmt.Sprintf("%s.c%d", cfg.Prefix, i)
		runs, sorted, err := replacementSelect(wf, start, end, cfg.Col, slots, prefix, cfg.Input, true, cfg.kernels())
		if err != nil {
			return err
		}
		if sorted != nil {
			results[i].sorted = sorted
			results[i].stats = Stats{Runs: 1, InMemory: true}
			return nil
		}
		st := Stats{Runs: len(runs)}
		if chunkFanout > 1 {
			for len(runs) > chunkFanout {
				runs, err = mergePass(runs, cfg.Col, chunkFanout, fmt.Sprintf("%s.m%d", prefix, st.MergePasses), cfg.kernels())
				if err != nil {
					return err
				}
				st.MergePasses++
			}
		}
		st.FinalRuns = len(runs)
		results[i].runs = runs
		results[i].stats = st
		return nil
	})

	// Fan-in barrier: fold every worker clock that ran, in chunk order.
	// On success this is where the chunk counters become globally visible;
	// on error it keeps the global clock consistent with the IO that
	// actually happened before cleanup.
	for i := range results {
		if results[i].clock != nil {
			baseClock.Charge(results[i].clock.Counters())
		}
	}
	if err != nil {
		for i := range results {
			dropAll(results[i].runs)
		}
		return nil, Stats{}, err
	}

	stats := Stats{Chunks: chunks, InMemory: true}
	streams := make([]Stream, chunks)
	fail := func(err error) (Stream, Stats, error) {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
		for i := range results {
			dropAll(results[i].runs)
		}
		return nil, Stats{}, err
	}
	for i := range results {
		stats.add(results[i].stats)
		if results[i].sorted != nil {
			streams[i] = &sliceStream{items: results[i].sorted}
			continue
		}
		stats.InMemory = false
		// Re-home the worker's run files so the merge reads charge the
		// base clock; priming below happens serially in chunk order.
		rehomed := make([]*heap.File, len(results[i].runs))
		for k, rf := range results[i].runs {
			h, err := rf.OnDisk(disk)
			if err != nil {
				return fail(err)
			}
			rehomed[k] = h
		}
		ms, err := mergeRuns(rehomed, cfg.Col, cfg.kernels())
		if err != nil {
			return fail(err)
		}
		results[i].runs = nil // owned by the stream now
		streams[i] = ms
	}

	// With more than one worker the interior nodes run eagerly on their
	// own goroutines behind bounded channels; at width 1 the root pulls
	// them lazily inline. Charges are identical either way — see the
	// Close/drain contract on Stream. Kernel mode moves tuples through the
	// pumps in batches so a wide root (high SortChunks) amortizes channel
	// synchronization instead of paying it per tuple.
	if cfg.workers() > 1 {
		for i := range streams {
			if cfg.kernels() {
				streams[i] = newBatchPumpStream(streams[i], pumpBuffer)
			} else {
				streams[i] = newPumpStream(streams[i], pumpBuffer)
			}
		}
	}
	root, err := newTreeStream(streams, f.Schema(), cfg.Col, baseClock, cfg.kernels())
	if err != nil {
		return fail(err)
	}
	return root, stats, nil
}
