package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// TestSortKernelQueueMatchesPQueue drives the classic heap and the kernel
// queue through an identical randomized op sequence for both orderings and
// requires identical pop results and bit-identical counters.
func TestSortKernelQueueMatchesPQueue(t *testing.T) {
	for _, kind := range []lessKind{kindRunThenKey, kindKey} {
		t.Run(fmt.Sprintf("kind=%d", kind), func(t *testing.T) {
			pc := cost.NewClock(cost.DefaultParams())
			kc := cost.NewClock(cost.DefaultParams())
			pq := newSelTree(pc, kind, 64, false)
			kq := newSelTree(kc, kind, 64, true)
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 20000; step++ {
				switch op := rng.Intn(3); {
				case op == 0 || pq.Len() == 0:
					it := item{run: rng.Intn(3), key: intKey(rng.Intn(2000)), tup: tuple.Tuple{byte(step)}}
					pq.Push(it)
					kq.Push(it)
				case op == 1:
					a, b := pq.Pop(), kq.Pop()
					if !bytes.Equal(a.key, b.key) || a.run != b.run || !bytes.Equal(a.tup, b.tup) {
						t.Fatalf("step %d: pop diverged: %+v vs %+v", step, a, b)
					}
				default:
					it := item{run: rng.Intn(3), key: intKey(rng.Intn(2000)), tup: tuple.Tuple{byte(step)}}
					a, b := pq.Replace(it), kq.Replace(it)
					if !bytes.Equal(a.key, b.key) || a.run != b.run {
						t.Fatalf("step %d: replace diverged: %+v vs %+v", step, a, b)
					}
				}
				pa, ka := pq.Len(), kq.Len()
				if pa != ka {
					t.Fatalf("step %d: len diverged %d vs %d", step, pa, ka)
				}
				if pa > 0 {
					if !bytes.Equal(pq.Peek().key, kq.Peek().key) {
						t.Fatalf("step %d: peek diverged", step)
					}
				}
			}
			if c1, c2 := pc.Counters(), kc.Counters(); c1 != c2 {
				t.Fatalf("counters diverge:\npqueue %+v\nkqueue %+v", c1, c2)
			}
		})
	}
}

// TestSortKernelPrefixFallback exercises keys longer than the 8-byte
// in-node prefix and keys of mixed lengths, where the kernel queue must
// fall back to full byte compares without drifting.
func TestSortKernelPrefixFallback(t *testing.T) {
	longKey := func(k int) []byte {
		// 12-byte keys sharing an 8-byte prefix for k in the same bucket.
		b := make([]byte, 12)
		copy(b, "prefix--")
		b[8], b[9] = byte(k>>8), byte(k)
		return b
	}
	pc := cost.NewClock(cost.DefaultParams())
	kc := cost.NewClock(cost.DefaultParams())
	pq := newSelTree(pc, kindKey, 8, false)
	kq := newSelTree(kc, kindKey, 8, true)
	rng := rand.New(rand.NewSource(11))
	var keys [][]byte
	for i := 0; i < 4000; i++ {
		var k []byte
		if rng.Intn(2) == 0 {
			k = longKey(rng.Intn(500))
		} else {
			k = intKey(rng.Intn(500)) // 2-byte key: mixed lengths defeat `short`
		}
		keys = append(keys, k)
		pq.Push(item{key: k})
		kq.Push(item{key: k})
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	for i := range keys {
		a, b := pq.Pop(), kq.Pop()
		if !bytes.Equal(a.key, keys[i]) || !bytes.Equal(b.key, keys[i]) {
			t.Fatalf("pop %d: got %v / %v want %v", i, a.key, b.key, keys[i])
		}
	}
	if c1, c2 := pc.Counters(), kc.Counters(); c1 != c2 {
		t.Fatalf("counters diverge:\npqueue %+v\nkqueue %+v", c1, c2)
	}
}

// sortBothKernels sorts the same input with the kernel on and off at the
// given plan/schedule knobs, returning both outputs and counter deltas.
func sortBothKernels(t *testing.T, n int, chunks, parallelism int) (on, off []int64, onC, offC cost.Counters) {
	t.Helper()
	run := func(noKernel bool) ([]int64, cost.Counters) {
		f := makeFile(t, n, int64(n)*4, 99)
		clock := f.Disk().Clock()
		before := clock.Counters()
		s, _, err := SortWith(f, Config{
			Col: 0, MemTuples: 64, MaxFanout: 8, Prefix: "t", Input: simio.Uncharged,
			Chunks: chunks, Parallelism: parallelism, NoKernel: noKernel,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := drain(t, s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return out, clock.Counters().Sub(before)
	}
	on, onC = run(false)
	off, offC = run(true)
	return
}

// TestSortKernelIdenticalToClassic is the sort half of the cachelab
// invariant at unit level: same plan knobs ⇒ kernel on/off produce the
// same tuple sequence and bit-identical counters, across chunked plans and
// schedule widths, including a SortChunks=64-style wide root.
func TestSortKernelIdenticalToClassic(t *testing.T) {
	for _, tc := range []struct {
		n, chunks, par int
	}{
		{40, 1, 1},    // in-memory
		{900, 1, 1},   // classic external
		{900, 4, 1},   // chunked, serial schedule
		{900, 4, 4},   // chunked, parallel pumps
		{2000, 64, 4}, // very wide root (deep-merge satellite rung)
	} {
		t.Run(fmt.Sprintf("n=%d/chunks=%d/par=%d", tc.n, tc.chunks, tc.par), func(t *testing.T) {
			on, off, onC, offC := sortBothKernels(t, tc.n, tc.chunks, tc.par)
			if len(on) != len(off) {
				t.Fatalf("lengths diverge: %d vs %d", len(on), len(off))
			}
			for i := range on {
				if on[i] != off[i] {
					t.Fatalf("output diverges at %d: %d vs %d", i, on[i], off[i])
				}
			}
			if onC != offC {
				t.Fatalf("counters diverge:\nkernel on  %+v\nkernel off %+v", onC, offC)
			}
		})
	}
}

// TestTournamentTreeMergesInOrder checks the loser-tree reference produces
// the exact merge order byKey realizes (key order, source index breaking
// ties).
func TestTournamentTreeMergesInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 9 // non-power-of-two: exercises padding leaves
	srcs := make([][][]byte, k)
	var all [][]byte
	for s := 0; s < k; s++ {
		n := rng.Intn(200)
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = intKey(rng.Intn(300))
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		srcs[s] = keys
		all = append(all, keys...)
	}
	sort.SliceStable(all, func(i, j int) bool { return bytes.Compare(all[i], all[j]) < 0 })

	pos := make([]int, k)
	tt := NewTournamentTree(k, func(src int) ([]byte, bool) {
		if pos[src] >= len(srcs[src]) {
			return nil, false
		}
		key := srcs[src][pos[src]]
		pos[src]++
		return key, true
	})
	var got [][]byte
	lastSrc := -1
	lastKey := []byte(nil)
	for {
		key, src, ok := tt.Next()
		if !ok {
			break
		}
		if lastKey != nil && bytes.Equal(key, lastKey) && src < lastSrc {
			t.Fatalf("tie broke toward higher source: %d after %d", src, lastSrc)
		}
		lastKey, lastSrc = key, src
		got = append(got, key)
	}
	if len(got) != len(all) {
		t.Fatalf("merged %d keys, want %d", len(got), len(all))
	}
	for i := range all {
		if !bytes.Equal(got[i], all[i]) {
			t.Fatalf("order diverges at %d: %v vs %v", i, got[i], all[i])
		}
	}
}

// TestTournamentChargeScheduleDiffersFromHeap documents why the loser tree
// is a reference, not the charged structure: for the same merge its
// physical comparison count differs from the heap's charged comparisons,
// so adopting it as charged would break the §3 accounting.
func TestTournamentChargeScheduleDiffersFromHeap(t *testing.T) {
	const k = 5
	srcs := make([][][]byte, k)
	for s := 0; s < k; s++ {
		keys := make([][]byte, 50)
		for i := range keys {
			keys[i] = intKey(s + i*k)
		}
		srcs[s] = keys
	}

	clock := cost.NewClock(cost.DefaultParams())
	q := newSelTree(clock, kindKey, k, false)
	pos := make([]int, k)
	for s := 0; s < k; s++ {
		q.Push(item{run: s, key: srcs[s][0]})
		pos[s] = 1
	}
	for q.Len() > 0 {
		it := q.Pop()
		if pos[it.run] < len(srcs[it.run]) {
			q.Push(item{run: it.run, key: srcs[it.run][pos[it.run]]})
			pos[it.run]++
		}
	}
	heapComps := clock.Counters().Comps

	treeComps := int64(0)
	pos = make([]int, k)
	count := func(x, y []byte) int {
		treeComps++
		return bytes.Compare(x, y)
	}
	tt := NewTournamentTree(k, func(src int) ([]byte, bool) {
		if pos[src] >= len(srcs[src]) {
			return nil, false
		}
		key := srcs[src][pos[src]]
		pos[src]++
		return key, true
	})
	tt.compare = count
	for {
		if _, _, ok := tt.Next(); !ok {
			break
		}
	}
	if heapComps == treeComps {
		t.Fatalf("expected differing comparison schedules, both %d — revisit the kernel design notes", heapComps)
	}
}
