package extsort

import "bytes"

// TournamentTree is a loser (tournament) tree k-way merge: interior nodes
// hold the loser of each match, the overall winner sits at the root, and
// replacing the winner replays exactly one leaf-to-root path — ceil(log2 k)
// comparisons per tuple, touching one contiguous node array.
//
// It is NOT the engine's charged selection tree, deliberately. The §3 cost
// model charges the binary heap's data-dependent sift work, and the
// cachelab invariant (plan knobs unchanged ⇒ counters bit-identical) pins
// that accounting; a loser tree's fixed log2 k comparison schedule cannot
// reproduce it. The engine therefore uses kqueue (same algorithm as the
// classic heap, cache-conscious layout), and this tree is kept as the
// evaluated alternative: tested for order correctness and benchmarked in
// BenchmarkTournamentMerge so the wall-clock cost of cost-model fidelity
// stays measured instead of assumed.
//
// Sources are identified by index in [0, k). pull(src) returns the next
// key from that source; ok=false means exhausted. Keys compare by
// bytes.Compare with ties broken toward the lower source index, matching
// the merge ordering byKey realizes.
type TournamentTree struct {
	pull    func(src int) ([]byte, bool)
	keys    [][]byte // current head key per source; nil = exhausted
	losers  []int32  // interior nodes 1..m-1; losers[i] = losing source
	m       int      // leaf count: k rounded up to a power of two
	k       int
	winner  int32
	compare func(a, b []byte) int // overridable for comparison-schedule tests
}

// NewTournamentTree builds the tree over k sources, pulling each source's
// first key.
func NewTournamentTree(k int, pull func(src int) ([]byte, bool)) *TournamentTree {
	m := 1
	for m < k {
		m <<= 1
	}
	t := &TournamentTree{pull: pull, keys: make([][]byte, m), losers: make([]int32, m), m: m, k: k, compare: bytes.Compare}
	for src := 0; src < k; src++ {
		if key, ok := pull(src); ok {
			t.keys[src] = key
		}
	}
	var build func(node int) int32
	build = func(node int) int32 {
		if node >= m {
			return int32(node - m)
		}
		a := build(2 * node)
		b := build(2*node + 1)
		w, l := a, b
		if t.beats(b, a) {
			w, l = b, a
		}
		t.losers[node] = l
		return w
	}
	t.winner = build(1)
	return t
}

// beats reports whether source x's head wins against source y's: smaller
// key wins, nil (exhausted, or a padding leaf >= k) always loses, ties go
// to the lower index.
func (t *TournamentTree) beats(x, y int32) bool {
	kx, ky := t.key(x), t.key(y)
	if kx == nil {
		return false
	}
	if ky == nil {
		return true
	}
	if c := t.compare(kx, ky); c != 0 {
		return c < 0
	}
	return x < y
}

func (t *TournamentTree) key(src int32) []byte {
	if int(src) >= t.k {
		return nil
	}
	return t.keys[src]
}

// Next returns the smallest remaining head key and its source, refills that
// source, and replays the single path from its leaf to the root.
func (t *TournamentTree) Next() ([]byte, int, bool) {
	w := t.winner
	out := t.key(w)
	if out == nil {
		return nil, 0, false
	}
	if key, ok := t.pull(int(w)); ok {
		t.keys[w] = key
	} else {
		t.keys[w] = nil
	}
	cur := w
	for node := (t.m + int(w)) / 2; node >= 1; node /= 2 {
		if t.beats(t.losers[node], cur) {
			cur, t.losers[node] = t.losers[node], cur
		}
	}
	t.winner = cur
	return out, int(w), true
}
