package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
	"mmdb/internal/workload"
)

// sortOnce builds a fresh, identical input file and sorts it under cfg,
// returning the output key order, the stats, and the disk's counters.
// consume < 0 means full drain; otherwise the stream is abandoned after
// that many tuples and Closed, exercising the drain-on-Close contract.
func sortOnce(t *testing.T, cfg Config, n int, seed int64, consume int) ([]int64, Stats, cost.Counters) {
	t.Helper()
	f := makeFile(t, n, 1<<40, seed)
	clock := f.Disk().Clock()
	clock.Reset()
	s, stats, err := SortWith(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := workload.RelationSpec{PayloadWidth: 12}.Schema()
	var got []int64
	for consume < 0 || len(got) < consume {
		tp, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, sc.Int(tp, 0))
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return got, stats, clock.Counters()
}

// TestChunkedSortDeterminismAcrossWidths is the core invariant of the
// parallel sort: for a fixed chunk plan, Parallelism changes neither the
// virtual counters nor the output order — whether the stream is fully
// drained or abandoned partway and Closed.
func TestChunkedSortDeterminismAcrossWidths(t *testing.T) {
	const n, mem = 3000, 120
	for _, consume := range []int{-1, 137} {
		base := Config{Col: 0, MemTuples: mem, MaxFanout: 16, Prefix: "p",
			Input: simio.Uncharged, Chunks: 4, Parallelism: 1}
		wantKeys, wantStats, wantCounters := sortOnce(t, base, n, 11, consume)
		if consume < 0 && len(wantKeys) != n {
			t.Fatalf("drained %d of %d tuples", len(wantKeys), n)
		}
		if wantStats.Chunks != 4 {
			t.Fatalf("planned %d chunks, want 4", wantStats.Chunks)
		}
		for _, width := range []int{2, 8} {
			cfg := base
			cfg.Parallelism = width
			keys, stats, counters := sortOnce(t, cfg, n, 11, consume)
			if stats != wantStats {
				t.Fatalf("consume=%d width %d stats %+v != serial %+v", consume, width, stats, wantStats)
			}
			if counters != wantCounters {
				t.Fatalf("consume=%d width %d counters %+v != serial %+v", consume, width, counters, wantCounters)
			}
			if len(keys) != len(wantKeys) {
				t.Fatalf("consume=%d width %d yielded %d tuples, want %d", consume, width, len(keys), len(wantKeys))
			}
			for i := range keys {
				if keys[i] != wantKeys[i] {
					t.Fatalf("consume=%d width %d output diverges at %d: %d vs %d",
						consume, width, i, keys[i], wantKeys[i])
				}
			}
		}
	}
}

// TestChunkedSortMatchesOracle checks the chunked sort against a
// sort.SliceStable oracle across the edge cases: in-memory inputs, a
// single run, the fanout floor, and chunk counts exceeding the page count.
func TestChunkedSortMatchesOracle(t *testing.T) {
	check := func(name string, n int, domain int64, seed int64, cfg Config) {
		t.Helper()
		f := makeFile(t, n, domain, seed)
		var want []int64
		sc := f.Schema()
		f.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
			want = append(want, sc.Int(tp, 0))
			return true
		})
		sort.SliceStable(want, func(i, j int) bool { return want[i] < want[j] })
		s, _, err := SortWith(f, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := drain(t, s)
		s.Close()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d tuples, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: mismatch at %d: %d vs %d", name, i, got[i], want[i])
			}
		}
	}
	base := func() Config {
		return Config{Col: 0, MemTuples: 64, MaxFanout: 8, Prefix: "o",
			Input: simio.Uncharged, Chunks: 4, Parallelism: 4}
	}

	cfg := base()
	check("external", 2000, 1<<40, 21, cfg)

	cfg = base()
	cfg.MemTuples = 5000 // whole input fits: every chunk takes the in-memory shortcut
	check("in-memory", 800, 1<<40, 22, cfg)

	cfg = base()
	cfg.MaxFanout = 2 // fanout floor: per-chunk budget clamps up to 2
	check("fanout-floor", 1500, 1<<40, 23, cfg)

	cfg = base()
	cfg.Chunks = 1000 // clamped to pages (and memory); still correct
	check("chunks-exceed-pages", 600, 1<<40, 24, cfg)

	cfg = base()
	check("duplicate-keys", 1200, 5, 25, cfg)
}

// TestChunkedSortQuickOracle drives random (n, mem, chunks, fanout)
// combinations through the sorted-output check.
func TestChunkedSortQuickOracle(t *testing.T) {
	fn := func(seed int64, n16, mem8, chunks8, fan8 uint8, dup bool) bool {
		n := int(n16)%400 + 2
		domain := int64(1 << 40)
		if dup {
			domain = 7
		}
		cfg := Config{
			Col:         0,
			MemTuples:   int(mem8)%60 + 2,
			MaxFanout:   int(fan8) % 10, // includes 0 and 1 = unlimited
			Prefix:      "q",
			Input:       simio.Uncharged,
			Chunks:      int(chunks8) % 9,
			Parallelism: int(chunks8)%3 + 1,
		}
		file := makeFile(t, n, domain, seed)
		s, _, err := SortWith(file, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		got := drain(t, s)
		s.Close()
		if len(got) != n {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// leftover reports the disk's spaces besides the input file.
func leftover(f *heap.File) []string {
	var extra []string
	for _, name := range f.Disk().Spaces() {
		if name != "in" {
			extra = append(extra, name)
		}
	}
	return extra
}

// TestCloseReleasesRunFiles: however much of the stream the consumer
// reads, Close leaves no temporary run files behind — for the classic
// plan, the chunked plan, and a fully drained stream (cursors drop their
// files at EOF).
func TestCloseReleasesRunFiles(t *testing.T) {
	cases := []struct {
		name    string
		chunks  int
		consume int
	}{
		{"classic-abandoned", 1, 3},
		{"classic-drained", 1, -1},
		{"chunked-abandoned", 4, 3},
		{"chunked-drained", 4, -1},
	}
	for _, tc := range cases {
		f := makeFile(t, 1500, 1<<40, 31)
		s, stats, err := SortWith(f, Config{Col: 0, MemTuples: 60, MaxFanout: 4,
			Prefix: "c", Input: simio.Uncharged, Chunks: tc.chunks, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if stats.InMemory {
			t.Fatalf("%s: expected an external sort", tc.name)
		}
		for i := 0; tc.consume < 0 || i < tc.consume; i++ {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if extra := leftover(f); len(extra) > 0 {
			t.Fatalf("%s: run files leaked after Close: %v", tc.name, extra)
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%s: stream still yields after Close", tc.name)
		}
	}
}

// TestErrorPathDropsRunFiles forces device failures at varying points and
// checks that every error return cleans up its temporary files — the
// historical leak was exactly here.
func TestErrorPathDropsRunFiles(t *testing.T) {
	for _, chunks := range []int{1, 4} {
		for _, failAfter := range []int64{1, 5, 20, 50} {
			f := makeFile(t, 1500, 1<<40, 41)
			f.Disk().FailAfter(failAfter)
			s, _, err := SortWith(f, Config{Col: 0, MemTuples: 60, MaxFanout: 4,
				Prefix: "e", Input: simio.Uncharged, Chunks: chunks, Parallelism: 2})
			if err == nil {
				// The failure can land mid-merge instead: consume until it
				// surfaces, then Close.
				for {
					if _, ok := s.Next(); !ok {
						break
					}
				}
				err = s.Err()
				s.Close()
			}
			if err == nil {
				t.Fatalf("chunks=%d failAfter=%d: expected an injected failure", chunks, failAfter)
			}
			if extra := leftover(f); len(extra) > 0 {
				t.Fatalf("chunks=%d failAfter=%d: leaked %v", chunks, failAfter, extra)
			}
		}
	}
}

// TestClassicPathUnchanged pins the compat wrapper: SortWith with zero
// Chunks/Parallelism charges exactly what the pre-parallel Sort charged
// (same code path), so the seed's accounting is untouched.
func TestClassicPathUnchanged(t *testing.T) {
	gotKeys, gotStats, gotCounters := sortOnce(t,
		Config{Col: 0, MemTuples: 100, MaxFanout: 0, Prefix: "t", Input: simio.Uncharged},
		2000, 4, -1)
	f := makeFile(t, 2000, 1<<40, 4)
	clock := f.Disk().Clock()
	clock.Reset()
	s, stats, err := Sort(f, 0, 100, 0, "t", simio.Uncharged)
	if err != nil {
		t.Fatal(err)
	}
	keys := drain(t, s)
	if stats != gotStats {
		t.Fatalf("stats diverge: %+v vs %+v", stats, gotStats)
	}
	if c := clock.Counters(); c != gotCounters {
		t.Fatalf("counters diverge: %+v vs %+v", c, gotCounters)
	}
	for i := range keys {
		if keys[i] != gotKeys[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}
