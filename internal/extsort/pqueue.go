package extsort

import (
	"bytes"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

// item is a priority queue element: a tuple, its sort key, and the run it
// belongs to (run formation) or comes from (merge).
type item struct {
	run int
	key []byte
	tup tuple.Tuple
}

// selTree is the counting selection-tree surface shared by the classic
// pqueue and the cache-kernel kqueue: the sort and merge paths pick a
// layout without touching their accounting.
type selTree interface {
	Len() int
	Peek() *item
	Push(it item)
	Pop() item
	Replace(it item) item
}

// lessKind names the two charged orderings so the kernel queue can
// replicate their charge structure exactly.
type lessKind int

const (
	kindRunThenKey lessKind = iota // replacement selection
	kindKey                        // merge (run breaks ties)
)

// newSelTree returns the selection tree for the given ordering: the classic
// item-array binary heap, or (kernel=true) the cache-kernel layout with
// identical charges.
func newSelTree(clock *cost.Clock, kind lessKind, capacity int, kernel bool) selTree {
	if kernel {
		return newKQueue(clock, kind, capacity)
	}
	if kind == kindRunThenKey {
		return newPQueue(clock, byRunThenKey(clock), capacity)
	}
	return newPQueue(clock, byKey(clock), capacity)
}

// lessFunc orders queue items, charging comparisons on the clock as it
// goes.
type lessFunc func(a, b *item) bool

// byRunThenKey orders for replacement selection: current-run elements
// first, by key within a run.
func byRunThenKey(clock *cost.Clock) lessFunc {
	return func(a, b *item) bool {
		if a.run != b.run {
			return a.run < b.run
		}
		clock.Comps(1)
		return bytes.Compare(a.key, b.key) < 0
	}
}

// byKey orders for the final merge (run field breaks ties for determinism).
func byKey(clock *cost.Clock) lessFunc {
	return func(a, b *item) bool {
		clock.Comps(1)
		if c := bytes.Compare(a.key, b.key); c != 0 {
			return c < 0
		}
		return a.run < b.run
	}
}

// pqueue is a binary min-heap that charges one swap per element movement.
// The paper's priority-queue terms — (comp+swap) per level per insertion —
// fall out of counting the actual sift operations.
type pqueue struct {
	clock *cost.Clock
	less  lessFunc
	items []item
}

func newPQueue(clock *cost.Clock, less lessFunc, capacity int) *pqueue {
	return &pqueue{clock: clock, less: less, items: make([]item, 0, capacity)}
}

func (q *pqueue) Len() int { return len(q.items) }

func (q *pqueue) Peek() *item { return &q.items[0] }

func (q *pqueue) Push(it item) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(&q.items[i], &q.items[parent]) {
			break
		}
		q.clock.Swaps(1)
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *pqueue) Pop() item {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return top
}

// Replace pops the minimum and pushes it in one sift, the classic
// replacement-selection step.
func (q *pqueue) Replace(it item) item {
	top := q.items[0]
	q.items[0] = it
	q.siftDown(0)
	return top
}

func (q *pqueue) siftDown(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		if left >= n {
			return
		}
		child := left
		if right < n && q.less(&q.items[right], &q.items[left]) {
			child = right
		}
		if !q.less(&q.items[child], &q.items[i]) {
			return
		}
		q.clock.Swaps(1)
		q.items[i], q.items[child] = q.items[child], q.items[i]
		i = child
	}
}
