// Incremental apply: the replica-side half of log shipping. An Applier
// consumes a primary's committed log stream batch by batch and folds it
// into a store with the same page-partitioned parallel redo machinery as
// RecoverSegmented — exec pool, per-bucket cost.Clock folded in page
// order — so the applied counters are bit-identical at every width.
package recovery

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mmdb/internal/cost"
	"mmdb/internal/exec"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// Applier folds an LSN-ordered record stream into a store incrementally.
//
// The apply frontier is strict: an Update is applied only when every
// earlier Update has been applied AND its own transaction's outcome
// (Commit, or rollback End) has been received. The second condition makes
// the first achievable — a committed transaction's updates may precede
// its commit record by many LSNs, so the frontier stalls at the first
// Update whose transaction is still unresolved in the received stream and
// buffers everything behind it. Applying strictly in LSN order is what
// makes the replica byte-identical to the primary's committed prefix:
// interleaved transactions touching the same record are replayed in
// exactly the order the primary serialized them, and an aborting
// transaction's compensating updates cancel its forward updates the same
// way they did on the primary.
//
// Applier is not safe for concurrent use; drive it from one goroutine
// (in the simulated world, the event loop).
type Applier struct {
	st     *store.Store
	pool   *exec.Pool
	params cost.Params
	clock  *cost.Clock

	// resolved holds transactions whose outcome record has been received.
	resolved map[wal.TxnID]bool
	// pending buffers Update records past the frontier, LSN-ascending.
	pending []wal.Record

	received wal.LSN // highest LSN ingested
	applied  wal.LSN // every Update at or below it is applied
	redone   int
}

// NewApplier starts an incremental applier over st (normally a zeroed
// store with the primary's geometry, or a loaded checkpoint image).
// parallelism is the exec pool width for page-partitioned apply
// (0 = serial, <0 = GOMAXPROCS); params the cost model (zero value =
// cost.DefaultParams).
func NewApplier(st *store.Store, parallelism int, params cost.Params) *Applier {
	if params == (cost.Params{}) {
		params = cost.DefaultParams()
	}
	return &Applier{
		st:       st,
		pool:     exec.NewPool(parallelism),
		params:   params,
		clock:    cost.NewClock(params),
		resolved: make(map[wal.TxnID]bool),
	}
}

// Ingest consumes the next batch of the stream. recs must be
// LSN-ascending; records at or below the received horizon are tolerated
// and skipped (stream redelivery), records out of order within the batch
// are an error. After buffering, the frontier advances as far as
// resolution allows and the newly applicable prefix is applied.
func (a *Applier) Ingest(recs []wal.Record) error {
	floor := a.received
	for _, r := range recs {
		if r.LSN <= floor {
			continue // redelivered
		}
		if r.LSN <= a.received {
			return fmt.Errorf("apply: batch not LSN-ordered at LSN %d", r.LSN)
		}
		a.received = r.LSN
		switch r.Type {
		case wal.Update:
			a.pending = append(a.pending, r)
		case wal.Commit, wal.End:
			a.resolved[r.Txn] = true
		}
	}
	return a.advance()
}

// advance applies the contiguous prefix of pending updates whose
// transactions are resolved, in strict LSN order, page-partitioned over
// the pool exactly like RecoverSegmented's replay step.
func (a *Applier) advance() error {
	cut := 0
	for cut < len(a.pending) && a.resolved[a.pending[cut].Txn] {
		cut++
	}
	if cut > 0 {
		batch := a.pending[:cut]
		buckets := make(map[int][]wal.Record)
		for _, r := range batch {
			a.clock.Hashes(1)
			p := a.st.PageOf(r.Rec)
			buckets[p] = append(buckets[p], r)
		}
		pageIDs := make([]int, 0, len(buckets))
		for p := range buckets {
			pageIDs = append(pageIDs, p)
		}
		sort.Ints(pageIDs)

		clks := make([]*cost.Clock, len(pageIDs))
		err := a.pool.ForEach(context.Background(), len(pageIDs), func(ctx context.Context, i int) error {
			clk := cost.NewClock(a.params)
			clks[i] = clk
			for _, r := range buckets[pageIDs[i]] {
				if err := a.st.Apply(r.Rec, r.New); err != nil {
					return fmt.Errorf("apply LSN %d: %w", r.LSN, err)
				}
				clk.Moves(1)
			}
			return nil
		})
		if err != nil {
			return err
		}
		// Barrier: fold per-bucket clocks in page order — addition
		// commutes, so the totals are width-independent.
		for _, clk := range clks {
			if clk != nil {
				a.clock.Charge(clk.Counters())
			}
		}
		a.redone += cut
		a.pending = append(a.pending[:0], a.pending[cut:]...)
	}
	// The frontier: everything up to the next blocked update is settled;
	// with nothing blocked, the whole received stream is.
	if len(a.pending) > 0 {
		a.applied = a.pending[0].LSN - 1
	} else {
		a.applied = a.received
	}
	return nil
}

// Store returns the store being built.
func (a *Applier) Store() *store.Store { return a.st }

// AppliedLSN returns the apply frontier: the largest n such that every
// Update with LSN <= n is applied. The store equals the primary's
// committed prefix at n.
func (a *Applier) AppliedLSN() wal.LSN { return a.applied }

// ReceivedLSN returns the highest LSN ingested from the stream.
func (a *Applier) ReceivedLSN() wal.LSN { return a.received }

// Buffered returns how many updates are held behind the frontier waiting
// for their transactions to resolve.
func (a *Applier) Buffered() int { return len(a.pending) }

// Redone returns the total updates applied.
func (a *Applier) Redone() int { return a.redone }

// Counters returns the applier's accumulated virtual-cost counters.
func (a *Applier) Counters() cost.Counters { return a.clock.Counters() }

// Virtual returns the applier's accumulated virtual time.
func (a *Applier) Virtual() time.Duration { return a.clock.Now() }
