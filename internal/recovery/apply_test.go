package recovery

import (
	"bytes"
	"fmt"
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

func applyStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func aval(b byte) []byte { return bytes.Repeat([]byte{b}, 8) }

func aupd(lsn wal.LSN, txn wal.TxnID, rec uint64, v byte) wal.Record {
	return wal.Record{LSN: lsn, Txn: txn, Type: wal.Update, Rec: rec, New: aval(v)}
}

func aout(lsn wal.LSN, txn wal.TxnID, typ wal.RecordType) wal.Record {
	return wal.Record{LSN: lsn, Txn: txn, Type: typ}
}

// TestApplierFrontierStallsOnUnresolved is the ordering counterexample
// that forces the strict-LSN frontier: txn A updates rec 5 at LSN 10 but
// commits late (LSN 50); txn B overwrites rec 5 at LSN 20 and commits
// first (LSN 30). Applying B before A — "apply whatever is resolved" —
// would leave A's value on top. The frontier must hold everything until
// A resolves, then apply 10 before 20.
func TestApplierFrontierStallsOnUnresolved(t *testing.T) {
	a := NewApplier(applyStore(t), 1, cost.Params{})
	if err := a.Ingest([]wal.Record{
		aupd(10, 1, 5, 'A'),
		aupd(20, 2, 5, 'B'),
		aout(30, 2, wal.Commit),
	}); err != nil {
		t.Fatal(err)
	}
	if got := a.AppliedLSN(); got != 9 {
		t.Fatalf("frontier = %d, want 9 (stalled before txn 1's unresolved update)", got)
	}
	if a.Redone() != 0 || a.Buffered() != 2 {
		t.Fatalf("redone=%d buffered=%d, want 0/2", a.Redone(), a.Buffered())
	}
	if err := a.Ingest([]wal.Record{aout(50, 1, wal.Commit)}); err != nil {
		t.Fatal(err)
	}
	if got := a.AppliedLSN(); got != 50 {
		t.Fatalf("frontier = %d, want 50", got)
	}
	want := applyStore(t)
	_ = want.Apply(5, aval('A'))
	_ = want.Apply(5, aval('B'))
	if !a.Store().Equal(want) {
		t.Fatal("store diverged: updates not applied in LSN order")
	}
}

// TestApplierMatchesReferenceAcrossWidths streams an interleaved
// multi-transaction history (including an abort with compensating
// updates) in several batch splits and at widths 1–8; every combination
// must land byte-identical to the serial reference with identical
// counters.
func TestApplierMatchesReferenceAcrossWidths(t *testing.T) {
	var stream []wal.Record
	lsn := wal.LSN(0)
	next := func() wal.LSN { lsn++; return lsn }
	// Three interleaved transactions over overlapping records; txn 3
	// aborts via compensating updates + End.
	for i := 0; i < 3; i++ {
		rec := uint64(4 + i*3)
		stream = append(stream,
			aupd(next(), 1, uint64(i*2), byte('a'+i)),
			aupd(next(), 3, rec, byte('x'+i)),
			aupd(next(), 2, uint64(i*2), byte('A'+i)),
		)
	}
	stream = append(stream, aout(next(), 2, wal.Commit))
	for i := 2; i >= 0; i-- { // compensation, reverse order
		stream = append(stream, aupd(next(), 3, uint64(4+i*3), 0))
	}
	stream = append(stream, aout(next(), 3, wal.End))
	stream = append(stream, aupd(next(), 1, 15, 'z'))
	stream = append(stream, aout(next(), 1, wal.Commit))

	// Serial reference: every update in LSN order.
	ref := applyStore(t)
	for _, r := range stream {
		if r.Type == wal.Update {
			if err := ref.Apply(r.Rec, r.New); err != nil {
				t.Fatal(err)
			}
		}
	}

	var baseline cost.Counters
	for _, width := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 3, len(stream)} {
			name := fmt.Sprintf("width=%d/batch=%d", width, batch)
			a := NewApplier(applyStore(t), width, cost.Params{})
			for i := 0; i < len(stream); i += batch {
				end := i + batch
				if end > len(stream) {
					end = len(stream)
				}
				if err := a.Ingest(stream[i:end]); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			if a.AppliedLSN() != lsn || a.Buffered() != 0 {
				t.Fatalf("%s: frontier %d buffered %d, want %d/0", name, a.AppliedLSN(), a.Buffered(), lsn)
			}
			if !a.Store().Equal(ref) {
				t.Fatalf("%s: store diverged from serial reference", name)
			}
			if baseline == (cost.Counters{}) {
				baseline = a.Counters()
			} else if a.Counters() != baseline {
				t.Fatalf("%s: counters %+v differ from baseline %+v", name, a.Counters(), baseline)
			}
		}
	}
}

// TestApplierRedeliveryAndOrder: records at or below the received
// horizon are skipped (stream redelivery), in-batch regressions are an
// error.
func TestApplierRedeliveryAndOrder(t *testing.T) {
	a := NewApplier(applyStore(t), 1, cost.Params{})
	first := []wal.Record{aupd(1, 1, 0, 'a'), aout(2, 1, wal.Commit)}
	if err := a.Ingest(first); err != nil {
		t.Fatal(err)
	}
	redone := a.Redone()
	if err := a.Ingest(first); err != nil { // full redelivery: no-op
		t.Fatal(err)
	}
	if a.Redone() != redone {
		t.Fatal("redelivered records were re-applied")
	}
	if err := a.Ingest([]wal.Record{aupd(5, 2, 1, 'b'), aupd(4, 2, 2, 'c')}); err == nil {
		t.Fatal("want error for in-batch LSN regression")
	}
}
