package recovery

import (
	"testing"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/seglog"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// buildSegmentedCrash runs a two-device segmented group-commit log through
// a workload with committed winners and one in-flight loser, then returns
// the crash image plus the merged durable log for the serial oracle.
func buildSegmentedCrash(t *testing.T) (SegInput, []wal.Record) {
	t.Helper()
	sim := &event.Sim{}
	dev0 := wal.NewDevice("log0", 10*time.Millisecond)
	dev1 := wal.NewDevice("log1", 10*time.Millisecond)
	l, err := wal.NewLog(sim, wal.Config{
		PageSize:     512,
		Policy:       wal.GroupCommit,
		Devices:      []*wal.Device{dev0, dev1},
		SegmentPages: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := func(b byte) []byte { return []byte{b, b, b, b, b, b, b, b} }
	for i := 1; i <= 40; i++ {
		id := wal.TxnID(i)
		l.Append(wal.Record{Txn: id, Type: wal.Begin})
		l.Append(wal.Record{Txn: id, Type: wal.Update, Rec: uint64(i % 13), Old: val(0), New: val(byte(i))})
		l.AppendCommit(id, nil)
	}
	// An in-flight transaction with durable updates but no commit: the
	// replay must undo it from its pre-images.
	l.Append(wal.Record{Txn: 99, Type: wal.Begin})
	l.Append(wal.Record{Txn: 99, Type: wal.Update, Rec: 3, Old: val(40 - 40%13 + 3), New: val(0xEE)})
	l.Append(wal.Record{Txn: 99, Type: wal.Update, Rec: 14, Old: val(0), New: val(0xEF)})
	l.Flush()
	sim.Run()
	crash := sim.Now()

	in := SegInput{
		NumRecords:     64,
		RecSize:        8,
		RecordsPerPage: 8,
		PageSize:       512,
	}
	for _, d := range []*wal.Device{dev0, dev1} {
		v, ok := d.DurableSegments(crash)
		if !ok {
			t.Fatalf("device %s not segmented", d.Name)
		}
		in.Devices = append(in.Devices, DeviceLogFromView(v))
	}
	merged, err := l.DurableRecords(crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Fatal("empty durable log")
	}
	return in, merged
}

func TestSegmentedRecoveryMatchesSerial(t *testing.T) {
	in, merged := buildSegmentedCrash(t)
	serialStore, serialInfo, err := Recover(Input{
		NumRecords:     in.NumRecords,
		RecSize:        in.RecSize,
		RecordsPerPage: in.RecordsPerPage,
		Log:            merged,
	})
	if err != nil {
		t.Fatal(err)
	}
	segStore, segInfo, err := RecoverSegmented(in)
	if err != nil {
		t.Fatal(err)
	}
	if !serialStore.Equal(segStore) {
		t.Fatal("segmented recovery store differs from serial recovery")
	}
	if segInfo.Redone != serialInfo.Redone || segInfo.Undone != serialInfo.Undone {
		t.Fatalf("replay counts differ: segmented redo=%d undo=%d, serial redo=%d undo=%d",
			segInfo.Redone, segInfo.Undone, serialInfo.Redone, serialInfo.Undone)
	}
	if len(segInfo.Committed) != len(serialInfo.Committed) || len(segInfo.Losers) != len(serialInfo.Losers) {
		t.Fatalf("analysis differs: segmented %d committed %d losers, serial %d/%d",
			len(segInfo.Committed), len(segInfo.Losers), len(serialInfo.Committed), len(serialInfo.Losers))
	}
	if segInfo.SegmentsScanned == 0 {
		t.Fatal("no segments scanned")
	}
	if segInfo.Virtual <= 0 {
		t.Fatal("no virtual time accounted")
	}
}

func TestReplayCountersIdenticalAcrossWidths(t *testing.T) {
	// The replay's cost counters — and therefore its virtual recovery
	// time — must be bit-identical at every pool width: per-worker clocks
	// are folded at the barriers and counter addition commutes.
	in, _ := buildSegmentedCrash(t)
	var baseStore *store.Store
	var baseInfo Info
	for _, w := range []int{1, 2, 4, 8} {
		in.Parallelism = w
		st, info, err := RecoverSegmented(in)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if info.ReplayWorkers != w {
			t.Fatalf("width %d reported %d workers", w, info.ReplayWorkers)
		}
		if baseStore == nil {
			baseStore, baseInfo = st, info
			continue
		}
		if info.Counters != baseInfo.Counters {
			t.Fatalf("width %d counters drift: %v vs width 1 %v", w, info.Counters, baseInfo.Counters)
		}
		if info.Virtual != baseInfo.Virtual {
			t.Fatalf("width %d virtual time %v != width 1 %v", w, info.Virtual, baseInfo.Virtual)
		}
		if !baseStore.Equal(st) {
			t.Fatalf("width %d store differs from width 1", w)
		}
		if info.Redone != baseInfo.Redone || info.Undone != baseInfo.Undone {
			t.Fatalf("width %d replay counts differ", w)
		}
	}
}

func TestHorizonSkipMatchesFullScan(t *testing.T) {
	// Craft a device whose first segment falls wholly below the published
	// horizon: the skipping recovery must not read it, yet rebuild a store
	// bit-identical to a full scan. The skipped segment hides txn 1's
	// commit, so Losers over-approximates under skipping — but the floor
	// rule keeps its below-horizon updates out of undo.
	val := func(b byte) []byte { return []byte{b, b, b, b, b, b, b, b} }
	seg0Recs := []wal.Record{
		{LSN: 1, Txn: 1, Type: wal.Begin},
		{LSN: 2, Txn: 1, Type: wal.Update, Rec: 0, Old: val(0), New: val(0x11)},
		{LSN: 3, Txn: 1, Type: wal.Commit},
	}
	seg1Recs := []wal.Record{
		{LSN: 4, Txn: 2, Type: wal.Begin},
		{LSN: 5, Txn: 2, Type: wal.Update, Rec: 5, Old: val(0), New: val(0x22)},
		{LSN: 6, Txn: 2, Type: wal.Commit},
		{LSN: 7, Txn: 3, Type: wal.Begin},
		{LSN: 8, Txn: 3, Type: wal.Update, Rec: 9, Old: val(0), New: val(0x33)},
	}
	encode := func(recs []wal.Record) [][]byte {
		img, err := wal.EncodePage(recs, 512)
		if err != nil {
			t.Fatal(err)
		}
		return [][]byte{img}
	}
	mkInput := func(ignore bool) SegInput {
		return SegInput{
			NumRecords:     16,
			RecSize:        8,
			RecordsPerPage: 4,
			PageSize:       512,
			// Snapshot already reflects txn 1 (its effect is below the
			// horizon).
			SnapshotPages: map[int][]byte{
				0: append(val(0x11), val(0)...),
			},
			StartLSN:  4,
			HaveStart: true,
			Devices: []DeviceLog{{
				Device: "log0",
				Segments: []SegmentLog{
					{Index: 0, Pages: encode(seg0Recs), FirstLSN: 1, LastLSN: 3},
					{Index: 1, Pages: encode(seg1Recs), FirstLSN: 4, LastLSN: 8},
				},
				Pos:     seglog.CommitPos{Epoch: 1, Seg: 1, Off: 1, Durable: 8, Horizon: 4},
				HavePos: true,
			}},
			IgnoreHorizon: ignore,
		}
	}
	skipStore, skipInfo, err := RecoverSegmented(mkInput(false))
	if err != nil {
		t.Fatal(err)
	}
	fullStore, fullInfo, err := RecoverSegmented(mkInput(true))
	if err != nil {
		t.Fatal(err)
	}
	if skipInfo.SegmentsSkipped != 1 || skipInfo.SegmentsScanned != 1 {
		t.Fatalf("skip run scanned=%d skipped=%d, want 1/1", skipInfo.SegmentsScanned, skipInfo.SegmentsSkipped)
	}
	if fullInfo.SegmentsSkipped != 0 || fullInfo.SegmentsScanned != 2 {
		t.Fatalf("full run scanned=%d skipped=%d, want 2/0", fullInfo.SegmentsScanned, fullInfo.SegmentsSkipped)
	}
	if !skipStore.Equal(fullStore) {
		t.Fatal("horizon-skipping recovery differs from full scan")
	}
	// Full scan sees every outcome; the skip run must never undo txn 3's
	// loser update differently.
	if !fullInfo.Committed[1] || !fullInfo.Committed[2] || !fullInfo.Losers[3] {
		t.Fatalf("full-scan analysis wrong: %+v", fullInfo)
	}
	if got := skipStore.Read(9); got[0] != 0 {
		t.Fatalf("loser update not undone under skipping: % x", got)
	}
	if got := skipStore.Read(0); got[0] != 0x11 {
		t.Fatalf("below-horizon committed value lost: % x", got)
	}
	if skipInfo.Virtual >= fullInfo.Virtual {
		t.Fatalf("skipping did not reduce virtual recovery time: %v vs %v", skipInfo.Virtual, fullInfo.Virtual)
	}
}
