// Segmented, parallel recovery (§5.5–§5.6): the log survives a crash as
// bounded segment files per device plus a commit.meta durable position.
// Recovery scans only the segments at or beyond the published horizon,
// fans the scan and the page-partitioned redo/undo over an exec pool, and
// charges every worker's virtual work to a private cost.Clock folded into
// the main clock at each barrier — so the replay counters (and therefore
// the virtual recovery time) are bit-identical at every Parallelism width.
package recovery

import (
	"context"
	"fmt"
	"sort"

	"mmdb/internal/cost"
	"mmdb/internal/exec"
	"mmdb/internal/seglog"
	"mmdb/internal/simio"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// SegmentLog is one surviving segment file of one device.
type SegmentLog struct {
	Index    uint64
	Pages    [][]byte // page images in write order; the last may be a torn prefix
	FirstLSN uint64
	LastLSN  uint64
}

// DeviceLog is the crash view of one log device's segment directory.
type DeviceLog struct {
	Device         string
	Segments       []SegmentLog
	Pos            seglog.CommitPos
	HavePos        bool
	CompactedBytes int64
}

// DeviceLogFromView converts a seglog crash view into recovery input.
func DeviceLogFromView(v seglog.View) DeviceLog {
	d := DeviceLog{
		Device:         v.Device,
		Pos:            v.Pos,
		HavePos:        v.HavePos,
		CompactedBytes: v.CompactedBytes,
	}
	for _, s := range v.Segments {
		d.Segments = append(d.Segments, SegmentLog{
			Index:    s.Index,
			Pages:    s.Pages,
			FirstLSN: s.FirstLSN,
			LastLSN:  s.LastLSN,
		})
	}
	return d
}

// SegInput is everything that survives a crash of a segmented-log engine.
type SegInput struct {
	// Store geometry.
	NumRecords     int
	RecSize        int
	RecordsPerPage int

	// PageSize is the log page size (for the simulated scan disk);
	// 0 means 4096.
	PageSize int

	// SnapshotPages is the checkpointed database image on disk.
	SnapshotPages map[int][]byte

	// Devices holds each log device's surviving segments and its
	// commit.meta position.
	Devices []DeviceLog

	// StableTail holds the records resident in battery-backed stable
	// memory at the crash (§5.4 policy) — durable by assumption, they join
	// the merge as one more fragment.
	StableTail []wal.Record

	// StartLSN / HaveStart: redo lower bound from the stable first-update
	// table, as in Input.
	StartLSN  wal.LSN
	HaveStart bool

	// Parallelism is the exec pool width for the segment scan and the
	// page-partitioned replay (0 = serial, <0 = GOMAXPROCS).
	Parallelism int

	// IgnoreHorizon forces a full scan of every surviving segment,
	// ignoring the published commit.meta horizon. Used by the chaos
	// oracle: a horizon-skipping recovery must produce a store
	// bit-identical to the full-scan one.
	IgnoreHorizon bool

	// Params is the cost model; the zero value means cost.DefaultParams.
	Params cost.Params
}

// scanTask identifies one segment to read and decode.
type scanTask struct {
	dev int // index into in.Devices
	seg int // index into that device's Segments
}

// scanResult is one segment's decoded records.
type scanResult struct {
	recs   []wal.Record
	intact bool
	clk    *cost.Clock
}

// RecoverSegmented rebuilds the database from a segmented log crash image.
//
// The horizon rule: any published commit.meta horizon h guarantees that
// every record with LSN < h is (a) reflected in the checkpoint snapshot
// and (b) owned by a transaction whose outcome was durably resolved when
// h was published — and resolution is monotone, so the guarantee holds
// forever. Recovery therefore skips whole segments whose LastLSN < h
// without reading them, and treats h as a floor for both redo and undo:
// a commit record hidden inside a skipped segment may leave its (fully
// below-horizon) updates looking like a loser's, but none of them are
// eligible for undo below the floor, so the rebuilt store is identical
// to a full scan's. Info.Losers can over-approximate under skipping;
// oracles that inspect transaction outcomes should use IgnoreHorizon.
func RecoverSegmented(in SegInput) (*store.Store, Info, error) {
	info := Info{
		Committed: make(map[wal.TxnID]bool),
		Ended:     make(map[wal.TxnID]bool),
		Losers:    make(map[wal.TxnID]bool),
	}
	params := in.Params
	if params == (cost.Params{}) {
		params = cost.DefaultParams()
	}
	pageSize := in.PageSize
	if pageSize <= 0 {
		pageSize = 4096
	}
	width := exec.Workers(in.Parallelism)
	info.ReplayWorkers = width

	st, err := store.New(in.NumRecords, in.RecSize, in.RecordsPerPage)
	if err != nil {
		return nil, info, err
	}
	clock := cost.NewClock(params)
	disk := simio.NewDisk(clock, pageSize)

	// The strongest published horizon across devices. Horizons speak about
	// global LSNs and only ever grow, so the max over devices is valid for
	// every device's segments.
	var horizon wal.LSN
	for _, d := range in.Devices {
		if d.HavePos && wal.LSN(d.Pos.Horizon) > horizon {
			horizon = wal.LSN(d.Pos.Horizon)
		}
		info.CompactedBytes += d.CompactedBytes
	}
	if in.IgnoreHorizon {
		horizon = 0
	}

	// 1. Install the surviving segment files onto the scan disk (uncharged:
	// they are crash artifacts, not recovery work), skipping whole segments
	// below the horizon without touching their pages.
	var tasks []scanTask
	for di, d := range in.Devices {
		for si, s := range d.Segments {
			if horizon > 0 && s.LastLSN > 0 && wal.LSN(s.LastLSN) < horizon {
				info.SegmentsSkipped++
				continue
			}
			sp, err := disk.Create(seglog.SegmentSpace(d.Device, s.Index))
			if err != nil {
				return nil, info, fmt.Errorf("recovery: %w", err)
			}
			for _, img := range s.Pages {
				if _, err := sp.Append(img, simio.Uncharged); err != nil {
					return nil, info, fmt.Errorf("recovery: install segment: %w", err)
				}
			}
			tasks = append(tasks, scanTask{dev: di, seg: si})
		}
	}

	// 2. Parallel segment scan: each task opens its segment (one random IO
	// for the seek), streams the pages sequentially, and decodes them with
	// the per-record checksums cutting at the first torn record. Charges
	// land on a per-task clock.
	results := make([]scanResult, len(tasks))
	pool := exec.NewPool(in.Parallelism)
	err = pool.ForEach(context.Background(), len(tasks), func(ctx context.Context, i int) error {
		t := tasks[i]
		s := in.Devices[t.dev].Segments[t.seg]
		clk := cost.NewClock(params)
		view := disk.View(clk)
		sp, err := view.Open(seglog.SegmentSpace(in.Devices[t.dev].Device, s.Index))
		if err != nil {
			return err
		}
		res := scanResult{intact: true, clk: clk}
		for p := 0; p < sp.NumPages(); p++ {
			access := simio.Seq
			if p == 0 {
				access = simio.Rand // seek to the segment file
			}
			img, err := sp.Read(p, access)
			if err != nil {
				return err
			}
			recs, whole := wal.DecodePageTail(img)
			res.recs = append(res.recs, recs...)
			if !whole {
				res.intact = false
				break
			}
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, info, fmt.Errorf("recovery: segment scan: %w", err)
	}

	// Barrier: fold the scan clocks into the main clock in task order.
	// Counter addition commutes, so the totals are independent of which
	// worker ran which task — bit-identical at every width.
	for _, r := range results {
		if r.clk != nil {
			clock.Charge(r.clk.Counters())
		}
	}

	// 3. Assemble fragments: one per scanned segment. A device's segments
	// are LSN-ordered among themselves, but horizon skipping leaves gaps,
	// so each segment stands alone and the merge dedups records (e.g. a
	// commit duplicated across a rotation boundary) by global LSN. A torn
	// segment contributes its intact prefix and cuts the rest of its
	// device's log.
	var fragments [][]wal.Record
	cut := make(map[int]bool) // device -> saw a torn segment
	for i, t := range tasks {
		if cut[t.dev] {
			continue
		}
		r := results[i]
		if len(r.recs) > 0 {
			fragments = append(fragments, r.recs)
		}
		if !r.intact {
			cut[t.dev] = true
		}
		info.SegmentsScanned++
	}
	if len(in.StableTail) > 0 {
		fragments = append(fragments, in.StableTail)
	}
	merged := wal.MergeFragments(fragments)

	// 4. Reload the snapshot (one sequential IO per page).
	snapPages := make([]int, 0, len(in.SnapshotPages))
	for p := range in.SnapshotPages {
		snapPages = append(snapPages, p)
	}
	sort.Ints(snapPages)
	for _, p := range snapPages {
		clock.SeqIOs(1)
		if err := st.InstallPage(p, in.SnapshotPages[p]); err != nil {
			return nil, info, fmt.Errorf("recovery: snapshot page %d: %w", p, err)
		}
		info.SnapshotPgs++
	}

	// 5. Analysis over the merged log (serial: it is one ordered pass).
	for i := 1; i < len(merged); i++ {
		if merged[i].LSN < merged[i-1].LSN {
			return nil, info, fmt.Errorf("recovery: merged log not LSN-ordered at index %d", i)
		}
	}
	clock.Comps(int64(len(merged)))
	for _, r := range merged {
		info.LogScanned++
		switch r.Type {
		case wal.Commit:
			info.Committed[r.Txn] = true
		case wal.End:
			info.Ended[r.Txn] = true
		}
	}
	for _, r := range merged {
		if r.Type == wal.Update && !info.resolved(r.Txn) {
			info.Losers[r.Txn] = true
		}
	}

	// 6. Partition the update records by store page. Updates to different
	// pages touch disjoint byte ranges, so each page's redo-then-undo can
	// run on its own worker; within a page the global LSN order is
	// preserved by construction.
	buckets := make(map[int][]wal.Record)
	for _, r := range merged {
		if r.Type != wal.Update {
			continue
		}
		clock.Hashes(1)
		p := st.PageOf(r.Rec)
		buckets[p] = append(buckets[p], r)
	}
	pageIDs := make([]int, 0, len(buckets))
	for p := range buckets {
		pageIDs = append(pageIDs, p)
	}
	sort.Ints(pageIDs)

	// 7. Parallel replay: per bucket, redo every update at or beyond the
	// start point (and the horizon floor) in LSN order, then undo the
	// unresolved updates in reverse. store.Apply is a pure copy into
	// disjoint offsets, so concurrent buckets never race.
	type replayResult struct {
		redone, undone int
		clk            *cost.Clock
	}
	replays := make([]replayResult, len(pageIDs))
	err = pool.ForEach(context.Background(), len(pageIDs), func(ctx context.Context, i int) error {
		recs := buckets[pageIDs[i]]
		clk := cost.NewClock(params)
		res := replayResult{clk: clk}
		for _, r := range recs {
			if in.HaveStart && r.LSN < in.StartLSN {
				continue
			}
			if r.LSN < horizon {
				continue // already in the snapshot
			}
			if err := st.Apply(r.Rec, r.New); err != nil {
				return fmt.Errorf("redo LSN %d: %w", r.LSN, err)
			}
			clk.Moves(1)
			res.redone++
		}
		for j := len(recs) - 1; j >= 0; j-- {
			r := recs[j]
			if info.resolved(r.Txn) || r.LSN < horizon {
				continue // below the horizon every outcome was durably resolved
			}
			if r.Old == nil {
				return fmt.Errorf("loser txn %d update LSN %d has no pre-image (compression must only drop resolved old values)", r.Txn, r.LSN)
			}
			if err := st.Apply(r.Rec, r.Old); err != nil {
				return fmt.Errorf("undo LSN %d: %w", r.LSN, err)
			}
			clk.Moves(1)
			res.undone++
		}
		replays[i] = res
		return nil
	})
	if err != nil {
		return nil, info, fmt.Errorf("recovery: replay: %w", err)
	}
	for _, r := range replays {
		if r.clk != nil {
			clock.Charge(r.clk.Counters())
		}
		info.Redone += r.redone
		info.Undone += r.undone
	}

	info.Counters = clock.Counters()
	info.Virtual = clock.Now()
	return st, info, nil
}
