// Package recovery implements crash recovery for the memory-resident
// database (§5): reload the latest checkpoint snapshot, merge the log
// fragments into a single log, redo update records from the recovery start
// point (the oldest entry of the stable first-update table), and undo the
// updates of transactions without a durable commit record.
//
// Redo is physical (full record post-images) and therefore idempotent;
// undo by pre-image is safe because the pre-commit protocol guarantees
// that no durably committed transaction ever read or overwrote data
// written by a transaction that failed to commit (a dependent's commit
// group is never written before the group it depends on, §5.2).
package recovery

import (
	"fmt"
	"time"

	"mmdb/internal/cost"
	"mmdb/internal/store"
	"mmdb/internal/wal"
)

// Input is everything that survives a crash.
type Input struct {
	// Store geometry.
	NumRecords     int
	RecSize        int
	RecordsPerPage int

	// SnapshotPages is the checkpointed database image on disk.
	SnapshotPages map[int][]byte

	// Log is the single merged log (see wal.MergeFragments), in LSN order.
	Log []wal.Record

	// StartLSN is the redo lower bound from the stable first-update table;
	// HaveStart is false when no page was dirty (snapshot current), in
	// which case redo still replays from after the snapshot via StartLSN=0
	// semantics being "replay everything" — safe because redo is
	// idempotent, just slower; callers pass the checkpointer's value.
	StartLSN  wal.LSN
	HaveStart bool
}

// Info reports what recovery did.
type Info struct {
	Committed   map[wal.TxnID]bool // transactions with durable commit records
	Ended       map[wal.TxnID]bool // transactions whose rollback completed (End record)
	Losers      map[wal.TxnID]bool // transactions with updates but neither commit nor end
	Redone      int                // update records re-applied
	Undone      int                // loser updates rolled back
	LogScanned  int                // total log records examined
	SnapshotPgs int                // snapshot pages installed

	// Segmented-replay telemetry (RecoverSegmented only; zero for the
	// serial monolithic path).
	SegmentsScanned int           // segment files read and decoded
	SegmentsSkipped int           // segments skipped entirely below the commit.meta horizon
	ReplayWorkers   int           // exec pool width used for scan and redo fan-out
	CompactedBytes  int64         // bytes reclaimed by §5.6 compaction, as seen at the crash
	Counters        cost.Counters // virtual work of the replay itself
	Virtual         time.Duration // virtual recovery time (bit-identical at every width)
}

// resolved reports whether txn needs no undo: it either committed or
// finished rolling itself back (its compensating updates are replayed by
// redo).
func (info Info) resolved(txn wal.TxnID) bool {
	return info.Committed[txn] || info.Ended[txn]
}

// Recover rebuilds the database state.
func Recover(in Input) (*store.Store, Info, error) {
	info := Info{
		Committed: make(map[wal.TxnID]bool),
		Ended:     make(map[wal.TxnID]bool),
		Losers:    make(map[wal.TxnID]bool),
	}
	st, err := store.New(in.NumRecords, in.RecSize, in.RecordsPerPage)
	if err != nil {
		return nil, info, err
	}

	// 1. Reload the snapshot.
	for p, img := range in.SnapshotPages {
		if err := st.InstallPage(p, img); err != nil {
			return nil, info, fmt.Errorf("recovery: snapshot page %d: %w", p, err)
		}
		info.SnapshotPgs++
	}

	// 2. Analysis: find durable commits; everything else that wrote is a
	// loser.
	for i := 1; i < len(in.Log); i++ {
		if in.Log[i].LSN < in.Log[i-1].LSN {
			return nil, info, fmt.Errorf("recovery: log not LSN-ordered at index %d", i)
		}
	}
	for _, r := range in.Log {
		info.LogScanned++
		switch r.Type {
		case wal.Commit:
			info.Committed[r.Txn] = true
		case wal.End:
			info.Ended[r.Txn] = true
		}
	}
	for _, r := range in.Log {
		if r.Type == wal.Update && !info.resolved(r.Txn) {
			info.Losers[r.Txn] = true
		}
	}

	// 3. Redo from the start point, in LSN order, winners and losers both
	// (losers are compensated in step 4).
	for _, r := range in.Log {
		if r.Type != wal.Update {
			continue
		}
		if in.HaveStart && r.LSN < in.StartLSN {
			continue
		}
		if err := st.Apply(r.Rec, r.New); err != nil {
			return nil, info, fmt.Errorf("recovery: redo LSN %d: %w", r.LSN, err)
		}
		info.Redone++
	}

	// 4. Undo losers in reverse LSN order using pre-images. Resolved
	// transactions (committed, or fully rolled back with compensations on
	// the log) are skipped.
	for i := len(in.Log) - 1; i >= 0; i-- {
		r := in.Log[i]
		if r.Type != wal.Update || info.resolved(r.Txn) {
			continue
		}
		if r.Old == nil {
			return nil, info, fmt.Errorf("recovery: loser txn %d update LSN %d has no pre-image (compression must only drop committed old values)", r.Txn, r.LSN)
		}
		if err := st.Apply(r.Rec, r.Old); err != nil {
			return nil, info, fmt.Errorf("recovery: undo LSN %d: %w", r.LSN, err)
		}
		info.Undone++
	}
	return st, info, nil
}
