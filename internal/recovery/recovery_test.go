package recovery

import (
	"bytes"
	"testing"

	"mmdb/internal/wal"
)

func rec(lsn wal.LSN, txn wal.TxnID, typ wal.RecordType, id uint64, old, new byte) wal.Record {
	r := wal.Record{LSN: lsn, Txn: txn, Type: typ, Rec: id}
	if typ == wal.Update {
		r.Old = []byte{old, 0, 0, 0, 0, 0, 0, 0}
		r.New = []byte{new, 0, 0, 0, 0, 0, 0, 0}
	}
	return r
}

func input(log []wal.Record) Input {
	return Input{NumRecords: 16, RecSize: 8, RecordsPerPage: 4, Log: log}
}

func val(st interface{ Read(uint64) []byte }, id uint64) byte {
	return st.Read(id)[0]
}

func TestCommittedUpdatesRedone(t *testing.T) {
	st, info, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 3, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Committed[1] || info.Redone != 1 || info.Undone != 0 {
		t.Fatalf("info %+v", info)
	}
	if val(st, 3) != 7 {
		t.Fatalf("record 3 = %d", val(st, 3))
	}
}

func TestLoserUpdatesUndone(t *testing.T) {
	st, info, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 3, 0, 7), // no commit
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Losers[1] || info.Undone != 1 {
		t.Fatalf("info %+v", info)
	}
	if val(st, 3) != 0 {
		t.Fatalf("loser effect survived: %d", val(st, 3))
	}
}

func TestMultiUpdateLoserUndoneInReverse(t *testing.T) {
	st, _, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Update, 3, 0, 5),
		rec(2, 1, wal.Update, 3, 5, 9),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if val(st, 3) != 0 {
		t.Fatalf("reverse undo broken: %d", val(st, 3))
	}
}

func TestEndedTransactionNotUndone(t *testing.T) {
	// An aborted transaction with compensations and an End record must be
	// left alone: its compensations already restore the pre-image.
	st, info, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Update, 3, 0, 5),
		rec(2, 1, wal.Update, 3, 5, 0), // compensation
		rec(3, 1, wal.End, 0, 0, 0),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Ended[1] || info.Undone != 0 {
		t.Fatalf("info %+v", info)
	}
	if val(st, 3) != 0 {
		t.Fatalf("record 3 = %d", val(st, 3))
	}
}

func TestSnapshotPlusStartLSNSkipsPrefix(t *testing.T) {
	// Snapshot holds record 3 = 7 (LSN 2 already applied); StartLSN=3
	// skips redoing it, and a later committed update still lands.
	snap := map[int][]byte{0: {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0}}
	in := input([]wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 3, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
		rec(4, 2, wal.Update, 3, 7, 9),
		rec(5, 2, wal.Commit, 0, 0, 0),
	})
	in.SnapshotPages = snap
	in.StartLSN, in.HaveStart = 4, true
	st, info, err := Recover(in)
	if err != nil {
		t.Fatal(err)
	}
	if info.Redone != 1 {
		t.Fatalf("redone %d, want only the post-snapshot update", info.Redone)
	}
	if val(st, 3) != 9 {
		t.Fatalf("record 3 = %d", val(st, 3))
	}
}

func TestRedoIsIdempotent(t *testing.T) {
	log := []wal.Record{
		rec(1, 1, wal.Update, 2, 0, 4),
		rec(2, 1, wal.Update, 2, 4, 6),
		rec(3, 1, wal.Commit, 0, 0, 0),
	}
	once, _, err := Recover(input(log))
	if err != nil {
		t.Fatal(err)
	}
	// Recovering from a snapshot that already contains the final state
	// (replaying everything again) converges to the same answer.
	in := input(log)
	in.SnapshotPages = map[int][]byte{0: once.PageImage(0)}
	twice, _, err := Recover(in)
	if err != nil {
		t.Fatal(err)
	}
	if !once.Equal(twice) {
		t.Fatal("redo not idempotent")
	}
}

func TestCompressedLoserWithoutPreImageFails(t *testing.T) {
	r := rec(1, 1, wal.Update, 3, 0, 7)
	r.Old = nil
	if _, _, err := Recover(input([]wal.Record{r})); err == nil {
		t.Fatal("loser without pre-image must be an error")
	}
}

func TestUnorderedLogRejected(t *testing.T) {
	if _, _, err := Recover(input([]wal.Record{
		rec(5, 1, wal.Update, 1, 0, 1),
		rec(2, 1, wal.Update, 1, 1, 2),
	})); err == nil {
		t.Fatal("unordered log accepted")
	}
}

func TestSnapshotInstallValidation(t *testing.T) {
	in := input(nil)
	in.SnapshotPages = map[int][]byte{99: bytes.Repeat([]byte{1}, 32)}
	if _, _, err := Recover(in); err == nil {
		t.Fatal("out-of-range snapshot page accepted")
	}
}

// TestChecksumCorruptRecordCutsLogMidPage flips one byte inside a
// mid-page update record: the tolerant page decode must stop at the last
// intact record, recovery must run on the surviving prefix (transaction 1
// committed, transaction 2 reduced to a harmless Begin), and everything
// encoded after the damage — including transaction 3's durable-looking
// commit on a later page — must be treated as never written.
func TestChecksumCorruptRecordCutsLogMidPage(t *testing.T) {
	page1 := []wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 1, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
		rec(4, 2, wal.Begin, 0, 0, 0),
		rec(5, 2, wal.Update, 2, 0, 8),
	}
	page2 := []wal.Record{
		rec(6, 2, wal.Commit, 0, 0, 0),
		rec(7, 3, wal.Begin, 0, 0, 0),
		rec(8, 3, wal.Update, 3, 0, 9),
		rec(9, 3, wal.Commit, 0, 0, 0),
	}
	img1, err := wal.EncodePage(page1, 512)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := wal.EncodePage(page2, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte in the pre-image of transaction 2's update, the last
	// record of page 1; the four records before it stay intact.
	intact := 0
	for _, r := range page1[:4] {
		intact += r.EncodedSize()
	}
	img1[6+intact+30] ^= 0xFF

	var log []wal.Record
	for _, img := range [][]byte{img1, img2} {
		recs, ok := wal.DecodePageTail(img)
		log = append(log, recs...)
		if !ok {
			break // FIFO device: nothing after a damaged page is durable
		}
	}
	if len(log) != 4 {
		t.Fatalf("decoded %d records from the damaged fragment, want 4", len(log))
	}

	st, info, err := Recover(input(log))
	if err != nil {
		t.Fatalf("recovery over the cut log failed: %v", err)
	}
	if !info.Committed[1] || info.Committed[2] || info.Committed[3] {
		t.Fatalf("committed set wrong: %v", info.Committed)
	}
	if len(info.Losers) != 0 {
		t.Fatalf("no loser should have durable updates, got %v", info.Losers)
	}
	if val(st, 1) != 7 || val(st, 2) != 0 || val(st, 3) != 0 {
		t.Fatalf("state %d/%d/%d, want only transaction 1's update", val(st, 1), val(st, 2), val(st, 3))
	}
}

// TestDuplicateCommitRecordsAfterTornGroupCommit models the retry after a
// torn group-commit page: the same transaction's commit appears twice in
// the merged log (one copy from the partially surviving page, one
// re-logged). Recovery must count it once and produce the identical state.
func TestDuplicateCommitRecordsAfterTornGroupCommit(t *testing.T) {
	base := []wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 1, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
	}
	dup := append(append([]wal.Record{}, base...), rec(6, 1, wal.Commit, 0, 0, 0))

	stBase, infoBase, err := Recover(input(base))
	if err != nil {
		t.Fatal(err)
	}
	stDup, infoDup, err := Recover(input(dup))
	if err != nil {
		t.Fatalf("duplicate commit broke recovery: %v", err)
	}
	if len(infoDup.Committed) != len(infoBase.Committed) {
		t.Fatalf("duplicate changed the committed set: %v vs %v", infoDup.Committed, infoBase.Committed)
	}
	if !stDup.Equal(stBase) {
		t.Fatal("duplicate commit changed the recovered state")
	}
}

// TestMergeCollapsesSameLSNAcrossFragments covers the other duplicate
// source: a record durable both on disk and still in stable memory shows
// up in two fragments with the same LSN, and the §5.2 sort-merge must
// keep exactly one copy.
func TestMergeCollapsesSameLSNAcrossFragments(t *testing.T) {
	fragA := []wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 1, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
	}
	fragB := fragA[1:] // stable-memory survivors of the same records
	merged := wal.MergeFragments([][]wal.Record{fragA, fragB})
	if len(merged) != 3 {
		t.Fatalf("merge kept %d records, want 3", len(merged))
	}
	st, info, err := Recover(input(merged))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Committed[1] || info.Redone != 1 {
		t.Fatalf("merged log misrecovered: %+v", info)
	}
	if val(st, 1) != 7 {
		t.Fatalf("merged log recovered %d, want 7", val(st, 1))
	}
}
