package recovery

import (
	"bytes"
	"testing"

	"mmdb/internal/wal"
)

func rec(lsn wal.LSN, txn wal.TxnID, typ wal.RecordType, id uint64, old, new byte) wal.Record {
	r := wal.Record{LSN: lsn, Txn: txn, Type: typ, Rec: id}
	if typ == wal.Update {
		r.Old = []byte{old, 0, 0, 0, 0, 0, 0, 0}
		r.New = []byte{new, 0, 0, 0, 0, 0, 0, 0}
	}
	return r
}

func input(log []wal.Record) Input {
	return Input{NumRecords: 16, RecSize: 8, RecordsPerPage: 4, Log: log}
}

func val(st interface{ Read(uint64) []byte }, id uint64) byte {
	return st.Read(id)[0]
}

func TestCommittedUpdatesRedone(t *testing.T) {
	st, info, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 3, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Committed[1] || info.Redone != 1 || info.Undone != 0 {
		t.Fatalf("info %+v", info)
	}
	if val(st, 3) != 7 {
		t.Fatalf("record 3 = %d", val(st, 3))
	}
}

func TestLoserUpdatesUndone(t *testing.T) {
	st, info, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 3, 0, 7), // no commit
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Losers[1] || info.Undone != 1 {
		t.Fatalf("info %+v", info)
	}
	if val(st, 3) != 0 {
		t.Fatalf("loser effect survived: %d", val(st, 3))
	}
}

func TestMultiUpdateLoserUndoneInReverse(t *testing.T) {
	st, _, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Update, 3, 0, 5),
		rec(2, 1, wal.Update, 3, 5, 9),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if val(st, 3) != 0 {
		t.Fatalf("reverse undo broken: %d", val(st, 3))
	}
}

func TestEndedTransactionNotUndone(t *testing.T) {
	// An aborted transaction with compensations and an End record must be
	// left alone: its compensations already restore the pre-image.
	st, info, err := Recover(input([]wal.Record{
		rec(1, 1, wal.Update, 3, 0, 5),
		rec(2, 1, wal.Update, 3, 5, 0), // compensation
		rec(3, 1, wal.End, 0, 0, 0),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Ended[1] || info.Undone != 0 {
		t.Fatalf("info %+v", info)
	}
	if val(st, 3) != 0 {
		t.Fatalf("record 3 = %d", val(st, 3))
	}
}

func TestSnapshotPlusStartLSNSkipsPrefix(t *testing.T) {
	// Snapshot holds record 3 = 7 (LSN 2 already applied); StartLSN=3
	// skips redoing it, and a later committed update still lands.
	snap := map[int][]byte{0: {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0}}
	in := input([]wal.Record{
		rec(1, 1, wal.Begin, 0, 0, 0),
		rec(2, 1, wal.Update, 3, 0, 7),
		rec(3, 1, wal.Commit, 0, 0, 0),
		rec(4, 2, wal.Update, 3, 7, 9),
		rec(5, 2, wal.Commit, 0, 0, 0),
	})
	in.SnapshotPages = snap
	in.StartLSN, in.HaveStart = 4, true
	st, info, err := Recover(in)
	if err != nil {
		t.Fatal(err)
	}
	if info.Redone != 1 {
		t.Fatalf("redone %d, want only the post-snapshot update", info.Redone)
	}
	if val(st, 3) != 9 {
		t.Fatalf("record 3 = %d", val(st, 3))
	}
}

func TestRedoIsIdempotent(t *testing.T) {
	log := []wal.Record{
		rec(1, 1, wal.Update, 2, 0, 4),
		rec(2, 1, wal.Update, 2, 4, 6),
		rec(3, 1, wal.Commit, 0, 0, 0),
	}
	once, _, err := Recover(input(log))
	if err != nil {
		t.Fatal(err)
	}
	// Recovering from a snapshot that already contains the final state
	// (replaying everything again) converges to the same answer.
	in := input(log)
	in.SnapshotPages = map[int][]byte{0: once.PageImage(0)}
	twice, _, err := Recover(in)
	if err != nil {
		t.Fatal(err)
	}
	if !once.Equal(twice) {
		t.Fatal("redo not idempotent")
	}
}

func TestCompressedLoserWithoutPreImageFails(t *testing.T) {
	r := rec(1, 1, wal.Update, 3, 0, 7)
	r.Old = nil
	if _, _, err := Recover(input([]wal.Record{r})); err == nil {
		t.Fatal("loser without pre-image must be an error")
	}
}

func TestUnorderedLogRejected(t *testing.T) {
	if _, _, err := Recover(input([]wal.Record{
		rec(5, 1, wal.Update, 1, 0, 1),
		rec(2, 1, wal.Update, 1, 1, 2),
	})); err == nil {
		t.Fatal("unordered log accepted")
	}
}

func TestSnapshotInstallValidation(t *testing.T) {
	in := input(nil)
	in.SnapshotPages = map[int][]byte{99: bytes.Repeat([]byte{1}, 32)}
	if _, _, err := Recover(in); err == nil {
		t.Fatal("out-of-range snapshot page accepted")
	}
}
