package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

// TestReplLadderSmoke runs a shrunken replication ladder end to end and
// requires every invariant to hold: byte-identity at each width, cross-
// width counter identity, cluster verification, and graceful stall
// fallback. The physical leg's reports are fully deterministic; the
// cluster leg's wall-clock throughput is not, so only its boolean
// verdicts are part of the bar.
func TestReplLadderSmoke(t *testing.T) {
	cfg := DefaultReplConfig()
	cfg.Replicas = []int{1, 2}
	cfg.Widths = []int{1, 4}
	cfg.RunFor = 300 * time.Millisecond
	cfg.ClusterReplicas = []int{0, 2}
	cfg.ClusterRows = 400
	cfg.ClusterReads = 40
	cfg.ClusterClients = 2

	res, err := RunRepl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHold {
		data, _ := json.MarshalIndent(res, "", "  ")
		t.Fatalf("repl invariants violated:\n%s", data)
	}
	for _, row := range res.ClusterRows {
		if row.Replicas > 0 && row.ReplicaReads == 0 {
			t.Fatalf("%d-replica rung never read a replica", row.Replicas)
		}
	}
	if res.StallFallbacks == 0 {
		t.Fatal("stall rung recorded no primary fallbacks")
	}
}
