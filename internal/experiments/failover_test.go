package experiments

import (
	"encoding/json"
	"testing"
)

// TestFailoverLadderSmoke runs a shrunken promotion/failover ladder end
// to end and requires every invariant to hold: zero acked-write loss at
// each kill-point, byte-identical replicas after rejoin, state hashes
// identical across widths, and a typed LostTailError from the lost-WAL
// rung.
func TestFailoverLadderSmoke(t *testing.T) {
	cfg := DefaultFailoverConfig()
	cfg.Replicas = []int{1, 2}
	cfg.Widths = []int{1, 3}
	cfg.Rows = 80

	res, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHold {
		data, _ := json.MarshalIndent(res, "", "  ")
		t.Fatalf("failover invariants violated:\n%s", data)
	}
	for _, row := range res.Rows {
		if row.Epoch < 2 {
			t.Fatalf("%s r=%d w=%d: epoch %d after a switch, want >= 2",
				row.Scenario, row.Replicas, row.Width, row.Epoch)
		}
		if row.Scenario == "wallost" && row.TailLost == 0 {
			t.Fatalf("wallost r=%d w=%d lost nothing — the rung is vacuous", row.Replicas, row.Width)
		}
	}
}
