package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"time"

	"mmdb/internal/avl"
	"mmdb/internal/btree"
	"mmdb/internal/buffer"
	"mmdb/internal/core"
	"mmdb/internal/cost"
	"mmdb/internal/event"
	"mmdb/internal/join"
	"mmdb/internal/pbtree"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
	"mmdb/internal/workload"
)

// AblationResult collects the design-choice studies DESIGN.md calls out:
// things the paper mentions in footnotes or leaves to future work, each
// measured against the mainline choice.
type AblationResult struct {
	PagedTrees []PagedTreeRow
	Policies   []PolicyRow
	HybridSkew []SkewRow
	GraceParts []GraceRow
	TIDvsTuple []TIDRow
	Versioning []VersioningRow
}

// --- §2 footnote: paged binary tree vs AVL vs B+-tree ---

// PagedTreeRow compares page-access costs of the three structures.
type PagedTreeRow struct {
	Structure   string
	InsertOrder string
	Pages       int     // structure size S in pages
	MeanLookup  float64 // mean pages touched per lookup
	WorstLookup int     // worst pages touched observed
}

func runPagedTrees() ([]PagedTreeRow, error) {
	const n = 30000
	const L = 100
	const P = 4096
	schema := tuple.MustSchema(
		tuple.Field{Name: "key", Kind: tuple.Int64},
		tuple.Field{Name: "pad", Kind: tuple.String, Size: L - 8},
	)
	keyBytes := func(k int) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(int64(k))^(1<<63))
		return b[:]
	}
	var rows []PagedTreeRow
	for _, order := range []string{"random", "sorted"} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = i
		}
		rng := rand.New(rand.NewSource(8))
		if order == "random" {
			rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		}
		tup := schema.MustEncode(tuple.IntValue(0), tuple.StringValue("x"))

		at := &avl.Tree{}
		bt := btree.MustNew(btree.Config{PageSize: P, KeyWidth: 8, TupleWidth: L})
		pt := pbtree.MustNew(pbtree.Config{PageSize: P, TupleWidth: L})
		for _, k := range keys {
			at.Insert(keyBytes(k), tup)
			bt.Insert(keyBytes(k), tup)
			pt.Insert(keyBytes(k), tup)
		}
		nodesPerPage := P / (L + 8)
		avlPages := (at.NumNodes() + nodesPerPage - 1) / nodesPerPage

		const lookups = 1500
		measure := func(structure string, pages int, path func(k int) int) PagedTreeRow {
			total, worst := 0, 0
			for i := 0; i < lookups; i++ {
				p := path(keys[rng.Intn(n)])
				total += p
				if p > worst {
					worst = p
				}
			}
			return PagedTreeRow{
				Structure:   structure,
				InsertOrder: order,
				Pages:       pages,
				MeanLookup:  float64(total) / lookups,
				WorstLookup: worst,
			}
		}
		rows = append(rows,
			measure("avl (one node/page access)", avlPages, func(k int) int {
				pages := map[avl.NodeID]bool{}
				at.Search(keyBytes(k), func(id avl.NodeID) { pages[id/avl.NodeID(nodesPerPage)] = true })
				return len(pages)
			}),
			measure("paged binary tree", pt.NumPages(), func(k int) int {
				return pt.PathPages(keyBytes(k))
			}),
			measure("b+tree", bt.NumPages(), func(k int) int {
				c := 0
				bt.Search(keyBytes(k), func(btree.NodeID) { c++ })
				return c
			}),
		)
	}
	return rows, nil
}

// --- §6 future work: buffer replacement policies ---

// PolicyRow is the fault rate of one replacement policy on a B+-tree
// lookup workload at half residency.
type PolicyRow struct {
	Policy    buffer.Policy
	H         float64
	FaultRate float64 // faults per lookup
}

func runPolicies() ([]PolicyRow, error) {
	const n = 50000
	bt := btree.MustNew(btree.Config{PageSize: 4096, KeyWidth: 8, TupleWidth: 100})
	rng := rand.New(rand.NewSource(9))
	keyBytes := func(k int) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(int64(k))^(1<<63))
		return b[:]
	}
	perm := rng.Perm(n)
	for _, k := range perm {
		bt.Insert(keyBytes(k), make(tuple.Tuple, 100))
	}
	var rows []PolicyRow
	for _, h := range []float64{0.25, 0.5} {
		for _, pol := range []buffer.Policy{buffer.Random, buffer.LRU, buffer.Clock} {
			pool := buffer.New(maxi(1, int(h*float64(bt.NumPages()))), pol, nil, 10)
			const lookups = 4000
			for i := 0; i < lookups; i++ {
				k := perm[rng.Intn(n)]
				bt.Search(keyBytes(k), func(id btree.NodeID) {
					pool.Touch(buffer.PageKey{Space: "bt", Page: int(id)})
				})
			}
			rows = append(rows, PolicyRow{
				Policy:    pol,
				H:         h,
				FaultRate: float64(pool.Stats().Faults) / lookups,
			})
		}
	}
	return rows, nil
}

// --- hybrid hash partition sizing ---

// SkewRow compares the paper's exact-fit partition count with the
// variance-absorbing default.
type SkewRow struct {
	Skew    float64
	Passes  int
	Seconds float64
}

func runHybridSkew() ([]SkewRow, error) {
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 4096)
	r := workload.MustGenerate(disk, workload.RelationSpec{Name: "sk.R", Tuples: 20000, KeyDomain: 20000, Seed: 12})
	s := workload.MustGenerate(disk, workload.RelationSpec{Name: "sk.S", Tuples: 20000, KeyDomain: 20000, Seed: 13})
	var rows []SkewRow
	for _, skew := range []float64{1.0, 1.25, 1.5} {
		res, err := join.Run(join.HybridHash, join.Spec{
			R: r, S: s, M: 30, F: 1.2, HybridSkew: skew,
		}, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SkewRow{
			Skew:    skew,
			Passes:  res.Passes,
			Seconds: res.Counters.Time(clock.Params()).Seconds(),
		})
	}
	return rows, nil
}

// --- GRACE partition count ---

// GraceRow compares §3.6's literal "|M| sets" against the
// fragmentation-aware fit on a small relation.
type GraceRow struct {
	Label      string
	Partitions int
	Seconds    float64
}

func runGraceParts() ([]GraceRow, error) {
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 4096)
	r := workload.MustGenerate(disk, workload.RelationSpec{Name: "gp.R", Tuples: 20000, KeyDomain: 20000, Seed: 14})
	s := workload.MustGenerate(disk, workload.RelationSpec{Name: "gp.S", Tuples: 20000, KeyDomain: 20000, Seed: 15})
	var rows []GraceRow
	for _, tc := range []struct {
		label string
		parts int
	}{
		{"paper: B = |M|", 400},
		{"fitted (default)", 0},
	} {
		res, err := join.Run(join.GraceHash, join.Spec{
			R: r, S: s, M: 400, F: 1.2, GraceParts: tc.parts,
		}, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GraceRow{
			Label:      tc.label,
			Partitions: res.Partitions,
			Seconds:    res.Counters.Time(clock.Params()).Seconds(),
		})
	}
	return rows, nil
}

// --- §3.2: TID-key pairs vs whole tuples ---

// TIDRow evaluates the paper's observation that the whole-tuple vs
// TID-key-pair decision "affects our algorithms only in the values
// assigned to certain parameters": shrinking the move cost models TID
// manipulation.
type TIDRow struct {
	Label     string
	MoveCost  time.Duration
	HybridSec float64 // analytic hybrid at ratio 0.1
}

func runTIDvsTuple() []TIDRow {
	w := core.Table2Workload()
	var rows []TIDRow
	for _, tc := range []struct {
		label string
		move  time.Duration
	}{
		{"whole tuples (Table 2)", 20 * time.Microsecond},
		{"TID-key pairs", 4 * time.Microsecond},
	} {
		p := cost.DefaultParams()
		p.Move = tc.move
		c := core.HybridHashCost(p, w, 1200)
		rows = append(rows, TIDRow{Label: tc.label, MoveCost: tc.move, HybridSec: c.Total()})
	}
	return rows
}

// --- §6 future work: versioning vs locking for read-only transactions ---

// VersioningRow is one side of the readers study.
type VersioningRow struct {
	Mode      string
	WriterTPS float64
	ReaderTPS float64
}

func runVersioning() ([]VersioningRow, error) {
	mk := func(versioning bool, readers int) (txn.Stats, error) {
		sim := &event.Sim{}
		cfg := txn.Config{
			Accounts:          64,
			RecordsPerPage:    16,
			Terminals:         20,
			ReadOnlyTerminals: readers,
			ReadAccounts:      64,
			ReadCPU:           2 * time.Millisecond,
			Versioning:        versioning,
			Seed:              16,
			Log: wal.Config{
				Policy:  wal.GroupCommit,
				Devices: []*wal.Device{wal.NewDevice("log", 10*time.Millisecond)},
			},
		}
		e, err := txn.New(sim, cfg)
		if err != nil {
			return txn.Stats{}, err
		}
		return e.Run(5 * time.Second), nil
	}
	var rows []VersioningRow
	base, err := mk(false, 0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, VersioningRow{Mode: "no readers (baseline)", WriterTPS: base.TPS()})
	locked, err := mk(false, 8)
	if err != nil {
		return nil, err
	}
	rows = append(rows, VersioningRow{Mode: "2PL shared locks", WriterTPS: locked.TPS(), ReaderTPS: locked.ReadTPS()})
	versioned, err := mk(true, 8)
	if err != nil {
		return nil, err
	}
	rows = append(rows, VersioningRow{Mode: "versioning [REED83]", WriterTPS: versioned.TPS(), ReaderTPS: versioned.ReadTPS()})
	return rows, nil
}

// RunAblations executes every study.
func RunAblations() (*AblationResult, error) {
	res := &AblationResult{TIDvsTuple: runTIDvsTuple()}
	var err error
	if res.PagedTrees, err = runPagedTrees(); err != nil {
		return nil, err
	}
	if res.Policies, err = runPolicies(); err != nil {
		return nil, err
	}
	if res.HybridSkew, err = runHybridSkew(); err != nil {
		return nil, err
	}
	if res.GraceParts, err = runGraceParts(); err != nil {
		return nil, err
	}
	if res.Versioning, err = runVersioning(); err != nil {
		return nil, err
	}
	return res, nil
}

// Print renders all studies.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablations — footnotes, future work and design choices")

	fmt.Fprintln(w, "\n[A] §2 footnote — paged binary tree between AVL and B+-tree:")
	fmt.Fprintf(w, "  %-28s %-8s %8s %12s %8s\n", "structure", "inserts", "pages", "mean pg/get", "worst")
	for _, row := range r.PagedTrees {
		fmt.Fprintf(w, "  %-28s %-8s %8d %12.2f %8d\n",
			row.Structure, row.InsertOrder, row.Pages, row.MeanLookup, row.WorstLookup)
	}

	fmt.Fprintln(w, "\n[B] §6 — buffer replacement policy (B+-tree lookups):")
	fmt.Fprintf(w, "  %-10s %6s %14s\n", "policy", "H", "faults/lookup")
	for _, row := range r.Policies {
		fmt.Fprintf(w, "  %-10v %6.2f %14.2f\n", row.Policy, row.H, row.FaultRate)
	}

	fmt.Fprintln(w, "\n[C] hybrid hash partition sizing (exact-fit vs skew slack, tight memory):")
	fmt.Fprintf(w, "  %-8s %8s %12s\n", "skew", "passes", "virt secs")
	for _, row := range r.HybridSkew {
		fmt.Fprintf(w, "  %-8.2f %8d %12.1f\n", row.Skew, row.Passes, row.Seconds)
	}

	fmt.Fprintln(w, "\n[D] GRACE partition count (500-page relation, |M|=400):")
	fmt.Fprintf(w, "  %-22s %12s %12s\n", "choice", "partitions", "virt secs")
	for _, row := range r.GraceParts {
		fmt.Fprintf(w, "  %-22s %12d %12.1f\n", row.Label, row.Partitions, row.Seconds)
	}

	fmt.Fprintln(w, "\n[E] §3.2 — whole tuples vs TID-key pairs (analytic hybrid, ratio 0.1):")
	for _, row := range r.TIDvsTuple {
		fmt.Fprintf(w, "  %-24s move=%-6v %10.1f s\n", row.Label, row.MoveCost, row.HybridSec)
	}

	fmt.Fprintln(w, "\n[F] §6 — read-only transactions: locking vs versioning (hot store):")
	fmt.Fprintf(w, "  %-24s %12s %12s\n", "mode", "writer tps", "reader tps")
	for _, row := range r.Versioning {
		fmt.Fprintf(w, "  %-24s %12.1f %12.1f\n", row.Mode, row.WriterTPS, row.ReaderTPS)
	}
}
