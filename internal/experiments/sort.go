package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"mmdb"
)

// SortConfig drives the parallel-sort ladder: a memory ladder (out-of-core
// through fully in-memory) crossed with a Parallelism ladder, at a pinned
// SortChunks decomposition. Chunks is a plan knob — it determines the
// virtual counters — so it stays fixed while the worker count varies: the
// experiment's invariant is that every width charges bit-identical
// counters and produces the identical output order, while wall-clock time
// drops.
type SortConfig struct {
	Widths      []int `json:"widths"`       // Parallelism ladder, e.g. 1,2,4,8
	Chunks      int   `json:"chunks"`       // pinned SortChunks decomposition
	MemoryPages []int `json:"memory_pages"` // sort-memory rungs, small → larger than the input
	Tuples      int   `json:"tuples"`       // rows in the sorted relation
	RefTuples   int   `json:"ref_tuples"`   // rows in the join probe relation
	PageSize    int   `json:"page_size"`
	Repeat      int   `json:"repeat"` // timed repetitions per rung (wall-clock smoothing)
}

// DefaultSortConfig sizes the ladder so the smallest memory rung forms
// dozens of runs per chunk (intermediate merge passes included) and the
// largest sorts fully in memory, in a few seconds of wall time.
func DefaultSortConfig() SortConfig {
	return SortConfig{
		Widths:      []int{1, 2, 4, 8},
		Chunks:      8,
		MemoryPages: []int{16, 64, 4096},
		Tuples:      80000,
		RefTuples:   4000,
		PageSize:    1024,
		Repeat:      2,
	}
}

// SortVirtual is the width-independent execution profile of one memory
// rung: everything in here is virtual (counters, fingerprints, sort
// shapes), so the ladder asserts it is bit-identical at every Parallelism
// width, and BENCH_sort.json is byte-identical run to run for a config.
type SortVirtual struct {
	Rows        int64         `json:"rows"`
	OrderHash   uint64        `json:"order_hash"` // FNV-1a over the sorted key sequence
	Counters    mmdb.Counters `json:"counters"`
	Sorts       uint64        `json:"sorts"`
	Runs        uint64        `json:"runs"`
	MergePasses uint64        `json:"merge_passes"`
	InMemory    uint64        `json:"in_memory_sorts"`
	JoinMatches int64         `json:"join_matches"`
	JoinPasses  int           `json:"join_passes"`
	JoinRuns    int           `json:"join_runs"` // Partitions: initial runs across both join inputs
}

// SortRow is one memory rung of the ladder.
type SortRow struct {
	MemoryPages int         `json:"memory_pages"`
	Virtual     SortVirtual `json:"virtual"`
	// WidthsIdentical records that every Parallelism width reproduced
	// Virtual bit-for-bit (counters, order hash, sort stats, join result).
	WidthsIdentical bool `json:"widths_identical"`

	wall map[int]time.Duration // per width, stdout only — kept out of the JSON
}

// SortResult is the full ladder.
type SortResult struct {
	Config SortConfig `json:"config"`
	Rows   []SortRow  `json:"rows"`
	// AllIdentical is the per-rung WidthsIdentical conjunction; mmdbench
	// exits non-zero when it is false.
	AllIdentical bool `json:"all_identical"`
}

// loadSortDB builds a fresh engine with an "events" relation in shuffled
// key order (the sort input) and a smaller "ref" relation for the
// sort-merge join leg. The fill is deterministic, so every (memory, width)
// cell sorts the identical relation.
func loadSortDB(cfg SortConfig, memPages, width int) (*mmdb.Database, error) {
	db, err := mmdb.Open(mmdb.Options{
		PageSize:    cfg.PageSize,
		MemoryPages: memPages,
		Parallelism: width,
		SortChunks:  cfg.Chunks,
	})
	if err != nil {
		return nil, err
	}
	events, err := db.CreateRelation("events", mmdb.MustSchema(
		mmdb.Field{Name: "key", Kind: mmdb.Int64},
		mmdb.Field{Name: "seq", Kind: mmdb.Int64},
		mmdb.Field{Name: "pad", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		return nil, err
	}
	// Deterministic LCG shuffle of the key space (MMIX constants).
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < cfg.Tuples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		key := int64(state % uint64(cfg.Tuples*4))
		err := events.Insert(
			mmdb.IntValue(key),
			mmdb.IntValue(int64(i)),
			mmdb.StringValue("event-padding!!!"),
		)
		if err != nil {
			return nil, err
		}
	}
	if err := events.Flush(); err != nil {
		return nil, err
	}
	ref, err := db.CreateRelation("ref", mmdb.MustSchema(
		mmdb.Field{Name: "key", Kind: mmdb.Int64},
		mmdb.Field{Name: "tag", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.RefTuples; i++ {
		state = uint64(i)*2862933555777941757 + 3037000493
		err := ref.Insert(
			mmdb.IntValue(int64(state%uint64(cfg.Tuples*4))),
			mmdb.IntValue(int64(i)),
		)
		if err != nil {
			return nil, err
		}
	}
	if err := ref.Flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// runSortCell executes one (memory, width) cell: Repeat timed rounds of
// OrderBy over events plus one sort-merge join against ref, returning the
// virtual profile of a single round and the total wall time.
func runSortCell(cfg SortConfig, memPages, width int) (SortVirtual, time.Duration, error) {
	db, err := loadSortDB(cfg, memPages, width)
	if err != nil {
		return SortVirtual{}, 0, err
	}
	var v SortVirtual
	var wall time.Duration
	for rep := 0; rep < cfg.Repeat; rep++ {
		before := db.Counters()
		metricsBefore := db.SessionMetrics()
		h := fnv.New64a()
		var rows int64
		var buf [8]byte
		start := time.Now()
		err := db.OrderBy("events", "key", func(t mmdb.Tuple) bool {
			rows++
			copy(buf[:], t[:8])
			h.Write(buf[:])
			return true
		})
		if err != nil {
			return SortVirtual{}, 0, err
		}
		jr, err := db.Join(mmdb.SortMerge, "ref", "events", "key", "key", nil)
		if err != nil {
			return SortVirtual{}, 0, err
		}
		wall += time.Since(start)
		metrics := db.SessionMetrics()
		round := SortVirtual{
			Rows:        rows,
			OrderHash:   h.Sum64(),
			Counters:    db.Counters().Sub(before),
			Sorts:       metrics.Sorts - metricsBefore.Sorts,
			Runs:        metrics.SortRuns - metricsBefore.SortRuns,
			MergePasses: metrics.SortMergePasses - metricsBefore.SortMergePasses,
			InMemory:    metrics.SortsInMemory - metricsBefore.SortsInMemory,
			JoinMatches: jr.Matches,
			JoinPasses:  jr.Passes,
			JoinRuns:    jr.Partitions,
		}
		if rep == 0 {
			v = round
		} else if round != v {
			return SortVirtual{}, 0, fmt.Errorf(
				"sort ladder: repeat %d of mem=%d width=%d diverged from repeat 0", rep, memPages, width)
		}
	}
	return v, wall, nil
}

// RunSort runs the ladder: for every memory rung, every width runs the
// identical plan and must reproduce the identical virtual profile.
func RunSort(cfg SortConfig) (*SortResult, error) {
	// Wall-clock speedup needs real OS-level parallelism: when the Go
	// runtime is capped below the ladder's top width (containers often
	// pin GOMAXPROCS to 1), floor it for the duration — the priority
	// ladder sets the precedent. Virtual results are unaffected either
	// way; on a single-core host speedup simply stays ~1x.
	top := 1
	for _, w := range cfg.Widths {
		if w > top {
			top = w
		}
	}
	if runtime.GOMAXPROCS(0) < top {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(top))
	}
	res := &SortResult{Config: cfg, AllIdentical: true}
	for _, memPages := range cfg.MemoryPages {
		row := SortRow{MemoryPages: memPages, WidthsIdentical: true, wall: map[int]time.Duration{}}
		for i, width := range cfg.Widths {
			v, wall, err := runSortCell(cfg, memPages, width)
			if err != nil {
				return nil, err
			}
			row.wall[width] = wall
			if i == 0 {
				row.Virtual = v
			} else if v != row.Virtual {
				row.WidthsIdentical = false
				res.AllIdentical = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the human-readable report; wall-clock times and speedups
// live here only, never in the JSON.
func (r *SortResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel external sort — chunked run formation + merge tree\n")
	fmt.Fprintf(w, "(%d tuples, %d sort chunks, widths %v, %d timed rounds per cell)\n\n",
		r.Config.Tuples, r.Config.Chunks, r.Config.Widths, r.Config.Repeat)
	fmt.Fprintf(w, "%8s %8s %8s %12s %12s", "mem", "runs", "passes", "IOseq", "IOrand")
	for _, width := range r.Config.Widths {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("w=%d", width))
	}
	fmt.Fprintf(w, " %8s %10s\n", "speedup", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %8d %8d %12d %12d",
			row.MemoryPages, row.Virtual.Runs, row.Virtual.MergePasses,
			row.Virtual.Counters.SeqIOs, row.Virtual.Counters.RandIOs)
		for _, width := range r.Config.Widths {
			fmt.Fprintf(w, " %9s", row.wall[width].Round(time.Millisecond))
		}
		first := row.wall[r.Config.Widths[0]]
		last := row.wall[r.Config.Widths[len(r.Config.Widths)-1]]
		speedup := 0.0
		if last > 0 {
			speedup = float64(first) / float64(last)
		}
		fmt.Fprintf(w, " %7.2fx %10v\n", speedup, row.WidthsIdentical)
	}
	if !r.AllIdentical {
		fmt.Fprintf(w, "\nVIRTUAL COUNTER MISMATCH: parallelism changed the accounting\n")
	}
}

// WriteJSON writes the machine-readable result. Only virtual quantities
// are serialized, so the file is byte-identical for a given config no
// matter the host, the worker widths' scheduling, or the wall clock.
func (r *SortResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
