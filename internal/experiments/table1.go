// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (access method crossover), Figure 1 (join algorithm
// comparison), Table 2 (parameter settings), Table 3 (sensitivity sweep),
// the §3.9 aggregate study, the §4 planner reduction, and the §5
// throughput/recovery ladder. cmd/mmdbench prints them; bench_test.go
// wraps them as testing.B benchmarks; EXPERIMENTS.md records the outputs
// against the paper's claims.
package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"mmdb/internal/avl"
	"mmdb/internal/btree"
	"mmdb/internal/buffer"
	"mmdb/internal/core"
	"mmdb/internal/tuple"
)

// Table1Config parameterizes the access-method experiment.
type Table1Config struct {
	R           int64     // tuples (analytic model)
	EmpiricalR  int       // tuples actually inserted for the empirical check
	K, L, P     int       // key width, tuple width, page size
	Ys          []float64 // AVL comparison discounts
	Zs          []float64 // page-read weights
	SequentialN int64     // records read in the sequential-access case
	Lookups     int       // empirical lookups per memory point
	Seed        int64
}

// DefaultTable1Config returns the configuration used in EXPERIMENTS.md.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		R:          1_000_000,
		EmpiricalR: 50_000,
		K:          8, L: 100, P: 4096,
		Ys:          []float64{0.5, 0.7, 0.9, 1.0},
		Zs:          []float64{10, 20, 30},
		SequentialN: 1000,
		Lookups:     2000,
		Seed:        1,
	}
}

// Table1Result holds the analytic grid and the empirical validation.
type Table1Result struct {
	Config     Table1Config
	Random     []core.Table1Row
	Sequential []core.Table1Row
	Empirical  []EmpiricalPoint
}

// EmpiricalPoint is one memory-residency measurement over the real trees.
type EmpiricalPoint struct {
	H             float64 // fraction of the AVL structure resident
	AVLFaults     float64 // measured faults per lookup
	AVLComps      float64 // measured comparisons per lookup
	BTreeFaults   float64
	BTreeComps    float64
	AVLCostZ20Y07 float64 // Z=20, Y=0.7 costs for the crossover narrative
	BTCostZ20     float64
	// Case 2 (§2): faults per sequential scan of SeqN records starting at
	// a random key. The AVL tree touches ~one random page per record; the
	// B+-tree walks the leaf chain.
	AVLSeqFaults float64
	BTSeqFaults  float64
}

// RunTable1 reproduces Table 1: the analytic crossover grid, validated by
// driving real AVL and B+-tree lookups through a random-replacement buffer
// pool and measuring fault and comparison rates.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	base := core.AccessParams{R: cfg.R, K: cfg.K, L: cfg.L, P: cfg.P}
	random, sequential := core.Table1(base, cfg.Ys, cfg.Zs, cfg.SequentialN)
	res := &Table1Result{Config: cfg, Random: random, Sequential: sequential}

	emp, err := runTable1Empirical(cfg)
	if err != nil {
		return nil, err
	}
	res.Empirical = emp
	return res, nil
}

func runTable1Empirical(cfg Table1Config) ([]EmpiricalPoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema, err := tuple.NewSchema(
		tuple.Field{Name: "key", Kind: tuple.Int64},
		tuple.Field{Name: "pad", Kind: tuple.String, Size: cfg.L - 8},
	)
	if err != nil {
		return nil, err
	}

	// Build both structures over the same permuted key set.
	keys := rng.Perm(cfg.EmpiricalR)
	at := &avl.Tree{}
	bt, err := btree.New(btree.Config{PageSize: cfg.P, KeyWidth: cfg.K, TupleWidth: cfg.L})
	if err != nil {
		return nil, err
	}
	keyBytes := func(k int) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(int64(k))^(1<<63))
		return b[:]
	}
	for _, k := range keys {
		t := schema.MustEncode(tuple.IntValue(int64(k)), tuple.StringValue("x"))
		at.Insert(keyBytes(k), t)
		bt.Insert(keyBytes(k), t)
	}

	// Page placement for the AVL tree: nodes packed onto pages in
	// allocation order; since insertion order is random, a root-to-leaf
	// path touches unrelated pages — the paper's "each of the C nodes to
	// be inspected will be on a different page".
	nodeBytes := cfg.L + 8
	nodesPerPage := cfg.P / nodeBytes
	avlPages := (at.NumNodes() + nodesPerPage - 1) / nodesPerPage
	btPages := bt.NumPages()

	var out []EmpiricalPoint
	for _, h := range []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
		avlPool := buffer.New(maxi(1, int(h*float64(avlPages))), buffer.Random, nil, cfg.Seed+1)
		btPool := buffer.New(maxi(1, int(h*float64(avlPages))), buffer.Random, nil, cfg.Seed+2)

		// Warm both pools with random pages, then measure steady state.
		for i := 0; i < avlPool.Capacity(); i++ {
			avlPool.Warm(buffer.PageKey{Space: "avl", Page: rng.Intn(avlPages)})
		}
		for i := 0; i < btPool.Capacity() && i < btPages; i++ {
			btPool.Warm(buffer.PageKey{Space: "bt", Page: rng.Intn(btPages)})
		}
		at.ResetComparisons()
		bt.ResetComparisons()
		avlPool.ResetStats()
		btPool.ResetStats()

		for i := 0; i < cfg.Lookups; i++ {
			k := keys[rng.Intn(len(keys))]
			at.Search(keyBytes(k), func(id avl.NodeID) {
				avlPool.Touch(buffer.PageKey{Space: "avl", Page: int(id) / nodesPerPage})
			})
			bt.Search(keyBytes(k), func(id btree.NodeID) {
				btPool.Touch(buffer.PageKey{Space: "bt", Page: int(id)})
			})
		}
		n := float64(cfg.Lookups)
		pt := EmpiricalPoint{
			H:           h,
			AVLFaults:   float64(avlPool.Stats().Faults) / n,
			AVLComps:    float64(at.Comparisons()) / n,
			BTreeFaults: float64(btPool.Stats().Faults) / n,
			BTreeComps:  float64(bt.Comparisons()) / n,
		}
		pt.AVLCostZ20Y07 = 20*pt.AVLFaults + 0.7*pt.AVLComps
		pt.BTCostZ20 = 20*pt.BTreeFaults + pt.BTreeComps

		// Case 2: sequential scans of seqN records from random starts.
		const seqScans = 30
		seqN := int(cfg.SequentialN)
		if seqN > cfg.EmpiricalR/2 {
			seqN = cfg.EmpiricalR / 2
		}
		avlPool.ResetStats()
		btPool.ResetStats()
		for i := 0; i < seqScans; i++ {
			start := keyBytes(keys[rng.Intn(len(keys)/2)])
			read := 0
			at.Ascend(start, func(id avl.NodeID) {
				avlPool.Touch(buffer.PageKey{Space: "avl", Page: int(id) / nodesPerPage})
			}, func(_ []byte, vals []tuple.Tuple) bool {
				read += len(vals)
				return read < seqN
			})
			read = 0
			bt.AscendRange(start, func(id btree.NodeID) {
				btPool.Touch(buffer.PageKey{Space: "bt", Page: int(id)})
			}, func(_ []byte, _ tuple.Tuple) bool {
				read++
				return read < seqN
			})
		}
		pt.AVLSeqFaults = float64(avlPool.Stats().Faults) / seqScans
		pt.BTSeqFaults = float64(btPool.Stats().Faults) / seqScans
		out = append(out, pt)
	}
	return out, nil
}

// EmpiricalCrossover returns the smallest measured H at which the AVL tree
// is cheaper under Z=20, Y=0.7 (1 if never).
func (r *Table1Result) EmpiricalCrossover() float64 {
	for _, pt := range r.Empirical {
		if pt.AVLCostZ20Y07 < pt.BTCostZ20 {
			return pt.H
		}
	}
	return 1
}

// Print renders the experiment like the paper's Table 1.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1 — minimum fraction H = |M|/S of the AVL structure that must be\n")
	fmt.Fprintf(w, "memory resident for the AVL tree to beat the B+-tree (||R||=%d, K=%d, L=%d, P=%d)\n\n",
		r.Config.R, r.Config.K, r.Config.L, r.Config.P)
	fmt.Fprintf(w, "Random access (case 1):\n        ")
	for _, y := range r.Config.Ys {
		fmt.Fprintf(w, "  Y=%-5.2f", y)
	}
	fmt.Fprintln(w)
	for _, row := range r.Random {
		fmt.Fprintf(w, "  Z=%-4.0f", row.Z)
		for _, h := range row.CrossoverH {
			fmt.Fprintf(w, "  %-7.3f", h)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nSequential access of %d records (case 2):\n        ", r.Config.SequentialN)
	for _, y := range r.Config.Ys {
		fmt.Fprintf(w, "  Y=%-5.2f", y)
	}
	fmt.Fprintln(w)
	for _, row := range r.Sequential {
		fmt.Fprintf(w, "  Z=%-4.0f", row.Z)
		for _, h := range row.CrossoverH {
			fmt.Fprintf(w, "  %-7.3f", h)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nEmpirical validation (%d-tuple trees, random-replacement pool, %d lookups/point):\n",
		r.Config.EmpiricalR, r.Config.Lookups)
	fmt.Fprintf(w, "  %-6s %11s %11s %11s %11s %15s %11s %10s %10s\n",
		"H", "AVL faults", "AVL comps", "B+ faults", "B+ comps", "AVL cost(20,.7)", "B+ cost(20)", "AVL seq", "B+ seq")
	for _, pt := range r.Empirical {
		fmt.Fprintf(w, "  %-6.2f %11.2f %11.2f %11.2f %11.2f %15.1f %11.1f %10.1f %10.1f\n",
			pt.H, pt.AVLFaults, pt.AVLComps, pt.BTreeFaults, pt.BTreeComps,
			pt.AVLCostZ20Y07, pt.BTCostZ20, pt.AVLSeqFaults, pt.BTSeqFaults)
	}
	fmt.Fprintf(w, "  measured crossover (Z=20, Y=0.7): H ≈ %.2f — paper's claim: 0.80-0.90+\n", r.EmpiricalCrossover())
	fmt.Fprintf(w, "  seq columns: faults per sequential scan of %d records (case 2) — the AVL\n", r.Config.SequentialN)
	fmt.Fprintln(w, "  tree touches one scattered page per record, the B+-tree one leaf per ~28.")
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
