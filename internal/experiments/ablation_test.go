package experiments

import (
	"bytes"
	"testing"
)

func TestAblations(t *testing.T) {
	res, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}

	// [A] The §2 footnote: on random inserts the paged BST is no better
	// than one-page-per-node AVL by more than a structural factor, and on
	// sorted inserts it degenerates while the B+-tree stays flat.
	byKey := map[string]PagedTreeRow{}
	for _, row := range res.PagedTrees {
		byKey[row.Structure+"/"+row.InsertOrder] = row
	}
	bt := byKey["b+tree/random"]
	pbRandom := byKey["paged binary tree/random"]
	pbSorted := byKey["paged binary tree/sorted"]
	btSorted := byKey["b+tree/sorted"]
	if bt.MeanLookup > 4 {
		t.Errorf("b+tree lookups touch %.1f pages", bt.MeanLookup)
	}
	if pbRandom.MeanLookup < 2*bt.MeanLookup {
		t.Errorf("paged BST (%.1f pages/lookup) should be clearly worse than B+-tree (%.1f)",
			pbRandom.MeanLookup, bt.MeanLookup)
	}
	if pbSorted.MeanLookup < 20*btSorted.MeanLookup {
		t.Errorf("sorted-insert paged BST should degenerate: %.1f vs b+tree %.1f",
			pbSorted.MeanLookup, btSorted.MeanLookup)
	}

	// [B] All three policies behave on uniform tree lookups (the hot root
	// levels stay resident regardless); none should be wildly worse.
	for _, row := range res.Policies {
		if row.FaultRate > 1.5 {
			t.Errorf("%v at H=%.2f faults %.2f per lookup", row.Policy, row.H, row.FaultRate)
		}
	}

	// [C] The paper-exact partition count pays a recursion pass.
	var exact, slack SkewRow
	for _, row := range res.HybridSkew {
		switch row.Skew {
		case 1.0:
			exact = row
		case 1.25:
			slack = row
		}
	}
	if exact.Passes <= slack.Passes {
		t.Errorf("exact-fit B should recurse: %d vs %d passes", exact.Passes, slack.Passes)
	}
	if exact.Seconds <= slack.Seconds {
		t.Errorf("exact-fit B should cost more: %.1f vs %.1f", exact.Seconds, slack.Seconds)
	}

	// [D] Literal |M| partitions fragment small relations.
	if len(res.GraceParts) != 2 || res.GraceParts[0].Seconds <= res.GraceParts[1].Seconds {
		t.Errorf("paper GRACE should cost more on small relations: %+v", res.GraceParts)
	}

	// [F] §6: versioning keeps writers at the no-reader baseline; shared
	// locks do not.
	var baseline, locked, versioned VersioningRow
	for _, row := range res.Versioning {
		switch row.Mode {
		case "no readers (baseline)":
			baseline = row
		case "2PL shared locks":
			locked = row
		case "versioning [REED83]":
			versioned = row
		}
	}
	if locked.WriterTPS > 0.7*baseline.WriterTPS {
		t.Errorf("shared-lock readers barely hurt writers: %.1f vs baseline %.1f",
			locked.WriterTPS, baseline.WriterTPS)
	}
	if versioned.WriterTPS < 0.95*baseline.WriterTPS {
		t.Errorf("versioning should restore writer throughput: %.1f vs baseline %.1f",
			versioned.WriterTPS, baseline.WriterTPS)
	}
	if versioned.ReaderTPS < 0.9*locked.ReaderTPS {
		t.Errorf("versioned readers slower than locked: %.1f vs %.1f",
			versioned.ReaderTPS, locked.ReaderTPS)
	}

	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}
