package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"mmdb"
	"mmdb/internal/cost"
	"mmdb/internal/event"
	"mmdb/internal/fault"
	"mmdb/internal/repl"
	"mmdb/internal/store"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// ReplConfig drives the replication ladder's two legs.
//
// The physical leg runs the §5 recovery-world primary (seeded
// debit/credit on a segmented stable-memory log, truncation active) with
// LSN-shipping replicas at every (replica count × apply width × fault
// plan) cell, and holds the determinism oracle: a replica's store — at a
// mid-run snapshot and at the end — is byte-identical to the primary's
// committed prefix at its applied LSN, and the apply-path virtual
// counters are bit-identical across widths.
//
// The cluster leg measures the query-world read scale-out: the same read
// mix routed through a Cluster at several replica counts, plus a stalled
// link that must degrade reads to the primary without a client-visible
// error while the replicas still verify byte-identical.
type ReplConfig struct {
	// Replicas are the physical leg's replica counts per cell.
	Replicas []int `json:"replicas"`
	// Widths are the apply-parallelism fan-outs; the apply counters must
	// be bit-identical across them.
	Widths []int `json:"widths"`
	// RunFor is the primary's virtual run length per cell.
	RunFor time.Duration `json:"run_for_ns"`
	// Seed fixes the workload.
	Seed int64 `json:"seed"`

	// ClusterReplicas are the cluster leg's replica counts (0 = plain
	// primary-only baseline).
	ClusterReplicas []int `json:"cluster_replicas"`
	// ClusterRows seeds the read table; ClusterReads is the total number
	// of routed SELECTs per rung.
	ClusterRows  int `json:"cluster_rows"`
	ClusterReads int `json:"cluster_reads"`
	// ClusterClients is the number of concurrent readers.
	ClusterClients int `json:"cluster_clients"`
}

// DefaultReplConfig covers replicas 1–4 at widths 1–8, faulted and not.
func DefaultReplConfig() ReplConfig {
	return ReplConfig{
		Replicas:        []int{1, 2, 4},
		Widths:          []int{1, 2, 4, 8},
		RunFor:          600 * time.Millisecond,
		Seed:            11,
		ClusterReplicas: []int{0, 1, 2},
		ClusterRows:     4000,
		ClusterReads:    400,
		ClusterClients:  4,
	}
}

// ReplPhysRow is one (replica count, fault plan) cell of the physical
// leg, aggregated across widths.
type ReplPhysRow struct {
	Replicas  int    `json:"replicas"`
	Faults    string `json:"faults"`
	Committed int64  `json:"committed"`
	// Records is the per-replica record stream length (width 1).
	Records int64 `json:"records"`
	// StalenessP50/P99 are LSN-lag percentiles over all deliveries.
	StalenessP50 int64 `json:"staleness_p50"`
	StalenessP99 int64 `json:"staleness_p99"`
	// Identical: every replica at every width matched the committed
	// prefix byte-for-byte, mid-run and finally.
	Identical bool `json:"identical"`
	// CountersIdentical: the apply counters were bit-identical across
	// widths for every replica.
	CountersIdentical bool `json:"counters_identical"`
}

// ReplClusterRow is one rung of the cluster read-scaling leg.
type ReplClusterRow struct {
	Replicas     int     `json:"replicas"`
	Reads        int     `json:"reads"`
	ReplicaReads uint64  `json:"replica_reads"`
	PrimaryReads uint64  `json:"primary_reads"`
	Fallbacks    uint64  `json:"fallbacks"`
	WallNS       int64   `json:"wall_ns"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	// Verified: the replicas were byte-identical to the primary's
	// shipped relations after the run.
	Verified bool `json:"verified"`
}

// ReplResult is the full ladder report. AllHold is the acceptance
// verdict the bench harness turns into a non-zero exit.
type ReplResult struct {
	Config      ReplConfig       `json:"config"`
	PhysRows    []ReplPhysRow    `json:"physical_rows"`
	ClusterRows []ReplClusterRow `json:"cluster_rows"`

	// StallFallbacks / StallVerified report the stalled-link rung:
	// bounded-staleness reads fell back to the primary (no errors) and
	// the stalled replica still converged byte-identically.
	StallFallbacks uint64 `json:"stall_fallbacks"`
	StallVerified  bool   `json:"stall_verified"`

	PhysIdentical     bool `json:"phys_identical"`
	CountersIdentical bool `json:"counters_identical"`
	ClusterVerified   bool `json:"cluster_verified"`
	AllHold           bool `json:"all_invariants_hold"`
}

// replFaultPlan is one fault discipline on the physical ladder.
type replFaultPlan struct {
	name string
	inj  func() *fault.Injector // nil = no injector
}

func replFaultPlans() []replFaultPlan {
	return []replFaultPlan{
		{name: "none", inj: nil},
		{name: "stall+transient", inj: func() *fault.Injector {
			return fault.NewInjector(5).
				StallEvery("repl/ship/r0", 3, 8).
				TransientEvery("repl/ship/r1", 4)
		}},
	}
}

// replPrimary builds one physical-leg primary: the repl package's test
// engine shape — truncation active so the replication slots are load-
// bearing, stable memory so the durable horizon tracks the tip.
func replPrimary(cfg ReplConfig) (*event.Sim, *txn.Engine, error) {
	sim := &event.Sim{}
	e, err := txn.New(sim, txn.Config{
		Accounts:       512,
		Terminals:      8,
		UpdatesPerTxn:  3,
		RecordsPerPage: 64,
		AbortEvery:     7,
		Seed:           cfg.Seed,
		TruncateLog:    true,
		TruncateEvery:  8,
		Log: wal.Config{
			Policy:       wal.StableMemory,
			Devices:      []*wal.Device{wal.NewDevice("log0", 10*time.Millisecond)},
			PageSize:     4096,
			SegmentPages: 2,
		},
	})
	return sim, e, err
}

// runReplPhysCell runs one (replicas, faults) cell at every width and
// checks the determinism oracle inside it.
func runReplPhysCell(cfg ReplConfig, nReplicas int, plan replFaultPlan) (ReplPhysRow, error) {
	row := ReplPhysRow{Replicas: nReplicas, Faults: plan.name, Identical: true, CountersIdentical: true}
	type snap struct {
		st *store.Store
		at wal.LSN
	}
	var baseline []cost.Counters
	var lags []int64
	for wi, width := range cfg.Widths {
		sim, e, err := replPrimary(cfg)
		if err != nil {
			return row, err
		}
		shCfg := repl.Config{Sim: sim, Log: e.Log(), Parallelism: width}
		if plan.inj != nil {
			shCfg.Injector = plan.inj()
		}
		sh, err := repl.NewShipper(shCfg)
		if err != nil {
			return row, err
		}
		prim := e.Store()
		var reps []*repl.Replica
		for i := 0; i < nReplicas; i++ {
			st, err := store.New(prim.NumRecords(), prim.RecordSize(), prim.RecordsPerPage())
			if err != nil {
				return row, err
			}
			reps = append(reps, sh.AddReplica(fmt.Sprintf("r%d", i), st))
		}
		var snaps []snap
		sim.At(cfg.RunFor/2, func() {
			for _, r := range reps {
				st, at := r.Snapshot()
				snaps = append(snaps, snap{st, at})
			}
		})
		st := e.Run(cfg.RunFor)
		row.Committed = st.Committed
		if !sh.CatchUp() {
			return row, fmt.Errorf("repl: %d replicas, %s, width %d: catch-up failed", nReplicas, plan.name, width)
		}
		recs, _ := e.Log().DurableRecords(sim.Now())
		check := func(s *store.Store, at wal.LSN) error {
			ref, err := repl.ReferencePrefix(recs, at, prim.NumRecords(), prim.RecordSize(), prim.RecordsPerPage())
			if err != nil {
				return err
			}
			if !s.Equal(ref) {
				row.Identical = false
			}
			return nil
		}
		for _, s := range snaps {
			if err := check(s.st, s.at); err != nil {
				return row, err
			}
		}
		for ri, r := range reps {
			if err := check(r.Store(), r.AppliedLSN()); err != nil {
				return row, err
			}
			if !r.Store().Equal(e.Store()) {
				row.Identical = false
			}
			if wi == 0 {
				baseline = append(baseline, r.ApplyCounters())
				row.Records = r.Stats().Records
				lags = append(lags, r.LagSamples()...)
			} else if ri < len(baseline) && r.ApplyCounters() != baseline[ri] {
				row.CountersIdentical = false
			}
		}
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	if n := len(lags); n > 0 {
		row.StalenessP50 = lags[n/2]
		row.StalenessP99 = lags[n*99/100]
	}
	return row, nil
}

// runReplClusterRung measures one read-scaling rung: seed, wait for
// catch-up, then hammer NearestReplica SELECTs from several goroutines.
func runReplClusterRung(cfg ReplConfig, nReplicas int) (ReplClusterRow, error) {
	row := ReplClusterRow{Replicas: nReplicas, Reads: cfg.ClusterReads}
	opts := mmdb.Options{MemoryPages: 128, MaxConcurrentQueries: cfg.ClusterClients}
	cluster, err := mmdb.OpenCluster(opts, nReplicas)
	if err != nil {
		return row, err
	}
	defer cluster.Close()
	if err := seedReplTable(cluster.Primary(), cfg.ClusterRows); err != nil {
		return row, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		return row, err
	}

	const q = "SELECT dept, COUNT(*) FROM accounts GROUP BY dept ORDER BY dept"
	pref := mmdb.WithReadPreference(mmdb.NearestReplica())
	var wg sync.WaitGroup
	errs := make(chan error, cfg.ClusterClients)
	perClient := cfg.ClusterReads / cfg.ClusterClients
	start := time.Now()
	for c := 0; c < cfg.ClusterClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := cluster.Query(q, pref); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return row, fmt.Errorf("repl cluster (%d replicas): %w", nReplicas, err)
	}
	m := cluster.Metrics()
	row.ReplicaReads = m.ReplicaReads
	row.PrimaryReads = m.PrimaryReads
	row.Fallbacks = m.Fallbacks
	row.WallNS = wall.Nanoseconds()
	if wall > 0 {
		row.ReadsPerSec = float64(perClient*cfg.ClusterClients) / wall.Seconds()
	}
	row.Verified = cluster.VerifyReplicas() == nil
	return row, nil
}

// seedReplTable loads the cluster leg's read table through the primary.
func seedReplTable(db *mmdb.Database, rows int) error {
	rel, err := db.CreateRelation("accounts", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "balance", Kind: mmdb.Int64},
	))
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if err := rel.Insert(mmdb.IntValue(int64(i+1)), mmdb.IntValue(int64(i%16)),
			mmdb.IntValue(int64(1000+i))); err != nil {
			return err
		}
	}
	return rel.Flush()
}

// runReplStallRung checks graceful degradation: with every shipment to
// the only replica stalled, bounded-staleness reads must fall back to
// the primary without surfacing an error, and once the stream drains the
// replica must still verify byte-identical.
func runReplStallRung(cfg ReplConfig, res *ReplResult) error {
	cluster, err := mmdb.OpenCluster(mmdb.Options{MemoryPages: 128, MaxConcurrentQueries: 2}, 1)
	if err != nil {
		return err
	}
	defer cluster.Close()
	cluster.ArmShipFaults(mmdb.NewFaultInjector(7).StallEvery("repl/ship/r0", 1, 20))
	if err := seedReplTable(cluster.Primary(), cfg.ClusterRows/4); err != nil {
		return err
	}
	// Fresh reads demand zero staleness while the applier is stalled:
	// every one must route to the primary and succeed.
	pref := mmdb.WithReadPreference(mmdb.BoundedStaleness(0))
	for i := 0; i < 20; i++ {
		if _, err := cluster.Query("SELECT COUNT(*) FROM accounts", pref); err != nil {
			return fmt.Errorf("repl stall rung: bounded read errored: %w", err)
		}
	}
	res.StallFallbacks = cluster.Metrics().Fallbacks
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		return err
	}
	res.StallVerified = cluster.VerifyReplicas() == nil
	return nil
}

// RunRepl runs the full replication ladder.
func RunRepl(cfg ReplConfig) (*ReplResult, error) {
	if len(cfg.Replicas) == 0 || len(cfg.Widths) == 0 {
		return nil, fmt.Errorf("repl: need ≥1 replica count and ≥1 width")
	}
	res := &ReplResult{Config: cfg, PhysIdentical: true, CountersIdentical: true, ClusterVerified: true}
	for _, nr := range cfg.Replicas {
		for _, plan := range replFaultPlans() {
			row, err := runReplPhysCell(cfg, nr, plan)
			if err != nil {
				return nil, err
			}
			res.PhysRows = append(res.PhysRows, row)
			if !row.Identical {
				res.PhysIdentical = false
			}
			if !row.CountersIdentical {
				res.CountersIdentical = false
			}
		}
	}
	for _, nr := range cfg.ClusterReplicas {
		row, err := runReplClusterRung(cfg, nr)
		if err != nil {
			return nil, err
		}
		res.ClusterRows = append(res.ClusterRows, row)
		if !row.Verified {
			res.ClusterVerified = false
		}
		if nr > 0 && row.ReplicaReads == 0 {
			res.ClusterVerified = false
		}
	}
	if err := runReplStallRung(cfg, res); err != nil {
		return nil, err
	}
	res.AllHold = res.PhysIdentical && res.CountersIdentical && res.ClusterVerified &&
		res.StallVerified && res.StallFallbacks > 0
	return res, nil
}

// Print renders the ladder.
func (r *ReplResult) Print(w io.Writer) {
	fmt.Fprintln(w, "LSN-shipping replication — byte-identity oracle and read scale-out")
	fmt.Fprintf(w, "  physical leg: widths %v apply each stream; stores must equal the committed prefix\n\n", r.Config.Widths)
	fmt.Fprintf(w, "  %-9s %-16s %10s %8s %8s %8s %10s %9s\n",
		"replicas", "faults", "committed", "records", "lag p50", "lag p99", "identical", "counters")
	for _, row := range r.PhysRows {
		fmt.Fprintf(w, "  %-9d %-16s %10d %8d %8d %8d %10v %9v\n",
			row.Replicas, row.Faults, row.Committed, row.Records,
			row.StalenessP50, row.StalenessP99, row.Identical, row.CountersIdentical)
	}
	fmt.Fprintf(w, "\n  cluster leg: %d nearest-replica reads over %d clients\n\n", r.Config.ClusterReads, r.Config.ClusterClients)
	fmt.Fprintf(w, "  %-9s %9s %9s %9s %10s %12s %9s\n",
		"replicas", "replica", "primary", "fallback", "wall", "reads/s", "verified")
	for _, row := range r.ClusterRows {
		fmt.Fprintf(w, "  %-9d %9d %9d %9d %10s %12.0f %9v\n",
			row.Replicas, row.ReplicaReads, row.PrimaryReads, row.Fallbacks,
			time.Duration(row.WallNS).Round(time.Millisecond), row.ReadsPerSec, row.Verified)
	}
	fmt.Fprintf(w, "\n  stalled link: %d bounded reads fell back to the primary, 0 errors; replica verified after drain: %v\n",
		r.StallFallbacks, r.StallVerified)
	fmt.Fprintf(w, "  replica ≡ committed prefix at every width: %v\n", r.PhysIdentical)
	fmt.Fprintf(w, "  apply counters identical across widths: %v\n", r.CountersIdentical)
	fmt.Fprintf(w, "  cluster replicas verified byte-identical: %v\n", r.ClusterVerified)
	fmt.Fprintf(w, "  ALL INVARIANTS HOLD: %v\n", r.AllHold)
}

// WriteJSON writes the machine-readable result.
func (r *ReplResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
