package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/recovery"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// RecoveryScaleConfig drives the recovery-time-vs-log-length ladder: the
// same seeded workload run for increasing lengths (so the committed count
// grows ~10× bottom to top), crashed just before the end, and replayed
// through the segmented recovery path at several widths.
type RecoveryScaleConfig struct {
	// RunFors are the rung lengths; the crash lands 1 ms before each end.
	RunFors []time.Duration `json:"run_fors_ns"`
	// Widths are the replay fan-outs each crash is replayed at; the cost
	// counters must be bit-identical across them.
	Widths []int `json:"widths"`
	// Seed fixes the workload.
	Seed int64 `json:"seed"`
}

// DefaultRecoveryScaleConfig spans a 10× committed-count spread.
func DefaultRecoveryScaleConfig() RecoveryScaleConfig {
	return RecoveryScaleConfig{
		RunFors: []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond, 6 * time.Second},
		Widths:  []int{1, 2, 4, 8},
		Seed:    11,
	}
}

// scaleVariant is one log-management discipline on the ladder.
type scaleVariant struct {
	name       string
	checkpoint bool // §5.3 background sweep advancing the redo bound
	truncate   bool // delete whole segments below the commit.meta horizon
	compact    bool // §5.6 background compaction of cold segments
}

var scaleVariants = []scaleVariant{
	{name: "baseline", checkpoint: false, truncate: false, compact: false},
	{name: "ckpt+truncate", checkpoint: true, truncate: true, compact: false},
	{name: "ckpt+truncate+compact", checkpoint: true, truncate: true, compact: true},
}

// RecoveryScaleRow is one (variant, run length) cell.
type RecoveryScaleRow struct {
	Config          string        `json:"config"`
	RunFor          time.Duration `json:"run_for_ns"`
	Committed       int64         `json:"committed"`
	LogScanned      int           `json:"log_scanned"`
	SegmentsScanned int           `json:"segments_scanned"`
	SegmentsSkipped int           `json:"segments_skipped"`
	CompactedBytes  int64         `json:"compacted_bytes"`
	// RecoveryVirtual is the replay's virtual time — identical at every
	// width, recorded once.
	RecoveryVirtual time.Duration `json:"recovery_virtual_ns"`
	// WidthsIdentical: the replay cost counters, virtual time, and work
	// counts were bit-identical at every configured width.
	WidthsIdentical bool `json:"widths_identical"`
}

// RecoveryScaleResult is the full ladder report plus the acceptance
// verdict: committed work grows ~10×, the no-reclamation baseline's
// recovery time grows with it, the checkpoint+truncate+compact config
// stays flat (max/min ≤ 1.10), and no width ever drifts a counter.
type RecoveryScaleResult struct {
	Config RecoveryScaleConfig `json:"config"`
	Rows   []RecoveryScaleRow  `json:"rows"`

	CommittedGrowth  float64 `json:"committed_growth"`  // top rung / bottom rung, compacted config
	BaselineGrowth   float64 `json:"baseline_growth"`   // recovery-time ratio, baseline config
	CompactedSpread  float64 `json:"compacted_spread"`  // max/min recovery time, compacted config
	BaselineGrows    bool    `json:"baseline_grows"`
	CompactedFlat    bool    `json:"compacted_flat"`
	WidthsIdentical  bool    `json:"widths_identical"`
	AllHold          bool    `json:"all_invariants_hold"`
}

// scaleEngine builds one rung's engine: a uniform debit/credit workload
// on a segmented stable-memory log (§5.4), sized so the checkpoint
// sweep's steady-state lag — not the total history — bounds what
// recovery must scan. Stable memory matters here: commits are durable on
// append, so the checkpointer's WAL-rule wait is zero and the sweep
// cycles fast enough for the redo bound to track the tip. Truncation
// runs every 8 commits to keep the reclaimable backlog (and with it the
// rung-to-rung variance of the scanned window) small.
func scaleEngine(cfg RecoveryScaleConfig, v scaleVariant) (*event.Sim, *txn.Engine, error) {
	dev := wal.NewDevice("log0", 10*time.Millisecond)
	sim := &event.Sim{}
	tc := txn.Config{
		Accounts:       2048,
		Terminals:      20,
		UpdatesPerTxn:  3,
		RecordsPerPage: 64,
		Seed:           cfg.Seed,
		TruncateLog:    v.truncate,
		TruncateEvery:  8,
		Log: wal.Config{
			Policy:          wal.StableMemory,
			Devices:         []*wal.Device{dev},
			PageSize:        4096,
			SegmentPages:    2,
			CompactSegments: v.compact,
		},
	}
	if v.checkpoint {
		tc.Checkpoint = true
		tc.DataDevice = wal.NewDevice("data", 10*time.Millisecond)
	}
	e, err := txn.New(sim, tc)
	return sim, e, err
}

// runScaleCell runs one rung to runFor, crashes 1 ms short of it, and
// replays the captured crash at every width.
func runScaleCell(cfg RecoveryScaleConfig, v scaleVariant, runFor time.Duration) (RecoveryScaleRow, error) {
	row := RecoveryScaleRow{Config: v.name, RunFor: runFor}
	sim, e, err := scaleEngine(cfg, v)
	if err != nil {
		return row, err
	}
	crashAt := runFor - time.Millisecond
	var in recovery.SegInput
	var capErr error
	captured := false
	sim.At(crashAt, func() {
		in, capErr = e.CrashInputSegmented()
		captured = true
	})
	st := e.Run(runFor)
	row.Committed = st.Committed
	if !captured || capErr != nil {
		return row, fmt.Errorf("recovery scale: crash capture at %v failed: %v", crashAt, capErr)
	}

	row.WidthsIdentical = true
	var base recovery.Info
	for i, w := range cfg.Widths {
		run := in
		run.Parallelism = w
		_, info, err := recovery.RecoverSegmented(run)
		if err != nil {
			return row, fmt.Errorf("recovery scale (%s, %v, width %d): %w", v.name, runFor, w, err)
		}
		if i == 0 {
			base = info
			row.LogScanned = info.LogScanned
			row.SegmentsScanned = info.SegmentsScanned
			row.SegmentsSkipped = info.SegmentsSkipped
			row.CompactedBytes = info.CompactedBytes
			row.RecoveryVirtual = info.Virtual
			continue
		}
		if info.Counters != base.Counters || info.Virtual != base.Virtual ||
			info.Redone != base.Redone || info.Undone != base.Undone ||
			info.SegmentsScanned != base.SegmentsScanned ||
			info.SegmentsSkipped != base.SegmentsSkipped {
			row.WidthsIdentical = false
		}
	}
	return row, nil
}

// RunRecoveryScale runs the ladder: every variant at every run length.
func RunRecoveryScale(cfg RecoveryScaleConfig) (*RecoveryScaleResult, error) {
	if len(cfg.RunFors) < 2 || len(cfg.Widths) == 0 {
		return nil, fmt.Errorf("recovery scale: need ≥2 run lengths and ≥1 width")
	}
	res := &RecoveryScaleResult{Config: cfg, WidthsIdentical: true}
	cells := make(map[string][]RecoveryScaleRow)
	for _, v := range scaleVariants {
		for _, runFor := range cfg.RunFors {
			row, err := runScaleCell(cfg, v, runFor)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			cells[v.name] = append(cells[v.name], row)
			if !row.WidthsIdentical {
				res.WidthsIdentical = false
			}
		}
	}

	baseline := cells["baseline"]
	compacted := cells["ckpt+truncate+compact"]
	first, last := compacted[0], compacted[len(compacted)-1]
	if first.Committed > 0 {
		res.CommittedGrowth = float64(last.Committed) / float64(first.Committed)
	}
	if baseline[0].RecoveryVirtual > 0 {
		res.BaselineGrowth = float64(baseline[len(baseline)-1].RecoveryVirtual) / float64(baseline[0].RecoveryVirtual)
	}
	min, max := compacted[0].RecoveryVirtual, compacted[0].RecoveryVirtual
	for _, row := range compacted {
		if row.RecoveryVirtual < min {
			min = row.RecoveryVirtual
		}
		if row.RecoveryVirtual > max {
			max = row.RecoveryVirtual
		}
	}
	if min > 0 {
		res.CompactedSpread = float64(max) / float64(min)
	}
	// The bars: committed work really spread ~10×, the baseline's recovery
	// cost follows the log, the reclaiming config's does not.
	res.BaselineGrows = res.BaselineGrowth >= 2
	res.CompactedFlat = res.CompactedSpread > 0 && res.CompactedSpread <= 1.10
	res.AllHold = res.WidthsIdentical && res.BaselineGrows && res.CompactedFlat &&
		res.CommittedGrowth >= 8
	return res, nil
}

// Print renders the ladder.
func (r *RecoveryScaleResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Recovery time vs log length — segmented log, parallel replay (§5.5–5.6)")
	fmt.Fprintf(w, "  widths %v replay each crash; counters must be bit-identical across them\n\n", r.Config.Widths)
	fmt.Fprintf(w, "  %-22s %7s %10s %8s %8s %8s %10s %10s %6s\n",
		"config", "run", "committed", "scanned", "skipped", "records", "compacted", "recovery", "widths")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-22s %7s %10d %8d %8d %8d %10d %10s %6v\n",
			row.Config, row.RunFor, row.Committed, row.SegmentsScanned, row.SegmentsSkipped,
			row.LogScanned, row.CompactedBytes, row.RecoveryVirtual, row.WidthsIdentical)
	}
	fmt.Fprintf(w, "\n  committed growth (bottom→top rung): %.1f×\n", r.CommittedGrowth)
	fmt.Fprintf(w, "  baseline recovery growth: %.2f× (must grow: %v)\n", r.BaselineGrowth, r.BaselineGrows)
	fmt.Fprintf(w, "  ckpt+truncate+compact spread: %.3f (flat ≤1.10: %v)\n", r.CompactedSpread, r.CompactedFlat)
	fmt.Fprintf(w, "  replay counters identical across widths: %v\n", r.WidthsIdentical)
	fmt.Fprintf(w, "  ALL INVARIANTS HOLD: %v\n", r.AllHold)
}

// WriteJSON writes the machine-readable result.
func (r *RecoveryScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
