package experiments

import (
	"testing"

	"mmdb"
)

// TestWireLadderDeterminism runs a shrunken wire ladder and checks its
// core claim: the per-statement virtual counters arriving in DONE
// frames are bit-identical at every connection count.
func TestWireLadderDeterminism(t *testing.T) {
	cfg := DefaultWireConfig()
	cfg.Clients = []int{1, 3}
	cfg.QueriesPerClient = 2
	cfg.ThinkTime = 0
	cfg.Tuples = 600
	cfg.Groups = 12
	res, err := RunWire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllIdentical {
		t.Fatal("virtual counters drifted across connection counts")
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.VirtualMatch {
			t.Fatalf("rung %d clients: counters not identical", row.Clients)
		}
		if row.Statements != row.Clients*cfg.QueriesPerClient*len(wireStatements) {
			t.Fatalf("rung %d clients ran %d statements", row.Clients, row.Statements)
		}
		for s, c := range row.Counters {
			if (c == mmdb.Counters{}) {
				t.Fatalf("statement %d billed nothing", s)
			}
		}
	}
}
