package experiments

import (
	"fmt"
	"io"

	"mmdb/internal/cost"
	"mmdb/internal/planner"
)

// PlannerResult compares full Selinger enumeration against the §4
// hash-only reduction on the same query at two memory sizes.
type PlannerResult struct {
	Rows []PlannerRow
}

// PlannerRow is one (memory, mode) outcome.
type PlannerRow struct {
	Memory          int
	Mode            string
	Weighted        float64
	Order           []string
	StatesExplored  int
	PlansConsidered int
}

// plannerQuery builds the running example: a four-relation star —
// a large fact table joined to three dimensions, one of which carries a
// highly selective predicate. The §4 expectation: the optimizer pushes the
// selective dimension to the bottom, and with ample memory the hash-only
// planner finds an equally cheap plan while exploring fewer states.
func plannerQuery(m int) planner.Query {
	return planner.Query{
		M:      m,
		Params: cost.DefaultParams(),
		W:      1,
		Tables: []planner.Table{
			{Name: "orders", Tuples: 400000, TuplesPerPage: 40, Width: 100, Selectivity: 1,
				Distinct: map[int]int64{0: 40000, 1: 2000, 2: 500}},
			{Name: "customers", Tuples: 40000, TuplesPerPage: 40, Width: 100, Selectivity: 1,
				Distinct: map[int]int64{0: 40000}},
			{Name: "parts", Tuples: 2000, TuplesPerPage: 40, Width: 100, Selectivity: 0.05,
				Distinct: map[int]int64{1: 2000}},
			{Name: "regions", Tuples: 500, TuplesPerPage: 40, Width: 100, Selectivity: 1,
				Distinct: map[int]int64{2: 500}},
		},
		Edges: []planner.Edge{
			{A: 0, B: 1, Class: 0},
			{A: 0, B: 2, Class: 1},
			{A: 0, B: 3, Class: 2},
		},
	}
}

// RunPlanner runs the comparison.
func RunPlanner() (*PlannerResult, error) {
	res := &PlannerResult{}
	for _, m := range []int{50, 20000} { // tight memory vs "all of R fits"
		q := plannerQuery(m)
		full, err := planner.Optimize(q)
		if err != nil {
			return nil, err
		}
		hash, err := planner.OptimizeHashOnly(q)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows,
			PlannerRow{Memory: m, Mode: "full-selinger", Weighted: full.Weighted,
				Order: full.Order(q), StatesExplored: full.StatesExplored, PlansConsidered: full.PlansConsidered},
			PlannerRow{Memory: m, Mode: "hash-only (§4)", Weighted: hash.Weighted,
				Order: hash.Order(q), StatesExplored: hash.StatesExplored, PlansConsidered: hash.PlansConsidered},
		)
	}
	return res, nil
}

// ReductionHoldsAtLargeMemory reports whether, at the large-memory
// setting, the hash-only planner matched the full planner's cost within
// 1% while exploring fewer states.
func (r *PlannerResult) ReductionHoldsAtLargeMemory() bool {
	var full, hash *PlannerRow
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Memory >= 20000 {
			if row.Mode == "full-selinger" {
				full = row
			} else {
				hash = row
			}
		}
	}
	if full == nil || hash == nil {
		return false
	}
	return hash.Weighted <= full.Weighted*1.01 && hash.PlansConsidered < full.PlansConsidered
}

// Print renders the comparison.
func (r *PlannerResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§4 access planning — full Selinger vs the large-memory hash-only reduction")
	fmt.Fprintln(w, "Query: orders ⋈ customers ⋈ parts(σ 5%) ⋈ regions, W=1")
	fmt.Fprintf(w, "  %-8s %-15s %12s %8s %8s  %s\n", "|M|", "mode", "W*CPU+IO", "states", "plans", "join order")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %-15s %12.1f %8d %8d  %v\n",
			row.Memory, row.Mode, row.Weighted, row.StatesExplored, row.PlansConsidered, row.Order)
	}
	fmt.Fprintf(w, "  §4 reduction holds at large memory (same cost, fewer states): %v\n",
		r.ReductionHoldsAtLargeMemory())
}
