package experiments

import (
	"fmt"
	"io"

	"mmdb/internal/core"
	"mmdb/internal/cost"
	"mmdb/internal/join"
	"mmdb/internal/simio"
	"mmdb/internal/workload"
)

// Figure1Config parameterizes the join-algorithm comparison.
type Figure1Config struct {
	Params cost.Params
	W      core.JoinWorkload // analytic workload (Table 2 by default)
	Ratios []float64         // |M|/(|R|*F) grid

	// Executed run: the same relations scaled down by ScaleDiv so the real
	// operators finish quickly; the virtual clock still uses the Table 2
	// device times, so shapes are preserved.
	ScaleDiv       int
	ExecutedRatios []float64
	Seed           int64
	// Parallelism is forwarded to each executed join's Spec. The virtual
	// times it reports are identical at every setting (the clock counts
	// operations, not goroutines); the knob only shortens wall time.
	Parallelism int
}

// DefaultFigure1Config returns the Table 2 settings with a 20x scale-down
// for the executed runs.
func DefaultFigure1Config() Figure1Config {
	return Figure1Config{
		Params:         cost.DefaultParams(),
		W:              core.Table2Workload(),
		Ratios:         core.DefaultRatios(),
		ScaleDiv:       20,
		ExecutedRatios: []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0},
		Seed:           7,
	}
}

// ExecutedPoint is one measured grid point: virtual seconds per algorithm.
type ExecutedPoint struct {
	Ratio                                float64
	M                                    int
	SortMerge, SimpleHash, Grace, Hybrid float64 // virtual seconds
	Matches                              int64
}

// Figure1Result holds the analytic curves and the executed measurements.
type Figure1Result struct {
	Config   Figure1Config
	Analytic []core.Figure1Point
	Executed []ExecutedPoint
}

// RunFigure1 regenerates Figure 1: the analytic §3 cost curves at full
// Table 2 scale, and the four real operators executed on scaled-down
// relations with every primitive charged to the virtual clock.
func RunFigure1(cfg Figure1Config) (*Figure1Result, error) {
	analytic, err := core.Figure1(cfg.Params, cfg.W, cfg.Ratios)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Config: cfg, Analytic: analytic}
	if cfg.ScaleDiv <= 0 {
		return res, nil
	}

	// Build the scaled-down relations once; each algorithm execution gets
	// a fresh clock reading (counters are deltas inside join.Run).
	clock := cost.NewClock(cfg.Params)
	disk := simio.NewDisk(clock, 4096)
	rPages := cfg.W.RPages / cfg.ScaleDiv
	sPages := cfg.W.SPages / cfg.ScaleDiv
	rTuples := rPages * cfg.W.RTuplesPerPage
	sTuples := sPages * cfg.W.STuplesPerPage
	r, err := workload.Generate(disk, workload.RelationSpec{
		Name: "fig1.R", Tuples: rTuples, KeyDomain: int64(rTuples), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	s, err := workload.Generate(disk, workload.RelationSpec{
		Name: "fig1.S", Tuples: sTuples, KeyDomain: int64(rTuples), Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	minM := core.MinMemoryPages(cfg.Params, core.JoinWorkload{
		RPages: rPages, SPages: sPages,
		RTuplesPerPage: cfg.W.RTuplesPerPage, STuplesPerPage: cfg.W.STuplesPerPage,
	})
	for _, ratio := range cfg.ExecutedRatios {
		m := int(ratio * float64(rPages) * cfg.Params.F)
		if m < minM {
			continue
		}
		pt := ExecutedPoint{Ratio: ratio, M: m}
		spec := join.Spec{R: r, S: s, M: m, F: cfg.Params.F, Parallelism: cfg.Parallelism}
		for _, alg := range []join.Algorithm{join.SortMerge, join.SimpleHash, join.GraceHash, join.HybridHash} {
			out, err := join.Run(alg, spec, nil)
			if err != nil {
				return nil, fmt.Errorf("figure1: %v at ratio %.2f: %w", alg, ratio, err)
			}
			secs := out.Counters.Time(cfg.Params).Seconds()
			switch alg {
			case join.SortMerge:
				pt.SortMerge = secs
			case join.SimpleHash:
				pt.SimpleHash = secs
			case join.GraceHash:
				pt.Grace = secs
			case join.HybridHash:
				pt.Hybrid = secs
			}
			pt.Matches = out.Matches
		}
		res.Executed = append(res.Executed, pt)
	}
	return res, nil
}

// Print renders the curves.
func (r *Figure1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 — execution time (virtual seconds) of the four join algorithms\n")
	fmt.Fprintf(w, "Workload: |R|=|S|=%d pages, %d tuples/page, F=%.1f (Table 2)\n\n",
		r.Config.W.RPages, r.Config.W.RTuplesPerPage, r.Config.Params.F)
	fmt.Fprintf(w, "Analytic model (paper's §3 cost formulas):\n")
	fmt.Fprintf(w, "  %-7s %-7s %11s %11s %11s %11s  %s\n", "ratio", "|M|", "sort-merge", "simple", "grace", "hybrid", "best")
	for _, pt := range r.Analytic {
		fmt.Fprintf(w, "  %-7.3f %-7d %11.1f %11.1f %11.1f %11.1f  %s\n",
			pt.Ratio, pt.M, pt.SortMerge.Total(), pt.SimpleHash.Total(),
			pt.GraceHash.Total(), pt.HybridHash.Total(), pt.Best())
	}
	if len(r.Executed) > 0 {
		fmt.Fprintf(w, "\nExecuted operators (1/%d scale, virtual clock, all primitives charged):\n", r.Config.ScaleDiv)
		fmt.Fprintf(w, "  %-7s %-7s %11s %11s %11s %11s %9s\n", "ratio", "|M|", "sort-merge", "simple", "grace", "hybrid", "matches")
		for _, pt := range r.Executed {
			fmt.Fprintf(w, "  %-7.3f %-7d %11.1f %11.1f %11.1f %11.1f %9d\n",
				pt.Ratio, pt.M, pt.SortMerge, pt.SimpleHash, pt.Grace, pt.Hybrid, pt.Matches)
		}
	}
}

// HybridBestShareExecuted returns the fraction of executed points where
// hybrid is within tol of the minimum.
func (r *Figure1Result) HybridBestShareExecuted(tol float64) float64 {
	if len(r.Executed) == 0 {
		return 0
	}
	n := 0
	for _, pt := range r.Executed {
		min := pt.SortMerge
		for _, v := range []float64{pt.SimpleHash, pt.Grace, pt.Hybrid} {
			if v < min {
				min = v
			}
		}
		if pt.Hybrid <= min*(1+tol) {
			n++
		}
	}
	return float64(n) / float64(len(r.Executed))
}
