package experiments

import (
	"fmt"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/fault"
	"mmdb/internal/recovery"
	"mmdb/internal/seglog"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// ChaosSegRow is one targeted segmented-log crash: the engine is run once
// to discover when the interesting writes happen (segment rotations,
// commit.meta slot rewrites, compaction installs), then re-run with a
// crash landed in the middle of one such write. The invariants are the
// same bar the monolithic grid holds plus the segmented one: recovery
// from the horizon-skipping path must equal a full scan of every
// surviving segment bit for bit.
type ChaosSegRow struct {
	Seed    int64         `json:"seed"`
	Target  string        `json:"target"` // rotation | meta | compaction
	CrashAt time.Duration `json:"crash_at_ns"`

	Committed       int   `json:"committed"`
	AckedAtCrash    int   `json:"acked_at_crash"`
	Undone          int   `json:"undone"`
	SegmentsScanned int   `json:"segments_scanned"`
	SegmentsSkipped int   `json:"segments_skipped"`
	CompactedBytes  int64 `json:"compacted_bytes"`

	// WindowFound: the discovery pass actually observed a write of this
	// kind, so the crash is aimed mid-write rather than guessed.
	WindowFound bool `json:"window_found"`
	// AckedDurable: every transaction acknowledged by crash time was found
	// committed by the full-scan recovery (no lost acks, even when the
	// crash lands inside a rotation or a commit.meta rewrite).
	AckedDurable bool `json:"acked_durable"`
	// SkipEqualsFull: recovering with the commit.meta horizon (segments
	// wholly below it skipped unread) yields the same store as ignoring
	// the horizon and scanning everything that survived.
	SkipEqualsFull bool `json:"skip_equals_full"`
}

// chaosSegConfig is the engine config for one segmented rung. Checkpoint
// plus truncation keep the commit.meta horizon moving (so skipping is
// real), and the slow sweep over hot pages leaves a standing window of
// cold-but-untruncated segments for the compactor to rewrite.
func chaosSegConfig(cfg ChaosConfig, seed int64, dev, data *wal.Device) txn.Config {
	return txn.Config{
		Accounts:       512,
		Terminals:      50,
		UpdatesPerTxn:  3,
		HotAccounts:    12,
		AbortEvery:     5,
		RecordsPerPage: 16,
		Seed:           seed,
		TruncateLog:    true,
		Checkpoint:     true,
		DataDevice:     data,
		Log: wal.Config{
			Policy:          wal.GroupCommit,
			Devices:         []*wal.Device{dev},
			PageSize:        256,
			SegmentPages:    4,
			CompactSegments: true,
		},
	}
}

// chaosSegEngine builds a fresh, identically-seeded engine for a rung.
// The tear injector is the same seed-offset scheme as the monolithic
// grid, so rotations and compaction installs happen over a torn medium.
func chaosSegEngine(cfg ChaosConfig, seed int64) (*event.Sim, *txn.Engine, *wal.Device, error) {
	inj := fault.NewInjector(seed).TornEvery("log0", cfg.TornEveryN+seed)
	dev := wal.NewDevice("log0", 10*time.Millisecond)
	dev.Injector = inj
	dev.ExposeTorn = true
	data := wal.NewDevice("data", 10*time.Millisecond)
	sim := &event.Sim{}
	e, err := txn.New(sim, chaosSegConfig(cfg, seed, dev, data))
	return sim, e, dev, err
}

// segCrashWindows runs the discovery pass: one full uncrashed run whose
// write intervals tell the replay pass where to aim. Virtual time is
// deterministic per seed, so the same instant lands inside the same write
// on the re-run.
func segCrashWindows(cfg ChaosConfig, seed int64) (map[string][]seglog.Window, error) {
	_, e, dev, err := chaosSegEngine(cfg, seed)
	if err != nil {
		return nil, err
	}
	e.Run(cfg.RunFor)
	dir := dev.SegmentDir()
	if dir == nil {
		return nil, fmt.Errorf("chaos: segmented rung has no segment dir")
	}
	return map[string][]seglog.Window{
		"rotation":   dir.RotationWindows(),
		"meta":       dir.MetaWindows(),
		"compaction": dir.CompactionWindows(),
	}, nil
}

// pickMidWrite chooses the crash instant: the midpoint of the last
// in-run window, deep enough into the run that the log has history on
// both sides of the horizon.
func pickMidWrite(ws []seglog.Window, runFor time.Duration) (time.Duration, bool) {
	for i := len(ws) - 1; i >= 0; i-- {
		mid := ws[i].Start + (ws[i].Done-ws[i].Start)/2
		if mid > 0 && mid < runFor {
			return mid, true
		}
	}
	return 0, false
}

// runChaosSeg runs one segmented rung: crash at the midpoint of a target
// write, recover twice (horizon-skipping and full scan), and check
// acked ⊆ committed plus skip ≡ full.
func runChaosSeg(cfg ChaosConfig, seed int64, target string, crashAt time.Duration) (ChaosSegRow, error) {
	row := ChaosSegRow{Seed: seed, Target: target, CrashAt: crashAt, WindowFound: true}
	sim, e, _, err := chaosSegEngine(cfg, seed)
	if err != nil {
		return row, err
	}
	var in recovery.SegInput
	var acked []wal.TxnID
	var capErr error
	captured := false
	sim.At(crashAt, func() {
		in, capErr = e.CrashInputSegmented()
		acked = e.AckedBy(crashAt)
		captured = true
	})
	e.Run(cfg.RunFor)
	if !captured || capErr != nil {
		return row, fmt.Errorf("chaos: segmented crash capture at %v failed: %v", crashAt, capErr)
	}

	in.Parallelism = 4
	stSkip, infoSkip, err := recovery.RecoverSegmented(in)
	if err != nil {
		return row, fmt.Errorf("chaos: segmented recovery (seed %d, %s @ %v): %w", seed, target, crashAt, err)
	}
	full := in
	full.IgnoreHorizon = true
	stFull, infoFull, err := recovery.RecoverSegmented(full)
	if err != nil {
		return row, fmt.Errorf("chaos: full-scan recovery (seed %d, %s @ %v): %w", seed, target, crashAt, err)
	}

	row.Committed = len(infoFull.Committed)
	row.AckedAtCrash = len(acked)
	row.Undone = infoFull.Undone
	row.SegmentsScanned = infoSkip.SegmentsScanned
	row.SegmentsSkipped = infoSkip.SegmentsSkipped
	row.CompactedBytes = infoSkip.CompactedBytes

	row.AckedDurable = true
	for _, id := range acked {
		if !infoFull.Committed[id] {
			row.AckedDurable = false
			break
		}
	}
	row.SkipEqualsFull = stSkip.Equal(stFull)
	return row, nil
}

// runChaosSegGrid runs the discovery pass once per seed and one targeted
// crash per write kind it observed.
func runChaosSegGrid(cfg ChaosConfig) ([]ChaosSegRow, error) {
	var rows []ChaosSegRow
	for _, seed := range cfg.Seeds {
		windows, err := segCrashWindows(cfg, seed)
		if err != nil {
			return nil, err
		}
		for _, target := range []string{"rotation", "meta", "compaction"} {
			at, ok := pickMidWrite(windows[target], cfg.RunFor)
			if !ok {
				// The run never performed this write: the rung cannot aim,
				// which itself fails the ladder (the config is tuned so all
				// three kinds happen).
				rows = append(rows, ChaosSegRow{Seed: seed, Target: target})
				continue
			}
			row, err := runChaosSeg(cfg, seed, target, at)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
