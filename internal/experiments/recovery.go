package experiments

import (
	"fmt"
	"io"
	"time"

	"mmdb/internal/event"
	"mmdb/internal/recovery"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// RecoveryLadderRow is one row of the §5.2/§5.4 throughput ladder.
type RecoveryLadderRow struct {
	Name          string
	Policy        wal.CommitPolicy
	Devices       int
	Compress      bool
	TPS           float64
	MeanGroupSize float64
	BytesToDisk   int64
	Committed     int64
}

// RecoveryLadderResult is the full ladder.
type RecoveryLadderResult struct {
	Rows     []RecoveryLadderRow
	Duration time.Duration
}

func ladderConfig(policy wal.CommitPolicy, devices int, compress bool, terminals int) txn.Config {
	var devs []*wal.Device
	for i := 0; i < devices; i++ {
		devs = append(devs, wal.NewDevice("log", 10*time.Millisecond))
	}
	return txn.Config{
		Accounts:  100000,
		Terminals: terminals,
		Seed:      11,
		Log: wal.Config{
			Policy:   policy,
			Devices:  devs,
			Compress: compress,
		},
	}
}

// RunRecoveryLadder reproduces the §5 throughput arithmetic: ~100 tps with
// one log write per commit, ~1000 tps with group commit (10 × 400-byte
// transactions per 4 KB page at 10 ms/write), multi-device scaling with
// topologically ordered commit groups, and stable-memory commit with log
// compression.
func RunRecoveryLadder(d time.Duration) (*RecoveryLadderResult, error) {
	cases := []struct {
		name      string
		policy    wal.CommitPolicy
		devices   int
		compress  bool
		terminals int
	}{
		{"flush-per-commit, 1 log", wal.FlushPerCommit, 1, false, 50},
		{"group-commit, 1 log", wal.GroupCommit, 1, false, 50},
		{"group-commit, 2 logs", wal.GroupCommit, 2, false, 100},
		{"group-commit, 4 logs", wal.GroupCommit, 4, false, 200},
		{"group-commit, 8 logs", wal.GroupCommit, 8, false, 400},
		{"stable memory, 1 log", wal.StableMemory, 1, false, 50},
		{"stable memory + compression", wal.StableMemory, 1, true, 50},
	}
	res := &RecoveryLadderResult{Duration: d}
	for _, c := range cases {
		sim := &event.Sim{}
		e, err := txn.New(sim, ladderConfig(c.policy, c.devices, c.compress, c.terminals))
		if err != nil {
			return nil, err
		}
		st := e.Run(d)
		res.Rows = append(res.Rows, RecoveryLadderRow{
			Name:          c.name,
			Policy:        c.policy,
			Devices:       c.devices,
			Compress:      c.compress,
			TPS:           st.TPS(),
			MeanGroupSize: st.Log.MeanGroupSize(),
			BytesToDisk:   st.Log.BytesToDisk,
			Committed:     st.Committed,
		})
	}
	return res, nil
}

// Print renders the ladder.
func (r *RecoveryLadderResult) Print(w io.Writer) {
	fmt.Fprintf(w, "§5 recovery — commit throughput ladder (%v virtual run, 10 ms/log-page,\n", r.Duration)
	fmt.Fprintln(w, "Gray banking transactions, ~400 log bytes each)")
	fmt.Fprintf(w, "  %-30s %9s %12s %14s\n", "configuration", "TPS", "mean group", "disk bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-30s %9.1f %12.2f %14d\n", row.Name, row.TPS, row.MeanGroupSize, row.BytesToDisk)
	}
	fmt.Fprintln(w, "  paper's claims: ~100 tps conventional; ~1000 tps with group commit;")
	fmt.Fprintln(w, "  multi-log scaling via topological commit ordering; stable memory bounded")
	fmt.Fprintln(w, "  by drain rate unless the log is compressed (§5.4).")
}

// CheckpointSweepRow is one point of the §5.3/§5.5 checkpoint study.
type CheckpointSweepRow struct {
	Name       string
	DataDevice time.Duration // checkpoint page write time (sweep speed)
	CkptPages  int64
	Redone     int
	LogScanned int
	RecoverOK  bool
}

// CheckpointSweepResult relates checkpoint effort to recovery work.
type CheckpointSweepResult struct {
	Rows []CheckpointSweepRow
}

// RunCheckpointSweep runs the same crash at the same virtual instant with
// increasingly aggressive background checkpointing and reports how much
// redo work recovery needed (§5.5: the oldest entry of the stable
// first-update table bounds the log replay).
func RunCheckpointSweep(runFor time.Duration) (*CheckpointSweepResult, error) {
	cases := []struct {
		name  string
		speed time.Duration // 0 = no checkpointing
	}{
		{"no checkpointing", 0},
		{"checkpoint, 20 ms/page", 20 * time.Millisecond},
		{"checkpoint, 10 ms/page", 10 * time.Millisecond},
		{"checkpoint, 2 ms/page", 2 * time.Millisecond},
	}
	res := &CheckpointSweepResult{}
	for _, c := range cases {
		cfg := ladderConfig(wal.GroupCommit, 1, false, 30)
		cfg.Accounts = 4096
		cfg.RecordsPerPage = 64
		if c.speed > 0 {
			cfg.Checkpoint = true
			cfg.DataDevice = wal.NewDevice("data", c.speed)
		}
		sim := &event.Sim{}
		e, err := txn.New(sim, cfg)
		if err != nil {
			return nil, err
		}
		var in recovery.Input
		var crashErr error
		sim.At(runFor-time.Millisecond, func() {
			in, crashErr = e.CrashInput()
		})
		st := e.Run(runFor)
		if crashErr != nil {
			return nil, crashErr
		}
		_, info, err := recovery.Recover(in)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CheckpointSweepRow{
			Name:       c.name,
			DataDevice: c.speed,
			CkptPages:  e.Stats().CkptPages,
			Redone:     info.Redone,
			LogScanned: info.LogScanned,
			RecoverOK:  true,
		})
		_ = st
	}
	return res, nil
}

// Print renders the sweep.
func (r *CheckpointSweepResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5.3/§5.5 — background checkpointing vs recovery redo work")
	fmt.Fprintf(w, "  %-26s %12s %12s %12s\n", "configuration", "ckpt pages", "redo records", "log scanned")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-26s %12d %12d %12d\n", row.Name, row.CkptPages, row.Redone, row.LogScanned)
	}
	fmt.Fprintln(w, "  faster sweeps advance the stable first-update table, shrinking redo.")
}
