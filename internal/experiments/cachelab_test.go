package experiments

import "testing"

// TestCachelabLadderHolds runs the ladder at smoke scale and requires the
// counter-identity gate to hold on every rung: every width x kernel cell
// reproduces one virtual profile.
func TestCachelabLadderHolds(t *testing.T) {
	cfg := DefaultCachelabConfig()
	cfg.Widths = []int{1, 4}
	cfg.BuildTuples = 2000
	cfg.ProbeTuples = 6000
	cfg.SortTuples = 4000
	cfg.Repeat = 1
	res, err := RunCachelab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllIdentical {
		for _, row := range res.Rows {
			if !row.CellsIdentical {
				t.Errorf("rung %s: cells diverged", row.Rung)
			}
		}
		t.Fatal("cachelab invariant violated at smoke scale")
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rungs, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Virtual.Rows == 0 {
			t.Errorf("rung %s produced no rows", row.Rung)
		}
		if len(row.Cells) != len(cfg.Widths)*2 {
			t.Errorf("rung %s: %d cells, want %d", row.Rung, len(row.Cells), len(cfg.Widths)*2)
		}
		for _, w := range cfg.Widths {
			if _, ok := row.KernelSpeedup[key(w)]; !ok {
				t.Errorf("rung %s: missing speedup for width %d", row.Rung, w)
			}
		}
	}
}

func key(w int) string {
	return "w=" + string(rune('0'+w))
}
