package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"mmdb"
)

// FailoverConfig drives the promotion/failover chaos ladder: a seeded
// grid of kill-points × replica counts × writer widths. Each cell runs
// concurrent writers against a cluster, springs one failure scenario on
// it mid-run, and checks the §5 contract lifted to the cluster: every
// acknowledged write is in the surviving committed prefix. Zero-loss
// scenarios (planned promotion, crash failover with the WAL tail
// retained) must lose nothing; the lost-WAL scenario must lose exactly
// what it admits to, as a typed LostTailError.
type FailoverConfig struct {
	// Replicas are the cluster sizes per cell.
	Replicas []int `json:"replicas"`
	// Widths are the concurrent writer counts. The total row budget is
	// fixed per rung and strided across writers, so the final acked set —
	// and therefore the canonical state hash — must be bit-identical
	// across widths.
	Widths []int `json:"widths"`
	// Rows is the total insert budget per cell (all writers combined).
	Rows int `json:"rows"`
	// Seed fixes the fault schedules.
	Seed int64 `json:"seed"`
}

// DefaultFailoverConfig covers replicas 1–2 at widths 1–4.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Replicas: []int{1, 2},
		Widths:   []int{1, 2, 4},
		Rows:     240,
		Seed:     17,
	}
}

// failoverScenarios names the ladder's kill-points.
var failoverScenarios = []string{
	"promote",          // planned switchover under concurrent writers
	"promote-abort",    // promotion to a stalled replica times out, fence lifts, retry succeeds
	"failover-live",    // primary dies mid-statement, links live: survivor drains
	"failover-stalled", // primary dies with a stalled link: expedited drain
	"failover-severed", // primary dies with every link severed: pending-tail replay
	"wallost",          // primary and its WAL die: typed LostTailError, prefix survives
}

// FailoverRow is one (scenario, replicas, width) cell.
type FailoverRow struct {
	Scenario string `json:"scenario"`
	Replicas int    `json:"replicas"`
	Width    int    `json:"width"`

	Acked         uint64 `json:"acked"`       // rows the writers were acknowledged
	AckedLSN      uint64 `json:"acked_lsn"`   // failover report: last acked op
	SettledLSN    uint64 `json:"settled_lsn"` // failover report: survivor's horizon
	TailRecovered uint64 `json:"tail_recovered"`
	TailLost      uint64 `json:"tail_lost"`
	Epoch         uint64 `json:"epoch"` // cluster epoch after the cell

	// ZeroLoss: every acked row is on the new primary (for wallost: the
	// surviving prefix is exactly the settled ops, nothing foreign).
	ZeroLoss bool `json:"zero_loss"`
	// Verified: after rejoin and catch-up, every replica is
	// byte-identical to the new primary.
	Verified bool `json:"verified"`
	// StateHash fingerprints the new primary's canonical state (sorted
	// acked ids); it must be identical across widths for zero-loss
	// scenarios.
	StateHash uint64 `json:"state_hash"`
}

// FailoverResult is the full ladder report. AllHold is the acceptance
// verdict the bench harness turns into a non-zero exit.
type FailoverResult struct {
	Config FailoverConfig `json:"config"`
	Rows   []FailoverRow  `json:"rows"`

	ZeroLossHold   bool `json:"zero_loss_holds"`
	VerifiedHold   bool `json:"verified_holds"`
	StateIdentical bool `json:"state_identical_across_widths"`
	// LostTyped: the wallost rungs surfaced their dropped tail as a
	// *mmdb.LostTailError whose Lost() matched the report.
	LostTyped bool `json:"lost_tail_typed"`
	AllHold   bool `json:"all_invariants_hold"`
}

// runFailoverWriters fans cfg.Rows inserts across width writers (writer
// w inserts ids w+1, w+1+width, ...), each retrying NOT_PRIMARY
// refusals against the cluster's current primary — the in-process
// analogue of the sqlclient reconnect loop. A refused write was never
// acknowledged, so the retry is idempotent by construction. Returns the
// total acked count.
func runFailoverWriters(ctx context.Context, cluster *mmdb.Cluster, rows, width int) (uint64, error) {
	var wg sync.WaitGroup
	var acked uint64
	var mu sync.Mutex
	errs := make(chan error, width)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := uint64(0)
			for id := w + 1; id <= rows; id += width {
				for {
					db := cluster.Primary()
					rel, err := db.Relation("acct")
					if err == nil {
						err = rel.Insert(mmdb.IntValue(int64(id)), mmdb.IntValue(int64(id*7)))
					}
					if err == nil {
						n++
						break
					}
					if !errors.Is(err, mmdb.ErrNotPrimary) {
						errs <- fmt.Errorf("writer %d id %d: %w", w, id, err)
						return
					}
					// Demoted under us mid-run: back off briefly and retry
					// against whoever is primary by then.
					select {
					case <-ctx.Done():
						errs <- ctx.Err()
						return
					case <-time.After(200 * time.Microsecond):
					}
				}
			}
			mu.Lock()
			acked += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return acked, err
	}
	return acked, nil
}

// awaitLSN blocks until the cluster LSN reaches at least n — the
// mid-run trigger for springing a kill-point while writers are active.
func awaitLSN(ctx context.Context, cluster *mmdb.Cluster, n uint64) error {
	for cluster.LSN() < n {
		select {
		case <-ctx.Done():
			return fmt.Errorf("failover: waiting for LSN %d (at %d): %w", n, cluster.LSN(), ctx.Err())
		case <-time.After(100 * time.Microsecond):
		}
	}
	return nil
}

// awaitBroken blocks until every replica link has hit its injected
// permanent fault. The severed scenarios need the links actually dead
// before the primary "dies": a survivor whose link still buffers the
// tail would legitimately drain it, and the rung would be vacuous.
func awaitBroken(ctx context.Context, cluster *mmdb.Cluster) error {
	for {
		broken := 0
		m := cluster.Metrics()
		for _, r := range m.Replicas {
			if r.Broken {
				broken++
			}
		}
		if broken == len(m.Replicas) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("failover: waiting for severed links (%d/%d broken): %w",
				broken, len(m.Replicas), ctx.Err())
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// failoverStateHash fingerprints the primary's canonical state: the
// sorted id set of the acct relation. Insert interleaving differs per
// run, so storage order is not comparable — the sorted set is.
func failoverStateHash(db *mmdb.Database) (uint64, int, error) {
	rel, err := db.Relation("acct")
	if err != nil {
		return 0, 0, err
	}
	schema := rel.Schema()
	var ids []int64
	if err := rel.Scan(func(t mmdb.Tuple) bool {
		ids = append(ids, schema.Get(t, 0).I)
		return true
	}); err != nil {
		return 0, 0, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := fnv.New64a()
	for _, id := range ids {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(id >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64(), len(ids), nil
}

// runFailoverCell runs one (scenario, replicas, width) cell.
func runFailoverCell(cfg FailoverConfig, scenario string, nReplicas, width int) (FailoverRow, error) {
	row := FailoverRow{Scenario: scenario, Replicas: nReplicas, Width: width}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cluster, err := mmdb.OpenCluster(mmdb.Options{MemoryPages: 64, MaxConcurrentQueries: width + 1}, nReplicas)
	if err != nil {
		return row, err
	}
	defer cluster.Close()
	if _, err := cluster.Primary().CreateRelation("acct", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "val", Kind: mmdb.Int64},
	)); err != nil {
		return row, err
	}

	// The kill-point fires after roughly a quarter of the inserts have
	// shipped (always past the CREATE, so schema ops are never in the
	// losable tail of these rungs).
	trigger := uint64(1 + cfg.Rows/4)
	var report *mmdb.FailoverReport
	var lost *mmdb.LostTailError

	switch scenario {
	case "promote-abort":
		// Stall the target's link from the start so it genuinely lags at
		// the trigger and the short-deadline promotion barrier must fail.
		cluster.ArmShipFaults(mmdb.NewFaultInjector(cfg.Seed).StallEvery("repl/ship/r0", 1, 50))
	case "failover-stalled":
		cluster.ArmShipFaults(mmdb.NewFaultInjector(cfg.Seed).StallEvery("repl/ship/r0", 1, 20))
	case "failover-severed", "wallost":
		cluster.ArmShipFaults(mmdb.NewFaultInjector(cfg.Seed).PermanentAfter("repl/ship", int64(trigger)))
	}

	if scenario == "wallost" {
		// Total primary loss is modeled on a quiesced workload: the
		// writers finish (everything acked), the links died mid-stream,
		// and then the primary and its WAL evaporate.
		acked, err := runFailoverWriters(ctx, cluster, cfg.Rows, width)
		if err != nil {
			return row, err
		}
		row.Acked = acked
		if err := awaitBroken(ctx, cluster); err != nil {
			return row, err
		}
		report, err = cluster.FailoverLostWAL(ctx)
		if !errors.As(err, &lost) {
			return row, fmt.Errorf("wallost: want *LostTailError, got %v", err)
		}
	} else {
		// Concurrent kill-point: spring the switch mid-statement while
		// the writers hammer.
		switchErr := make(chan error, 1)
		go func() {
			if err := awaitLSN(ctx, cluster, trigger); err != nil {
				switchErr <- err
				return
			}
			switch scenario {
			case "promote":
				switchErr <- cluster.Promote(ctx, 0)
			case "promote-abort":
				// The target's link has been stalled since the start; the
				// catch-up barrier cannot complete in time, and the failed
				// promotion must lift the fence.
				shortCtx, shortCancel := context.WithTimeout(ctx, 2*time.Millisecond)
				err := cluster.Promote(shortCtx, 0)
				shortCancel()
				if err == nil {
					switchErr <- fmt.Errorf("promote-abort: promotion to a stalled replica succeeded in 2ms")
					return
				}
				cluster.ArmShipFaults(nil)
				switchErr <- cluster.Promote(ctx, 0)
			case "failover-live", "failover-stalled", "failover-severed":
				if scenario == "failover-severed" {
					// Only declare the primary dead once the links are: a
					// still-buffering link would drain instead of forcing
					// the pending-tail replay this rung exists to test.
					if err := awaitBroken(ctx, cluster); err != nil {
						switchErr <- err
						return
					}
				}
				var err error
				report, err = cluster.Failover(ctx)
				switchErr <- err
			default:
				switchErr <- fmt.Errorf("unknown scenario %q", scenario)
			}
		}()
		acked, err := runFailoverWriters(ctx, cluster, cfg.Rows, width)
		if err != nil {
			return row, err
		}
		row.Acked = acked
		if err := <-switchErr; err != nil {
			return row, fmt.Errorf("%s: %w", scenario, err)
		}
	}
	if report != nil {
		row.AckedLSN = report.AckedLSN
		row.SettledLSN = report.SettledLSN
		row.TailRecovered = report.TailRecovered
		row.TailLost = report.TailLost
	}

	// Bring the demoted primary back as a replica, then prove the whole
	// cluster byte-identical again.
	if cluster.DownNode() != "" {
		if err := cluster.Rejoin(ctx); err != nil {
			return row, fmt.Errorf("%s: %w", scenario, err)
		}
	}
	// Prove the new primary is live: a post-switch write must ship to
	// everyone (and, after wallost, start the new epoch's history).
	rel, err := cluster.Primary().Relation("acct")
	if err != nil {
		return row, err
	}
	if err := rel.Insert(mmdb.IntValue(int64(cfg.Rows+1)), mmdb.IntValue(0)); err != nil {
		return row, fmt.Errorf("%s: post-switch write: %w", scenario, err)
	}
	if err := cluster.WaitCaughtUp(ctx); err != nil {
		return row, err
	}
	row.Verified = cluster.VerifyReplicas() == nil
	row.Epoch = cluster.Epoch()

	hash, n, err := failoverStateHash(cluster.Primary())
	if err != nil {
		return row, err
	}
	row.StateHash = hash
	surviving := uint64(n - 1) // minus the post-switch liveness row
	if scenario == "wallost" {
		// The honest-loss oracle: the survivor kept exactly the settled
		// prefix (CREATE + inserts), the typed error admits exactly the
		// difference, and nothing foreign appeared.
		row.ZeroLoss = lost != nil &&
			surviving == row.SettledLSN-1 && // ops minus the CREATE
			lost.Lost() == row.AckedLSN-row.SettledLSN &&
			surviving <= row.Acked
	} else {
		// The zero-loss oracle: acked ⊆ surviving committed prefix — and
		// since writers retried to completion, acked = everything.
		row.ZeroLoss = surviving == row.Acked && row.Acked == uint64(cfg.Rows)
	}
	return row, nil
}

// RunFailover runs the full promotion/failover chaos ladder.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if len(cfg.Replicas) == 0 || len(cfg.Widths) == 0 || cfg.Rows < 8 {
		return nil, fmt.Errorf("failover: need ≥1 replica count, ≥1 width, ≥8 rows")
	}
	res := &FailoverResult{Config: cfg, ZeroLossHold: true, VerifiedHold: true, StateIdentical: true, LostTyped: true}
	for _, scenario := range failoverScenarios {
		for _, nr := range cfg.Replicas {
			var baseHash uint64
			for wi, width := range cfg.Widths {
				row, err := runFailoverCell(cfg, scenario, nr, width)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, row)
				if !row.ZeroLoss {
					res.ZeroLossHold = false
				}
				if !row.Verified {
					res.VerifiedHold = false
				}
				if scenario == "wallost" {
					if row.TailLost == 0 || row.TailLost != row.AckedLSN-row.SettledLSN {
						res.LostTyped = false
					}
					continue // surviving prefix depends on interleaving
				}
				if wi == 0 {
					baseHash = row.StateHash
				} else if row.StateHash != baseHash {
					res.StateIdentical = false
				}
			}
		}
	}
	res.AllHold = res.ZeroLossHold && res.VerifiedHold && res.StateIdentical && res.LostTyped
	return res, nil
}

// Print renders the ladder.
func (r *FailoverResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Replica promotion & failover — zero acked-write loss across kill-points")
	fmt.Fprintf(w, "  %d rows per cell, strided across writers; kill-point fires mid-run\n\n", r.Config.Rows)
	fmt.Fprintf(w, "  %-17s %-8s %-6s %7s %7s %7s %9s %6s %6s %9s %9s\n",
		"scenario", "replicas", "width", "acked", "settled", "ackLSN", "recovered", "lost", "epoch", "zero-loss", "verified")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-17s %-8d %-6d %7d %7d %7d %9d %6d %6d %9v %9v\n",
			row.Scenario, row.Replicas, row.Width, row.Acked, row.SettledLSN, row.AckedLSN,
			row.TailRecovered, row.TailLost, row.Epoch, row.ZeroLoss, row.Verified)
	}
	fmt.Fprintf(w, "\n  acked ⊆ surviving committed prefix at every kill-point: %v\n", r.ZeroLossHold)
	fmt.Fprintf(w, "  replicas byte-identical after rejoin and catch-up: %v\n", r.VerifiedHold)
	fmt.Fprintf(w, "  state hash identical across widths: %v\n", r.StateIdentical)
	fmt.Fprintf(w, "  lost tail surfaced as typed LostTailError: %v\n", r.LostTyped)
	fmt.Fprintf(w, "  ALL INVARIANTS HOLD: %v\n", r.AllHold)
}

// WriteJSON writes the machine-readable result.
func (r *FailoverResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
