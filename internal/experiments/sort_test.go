package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// testSortConfig keeps the ladder small enough for the -race CI step.
func testSortConfig() SortConfig {
	return SortConfig{
		Widths:      []int{1, 2, 8},
		Chunks:      4,
		MemoryPages: []int{8, 256},
		Tuples:      3000,
		RefTuples:   150,
		PageSize:    512,
		Repeat:      1,
	}
}

// TestSortLadderDeterminism runs the ladder twice: every rung must hold
// the width-identical invariant, and the serialized report (virtual
// quantities only) must be byte-identical run to run.
func TestSortLadderDeterminism(t *testing.T) {
	marshal := func() []byte {
		res, err := RunSort(testSortConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllIdentical {
			data, _ := json.MarshalIndent(res, "", "  ")
			t.Fatalf("virtual counters differed across widths:\n%s", data)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same config, different reports:\n%s\n---\n%s", a, b)
	}
}

// TestSortLadderShape sanity-checks the two regimes: the small rung must
// sort externally (runs, merge IO), the large one fully in memory.
func TestSortLadderShape(t *testing.T) {
	res, err := RunSort(testSortConfig())
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Rows[0], res.Rows[1]
	if small.Virtual.Counters.SeqIOs == 0 || small.Virtual.Counters.RandIOs == 0 {
		t.Fatalf("small-memory rung did no run IO: %+v", small.Virtual)
	}
	if small.Virtual.InMemory != 0 {
		t.Fatalf("small-memory rung claims in-memory sorts: %+v", small.Virtual)
	}
	if large.Virtual.Counters.SeqIOs != 0 || large.Virtual.Counters.RandIOs != 0 {
		t.Fatalf("large-memory rung did run IO: %+v", large.Virtual)
	}
	if large.Virtual.Rows != int64(res.Config.Tuples) {
		t.Fatalf("OrderBy saw %d rows, want %d", large.Virtual.Rows, res.Config.Tuples)
	}
}
