package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestChaosDeterminism runs the full fault-plane ladder twice with the
// same config and requires byte-identical reports: the ladder is seeded
// virtual time end to end, so any divergence means wall-clock or unseeded
// randomness leaked into the fault plane.
func TestChaosDeterminism(t *testing.T) {
	cfg := DefaultChaosConfig()
	// One seed and two crash points keep the -race run short without
	// giving up the loser-undo coverage.
	cfg.Seeds = cfg.Seeds[:1]
	cfg.CrashPoints = cfg.CrashPoints[1:]

	marshal := func() []byte {
		res, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllHold {
			data, _ := json.MarshalIndent(res, "", "  ")
			t.Fatalf("chaos invariants violated:\n%s", data)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same config, different reports:\n%s\n---\n%s", a, b)
	}
}

// TestChaosLadderInvariants runs the default ladder once and checks the
// folded acceptance verdict plus each leg's individual bar.
func TestChaosLadderInvariants(t *testing.T) {
	res, err := RunChaos(DefaultChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHold {
		data, _ := json.MarshalIndent(res, "", "  ")
		t.Fatalf("chaos invariants violated:\n%s", data)
	}
	if res.TotalUndone == 0 {
		t.Fatal("crash grid never exercised loser undo")
	}
	torn := false
	for _, row := range res.Crash {
		if row.TornWrites > 0 && row.LostPages > 0 {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no grid cell actually tore a log page")
	}
	if res.Transient.TransientInjected == 0 {
		t.Fatal("transient leg injected nothing")
	}
	if !res.Revoked.Degraded {
		t.Fatal("revocation leg did not degrade to the GRACE fallback")
	}
}
