package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"mmdb"
	"mmdb/internal/wire"
	"mmdb/sqlclient"
)

// WireConfig drives the SQL-over-TCP serving experiment: a closed-loop
// workload where every client holds one wire connection and runs the
// same SQL statement mix back to back against an in-process wire
// server. Slots stay constant across the client ladder, so the static
// memory broker hands every server-side session the identical grant —
// the per-statement virtual counters that come back in DONE frames must
// therefore be bit-identical at every rung; any drift fails the run.
type WireConfig struct {
	Clients          []int // ladder of concurrent wire connections
	Slots            int   // MaxConcurrentQueries, fixed across the ladder
	QueueDepth       int   // admission queue bound
	QueriesPerClient int   // statement-mix iterations per client
	// ThinkTime is each client's pause between statements (the §5.1
	// closed-loop terminal model, now with a TCP hop inside the loop).
	ThinkTime   time.Duration
	Tuples      int // rows in emp
	Groups      int // rows in dept
	MemoryPages int
	PageSize    int
}

// DefaultWireConfig sizes the ladder to run in a few seconds.
func DefaultWireConfig() WireConfig {
	return WireConfig{
		Clients:          []int{1, 2, 4, 8},
		Slots:            8,
		QueueDepth:       64,
		QueriesPerClient: 8,
		ThinkTime:        2 * time.Millisecond,
		Tuples:           4000,
		Groups:           40,
		MemoryPages:      256,
		PageSize:         1024,
	}
}

// wireStatements is the per-iteration statement mix: a filtered scan,
// a two-table join, and a grouped aggregate — one statement per SQL
// execution path that bills differently.
var wireStatements = []string{
	"SELECT id, salary FROM emp WHERE salary > 1500 ORDER BY id LIMIT 50",
	"SELECT emp.id, dept.budget FROM emp JOIN dept ON emp.dept = dept.id WHERE dept.budget >= 200",
	"SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept ORDER BY dept",
}

// WireRow is one rung of the connection ladder.
type WireRow struct {
	Clients      int             `json:"clients"`
	Statements   int             `json:"statements"`
	Wall         time.Duration   `json:"wall_ns"`
	Throughput   float64         `json:"statements_per_sec"`
	QueuedP50    time.Duration   `json:"queued_p50_ns"`
	QueuedP95    time.Duration   `json:"queued_p95_ns"`
	Counters     []mmdb.Counters `json:"statement_counters"` // one per statement in the mix
	VirtualMatch bool            `json:"virtual_identical"`  // counters identical to the 1-client rung
}

// WireResult is the full ladder plus the workload parameters.
type WireResult struct {
	Config       WireConfig `json:"config"`
	Statements   []string   `json:"statements"`
	Rows         []WireRow  `json:"rows"`
	AllIdentical bool       `json:"all_identical"`
}

// RunWire runs the connection ladder. Every rung gets a fresh,
// identically loaded engine behind a fresh in-process server, so rungs
// are independent and the cross-rung counter comparison is meaningful.
func RunWire(cfg WireConfig) (*WireResult, error) {
	res := &WireResult{Config: cfg, Statements: wireStatements, AllIdentical: true}
	var baseline []mmdb.Counters
	for _, clients := range cfg.Clients {
		db, err := loadConcurrencyDB(ConcurrencyConfig{
			PageSize:    cfg.PageSize,
			MemoryPages: cfg.MemoryPages,
			Slots:       cfg.Slots,
			QueueDepth:  cfg.QueueDepth,
			Tuples:      cfg.Tuples,
			Groups:      cfg.Groups,
		})
		if err != nil {
			return nil, err
		}
		srv := &wire.Server{DB: db, Name: "mmdbench"}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve()

		total := clients * cfg.QueriesPerClient * len(wireStatements)
		queued := make([]time.Duration, 0, total)
		// counters[s] collects every client's bill for statement s.
		counters := make([][]mmdb.Counters, len(wireStatements))
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error

		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := sqlclient.Dial(addr.String())
				if err == nil {
					defer cl.Close()
					for q := 0; q < cfg.QueriesPerClient && err == nil; q++ {
						if cfg.ThinkTime > 0 {
							time.Sleep(cfg.ThinkTime)
						}
						for s, stmt := range wireStatements {
							var r *sqlclient.Result
							if r, err = cl.Query(stmt); err != nil {
								break
							}
							mu.Lock()
							queued = append(queued, r.Queued)
							counters[s] = append(counters[s], r.Counters)
							mu.Unlock()
						}
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		srv.Close()
		if firstErr != nil {
			return nil, firstErr
		}

		// Every statement must bill identically for every client at
		// every rung — the wire hop may change wall time and queueing,
		// never the virtual clock.
		row := WireRow{Clients: clients, Statements: total, Wall: wall,
			Throughput: float64(total) / wall.Seconds(), VirtualMatch: true}
		for s := range wireStatements {
			if len(counters[s]) == 0 {
				return nil, fmt.Errorf("experiments: statement %d never ran", s)
			}
			first := counters[s][0]
			row.Counters = append(row.Counters, first)
			for _, c := range counters[s][1:] {
				if c != first {
					row.VirtualMatch = false
				}
			}
		}
		if baseline == nil {
			baseline = row.Counters
		} else {
			for s := range baseline {
				if row.Counters[s] != baseline[s] {
					row.VirtualMatch = false
				}
			}
		}
		if !row.VirtualMatch {
			res.AllIdentical = false
		}
		sort.Slice(queued, func(i, j int) bool { return queued[i] < queued[j] })
		row.QueuedP50 = percentile(queued, 0.50)
		row.QueuedP95 = percentile(queued, 0.95)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the human-readable report.
func (r *WireResult) Print(w io.Writer) {
	fmt.Fprintf(w, "SQL over the wire — closed-loop statement mix via TCP connections\n")
	fmt.Fprintf(w, "(%d slots, %d-page |M| → %d-page static grants, %d iterations/client × %d statements, %s think time)\n\n",
		r.Config.Slots, r.Config.MemoryPages, r.Config.MemoryPages/r.Config.Slots,
		r.Config.QueriesPerClient, len(r.Statements), r.Config.ThinkTime)
	fmt.Fprintf(w, "%8s %11s %14s %12s %12s %10s\n",
		"clients", "statements", "statements/s", "queued p50", "queued p95", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %11d %14.1f %12s %12s %10v\n",
			row.Clients, row.Statements, row.Throughput,
			row.QueuedP50.Round(time.Microsecond), row.QueuedP95.Round(time.Microsecond),
			row.VirtualMatch)
	}
	if len(r.Rows) >= 2 {
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		if first.Throughput > 0 {
			fmt.Fprintf(w, "\nspeedup %d→%d clients: %.2fx\n",
				first.Clients, last.Clients, last.Throughput/first.Throughput)
		}
	}
}

// WriteJSON writes the machine-readable result.
func (r *WireResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
