package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mmdb"
)

// PriorityConfig drives the multiclass admission experiment: a
// saturating closed-loop batch join stream offered by BatchClients runs
// alongside a terminal-style interactive stream of short selections, and
// the same mixed workload is replayed across an admission-policy ladder —
// single-class FIFO (the PR 2 baseline: interactive queries tagged
// Batch), strict priority, and weighted fair. Engine options (slots,
// |M|, reservations) are identical at every rung, so static memory
// grants — and therefore every query's virtual-clock result — are
// bit-identical across rungs and to a serial run; the rungs trade
// wall-clock queueing only.
type PriorityConfig struct {
	Rungs      []string // ladder of pick policies: fifo|strict|weighted
	Slots      int      // MaxConcurrentQueries, fixed across the ladder
	QueueDepth int      // per-class admission queue bound

	BatchClients       int // closed-loop batch join clients
	InteractiveClients int // terminal-style clients
	InteractiveQueries int // selections per interactive client
	// ThinkJoins is the §5.1 terminal think time, expressed as batch-join
	// completions between interactive arrivals (K completions ≈ K×D of
	// offered batch work). Pacing arrivals off engine progress instead of
	// a wall-clock timer keeps the arrival process meaningful on a
	// single-CPU host, where the saturating closed-loop clients can
	// starve runtime timer wakeups for seconds.
	ThinkJoins          int
	InteractiveWeight   int // WeightedFair share for Interactive
	ReservedInteractive int // pages only interactive grants may draw

	Tuples      int // rows in the probe relation
	Groups      int // rows in the build relation
	MemoryPages int
	PageSize    int
}

// DefaultPriorityConfig sizes the workload so the full ladder runs in a
// few seconds of wall time on one core, with the batch stream saturating
// the slots for the whole interactive stream at every rung.
func DefaultPriorityConfig() PriorityConfig {
	return PriorityConfig{
		Rungs:               []string{"fifo", "strict", "weighted"},
		Slots:               2,
		QueueDepth:          64,
		BatchClients:        14,
		InteractiveClients:  2,
		InteractiveQueries:  100,
		ThinkJoins:          4,
		InteractiveWeight:   8,
		ReservedInteractive: 32,
		Tuples:              12000,
		Groups:              40,
		MemoryPages:         256,
		PageSize:            1024,
	}
}

// PriorityClassStats reports one class's side of a rung.
type PriorityClassStats struct {
	Queries    int           `json:"queries"`
	Throughput float64       `json:"queries_per_sec"`
	QueuedP50  time.Duration `json:"queued_p50_ns"`
	QueuedP95  time.Duration `json:"queued_p95_ns"`
	QueuedP99  time.Duration `json:"queued_p99_ns"`
	QueuedMax  time.Duration `json:"queued_max_ns"`
	Rejected   uint64        `json:"rejected"`
	GrantPages int           `json:"grant_pages"`
}

// PriorityRow is one rung of the policy ladder.
type PriorityRow struct {
	Policy       string             `json:"policy"`
	Wall         time.Duration      `json:"wall_ns"`
	Interactive  PriorityClassStats `json:"interactive"`
	Batch        PriorityClassStats `json:"batch"`
	VirtualMatch bool               `json:"virtual_identical"` // per-query results identical to the serial run
}

// PriorityResult is the full ladder plus the acceptance ratios against
// the single-class FIFO baseline.
type PriorityResult struct {
	Config PriorityConfig `json:"config"`
	Rows   []PriorityRow  `json:"rows"`

	// StrictInteractiveP95Ratio is strict-priority interactive queued
	// p95 over the FIFO baseline's (smaller is better; the acceptance
	// bar is <= 0.25).
	StrictInteractiveP95Ratio float64 `json:"strict_interactive_p95_ratio"`
	// StrictBatchThroughputRatio is strict-priority batch throughput
	// over the FIFO baseline's (the acceptance bar is >= 0.85).
	StrictBatchThroughputRatio float64 `json:"strict_batch_throughput_ratio"`
}

func loadPriorityDB(cfg PriorityConfig, policy mmdb.PickPolicy) (*mmdb.Database, error) {
	opts := mmdb.Options{
		PageSize:             cfg.PageSize,
		MemoryPages:          cfg.MemoryPages,
		MaxConcurrentQueries: cfg.Slots,
		QueueDepth:           cfg.QueueDepth,
		PickPolicy:           policy,
	}
	opts.Classes[mmdb.Interactive].ReservedPages = cfg.ReservedInteractive
	opts.Classes[mmdb.Interactive].Weight = cfg.InteractiveWeight
	db, err := mmdb.Open(opts)
	if err != nil {
		return nil, err
	}
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Tuples; i++ {
		err := emp.Insert(
			mmdb.IntValue(int64(i)),
			mmdb.IntValue(int64(i%cfg.Groups)),
			mmdb.IntValue(int64(1000+i%700)),
		)
		if err != nil {
			return nil, err
		}
	}
	if err := emp.Flush(); err != nil {
		return nil, err
	}
	dept, err := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "budget", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Groups; i++ {
		if err := dept.Insert(mmdb.IntValue(int64(i)), mmdb.IntValue(int64(i*10))); err != nil {
			return nil, err
		}
	}
	if err := dept.Flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// prioritySelect is the interactive query: a short predicate scan of the
// small relation, run in a session of the given class. It returns the
// row count and the session's virtual-clock counters for the
// bit-identical check.
func prioritySelect(db *mmdb.Database, class mmdb.QueryClass) (int, mmdb.Counters, time.Duration, error) {
	pred, err := db.Where("dept", "budget", mmdb.Ge, mmdb.IntValue(0))
	if err != nil {
		return 0, mmdb.Counters{}, 0, err
	}
	s, err := db.NewSession(context.Background(), mmdb.WithClass(class))
	if err != nil {
		return 0, mmdb.Counters{}, 0, err
	}
	defer s.Close()
	rows := 0
	if err := s.Select(pred, func(mmdb.Tuple) bool { rows++; return true }); err != nil {
		return 0, mmdb.Counters{}, 0, err
	}
	return rows, s.Counters(), s.QueuedFor(), nil
}

// priorityJoin is the batch query: the hybrid-hash join stream, run in a
// Batch-class session.
func priorityJoin(db *mmdb.Database) (mmdb.JoinResult, time.Duration, error) {
	s, err := db.NewSession(context.Background(), mmdb.WithClass(mmdb.Batch))
	if err != nil {
		return mmdb.JoinResult{}, 0, err
	}
	defer s.Close()
	res, err := s.Join(mmdb.HybridHash, "emp", "dept", "dept", "id", nil)
	return res, s.QueuedFor(), err
}

func priorityPercentiles(samples []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(samples) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentile(sorted, 0.50), percentile(sorted, 0.95),
		percentile(sorted, 0.99), sorted[len(sorted)-1]
}

// RunPriority runs the admission-policy ladder. Every rung gets a fresh,
// identically loaded engine; the batch stream saturates the slots until
// the interactive stream completes, so every rung sees the same offered
// batch load.
func RunPriority(cfg PriorityConfig) (*PriorityResult, error) {
	// On a single-processor runtime the closed-loop clients form an
	// unbroken ready-wakeup chain that can starve a woken waiter in the
	// scheduler's local run queue for seconds, turning wall-clock rungs
	// bimodal. A second processor breaks the chain through work stealing,
	// so floor GOMAXPROCS at 2 for the duration of the ladder.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	res := &PriorityResult{Config: cfg}

	// Serial reference: identical Options, queries one at a time, so
	// static grants — and per-query virtual results — must match every
	// rung bit for bit.
	serialDB, err := loadPriorityDB(cfg, mmdb.StrictPriority)
	if err != nil {
		return nil, err
	}
	wantJoin, _, err := priorityJoin(serialDB)
	if err != nil {
		return nil, err
	}
	wantRows, wantCounters, _, err := prioritySelect(serialDB, mmdb.Interactive)
	if err != nil {
		return nil, err
	}

	var fifoRow *PriorityRow
	for _, rung := range cfg.Rungs {
		var policy mmdb.PickPolicy
		interactiveClass := mmdb.Interactive
		switch rung {
		case "fifo":
			// The PR 2 baseline: one class, one queue — interactive
			// queries are tagged Batch and wait behind the bulk backlog.
			policy, interactiveClass = mmdb.StrictPriority, mmdb.Batch
		case "strict":
			policy = mmdb.StrictPriority
		case "weighted":
			policy = mmdb.WeightedFair
		default:
			return nil, fmt.Errorf("experiments: unknown priority rung %q", rung)
		}
		db, err := loadPriorityDB(cfg, policy)
		if err != nil {
			return nil, err
		}

		var (
			mu        sync.Mutex
			firstErr  error
			intQueued []time.Duration
			batQueued []time.Duration
			batJoins  int
			identical = true
			stop      atomic.Bool
		)
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}

		start := time.Now()
		tick := make(chan struct{}, 1) // batch completions pace interactive think
		var batWG sync.WaitGroup
		for c := 0; c < cfg.BatchClients; c++ {
			batWG.Add(1)
			go func() {
				defer batWG.Done()
				for !stop.Load() {
					jr, queued, err := priorityJoin(db)
					if err != nil {
						fail(err)
						return
					}
					select {
					case tick <- struct{}{}:
					default:
					}
					mu.Lock()
					batJoins++
					batQueued = append(batQueued, queued)
					if jr != wantJoin {
						identical = false
					}
					mu.Unlock()
				}
			}()
		}
		var intWG sync.WaitGroup
		for c := 0; c < cfg.InteractiveClients; c++ {
			intWG.Add(1)
			go func() {
				defer intWG.Done()
				for q := 0; q < cfg.InteractiveQueries; q++ {
					for k := 0; k < cfg.ThinkJoins; k++ {
						<-tick
					}
					rows, counters, queued, err := prioritySelect(db, interactiveClass)
					if err != nil {
						fail(err)
						return
					}
					mu.Lock()
					intQueued = append(intQueued, queued)
					if rows != wantRows || counters != wantCounters {
						identical = false
					}
					mu.Unlock()
				}
			}()
		}
		intWG.Wait()
		wall := time.Since(start) // offered-load window: batch saturates it end to end
		stop.Store(true)
		batWG.Wait()
		if firstErr != nil {
			return nil, firstErr
		}

		m := db.SessionMetrics()
		if m.PeakGrantedPages > m.MemoryPages {
			return nil, fmt.Errorf("experiments: broker over-granted (%d > %d)", m.PeakGrantedPages, m.MemoryPages)
		}
		ip50, ip95, ip99, imax := priorityPercentiles(intQueued)
		bp50, bp95, bp99, bmax := priorityPercentiles(batQueued)
		row := PriorityRow{
			Policy: rung,
			Wall:   wall,
			Interactive: PriorityClassStats{
				Queries:    len(intQueued),
				Throughput: float64(len(intQueued)) / wall.Seconds(),
				QueuedP50:  ip50, QueuedP95: ip95, QueuedP99: ip99, QueuedMax: imax,
				Rejected:   m.PerClass[interactiveClass].Rejected,
				GrantPages: (cfg.MemoryPages - cfg.ReservedInteractive + reservedFor(cfg, interactiveClass)) / cfg.Slots,
			},
			Batch: PriorityClassStats{
				Queries:    batJoins,
				Throughput: float64(batJoins) / wall.Seconds(),
				QueuedP50:  bp50, QueuedP95: bp95, QueuedP99: bp99, QueuedMax: bmax,
				Rejected:   m.PerClass[mmdb.Batch].Rejected,
				GrantPages: (cfg.MemoryPages - cfg.ReservedInteractive) / cfg.Slots,
			},
			VirtualMatch: identical,
		}
		res.Rows = append(res.Rows, row)
		if rung == "fifo" {
			r := row
			fifoRow = &r
		}
		if rung == "strict" && fifoRow != nil {
			if fifoRow.Interactive.QueuedP95 > 0 {
				res.StrictInteractiveP95Ratio =
					float64(row.Interactive.QueuedP95) / float64(fifoRow.Interactive.QueuedP95)
			}
			if fifoRow.Batch.Throughput > 0 {
				res.StrictBatchThroughputRatio = row.Batch.Throughput / fifoRow.Batch.Throughput
			}
		}
	}
	return res, nil
}

// reservedFor returns the reserved pages the class's grants may draw.
func reservedFor(cfg PriorityConfig, c mmdb.QueryClass) int {
	if c == mmdb.Interactive {
		return cfg.ReservedInteractive
	}
	return 0
}

// Print writes the human-readable report.
func (r *PriorityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Priority-class admission — interactive selections vs. saturating batch joins\n")
	fmt.Fprintf(w, "(%d slots, %d-page |M| with %d reserved for interactive, %d batch clients closed-loop,\n",
		r.Config.Slots, r.Config.MemoryPages, r.Config.ReservedInteractive, r.Config.BatchClients)
	fmt.Fprintf(w, " %d interactive clients × %d queries, think = %d batch completions)\n\n",
		r.Config.InteractiveClients, r.Config.InteractiveQueries, r.Config.ThinkJoins)
	fmt.Fprintf(w, "%9s %7s | %22s %12s %12s | %12s %12s %10s\n",
		"policy", "wall", "class", "queries/s", "queued p50", "queued p95", "queued p99", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%9s %7s | %22s %12.1f %12s %12s | %12s %10v\n",
			row.Policy, row.Wall.Round(time.Millisecond), "interactive",
			row.Interactive.Throughput,
			row.Interactive.QueuedP50.Round(time.Microsecond),
			row.Interactive.QueuedP95.Round(time.Microsecond),
			row.Interactive.QueuedP99.Round(time.Microsecond), row.VirtualMatch)
		fmt.Fprintf(w, "%9s %7s | %22s %12.1f %12s %12s | %12s %10s\n",
			"", "", "batch", row.Batch.Throughput,
			row.Batch.QueuedP50.Round(time.Microsecond),
			row.Batch.QueuedP95.Round(time.Microsecond),
			row.Batch.QueuedP99.Round(time.Microsecond), "")
	}
	if r.StrictInteractiveP95Ratio > 0 {
		fmt.Fprintf(w, "\nstrict vs fifo: interactive p95 ratio %.3f (bar ≤ 0.25), batch throughput ratio %.3f (bar ≥ 0.85)\n",
			r.StrictInteractiveP95Ratio, r.StrictBatchThroughputRatio)
	}
}

// WriteJSON writes the machine-readable result.
func (r *PriorityResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
