package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallTable1() Table1Config {
	cfg := DefaultTable1Config()
	cfg.EmpiricalR = 20000
	cfg.Lookups = 800
	return cfg
}

func TestTable1ReproducesPaperConclusion(t *testing.T) {
	res, err := RunTable1(smallTable1())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Random {
		for _, h := range row.CrossoverH {
			if h < 0.80 || h >= 1 {
				t.Errorf("analytic crossover %.3f outside [0.80,1)", h)
			}
		}
	}
	// The empirical trees agree qualitatively: AVL only wins at high
	// residency (the pool keeps hot upper levels resident, so the measured
	// crossover can sit at the low end of the paper's 80-90% band).
	if x := res.EmpiricalCrossover(); x < 0.5 || x > 0.99 {
		t.Errorf("empirical crossover %.2f implausible", x)
	}
	// Case 2: sequential scans fault far more on the AVL tree (one
	// scattered page per record) than on the B+-tree leaf chain.
	for _, pt := range res.Empirical {
		if pt.H > 0.9 {
			continue // nearly everything resident: both near zero
		}
		if pt.AVLSeqFaults < 5*pt.BTSeqFaults {
			t.Errorf("H=%.2f: AVL seq faults %.1f not >> B+ %.1f", pt.H, pt.AVLSeqFaults, pt.BTSeqFaults)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("Print produced no table")
	}
}

func smallFigure1() Figure1Config {
	cfg := DefaultFigure1Config()
	cfg.ScaleDiv = 40
	cfg.ExecutedRatios = []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	return cfg
}

func TestFigure1ExecutedMatchesPaperShape(t *testing.T) {
	res, err := RunFigure1(smallFigure1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) == 0 {
		t.Fatal("no executed points")
	}
	matches := res.Executed[0].Matches
	for _, pt := range res.Executed {
		if pt.Matches != matches {
			t.Fatalf("match counts differ across memory sizes: %d vs %d", pt.Matches, matches)
		}
		// Hashing beats sort-merge at every point above sqrt(|S|F).
		if pt.Hybrid >= pt.SortMerge {
			t.Errorf("ratio %.2f: hybrid %.1fs not below sort-merge %.1fs", pt.Ratio, pt.Hybrid, pt.SortMerge)
		}
	}
	// Hybrid is at or near the top over most of the range (the simple-hash
	// IOseq artifact region is the documented exception).
	if share := res.HybridBestShareExecuted(0.05); share < 0.55 {
		t.Errorf("hybrid best at only %.0f%% of executed points", share*100)
	}
	// Monotone improvement for hybrid as memory grows.
	for i := 1; i < len(res.Executed); i++ {
		if res.Executed[i].Hybrid > res.Executed[i-1].Hybrid*1.02 {
			t.Errorf("hybrid regressed with more memory: %.1f -> %.1f",
				res.Executed[i-1].Hybrid, res.Executed[i].Hybrid)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Executed operators") {
		t.Error("Print lacks executed section")
	}
}

func TestTable3InvariantHolds(t *testing.T) {
	res, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invariant() {
		t.Fatal("qualitative ranking not invariant over the Table 3 box")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	PrintTable2(&buf)
	if !strings.Contains(buf.String(), "fudge") {
		t.Error("Table 2 print incomplete")
	}
}

func TestRecoveryLadderReproducesThroughputClaims(t *testing.T) {
	res, err := RunRecoveryLadder(4 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RecoveryLadderRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	flush := byName["flush-per-commit, 1 log"]
	group := byName["group-commit, 1 log"]
	multi4 := byName["group-commit, 4 logs"]
	stable := byName["stable memory, 1 log"]
	comp := byName["stable memory + compression"]

	if flush.TPS < 90 || flush.TPS > 105 {
		t.Errorf("flush-per-commit %.1f tps, paper: ~100", flush.TPS)
	}
	if r := group.TPS / flush.TPS; r < 7 {
		t.Errorf("group commit only %.1fx conventional, paper: ~10x", r)
	}
	if r := multi4.TPS / group.TPS; r < 3 {
		t.Errorf("4 log devices only %.1fx one device", r)
	}
	if comp.TPS < stable.TPS*1.2 {
		t.Errorf("compression lifted stable memory only from %.1f to %.1f tps", stable.TPS, comp.TPS)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "throughput ladder") {
		t.Error("Print incomplete")
	}
}

func TestCheckpointSweepShrinksRedo(t *testing.T) {
	res, err := RunCheckpointSweep(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatal("missing rows")
	}
	none := res.Rows[0]
	fastest := res.Rows[len(res.Rows)-1]
	if none.CkptPages != 0 {
		t.Errorf("baseline checkpointed %d pages", none.CkptPages)
	}
	if fastest.Redone >= none.Redone {
		t.Errorf("aggressive checkpointing did not shrink redo: %d vs %d", fastest.Redone, none.Redone)
	}
	var buf bytes.Buffer
	res.Print(&buf)
}

func TestPlannerReduction(t *testing.T) {
	res, err := RunPlanner()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReductionHoldsAtLargeMemory() {
		t.Fatal("§4 reduction failed: hash-only planner lost plan quality or explored no fewer states")
	}
	var buf bytes.Buffer
	res.Print(&buf)
}

func TestAggStudy(t *testing.T) {
	res, err := RunAgg()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Groups != int(res.Keys) {
			t.Errorf("|M|=%d produced %d groups, want %d", row.MemoryPages, row.Groups, res.Keys)
		}
		if row.DistinctN != int(res.Keys) {
			t.Errorf("|M|=%d distinct %d, want %d", row.MemoryPages, row.DistinctN, res.Keys)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Passes != 1 {
		t.Errorf("ample memory still took %d passes", last.Passes)
	}
	if first.Passes < 2 {
		t.Errorf("tiny memory took %d passes, expected spill", first.Passes)
	}
	if first.Seconds <= last.Seconds {
		t.Errorf("spilling should cost more: %.2f vs %.2f", first.Seconds, last.Seconds)
	}
	var buf bytes.Buffer
	res.Print(&buf)
}

func TestPrioritySmoke(t *testing.T) {
	cfg := DefaultPriorityConfig()
	cfg.BatchClients = 4
	cfg.InteractiveClients = 1
	cfg.InteractiveQueries = 8
	cfg.Tuples = 500
	cfg.Groups = 10
	res, err := RunPriority(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Rungs) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Rungs))
	}
	for _, row := range res.Rows {
		if !row.VirtualMatch {
			t.Errorf("%s rung: virtual-clock results diverged from serial", row.Policy)
		}
		if row.Interactive.Queries != cfg.InteractiveClients*cfg.InteractiveQueries {
			t.Errorf("%s rung: interactive queries = %d", row.Policy, row.Interactive.Queries)
		}
		if row.Batch.Queries == 0 {
			t.Errorf("%s rung: batch stream made no progress", row.Policy)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
}
