package experiments

import (
	"fmt"
	"io"

	"mmdb/internal/agg"
	"mmdb/internal/cost"
	"mmdb/internal/simio"
	"mmdb/internal/workload"
)

// AggRow is one point of the §3.9 aggregate/projection study.
type AggRow struct {
	MemoryPages int
	Groups      int
	Passes      int
	Partitions  int
	Seconds     float64 // virtual time charged
	DistinctN   int
}

// AggResult is the §3.9 study output.
type AggResult struct {
	Tuples int
	Keys   int64
	Rows   []AggRow
}

// RunAgg reproduces the §3.9 observation: a grouped aggregate is one pass
// of hashing while the result fits in memory, and degrades to
// hybrid-hash-style partitioning (extra passes, disk IO) only when it does
// not. Projection with duplicate elimination exercises the same machinery.
func RunAgg() (*AggResult, error) {
	const tuples = 40000
	const keys = 4000
	res := &AggResult{Tuples: tuples, Keys: keys}
	for _, m := range []int{2, 4, 8, 16, 64, 256} {
		clock := cost.NewClock(cost.DefaultParams())
		disk := simio.NewDisk(clock, 4096)
		rel, err := workload.Generate(disk, workload.RelationSpec{
			Name: "agg.R", Tuples: tuples, KeyDomain: keys, Seed: 3,
		})
		if err != nil {
			return nil, err
		}
		before := clock.Counters()
		out, err := agg.Hash(agg.Spec{Input: rel, GroupCol: 0, ValueCol: 0, M: m})
		if err != nil {
			return nil, err
		}
		distinct, err := agg.Distinct(rel, 0, m, 1.2, 1)
		if err != nil {
			return nil, err
		}
		delta := clock.Counters().Sub(before)
		res.Rows = append(res.Rows, AggRow{
			MemoryPages: m,
			Groups:      len(out.Groups),
			Passes:      out.Passes,
			Partitions:  out.Partitions,
			Seconds:     delta.Time(clock.Params()).Seconds(),
			DistinctN:   len(distinct),
		})
	}
	return res, nil
}

// Print renders the study.
func (r *AggResult) Print(w io.Writer) {
	fmt.Fprintf(w, "§3.9 — hash aggregation and duplicate elimination (%d tuples, %d distinct keys)\n", r.Tuples, r.Keys)
	fmt.Fprintf(w, "  %-8s %8s %8s %12s %12s %10s\n", "|M|", "groups", "passes", "partitions", "virt secs", "distinct")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %8d %8d %12d %12.2f %10d\n",
			row.MemoryPages, row.Groups, row.Passes, row.Partitions, row.Seconds, row.DistinctN)
	}
	fmt.Fprintln(w, "  one pass while the result fits in memory; partitioned passes beyond.")
}
