package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"mmdb"
)

// CachelabConfig drives the cache-kernel wall-time ladder: every rung is
// one workload (probe-heavy join, partitioned join, merge-heavy sort, very
// wide sort) executed at every Parallelism width with the cache-conscious
// kernels on and off. The kernels are physical-layout changes only, so the
// ladder's gate is the cachelab invariant: every cell of a rung — any
// width, kernel on or off — must reproduce the identical virtual profile
// (counters, result hash, row count) bit for bit. Wall-clock time is the
// measured quantity and, unlike the other ladders, lives IN the JSON:
// the artifact exists to record the kernels' wall-time win.
type CachelabConfig struct {
	Widths      []int `json:"widths"`       // Parallelism ladder, e.g. 1,2,4,8
	BuildTuples int   `json:"build_tuples"` // join build-side rows
	ProbeTuples int   `json:"probe_tuples"` // join probe-side rows
	SortTuples  int   `json:"sort_tuples"`  // sort-rung rows
	PageSize    int   `json:"page_size"`
	Repeat      int   `json:"repeat"` // timed repetitions per cell
}

// DefaultCachelabConfig sizes the rungs so the probe rung's build side
// far exceeds cache, the merge rungs form dozens of runs, and the whole
// ladder finishes in minutes on one core.
func DefaultCachelabConfig() CachelabConfig {
	return CachelabConfig{
		Widths:      []int{1, 2, 4, 8},
		BuildTuples: 60000,
		ProbeTuples: 180000,
		SortTuples:  80000,
		PageSize:    1024,
		Repeat:      2,
	}
}

// CachelabVirtual is the kernel- and width-independent execution profile
// of one rung. Join rungs hash the match set commutatively (per-pair FNV
// summed with wrapping addition) because parallel schedules permute the
// emission order; sort rungs hash the output sequence in order, which is
// deterministic at every width.
type CachelabVirtual struct {
	Rows     int64         `json:"rows"`
	Hash     uint64        `json:"hash"`
	Counters mmdb.Counters `json:"counters"`
}

// CachelabCell is one measured (width, kernel) execution.
type CachelabCell struct {
	Width  int     `json:"width"`
	Kernel bool    `json:"kernel"`
	WallMS float64 `json:"wall_ms"`
}

// CachelabRow is one rung of the ladder.
type CachelabRow struct {
	Rung    string          `json:"rung"`
	Virtual CachelabVirtual `json:"virtual"`
	Cells   []CachelabCell  `json:"cells"`
	// KernelSpeedup maps "w=<width>" to wall(kernel off)/wall(kernel on):
	// > 1 means the kernels won at that width.
	KernelSpeedup map[string]float64 `json:"kernel_speedup_by_width"`
	// CellsIdentical records that every cell reproduced Virtual bit for
	// bit — the counter-identity gate.
	CellsIdentical bool `json:"cells_identical"`
}

// CachelabResult is the full ladder.
type CachelabResult struct {
	Config CachelabConfig `json:"config"`
	Rows   []CachelabRow  `json:"rows"`
	// AllIdentical is the per-rung CellsIdentical conjunction; mmdbench
	// exits non-zero when it is false.
	AllIdentical bool `json:"all_identical"`
}

// kernelMode maps the cell's kernel flag to the engine option.
func kernelMode(kernel bool) mmdb.KernelMode {
	if kernel {
		return mmdb.KernelsOn
	}
	return mmdb.KernelsOff
}

// loadJoinDB builds the probe-rung engine: a "build" relation and a 3x
// larger "probe" relation over the same key domain, deterministically
// filled so every cell joins identical data.
func loadJoinDB(cfg CachelabConfig, memPages, width int, kernel bool) (*mmdb.Database, error) {
	db, err := mmdb.Open(mmdb.Options{
		PageSize:     cfg.PageSize,
		MemoryPages:  memPages,
		Parallelism:  width,
		CacheKernels: kernelMode(kernel),
	})
	if err != nil {
		return nil, err
	}
	build, err := db.CreateRelation("build", mmdb.MustSchema(
		mmdb.Field{Name: "key", Kind: mmdb.Int64},
		mmdb.Field{Name: "tag", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	state := uint64(0x9E3779B97F4A7C15)
	domain := uint64(cfg.BuildTuples) * 2
	for i := 0; i < cfg.BuildTuples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		if err := build.Insert(mmdb.IntValue(int64(state%domain)), mmdb.IntValue(int64(i))); err != nil {
			return nil, err
		}
	}
	if err := build.Flush(); err != nil {
		return nil, err
	}
	probe, err := db.CreateRelation("probe", mmdb.MustSchema(
		mmdb.Field{Name: "key", Kind: mmdb.Int64},
		mmdb.Field{Name: "seq", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.ProbeTuples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		if err := probe.Insert(mmdb.IntValue(int64(state%domain)), mmdb.IntValue(int64(i))); err != nil {
			return nil, err
		}
	}
	if err := probe.Flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// runJoinCell times Repeat rounds of one join rung cell and returns its
// virtual profile, which must be identical on every repeat.
func runJoinCell(cfg CachelabConfig, algo mmdb.JoinAlgorithm, memPages, width int, kernel bool) (CachelabVirtual, time.Duration, error) {
	db, err := loadJoinDB(cfg, memPages, width, kernel)
	if err != nil {
		return CachelabVirtual{}, 0, err
	}
	var v CachelabVirtual
	var wall time.Duration
	sep := []byte{'|'}
	for rep := 0; rep < cfg.Repeat; rep++ {
		h := fnv.New64a()
		var sum uint64
		start := time.Now()
		jr, err := db.Join(algo, "build", "probe", "key", "key", func(l, r mmdb.Tuple) {
			h.Reset()
			h.Write(l)
			h.Write(sep)
			h.Write(r)
			sum += h.Sum64() // wrapping add: order-insensitive across schedules
		})
		if err != nil {
			return CachelabVirtual{}, 0, err
		}
		wall += time.Since(start)
		round := CachelabVirtual{Rows: jr.Matches, Hash: sum, Counters: jr.Counters}
		if rep == 0 {
			v = round
		} else if round != v {
			return CachelabVirtual{}, 0, fmt.Errorf(
				"cachelab: join repeat %d (width=%d kernel=%v) diverged from repeat 0", rep, width, kernel)
		}
	}
	return v, wall, nil
}

// runSortCellK times Repeat rounds of one sort rung cell: OrderBy over a
// shuffled relation at the given SortChunks decomposition.
func runSortCellK(cfg CachelabConfig, chunks, memPages, width int, kernel bool) (CachelabVirtual, time.Duration, error) {
	db, err := mmdb.Open(mmdb.Options{
		PageSize:     cfg.PageSize,
		MemoryPages:  memPages,
		Parallelism:  width,
		SortChunks:   chunks,
		CacheKernels: kernelMode(kernel),
	})
	if err != nil {
		return CachelabVirtual{}, 0, err
	}
	events, err := db.CreateRelation("events", mmdb.MustSchema(
		mmdb.Field{Name: "key", Kind: mmdb.Int64},
		mmdb.Field{Name: "seq", Kind: mmdb.Int64},
		mmdb.Field{Name: "pad", Kind: mmdb.String, Size: 16},
	))
	if err != nil {
		return CachelabVirtual{}, 0, err
	}
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < cfg.SortTuples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		err := events.Insert(
			mmdb.IntValue(int64(state%uint64(cfg.SortTuples*4))),
			mmdb.IntValue(int64(i)),
			mmdb.StringValue("event-padding!!!"),
		)
		if err != nil {
			return CachelabVirtual{}, 0, err
		}
	}
	if err := events.Flush(); err != nil {
		return CachelabVirtual{}, 0, err
	}
	var v CachelabVirtual
	var wall time.Duration
	for rep := 0; rep < cfg.Repeat; rep++ {
		before := db.Counters()
		h := fnv.New64a()
		var rows int64
		var buf [8]byte
		start := time.Now()
		err := db.OrderBy("events", "key", func(t mmdb.Tuple) bool {
			rows++
			copy(buf[:], t[:8])
			h.Write(buf[:]) // ordered: sorted output is deterministic at every width
			return true
		})
		if err != nil {
			return CachelabVirtual{}, 0, err
		}
		wall += time.Since(start)
		round := CachelabVirtual{Rows: rows, Hash: h.Sum64(), Counters: db.Counters().Sub(before)}
		if rep == 0 {
			v = round
		} else if round != v {
			return CachelabVirtual{}, 0, fmt.Errorf(
				"cachelab: sort repeat %d (chunks=%d width=%d kernel=%v) diverged from repeat 0",
				rep, chunks, width, kernel)
		}
	}
	return v, wall, nil
}

// RunCachelab runs the ladder. Every rung executes all width x kernel
// cells; the gate is that all of them reproduce one virtual profile.
func RunCachelab(cfg CachelabConfig) (*CachelabResult, error) {
	// Wall-clock comparisons need real OS-level parallelism at the wide
	// widths; floor GOMAXPROCS to the top of the ladder as the sort and
	// priority ladders do. Virtual results are unaffected.
	top := 1
	for _, w := range cfg.Widths {
		if w > top {
			top = w
		}
	}
	if runtime.GOMAXPROCS(0) < top {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(top))
	}

	// bigM keeps hybrid's whole build side resident (probe-heavy rung:
	// pure hash-table build + probe, no partition IO); smallM forces
	// GRACE to really partition, and makes the sorts form runs and merge.
	bigM := 1 << 20
	smallM := 64
	rungs := []struct {
		name string
		run  func(width int, kernel bool) (CachelabVirtual, time.Duration, error)
	}{
		{"probe-resident", func(w int, k bool) (CachelabVirtual, time.Duration, error) {
			return runJoinCell(cfg, mmdb.HybridHash, bigM, w, k)
		}},
		{"grace-partitioned", func(w int, k bool) (CachelabVirtual, time.Duration, error) {
			return runJoinCell(cfg, mmdb.GraceHash, smallM, w, k)
		}},
		{"merge-chunks8", func(w int, k bool) (CachelabVirtual, time.Duration, error) {
			return runSortCellK(cfg, 8, smallM, w, k)
		}},
		{"merge-chunks64", func(w int, k bool) (CachelabVirtual, time.Duration, error) {
			return runSortCellK(cfg, 64, smallM, w, k)
		}},
	}

	res := &CachelabResult{Config: cfg, AllIdentical: true}
	for _, rung := range rungs {
		row := CachelabRow{
			Rung:           rung.name,
			CellsIdentical: true,
			KernelSpeedup:  map[string]float64{},
		}
		wallOn := map[int]time.Duration{}
		wallOff := map[int]time.Duration{}
		first := true
		for _, width := range cfg.Widths {
			for _, kernel := range []bool{false, true} {
				v, wall, err := rung.run(width, kernel)
				if err != nil {
					return nil, err
				}
				row.Cells = append(row.Cells, CachelabCell{
					Width: width, Kernel: kernel,
					WallMS: float64(wall.Microseconds()) / 1000.0,
				})
				if kernel {
					wallOn[width] = wall
				} else {
					wallOff[width] = wall
				}
				if first {
					row.Virtual = v
					first = false
				} else if v != row.Virtual {
					row.CellsIdentical = false
					res.AllIdentical = false
				}
			}
		}
		for _, width := range cfg.Widths {
			if on := wallOn[width]; on > 0 {
				row.KernelSpeedup[fmt.Sprintf("w=%d", width)] =
					float64(wallOff[width]) / float64(on)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the human-readable report.
func (r *CachelabResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Cache-conscious kernels — wall-time ladder, counter-identity gated\n")
	fmt.Fprintf(w, "(build %d / probe %d / sort %d tuples, widths %v, %d timed rounds per cell)\n\n",
		r.Config.BuildTuples, r.Config.ProbeTuples, r.Config.SortTuples, r.Config.Widths, r.Config.Repeat)
	fmt.Fprintf(w, "%-18s %8s", "rung", "cell")
	for _, width := range r.Config.Widths {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("w=%d", width))
	}
	fmt.Fprintf(w, " %10s\n", "identical")
	for _, row := range r.Rows {
		for _, kernel := range []bool{false, true} {
			label := "classic"
			if kernel {
				label = "kernel"
			}
			fmt.Fprintf(w, "%-18s %8s", row.Rung, label)
			for _, width := range r.Config.Widths {
				for _, c := range row.Cells {
					if c.Width == width && c.Kernel == kernel {
						fmt.Fprintf(w, " %8.0fms", c.WallMS)
					}
				}
			}
			if kernel {
				fmt.Fprintf(w, " %10v\n", row.CellsIdentical)
			} else {
				fmt.Fprintf(w, "\n")
			}
		}
		fmt.Fprintf(w, "%-18s %8s", "", "speedup")
		for _, width := range r.Config.Widths {
			fmt.Fprintf(w, " %8.2fx", row.KernelSpeedup[fmt.Sprintf("w=%d", width)])
		}
		fmt.Fprintf(w, "\n")
	}
	if !r.AllIdentical {
		fmt.Fprintf(w, "\nVIRTUAL COUNTER DRIFT: the kernels changed the accounting\n")
	}
}

// WriteJSON writes the machine-readable result. Wall times and speedups
// are deliberately included: the artifact's purpose is to record the
// measured win alongside the counter-identity verdict.
func (r *CachelabResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
