package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"mmdb"
)

// ConcurrencyConfig drives the multi-client contention experiment: a
// closed-loop workload where each client runs the same hybrid-hash join
// back to back, against an engine with a fixed number of execution slots.
// Slots stay constant across the client ladder so the static memory broker
// hands every query the identical grant — per-query virtual-clock results
// are then bit-identical at every rung and only wall-clock throughput and
// queueing change with load.
type ConcurrencyConfig struct {
	Clients          []int // ladder of concurrent client counts
	Slots            int   // MaxConcurrentQueries, fixed across the ladder
	QueueDepth       int   // admission queue bound
	QueriesPerClient int
	// ThinkTime is each client's pause between queries — the closed-loop
	// terminal model of §5.1. It is what concurrent serving overlaps:
	// with one client the engine idles during think time, with many it
	// fills that idle time with other clients' queries, so throughput
	// scales with clients until the CPU (or the slot count) saturates —
	// even on a single-core host.
	ThinkTime   time.Duration
	Tuples      int // rows in the probe relation
	Groups      int // rows in the build relation
	MemoryPages int
	PageSize    int
}

// DefaultConcurrencyConfig sizes the workload so a full ladder runs in a
// few seconds of wall time.
func DefaultConcurrencyConfig() ConcurrencyConfig {
	return ConcurrencyConfig{
		Clients:          []int{1, 2, 4, 8},
		Slots:            8,
		QueueDepth:       64,
		QueriesPerClient: 8,
		ThinkTime:        2 * time.Millisecond,
		Tuples:           4000,
		Groups:           40,
		MemoryPages:      256,
		PageSize:         1024,
	}
}

// ConcurrencyRow is one rung of the client ladder.
type ConcurrencyRow struct {
	Clients      int           `json:"clients"`
	Queries      int           `json:"queries"`
	Wall         time.Duration `json:"wall_ns"`
	Throughput   float64       `json:"queries_per_sec"`
	QueuedP50    time.Duration `json:"queued_p50_ns"`
	QueuedP95    time.Duration `json:"queued_p95_ns"`
	QueuedMax    time.Duration `json:"queued_max_ns"`
	GrantPages   int           `json:"grant_pages"`
	PeakGranted  int           `json:"peak_granted_pages"`
	RunningPeak  int           `json:"running_peak"`
	QueuePeak    int           `json:"queue_peak"`
	VirtualMatch bool          `json:"virtual_identical"` // per-query results identical to the 1-client run
}

// ConcurrencyResult is the full ladder plus the workload parameters.
type ConcurrencyResult struct {
	Config ConcurrencyConfig `json:"config"`
	Rows   []ConcurrencyRow  `json:"rows"`
}

func loadConcurrencyDB(cfg ConcurrencyConfig) (*mmdb.Database, error) {
	db, err := mmdb.Open(mmdb.Options{
		PageSize:             cfg.PageSize,
		MemoryPages:          cfg.MemoryPages,
		MaxConcurrentQueries: cfg.Slots,
		QueueDepth:           cfg.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	emp, err := db.CreateRelation("emp", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "dept", Kind: mmdb.Int64},
		mmdb.Field{Name: "salary", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Tuples; i++ {
		err := emp.Insert(
			mmdb.IntValue(int64(i)),
			mmdb.IntValue(int64(i%cfg.Groups)),
			mmdb.IntValue(int64(1000+i%700)),
		)
		if err != nil {
			return nil, err
		}
	}
	if err := emp.Flush(); err != nil {
		return nil, err
	}
	dept, err := db.CreateRelation("dept", mmdb.MustSchema(
		mmdb.Field{Name: "id", Kind: mmdb.Int64},
		mmdb.Field{Name: "budget", Kind: mmdb.Int64},
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Groups; i++ {
		if err := dept.Insert(mmdb.IntValue(int64(i)), mmdb.IntValue(int64(i*10))); err != nil {
			return nil, err
		}
	}
	if err := dept.Flush(); err != nil {
		return nil, err
	}
	return db, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// RunConcurrency runs the client ladder. Every rung gets a fresh,
// identically loaded engine so rungs are independent.
func RunConcurrency(cfg ConcurrencyConfig) (*ConcurrencyResult, error) {
	res := &ConcurrencyResult{Config: cfg}
	var baseline *mmdb.JoinResult
	for _, clients := range cfg.Clients {
		db, err := loadConcurrencyDB(cfg)
		if err != nil {
			return nil, err
		}

		total := clients * cfg.QueriesPerClient
		queued := make([]time.Duration, 0, total)
		joins := make([]mmdb.JoinResult, 0, total)
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error

		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < cfg.QueriesPerClient; q++ {
					if cfg.ThinkTime > 0 {
						time.Sleep(cfg.ThinkTime)
					}
					s, err := db.NewSession(context.Background())
					if err == nil {
						var jr mmdb.JoinResult
						jr, err = s.Join(mmdb.HybridHash, "emp", "dept", "dept", "id", nil)
						if err == nil {
							mu.Lock()
							queued = append(queued, s.QueuedFor())
							joins = append(joins, jr)
							mu.Unlock()
						}
						s.Close()
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		if firstErr != nil {
			return nil, firstErr
		}

		// Per-query virtual results must not depend on the client count.
		identical := true
		for i := range joins {
			if baseline == nil {
				jr := joins[i]
				baseline = &jr
				continue
			}
			if joins[i] != *baseline {
				identical = false
			}
		}

		sort.Slice(queued, func(i, j int) bool { return queued[i] < queued[j] })
		m := db.SessionMetrics()
		if m.PeakGrantedPages > m.MemoryPages {
			return nil, fmt.Errorf("experiments: broker over-granted (%d > %d)", m.PeakGrantedPages, m.MemoryPages)
		}
		row := ConcurrencyRow{
			Clients:      clients,
			Queries:      total,
			Wall:         wall,
			Throughput:   float64(total) / wall.Seconds(),
			QueuedP50:    percentile(queued, 0.50),
			QueuedP95:    percentile(queued, 0.95),
			QueuedMax:    m.QueuedMax,
			GrantPages:   cfg.MemoryPages / cfg.Slots,
			PeakGranted:  m.PeakGrantedPages,
			RunningPeak:  m.RunningPeak,
			QueuePeak:    m.QueuePeak,
			VirtualMatch: identical,
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the human-readable report.
func (r *ConcurrencyResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Concurrent query serving — closed-loop join workload\n")
	fmt.Fprintf(w, "(%d slots, %d-page |M| → %d-page static grants, %d queries/client, %s think time)\n\n",
		r.Config.Slots, r.Config.MemoryPages, r.Config.MemoryPages/r.Config.Slots,
		r.Config.QueriesPerClient, r.Config.ThinkTime)
	fmt.Fprintf(w, "%8s %9s %12s %12s %12s %8s %10s\n",
		"clients", "queries", "queries/s", "queued p50", "queued p95", "running", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %9d %12.1f %12s %12s %8d %10v\n",
			row.Clients, row.Queries, row.Throughput,
			row.QueuedP50.Round(time.Microsecond), row.QueuedP95.Round(time.Microsecond),
			row.RunningPeak, row.VirtualMatch)
	}
	if len(r.Rows) >= 2 {
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		if first.Throughput > 0 {
			fmt.Fprintf(w, "\nspeedup %d→%d clients: %.2fx\n",
				first.Clients, last.Clients, last.Throughput/first.Throughput)
		}
	}
}

// WriteJSON writes the machine-readable result.
func (r *ConcurrencyResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
