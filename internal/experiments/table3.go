package experiments

import (
	"fmt"
	"io"

	"mmdb/internal/core"
	"mmdb/internal/cost"
)

// PrintTable2 renders the Table 2 parameter settings the other experiments
// default to.
func PrintTable2(w io.Writer) {
	p := cost.DefaultParams()
	wk := core.Table2Workload()
	fmt.Fprintln(w, "Table 2 — parameter settings used")
	fmt.Fprintf(w, "  comp    time to compare keys          %v\n", p.Comp)
	fmt.Fprintf(w, "  hash    time to hash a key            %v\n", p.Hash)
	fmt.Fprintf(w, "  move    time to move a tuple          %v\n", p.Move)
	fmt.Fprintf(w, "  swap    time to swap two tuples       %v\n", p.Swap)
	fmt.Fprintf(w, "  IOseq   sequential IO operation time  %v\n", p.IOSeq)
	fmt.Fprintf(w, "  IOrand  random IO operation time      %v\n", p.IORand)
	fmt.Fprintf(w, "  F       universal \"fudge\" factor      %g\n", p.F)
	fmt.Fprintf(w, "  |S|     size of S relation            %d pages\n", wk.SPages)
	fmt.Fprintf(w, "  |R|     size of R relation            %d pages\n", wk.RPages)
	fmt.Fprintf(w, "  ||R||/|R|  R tuples per page          %d\n", wk.RTuplesPerPage)
	fmt.Fprintf(w, "  ||S||/|S|  S tuples per page          %d\n", wk.STuplesPerPage)
}

// Table3Result is the sensitivity sweep outcome.
type Table3Result struct {
	Outcomes []core.Table3Outcome
}

// RunTable3 sweeps the Table 3 parameter box and verifies the ranking is
// invariant ("our conclusions do not appear to depend on the particular
// parameter values").
func RunTable3() (*Table3Result, error) {
	outcomes, err := core.Table3Sweep(core.Table3Settings(), core.DefaultRatios())
	if err != nil {
		return nil, err
	}
	return &Table3Result{Outcomes: outcomes}, nil
}

// Invariant reports whether hybrid stayed at rank <= 2 (rank 2 only inside
// the paper's own simple-hash IOseq artifact region) and always beat
// sort-merge, at every setting.
func (r *Table3Result) Invariant() bool {
	for _, o := range r.Outcomes {
		if o.HybridWorstRank > 2 || o.SortMergeBeatenShare != 1 {
			return false
		}
	}
	return true
}

// Print renders the sweep summary.
func (r *Table3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — parameter sensitivity sweep (qualitative-shape invariance)")
	fmt.Fprintf(w, "  %-16s %-10s %-11s %-11s %-11s %-10s %6s %10s %12s\n",
		"setting", "comp", "hash", "move", "IOseq", "IOrand", "F", "hybrid", "beats")
	fmt.Fprintf(w, "  %-16s %-10s %-11s %-11s %-11s %-10s %6s %10s %12s\n",
		"", "", "", "", "", "", "", "worst rank", "sort-merge")
	for _, o := range r.Outcomes {
		p := o.Setting.Params
		fmt.Fprintf(w, "  %-16s %-10v %-11v %-11v %-11v %-10v %6.1f %10d %11.0f%%\n",
			o.Setting.Name, p.Comp, p.Hash, p.Move, p.IOSeq, p.IORand, p.F,
			o.HybridWorstRank, 100*o.SortMergeBeatenShare)
	}
	fmt.Fprintf(w, "  ranking invariant across the box: %v\n", r.Invariant())
}
