package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"time"

	"mmdb"
	"mmdb/internal/event"
	"mmdb/internal/fault"
	"mmdb/internal/recovery"
	"mmdb/internal/store"
	"mmdb/internal/txn"
	"mmdb/internal/wal"
)

// ChaosConfig drives the fault-plane acceptance ladder: a crash-recovery
// grid under torn log writes, a transient-fault query leg absorbed by
// session retry, and a grant-revocation leg that must degrade to the
// GRACE spill fallback. Everything is virtual-time and seed-driven, so a
// given config produces a byte-identical report on every run.
type ChaosConfig struct {
	// Crash grid: Seeds × CrashPoints engine runs, each with a torn log
	// write scheduled and a contended, abort-seeded workload.
	Seeds       []int64         `json:"seeds"`
	CrashPoints []time.Duration `json:"crash_points_ns"`
	RunFor      time.Duration   `json:"run_for_ns"`
	TornEveryN  int64           `json:"torn_every_n"` // n-th log-page write tears

	// Query legs: two relations of Tuples rows whose keys collide 5×5.
	Tuples      int `json:"tuples"`
	MemoryPages int `json:"memory_pages"`
	PageSize    int `json:"page_size"`

	// Transient leg: a one-shot burst at the TransientAt-th charged IO,
	// sized to kill TransientKills whole bounded-retry write loops, against
	// a session allowed Retries attempts.
	TransientAt    int64 `json:"transient_at"`
	TransientBurst int   `json:"transient_burst"`
	Retries        int   `json:"retries"`

	// Revocation leg: pages the session sheds from inside the first emit.
	ShedPages int `json:"shed_pages"`
}

// DefaultChaosConfig sizes the ladder to run in a few seconds of wall
// time while still producing losers, torn tails, and a real spill.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seeds: []int64{11, 23},
		CrashPoints: []time.Duration{
			130 * time.Millisecond,
			517 * time.Millisecond,
			901 * time.Millisecond,
		},
		RunFor:         1200 * time.Millisecond,
		TornEveryN:     12,
		Tuples:         500,
		MemoryPages:    64,
		PageSize:       512,
		TransientAt:    10,
		TransientBurst: 12,
		Retries:        2,
		ShedPages:      1000,
	}
}

// ChaosCrashRow is one cell of the crash-recovery grid.
type ChaosCrashRow struct {
	Seed       int64         `json:"seed"`
	CrashAt    time.Duration `json:"crash_at_ns"`
	Committed  int           `json:"committed"`
	Losers     int           `json:"losers"`
	Redone     int           `json:"redone"`
	Undone     int           `json:"undone"`
	LogScanned int           `json:"log_scanned"`
	TornWrites int64         `json:"torn_writes"`
	LostPages  int64         `json:"lost_pages"`
	// AckedDurable: every transaction acknowledged by crash time was found
	// committed by recovery (no lost acks).
	AckedDurable bool `json:"acked_durable"`
	// PrefixEqual: the recovered store equals a fresh store replaying only
	// the resolved transactions' updates in LSN order (recovery ≡
	// committed-prefix replay).
	PrefixEqual bool `json:"prefix_equal"`
}

// ChaosQueryLeg reports one query-plane leg of the ladder.
type ChaosQueryLeg struct {
	Algorithm string `json:"algorithm"`
	Matches   int64  `json:"matches"`
	// PairHash fingerprints the emitted pair multiset (order-independent);
	// equal hashes across the baseline and the faulted run mean
	// bit-identical results.
	PairHash  uint64 `json:"pair_hash"`
	Identical bool   `json:"identical_to_baseline"`

	TransientInjected int64 `json:"transient_injected,omitempty"`
	Degraded          bool  `json:"degraded,omitempty"`
	ShedReclaimed     int   `json:"shed_reclaimed,omitempty"`
}

// ChaosResult is the full ladder report.
type ChaosResult struct {
	Config    ChaosConfig     `json:"config"`
	Crash     []ChaosCrashRow `json:"crash_grid"`
	Segments  []ChaosSegRow   `json:"segment_grid"`
	Transient ChaosQueryLeg   `json:"transient_leg"`
	Revoked   ChaosQueryLeg   `json:"revocation_leg"`
	// TotalUndone aggregates loser undo across the grid; the grid is only
	// meaningful if it actually exercised the undo path.
	TotalUndone int  `json:"total_undone"`
	AllHold     bool `json:"all_invariants_hold"`
}

// chaosOracle replays the committed prefix: a fresh store plus the
// crash's snapshot pages with every resolved transaction's updates
// applied in LSN order. By §5.2 pre-commit ordering no committed
// transaction can have overwritten a loser, so recovery's undo-by-preimage
// result must equal this never-applied replay bit for bit.
func chaosOracle(in recovery.Input, info recovery.Info) (*store.Store, error) {
	st, err := store.New(in.NumRecords, in.RecSize, in.RecordsPerPage)
	if err != nil {
		return nil, err
	}
	for p, img := range in.SnapshotPages {
		if err := st.InstallPage(p, img); err != nil {
			return nil, err
		}
	}
	for _, r := range in.Log {
		if r.Type != wal.Update || (!info.Committed[r.Txn] && !info.Ended[r.Txn]) {
			continue
		}
		if err := st.Apply(r.Rec, r.New); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// runChaosCrash runs one grid cell: a contended, abort-seeded workload on
// a group-commit log whose device tears mid-run, crashed at crashAt.
func runChaosCrash(cfg ChaosConfig, seed int64, crashAt time.Duration) (ChaosCrashRow, error) {
	row := ChaosCrashRow{Seed: seed, CrashAt: crashAt}
	// Offset the tear by the seed so the grid straddles it: early crash
	// points capture a still-clean log, late ones a torn one, and
	// different seeds tear at different depths of the commit history.
	inj := fault.NewInjector(seed).TornEvery("log0", cfg.TornEveryN+seed)
	dev := wal.NewDevice("log0", 10*time.Millisecond)
	dev.Injector = inj
	dev.ExposeTorn = true

	tc := txn.Config{
		Accounts:       512,
		Terminals:      50,
		UpdatesPerTxn:  3,
		HotAccounts:    12, // force §5.2 pre-commit dependency chains
		AbortEvery:     5,  // seed rollbacks among the losers
		RecordsPerPage: 16,
		Seed:           seed,
		Log: wal.Config{
			Policy:  wal.GroupCommit,
			Devices: []*wal.Device{dev},
			// Tiny pages split each transaction across page boundaries so
			// crashes catch updates durable with the commit still in flight.
			PageSize: 256,
		},
	}
	sim := &event.Sim{}
	e, err := txn.New(sim, tc)
	if err != nil {
		return row, err
	}
	var in recovery.Input
	var capErr error
	captured := false
	sim.At(crashAt, func() {
		in, capErr = e.CrashInput()
		captured = true
	})
	e.Run(cfg.RunFor)
	if !captured || capErr != nil {
		return row, fmt.Errorf("chaos: crash capture at %v failed: %v", crashAt, capErr)
	}

	st, info, err := recovery.Recover(in)
	if err != nil {
		return row, fmt.Errorf("chaos: recovery (seed %d, crash %v): %w", seed, crashAt, err)
	}
	row.Committed = len(info.Committed)
	row.Losers = len(info.Losers)
	row.Redone = info.Redone
	row.Undone = info.Undone
	row.LogScanned = info.LogScanned
	row.TornWrites = inj.Stats().Torn
	row.LostPages = e.Log().Stats().LostPages

	row.AckedDurable = true
	for _, id := range e.AckedBy(crashAt) {
		if !info.Committed[id] {
			row.AckedDurable = false
			break
		}
	}
	oracle, err := chaosOracle(in, info)
	if err != nil {
		return row, err
	}
	row.PrefixEqual = st.Equal(oracle)
	return row, nil
}

// chaosDB opens a database with two relations r and s of cfg.Tuples rows
// each whose keys collide 5×5 per value.
func chaosDB(cfg ChaosConfig) (*mmdb.Database, error) {
	db, err := mmdb.Open(mmdb.Options{PageSize: cfg.PageSize, MemoryPages: cfg.MemoryPages})
	if err != nil {
		return nil, err
	}
	schema := mmdb.MustSchema(
		mmdb.Field{Name: "k", Kind: mmdb.Int64},
		mmdb.Field{Name: "pad", Kind: mmdb.String, Size: 16},
	)
	for _, name := range []string{"r", "s"} {
		rel, err := db.CreateRelation(name, schema)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Tuples; i++ {
			err := rel.Insert(
				mmdb.IntValue(int64(i%(cfg.Tuples/5))),
				mmdb.StringValue(fmt.Sprintf("%s%04d", name, i)),
			)
			if err != nil {
				return nil, err
			}
		}
		if err := rel.Flush(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// chaosJoin runs the join in session s collecting an order-independent
// fingerprint of the emitted pair multiset.
func chaosJoin(s *mmdb.Session, alg mmdb.JoinAlgorithm, onEmit func()) (mmdb.JoinResult, uint64, error) {
	var pairs []string
	res, err := s.Join(alg, "r", "s", "k", "k", func(l, r mmdb.Tuple) {
		pairs = append(pairs, fmt.Sprintf("%x|%x", []byte(l), []byte(r)))
		if onEmit != nil {
			onEmit()
		}
	})
	if err != nil {
		return res, 0, err
	}
	sort.Strings(pairs)
	h := fnv.New64a()
	for _, p := range pairs {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return res, h.Sum64(), nil
}

// runChaosTransient runs the transient leg: a one-shot burst long enough
// to kill whole query attempts, absorbed by session-level retry, and the
// final result compared bit for bit against a fault-free baseline.
func runChaosTransient(cfg ChaosConfig) (ChaosQueryLeg, error) {
	leg := ChaosQueryLeg{Algorithm: "grace"}
	db, err := chaosDB(cfg)
	if err != nil {
		return leg, err
	}
	base, err := db.NewSession(context.Background())
	if err != nil {
		return leg, err
	}
	wantRes, wantHash, err := chaosJoin(base, mmdb.GraceHash, nil)
	base.Close()
	if err != nil {
		return leg, err
	}

	inj := mmdb.NewFaultInjector(3).TransientAt("", cfg.TransientAt, cfg.TransientBurst)
	db.ArmFaults(inj)
	defer db.ArmFaults(nil)
	s, err := db.NewSession(context.Background(), mmdb.WithRetry(cfg.Retries))
	if err != nil {
		return leg, err
	}
	defer s.Close()
	res, hash, err := chaosJoin(s, mmdb.GraceHash, nil)
	if err != nil {
		return leg, fmt.Errorf("chaos: retried query failed: %w", err)
	}
	leg.Matches = res.Matches
	leg.PairHash = hash
	leg.Identical = res.Matches == wantRes.Matches && hash == wantHash
	leg.TransientInjected = inj.Stats().Transient
	return leg, nil
}

// runChaosRevoked runs the degradation leg: the broker revokes almost the
// whole grant from inside the hybrid join's first emit, which must finish
// via the GRACE spill fallback with the exact same pairs.
func runChaosRevoked(cfg ChaosConfig) (ChaosQueryLeg, error) {
	leg := ChaosQueryLeg{Algorithm: "hybrid"}
	db, err := chaosDB(cfg)
	if err != nil {
		return leg, err
	}
	base, err := db.NewSession(context.Background())
	if err != nil {
		return leg, err
	}
	wantRes, wantHash, err := chaosJoin(base, mmdb.HybridHash, nil)
	base.Close()
	if err != nil {
		return leg, err
	}

	s, err := db.NewSession(context.Background())
	if err != nil {
		return leg, err
	}
	defer s.Close()
	shed := false
	res, hash, err := chaosJoin(s, mmdb.HybridHash, func() {
		if !shed {
			shed = true
			leg.ShedReclaimed = s.ShedMemory(cfg.ShedPages)
		}
	})
	if err != nil {
		return leg, fmt.Errorf("chaos: degraded query failed: %w", err)
	}
	leg.Matches = res.Matches
	leg.PairHash = hash
	leg.Degraded = res.Degraded
	leg.Identical = res.Matches == wantRes.Matches && hash == wantHash
	return leg, nil
}

// RunChaos runs the full fault-plane ladder and folds the acceptance
// verdict into AllHold: every grid cell satisfies both crash invariants,
// the grid exercised undo, the transient leg survived with an identical
// result, and the revocation leg degraded without changing a bit.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	res := &ChaosResult{Config: cfg, AllHold: true}
	for _, seed := range cfg.Seeds {
		for _, at := range cfg.CrashPoints {
			row, err := runChaosCrash(cfg, seed, at)
			if err != nil {
				return nil, err
			}
			res.Crash = append(res.Crash, row)
			res.TotalUndone += row.Undone
			if !row.AckedDurable || !row.PrefixEqual || row.Committed == 0 {
				res.AllHold = false
			}
		}
	}
	if res.TotalUndone == 0 {
		res.AllHold = false // the grid never exercised loser undo
	}
	segRows, err := runChaosSegGrid(cfg)
	if err != nil {
		return nil, err
	}
	res.Segments = segRows
	for _, row := range segRows {
		if !row.WindowFound || !row.AckedDurable || !row.SkipEqualsFull || row.Committed == 0 {
			res.AllHold = false
		}
	}
	if res.Transient, err = runChaosTransient(cfg); err != nil {
		return nil, err
	}
	if res.Revoked, err = runChaosRevoked(cfg); err != nil {
		return nil, err
	}
	if !res.Transient.Identical || !res.Revoked.Identical || !res.Revoked.Degraded {
		res.AllHold = false
	}
	return res, nil
}

// Print renders the ladder.
func (r *ChaosResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Fault plane — chaos ladder (torn log tails, transient bursts, grant revocation)")
	fmt.Fprintf(w, "  crash grid: %d seeds × %d crash points, group commit, 256-byte log pages,\n",
		len(r.Config.Seeds), len(r.Config.CrashPoints))
	fmt.Fprintf(w, "  hot-account chains + abort seeding, log0 tears every %d pages\n\n", r.Config.TornEveryN)
	fmt.Fprintf(w, "  %5s %9s %10s %7s %7s %7s %6s %6s %7s %7s\n",
		"seed", "crash", "committed", "losers", "redone", "undone", "torn", "lost", "acked⊆C", "prefix=")
	for _, row := range r.Crash {
		fmt.Fprintf(w, "  %5d %9s %10d %7d %7d %7d %6d %6d %7v %7v\n",
			row.Seed, row.CrashAt, row.Committed, row.Losers, row.Redone, row.Undone,
			row.TornWrites, row.LostPages, row.AckedDurable, row.PrefixEqual)
	}
	fmt.Fprintf(w, "\n  segment grid: crashes aimed mid-rotation, mid-commit.meta rewrite, mid-compaction\n")
	fmt.Fprintf(w, "  %5s %11s %9s %10s %6s %7s %7s %9s %7s %6s\n",
		"seed", "target", "crash", "committed", "acked", "scanned", "skipped", "compacted", "acked⊆C", "skip=")
	for _, row := range r.Segments {
		fmt.Fprintf(w, "  %5d %11s %9s %10d %6d %7d %7d %9d %7v %6v\n",
			row.Seed, row.Target, row.CrashAt, row.Committed, row.AckedAtCrash,
			row.SegmentsScanned, row.SegmentsSkipped, row.CompactedBytes,
			row.AckedDurable, row.SkipEqualsFull)
	}
	fmt.Fprintf(w, "\n  transient leg (%s): %d matches, burst of %d absorbed by %d retries, identical=%v\n",
		r.Transient.Algorithm, r.Transient.Matches, r.Transient.TransientInjected,
		r.Config.Retries, r.Transient.Identical)
	fmt.Fprintf(w, "  revocation leg (%s): %d matches, shed %d pages mid-probe, degraded=%v, identical=%v\n",
		r.Revoked.Algorithm, r.Revoked.Matches, r.Revoked.ShedReclaimed,
		r.Revoked.Degraded, r.Revoked.Identical)
	fmt.Fprintf(w, "  total loser updates undone across the grid: %d\n", r.TotalUndone)
	fmt.Fprintf(w, "  ALL INVARIANTS HOLD: %v\n", r.AllHold)
}

// WriteJSON writes the machine-readable result. The report contains only
// virtual-time and counter fields, so a given config is byte-identical
// run to run.
func (r *ChaosResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
