package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRecoveryScaleReplayDeterminism runs the recovery-time-vs-log-length
// ladder and checks the acceptance bars: committed work spreads ~10×
// bottom to top, the no-reclamation baseline's recovery time grows with
// the log, the checkpoint+truncate+compact config stays flat within 10%,
// and the replay cost counters are bit-identical at every width. A second
// run must reproduce the report byte for byte — the ladder is seeded
// virtual time end to end.
func TestRecoveryScaleReplayDeterminism(t *testing.T) {
	cfg := DefaultRecoveryScaleConfig()
	marshal := func() []byte {
		res, err := RunRecoveryScale(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllHold {
			data, _ := json.MarshalIndent(res, "", "  ")
			t.Fatalf("recovery scale bars violated:\n%s", data)
		}
		if !res.WidthsIdentical {
			t.Fatal("replay counters drifted across widths")
		}
		if res.CommittedGrowth < 8 {
			t.Fatalf("committed only grew %.1f×, want ~10×", res.CommittedGrowth)
		}
		for _, row := range res.Rows {
			if row.Config == "ckpt+truncate+compact" && row.CompactedBytes == 0 {
				t.Fatalf("compaction never ran on %s/%v", row.Config, row.RunFor)
			}
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same config, different reports:\n%s\n---\n%s", a, b)
	}
}
