package agg

// Parallel aggregation determinism: spilled hash partitions aggregated at
// Parallelism=8 must produce the same groups and bit-identical counters as
// the serial run (the partitions hold disjoint keys and counter addition
// commutes). Run under -race this also exercises the worker pool against
// the shared clock and disk.

import (
	"sort"
	"testing"

	"mmdb/internal/cost"
)

func spillRows(n, groups int64) [][2]int64 {
	var rows [][2]int64
	for i := int64(0); i < n; i++ {
		rows = append(rows, [2]int64{i % groups, i})
	}
	return rows
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key.I < gs[j].Key.I })
}

func TestParallelSpillMatchesSerialExactly(t *testing.T) {
	rows := spillRows(3000, 700)

	run := func(parallelism int) (*Result, cost.Counters) {
		disk := env()
		f := load(t, disk, "r", rows)
		before := disk.Clock().Counters()
		res, err := Hash(Spec{Input: f, GroupCol: 0, ValueCol: 1, M: 2, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return res, disk.Clock().Counters().Sub(before)
	}

	serial, serialCounters := run(1)
	parallel, parallelCounters := run(8)

	if serial.Passes < 2 {
		t.Fatalf("workload did not spill: passes=%d", serial.Passes)
	}
	if parallel.Passes != serial.Passes || parallel.Partitions != serial.Partitions {
		t.Errorf("shape diverges: parallel passes=%d parts=%d, serial passes=%d parts=%d",
			parallel.Passes, parallel.Partitions, serial.Passes, serial.Partitions)
	}
	if parallelCounters != serialCounters {
		t.Errorf("counters diverge:\n  parallel %v\n  serial   %v", parallelCounters, serialCounters)
	}
	checkGroups(t, parallel.Groups, rows)

	sortGroups(serial.Groups)
	sortGroups(parallel.Groups)
	for i := range serial.Groups {
		if serial.Groups[i] != parallel.Groups[i] {
			t.Fatalf("group %d diverges: parallel %+v, serial %+v", i, parallel.Groups[i], serial.Groups[i])
		}
	}
}

func TestParallelDistinctMatchesSerial(t *testing.T) {
	rows := spillRows(2000, 900)

	run := func(parallelism int) []int64 {
		disk := env()
		f := load(t, disk, "r", rows)
		vals, err := Distinct(f, 0, 2, 1.2, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, len(vals))
		for i, v := range vals {
			out[i] = v.I
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	serial := run(1)
	parallel := run(8)
	if len(serial) != 900 || len(parallel) != len(serial) {
		t.Fatalf("distinct counts: serial %d, parallel %d, want 900", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("value %d diverges: %d vs %d", i, parallel[i], serial[i])
		}
	}
}
