// Package agg implements the §3.9 hash-based algorithms for the remaining
// relational operations: grouped aggregate functions and projection with
// duplicate elimination.
//
// When the result (one tuple per group) fits in memory, a one-pass hashing
// algorithm wins: every incoming tuple is hashed on the grouping attribute.
// When it does not, the operator falls back to hybrid-hash style
// partitioning — grouping identical values is the same problem as joining
// on them, so the partitioning machinery is shared with the join package.
package agg

import (
	"context"
	"fmt"
	"sync/atomic"

	"mmdb/internal/exec"
	"mmdb/internal/hashjoin"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// spillSeq uniquifies spill-partition prefixes so two concurrent
// aggregates over the same relation never collide on space names.
var spillSeq atomic.Uint64

// Func identifies an aggregate function.
type Func int

// Aggregate functions.
const (
	Count Func = iota
	Sum
	Min
	Max
	Avg
)

// String returns the function's lowercase name.
func (f Func) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// Group is one output row of an aggregate.
type Group struct {
	Key   tuple.Value
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Value returns the aggregate under f.
func (g Group) Value(f Func) float64 {
	switch f {
	case Count:
		return float64(g.Count)
	case Sum:
		return float64(g.Sum)
	case Min:
		return float64(g.Min)
	case Max:
		return float64(g.Max)
	case Avg:
		if g.Count == 0 {
			return 0
		}
		return float64(g.Sum) / float64(g.Count)
	default:
		panic(fmt.Sprintf("agg: invalid func %d", int(f)))
	}
}

// Spec describes a grouped aggregate over an int64 value column.
type Spec struct {
	Input    *heap.File
	GroupCol int // grouping attribute
	ValueCol int // aggregated attribute (must be Int64); ignored for Count-only use
	M        int // pages of memory
	F        float64
	// Parallelism bounds the worker goroutines used to aggregate spilled
	// hash partitions concurrently (the partitions are disjoint in group
	// keys, so their group tables never interact). 0 or 1 means serial,
	// negative means GOMAXPROCS. Counters are identical at every
	// setting; the order of Groups is unspecified either way (the group
	// table is a Go map, whose iteration order is randomized) — parallel
	// merging adds no ordering nondeterminism of its own, since spilled
	// partitions are concatenated in partition-index order.
	Parallelism int
}

func (s Spec) withDefaults() Spec {
	if s.F == 0 {
		s.F = 1.2
	}
	return s
}

// Result carries the output groups and execution shape.
type Result struct {
	Groups     []Group
	Passes     int // 1 = pure one-pass hashing
	Partitions int
}

// Hash executes the aggregate. If the group table overflows memory the
// input is hash-partitioned to disk (hybrid style: the resident fraction
// aggregates on the fly) and each partition is aggregated recursively.
func Hash(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	if spec.Input == nil {
		return nil, fmt.Errorf("agg: nil input")
	}
	schema := spec.Input.Schema()
	if spec.ValueCol < 0 || spec.ValueCol >= schema.NumFields() || schema.Field(spec.ValueCol).Kind != tuple.Int64 {
		return nil, fmt.Errorf("agg: value column must be an int64 field")
	}
	if spec.GroupCol < 0 || spec.GroupCol >= schema.NumFields() {
		return nil, fmt.Errorf("agg: group column %d out of range", spec.GroupCol)
	}
	if spec.M < 2 {
		return nil, fmt.Errorf("agg: need at least 2 pages of memory")
	}
	res := &Result{Passes: 1}
	if err := aggregate(spec, spec.Input, simio.Uncharged, 0, res); err != nil {
		return nil, err
	}
	return res, nil
}

// groupsPerPage estimates how many group cells fit one page; a group cell
// is a key plus four counters.
func groupsPerPage(spec Spec) int {
	schema := spec.Input.Schema()
	cell := schema.FieldWidth(spec.GroupCol) + 32
	return spec.Input.Disk().PageSize() / cell
}

func aggregate(spec Spec, in *heap.File, access simio.Access, level uint32, res *Result) error {
	clock := in.Disk().Clock()
	schema := in.Schema()
	capacity := int(float64(spec.M*groupsPerPage(spec)) / spec.F)
	if capacity < 1 {
		capacity = 1
	}
	hasher := hashjoin.NewHasher(clock, level)

	type cell struct {
		g    Group
		key  []byte
		hash uint64
	}
	table := make(map[uint64][]*cell)
	var count int

	// Overflow partitions are created lazily on first overflow.
	var parts *hashjoin.Partitioner
	var splitter *hashjoin.Splitter
	b := 0

	scanErr := in.Scan(access, func(t tuple.Tuple) bool {
		key := schema.KeyBytes(t, spec.GroupCol)
		h := hasher.Hash(key)
		// Probe the group table (one comparison per candidate, as in the
		// join probes).
		for _, c := range table[h] {
			clock.Comps(1)
			if string(c.key) == string(key) {
				v := schema.Int(t, spec.ValueCol)
				c.g.Count++
				c.g.Sum += v
				if v < c.g.Min {
					c.g.Min = v
				}
				if v > c.g.Max {
					c.g.Max = v
				}
				return true
			}
		}
		if count < capacity {
			v := schema.Int(t, spec.ValueCol)
			clock.Moves(1)
			table[h] = append(table[h], &cell{
				g:   Group{Key: schema.Get(t, spec.GroupCol), Count: 1, Sum: v, Min: v, Max: v},
				key: append([]byte(nil), key...),
			})
			count++
			return true
		}
		// Result exceeds memory ("probably a very unlikely event", §3.9):
		// spill the tuple to a hash partition for a later pass.
		var err error
		if parts == nil {
			b = spec.M - 1
			if b < 1 {
				b = 1
			}
			if b > 64 {
				b = 64
			}
			splitter = hashjoin.Uniform(b)
			flush := simio.Rand
			if b == 1 {
				flush = simio.Seq
			}
			parts, err = hashjoin.NewPartitioner(in.Disk(), clock, schema,
				fmt.Sprintf("%s.agg%d.%d", in.Name(), level, spillSeq.Add(1)), b, flush)
			if err != nil {
				return false
			}
			res.Partitions += b
		}
		err = parts.Add(splitter.Partition(h), t)
		return err == nil
	})
	if scanErr != nil {
		return scanErr
	}

	for _, bucket := range table {
		for _, c := range bucket {
			res.Groups = append(res.Groups, c.g)
		}
	}

	if parts == nil {
		return nil
	}
	out, err := parts.Close()
	if err != nil {
		return err
	}
	if int(level)+2 > res.Passes {
		res.Passes = int(level) + 2
	}

	workers := exec.Workers(spec.Parallelism)
	if workers > 1 && len(out) > 1 {
		// The spilled partitions hold disjoint group keys, so each can be
		// aggregated by its own worker into a local Result. Locals are
		// kept in a partition-indexed slice and merged in index order
		// after the fan-in, so Groups come out in exactly the serial
		// order regardless of worker scheduling. Deeper recursion inside
		// a worker stays serial — the top-level fan-out already
		// saturates the pool.
		sub := spec
		sub.Parallelism = 1
		locals := make([]Result, len(out))
		err := exec.NewPool(workers).ForEach(context.Background(), len(out), func(_ context.Context, i int) error {
			pr := out[i]
			if pr.Tuples == 0 {
				pr.File.Drop()
				return nil
			}
			if err := aggregate(sub, pr.File, simio.Seq, level+1, &locals[i]); err != nil {
				return err
			}
			pr.File.Drop()
			return nil
		})
		if err != nil {
			return err
		}
		for _, local := range locals {
			res.Groups = append(res.Groups, local.Groups...)
			res.Partitions += local.Partitions
			if local.Passes > res.Passes {
				res.Passes = local.Passes
			}
		}
		return nil
	}
	for _, pr := range out {
		if pr.Tuples == 0 {
			pr.File.Drop()
			continue
		}
		if err := aggregate(spec, pr.File, simio.Seq, level+1, res); err != nil {
			return err
		}
		pr.File.Drop()
	}
	return nil
}

// Distinct performs projection with duplicate elimination on one column
// (§3.9: "in projection we are grouping identical tuples"), using the same
// memory-bounded hash machinery. Parallelism applies when the value table
// spills to hash partitions, exactly as in Hash; the non-integer fallback
// runs serially and preserves input order of first appearance.
func Distinct(in *heap.File, col int, m int, f float64, parallelism int) ([]tuple.Value, error) {
	spec := Spec{Input: in, GroupCol: col, ValueCol: col, M: m, F: f, Parallelism: parallelism}
	schema := in.Schema()
	if schema.Field(col).Kind != tuple.Int64 {
		// Reuse the aggregate over a synthetic value by counting only.
		return distinctBytes(in, col, m, f)
	}
	res, err := Hash(spec)
	if err != nil {
		return nil, err
	}
	vals := make([]tuple.Value, len(res.Groups))
	for i, g := range res.Groups {
		vals[i] = g.Key
	}
	return vals, nil
}

// distinctBytes handles non-integer columns with the same algorithm but a
// byte-string group table.
func distinctBytes(in *heap.File, col int, m int, f float64) ([]tuple.Value, error) {
	if f == 0 {
		f = 1.2
	}
	clock := in.Disk().Clock()
	schema := in.Schema()
	hasher := hashjoin.NewHasher(clock, 0)
	seen := make(map[uint64][][]byte)
	var out []tuple.Value
	err := in.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		key := schema.KeyBytes(t, col)
		h := hasher.Hash(key)
		for _, k := range seen[h] {
			clock.Comps(1)
			if string(k) == string(key) {
				return true
			}
		}
		clock.Moves(1)
		seen[h] = append(seen[h], append([]byte(nil), key...))
		out = append(out, schema.Get(t, col))
		return true
	})
	return out, err
}
