package agg

import (
	"sort"
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

func env() *simio.Disk {
	return simio.NewDisk(cost.NewClock(cost.DefaultParams()), 256)
}

var aggSchema = tuple.MustSchema(
	tuple.Field{Name: "grp", Kind: tuple.Int64},
	tuple.Field{Name: "val", Kind: tuple.Int64},
)

func load(t testing.TB, disk *simio.Disk, name string, rows [][2]int64) *heap.File {
	t.Helper()
	f, err := heap.Create(disk, name, aggSchema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := f.Append(aggSchema.MustEncode(tuple.IntValue(r[0]), tuple.IntValue(r[1])), simio.Uncharged); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(simio.Uncharged); err != nil {
		t.Fatal(err)
	}
	return f
}

func oracle(rows [][2]int64) map[int64]Group {
	out := map[int64]Group{}
	for _, r := range rows {
		g, ok := out[r[0]]
		if !ok {
			g = Group{Key: tuple.IntValue(r[0]), Min: r[1], Max: r[1]}
		}
		g.Count++
		g.Sum += r[1]
		if r[1] < g.Min {
			g.Min = r[1]
		}
		if r[1] > g.Max {
			g.Max = r[1]
		}
		out[r[0]] = g
	}
	return out
}

func checkGroups(t *testing.T, got []Group, rows [][2]int64) {
	t.Helper()
	want := oracle(rows)
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for _, g := range got {
		w, ok := want[g.Key.I]
		if !ok {
			t.Fatalf("unexpected group %v", g.Key)
		}
		if g.Count != w.Count || g.Sum != w.Sum || g.Min != w.Min || g.Max != w.Max {
			t.Fatalf("group %v: got %+v want %+v", g.Key, g, w)
		}
	}
}

func TestOnePassAggregate(t *testing.T) {
	disk := env()
	rows := [][2]int64{{1, 10}, {2, 5}, {1, -3}, {3, 7}, {2, 5}}
	f := load(t, disk, "r", rows)
	res, err := Hash(Spec{Input: f, GroupCol: 0, ValueCol: 1, M: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 || res.Partitions != 0 {
		t.Fatalf("expected one pass, got %+v", res)
	}
	checkGroups(t, res.Groups, rows)
	// Derived aggregates.
	for _, g := range res.Groups {
		if g.Key.I == 1 {
			if g.Value(Avg) != 3.5 || g.Value(Count) != 2 || g.Value(Sum) != 7 ||
				g.Value(Min) != -3 || g.Value(Max) != 10 {
				t.Fatalf("derived values wrong: %+v", g)
			}
		}
	}
}

func TestOverflowSpillsAndRecurses(t *testing.T) {
	disk := env()
	var rows [][2]int64
	for i := int64(0); i < 3000; i++ {
		rows = append(rows, [2]int64{i % 700, i})
	}
	f := load(t, disk, "r", rows)
	clock := disk.Clock()
	before := clock.Counters()
	res, err := Hash(Spec{Input: f, GroupCol: 0, ValueCol: 1, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 2 {
		t.Fatalf("expected spill passes, got %d", res.Passes)
	}
	delta := clock.Counters().Sub(before)
	if delta.SeqIOs+delta.RandIOs == 0 {
		t.Fatal("overflow did no IO")
	}
	checkGroups(t, res.Groups, rows)
}

func TestSpecValidation(t *testing.T) {
	disk := env()
	f := load(t, disk, "r", [][2]int64{{1, 1}})
	bad := []Spec{
		{Input: nil, M: 8},
		{Input: f, GroupCol: 0, ValueCol: 9, M: 8},
		{Input: f, GroupCol: -1, ValueCol: 1, M: 8},
		{Input: f, GroupCol: 0, ValueCol: 1, M: 1},
	}
	for i, s := range bad {
		if _, err := Hash(s); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDistinctInt(t *testing.T) {
	disk := env()
	f := load(t, disk, "r", [][2]int64{{5, 0}, {3, 0}, {5, 0}, {9, 0}, {3, 0}})
	vals, err := Distinct(f, 0, 16, 1.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, v := range vals {
		got = append(got, v.I)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestDistinctString(t *testing.T) {
	disk := env()
	sc := tuple.MustSchema(tuple.Field{Name: "s", Kind: tuple.String, Size: 8})
	f, err := heap.Create(disk, "s", sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"b", "a", "b", "c", "a"} {
		f.Append(sc.MustEncode(tuple.StringValue(s)), simio.Uncharged)
	}
	f.Flush(simio.Uncharged)
	vals, err := Distinct(f, 0, 16, 1.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("distinct strings = %v", vals)
	}
	// First-appearance order preserved.
	if vals[0].S != "b" || vals[1].S != "a" || vals[2].S != "c" {
		t.Fatalf("order = %v", vals)
	}
}

// TestQuickAggEqualsOracle: for random rows and tight memory, the hash
// aggregate (possibly spilling) equals the map oracle.
func TestQuickAggEqualsOracle(t *testing.T) {
	f := func(seed int64, n16 uint16, keys8, m8 uint8) bool {
		n := int(n16)%800 + 1
		keys := int64(keys8)%80 + 1
		m := int(m8)%8 + 2
		rows := make([][2]int64, n)
		s := seed
		for i := range rows {
			s = s*6364136223846793005 + 1442695040888963407
			rows[i] = [2]int64{(s >> 3) % keys, (s >> 7) % 1000}
			if rows[i][0] < 0 {
				rows[i][0] = -rows[i][0]
			}
		}
		disk := env()
		file := load(t, disk, "q", rows)
		res, err := Hash(Spec{Input: file, GroupCol: 0, ValueCol: 1, M: m})
		if err != nil {
			t.Log(err)
			return false
		}
		want := oracle(rows)
		if len(res.Groups) != len(want) {
			return false
		}
		for _, g := range res.Groups {
			w := want[g.Key.I]
			if g.Count != w.Count || g.Sum != w.Sum || g.Min != w.Min || g.Max != w.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
