// Cache-conscious kernel layout for the hash table: the same §3.3
// accounting as the chained Table, over a radix-partitioned open-addressing
// layout that keeps each probed region cache-resident.
//
// Counter identity (the cachelab invariant) is by construction, not by
// tuning:
//
//   - Insert charges exactly one move, as Table.Insert does.
//   - Probe charges one comparison per stored entry whose full 64-bit hash
//     equals the probe hash — the same set the chained table charges,
//     because both skip mismatched hashes without charging.
//   - Equal-hash entries are visited in insertion order: under linear
//     probing with no deletions, a later insert with the same home slot
//     always lands strictly later on the probe path (every earlier slot it
//     scans is occupied), and rebuilds during growth re-place entries in
//     insertion order. The chained table's bucket append gives the same
//     order, so matched tuples reach fn in the same sequence.
//
// What changes is purely physical: flat 16-byte slots scanned sequentially
// instead of pointer-chased []entry chains, sub-tables sized to stay inside
// the cache, and a batched probe path that groups a vector of pre-hashed
// keys by destination partition so each sub-table is swept while hot.
package hashjoin

import (
	"bytes"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

// SubTable is the probe-table surface shared by the chained Table and the
// cache-kernel KernelTable; join operators pick the layout via this
// interface without touching their accounting.
type SubTable interface {
	Insert(h uint64, tup tuple.Tuple)
	Probe(h uint64, key []byte, fn func(tuple.Tuple))
	Len() int
}

var (
	_ SubTable = (*Table)(nil)
	_ SubTable = (*KernelTable)(nil)
)

// NewFastHasher returns a hasher producing bit-identical values to
// NewHasher's, computed without the per-call fnv.New64a allocation. Used on
// the kernel path; the slow path stays byte-for-byte the seed code.
func NewFastHasher(clock *cost.Clock, level uint32) Hasher {
	return Hasher{clock: clock, level: level, fast: true}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fastHash is FNV-1a over the 4 big-endian salt bytes followed by key,
// finalized with fmix64 — exactly the sequence Hasher.Hash feeds through
// hash/fnv, with no allocation.
func fastHash(level uint32, key []byte) uint64 {
	salt := level + 0x9e3779b9
	h := uint64(fnvOffset64)
	h = (h ^ uint64(salt>>24&0xff)) * fnvPrime64
	h = (h ^ uint64(salt>>16&0xff)) * fnvPrime64
	h = (h ^ uint64(salt>>8&0xff)) * fnvPrime64
	h = (h ^ uint64(salt&0xff)) * fnvPrime64
	for _, b := range key {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return fmix64(h)
}

const (
	// kernelPartShift selects the radix bits for the sub-table index. The
	// top 32 hash bits belong to Splitter ranges and the topmost bits to
	// ShardedTable routing, so within one disk partition or shard they are
	// constrained; bits 20.. vary freely and the low bits stay available
	// for slot homes.
	kernelPartShift = 20
	// kernelPartTarget is the entry count a sub-table is sized to hold:
	// 8K entries × 16-byte slots ≈ 128KiB of slot array, L2-resident.
	kernelPartTarget = 8192
	kernelMaxParts   = 256
	kernelMinSlots   = 16
	// kernelLoadNum/Den is the open-addressing load-factor target (3/4):
	// a part grows before exceeding it, so probe chains stay short.
	kernelLoadNum = 3
	kernelLoadDen = 4
)

// kslot is one open-addressing slot: the full 64-bit hash for charge-free
// mismatch skips during a sequential scan, and a 1-based index into the
// part's entry arena (0 = empty).
type kslot struct {
	hash uint64
	ref  int32
	_    int32 // pad to 16 bytes so slots never straddle lines unevenly
}

// kentry holds an inserted tuple and its hash (needed to re-place the
// entry, in insertion order, when the part grows).
type kentry struct {
	hash uint64
	tup  tuple.Tuple
}

type kpart struct {
	slots   []kslot
	mask    uint64
	entries []kentry
}

// KernelTable is the cache-kernel replacement for Table: tuples are
// radix-partitioned by hash bits into open-addressing sub-tables small
// enough to stay cache-resident, with flat slot arrays instead of
// per-bucket chains. Accounting is bit-identical to Table (see the package
// comment at the top of this file). Like Table, it is single-owner: one
// goroutine at a time per table.
type KernelTable struct {
	clock  *cost.Clock
	schema *tuple.Schema
	col    int
	parts  []kpart
	pmask  uint64
	n      int
	grows  int

	// ProbeBatch scratch, reused across batches (single-owner, like
	// Insert).
	pbOrder  []int32
	pbCounts []int32
	pbOff    []int32
	pbLen    []int32
	pbCand   []pbCand
	pbTups   []tuple.Tuple
	warmSink uint64
}

// NewKernelTable creates a kernel table sized for the expected number of
// tuples: enough sub-tables to keep each near kernelPartTarget entries, and
// enough slots per sub-table to stay under the load-factor target without
// growing.
func NewKernelTable(clock *cost.Clock, schema *tuple.Schema, col int, expected int) *KernelTable {
	np := 1
	for np < kernelMaxParts && expected > np*kernelPartTarget {
		np <<= 1
	}
	t := &KernelTable{
		clock:  clock,
		schema: schema,
		col:    col,
		parts:  make([]kpart, np),
		pmask:  uint64(np - 1),
	}
	per := ceilDiv(expected, np)
	for i := range t.parts {
		t.parts[i].init(slotsForLoad(per))
	}
	return t
}

// slotsForLoad returns the smallest power-of-two slot count whose
// load-factor target covers expected entries.
func slotsForLoad(expected int) int {
	ns := kernelMinSlots
	for ns*kernelLoadNum/kernelLoadDen < expected {
		ns <<= 1
	}
	return ns
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func (p *kpart) init(nslots int) {
	p.slots = make([]kslot, nslots)
	p.mask = uint64(nslots - 1)
}

func (t *KernelTable) partIndex(h uint64) int {
	return int((h >> kernelPartShift) & t.pmask)
}

// Len returns the number of stored tuples.
func (t *KernelTable) Len() int { return t.n }

// Grows reports how many sub-table rehashes happened during builds; sizing
// tests pin this to zero for well-estimated builds.
func (t *KernelTable) Grows() int { return t.grows }

// NumParts returns the number of radix sub-tables.
func (t *KernelTable) NumParts() int { return len(t.parts) }

// Insert stores tup (whose key hashed to h), charging one move — the same
// single charge as Table.Insert.
func (t *KernelTable) Insert(h uint64, tup tuple.Tuple) {
	t.clock.Moves(1)
	p := &t.parts[t.partIndex(h)]
	if (len(p.entries)+1)*kernelLoadDen > len(p.slots)*kernelLoadNum {
		t.grow(p)
	}
	p.entries = append(p.entries, kentry{hash: h, tup: tup})
	ref := int32(len(p.entries))
	i := h & p.mask
	for p.slots[i].ref != 0 {
		i = (i + 1) & p.mask
	}
	p.slots[i] = kslot{hash: h, ref: ref}
	t.n++
}

// grow doubles a part's slot array and re-places every entry in insertion
// order, preserving equal-hash probe order. Growth is physical
// housekeeping, not a §3 operation: it charges nothing, exactly as the
// chained table's bucket append growth charges nothing.
func (t *KernelTable) grow(p *kpart) {
	t.grows++
	nslots := len(p.slots) * 2
	p.init(nslots)
	for ref, e := range p.entries {
		i := e.hash & p.mask
		for p.slots[i].ref != 0 {
			i = (i + 1) & p.mask
		}
		p.slots[i] = kslot{hash: e.hash, ref: int32(ref + 1)}
	}
}

// Probe calls fn with every stored tuple whose key equals key (which hashed
// to h), charging one comparison per full-hash match — identical charges
// and identical fn order to Table.Probe.
func (t *KernelTable) Probe(h uint64, key []byte, fn func(tuple.Tuple)) {
	p := &t.parts[t.partIndex(h)]
	for i := h & p.mask; ; i = (i + 1) & p.mask {
		s := p.slots[i]
		if s.ref == 0 {
			return
		}
		if s.hash != h {
			continue
		}
		t.clock.Comps(1)
		e := &p.entries[s.ref-1]
		if bytes.Equal(t.schema.KeyBytes(e.tup, t.col), key) {
			fn(e.tup)
		}
	}
}

// BatchSize is the probe-vector length that keeps a batch's per-part groups
// long enough to amortize bringing each sub-table into cache.
func (t *KernelTable) BatchSize() int {
	n := 4 * len(t.parts)
	if n < 256 {
		n = 256
	}
	if n > 4096 {
		n = 4096
	}
	return n
}

// ProbeBatch probes a vector of pre-hashed keys: it groups the batch by
// destination sub-table, sweeps each sub-table with its group while the
// part is cache-hot, then emits matches via fn(i, match) in ascending batch
// index with each index's matches in stored order — exactly the sequence
// len(batch) sequential Probe calls would produce, with identical charges.
// keyOf extracts the probe key from a batch tuple. Single-owner, like
// Insert.
func (t *KernelTable) ProbeBatch(batch []Keyed, keyOf func(tuple.Tuple) []byte, fn func(i int, match tuple.Tuple)) {
	n := len(batch)
	if n == 0 {
		return
	}
	np := len(t.parts)
	order := grow32(&t.pbOrder, n)
	if np == 1 {
		for i := range order {
			order[i] = int32(i)
		}
	} else {
		// Counting sort of batch indices by destination part. Stable, so
		// groups preserve batch order (irrelevant for output — spans are
		// emitted by index below — but it keeps memory access monotone).
		counts := grow32(&t.pbCounts, np+1)
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			counts[t.partIndex(batch[i].Hash)+1]++
		}
		for pi := 1; pi <= np; pi++ {
			counts[pi] += counts[pi-1]
		}
		for i := 0; i < n; i++ {
			pi := t.partIndex(batch[i].Hash)
			order[counts[pi]] = int32(i)
			counts[pi]++
		}
	}

	// Multi-pass sweep over the grouped order. Each pass issues a train of
	// independent loads, so cache misses from different probes overlap
	// instead of serializing down one probe's pointer chain. Charges
	// commute (the clock only sums), so neither the grouped order nor the
	// batched Comps charge below changes any counter.

	// Pass 1: walk each probe's cluster collecting full-hash matches,
	// warming the cluster lines of the probe pdist ahead (home line plus
	// the next line — slots are 16 bytes, four per line) so the walk's
	// loads are L1 hits by the time we reach them. The lookahead window
	// stays a few KiB, so it survives even a small L2. The xor-accumulate
	// keeps the warming loads from being eliminated as dead code.
	// Candidates of one probe stay adjacent and in stored order.
	const pdist = 24
	var warm uint64
	cands := t.pbCand[:0]
	for k, oi := range order {
		if k+pdist < n {
			oj := order[k+pdist]
			hj := batch[oj].Hash
			pj := &t.parts[t.partIndex(hj)]
			ij := hj & pj.mask
			warm ^= pj.slots[ij].hash ^ pj.slots[(ij+4)&pj.mask].hash
		}
		h := batch[oi].Hash
		pi := t.partIndex(h)
		p := &t.parts[pi]
		idx := h & p.mask
		s := p.slots[idx]
		for s.ref != 0 {
			if s.hash == h {
				cands = append(cands, pbCand{k: oi, part: int32(pi), ref: s.ref})
			}
			idx = (idx + 1) & p.mask
			s = p.slots[idx]
		}
	}

	// The §3 probe cost: one comparison per full-hash candidate, exactly
	// what per-tuple probing charges one by one.
	t.clock.Comps(int64(len(cands)))

	// Pass 3: warm the candidate entry lines; pass 4: warm the stored
	// tuples' data lines.
	for _, c := range cands {
		warm ^= t.parts[c.part].entries[c.ref-1].hash
	}
	for _, c := range cands {
		tup := t.parts[c.part].entries[c.ref-1].tup
		warm ^= uint64(tup[0])
	}
	t.warmSink = warm

	// Pass 5: compare keys and record each probe's match span.
	off := grow32(&t.pbOff, n)
	cnt := grow32(&t.pbLen, n)
	for i := range cnt {
		cnt[i] = 0
	}
	tups := t.pbTups[:0]
	for ci := 0; ci < len(cands); {
		i := cands[ci].k
		key := keyOf(batch[i].Tuple)
		start := len(tups)
		for ; ci < len(cands) && cands[ci].k == i; ci++ {
			c := cands[ci]
			e := &t.parts[c.part].entries[c.ref-1]
			if bytes.Equal(t.schema.KeyBytes(e.tup, t.col), key) {
				tups = append(tups, e.tup)
			}
		}
		off[i] = int32(start)
		cnt[i] = int32(len(tups) - start)
	}
	t.pbCand = cands[:0]

	// Emit in batch order.
	for i := 0; i < n; i++ {
		for j := off[i]; j < off[i]+cnt[i]; j++ {
			fn(i, tups[j])
		}
	}
	t.pbTups = tups[:0]
}

// pbCand is one full-hash probe candidate: which batch index produced it
// and where its entry lives.
type pbCand struct {
	k    int32
	part int32
	ref  int32
}

func grow32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// NewShardedKernelTable is NewShardedTable with kernel-layout shards. Each
// shard's sub-tables are sized for its ceil(expected/ns) share rounded up
// to the load-factor target, plus 1/8 skew headroom, so realistic hash skew
// does not force a mid-build rehash.
func NewShardedKernelTable(clock *cost.Clock, schema *tuple.Schema, col int, expected, nshards int) *ShardedTable {
	ns := 1
	for ns < nshards {
		ns <<= 1
	}
	k := uint(0)
	for 1<<k < ns {
		k++
	}
	st := &ShardedTable{shards: make([]SubTable, ns), shift: 64 - k}
	per := ceilDiv(expected, ns)
	per += ceilDiv(per, 8)
	for i := range st.shards {
		st.shards[i] = NewKernelTable(clock, schema, col, per)
	}
	return st
}

// KernelShard returns shard i as a *KernelTable when the sharded table was
// built by NewShardedKernelTable, for batch probing; nil otherwise.
func (st *ShardedTable) KernelShard(i int) *KernelTable {
	kt, _ := st.shards[i].(*KernelTable)
	return kt
}
