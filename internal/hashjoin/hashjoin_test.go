package hashjoin

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

func key(k int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k)^(1<<63))
	return b[:]
}

func TestHasherChargesAndIsDeterministic(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	h := NewHasher(clock, 0)
	a := h.Hash(key(42))
	b := h.Hash(key(42))
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if clock.Counters().Hashes != 2 {
		t.Fatalf("charged %d hashes", clock.Counters().Hashes)
	}
	h2 := NewHasher(clock, 1)
	if h2.Hash(key(42)) == a {
		t.Fatal("levels must decorrelate the hash")
	}
}

func TestHashHighBitsAreUniform(t *testing.T) {
	// The Splitter keys on the top 32 bits; sequential integer keys must
	// spread evenly (this was a real bug: bare FNV does not avalanche).
	clock := cost.NewClock(cost.DefaultParams())
	h := NewHasher(clock, 0)
	const n = 4000
	const buckets = 8
	counts := make([]int, buckets)
	sp := Uniform(buckets)
	for i := int64(0); i < n; i++ {
		counts[sp.Partition(h.Hash(key(i)))]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("bucket %d has %d of expected %.0f: %v", i, c, want, counts)
		}
	}
}

func TestSplitterWeights(t *testing.T) {
	sp, err := NewSplitter([]float64{0.5, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	clock := cost.NewClock(cost.DefaultParams())
	h := NewHasher(clock, 3)
	const n = 20000
	counts := make([]int, 3)
	for i := int64(0); i < n; i++ {
		counts[sp.Partition(h.Hash(key(i)))]++
	}
	for i, want := range []float64{0.5, 0.25, 0.25} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("partition %d got %.3f of traffic, want %.2f", i, got, want)
		}
	}
}

func TestSplitterValidation(t *testing.T) {
	if _, err := NewSplitter(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewSplitter([]float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewSplitter([]float64{0, 0}); err == nil {
		t.Error("zero weights accepted")
	}
	// Zero-weight partitions simply receive nothing.
	sp, err := NewSplitter([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	clock := cost.NewClock(cost.DefaultParams())
	h := NewHasher(clock, 0)
	for i := int64(0); i < 100; i++ {
		if sp.Partition(h.Hash(key(i))) != 1 {
			t.Fatal("zero-weight partition got traffic")
		}
	}
}

func TestQuickPartitionIsTotalAndStable(t *testing.T) {
	f := func(weights8 [5]uint8, k int64) bool {
		ws := make([]float64, 0, 5)
		sum := 0.0
		for _, w := range weights8 {
			ws = append(ws, float64(w))
			sum += float64(w)
		}
		if sum == 0 {
			ws[0] = 1
		}
		sp, err := NewSplitter(ws)
		if err != nil {
			return false
		}
		clock := cost.NewClock(cost.DefaultParams())
		h := NewHasher(clock, 0)
		p := sp.Partition(h.Hash(key(k)))
		return p >= 0 && p < sp.NumPartitions() && p == sp.Partition(h.Hash(key(k)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableInsertProbe(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	schema := tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "v", Kind: tuple.Int64},
	)
	tab := NewTable(clock, schema, 0, 16)
	h := NewHasher(clock, 0)
	for i := int64(0); i < 50; i++ {
		tab.Insert(h.Hash(key(i%10)), schema.MustEncode(tuple.IntValue(i%10), tuple.IntValue(i)))
	}
	if tab.Len() != 50 {
		t.Fatalf("len = %d", tab.Len())
	}
	found := 0
	tab.Probe(h.Hash(key(3)), key(3), func(tuple.Tuple) { found++ })
	if found != 5 {
		t.Fatalf("probe found %d of 5 duplicates", found)
	}
	found = 0
	tab.Probe(h.Hash(key(99)), key(99), func(tuple.Tuple) { found++ })
	if found != 0 {
		t.Fatal("probe of missing key matched")
	}
	c := clock.Counters()
	if c.Moves != 50 {
		t.Fatalf("inserts charged %d moves", c.Moves)
	}
	if c.Comps == 0 {
		t.Fatal("probes charged no comparisons")
	}
}

func TestPartitionerFlushesAndCharges(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	disk := simio.NewDisk(clock, 256)
	schema := tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "p", Kind: tuple.String, Size: 12},
	)
	src := heap.MustCreate(disk, "src", schema)
	for i := int64(0); i < 120; i++ {
		src.Append(schema.MustEncode(tuple.IntValue(i), tuple.StringValue("x")), simio.Uncharged)
	}
	src.Flush(simio.Uncharged)

	p, err := NewPartitioner(disk, clock, schema, "part", 4, simio.Rand)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHasher(clock, 0)
	sp := Uniform(4)
	src.Scan(simio.Uncharged, func(tp tuple.Tuple) bool {
		if err := p.Add(sp.Partition(h.Hash(schema.KeyBytes(tp, 0))), tp); err != nil {
			t.Fatal(err)
		}
		return true
	})
	parts, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, pr := range parts {
		total += pr.Tuples
		if pr.File.NumTuples() != pr.Tuples {
			t.Fatal("partition tuple count mismatch")
		}
	}
	if total != 120 {
		t.Fatalf("partitions hold %d of 120 tuples", total)
	}
	c := clock.Counters()
	if c.Moves != 120 {
		t.Fatalf("charged %d moves", c.Moves)
	}
	if c.RandIOs == 0 {
		t.Fatal("no flush IO charged")
	}
	if _, err := NewPartitioner(disk, clock, schema, "bad", 0, simio.Rand); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

// TestSameKeysColocate is the §3.3 correctness property: partitioning R and
// S with the same h and splitter puts matching keys in matching partitions.
func TestSameKeysColocate(t *testing.T) {
	f := func(keys []int64, b8 uint8) bool {
		if len(keys) == 0 {
			return true
		}
		b := int(b8)%7 + 1
		clock := cost.NewClock(cost.DefaultParams())
		h := NewHasher(clock, 0)
		sp := Uniform(b)
		for _, k := range keys {
			pr := sp.Partition(h.Hash(key(k)))
			ps := sp.Partition(h.Hash(key(k)))
			if pr != ps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
