// Package hashjoin provides the shared machinery of the paper's hash-based
// algorithms (§3.3): a salted hash function, a weighted splitter that
// realizes "a partition of R compatible with h", a cost-counting chained
// hash table, and a disk partitioner with one output buffer page per
// partition.
//
// Cost discipline: hashing a key is charged exactly once per tuple per pass
// by the caller (via Hasher), inserting charges one move, probing charges
// one comparison per examined candidate. This mirrors the per-term
// accounting of the paper's cost formulas.
package hashjoin

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// Hasher hashes key bytes, charging the clock one hash per call. The level
// salt decorrelates recursive partitioning passes (the paper's "extra pass
// for the overflow tuples" must use a fresh hash split).
type Hasher struct {
	clock *cost.Clock
	level uint32
	fast  bool
}

// NewHasher returns a hasher at the given recursion level.
func NewHasher(clock *cost.Clock, level uint32) Hasher {
	return Hasher{clock: clock, level: level}
}

// Hash returns a 64-bit hash of key, charging one hash operation. The fast
// (kernel) variant computes the identical value without allocating.
func (h Hasher) Hash(key []byte) uint64 {
	h.clock.Hashes(1)
	if h.fast {
		return fastHash(h.level, key)
	}
	f := fnv.New64a()
	var salt [4]byte
	binary.BigEndian.PutUint32(salt[:], h.level+0x9e3779b9)
	f.Write(salt[:])
	f.Write(key)
	return fmix64(f.Sum64())
}

// fmix64 is the MurmurHash3 finalizer. FNV alone leaves the high bits
// poorly avalanched when inputs differ only in trailing bytes (as
// big-endian integer keys do), which would defeat the Splitter's use of
// the top 32 bits.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Splitter maps hash values to partitions according to a weight vector:
// the general method of §3.3 for building a partition of R compatible with
// h from a partition of the hash value space.
type Splitter struct {
	cuts []uint64 // ascending; partition i covers [cuts[i-1], cuts[i])
}

// NewSplitter builds a splitter whose partition i receives a fraction
// weights[i] of the hash space. Weights must be non-negative and sum to
// a positive value; they are normalized.
func NewSplitter(weights []float64) (*Splitter, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("hashjoin: splitter needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("hashjoin: negative weight %g at %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("hashjoin: weights sum to zero")
	}
	const space = 1 << 32
	cuts := make([]uint64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / sum
		cuts[i] = uint64(acc * space)
	}
	cuts[len(cuts)-1] = space
	return &Splitter{cuts: cuts}, nil
}

// Uniform returns a splitter with n equal partitions.
func Uniform(n int) *Splitter {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	s, err := NewSplitter(w)
	if err != nil {
		panic(err)
	}
	return s
}

// NumPartitions returns the number of partitions.
func (s *Splitter) NumPartitions() int { return len(s.cuts) }

// Partition maps a hash value to its partition index.
func (s *Splitter) Partition(h uint64) int {
	x := h >> 32
	lo, hi := 0, len(s.cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if x >= s.cuts[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

type entry struct {
	hash uint64
	tup  tuple.Tuple
}

// Table is a chained hash table over tuples keyed by one column. Inserts
// charge one move; probes charge one comparison per candidate examined
// (the paper's F*comp expected probe cost).
type Table struct {
	clock   *cost.Clock
	schema  *tuple.Schema
	col     int
	buckets [][]entry
	mask    uint64
	n       int
}

// NewTable creates a table sized for the expected number of tuples.
func NewTable(clock *cost.Clock, schema *tuple.Schema, col int, expected int) *Table {
	nb := 16
	for nb < expected {
		nb <<= 1
	}
	return &Table{
		clock:   clock,
		schema:  schema,
		col:     col,
		buckets: make([][]entry, nb),
		mask:    uint64(nb - 1),
	}
}

// Len returns the number of stored tuples.
func (t *Table) Len() int { return t.n }

// Insert stores tup (whose key hashed to h), charging one move.
func (t *Table) Insert(h uint64, tup tuple.Tuple) {
	t.clock.Moves(1)
	b := h & t.mask
	t.buckets[b] = append(t.buckets[b], entry{hash: h, tup: tup})
	t.n++
}

// Probe calls fn with every stored tuple whose key equals key (which hashed
// to h). Each candidate whose full key is compared charges one comparison.
func (t *Table) Probe(h uint64, key []byte, fn func(tuple.Tuple)) {
	for _, e := range t.buckets[h&t.mask] {
		if e.hash != h {
			continue
		}
		t.clock.Comps(1)
		if keyEqual(t.schema.KeyBytes(e.tup, t.col), key) {
			fn(e.tup)
		}
	}
}

// Keyed is a pre-hashed tuple, the unit of work the parallel operators
// route between hash shards: the hash is computed (and charged) once on
// the scanning goroutine, then carried to whichever worker owns the shard.
type Keyed struct {
	Hash  uint64
	Tuple tuple.Tuple
}

// ShardedTable is a hash table split into 2^k independently owned shards,
// routed by the top bits of the 64-bit hash — disjoint from the low bits
// Table uses for bucket selection. Distinct shards may be built and probed
// concurrently without locks; a single shard must be owned by one
// goroutine at a time. Cost accounting is identical to one big Table:
// inserts charge one move and probes one comparison per full-hash match,
// and since a matching 64-bit hash lands two tuples in the same shard and
// bucket under any sharding, a parallel run tallies exactly the same
// counters as a serial one.
//
// The shard index reuses the hash bits a Splitter would consume, so a
// ShardedTable must not be combined with a Splitter over the same hash
// values; the operators only use it when the whole relation is
// memory-resident and no disk partitioning happens (§3.7's q = 1 case).
type ShardedTable struct {
	shards []SubTable
	shift  uint
}

// NewShardedTable creates a table of nshards shards (rounded up to a power
// of two) sized for the expected total number of tuples. Per-shard sizing
// rounds the share up (ceil, not truncate-plus-one) so shards never start
// undersized; NewShardedKernelTable further rounds up to the
// open-addressing load-factor target with skew headroom.
func NewShardedTable(clock *cost.Clock, schema *tuple.Schema, col int, expected, nshards int) *ShardedTable {
	ns := 1
	for ns < nshards {
		ns <<= 1
	}
	k := uint(0)
	for 1<<k < ns {
		k++
	}
	st := &ShardedTable{shards: make([]SubTable, ns), shift: 64 - k}
	per := ceilDiv(expected, ns)
	for i := range st.shards {
		st.shards[i] = NewTable(clock, schema, col, per)
	}
	return st
}

// NumShards returns the number of shards (a power of two).
func (st *ShardedTable) NumShards() int { return len(st.shards) }

// ShardOf maps a hash value to the index of the shard that owns it.
func (st *ShardedTable) ShardOf(h uint64) int { return int(h >> st.shift) }

// Shard returns shard i for direct single-owner access by a worker.
func (st *ShardedTable) Shard(i int) SubTable { return st.shards[i] }

// Insert routes tup (whose key hashed to h) to its shard, charging one
// move. Not safe for concurrent calls that map to the same shard; workers
// partition the input by ShardOf first.
func (st *ShardedTable) Insert(h uint64, tup tuple.Tuple) {
	st.shards[st.ShardOf(h)].Insert(h, tup)
}

// Probe calls fn with every stored tuple whose key equals key (which
// hashed to h), charging one comparison per full-hash candidate.
func (st *ShardedTable) Probe(h uint64, key []byte, fn func(tuple.Tuple)) {
	st.shards[st.ShardOf(h)].Probe(h, key, fn)
}

// Len returns the total number of stored tuples across all shards.
func (st *ShardedTable) Len() int {
	n := 0
	for _, s := range st.shards {
		n += s.Len()
	}
	return n
}

func keyEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PartitionResult describes one disk partition produced by Partition.
type PartitionResult struct {
	File   *heap.File
	Tuples int64
}

// Partitioner writes tuples into B disk partitions using one page-sized
// output buffer per partition (§3.6 step 1 / §3.7 step 1). Flushes are
// charged at flushAccess — random IO in the general case, sequential when
// there is a single output buffer (the paper's footnoted discontinuity at
// |M| = |R|*F/2).
type Partitioner struct {
	disk        *simio.Disk
	clock       *cost.Clock
	files       []*heap.File
	flushAccess simio.Access
}

// NewPartitioner creates B empty partition files named prefix.0 .. prefix.B-1.
func NewPartitioner(disk *simio.Disk, clock *cost.Clock, schema *tuple.Schema, prefix string, b int, flushAccess simio.Access) (*Partitioner, error) {
	if b < 1 {
		return nil, fmt.Errorf("hashjoin: need at least one partition, got %d", b)
	}
	p := &Partitioner{disk: disk, clock: clock, flushAccess: flushAccess}
	for i := 0; i < b; i++ {
		f, err := heap.Create(disk, fmt.Sprintf("%s.%d", prefix, i), schema)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
	}
	return p, nil
}

// Add moves tup into partition i's output buffer, charging one move. Page
// flushes charge the partitioner's flush access kind.
func (p *Partitioner) Add(i int, tup tuple.Tuple) error {
	p.clock.Moves(1)
	return p.files[i].Append(tup.Clone(), p.flushAccess)
}

// Close flushes all output buffers (§3.6: "flush all output buffers to
// disk") and returns the partitions.
func (p *Partitioner) Close() ([]PartitionResult, error) {
	out := make([]PartitionResult, len(p.files))
	for i, f := range p.files {
		if err := f.Flush(p.flushAccess); err != nil {
			return nil, err
		}
		out[i] = PartitionResult{File: f, Tuples: f.NumTuples()}
	}
	return out, nil
}
