package hashjoin

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

func BenchmarkHash(b *testing.B) {
	clock := cost.NewClock(cost.DefaultParams())
	h := NewHasher(clock, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Hash(key(int64(i)))
	}
}

func BenchmarkTableInsertProbe(b *testing.B) {
	clock := cost.NewClock(cost.DefaultParams())
	schema := tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "v", Kind: tuple.Int64},
	)
	h := NewHasher(clock, 0)
	tab := NewTable(clock, schema, 0, 1<<16)
	for i := int64(0); i < 1<<16; i++ {
		tab.Insert(h.Hash(key(i)), schema.MustEncode(tuple.IntValue(i), tuple.IntValue(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key(int64(i) & (1<<16 - 1))
		tab.Probe(h.Hash(k), k, func(tuple.Tuple) {})
	}
}

// benchTuples builds n pre-hashed (key, seq) tuples with ~25% duplicate
// keys, shared by the kernel benchmarks.
func benchTuples(n int) ([]Keyed, *tuple.Schema) {
	schema := tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "v", Kind: tuple.Int64},
	)
	clock := cost.NewClock(cost.DefaultParams())
	h := NewFastHasher(clock, 0)
	out := make([]Keyed, n)
	for i := 0; i < n; i++ {
		k := int64(i % (n * 3 / 4))
		out[i] = Keyed{Hash: h.Hash(key(k)), Tuple: schema.MustEncode(tuple.IntValue(k), tuple.IntValue(int64(i)))}
	}
	return out, schema
}

// BenchmarkRadixBuild compares building the chained layout against the
// radix open-addressing kernel layout (old vs new for benchstat).
func BenchmarkRadixBuild(b *testing.B) {
	const n = 1 << 21
	tuples, schema := benchTuples(n)
	b.Run("layout=chained", func(b *testing.B) {
		clock := cost.NewClock(cost.DefaultParams())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab := NewTable(clock, schema, 0, n)
			for j := range tuples {
				tab.Insert(tuples[j].Hash, tuples[j].Tuple)
			}
		}
	})
	b.Run("layout=kernel", func(b *testing.B) {
		clock := cost.NewClock(cost.DefaultParams())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab := NewKernelTable(clock, schema, 0, n)
			for j := range tuples {
				tab.Insert(tuples[j].Hash, tuples[j].Tuple)
			}
		}
	})
}

// BenchmarkProbeBatch compares probing a built table: chained per-tuple
// (old), kernel per-tuple, and kernel batched with partition grouping
// (new).
func BenchmarkProbeBatch(b *testing.B) {
	const n = 1 << 21
	tuples, schema := benchTuples(n)
	keyOf := func(tup tuple.Tuple) []byte { return schema.KeyBytes(tup, 0) }
	sink := 0

	b.Run("layout=chained", func(b *testing.B) {
		clock := cost.NewClock(cost.DefaultParams())
		tab := NewTable(clock, schema, 0, n)
		for j := range tuples {
			tab.Insert(tuples[j].Hash, tuples[j].Tuple)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kd := tuples[i%n]
			tab.Probe(kd.Hash, keyOf(kd.Tuple), func(tuple.Tuple) { sink++ })
		}
	})
	b.Run("layout=kernel", func(b *testing.B) {
		clock := cost.NewClock(cost.DefaultParams())
		tab := NewKernelTable(clock, schema, 0, n)
		for j := range tuples {
			tab.Insert(tuples[j].Hash, tuples[j].Tuple)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kd := tuples[i%n]
			tab.Probe(kd.Hash, keyOf(kd.Tuple), func(tuple.Tuple) { sink++ })
		}
	})
	b.Run("layout=kernel-batch", func(b *testing.B) {
		clock := cost.NewClock(cost.DefaultParams())
		tab := NewKernelTable(clock, schema, 0, n)
		for j := range tuples {
			tab.Insert(tuples[j].Hash, tuples[j].Tuple)
		}
		bs := tab.BatchSize()
		b.ResetTimer()
		for done := 0; done < b.N; {
			lo := done % n
			hi := lo + bs
			if hi > n {
				hi = n
			}
			if hi-lo > b.N-done {
				hi = lo + b.N - done
			}
			tab.ProbeBatch(tuples[lo:hi], keyOf, func(int, tuple.Tuple) { sink++ })
			done += hi - lo
		}
	})
	_ = sink
}
