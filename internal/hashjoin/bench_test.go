package hashjoin

import (
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

func BenchmarkHash(b *testing.B) {
	clock := cost.NewClock(cost.DefaultParams())
	h := NewHasher(clock, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Hash(key(int64(i)))
	}
}

func BenchmarkTableInsertProbe(b *testing.B) {
	clock := cost.NewClock(cost.DefaultParams())
	schema := tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "v", Kind: tuple.Int64},
	)
	h := NewHasher(clock, 0)
	tab := NewTable(clock, schema, 0, 1<<16)
	for i := int64(0); i < 1<<16; i++ {
		tab.Insert(h.Hash(key(i)), schema.MustEncode(tuple.IntValue(i), tuple.IntValue(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key(int64(i) & (1<<16 - 1))
		tab.Probe(h.Hash(k), k, func(tuple.Tuple) {})
	}
}
