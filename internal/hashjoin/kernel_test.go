package hashjoin

import (
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
	"mmdb/internal/tuple"
)

func kvSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.Int64},
		tuple.Field{Name: "v", Kind: tuple.Int64},
	)
}

func TestRadixFastHashMatchesSlow(t *testing.T) {
	clock := cost.NewClock(cost.DefaultParams())
	f := func(k int64, level uint32) bool {
		slow := NewHasher(clock, level)
		fast := NewFastHasher(clock, level)
		return slow.Hash(key(k)) == fast.Hash(key(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Variable-length keys too.
	slow, fast := NewHasher(clock, 7), NewFastHasher(clock, 7)
	for n := 0; n < 40; n++ {
		k := make([]byte, n)
		for i := range k {
			k[i] = byte(i * 37)
		}
		if slow.Hash(k) != fast.Hash(k) {
			t.Fatalf("fast hash diverges at key length %d", n)
		}
	}
}

// probeRec is one fn callback: which probe produced it and the matched
// tuple's payload, for order-sensitive comparison.
type probeRec struct {
	probe int
	val   int64
}

// buildBoth inserts the same (key, seq) stream into a chained Table and a
// KernelTable on separate clocks and returns both plus the clocks.
func buildBoth(t *testing.T, n int, dupEvery int, expected int) (*Table, *KernelTable, *cost.Clock, *cost.Clock) {
	t.Helper()
	schema := kvSchema()
	ct, kt := cost.NewClock(cost.DefaultParams()), cost.NewClock(cost.DefaultParams())
	chained := NewTable(ct, schema, 0, expected)
	kernel := NewKernelTable(kt, schema, 0, expected)
	hc, hk := NewHasher(ct, 0), NewFastHasher(kt, 0)
	for i := 0; i < n; i++ {
		k := int64(i)
		if dupEvery > 0 {
			k = int64(i % dupEvery)
		}
		tup := schema.MustEncode(tuple.IntValue(k), tuple.IntValue(int64(i)))
		chained.Insert(hc.Hash(key(k)), tup)
		kernel.Insert(hk.Hash(key(k)), tup)
	}
	return chained, kernel, ct, kt
}

func TestRadixTableMatchesChained(t *testing.T) {
	for _, tc := range []struct {
		name             string
		n, dupEvery, est int
	}{
		{"small", 500, 0, 500},
		{"dups", 2000, 37, 2000},
		{"underestimated", 20000, 0, 100}, // forces mid-build growth
		{"multipart", 60000, 113, 60000},  // several radix sub-tables
	} {
		t.Run(tc.name, func(t *testing.T) {
			schema := kvSchema()
			chained, kernel, ct, kt := buildBoth(t, tc.n, tc.dupEvery, tc.est)
			if chained.Len() != kernel.Len() {
				t.Fatalf("len: chained %d kernel %d", chained.Len(), kernel.Len())
			}
			if bc, bk := ct.Counters(), kt.Counters(); bc != bk {
				t.Fatalf("build counters diverge:\nchained %+v\nkernel  %+v", bc, bk)
			}
			hc, hk := NewHasher(ct, 0), NewFastHasher(kt, 0)
			keys := tc.n
			if tc.dupEvery > 0 {
				keys = tc.dupEvery
			}
			var got, want []probeRec
			for p := 0; p < keys+50; p++ { // +50 probes miss
				k := key(int64(p))
				chained.Probe(hc.Hash(k), k, func(tup tuple.Tuple) {
					v := schema.Int(tup, 1)
					want = append(want, probeRec{p, v})
				})
				kernel.Probe(hk.Hash(k), k, func(tup tuple.Tuple) {
					v := schema.Int(tup, 1)
					got = append(got, probeRec{p, v})
				})
			}
			if len(got) != len(want) {
				t.Fatalf("match count: kernel %d chained %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("match %d: kernel %+v chained %+v (order must be identical)", i, got[i], want[i])
				}
			}
			if cc, ck := ct.Counters(), kt.Counters(); cc != ck {
				t.Fatalf("probe counters diverge:\nchained %+v\nkernel  %+v", cc, ck)
			}
		})
	}
}

func TestRadixProbeBatchMatchesSequential(t *testing.T) {
	schema := kvSchema()
	clock := cost.NewClock(cost.DefaultParams())
	kernel := NewKernelTable(clock, schema, 0, 40000)
	h := NewFastHasher(clock, 0)
	for i := 0; i < 40000; i++ {
		k := int64(i % 9000)
		kernel.Insert(h.Hash(key(k)), schema.MustEncode(tuple.IntValue(k), tuple.IntValue(int64(i))))
	}
	if kernel.NumParts() < 2 {
		t.Fatalf("want a multi-part table to exercise grouping, got %d part(s)", kernel.NumParts())
	}

	var batch []Keyed
	for p := 0; p < 1000; p++ {
		k := int64(p * 11 % 10000) // some miss
		batch = append(batch, Keyed{Hash: h.Hash(key(k)), Tuple: schema.MustEncode(tuple.IntValue(k), tuple.IntValue(0))})
	}
	keyOf := func(tup tuple.Tuple) []byte { return schema.KeyBytes(tup, 0) }

	before := clock.Counters()
	var want []probeRec
	for i := range batch {
		kernel.Probe(batch[i].Hash, keyOf(batch[i].Tuple), func(tup tuple.Tuple) {
			v := schema.Int(tup, 1)
			want = append(want, probeRec{i, v})
		})
	}
	seq := clock.Counters().Sub(before)

	before = clock.Counters()
	var got []probeRec
	kernel.ProbeBatch(batch, keyOf, func(i int, tup tuple.Tuple) {
		v := schema.Int(tup, 1)
		got = append(got, probeRec{i, v})
	})
	batched := clock.Counters().Sub(before)

	if seq != batched {
		t.Fatalf("counters diverge: sequential %+v batched %+v", seq, batched)
	}
	if len(got) != len(want) {
		t.Fatalf("match count: batched %d sequential %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: batched %+v sequential %+v (emission order must be identical)", i, got[i], want[i])
		}
	}
}

func TestRadixShardedKernelSizingNoRehash(t *testing.T) {
	// The per-shard share is rounded up to the load-factor target with 1/8
	// skew headroom, so a realistic (hash-random, mildly skewed) build must
	// never rehash a sub-table mid-build.
	schema := kvSchema()
	clock := cost.NewClock(cost.DefaultParams())
	const expected = 50000
	st := NewShardedKernelTable(clock, schema, 0, expected, 8)
	h := NewFastHasher(clock, 0)
	for i := 0; i < expected; i++ {
		k := int64(i)
		st.Insert(h.Hash(key(k)), schema.MustEncode(tuple.IntValue(k), tuple.IntValue(k)))
	}
	if st.Len() != expected {
		t.Fatalf("len = %d", st.Len())
	}
	for i := 0; i < st.NumShards(); i++ {
		ks := st.KernelShard(i)
		if ks == nil {
			t.Fatalf("shard %d is not a kernel table", i)
		}
		if g := ks.Grows(); g != 0 {
			t.Fatalf("shard %d rehashed %d time(s) mid-build (len %d)", i, g, ks.Len())
		}
	}
}

func TestRadixShardedKernelMatchesChainedSharded(t *testing.T) {
	schema := kvSchema()
	cc, kc := cost.NewClock(cost.DefaultParams()), cost.NewClock(cost.DefaultParams())
	const n, shards = 20000, 4
	chained := NewShardedTable(cc, schema, 0, n, shards)
	kernel := NewShardedKernelTable(kc, schema, 0, n, shards)
	hc, hk := NewHasher(cc, 0), NewFastHasher(kc, 0)
	for i := 0; i < n; i++ {
		k := int64(i % 5000)
		tup := schema.MustEncode(tuple.IntValue(k), tuple.IntValue(int64(i)))
		chained.Insert(hc.Hash(key(k)), tup)
		kernel.Insert(hk.Hash(key(k)), tup)
	}
	var got, want []probeRec
	for p := 0; p < 6000; p++ {
		k := key(int64(p))
		chained.Probe(hc.Hash(k), k, func(tup tuple.Tuple) {
			v := schema.Int(tup, 1)
			want = append(want, probeRec{p, v})
		})
		kernel.Probe(hk.Hash(k), k, func(tup tuple.Tuple) {
			v := schema.Int(tup, 1)
			got = append(got, probeRec{p, v})
		})
	}
	if len(got) != len(want) {
		t.Fatalf("match count: kernel %d chained %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: kernel %+v chained %+v", i, got[i], want[i])
		}
	}
	if c1, c2 := cc.Counters(), kc.Counters(); c1 != c2 {
		t.Fatalf("counters diverge:\nchained %+v\nkernel  %+v", c1, c2)
	}
}
