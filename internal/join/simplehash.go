package join

import (
	"fmt"

	"mmdb/internal/hashjoin"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// simpleHash is the multipass simple-hash join of §3.5. Each pass fills
// memory with a hash table for the fraction of R that fits, scans S against
// it, and writes the passed-over tuples of both relations to disk files
// that become the next pass's inputs. The pass count A grows as
// |R|*F / |M|, which is why the algorithm collapses when memory is small.
func simpleHash(spec Spec, emit Emit, res *Result) error {
	disk := spec.R.Disk()
	clock := disk.Clock()
	rSchema, sSchema := spec.R.Schema(), spec.S.Schema()
	prefix := tmpPrefix(SimpleHash)

	rCur, sCur := spec.R, spec.S
	access := simio.Uncharged // the first pass reads the base relations
	for pass := 0; ; pass++ {
		res.Passes = pass + 1
		remaining := rCur.NumTuples()
		if remaining == 0 {
			if pass > 0 {
				rCur.Drop()
				sCur.Drop()
			}
			break
		}
		capacity := tableCapacity(spec.M, rCur, spec.F)
		resident := float64(capacity) / float64(remaining)
		if resident > 1 {
			resident = 1
		}
		hasher := spec.newHasher(clock, uint32(pass))
		var splitter *hashjoin.Splitter
		if resident < 1 {
			var err error
			splitter, err = hashjoin.NewSplitter([]float64{resident, 1 - resident})
			if err != nil {
				return err
			}
		}

		expect := int64(capacity)
		if remaining < expect {
			expect = remaining
		}
		table := spec.newTable(clock, rSchema, spec.RCol, int(expect))

		var rNext, sNext *heap.File
		if splitter != nil {
			var err error
			rNext, err = heap.Create(disk, fmt.Sprintf("%s.r.%d", prefix, pass+1), rSchema)
			if err != nil {
				return err
			}
			sNext, err = heap.Create(disk, fmt.Sprintf("%s.s.%d", prefix, pass+1), sSchema)
			if err != nil {
				return err
			}
		}

		// Step 1: scan R; resident tuples enter the hash table, the rest
		// are passed over to disk (§3.5 step 1).
		err := rCur.Scan(access, func(t tuple.Tuple) bool {
			h := hasher.Hash(rSchema.KeyBytes(t, spec.RCol))
			if splitter == nil || splitter.Partition(h) == 0 {
				table.Insert(h, t.Clone())
				return true
			}
			clock.Moves(1)
			err := rNext.Append(t.Clone(), simio.Seq)
			return err == nil
		})
		if err != nil {
			return err
		}
		if rNext != nil {
			if err := rNext.Flush(simio.Seq); err != nil {
				return err
			}
		}

		// Step 2: scan S; tuples hashing into the chosen range probe the
		// table, the rest are passed over (§3.5 step 2).
		pr := newProber(table, func(t tuple.Tuple) []byte { return sSchema.KeyBytes(t, spec.SCol) },
			func(s, r tuple.Tuple) { emit(r, s) })
		err = sCur.Scan(access, func(t tuple.Tuple) bool {
			h := hasher.Hash(sSchema.KeyBytes(t, spec.SCol))
			if splitter == nil || splitter.Partition(h) == 0 {
				pr.add(h, t)
				return true
			}
			clock.Moves(1)
			err := sNext.Append(t.Clone(), simio.Seq)
			return err == nil
		})
		if err != nil {
			return err
		}
		pr.flush()
		if sNext != nil {
			if err := sNext.Flush(simio.Seq); err != nil {
				return err
			}
		}

		if pass > 0 {
			rCur.Drop()
			sCur.Drop()
		}
		if splitter == nil {
			break // everything was resident; the algorithm terminates (§3.5 step 3)
		}
		rCur, sCur = rNext, sNext
		access = simio.Seq // passed-over files are read back sequentially
	}
	return nil
}
