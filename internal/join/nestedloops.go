package join

import (
	"bytes"

	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// nestedLoops is the brute-force reference join used as a correctness
// oracle in tests and as a sanity baseline. It charges nothing: its role is
// to define the correct answer, not to compete (the paper does not include
// it in Figure 1).
func nestedLoops(spec Spec, emit Emit) error {
	rs := spec.R.Schema()
	ss := spec.S.Schema()
	var rTuples []tuple.Tuple
	err := spec.R.Scan(simio.Uncharged, func(t tuple.Tuple) bool {
		rTuples = append(rTuples, t.Clone())
		return true
	})
	if err != nil {
		return err
	}
	return spec.S.Scan(simio.Uncharged, func(s tuple.Tuple) bool {
		sk := ss.KeyBytes(s, spec.SCol)
		for _, r := range rTuples {
			if bytes.Equal(rs.KeyBytes(r, spec.RCol), sk) {
				emit(r, s)
			}
		}
		return true
	})
}
