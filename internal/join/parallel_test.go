package join

// Parallel-execution determinism: a join at Parallelism=8 must produce the
// same match multiset and — because per-partition work is unchanged and
// counter addition commutes — bit-identical Counters, Passes and
// Partitions as the serial run. These tests are the -race exercise for the
// worker pool, the sharded hash table, and the atomic clock.

import (
	"sync"
	"testing"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/tuple"
)

// runCase builds identical relations on a fresh disk and runs the join at
// the given parallelism, returning the match multiset and Result.
func runCase(t *testing.T, a Algorithm, nR, nS int, domain int64, m, graceParts, parallelism int) (map[string]int, Result) {
	t.Helper()
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", nR, domain, 21)
	s := makeRelation(t, disk, "S", nS, domain, 22)
	return matches(t, a, Spec{R: r, S: s, M: m, GraceParts: graceParts, Parallelism: parallelism})
}

func TestParallelJoinMatchesSerialExactly(t *testing.T) {
	cases := []struct {
		name       string
		alg        Algorithm
		nR, nS     int
		domain     int64
		m          int
		graceParts int
	}{
		{name: "grace-many-partitions", alg: GraceHash, nR: 600, nS: 900, domain: 200, m: 24, graceParts: 16},
		{name: "grace-default-partitions", alg: GraceHash, nR: 500, nS: 700, domain: 150, m: 10},
		{name: "grace-overflow-recursion", alg: GraceHash, nR: 400, nS: 600, domain: 50, m: 5},
		{name: "hybrid-partitioned", alg: HybridHash, nR: 600, nS: 900, domain: 200, m: 20},
		{name: "hybrid-all-resident", alg: HybridHash, nR: 300, nS: 500, domain: 100, m: 300},
		{name: "hybrid-tight", alg: HybridHash, nR: 400, nS: 600, domain: 50, m: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantSet, want := runCase(t, tc.alg, tc.nR, tc.nS, tc.domain, tc.m, tc.graceParts, 1)
			gotSet, got := runCase(t, tc.alg, tc.nR, tc.nS, tc.domain, tc.m, tc.graceParts, 8)
			if !sameMultiset(gotSet, wantSet) {
				t.Errorf("parallel match multiset differs from serial")
			}
			if got.Matches != want.Matches {
				t.Errorf("Matches: parallel %d, serial %d", got.Matches, want.Matches)
			}
			if got.Counters != want.Counters {
				t.Errorf("Counters diverge:\n  parallel %v\n  serial   %v", got.Counters, want.Counters)
			}
			if got.Passes != want.Passes || got.Partitions != want.Partitions {
				t.Errorf("shape diverges: parallel passes=%d parts=%d, serial passes=%d parts=%d",
					got.Passes, got.Partitions, want.Passes, want.Partitions)
			}
			if got.Elapsed != want.Elapsed {
				t.Errorf("virtual time diverges: parallel %v, serial %v", got.Elapsed, want.Elapsed)
			}
		})
	}
}

// runSortCase is runCase for sort-merge: the chunk plan is pinned while
// the width varies, mirroring how GraceParts stays fixed above.
func runSortCase(t *testing.T, nR, nS int, domain int64, m, chunks, parallelism int) (map[string]int, Result) {
	t.Helper()
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", nR, domain, 33)
	s := makeRelation(t, disk, "S", nS, domain, 34)
	return matches(t, SortMerge, Spec{R: r, S: s, M: m, SortChunks: chunks, Parallelism: parallelism})
}

// TestParallelSortMergeMatchesSerialExactly is the sort-merge counterpart
// of the hash-join determinism test: with the SortChunks plan pinned, the
// whole Result — counters, virtual time, run counts, per-relation sort
// stats — must be bit-identical at widths 1, 2 and 8, and the match
// multiset unchanged. Chunks=1 additionally pins the classic serial plan
// under a parallel pool.
func TestParallelSortMergeMatchesSerialExactly(t *testing.T) {
	cases := []struct {
		name   string
		nR, nS int
		domain int64
		m      int
		chunks int
	}{
		{name: "chunked-external", nR: 600, nS: 1800, domain: 300, m: 8, chunks: 4},
		{name: "chunked-tight-memory", nR: 400, nS: 1200, domain: 100, m: 4, chunks: 8},
		{name: "chunked-in-memory", nR: 200, nS: 400, domain: 80, m: 400, chunks: 4},
		{name: "classic-plan-parallel-pool", nR: 500, nS: 1500, domain: 200, m: 8, chunks: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantSet, want := runSortCase(t, tc.nR, tc.nS, tc.domain, tc.m, tc.chunks, 1)
			for _, width := range []int{2, 8} {
				gotSet, got := runSortCase(t, tc.nR, tc.nS, tc.domain, tc.m, tc.chunks, width)
				if !sameMultiset(gotSet, wantSet) {
					t.Errorf("width %d: match multiset differs from serial", width)
				}
				if got != want {
					t.Errorf("width %d: Result diverges:\n  parallel %+v\n  serial   %+v", width, got, want)
				}
			}
		})
	}
}

// TestSortMergeChunkedOracle checks the chunked sort-merge against the
// nested-loops oracle.
func TestSortMergeChunkedOracle(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 300, 80, 35)
	s := makeRelation(t, disk, "S", 450, 80, 36)
	want, _ := matches(t, NestedLoops, Spec{R: r, S: s, M: 8})
	got, res := matches(t, SortMerge, Spec{R: r, S: s, M: 8, SortChunks: 4, Parallelism: 4})
	if !sameMultiset(got, want) {
		t.Errorf("chunked sort-merge: match multiset differs from oracle")
	}
	if res.RSort.Chunks != 4 || res.SSort.Chunks != 4 {
		t.Errorf("sort stats not surfaced: %+v / %+v", res.RSort, res.SSort)
	}
}

// TestParallelEmitNeverConcurrent verifies the documented guarantee that
// the user's emit callback is serialized: an unlocked counter in the
// callback must still total correctly (and the -race run proves no two
// calls overlap).
func TestParallelEmitNeverConcurrent(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 500, 120, 23)
	s := makeRelation(t, disk, "S", 800, 120, 24)
	var inEmit int // deliberately unsynchronized: emit must be serialized
	res, err := Run(GraceHash, Spec{R: r, S: s, M: 16, GraceParts: 8, Parallelism: 8},
		func(r, s tuple.Tuple) { inEmit++ })
	if err != nil {
		t.Fatal(err)
	}
	if int64(inEmit) != res.Matches {
		t.Fatalf("emit called %d times, %d matches counted", inEmit, res.Matches)
	}
}

// TestParallelOracleAgreement re-runs the correctness oracle with the pool
// engaged: every parallel hash join still produces nested-loops' answer.
func TestParallelOracleAgreement(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 300, 80, 25)
	s := makeRelation(t, disk, "S", 450, 80, 26)
	want, _ := matches(t, NestedLoops, Spec{R: r, S: s, M: 8})
	for _, a := range []Algorithm{GraceHash, HybridHash} {
		got, _ := matches(t, a, Spec{R: r, S: s, M: 8, Parallelism: 4})
		if !sameMultiset(got, want) {
			t.Errorf("%v parallel: match multiset differs from oracle", a)
		}
	}
}

// TestParallelFaultInjectionPropagates arms the fault injector and checks
// that a device error inside one partition worker aborts the whole join
// with that error, with no goroutine leak (the -race runtime would flag a
// worker outliving the test via the shared clock).
func TestParallelFaultInjectionPropagates(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 400, 100, 27)
	s := makeRelation(t, disk, "S", 600, 100, 28)
	disk.FailAfter(40)
	defer disk.FailAfter(-1)
	_, err := Run(GraceHash, Spec{R: r, S: s, M: 8, GraceParts: 8, Parallelism: 8}, nil)
	if err == nil {
		t.Fatal("expected injected device failure to surface")
	}
}

// TestParallelRunsShareOneClock runs two parallel joins concurrently on
// one disk/clock. The individual Result.Counters deltas interleave (as
// they would with any shared clock), but the clock's combined total is
// still exactly the sum of what two isolated serial runs charge — no
// update is ever lost or double-counted.
func TestParallelRunsShareOneClock(t *testing.T) {
	// Baselines: each join alone on its own disk, serially.
	var want cost.Counters
	for i, seed := range []int64{29, 31} {
		disk, _ := testEnv()
		r := makeRelation(t, disk, "R", 300, 90, seed)
		s := makeRelation(t, disk, "S", 450, 90, seed+1)
		res, err := Run(GraceHash, Spec{R: r, S: s, M: 8}, nil)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		want.Add(res.Counters)
	}

	// Now both joins at once, both parallel, on one shared clock.
	disk, clock := testEnv()
	r1 := makeRelation(t, disk, "R1", 300, 90, 29)
	s1 := makeRelation(t, disk, "S1", 450, 90, 30)
	r2 := makeRelation(t, disk, "R2", 300, 90, 31)
	s2 := makeRelation(t, disk, "S2", 450, 90, 32)
	before := clock.Counters()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	run := func(i int, r, s *heap.File) {
		defer wg.Done()
		_, errs[i] = Run(GraceHash, Spec{R: r, S: s, M: 8, Parallelism: 4}, nil)
	}
	wg.Add(2)
	go run(0, r1, s1)
	go run(1, r2, s2)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if total := clock.Counters().Sub(before); total != want {
		t.Fatalf("clock total %v != sum of isolated serial charges %v", total, want)
	}
}
