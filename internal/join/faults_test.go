package join

import (
	"errors"
	"testing"

	"mmdb/internal/fault"
	"mmdb/internal/simio"
)

// TestIOFaultsPropagateCleanly injects a permanent device failure at every
// charged IO position of each algorithm's execution and asserts the error
// surfaces (wrapped, not swallowed, no panic). The schedules come from the
// fault plane's injector — PermanentAfter(n) lets the first n IOs through
// and fails the rest, the semantics FailAfter used to hard-code.
// Algorithms doing no IO at this memory size are skipped once injection
// stops triggering.
func TestIOFaultsPropagateCleanly(t *testing.T) {
	for _, alg := range []Algorithm{SortMerge, SimpleHash, GraceHash, HybridHash} {
		t.Run(alg.String(), func(t *testing.T) {
			// Baseline: count this algorithm's charged IOs.
			disk, _ := testEnv()
			r := makeRelation(t, disk, "R", 400, 100, 41)
			s := makeRelation(t, disk, "S", 400, 100, 42)
			spec := Spec{R: r, S: s, M: 5}
			base, err := Run(alg, spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			totalIO := base.Counters.SeqIOs + base.Counters.RandIOs
			if totalIO == 0 {
				t.Skipf("%v does no IO at this size", alg)
			}
			// Inject at a few positions across the run.
			for _, pos := range []int64{0, 1, totalIO / 2, totalIO - 1} {
				disk2, _ := testEnv()
				r2 := makeRelation(t, disk2, "R", 400, 100, 41)
				s2 := makeRelation(t, disk2, "S", 400, 100, 42)
				disk2.SetInjector(fault.NewInjector(1).PermanentAfter("", pos))
				_, err := Run(alg, Spec{R: r2, S: s2, M: 5}, nil)
				if err == nil {
					t.Fatalf("injected failure at IO %d of %d was swallowed", pos, totalIO)
				}
				if !errors.Is(err, simio.ErrInjected) {
					t.Fatalf("error lost its cause: %v", err)
				}
				if !errors.Is(err, fault.ErrPermanent) {
					t.Fatalf("error lost its taxonomy: %v", err)
				}
			}
		})
	}
}

// TestFaultsDoNotCorruptSubsequentRuns verifies a failed join leaves the
// disk usable: disarm the schedule and rerun to the oracle's answer.
func TestFaultsDoNotCorruptSubsequentRuns(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 300, 80, 43)
	s := makeRelation(t, disk, "S", 300, 80, 44)
	spec := Spec{R: r, S: s, M: 5}
	want, _ := matches(t, NestedLoops, spec)

	disk.SetInjector(fault.NewInjector(1).PermanentAfter("", 3))
	if _, err := Run(HybridHash, spec, nil); err == nil {
		t.Fatal("expected injected failure")
	}
	disk.SetInjector(nil)
	got, _ := matches(t, HybridHash, spec)
	if !sameMultiset(got, want) {
		t.Fatal("post-failure run produced a wrong result")
	}
}

// TestTransientScheduleAbsorbedByWritePath verifies a join under a
// transient-only schedule completes with the exact fault-free result: the
// heap write path's bounded retry absorbs the faults.
func TestTransientScheduleAbsorbedByWritePath(t *testing.T) {
	oracleDisk, _ := testEnv()
	r0 := makeRelation(t, oracleDisk, "R", 400, 100, 41)
	s0 := makeRelation(t, oracleDisk, "S", 400, 100, 42)
	want, _ := matches(t, NestedLoops, Spec{R: r0, S: s0, M: 5})

	for _, alg := range []Algorithm{SimpleHash, GraceHash, HybridHash} {
		disk, _ := testEnv()
		r := makeRelation(t, disk, "R", 400, 100, 41)
		s := makeRelation(t, disk, "S", 400, 100, 42)
		inj := fault.NewInjector(7).TransientEvery("tmp.", 5)
		disk.SetInjector(inj)
		got, _ := matches(t, alg, Spec{R: r, S: s, M: 5})
		if !sameMultiset(got, want) {
			t.Fatalf("%v: transient faults changed the result", alg)
		}
		if inj.Stats().Transient == 0 {
			t.Fatalf("%v: schedule never fired", alg)
		}
	}
}

// TestFailAfterCompatShim keeps the legacy single-shot API working on top
// of the injector mechanism.
func TestFailAfterCompatShim(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 300, 80, 43)
	s := makeRelation(t, disk, "S", 300, 80, 44)
	disk.FailAfter(0)
	_, err := Run(GraceHash, Spec{R: r, S: s, M: 5}, nil)
	if !errors.Is(err, simio.ErrInjected) {
		t.Fatalf("shim injection: %v", err)
	}
	disk.FailAfter(-1)
	if _, err := Run(GraceHash, Spec{R: r, S: s, M: 5}, nil); err != nil {
		t.Fatalf("disarm: %v", err)
	}
}
