package join

import (
	"mmdb/internal/hashjoin"
	"mmdb/internal/tuple"
)

// prober adapts a probe loop to the table layout. Against the classic
// chained Table it probes tuple-at-a-time, exactly as the scan callbacks
// always did. Against a KernelTable it accumulates probes into a batch and
// sweeps them with ProbeBatch, which groups probes by destination
// sub-table and warms slot, entry and tuple lines ahead of the compares.
//
// The adaptation is invisible to the plan: ProbeBatch charges the same
// comparison total as the tuple-at-a-time loop and reports matches in
// ascending probe order with per-probe matches in insertion order — the
// identical emission sequence — so a serial join's output is byte-for-byte
// the same with either layout. Batching only defers when within the scan
// the matches surface, which is why callers that can release or spill the
// table mid-scan must flush first.
type prober struct {
	table hashjoin.SubTable
	kt    *hashjoin.KernelTable // nil when table is the chained layout
	keyOf func(tuple.Tuple) []byte
	emit  func(probe, match tuple.Tuple)
	batch []hashjoin.Keyed
}

func newProber(table hashjoin.SubTable, keyOf func(tuple.Tuple) []byte, emit func(probe, match tuple.Tuple)) *prober {
	p := &prober{table: table, keyOf: keyOf, emit: emit}
	if kt, ok := table.(*hashjoin.KernelTable); ok {
		p.kt = kt
		p.batch = make([]hashjoin.Keyed, 0, kt.BatchSize())
	}
	return p
}

// add probes one tuple, or queues it when batching. Scan callbacks hand
// out transient views, so the batching path clones; the immediate path
// emits during the call, within the view's validity window.
func (p *prober) add(h uint64, t tuple.Tuple) {
	if p.kt == nil {
		p.table.Probe(h, p.keyOf(t), func(m tuple.Tuple) { p.emit(t, m) })
		return
	}
	p.batch = append(p.batch, hashjoin.Keyed{Hash: h, Tuple: t.Clone()})
	if len(p.batch) == cap(p.batch) {
		p.flush()
	}
}

// flush drains pending probes. Callers must flush after the probe scan
// completes, and before the table is released or spilled mid-scan.
func (p *prober) flush() {
	if p.kt == nil || len(p.batch) == 0 {
		return
	}
	p.kt.ProbeBatch(p.batch, p.keyOf, func(i int, m tuple.Tuple) {
		p.emit(p.batch[i].Tuple, m)
	})
	p.batch = p.batch[:0]
}
