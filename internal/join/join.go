// Package join implements the four join algorithms evaluated in §3 of the
// paper — Sort-Merge, Simple Hash, GRACE Hash and Hybrid Hash — as
// executable operators over simulated paged storage, plus a nested-loops
// reference oracle for testing.
//
// Each algorithm does the real work (sorting, hashing, partitioning,
// probing) and charges every primitive operation to the disk's virtual
// clock with the same accounting discipline as the paper's cost formulas:
// one hash per tuple per pass, one move per tuple placed in a table or
// output buffer, one comparison per probe candidate or sort comparison,
// and IOseq/IOrand per intermediate page written or read. The initial scan
// of the base relations and the writing of the result are uncharged (§3.2).
package join

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/cost"
	"mmdb/internal/exec"
	"mmdb/internal/extsort"
	"mmdb/internal/hashjoin"
	"mmdb/internal/heap"
	"mmdb/internal/tuple"
)

// Algorithm selects a join implementation.
type Algorithm int

// The implemented algorithms.
const (
	NestedLoops Algorithm = iota // reference oracle (uncharged)
	SortMerge
	SimpleHash
	GraceHash
	HybridHash
)

// String returns the algorithm's name as used in experiment output.
func (a Algorithm) String() string {
	switch a {
	case NestedLoops:
		return "nested-loops"
	case SortMerge:
		return "sort-merge"
	case SimpleHash:
		return "simple-hash"
	case GraceHash:
		return "grace-hash"
	case HybridHash:
		return "hybrid-hash"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Spec describes one join execution.
type Spec struct {
	R, S       *heap.File // R is the smaller (build) relation, per §3.2
	RCol, SCol int        // equijoin columns
	M          int        // pages of main memory available (the paper's |M|)
	F          float64    // fudge factor; 0 means the Table 2 value 1.2
	GraceParts int        // GRACE partition count; 0 means a fragmentation-aware fit (see grace.go)
	// HybridSkew scales hybrid hash's partition count above the paper's
	// exact-fit minimum B = ceil((|R|F-|M|)/(|M|-1)) to absorb hash
	// variance. 0 means 1.25; 1.0 reproduces the paper's formula verbatim
	// (and risks the recursive overflow pass of §3.3).
	HybridSkew float64
	// LiveM, when non-nil, reports the join's memory grant in pages as of
	// now: the session broker can shrink or revoke a grant mid-query, and
	// hybrid hash responds by spilling its resident partition and falling
	// back to GRACE-style recursive bucket joins instead of failing
	// (Result.GraceFallback records that this happened). M remains the
	// planning-time grant used to pick partition counts. The function must
	// be safe to call from multiple goroutines and is never trusted below
	// the 2-page floor every join path assumes.
	LiveM func() int
	// Parallelism bounds the worker goroutines the partition phases of
	// GRACE and hybrid hash may use: the bucket pairs of §3.6/§3.7 are
	// independent, so they fan out over a worker pool. Sort-merge uses the
	// same knob: the two relation sorts overlap, and each sort's formation
	// chunks and merge-tree nodes run on up to Parallelism workers. 0 or 1
	// means serial execution on the calling goroutine, exactly the
	// original engine; a negative value means one worker per CPU
	// (GOMAXPROCS). The virtual clock's counters are identical at every
	// setting — the per-partition (and per-chunk) work does not change,
	// and counter addition commutes — so Parallelism trades wall-clock
	// time only. Emit callbacks are serialized (never called
	// concurrently), but their order changes with the schedule when
	// Parallelism > 1.
	Parallelism int
	// NoCacheKernels disables the cache-conscious kernels: the radix
	// sub-table hash layout with batched probes, the allocation-free
	// hasher, and (via extsort) the compact selection-tree layout and
	// batched merge pumps. The kernels are layout changes only — with the
	// plan knobs (M, F, GraceParts, HybridSkew, SortChunks) fixed, the
	// virtual counters are bit-identical on and off at every Parallelism —
	// so this is an escape hatch for measurement, not a plan knob.
	NoCacheKernels bool
	// SortChunks is sort-merge's decomposition plan: each relation sort
	// splits run formation into this many page-range chunks (each with a
	// proportional share of the queue memory) combined by a merge tree.
	// Like GraceParts it changes the virtual counters — more, shorter
	// runs; an extra selection-tree level — and is therefore a plan knob,
	// deliberately separate from Parallelism: a chunked plan charges
	// identical counters whether 1 or 8 workers execute it. 0 or 1 means
	// the classic single-queue sort.
	SortChunks int
}

// workers returns the effective worker count for the spec.
func (s Spec) workers() int { return exec.Workers(s.Parallelism) }

// kernels reports whether the cache-conscious kernels are enabled.
func (s Spec) kernels() bool { return !s.NoCacheKernels }

// newHasher returns the hasher for the spec's kernel setting. Both
// variants compute identical values and charge identically; the fast one
// avoids the per-call allocation of the stdlib FNV state.
func (s Spec) newHasher(clock *cost.Clock, level uint32) hashjoin.Hasher {
	if s.kernels() {
		return hashjoin.NewFastHasher(clock, level)
	}
	return hashjoin.NewHasher(clock, level)
}

// newTable returns the build-side hash table for the spec's kernel
// setting: the radix-partitioned open-addressing layout when kernels are
// on, the classic chained table otherwise. Charged counters are identical.
func (s Spec) newTable(clock *cost.Clock, schema *tuple.Schema, col, expected int) hashjoin.SubTable {
	if s.kernels() {
		return hashjoin.NewKernelTable(clock, schema, col, expected)
	}
	return hashjoin.NewTable(clock, schema, col, expected)
}

// liveM returns the memory currently granted, in pages: M when no live
// grant is wired, otherwise LiveM() clamped to the 2-page floor.
func (s Spec) liveM() int {
	if s.LiveM == nil {
		return s.M
	}
	if m := s.LiveM(); m >= 2 {
		return m
	}
	return 2
}

func (s Spec) withDefaults() Spec {
	if s.F == 0 {
		s.F = 1.2
	}
	return s
}

func (s Spec) validate() error {
	if s.R == nil || s.S == nil {
		return fmt.Errorf("join: spec needs both relations")
	}
	if s.M < 2 {
		return fmt.Errorf("join: need at least 2 pages of memory, got %d", s.M)
	}
	if s.F < 1 {
		return fmt.Errorf("join: fudge factor %g must be >= 1", s.F)
	}
	if s.RCol < 0 || s.RCol >= s.R.Schema().NumFields() {
		return fmt.Errorf("join: R column %d out of range", s.RCol)
	}
	if s.SCol < 0 || s.SCol >= s.S.Schema().NumFields() {
		return fmt.Errorf("join: S column %d out of range", s.SCol)
	}
	rw := s.R.Schema().FieldWidth(s.RCol)
	sw := s.S.Schema().FieldWidth(s.SCol)
	if rw != sw || s.R.Schema().Field(s.RCol).Kind != s.S.Schema().Field(s.SCol).Kind {
		return fmt.Errorf("join: join columns have incompatible types")
	}
	return nil
}

// Emit receives one joined pair. The tuple views are only valid during the
// call.
type Emit func(r, s tuple.Tuple)

// Result reports a join execution.
type Result struct {
	Algorithm  Algorithm
	Matches    int64         // joined pairs produced
	Counters   cost.Counters // operations charged by this join
	Elapsed    time.Duration // virtual time consumed
	Passes     int           // simple hash: passes; hash joins: 1 + recursion depth
	Partitions int           // disk partitions created at the top level
	// GraceFallback reports that a mid-query memory-grant revocation made
	// hybrid hash spill its resident partition and finish GRACE-style.
	GraceFallback bool
	// RSort and SSort report how sort-merge sorted each relation (runs
	// formed, intermediate passes, in-memory shortcuts); zero for the
	// other algorithms.
	RSort, SSort extsort.Stats
}

// Time returns the join's virtual execution time under p.
func (r Result) Time(p cost.Params) time.Duration { return r.Counters.Time(p) }

var tmpSeq atomic.Uint64

func tmpPrefix(a Algorithm) string {
	return fmt.Sprintf("tmp.%s.%d", a, tmpSeq.Add(1))
}

// Run executes the join with the given algorithm, streaming matches to
// emit (which may be nil to count only).
func Run(a Algorithm, spec Spec, emit Emit) (Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	clock := spec.R.Disk().Clock()
	res := Result{Algorithm: a}
	parallel := spec.workers() > 1
	var matches atomic.Int64
	var emitMu sync.Mutex
	var counted Emit
	if parallel {
		// Parallel partition workers emit concurrently: count matches
		// atomically and serialize the user's callback so it never runs
		// on two goroutines at once.
		counted = func(r, s tuple.Tuple) {
			matches.Add(1)
			if emit != nil {
				emitMu.Lock()
				emit(r, s)
				emitMu.Unlock()
			}
		}
	} else {
		counted = func(r, s tuple.Tuple) {
			res.Matches++
			if emit != nil {
				emit(r, s)
			}
		}
	}
	before := clock.Counters()
	t0 := clock.Now()
	var err error
	switch a {
	case NestedLoops:
		err = nestedLoops(spec, counted)
	case SortMerge:
		err = sortMerge(spec, counted, &res)
	case SimpleHash:
		err = simpleHash(spec, counted, &res)
	case GraceHash:
		err = graceHash(spec, counted, &res)
	case HybridHash:
		err = hybridHash(spec, counted, &res)
	default:
		err = fmt.Errorf("join: unknown algorithm %v", a)
	}
	if err != nil {
		return Result{}, err
	}
	if parallel {
		res.Matches = matches.Load()
	}
	res.Counters = clock.Counters().Sub(before)
	res.Elapsed = clock.Now() - t0
	return res, nil
}

// tableCapacity returns how many tuples of f a hash (or sort) structure
// occupying m pages can hold, accounting for the fudge factor: a structure
// holding n tuples occupies n*F/tuplesPerPage pages (§3.2).
func tableCapacity(m int, f *heap.File, fudge float64) int {
	c := int(float64(m) * float64(f.TuplesPerPage()) / fudge)
	if c < 1 {
		c = 1
	}
	return c
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
