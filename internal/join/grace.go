package join

import (
	"context"
	"fmt"
	"sync"

	"mmdb/internal/exec"
	"mmdb/internal/hashjoin"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// graceHash is the GRACE hash join of §3.6 [KITS83]: phase one partitions
// both relations into B buckets on disk using one output buffer page per
// bucket; phase two joins each bucket pair with an in-memory hash table
// (the paper substitutes hashing for GRACE's hardware sorter to keep the
// comparison fair, and so do we).
//
// The paper partitions into |M| sets; GraceParts overrides that default.
// Bucket-pair joins that overflow memory recurse with a fresh hash.
func graceHash(spec Spec, emit Emit, res *Result) error {
	disk := spec.R.Disk()
	clock := disk.Clock()
	b := spec.GraceParts
	if b == 0 {
		// §3.6 partitions into |M| sets. On small relations that many
		// buckets waste most of every page (each bucket's last page is
		// partial — a fragmentation effect the paper's model ignores), so
		// the default uses just enough buckets for each R_i to fit in
		// memory, with 4x slack for hash skew, capped at |M|. Pass
		// GraceParts=|M| for the paper's literal choice.
		need := int(ceilDiv(int64(float64(spec.R.NumPages())*spec.F), int64(spec.M)))
		b = 4 * need
		if b < 2 {
			b = 2
		}
		if b > spec.M {
			b = spec.M
		}
	}
	if b < 1 {
		return fmt.Errorf("join: grace needs at least one partition")
	}
	res.Partitions = b
	res.Passes = 2
	prefix := tmpPrefix(GraceHash)

	flush := simio.Rand
	if b == 1 {
		flush = simio.Seq
	}
	hasher := spec.newHasher(clock, 0)
	splitter := hashjoin.Uniform(b)

	// Phase one: partition R and S. The two scans write to disjoint
	// partition files, so they overlap when the pool has more than one
	// worker; with one worker Gather runs them inline, R first, exactly
	// as the serial engine did.
	pool := exec.NewPool(spec.Parallelism)
	ctx := context.Background()
	var rParts, sParts []hashjoin.PartitionResult
	err := pool.Gather(ctx,
		func(context.Context) error {
			var err error
			rParts, err = partitionFile(spec.R, spec.RCol, hasher, splitter, prefix+".r", flush, simio.Uncharged)
			return err
		},
		func(context.Context) error {
			var err error
			sParts, err = partitionFile(spec.S, spec.SCol, hasher, splitter, prefix+".s", flush, simio.Uncharged)
			return err
		},
	)
	if err != nil {
		return err
	}

	// Phase two: the bucket pairs are independent (§3.6 joins each R_i
	// against its S_i and nothing else), so they fan out across the pool.
	// Each worker accumulates pass depth into a local Result merged under
	// a lock; every clock charge is already lock-free and commutative.
	return joinPartitionPairs(pool, ctx, spec, rParts, sParts, emit, res)
}

// joinPartitionPairs joins rParts[i] with sParts[i] for every i across the
// pool's workers, merging each pair's recursion depth into res.
func joinPartitionPairs(pool *exec.Pool, ctx context.Context, spec Spec,
	rParts, sParts []hashjoin.PartitionResult, emit Emit, res *Result) error {

	if pool.Workers() == 1 {
		// Serial: share res directly, preserving the exact seed behavior.
		for i := range rParts {
			if err := joinPartitionPair(spec, rParts[i].File, sParts[i].File, 1, emit, res); err != nil {
				return err
			}
		}
		return nil
	}
	var mu sync.Mutex
	return pool.ForEach(ctx, len(rParts), func(_ context.Context, i int) error {
		local := Result{}
		if err := joinPartitionPair(spec, rParts[i].File, sParts[i].File, 1, emit, &local); err != nil {
			return err
		}
		mu.Lock()
		if local.Passes > res.Passes {
			res.Passes = local.Passes
		}
		mu.Unlock()
		return nil
	})
}

// partitionFile hashes every tuple of f and distributes it into the
// splitter's buckets, charging one hash and one move per tuple and the
// flush access kind per page written (§3.6 steps 1–2).
func partitionFile(f *heap.File, col int, hasher hashjoin.Hasher, splitter *hashjoin.Splitter,
	prefix string, flush, input simio.Access) ([]hashjoin.PartitionResult, error) {

	p, err := hashjoin.NewPartitioner(f.Disk(), f.Disk().Clock(), f.Schema(), prefix, splitter.NumPartitions(), flush)
	if err != nil {
		return nil, err
	}
	schema := f.Schema()
	scanErr := f.Scan(input, func(t tuple.Tuple) bool {
		h := hasher.Hash(schema.KeyBytes(t, col))
		err = p.Add(splitter.Partition(h), t)
		return err == nil
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, err
	}
	return p.Close()
}

// joinPartitionPair joins one bucket pair (§3.6 steps 3–4, §3.7 steps 3–4):
// read R_i sequentially into an in-memory hash table, then stream S_i
// against it. If R_i's hash table would not fit in memory — the paper's
// "if we err slightly" case — the pair is recursively repartitioned with a
// fresh hash, adding an extra pass for the overflow tuples (§3.3).
func joinPartitionPair(spec Spec, rf, sf *heap.File, level uint32, emit Emit, res *Result) error {
	defer rf.Drop()
	defer sf.Drop()
	if rf.NumTuples() == 0 || sf.NumTuples() == 0 {
		return nil
	}
	clock := spec.R.Disk().Clock()
	rSchema, sSchema := rf.Schema(), sf.Schema()
	// Size the bucket table to the grant as of now — a shrunk grant makes
	// oversized buckets recurse rather than overcommit memory.
	capacity := tableCapacity(spec.liveM(), rf, spec.F)

	if rf.NumTuples() <= int64(capacity) {
		hasher := spec.newHasher(clock, level)
		table := spec.newTable(clock, rSchema, spec.RCol, int(rf.NumTuples()))
		err := rf.Scan(simio.Seq, func(t tuple.Tuple) bool {
			table.Insert(hasher.Hash(rSchema.KeyBytes(t, spec.RCol)), t.Clone())
			return true
		})
		if err != nil {
			return err
		}
		pr := newProber(table, func(t tuple.Tuple) []byte { return sSchema.KeyBytes(t, spec.SCol) },
			func(s, r tuple.Tuple) { emit(r, s) })
		err = sf.Scan(simio.Seq, func(t tuple.Tuple) bool {
			pr.add(hasher.Hash(sSchema.KeyBytes(t, spec.SCol)), t)
			return true
		})
		if err != nil {
			return err
		}
		pr.flush()
		return nil
	}

	// A bucket dominated by one key value cannot be split by any hash;
	// after a few fruitless levels fall back to joining it in chunks.
	const maxRecursion = 8
	if level >= maxRecursion {
		return chunkedJoin(spec, rf, sf, level, capacity, emit)
	}

	// Overflow: repartition this pair with a fresh hash and recurse.
	sub := int(ceilDiv(rf.NumTuples(), int64(capacity))) + 1
	if sub > spec.M {
		sub = spec.M
	}
	if res.Passes < int(level)+2 {
		res.Passes = int(level) + 2
	}
	flush := simio.Rand
	if sub == 1 {
		flush = simio.Seq
	}
	hasher := spec.newHasher(clock, level)
	splitter := hashjoin.Uniform(sub)
	prefix := fmt.Sprintf("%s.ovf%d", rf.Name(), level)
	rParts, err := partitionFile(rf, spec.RCol, hasher, splitter, prefix+".r", flush, simio.Seq)
	if err != nil {
		return err
	}
	sParts, err := partitionFile(sf, spec.SCol, hasher, splitter, prefix+".s", flush, simio.Seq)
	if err != nil {
		return err
	}
	for i := range rParts {
		if err := joinPartitionPair(spec, rParts[i].File, sParts[i].File, level+1, emit, res); err != nil {
			return err
		}
	}
	return nil
}

// chunkedJoin joins an unsplittable oversized bucket by building the hash
// table for R_i a memory-load at a time and rescanning S_i for each chunk —
// the same memory-bounded discipline as simple hash, without rewriting the
// inputs.
func chunkedJoin(spec Spec, rf, sf *heap.File, level uint32, capacity int, emit Emit) error {
	clock := spec.R.Disk().Clock()
	rSchema, sSchema := rf.Schema(), sf.Schema()
	hasher := spec.newHasher(clock, level)

	total := rf.NumTuples()
	for start := int64(0); start < total; start += int64(capacity) {
		end := start + int64(capacity)
		table := spec.newTable(clock, rSchema, spec.RCol, capacity)
		var idx int64
		err := rf.Scan(simio.Seq, func(t tuple.Tuple) bool {
			if idx >= start && idx < end {
				table.Insert(hasher.Hash(rSchema.KeyBytes(t, spec.RCol)), t.Clone())
			}
			idx++
			return idx < end
		})
		if err != nil {
			return err
		}
		pr := newProber(table, func(t tuple.Tuple) []byte { return sSchema.KeyBytes(t, spec.SCol) },
			func(s, r tuple.Tuple) { emit(r, s) })
		err = sf.Scan(simio.Seq, func(t tuple.Tuple) bool {
			pr.add(hasher.Hash(sSchema.KeyBytes(t, spec.SCol)), t)
			return true
		})
		if err != nil {
			return err
		}
		pr.flush()
	}
	return nil
}
