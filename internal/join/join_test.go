package join

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdb/internal/cost"
	"mmdb/internal/heap"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
	"mmdb/internal/workload"
)

// testPageSize keeps relations multi-page at small tuple counts.
const testPageSize = 256

func testEnv() (*simio.Disk, *cost.Clock) {
	clock := cost.NewClock(cost.DefaultParams())
	return simio.NewDisk(clock, testPageSize), clock
}

func makeRelation(t testing.TB, disk *simio.Disk, name string, n int, domain int64, seed int64) *heap.File {
	t.Helper()
	f, err := workload.Generate(disk, workload.RelationSpec{
		Name: name, Tuples: n, KeyDomain: domain, PayloadWidth: 12, Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return f
}

// matches runs the join and returns the multiset of (r,s) pairs.
func matches(t testing.TB, a Algorithm, spec Spec) (map[string]int, Result) {
	t.Helper()
	got := make(map[string]int)
	res, err := Run(a, spec, func(r, s tuple.Tuple) {
		got[fmt.Sprintf("%x|%x", []byte(r), []byte(s))]++
	})
	if err != nil {
		t.Fatalf("%v: %v", a, err)
	}
	return got, res
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func checkAgainstOracle(t *testing.T, spec Spec) {
	t.Helper()
	want, wantRes := matches(t, NestedLoops, spec)
	for _, a := range []Algorithm{SortMerge, SimpleHash, GraceHash, HybridHash} {
		got, res := matches(t, a, spec)
		if res.Matches != wantRes.Matches {
			t.Errorf("%v: %d matches, oracle %d", a, res.Matches, wantRes.Matches)
		}
		if !sameMultiset(got, want) {
			t.Errorf("%v: match multiset differs from oracle", a)
		}
	}
}

func TestAllAlgorithmsMatchOracle(t *testing.T) {
	cases := []struct {
		name       string
		nR, nS     int
		domain     int64
		m          int
		graceParts int
	}{
		{name: "ample-memory", nR: 200, nS: 300, domain: 100, m: 64},
		{name: "tight-memory", nR: 300, nS: 500, domain: 150, m: 8},
		{name: "very-tight-memory", nR: 400, nS: 600, domain: 50, m: 5},
		{name: "unique-keys", nR: 250, nS: 250, domain: 0, m: 10},
		{name: "no-matches", nR: 100, nS: 100, domain: 1 << 40, m: 8},
		{name: "few-grace-parts", nR: 300, nS: 400, domain: 99, m: 10, graceParts: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			disk, _ := testEnv()
			r := makeRelation(t, disk, "R", tc.nR, tc.domain, 1)
			s := makeRelation(t, disk, "S", tc.nS, tc.domain, 2)
			checkAgainstOracle(t, Spec{R: r, S: s, M: tc.m, GraceParts: tc.graceParts})
		})
	}
}

func TestDuplicateHeavyKeysForceChunkedFallback(t *testing.T) {
	disk, _ := testEnv()
	// Every tuple carries the same key: no hash can split the bucket, so
	// grace/hybrid must fall back to chunked joining. 200 x 200 pairs.
	r := makeRelation(t, disk, "R", 200, 1, 3)
	s := makeRelation(t, disk, "S", 200, 1, 4)
	spec := Spec{R: r, S: s, M: 4}
	want, _ := matches(t, NestedLoops, spec)
	if len(want) == 0 {
		t.Fatal("expected matches")
	}
	for _, a := range []Algorithm{GraceHash, HybridHash, SimpleHash, SortMerge} {
		got, res := matches(t, a, spec)
		if !sameMultiset(got, want) {
			t.Errorf("%v: wrong result on duplicate-only keys", a)
		}
		if res.Matches != 200*200 {
			t.Errorf("%v: %d matches, want %d", a, res.Matches, 200*200)
		}
	}
}

func TestZipfSkewedJoinStillCorrect(t *testing.T) {
	// §3.3's caveat: hash partitioning assumes a bounded key density.
	// Zipf-skewed keys overload one bucket; grace/hybrid must recurse (or
	// chunk) and still produce the oracle's answer.
	disk, _ := testEnv()
	mk := func(name string, seed int64) *heap.File {
		f, err := workload.Generate(disk, workload.RelationSpec{
			Name: name, Tuples: 400, KeyDomain: 200, ZipfS: 1.3, PayloadWidth: 12, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	r := mk("R", 31)
	s := mk("S", 32)
	checkAgainstOracle(t, Spec{R: r, S: s, M: 4})
}

func TestSimpleHashUsesMultiplePasses(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 500, 100, 5)
	s := makeRelation(t, disk, "S", 500, 100, 6)
	_, res := matches(t, SimpleHash, Spec{R: r, S: s, M: 4})
	if res.Passes < 2 {
		t.Fatalf("expected multiple passes with tiny memory, got %d", res.Passes)
	}
}

func TestSortMergeFormsAndMergesRuns(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 500, 100, 7)
	s := makeRelation(t, disk, "S", 500, 100, 8)
	_, res := matches(t, SortMerge, Spec{R: r, S: s, M: 6})
	if res.Partitions < 4 {
		t.Fatalf("expected several runs with tiny memory, got %d", res.Partitions)
	}
}

func TestHybridResidentFractionSkipsIO(t *testing.T) {
	disk, clock := testEnv()
	r := makeRelation(t, disk, "R", 200, 100, 9)
	s := makeRelation(t, disk, "S", 200, 100, 10)
	// Plenty of memory: hybrid degenerates to one in-memory pass, no IO.
	clock.Reset()
	_, res := matches(t, HybridHash, Spec{R: r, S: s, M: 200})
	if res.Counters.SeqIOs != 0 || res.Counters.RandIOs != 0 {
		t.Fatalf("expected no IO with all of R resident, got %v", res.Counters)
	}
	if res.Passes != 1 {
		t.Fatalf("expected a single pass, got %d", res.Passes)
	}
}

func TestHybridChargesLessIOThanGrace(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 600, 200, 11)
	s := makeRelation(t, disk, "S", 600, 200, 12)
	spec := Spec{R: r, S: s, M: 20}
	_, hy := matches(t, HybridHash, spec)
	_, gr := matches(t, GraceHash, spec)
	hyIO := hy.Counters.SeqIOs + hy.Counters.RandIOs
	grIO := gr.Counters.SeqIOs + gr.Counters.RandIOs
	if hyIO >= grIO {
		t.Fatalf("hybrid IO %d should be below grace IO %d (resident fraction q > 0)", hyIO, grIO)
	}
}

func TestSpecValidation(t *testing.T) {
	disk, _ := testEnv()
	r := makeRelation(t, disk, "R", 10, 5, 13)
	s := makeRelation(t, disk, "S", 10, 5, 14)
	cases := []Spec{
		{R: nil, S: s, M: 8},
		{R: r, S: s, M: 1},
		{R: r, S: s, M: 8, F: 0.5},
		{R: r, S: s, M: 8, RCol: 9},
		{R: r, S: s, M: 8, SCol: -1},
	}
	for i, spec := range cases {
		if _, err := Run(HybridHash, spec, nil); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestQuickAllAlgorithmsAgree is the property-based check: for random
// relation sizes, key skew and memory budgets, every algorithm produces the
// oracle's match multiset.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	type input struct {
		NR, NS uint8
		Domain uint8
		M      uint8
		Seed   int64
	}
	f := func(in input) bool {
		nR := int(in.NR)%150 + 1
		nS := nR + int(in.NS)%150 // keep |R| <= |S|
		domain := int64(in.Domain)%64 + 1
		m := int(in.M)%30 + 2
		disk, _ := testEnv()
		rng := rand.New(rand.NewSource(in.Seed))
		r := makeRelation(t, disk, "R", nR, domain, rng.Int63())
		s := makeRelation(t, disk, "S", nS, domain, rng.Int63())
		spec := Spec{R: r, S: s, M: m}
		want, _ := matches(t, NestedLoops, spec)
		for _, a := range []Algorithm{SortMerge, SimpleHash, GraceHash, HybridHash} {
			got, _ := matches(t, a, spec)
			if !sameMultiset(got, want) {
				t.Logf("mismatch: alg=%v nR=%d nS=%d domain=%d m=%d", a, nR, nS, domain, m)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
