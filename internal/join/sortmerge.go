package join

import (
	"bytes"
	"context"
	"fmt"

	"mmdb/internal/exec"
	"mmdb/internal/extsort"
	"mmdb/internal/simio"
	"mmdb/internal/tuple"
)

// sortMerge is the standard sort-merge join of §3.4: replacement-selection
// run formation over both relations, a concurrent n-way merge with one
// buffer page per run, and a merging join of the two sorted streams.
//
// Memory is split evenly between the two sorts during run formation; the
// merge needs one page per run, which the paper's assumption
// |M| >= sqrt(|S|*F) guarantees (checked here, since our runs really exist).
func sortMerge(spec Spec, emit Emit, res *Result) error {
	// The priority queue for a relation occupying the full memory holds
	// |M| pages worth of tuples (divided by F for structure overhead).
	// Each relation is sorted with the full memory in turn, as in the
	// paper's phase structure: scan S and produce runs, then do the same
	// for R.
	capR := tableCapacity(spec.M, spec.R, spec.F)
	capS := tableCapacity(spec.M, spec.S, spec.F)
	if capR < 2 || capS < 2 {
		return fmt.Errorf("join: sort-merge needs memory for at least 2 tuples")
	}
	prefix := tmpPrefix(SortMerge)

	// During the merging join every open run of R and S needs one buffer
	// page simultaneously (§3.4 step 2), so each relation's final merge may
	// hold at most |M|/2 runs. Under the paper's |M| >= sqrt(|S|*F)
	// assumption no intermediate merge passes occur.
	fanout := spec.M / 2
	if fanout < 2 {
		fanout = 2
	}
	sortCfg := func(f filePart) extsort.Config {
		return extsort.Config{
			Col:         f.col,
			MemTuples:   f.cap,
			MaxFanout:   fanout,
			Prefix:      f.prefix,
			Input:       simio.Uncharged,
			Chunks:      spec.SortChunks,
			Parallelism: spec.Parallelism,
			NoKernel:    spec.NoCacheKernels,
		}
	}

	// The two relation sorts are independent — separate run namespaces,
	// commutative counter charges — so they overlap on the pool. A serial
	// pool runs them inline in order (R then S), the original phase
	// structure; each sort additionally parallelizes internally per its
	// Chunks/Parallelism config.
	var rStream, sStream extsort.Stream
	var rStats, sStats extsort.Stats
	pool := exec.NewPool(spec.Parallelism)
	err := pool.Gather(context.Background(),
		func(context.Context) error {
			var err error
			rStream, rStats, err = extsort.SortWith(spec.R, sortCfg(filePart{spec.RCol, capR, prefix + ".r"}))
			return err
		},
		func(context.Context) error {
			var err error
			sStream, sStats, err = extsort.SortWith(spec.S, sortCfg(filePart{spec.SCol, capS, prefix + ".s"}))
			return err
		},
	)
	if rStream != nil {
		defer rStream.Close()
	}
	if sStream != nil {
		defer sStream.Close()
	}
	if err != nil {
		return err
	}
	res.Passes = 2 + rStats.MergePasses + sStats.MergePasses
	res.Partitions = rStats.Runs + sStats.Runs
	res.RSort, res.SSort = rStats, sStats

	return mergeJoin(spec, rStream, sStream, emit)
}

// filePart bundles one relation's sort parameters.
type filePart struct {
	col    int
	cap    int
	prefix string
}

// mergeJoin joins two key-ordered streams, buffering each group of
// S-duplicates so every matching R tuple joins with the whole group.
func mergeJoin(spec Spec, rStream, sStream extsort.Stream, emit Emit) error {
	clock := spec.R.Disk().Clock()
	rs, ss := spec.R.Schema(), spec.S.Schema()
	rKey := func(t tuple.Tuple) []byte { return rs.KeyBytes(t, spec.RCol) }
	sKey := func(t tuple.Tuple) []byte { return ss.KeyBytes(t, spec.SCol) }

	r, rok := rStream.Next()
	s, sok := sStream.Next()
	for rok && sok {
		clock.Comps(1)
		switch c := bytes.Compare(rKey(r), sKey(s)); {
		case c < 0:
			r, rok = rStream.Next()
		case c > 0:
			s, sok = sStream.Next()
		default:
			// Gather the S group sharing this key.
			groupKey := append([]byte(nil), sKey(s)...)
			group := []tuple.Tuple{s}
			for {
				s, sok = sStream.Next()
				if !sok {
					break
				}
				clock.Comps(1)
				if !bytes.Equal(sKey(s), groupKey) {
					break
				}
				group = append(group, s)
			}
			// Join every R tuple with this key against the group.
			for rok && bytes.Equal(rKey(r), groupKey) {
				for _, g := range group {
					emit(r, g)
				}
				r, rok = rStream.Next()
				if rok {
					clock.Comps(1)
				}
			}
		}
	}
	if err := rStream.Err(); err != nil {
		return err
	}
	return sStream.Err()
}
